# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(slc_tool_stencil "/root/repo/build/tools/slc" "--no-filter" "--verify" "--measure=gcc-o3" "/root/repo/examples/loops/stencil.c")
set_tests_properties(slc_tool_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_selfdep "/root/repo/build/tools/slc" "--no-filter" "--verify" "--explain" "/root/repo/examples/loops/selfdep.c")
set_tests_properties(slc_tool_selfdep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_maxloop "/root/repo/build/tools/slc" "--no-filter" "--verify" "--renaming=expand" "/root/repo/examples/loops/maxloop.c")
set_tests_properties(slc_tool_maxloop PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_slc_pass "/root/repo/build/tools/slc" "--slc" "--no-filter" "--verify" "--measure=icc" "/root/repo/examples/loops/fusable.c")
set_tests_properties(slc_tool_slc_pass PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_filter "/root/repo/build/tools/slc" "--verify" "--report" "/root/repo/examples/loops/swaploop.c")
set_tests_properties(slc_tool_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_emit_mir "/root/repo/build/tools/slc" "--no-slms" "--emit-mir" "/root/repo/examples/loops/stencil.c")
set_tests_properties(slc_tool_emit_mir PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_kernel_mode "/root/repo/build/tools/slc" "--kernel=kernel8" "--no-filter" "--verify" "--measure=gcc-o3" "--report")
set_tests_properties(slc_tool_kernel_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_list_kernels "/root/repo/build/tools/slc" "--list-kernels")
set_tests_properties(slc_tool_list_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_bad_kernel "/root/repo/build/tools/slc" "--kernel=nope")
set_tests_properties(slc_tool_bad_kernel PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(slc_tool_parse_error "/root/repo/build/tools/slc" "--kernel=kernel8" "--renaming=bogus")
set_tests_properties(slc_tool_parse_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
