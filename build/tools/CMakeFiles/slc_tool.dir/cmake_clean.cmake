file(REMOVE_RECURSE
  "CMakeFiles/slc_tool.dir/slc.cpp.o"
  "CMakeFiles/slc_tool.dir/slc.cpp.o.d"
  "slc"
  "slc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
