# Empty dependencies file for slc_tool.
# This may be replaced when dependencies are built.
