file(REMOVE_RECURSE
  "CMakeFiles/slc_xform.dir/common.cpp.o"
  "CMakeFiles/slc_xform.dir/common.cpp.o.d"
  "CMakeFiles/slc_xform.dir/fusion.cpp.o"
  "CMakeFiles/slc_xform.dir/fusion.cpp.o.d"
  "CMakeFiles/slc_xform.dir/interchange.cpp.o"
  "CMakeFiles/slc_xform.dir/interchange.cpp.o.d"
  "CMakeFiles/slc_xform.dir/lifetimes.cpp.o"
  "CMakeFiles/slc_xform.dir/lifetimes.cpp.o.d"
  "CMakeFiles/slc_xform.dir/nest.cpp.o"
  "CMakeFiles/slc_xform.dir/nest.cpp.o.d"
  "CMakeFiles/slc_xform.dir/reduction.cpp.o"
  "CMakeFiles/slc_xform.dir/reduction.cpp.o.d"
  "CMakeFiles/slc_xform.dir/tiling.cpp.o"
  "CMakeFiles/slc_xform.dir/tiling.cpp.o.d"
  "CMakeFiles/slc_xform.dir/unroll.cpp.o"
  "CMakeFiles/slc_xform.dir/unroll.cpp.o.d"
  "CMakeFiles/slc_xform.dir/while_unroll.cpp.o"
  "CMakeFiles/slc_xform.dir/while_unroll.cpp.o.d"
  "libslc_xform.a"
  "libslc_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
