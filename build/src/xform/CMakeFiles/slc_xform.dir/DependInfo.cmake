
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/common.cpp" "src/xform/CMakeFiles/slc_xform.dir/common.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/common.cpp.o.d"
  "/root/repo/src/xform/fusion.cpp" "src/xform/CMakeFiles/slc_xform.dir/fusion.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/fusion.cpp.o.d"
  "/root/repo/src/xform/interchange.cpp" "src/xform/CMakeFiles/slc_xform.dir/interchange.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/interchange.cpp.o.d"
  "/root/repo/src/xform/lifetimes.cpp" "src/xform/CMakeFiles/slc_xform.dir/lifetimes.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/lifetimes.cpp.o.d"
  "/root/repo/src/xform/nest.cpp" "src/xform/CMakeFiles/slc_xform.dir/nest.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/nest.cpp.o.d"
  "/root/repo/src/xform/reduction.cpp" "src/xform/CMakeFiles/slc_xform.dir/reduction.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/reduction.cpp.o.d"
  "/root/repo/src/xform/tiling.cpp" "src/xform/CMakeFiles/slc_xform.dir/tiling.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/tiling.cpp.o.d"
  "/root/repo/src/xform/unroll.cpp" "src/xform/CMakeFiles/slc_xform.dir/unroll.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/unroll.cpp.o.d"
  "/root/repo/src/xform/while_unroll.cpp" "src/xform/CMakeFiles/slc_xform.dir/while_unroll.cpp.o" "gcc" "src/xform/CMakeFiles/slc_xform.dir/while_unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slms/CMakeFiles/slc_slms.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/slc_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/slc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
