file(REMOVE_RECURSE
  "libslc_xform.a"
)
