# Empty compiler generated dependencies file for slc_xform.
# This may be replaced when dependencies are built.
