# Empty dependencies file for slc_sim.
# This may be replaced when dependencies are built.
