# Empty compiler generated dependencies file for slc_interp.
# This may be replaced when dependencies are built.
