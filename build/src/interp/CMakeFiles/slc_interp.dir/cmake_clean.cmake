file(REMOVE_RECURSE
  "CMakeFiles/slc_interp.dir/interp.cpp.o"
  "CMakeFiles/slc_interp.dir/interp.cpp.o.d"
  "libslc_interp.a"
  "libslc_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
