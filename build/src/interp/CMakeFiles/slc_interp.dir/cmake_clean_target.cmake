file(REMOVE_RECURSE
  "libslc_interp.a"
)
