file(REMOVE_RECURSE
  "libslc_analysis.a"
)
