file(REMOVE_RECURSE
  "CMakeFiles/slc_analysis.dir/access.cpp.o"
  "CMakeFiles/slc_analysis.dir/access.cpp.o.d"
  "CMakeFiles/slc_analysis.dir/ddg.cpp.o"
  "CMakeFiles/slc_analysis.dir/ddg.cpp.o.d"
  "CMakeFiles/slc_analysis.dir/direction.cpp.o"
  "CMakeFiles/slc_analysis.dir/direction.cpp.o.d"
  "CMakeFiles/slc_analysis.dir/linear_form.cpp.o"
  "CMakeFiles/slc_analysis.dir/linear_form.cpp.o.d"
  "libslc_analysis.a"
  "libslc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
