
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/access.cpp" "src/analysis/CMakeFiles/slc_analysis.dir/access.cpp.o" "gcc" "src/analysis/CMakeFiles/slc_analysis.dir/access.cpp.o.d"
  "/root/repo/src/analysis/ddg.cpp" "src/analysis/CMakeFiles/slc_analysis.dir/ddg.cpp.o" "gcc" "src/analysis/CMakeFiles/slc_analysis.dir/ddg.cpp.o.d"
  "/root/repo/src/analysis/direction.cpp" "src/analysis/CMakeFiles/slc_analysis.dir/direction.cpp.o" "gcc" "src/analysis/CMakeFiles/slc_analysis.dir/direction.cpp.o.d"
  "/root/repo/src/analysis/linear_form.cpp" "src/analysis/CMakeFiles/slc_analysis.dir/linear_form.cpp.o" "gcc" "src/analysis/CMakeFiles/slc_analysis.dir/linear_form.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/slc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
