# Empty compiler generated dependencies file for slc_analysis.
# This may be replaced when dependencies are built.
