# Empty dependencies file for slc_kernels.
# This may be replaced when dependencies are built.
