file(REMOVE_RECURSE
  "CMakeFiles/slc_kernels.dir/kernels.cpp.o"
  "CMakeFiles/slc_kernels.dir/kernels.cpp.o.d"
  "libslc_kernels.a"
  "libslc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
