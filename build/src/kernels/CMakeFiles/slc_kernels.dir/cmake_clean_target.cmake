file(REMOVE_RECURSE
  "libslc_kernels.a"
)
