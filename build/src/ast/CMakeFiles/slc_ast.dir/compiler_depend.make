# Empty compiler generated dependencies file for slc_ast.
# This may be replaced when dependencies are built.
