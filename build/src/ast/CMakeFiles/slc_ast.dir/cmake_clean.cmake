file(REMOVE_RECURSE
  "CMakeFiles/slc_ast.dir/ast.cpp.o"
  "CMakeFiles/slc_ast.dir/ast.cpp.o.d"
  "CMakeFiles/slc_ast.dir/build.cpp.o"
  "CMakeFiles/slc_ast.dir/build.cpp.o.d"
  "CMakeFiles/slc_ast.dir/fold.cpp.o"
  "CMakeFiles/slc_ast.dir/fold.cpp.o.d"
  "CMakeFiles/slc_ast.dir/printer.cpp.o"
  "CMakeFiles/slc_ast.dir/printer.cpp.o.d"
  "CMakeFiles/slc_ast.dir/subst.cpp.o"
  "CMakeFiles/slc_ast.dir/subst.cpp.o.d"
  "CMakeFiles/slc_ast.dir/walk.cpp.o"
  "CMakeFiles/slc_ast.dir/walk.cpp.o.d"
  "libslc_ast.a"
  "libslc_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
