file(REMOVE_RECURSE
  "libslc_ast.a"
)
