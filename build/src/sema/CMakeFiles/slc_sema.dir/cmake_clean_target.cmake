file(REMOVE_RECURSE
  "libslc_sema.a"
)
