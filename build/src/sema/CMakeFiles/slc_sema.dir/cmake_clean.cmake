file(REMOVE_RECURSE
  "CMakeFiles/slc_sema.dir/loop_info.cpp.o"
  "CMakeFiles/slc_sema.dir/loop_info.cpp.o.d"
  "CMakeFiles/slc_sema.dir/symbol_table.cpp.o"
  "CMakeFiles/slc_sema.dir/symbol_table.cpp.o.d"
  "libslc_sema.a"
  "libslc_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
