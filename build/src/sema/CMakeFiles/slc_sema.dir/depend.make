# Empty dependencies file for slc_sema.
# This may be replaced when dependencies are built.
