file(REMOVE_RECURSE
  "libslc_support.a"
)
