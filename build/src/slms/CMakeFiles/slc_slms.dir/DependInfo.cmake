
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slms/decompose.cpp" "src/slms/CMakeFiles/slc_slms.dir/decompose.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/decompose.cpp.o.d"
  "/root/repo/src/slms/filter.cpp" "src/slms/CMakeFiles/slc_slms.dir/filter.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/filter.cpp.o.d"
  "/root/repo/src/slms/ifconvert.cpp" "src/slms/CMakeFiles/slc_slms.dir/ifconvert.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/ifconvert.cpp.o.d"
  "/root/repo/src/slms/mii.cpp" "src/slms/CMakeFiles/slc_slms.dir/mii.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/mii.cpp.o.d"
  "/root/repo/src/slms/names.cpp" "src/slms/CMakeFiles/slc_slms.dir/names.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/names.cpp.o.d"
  "/root/repo/src/slms/pipeliner.cpp" "src/slms/CMakeFiles/slc_slms.dir/pipeliner.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/pipeliner.cpp.o.d"
  "/root/repo/src/slms/slms.cpp" "src/slms/CMakeFiles/slc_slms.dir/slms.cpp.o" "gcc" "src/slms/CMakeFiles/slc_slms.dir/slms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/slc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/slc_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/slc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
