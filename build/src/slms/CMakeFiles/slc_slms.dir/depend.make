# Empty dependencies file for slc_slms.
# This may be replaced when dependencies are built.
