file(REMOVE_RECURSE
  "CMakeFiles/slc_slms.dir/decompose.cpp.o"
  "CMakeFiles/slc_slms.dir/decompose.cpp.o.d"
  "CMakeFiles/slc_slms.dir/filter.cpp.o"
  "CMakeFiles/slc_slms.dir/filter.cpp.o.d"
  "CMakeFiles/slc_slms.dir/ifconvert.cpp.o"
  "CMakeFiles/slc_slms.dir/ifconvert.cpp.o.d"
  "CMakeFiles/slc_slms.dir/mii.cpp.o"
  "CMakeFiles/slc_slms.dir/mii.cpp.o.d"
  "CMakeFiles/slc_slms.dir/names.cpp.o"
  "CMakeFiles/slc_slms.dir/names.cpp.o.d"
  "CMakeFiles/slc_slms.dir/pipeliner.cpp.o"
  "CMakeFiles/slc_slms.dir/pipeliner.cpp.o.d"
  "CMakeFiles/slc_slms.dir/slms.cpp.o"
  "CMakeFiles/slc_slms.dir/slms.cpp.o.d"
  "libslc_slms.a"
  "libslc_slms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_slms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
