file(REMOVE_RECURSE
  "libslc_slms.a"
)
