# Empty dependencies file for slc_machine.
# This may be replaced when dependencies are built.
