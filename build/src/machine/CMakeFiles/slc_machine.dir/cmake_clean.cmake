file(REMOVE_RECURSE
  "CMakeFiles/slc_machine.dir/ims.cpp.o"
  "CMakeFiles/slc_machine.dir/ims.cpp.o.d"
  "CMakeFiles/slc_machine.dir/lower.cpp.o"
  "CMakeFiles/slc_machine.dir/lower.cpp.o.d"
  "CMakeFiles/slc_machine.dir/machine_model.cpp.o"
  "CMakeFiles/slc_machine.dir/machine_model.cpp.o.d"
  "CMakeFiles/slc_machine.dir/mir.cpp.o"
  "CMakeFiles/slc_machine.dir/mir.cpp.o.d"
  "CMakeFiles/slc_machine.dir/ms_common.cpp.o"
  "CMakeFiles/slc_machine.dir/ms_common.cpp.o.d"
  "CMakeFiles/slc_machine.dir/sched.cpp.o"
  "CMakeFiles/slc_machine.dir/sched.cpp.o.d"
  "CMakeFiles/slc_machine.dir/sms.cpp.o"
  "CMakeFiles/slc_machine.dir/sms.cpp.o.d"
  "libslc_machine.a"
  "libslc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
