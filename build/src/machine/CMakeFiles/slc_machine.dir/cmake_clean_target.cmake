file(REMOVE_RECURSE
  "libslc_machine.a"
)
