
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/ims.cpp" "src/machine/CMakeFiles/slc_machine.dir/ims.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/ims.cpp.o.d"
  "/root/repo/src/machine/lower.cpp" "src/machine/CMakeFiles/slc_machine.dir/lower.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/lower.cpp.o.d"
  "/root/repo/src/machine/machine_model.cpp" "src/machine/CMakeFiles/slc_machine.dir/machine_model.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/machine_model.cpp.o.d"
  "/root/repo/src/machine/mir.cpp" "src/machine/CMakeFiles/slc_machine.dir/mir.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/mir.cpp.o.d"
  "/root/repo/src/machine/ms_common.cpp" "src/machine/CMakeFiles/slc_machine.dir/ms_common.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/ms_common.cpp.o.d"
  "/root/repo/src/machine/sched.cpp" "src/machine/CMakeFiles/slc_machine.dir/sched.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/sched.cpp.o.d"
  "/root/repo/src/machine/sms.cpp" "src/machine/CMakeFiles/slc_machine.dir/sms.cpp.o" "gcc" "src/machine/CMakeFiles/slc_machine.dir/sms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/slc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/slc_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/slc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
