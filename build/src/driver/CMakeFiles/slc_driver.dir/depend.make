# Empty dependencies file for slc_driver.
# This may be replaced when dependencies are built.
