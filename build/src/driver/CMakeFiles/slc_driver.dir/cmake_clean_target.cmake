file(REMOVE_RECURSE
  "libslc_driver.a"
)
