file(REMOVE_RECURSE
  "CMakeFiles/slc_driver.dir/pipeline.cpp.o"
  "CMakeFiles/slc_driver.dir/pipeline.cpp.o.d"
  "CMakeFiles/slc_driver.dir/slc_pass.cpp.o"
  "CMakeFiles/slc_driver.dir/slc_pass.cpp.o.d"
  "libslc_driver.a"
  "libslc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
