# Empty compiler generated dependencies file for slc_frontend.
# This may be replaced when dependencies are built.
