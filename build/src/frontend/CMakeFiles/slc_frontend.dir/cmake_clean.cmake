file(REMOVE_RECURSE
  "CMakeFiles/slc_frontend.dir/lexer.cpp.o"
  "CMakeFiles/slc_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/slc_frontend.dir/parser.cpp.o"
  "CMakeFiles/slc_frontend.dir/parser.cpp.o.d"
  "libslc_frontend.a"
  "libslc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
