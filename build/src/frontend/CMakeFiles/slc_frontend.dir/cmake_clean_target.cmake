file(REMOVE_RECURSE
  "libslc_frontend.a"
)
