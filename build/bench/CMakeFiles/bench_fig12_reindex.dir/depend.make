# Empty dependencies file for bench_fig12_reindex.
# This may be replaced when dependencies are built.
