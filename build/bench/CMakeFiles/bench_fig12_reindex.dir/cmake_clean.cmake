file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_reindex.dir/bench_fig12_reindex.cpp.o"
  "CMakeFiles/bench_fig12_reindex.dir/bench_fig12_reindex.cpp.o.d"
  "bench_fig12_reindex"
  "bench_fig12_reindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_reindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
