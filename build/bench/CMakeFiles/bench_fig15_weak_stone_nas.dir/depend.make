# Empty dependencies file for bench_fig15_weak_stone_nas.
# This may be replaced when dependencies are built.
