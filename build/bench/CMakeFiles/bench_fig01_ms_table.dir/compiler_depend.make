# Empty compiler generated dependencies file for bench_fig01_ms_table.
# This may be replaced when dependencies are built.
