file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_strong_stone_nas.dir/bench_fig19_strong_stone_nas.cpp.o"
  "CMakeFiles/bench_fig19_strong_stone_nas.dir/bench_fig19_strong_stone_nas.cpp.o.d"
  "bench_fig19_strong_stone_nas"
  "bench_fig19_strong_stone_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_strong_stone_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
