# Empty dependencies file for bench_fig19_strong_stone_nas.
# This may be replaced when dependencies are built.
