# Empty compiler generated dependencies file for bench_fig20_xlc.
# This may be replaced when dependencies are built.
