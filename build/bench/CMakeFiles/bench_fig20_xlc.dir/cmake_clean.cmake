file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_xlc.dir/bench_fig20_xlc.cpp.o"
  "CMakeFiles/bench_fig20_xlc.dir/bench_fig20_xlc.cpp.o.d"
  "bench_fig20_xlc"
  "bench_fig20_xlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_xlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
