file(REMOVE_RECURSE
  "CMakeFiles/bench_nests.dir/bench_nests.cpp.o"
  "CMakeFiles/bench_nests.dir/bench_nests.cpp.o.d"
  "bench_nests"
  "bench_nests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
