# Empty compiler generated dependencies file for bench_nests.
# This may be replaced when dependencies are built.
