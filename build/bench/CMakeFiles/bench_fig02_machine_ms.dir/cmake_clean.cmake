file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_machine_ms.dir/bench_fig02_machine_ms.cpp.o"
  "CMakeFiles/bench_fig02_machine_ms.dir/bench_fig02_machine_ms.cpp.o.d"
  "bench_fig02_machine_ms"
  "bench_fig02_machine_ms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_machine_ms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
