# Empty compiler generated dependencies file for bench_fig02_machine_ms.
# This may be replaced when dependencies are built.
