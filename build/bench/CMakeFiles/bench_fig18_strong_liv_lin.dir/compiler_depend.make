# Empty compiler generated dependencies file for bench_fig18_strong_liv_lin.
# This may be replaced when dependencies are built.
