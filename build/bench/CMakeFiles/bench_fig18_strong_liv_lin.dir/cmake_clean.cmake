file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_strong_liv_lin.dir/bench_fig18_strong_liv_lin.cpp.o"
  "CMakeFiles/bench_fig18_strong_liv_lin.dir/bench_fig18_strong_liv_lin.cpp.o.d"
  "bench_fig18_strong_liv_lin"
  "bench_fig18_strong_liv_lin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_strong_liv_lin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
