file(REMOVE_RECURSE
  "CMakeFiles/bench_sec10_freqpath.dir/bench_sec10_freqpath.cpp.o"
  "CMakeFiles/bench_sec10_freqpath.dir/bench_sec10_freqpath.cpp.o.d"
  "bench_sec10_freqpath"
  "bench_sec10_freqpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec10_freqpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
