# Empty dependencies file for bench_fig16_close_gap.
# This may be replaced when dependencies are built.
