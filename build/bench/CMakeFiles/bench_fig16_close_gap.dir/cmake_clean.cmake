file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_close_gap.dir/bench_fig16_close_gap.cpp.o"
  "CMakeFiles/bench_fig16_close_gap.dir/bench_fig16_close_gap.cpp.o.d"
  "bench_fig16_close_gap"
  "bench_fig16_close_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_close_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
