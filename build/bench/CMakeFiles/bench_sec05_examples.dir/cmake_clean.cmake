file(REMOVE_RECURSE
  "CMakeFiles/bench_sec05_examples.dir/bench_sec05_examples.cpp.o"
  "CMakeFiles/bench_sec05_examples.dir/bench_sec05_examples.cpp.o.d"
  "bench_sec05_examples"
  "bench_sec05_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec05_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
