file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_superscalar.dir/bench_fig17_superscalar.cpp.o"
  "CMakeFiles/bench_fig17_superscalar.dir/bench_fig17_superscalar.cpp.o.d"
  "bench_fig17_superscalar"
  "bench_fig17_superscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_superscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
