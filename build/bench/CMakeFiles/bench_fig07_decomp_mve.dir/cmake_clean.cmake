file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_decomp_mve.dir/bench_fig07_decomp_mve.cpp.o"
  "CMakeFiles/bench_fig07_decomp_mve.dir/bench_fig07_decomp_mve.cpp.o.d"
  "bench_fig07_decomp_mve"
  "bench_fig07_decomp_mve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_decomp_mve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
