# Empty dependencies file for bench_fig07_decomp_mve.
# This may be replaced when dependencies are built.
