file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_delays_mii.dir/bench_fig08_delays_mii.cpp.o"
  "CMakeFiles/bench_fig08_delays_mii.dir/bench_fig08_delays_mii.cpp.o.d"
  "bench_fig08_delays_mii"
  "bench_fig08_delays_mii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_delays_mii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
