# Empty compiler generated dependencies file for bench_fig08_delays_mii.
# This may be replaced when dependencies are built.
