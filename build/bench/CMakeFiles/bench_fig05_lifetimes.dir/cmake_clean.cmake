file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_lifetimes.dir/bench_fig05_lifetimes.cpp.o"
  "CMakeFiles/bench_fig05_lifetimes.dir/bench_fig05_lifetimes.cpp.o.d"
  "bench_fig05_lifetimes"
  "bench_fig05_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
