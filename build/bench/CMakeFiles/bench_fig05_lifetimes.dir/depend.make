# Empty dependencies file for bench_fig05_lifetimes.
# This may be replaced when dependencies are built.
