# Empty dependencies file for bench_fig13_ddg_change.
# This may be replaced when dependencies are built.
