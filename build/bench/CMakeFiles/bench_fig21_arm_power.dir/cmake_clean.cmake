file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_arm_power.dir/bench_fig21_arm_power.cpp.o"
  "CMakeFiles/bench_fig21_arm_power.dir/bench_fig21_arm_power.cpp.o.d"
  "bench_fig21_arm_power"
  "bench_fig21_arm_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_arm_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
