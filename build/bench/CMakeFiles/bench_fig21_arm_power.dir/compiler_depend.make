# Empty compiler generated dependencies file for bench_fig21_arm_power.
# This may be replaced when dependencies are built.
