file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_slms.dir/bench_micro_slms.cpp.o"
  "CMakeFiles/bench_micro_slms.dir/bench_micro_slms.cpp.o.d"
  "bench_micro_slms"
  "bench_micro_slms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_slms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
