# Empty dependencies file for bench_micro_slms.
# This may be replaced when dependencies are built.
