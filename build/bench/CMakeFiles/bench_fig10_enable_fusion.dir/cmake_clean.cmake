file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_enable_fusion.dir/bench_fig10_enable_fusion.cpp.o"
  "CMakeFiles/bench_fig10_enable_fusion.dir/bench_fig10_enable_fusion.cpp.o.d"
  "bench_fig10_enable_fusion"
  "bench_fig10_enable_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_enable_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
