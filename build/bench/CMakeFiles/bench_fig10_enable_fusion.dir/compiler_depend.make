# Empty compiler generated dependencies file for bench_fig10_enable_fusion.
# This may be replaced when dependencies are built.
