file(REMOVE_RECURSE
  "CMakeFiles/bench_sec10_while.dir/bench_sec10_while.cpp.o"
  "CMakeFiles/bench_sec10_while.dir/bench_sec10_while.cpp.o.d"
  "bench_sec10_while"
  "bench_sec10_while.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec10_while.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
