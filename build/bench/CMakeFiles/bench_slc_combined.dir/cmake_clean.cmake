file(REMOVE_RECURSE
  "CMakeFiles/bench_slc_combined.dir/bench_slc_combined.cpp.o"
  "CMakeFiles/bench_slc_combined.dir/bench_slc_combined.cpp.o.d"
  "bench_slc_combined"
  "bench_slc_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slc_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
