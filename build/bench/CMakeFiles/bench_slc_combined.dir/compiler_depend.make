# Empty compiler generated dependencies file for bench_slc_combined.
# This may be replaced when dependencies are built.
