# Empty dependencies file for bench_tab_bundles.
# This may be replaced when dependencies are built.
