file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_bundles.dir/bench_tab_bundles.cpp.o"
  "CMakeFiles/bench_tab_bundles.dir/bench_tab_bundles.cpp.o.d"
  "bench_tab_bundles"
  "bench_tab_bundles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_bundles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
