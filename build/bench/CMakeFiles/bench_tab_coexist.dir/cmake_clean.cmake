file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_coexist.dir/bench_tab_coexist.cpp.o"
  "CMakeFiles/bench_tab_coexist.dir/bench_tab_coexist.cpp.o.d"
  "bench_tab_coexist"
  "bench_tab_coexist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_coexist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
