# Empty dependencies file for bench_tab_coexist.
# This may be replaced when dependencies are built.
