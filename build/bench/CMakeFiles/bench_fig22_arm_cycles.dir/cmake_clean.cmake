file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_arm_cycles.dir/bench_fig22_arm_cycles.cpp.o"
  "CMakeFiles/bench_fig22_arm_cycles.dir/bench_fig22_arm_cycles.cpp.o.d"
  "bench_fig22_arm_cycles"
  "bench_fig22_arm_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_arm_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
