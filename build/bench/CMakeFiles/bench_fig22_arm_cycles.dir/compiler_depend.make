# Empty compiler generated dependencies file for bench_fig22_arm_cycles.
# This may be replaced when dependencies are built.
