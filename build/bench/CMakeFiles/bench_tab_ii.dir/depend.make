# Empty dependencies file for bench_tab_ii.
# This may be replaced when dependencies are built.
