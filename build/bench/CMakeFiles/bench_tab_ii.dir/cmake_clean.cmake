file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_ii.dir/bench_tab_ii.cpp.o"
  "CMakeFiles/bench_tab_ii.dir/bench_tab_ii.cpp.o.d"
  "bench_tab_ii"
  "bench_tab_ii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_ii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
