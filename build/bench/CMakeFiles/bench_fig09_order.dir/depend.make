# Empty dependencies file for bench_fig09_order.
# This may be replaced when dependencies are built.
