file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_reg_pressure.dir/bench_fig11_reg_pressure.cpp.o"
  "CMakeFiles/bench_fig11_reg_pressure.dir/bench_fig11_reg_pressure.cpp.o.d"
  "bench_fig11_reg_pressure"
  "bench_fig11_reg_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_reg_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
