# Empty dependencies file for bench_fig11_reg_pressure.
# This may be replaced when dependencies are built.
