# Empty dependencies file for bench_tab_filter.
# This may be replaced when dependencies are built.
