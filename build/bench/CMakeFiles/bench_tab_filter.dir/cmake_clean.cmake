file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_filter.dir/bench_tab_filter.cpp.o"
  "CMakeFiles/bench_tab_filter.dir/bench_tab_filter.cpp.o.d"
  "bench_tab_filter"
  "bench_tab_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
