# Empty compiler generated dependencies file for bench_fig14_weak_liv_lin.
# This may be replaced when dependencies are built.
