file(REMOVE_RECURSE
  "CMakeFiles/oracle_fuzz.dir/oracle_fuzz.cpp.o"
  "CMakeFiles/oracle_fuzz.dir/oracle_fuzz.cpp.o.d"
  "oracle_fuzz"
  "oracle_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
