# Empty compiler generated dependencies file for oracle_fuzz.
# This may be replaced when dependencies are built.
