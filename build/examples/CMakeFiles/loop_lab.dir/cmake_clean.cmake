file(REMOVE_RECURSE
  "CMakeFiles/loop_lab.dir/loop_lab.cpp.o"
  "CMakeFiles/loop_lab.dir/loop_lab.cpp.o.d"
  "loop_lab"
  "loop_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
