# Empty dependencies file for loop_lab.
# This may be replaced when dependencies are built.
