# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/ast_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/mii_test[1]_include.cmake")
include("/root/repo/build/tests/slms_core_test[1]_include.cmake")
include("/root/repo/build/tests/slms_property_test[1]_include.cmake")
include("/root/repo/build/tests/xform_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/golden_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/pipeliner_test[1]_include.cmake")
include("/root/repo/build/tests/sema_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/while_unroll_test[1]_include.cmake")
include("/root/repo/build/tests/slc_pass_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/xform_property_test[1]_include.cmake")
include("/root/repo/build/tests/tiling_test[1]_include.cmake")
include("/root/repo/build/tests/lifetimes_test[1]_include.cmake")
include("/root/repo/build/tests/sms_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/slms_units_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
