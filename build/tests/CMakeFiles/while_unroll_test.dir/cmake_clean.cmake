file(REMOVE_RECURSE
  "CMakeFiles/while_unroll_test.dir/while_unroll_test.cpp.o"
  "CMakeFiles/while_unroll_test.dir/while_unroll_test.cpp.o.d"
  "while_unroll_test"
  "while_unroll_test.pdb"
  "while_unroll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/while_unroll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
