# Empty compiler generated dependencies file for while_unroll_test.
# This may be replaced when dependencies are built.
