# Empty dependencies file for pipeliner_test.
# This may be replaced when dependencies are built.
