file(REMOVE_RECURSE
  "CMakeFiles/slms_core_test.dir/slms_core_test.cpp.o"
  "CMakeFiles/slms_core_test.dir/slms_core_test.cpp.o.d"
  "slms_core_test"
  "slms_core_test.pdb"
  "slms_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slms_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
