# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for slms_core_test.
