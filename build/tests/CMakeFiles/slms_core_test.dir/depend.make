# Empty dependencies file for slms_core_test.
# This may be replaced when dependencies are built.
