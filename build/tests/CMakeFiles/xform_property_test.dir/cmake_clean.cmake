file(REMOVE_RECURSE
  "CMakeFiles/xform_property_test.dir/xform_property_test.cpp.o"
  "CMakeFiles/xform_property_test.dir/xform_property_test.cpp.o.d"
  "xform_property_test"
  "xform_property_test.pdb"
  "xform_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xform_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
