# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xform_property_test.
