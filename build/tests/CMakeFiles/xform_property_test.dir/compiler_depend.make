# Empty compiler generated dependencies file for xform_property_test.
# This may be replaced when dependencies are built.
