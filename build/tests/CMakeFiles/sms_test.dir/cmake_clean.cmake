file(REMOVE_RECURSE
  "CMakeFiles/sms_test.dir/sms_test.cpp.o"
  "CMakeFiles/sms_test.dir/sms_test.cpp.o.d"
  "sms_test"
  "sms_test.pdb"
  "sms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
