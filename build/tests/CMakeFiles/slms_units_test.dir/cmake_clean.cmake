file(REMOVE_RECURSE
  "CMakeFiles/slms_units_test.dir/slms_units_test.cpp.o"
  "CMakeFiles/slms_units_test.dir/slms_units_test.cpp.o.d"
  "slms_units_test"
  "slms_units_test.pdb"
  "slms_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slms_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
