
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/slms_units_test.cpp" "tests/CMakeFiles/slms_units_test.dir/slms_units_test.cpp.o" "gcc" "tests/CMakeFiles/slms_units_test.dir/slms_units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/slc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/slc_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/slc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/slc_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/slms/CMakeFiles/slc_slms.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/slc_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/slc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/slc_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/slc_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
