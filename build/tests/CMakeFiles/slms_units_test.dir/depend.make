# Empty dependencies file for slms_units_test.
# This may be replaced when dependencies are built.
