file(REMOVE_RECURSE
  "CMakeFiles/mii_test.dir/mii_test.cpp.o"
  "CMakeFiles/mii_test.dir/mii_test.cpp.o.d"
  "mii_test"
  "mii_test.pdb"
  "mii_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mii_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
