# Empty dependencies file for golden_kernels_test.
# This may be replaced when dependencies are built.
