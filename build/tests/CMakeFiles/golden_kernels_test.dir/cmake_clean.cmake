file(REMOVE_RECURSE
  "CMakeFiles/golden_kernels_test.dir/golden_kernels_test.cpp.o"
  "CMakeFiles/golden_kernels_test.dir/golden_kernels_test.cpp.o.d"
  "golden_kernels_test"
  "golden_kernels_test.pdb"
  "golden_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
