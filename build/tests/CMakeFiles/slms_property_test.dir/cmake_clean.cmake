file(REMOVE_RECURSE
  "CMakeFiles/slms_property_test.dir/slms_property_test.cpp.o"
  "CMakeFiles/slms_property_test.dir/slms_property_test.cpp.o.d"
  "slms_property_test"
  "slms_property_test.pdb"
  "slms_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slms_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
