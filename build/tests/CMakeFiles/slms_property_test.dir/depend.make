# Empty dependencies file for slms_property_test.
# This may be replaced when dependencies are built.
