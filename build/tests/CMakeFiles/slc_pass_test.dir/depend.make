# Empty dependencies file for slc_pass_test.
# This may be replaced when dependencies are built.
