file(REMOVE_RECURSE
  "CMakeFiles/slc_pass_test.dir/slc_pass_test.cpp.o"
  "CMakeFiles/slc_pass_test.dir/slc_pass_test.cpp.o.d"
  "slc_pass_test"
  "slc_pass_test.pdb"
  "slc_pass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slc_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
