// Interpreter (oracle) behaviour.
#include <gtest/gtest.h>

#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
using interp::Interpreter;
using test::parse_or_die;

TEST(Interp, ScalarArithmetic) {
  Program p = parse_or_die(R"(
    int x = 7;
    int y = 3;
    int q = x / y;
    int r = x % y;
    double d = 1.0 / 2.0;
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.memory.scalars.at("q").i, 2);
  EXPECT_EQ(res.memory.scalars.at("r").i, 1);
  EXPECT_DOUBLE_EQ(res.memory.scalars.at("d").f, 0.5);
}

TEST(Interp, LoopSum) {
  Program p = parse_or_die(R"(
    int A[10];
    int i;
    for (i = 0; i < 10; i++) A[i] = i * i;
    int s = 0;
    for (i = 0; i < 10; i++) s += A[i];
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.memory.scalars.at("s").i, 285);
}

TEST(Interp, GuardSkipsStatement) {
  Program p = parse_or_die(R"(
    bool c = false;
    int x = 1;
    if (c) x = 2;
  )");
  // Reparse trick: guards are synthesized; emulate with if-statement here
  // and with a direct guard below.
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok);
  EXPECT_EQ(res.memory.scalars.at("x").i, 1);
}

TEST(Interp, WhileWithBreak) {
  Program p = parse_or_die(R"(
    int i = 0;
    int found = -1;
    int A[20];
    for (i = 0; i < 20; i++) A[i] = i * 3;
    i = 0;
    while (i < 20) {
      if (A[i] == 12) { found = i; break; }
      i++;
    }
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.memory.scalars.at("found").i, 4);
}

TEST(Interp, BoundsCheckFires) {
  Program p = parse_or_die(R"(
    double A[4];
    int i;
    for (i = 0; i <= 4; i++) A[i] = 0.0;
  )");
  auto res = Interpreter().run(p);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("out of bounds"), std::string::npos);
}

TEST(Interp, StepLimitStopsInfiniteLoop) {
  Program p = parse_or_die("int x = 0; while (x < 1) { x = 0; }");
  interp::InterpOptions opts;
  opts.max_steps = 1000;
  auto res = Interpreter(opts).run(p);
  EXPECT_FALSE(res.ok);
}

TEST(Interp, DeterministicRandomFill) {
  Program p = parse_or_die(R"(
    double A[8];
    double x = A[3];
  )");
  auto r1 = Interpreter().run(p, 42);
  auto r2 = Interpreter().run(p, 42);
  auto r3 = Interpreter().run(p, 43);
  ASSERT_TRUE(r1.ok && r2.ok && r3.ok);
  EXPECT_EQ(r1.memory.diff(r2.memory), "");
  EXPECT_NE(r1.memory.diff(r3.memory), "");
  EXPECT_DOUBLE_EQ(r1.memory.scalars.at("x").f,
                   interp::random_fill_double(42, "A", 3));
}

TEST(Interp, TwoDimensionalArrays) {
  Program p = parse_or_die(R"(
    int M[3][4];
    int i; int j;
    for (i = 0; i < 3; i++)
      for (j = 0; j < 4; j++)
        M[i][j] = i * 10 + j;
    int corner = M[2][3];
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.memory.scalars.at("corner").i, 23);
}

TEST(Interp, FloatArraysRoundToFloat) {
  Program p = parse_or_die(R"(
    float F[2];
    F[0] = 0.1;
    double d = F[0];
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok);
  EXPECT_DOUBLE_EQ(res.memory.scalars.at("d").f, double(float(0.1)));
}

TEST(Interp, IntrinsicCalls) {
  Program p = parse_or_die(R"(
    double a = fabs(-2.5);
    double b = sqrt(9.0);
    double c = max(1.0, 4.0);
    int m = min(7, 3);
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_DOUBLE_EQ(res.memory.scalars.at("a").f, 2.5);
  EXPECT_DOUBLE_EQ(res.memory.scalars.at("b").f, 3.0);
  EXPECT_DOUBLE_EQ(res.memory.scalars.at("c").f, 4.0);
  EXPECT_EQ(res.memory.scalars.at("m").i, 3);
}

TEST(Interp, CheckEquivalentDetectsDifference) {
  Program a = parse_or_die("int x = 1; x = x + 1;");
  Program b_same = parse_or_die("int x = 1; x += 1;");
  Program c_diff = parse_or_die("int x = 1; x = x + 2;");
  EXPECT_EQ(interp::check_equivalent(a, b_same), "");
  EXPECT_NE(interp::check_equivalent(a, c_diff), "");
}

TEST(Interp, ConditionalExprShortCircuits) {
  // Guarded arm must not evaluate: A[9] would be out of bounds via A[idx].
  Program p = parse_or_die(R"(
    int A[4];
    int idx = 9;
    int safe = idx < 4 ? A[idx] : 0;
  )");
  auto res = Interpreter().run(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.memory.scalars.at("safe").i, 0);
}

}  // namespace
}  // namespace slc
