// Tests for the fail-safe transformation pipeline: the structured failure
// taxonomy (support/failure.hpp), the fault-injection facility
// (support/fault.hpp), graceful degradation and resource guards in the
// driver, and the end-to-end error paths (divide-by-zero, out-of-bounds,
// interpreter step budget) that must surface as recorded Failure rows
// instead of crashes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "support/failure.hpp"
#include "support/fault.hpp"

namespace slc {
namespace {

namespace fault = support::fault;
using support::Failure;
using support::FailureKind;
using support::Stage;

/// Arms a fault spec for the lifetime of one test scope. Fault state is
/// process-global, so every test that arms one must disarm on exit.
struct FaultScope {
  explicit FaultScope(const std::string& spec) {
    std::string error;
    EXPECT_TRUE(fault::configure(spec, &error)) << error;
  }
  ~FaultScope() { fault::clear(); }
};

kernels::Kernel make_kernel(std::string name, std::string source) {
  kernels::Kernel k;
  k.name = std::move(name);
  k.suite = "test";
  k.source = std::move(source);
  return k;
}

/// Every deterministic field of a row — everything except the wall-clock
/// and cache-provenance fields, which legitimately vary run to run.
std::string serialize_row(const driver::ComparisonRow& r) {
  std::ostringstream os;
  os << r.kernel << '|' << r.suite << '|' << r.ok << '|' << r.degraded
     << '|' << r.slms_applied << '|' << r.slms_skip_reason << '|'
     << r.report.ii << '|' << r.report.unroll << '|' << r.cycles_base << '|'
     << r.cycles_slms << '|' << r.energy_base << '|' << r.energy_slms << '|'
     << r.misses_base << '|' << r.misses_slms << '|'
     << (r.failure ? r.failure->str() : std::string("-"));
  return os.str();
}

// ---------------------------------------------------------------------------
// Failure / Result / Deadline
// ---------------------------------------------------------------------------

TEST(Failure, BriefAndFullFormat) {
  Failure f = support::make_failure(Stage::Oracle,
                                    FailureKind::OracleMismatch,
                                    "memory differs");
  EXPECT_EQ(f.brief(), "oracle/oracle-mismatch: memory differs");
  EXPECT_EQ(f.str(), f.brief());

  f.kernel = "kernel8";
  f.options = "weak -O3";
  f.transient = true;
  EXPECT_EQ(f.str(),
            "oracle/oracle-mismatch: memory differs "
            "[kernel=kernel8, options=weak -O3] (transient)");
}

TEST(Failure, StageNamesRoundTrip) {
  for (Stage s : {Stage::Parse, Stage::Sema, Stage::Analysis, Stage::Slms,
                  Stage::Lower, Stage::Schedule, Stage::Simulate,
                  Stage::Oracle, Stage::Harness}) {
    std::optional<Stage> back = support::parse_stage(support::to_string(s));
    ASSERT_TRUE(back.has_value()) << support::to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_FALSE(support::parse_stage("bogus").has_value());
}

TEST(Failure, ResultCarriesValueOrFailure) {
  support::Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.take(), 42);

  support::Result<int> bad(
      support::make_failure(Stage::Slms, FailureKind::TransformError, "no"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.failure().kind, FailureKind::TransformError);
}

TEST(Deadline, UnlimitedAndZeroNeverExpire) {
  EXPECT_FALSE(support::Deadline::unlimited().expired());
  EXPECT_FALSE(support::Deadline::after_ms(0).active());
  EXPECT_FALSE(support::Deadline::after_ms(0).expired());
}

TEST(Deadline, FarFutureNotExpiredYet) {
  support::Deadline d = support::Deadline::after_ms(60'000);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());
}

// ---------------------------------------------------------------------------
// fault spec parsing + trigger semantics
// ---------------------------------------------------------------------------

TEST(FaultConfig, ParsesEveryKindAndFilter) {
  FaultScope scope(
      "parse:throw,slms:fail@kernel8,oracle:fail-once,simulate:delay=1,"
      "bug:mve-skip-rename");
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::bug_planted("mve-skip-rename"));
  EXPECT_FALSE(fault::bug_planted("other-bug"));
}

TEST(FaultConfig, RejectsMalformedSpecs) {
  for (const char* bad : {"bogus:fail", "slms:what", "slms", "bug:",
                          "simulate:delay=abc", "simulate:delay=-3"}) {
    std::string error;
    EXPECT_FALSE(fault::configure(bad, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
    EXPECT_FALSE(fault::enabled()) << bad;  // bad spec leaves nothing armed
  }
  fault::clear();
}

TEST(FaultTrigger, DisarmedReturnsNothing) {
  fault::clear();
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::trigger(Stage::Slms, "kernel1").has_value());
}

TEST(FaultTrigger, FailReturnsInjectedFailureAtMatchingStageOnly) {
  FaultScope scope("slms:fail");
  EXPECT_FALSE(fault::trigger(Stage::Parse, "k").has_value());
  std::optional<Failure> f = fault::trigger(Stage::Slms, "k");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->stage, Stage::Slms);
  EXPECT_EQ(f->kind, FailureKind::Injected);
  EXPECT_FALSE(f->transient);
  // fail (unlike fail-once) keeps firing.
  EXPECT_TRUE(fault::trigger(Stage::Slms, "k").has_value());
}

TEST(FaultTrigger, ThrowKindThrowsFaultInjected) {
  FaultScope scope("oracle:throw");
  EXPECT_THROW((void)fault::trigger(Stage::Oracle, "k"),
               fault::FaultInjected);
}

TEST(FaultTrigger, FailOnceIsTransientAndFiresExactlyOnce) {
  FaultScope scope("lower:fail-once");
  std::optional<Failure> first = fault::trigger(Stage::Lower, "k");
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->transient);
  EXPECT_FALSE(fault::trigger(Stage::Lower, "k").has_value());
}

TEST(FaultTrigger, KernelFilterMatchesSubstring) {
  FaultScope scope("slms:fail@ernel8");
  EXPECT_FALSE(fault::trigger(Stage::Slms, "kernel1").has_value());
  EXPECT_TRUE(fault::trigger(Stage::Slms, "kernel8").has_value());
}

// ---------------------------------------------------------------------------
// driver: per-stage injection → degrade or fail, never crash
// ---------------------------------------------------------------------------

const char* kSimpleLoop =
    "double A[64]; double B[64]; int i;\n"
    "for (i = 0; i < 60; i += 1) { A[i] = B[i] * 2.0 + 1.0; }\n";

driver::CompareOptions fast_options() {
  driver::CompareOptions o;
  o.jobs = 1;
  return o;
}

TEST(FailSafePipeline, CleanRowHasNoFailure) {
  fault::clear();
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("clean", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_TRUE(row.ok);
  EXPECT_FALSE(row.degraded);
  EXPECT_FALSE(row.failure.has_value());
  EXPECT_TRUE(row.slms_applied);
}

TEST(FailSafePipeline, ParseFaultFailsRowWithRecordedFailure) {
  FaultScope scope("parse:fail");
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("pf", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_FALSE(row.ok);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->stage, Stage::Parse);
  EXPECT_EQ(row.failure->kind, FailureKind::Injected);
}

TEST(FailSafePipeline, SlmsFaultDegradesToBaseMetrics) {
  FaultScope scope("slms:fail");
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("sf", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_TRUE(row.ok);  // suite keeps the row: base numbers are real
  EXPECT_TRUE(row.degraded);
  EXPECT_FALSE(row.slms_applied);
  EXPECT_EQ(row.cycles_base, row.cycles_slms);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->stage, Stage::Slms);
  EXPECT_EQ(row.failure->kind, FailureKind::Injected);
}

TEST(FailSafePipeline, ThrowAtSlmsIsCapturedAndDegrades) {
  FaultScope scope("slms:throw");
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("st", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_TRUE(row.ok);
  EXPECT_TRUE(row.degraded);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->kind, FailureKind::Injected);
}

TEST(FailSafePipeline, OracleFaultDegrades) {
  FaultScope scope("oracle:fail");
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("of", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_TRUE(row.ok);
  EXPECT_TRUE(row.degraded);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->stage, Stage::Oracle);
}

TEST(FailSafePipeline, ScheduleFaultFailsRow) {
  FaultScope scope("schedule:fail");
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("schf", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_FALSE(row.ok);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->stage, Stage::Schedule);
}

TEST(FailSafePipeline, SimulateFaultFailsRowViaSimulator) {
  FaultScope scope("simulate:fail");
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("simf", kSimpleLoop), driver::weak_compiler_o3(),
      fast_options());
  EXPECT_FALSE(row.ok);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->stage, Stage::Simulate);
  EXPECT_EQ(row.failure->kind, FailureKind::Injected);
}

TEST(FailSafePipeline, FailOnceIsClearedByRetry) {
  FaultScope scope("parse:fail-once");
  driver::CompareOptions opts = fast_options();
  opts.transform_retries = 1;
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("retry", kSimpleLoop), driver::weak_compiler_o3(), opts);
  EXPECT_TRUE(row.ok) << (row.failure ? row.failure->str() : row.error);
  EXPECT_FALSE(row.degraded);
}

TEST(FailSafePipeline, FailOnceWithoutRetryFails) {
  FaultScope scope("parse:fail-once");
  driver::CompareOptions opts = fast_options();
  opts.transform_retries = 0;
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("noretry", kSimpleLoop), driver::weak_compiler_o3(), opts);
  EXPECT_FALSE(row.ok);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_TRUE(row.failure->transient);
}

TEST(FailSafePipeline, DelayFaultTripsRowDeadline) {
  FaultScope scope("parse:delay=60");
  driver::CompareOptions opts = fast_options();
  opts.row_deadline_ms = 10;
  driver::ComparisonRow row = driver::compare_kernel(
      make_kernel("slow", kSimpleLoop), driver::weak_compiler_o3(), opts);
  EXPECT_FALSE(row.ok);
  ASSERT_TRUE(row.failure.has_value());
  EXPECT_EQ(row.failure->kind, FailureKind::DeadlineExceeded);
}

// ---------------------------------------------------------------------------
// error paths end-to-end (ISSUE satellite): organic failures must surface
// as recorded Failure rows through compare_kernels, not crashes
// ---------------------------------------------------------------------------

TEST(ErrorPaths, DivideByZeroIsRecorded) {
  fault::clear();
  kernels::Kernel k = make_kernel(
      "div0",
      "int A[64]; int i;\n"
      "for (i = 0; i < 32; i += 1) { A[i] = 100 / (i - 10); }\n");
  std::vector<driver::ComparisonRow> rows = driver::compare_kernels(
      {k}, driver::weak_compiler_o3(), fast_options());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ok);
  ASSERT_TRUE(rows[0].failure.has_value());
  EXPECT_EQ(rows[0].failure->kind, FailureKind::DivideByZero)
      << rows[0].failure->str();
}

TEST(ErrorPaths, OutOfBoundsIsRecorded) {
  fault::clear();
  kernels::Kernel k = make_kernel(
      "oob",
      "double A[64]; double B[64]; int i;\n"
      "for (i = 0; i < 60; i += 1) { A[i + 100] = B[i] + 1.0; }\n");
  std::vector<driver::ComparisonRow> rows = driver::compare_kernels(
      {k}, driver::weak_compiler_o3(), fast_options());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ok);
  ASSERT_TRUE(rows[0].failure.has_value());
  EXPECT_EQ(rows[0].failure->kind, FailureKind::OutOfBounds)
      << rows[0].failure->str();
}

TEST(ErrorPaths, InterpreterStepBudgetIsRecorded) {
  fault::clear();
  kernels::Kernel k = make_kernel(
      "steps",
      "double A[128]; double B[128]; int i;\n"
      "for (i = 0; i < 120; i += 1) { A[i] = B[i] + 1.0; }\n");
  driver::CompareOptions opts = fast_options();
  opts.max_interp_steps = 50;  // far below what 120 iterations need
  std::vector<driver::ComparisonRow> rows = driver::compare_kernels(
      {k}, driver::weak_compiler_o3(), opts);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ok);
  ASSERT_TRUE(rows[0].failure.has_value());
  EXPECT_EQ(rows[0].failure->kind, FailureKind::StepLimit)
      << rows[0].failure->str();
}

// ---------------------------------------------------------------------------
// suite-level guarantees under injection
// ---------------------------------------------------------------------------

TEST(FailSafePipeline, SuiteKeepsRunningAndOtherRowsAreByteIdentical) {
  fault::clear();
  driver::CompareOptions opts;
  opts.jobs = 4;
  std::vector<driver::ComparisonRow> clean = driver::compare_suite(
      "livermore", driver::weak_compiler_o3(), opts);
  ASSERT_FALSE(clean.empty());

  std::vector<driver::ComparisonRow> faulted;
  {
    FaultScope scope("slms:fail@kernel8");
    faulted = driver::compare_suite("livermore",
                                    driver::weak_compiler_o3(), opts);
  }
  ASSERT_EQ(faulted.size(), clean.size());
  int affected = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    if (clean[i].kernel == "kernel8") {
      EXPECT_TRUE(faulted[i].degraded);
      ASSERT_TRUE(faulted[i].failure.has_value());
      EXPECT_EQ(faulted[i].failure->kind, FailureKind::Injected);
      ++affected;
    } else {
      // Non-injected rows are byte-identical to the clean run.
      EXPECT_EQ(serialize_row(clean[i]), serialize_row(faulted[i]))
          << clean[i].kernel;
    }
  }
  EXPECT_EQ(affected, 1);
}

TEST(FailSafePipeline, InjectedRowsDeterministicAcrossJobs) {
  FaultScope scope("oracle:fail@kernel1,slms:throw@kernel7");
  std::vector<std::string> serialized[2];
  int idx = 0;
  for (int jobs : {1, 4}) {
    driver::CompareOptions opts;
    opts.jobs = jobs;
    for (const driver::ComparisonRow& r : driver::compare_suite(
             "livermore", driver::weak_compiler_o3(), opts))
      serialized[idx].push_back(serialize_row(r));
    ++idx;
  }
  EXPECT_EQ(serialized[0], serialized[1]);
}

}  // namespace
}  // namespace slc
