// While-loop unrolling (paper §10 enabling step).
#include <gtest/gtest.h>

#include "ast/build.hpp"
#include "tests/helpers.hpp"
#include "xform/xform.hpp"

namespace slc {
namespace {

using namespace ast;
using test::expect_equivalent;
using test::parse_or_die;

WhileStmt* first_while(Program& p) {
  for (StmtPtr& s : p.stmts)
    if (auto* w = dyn_cast<WhileStmt>(s.get())) return w;
  return nullptr;
}

void splice_while(Program& p, std::vector<StmtPtr> repl) {
  for (StmtPtr& s : p.stmts)
    if (s->kind() == StmtKind::While) {
      s = build::block(std::move(repl));
      return;
    }
  FAIL() << "no while loop";
}

TEST(WhileUnroll, CountingLoop) {
  const char* src = R"(
    double A[128];
    int i = 0;
    while (i < 100) {
      A[i] = A[i] + 1.0;
      i++;
    }
  )";
  for (int factor : {2, 3, 5}) {
    Program original = parse_or_die(src);
    Program work = original.clone();
    auto outcome = xform::unroll_while(*first_while(work), factor);
    ASSERT_TRUE(outcome.applied()) << outcome.reason;
    splice_while(work, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
}

TEST(WhileUnroll, SentinelScan) {
  // Data-dependent exit (the §10 shifted-copy shape): the re-tested
  // condition between copies must preserve the exact stop position.
  const char* src = R"(
    int a[128];
    int i;
    int stop;
    for (i = 0; i < 100; i++) a[i] = 1 + i % 7;
    for (i = 100; i < 128; i++) a[i] = 0;
    i = 0;
    while (a[i + 2] != 0) {
      a[i] = a[i + 2];
      i++;
    }
    stop = i;
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::unroll_while(*first_while(work), 2);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_while(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(WhileUnroll, BodyWithInnerBreakStillWorks) {
  const char* src = R"(
    int a[64];
    int i = 0;
    int found = -1;
    while (i < 60) {
      if (a[i] == 3) { found = i; break; }
      i++;
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::unroll_while(*first_while(work), 4);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_while(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(WhileUnroll, ZeroIterationLoop) {
  const char* src = R"(
    int i = 10;
    int x = 0;
    while (i < 10) { x = x + 1; i++; }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::unroll_while(*first_while(work), 2);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_while(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(WhileUnroll, RejectsFactorOne) {
  Program p = parse_or_die("int i = 0; while (i < 4) i++;");
  // Body is a block after parsing? Single statement is not wrapped for
  // while loops by the parser — it is; verify behaviour either way.
  auto outcome = xform::unroll_while(*first_while(p), 1);
  EXPECT_FALSE(outcome.applied());
}

}  // namespace
}  // namespace slc
