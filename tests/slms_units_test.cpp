// Direct unit tests for the SLMS building blocks: if-conversion shapes,
// decomposition selection, resource splitting, and name allocation.
#include <gtest/gtest.h>

#include "ast/build.hpp"
#include "ast/printer.hpp"
#include "analysis/access.hpp"
#include "slms/decompose.hpp"
#include "slms/ifconvert.hpp"
#include "slms/names.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
using test::parse_or_die;
using test::parse_stmt_or_die;

// ---------------------------------------------------------------------------
// NameAllocator
// ---------------------------------------------------------------------------

TEST(Names, FreshAvoidsCollisions) {
  Program p = parse_or_die("int reg; double reg1; double pred;");
  slms::NameAllocator names = slms::NameAllocator::for_program(p);
  EXPECT_EQ(names.fresh("reg"), "reg2");
  EXPECT_EQ(names.fresh("reg"), "reg3");  // registers its own results
  EXPECT_EQ(names.fresh("pred"), "pred1");
  EXPECT_EQ(names.fresh("tmp"), "tmp");
  EXPECT_TRUE(names.taken("tmp"));
}

TEST(Names, SeedsFromArraysToo) {
  Program p = parse_or_die("double A[4]; double x; x = A[0];");
  slms::NameAllocator names = slms::NameAllocator::for_program(p);
  EXPECT_EQ(names.fresh("A"), "A1");
}

// ---------------------------------------------------------------------------
// if-conversion
// ---------------------------------------------------------------------------

BlockStmt* body_of(StmtPtr& loop) {
  return dyn_cast<BlockStmt>(dyn_cast<ForStmt>(loop.get())->body.get());
}

TEST(IfConvert, SimpleThenElse) {
  StmtPtr loop = parse_stmt_or_die(R"(
    for (i = 0; i < 8; i++) {
      if (x < y) { x = x + 1; A[i] += x; }
      else y = y + 1;
    }
  )");
  slms::NameAllocator names;
  std::vector<StmtPtr> decls;
  auto result = slms::if_convert_body(*body_of(loop), names, decls);
  ASSERT_TRUE(result.ok) << result.reject_reason;
  EXPECT_TRUE(result.changed);
  ASSERT_EQ(decls.size(), 2u);  // pred + negated pred

  const auto& stmts = body_of(loop)->stmts;
  ASSERT_EQ(stmts.size(), 5u);  // p=; 2 guarded; q=; 1 guarded
  // First statement computes the predicate.
  EXPECT_EQ(stmts[0]->kind(), StmtKind::Assign);
  const auto* then1 = dyn_cast<AssignStmt>(stmts[1].get());
  ASSERT_NE(then1, nullptr);
  EXPECT_NE(then1->guard, nullptr);
  std::string printed = to_source(*loop);
  EXPECT_NE(printed.find("if (pred)"), std::string::npos) << printed;
  EXPECT_NE(printed.find("if (pred1)"), std::string::npos) << printed;
}

TEST(IfConvert, NestedIfComposesGuards) {
  StmtPtr loop = parse_stmt_or_die(R"(
    for (i = 0; i < 8; i++) {
      if (a > 0.0) {
        if (b > 0.0) c = c + 1.0;
      }
    }
  )");
  slms::NameAllocator names;
  std::vector<StmtPtr> decls;
  auto result = slms::if_convert_body(*body_of(loop), names, decls);
  ASSERT_TRUE(result.ok) << result.reject_reason;
  // Inner predicate must conjoin the outer guard: pred1 = pred && (...).
  std::string printed = to_source(*loop);
  EXPECT_NE(printed.find("pred && "), std::string::npos) << printed;
}

TEST(IfConvert, RejectsDeclInBranch) {
  StmtPtr loop = parse_stmt_or_die(R"(
    for (i = 0; i < 8; i++) {
      if (a > 0.0) { double t; t = 1.0; b = t; }
    }
  )");
  slms::NameAllocator names;
  std::vector<StmtPtr> decls;
  auto result = slms::if_convert_body(*body_of(loop), names, decls);
  EXPECT_FALSE(result.ok);
}

TEST(IfConvert, NoIfMeansNoChange) {
  StmtPtr loop = parse_stmt_or_die(
      "for (i = 0; i < 8; i++) { A[i] = A[i] + 1.0; }");
  slms::NameAllocator names;
  std::vector<StmtPtr> decls;
  auto result = slms::if_convert_body(*body_of(loop), names, decls);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.changed);
  EXPECT_TRUE(decls.empty());
}

// ---------------------------------------------------------------------------
// decomposition
// ---------------------------------------------------------------------------

std::vector<StmtPtr> body_stmts(const char* src) {
  StmtPtr loop = parse_stmt_or_die(src);
  auto* block = dyn_cast<BlockStmt>(dyn_cast<ForStmt>(loop.get())->body.get());
  std::vector<StmtPtr> out;
  for (StmtPtr& s : block->stmts) out.push_back(std::move(s));
  return out;
}

TEST(Decompose, PrefersAntiDependentLoad) {
  auto mis = body_stmts(
      "for (i = 2; i < 30; i++) { A[i] = A[i - 1] + A[i + 2]; }");
  slms::NameAllocator names;
  auto result = slms::decompose_once(
      mis, "i", 1, names, [](const std::string&) { return ScalarType::Double; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->array, "A");
  ASSERT_EQ(mis.size(), 2u);
  // The hoisted load is the anti-dependent A[i+2], not the flow A[i-1].
  std::string head = to_source(*mis[0]);
  EXPECT_NE(head.find("A[i + 2]"), std::string::npos) << head;
}

TEST(Decompose, RefusesFlowDependentLoads) {
  // Every load is fed by the store: nothing is hoistable.
  auto mis = body_stmts(
      "for (i = 2; i < 30; i++) { A[i] = A[i - 1] * A[i - 2]; }");
  slms::NameAllocator names;
  auto result = slms::decompose_once(
      mis, "i", 1, names, [](const std::string&) { return ScalarType::Double; });
  EXPECT_FALSE(result.has_value());
}

TEST(Decompose, SkipsGuardedStatements) {
  auto mis = body_stmts(
      "for (i = 0; i < 30; i++) { x = B[i] + 1.0; }");
  dyn_cast<AssignStmt>(mis[0].get())->guard = build::var("g");
  slms::NameAllocator names;
  auto result = slms::decompose_once(
      mis, "i", 1, names, [](const std::string&) { return ScalarType::Double; });
  EXPECT_FALSE(result.has_value());
}

TEST(Split, ResourceSplittingBoundsOpCount) {
  auto mis = body_stmts(
      "for (i = 0; i < 30; i++) "
      "{ x = A[i] + B[i] + C[i] + D[i] + A[i + 1] + B[i + 1]; }");
  slms::NameAllocator names;
  std::vector<StmtPtr> decls;
  int splits = slms::split_by_resources(
      mis, 2, names, [](const std::string&) { return ScalarType::Double; },
      decls);
  EXPECT_GT(splits, 0);
  EXPECT_GT(mis.size(), 1u);
  EXPECT_EQ(decls.size(), std::size_t(splits));
  // Left-association must be preserved: evaluating the split chain gives
  // the same value tree; verified structurally by reprinting.
  for (const StmtPtr& s : mis) {
    analysis::AccessSet set = analysis::collect_accesses(*s);
    EXPECT_LE(set.arith_op_count, 2) << to_source(*s);
  }
}

}  // namespace
}  // namespace slc
