// Tests for the parallel evaluation harness: thread-pool fan-out
// determinism, slot-resolved vs map-based interpreter identity, and
// transform-cache behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "driver/pipeline.hpp"
#include "frontend/parser.hpp"
#include "interp/interp.hpp"
#include "interp/resolve.hpp"
#include "kernels/kernels.hpp"
#include "slms/slms.hpp"
#include "support/thread_pool.hpp"

namespace slc {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / parallel_for
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    support::parallel_for(hits.size(), jobs,
                          [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " jobs " << jobs;
  }
}

TEST(ThreadPool, ParallelForRethrowsWorkerException) {
  EXPECT_THROW(
      support::parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
}

TEST(ThreadPool, WaitIdleRethrowsTaskException) {
  // A throwing task must not terminate the process (the pre-fail-safe
  // behaviour): the pool captures the first exception and rethrows it
  // from wait_idle(), after every queued task has drained.
  support::ThreadPool pool(2);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&completed, i] {
      if (i == 3) throw std::runtime_error("task boom");
      completed.fetch_add(1);
    });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(completed.load(), 7);
  // The error is consumed: the pool is reusable afterwards.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(support::resolve_jobs(3), 3);
  EXPECT_GE(support::resolve_jobs(0), 1);
}

// ---------------------------------------------------------------------------
// slot-resolved interpreter vs the map-based reference store
// ---------------------------------------------------------------------------

void expect_images_identical(const ast::Program& program,
                             const std::string& label) {
  for (std::uint64_t seed : {0ULL, 7ULL}) {
    interp::InterpOptions slot_opts;
    slot_opts.resolve_slots = true;
    interp::InterpOptions map_opts;
    map_opts.resolve_slots = false;

    interp::RunResult rs = interp::Interpreter(slot_opts).run(program, seed);
    interp::RunResult rm = interp::Interpreter(map_opts).run(program, seed);
    ASSERT_EQ(rs.ok, rm.ok) << label << " seed " << seed << ": "
                            << rs.error << " vs " << rm.error;
    EXPECT_EQ(rs.steps, rm.steps) << label;
    if (!rs.ok) {
      EXPECT_EQ(rs.error, rm.error) << label;
      continue;
    }
    EXPECT_EQ(rs.memory.diff(rm.memory), "") << label << " seed " << seed;
    EXPECT_EQ(rm.memory.diff(rs.memory), "") << label << " seed " << seed;
  }
}

TEST(SlotInterp, MatchesMapStoreOnEveryRegistryKernel) {
  for (const kernels::Kernel& k : kernels::all_kernels()) {
    DiagnosticEngine diags;
    ast::Program program = frontend::parse_program(k.source, diags);
    ASSERT_FALSE(diags.has_errors()) << k.name;
    expect_images_identical(program, k.name);
  }
}

TEST(SlotInterp, MatchesMapStoreOnSlmsTransformedKernels) {
  int transformed_count = 0;
  for (const kernels::Kernel& k : kernels::suite("livermore")) {
    DiagnosticEngine diags;
    ast::Program program = frontend::parse_program(k.source, diags);
    ASSERT_FALSE(diags.has_errors()) << k.name;
    std::vector<slms::SlmsReport> reports = slms::apply_slms(program);
    if (reports.empty() || !reports.front().applied) continue;
    ++transformed_count;
    // SLMS splices new declarations/refs into the program; resolution
    // must pick them up (stale-annotation regression check).
    expect_images_identical(program, k.name + " (slms)");
  }
  EXPECT_GT(transformed_count, 0);
}

TEST(SlotInterp, ReresolutionSurvivesProgramGrowth) {
  DiagnosticEngine diags;
  ast::Program program = frontend::parse_program(
      "int n = 8; double a[8]; double s = 0.0;\n"
      "for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }\n",
      diags);
  ASSERT_FALSE(diags.has_errors());
  // Run once (annotates slots), transform (adds names), run again.
  interp::RunResult first = interp::Interpreter().run(program, 0);
  ASSERT_TRUE(first.ok) << first.error;
  (void)slms::apply_slms(program);
  expect_images_identical(program, "post-slms reresolution");
}

TEST(SlotInterp, ResolverAssignsDenseStableSlots) {
  DiagnosticEngine diags;
  ast::Program program = frontend::parse_program(
      "double a[4]; double b[4]; int i = 0; int j = 1;\n"
      "for (i = 0; i < 4; i = i + 1) { a[i] = b[i] + j; }\n",
      diags);
  ASSERT_FALSE(diags.has_errors());
  interp::SlotTable t1 = interp::resolve_slots(program);
  interp::SlotTable t2 = interp::resolve_slots(program);
  EXPECT_EQ(t1.scalar_names, t2.scalar_names);
  EXPECT_EQ(t1.array_names, t2.array_names);
  EXPECT_EQ(t1.num_scalars(), 2u);  // i, j
  EXPECT_EQ(t1.num_arrays(), 2u);   // a, b
}

// ---------------------------------------------------------------------------
// compare_suite determinism across jobs settings
// ---------------------------------------------------------------------------

std::string serialize_rows(const std::vector<driver::ComparisonRow>& rows) {
  std::ostringstream os;
  for (const driver::ComparisonRow& r : rows) {
    os << r.kernel << '|' << r.suite << '|' << r.slms_applied << '|'
       << r.slms_skip_reason << '|' << r.ok << '|' << r.error << '|'
       << r.cycles_base << '|' << r.cycles_slms << '|' << r.energy_base
       << '|' << r.energy_slms << '|' << r.misses_base << '|'
       << r.misses_slms << '|' << r.report.ii << '|' << r.report.unroll
       << '|' << r.report.stages << '|' << r.report.num_mis << '|'
       << r.report.decompositions << '|' << r.report.renamed_scalars << '\n';
  }
  return os.str();
}

TEST(CompareSuite, ByteIdenticalRowsAtJobs1AndJobs8) {
  driver::Backend backend = driver::weak_compiler_o3();

  driver::transform_cache_reset();
  driver::CompareOptions seq;
  seq.jobs = 1;
  std::vector<driver::ComparisonRow> rows1 =
      driver::compare_suite("linpack", backend, seq);

  driver::transform_cache_reset();  // force parallel recomputation
  driver::CompareOptions par;
  par.jobs = 8;
  std::vector<driver::ComparisonRow> rows8 =
      driver::compare_suite("linpack", backend, par);

  ASSERT_FALSE(rows1.empty());
  ASSERT_EQ(rows1.size(), rows8.size());
  EXPECT_EQ(serialize_rows(rows1), serialize_rows(rows8));
  for (const driver::ComparisonRow& r : rows1) EXPECT_GT(r.wall_ns, 0u);
}

// ---------------------------------------------------------------------------
// transform memoization
// ---------------------------------------------------------------------------

TEST(TransformCache, SecondBackendHitsCache) {
  const kernels::Kernel* k = kernels::find("linpack_daxpy");
  if (k == nullptr) k = &kernels::all_kernels().front();

  driver::transform_cache_reset();
  driver::CompareOptions options;
  driver::ComparisonRow first =
      driver::compare_kernel(*k, driver::weak_compiler_o3(), options);
  driver::ComparisonRow second =
      driver::compare_kernel(*k, driver::strong_compiler_icc(), options);

  EXPECT_FALSE(first.transform_cached);
  EXPECT_TRUE(second.transform_cached);
  driver::TransformCacheStats stats = driver::transform_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // Both rows still measured independently on their own backend.
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.kernel, second.kernel);
}

TEST(TransformCache, CachedRowsMatchUncachedRows) {
  driver::Backend backend = driver::weak_compiler_o3();

  driver::transform_cache_reset();
  driver::CompareOptions cached;
  cached.jobs = 1;
  std::vector<driver::ComparisonRow> warm_a =
      driver::compare_suite("linpack", backend, cached);
  std::vector<driver::ComparisonRow> warm_b =
      driver::compare_suite("linpack", backend, cached);  // all hits

  driver::CompareOptions uncached;
  uncached.jobs = 1;
  uncached.use_transform_cache = false;
  std::vector<driver::ComparisonRow> cold =
      driver::compare_suite("linpack", backend, uncached);

  EXPECT_EQ(serialize_rows(warm_a), serialize_rows(warm_b));
  EXPECT_EQ(serialize_rows(warm_a), serialize_rows(cold));
  for (const driver::ComparisonRow& r : warm_b)
    EXPECT_TRUE(r.transform_cached) << r.kernel;
}

}  // namespace
}  // namespace slc
