// Static legality verifier (src/verify) tests.
//
// Four contracts are pinned down here:
//   1. Zero false positives: every golden program — examples, the kernel
//      registry, the fuzz corpus — lints clean under every renaming mode.
//   2. Completeness on planted bugs: each `bug:<name>` miscompile is
//      caught statically, with the expected stable diagnostic code.
//   3. Tampered metadata is rejected: the verifier trusts nothing the
//      placement record says without checking it.
//   4. Static/runtime agreement: over a sweep of generated loops the
//      static verdict and the interpreter oracle never disagree.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"
#include "kernels/kernels.hpp"
#include "slms/slms.hpp"
#include "support/fault.hpp"
#include "verify/lint.hpp"
#include "verify/verify.hpp"

namespace {

using namespace slc;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

verify::LintOptions lint_options(slms::RenamingChoice renaming,
                                 bool filter = false) {
  verify::LintOptions o;
  o.slms.renaming = renaming;
  o.slms.enable_filter = filter;
  return o;
}

const std::vector<slms::RenamingChoice> kAllRenamings = {
    slms::RenamingChoice::Mve, slms::RenamingChoice::ScalarExpansion,
    slms::RenamingChoice::None};

/// Arms one planted bug for the duration of a test body.
class PlantedBug {
 public:
  explicit PlantedBug(const std::string& name) {
    std::string error;
    EXPECT_TRUE(support::fault::configure("bug:" + name, &error)) << error;
  }
  ~PlantedBug() { support::fault::clear(); }
};

// --- 1. zero false positives on golden programs --------------------------

TEST(StaticVerify, KernelRegistryLintsClean) {
  for (const kernels::Kernel& k : kernels::all_kernels()) {
    for (slms::RenamingChoice renaming : kAllRenamings) {
      verify::LintResult res = verify::run_lint(k.source, lint_options(renaming));
      EXPECT_TRUE(res.clean())
          << k.name << ": " << res.diags.str(Severity::Error);
    }
  }
}

TEST(StaticVerify, ExamplesAndCorpusLintClean) {
  for (const char* dir : {SLC_EXAMPLES_DIR, SLC_CORPUS_DIR}) {
    int seen = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() != ".c") continue;
      ++seen;
      std::string source = read_file(entry.path());
      for (slms::RenamingChoice renaming : kAllRenamings) {
        verify::LintResult res =
            verify::run_lint(source, lint_options(renaming));
        EXPECT_TRUE(res.clean()) << entry.path().filename() << ": "
                                 << res.diags.str(Severity::Error);
      }
    }
    EXPECT_GT(seen, 0) << "no .c files under " << dir;
  }
}

// --- 2. every planted miscompile is caught, with its stable code ---------

std::string clobber_source() {
  return read_file(std::filesystem::path(SLC_EXAMPLES_DIR) /
                   "lint_clobber.c");
}
std::string oob_source() {
  return read_file(std::filesystem::path(SLC_EXAMPLES_DIR) / "lint_oob.c");
}

void expect_caught(const std::string& bug, const std::string& source,
                   const char* code) {
  PlantedBug armed(bug);
  verify::LintResult res =
      verify::run_lint(source, lint_options(slms::RenamingChoice::Mve));
  EXPECT_GT(res.loops_applied, 0) << bug;
  EXPECT_FALSE(res.clean()) << bug << ": miscompile not caught statically";
  EXPECT_TRUE(res.diags.has_code(code))
      << bug << ": expected " << code << ", got\n"
      << res.diags.str(Severity::Error);
}

TEST(StaticVerify, CatchesMveSkipRename) {
  expect_caught("mve-skip-rename", clobber_source(),
                verify::kDepViolation);
}
TEST(StaticVerify, CatchesSchedSigmaSkew) {
  expect_caught("sched-sigma-skew", clobber_source(),
                verify::kDepViolation);
}
TEST(StaticVerify, CatchesKernelRunOver) {
  expect_caught("kernel-run-over", clobber_source(), verify::kIterCoverage);
}
TEST(StaticVerify, CatchesPrologueDrop) {
  expect_caught("prologue-drop", clobber_source(), verify::kIterCoverage);
}
TEST(StaticVerify, CatchesFixupStaleCopy) {
  expect_caught("fixup-stale-copy", clobber_source(), verify::kRenameUndef);
}
TEST(StaticVerify, CatchesPrologueEarlyIv) {
  expect_caught("prologue-early-iv", oob_source(), verify::kIterCoverage);
  {
    // The shifted prologue also reads B[-1]; the bounds checker must
    // prove it without running anything.
    PlantedBug armed("prologue-early-iv");
    verify::LintResult res = verify::run_lint(
        oob_source(), lint_options(slms::RenamingChoice::Mve));
    EXPECT_TRUE(res.diags.has_code(verify::kOob))
        << res.diags.str(Severity::Error);
  }
}

// --- 3. tampered placement metadata ---------------------------------------

struct AppliedLoop {
  ast::Program program;
  std::vector<slms::SlmsApplication> applications;
};

AppliedLoop transform_clobber() {
  AppliedLoop out;
  DiagnosticEngine diags;
  out.program = frontend::parse_program(clobber_source(), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  slms::apply_slms(out.program, opts, &out.applications);
  EXPECT_EQ(out.applications.size(), 1u);
  EXPECT_TRUE(out.applications.front().applied());
  return out;
}

bool verify_app(const AppliedLoop& loop, DiagnosticEngine& diags) {
  const slms::SlmsApplication& app = loop.applications.front();
  return verify::verify_loop(*app.placement, *app.replacement, diags);
}

TEST(StaticVerify, UntamperedPlacementVerifies) {
  AppliedLoop loop = transform_clobber();
  DiagnosticEngine diags;
  EXPECT_TRUE(verify_app(loop, diags)) << diags.str(Severity::Error);
}

TEST(StaticVerify, TamperedIiIsRejected) {
  AppliedLoop loop = transform_clobber();
  loop.applications.front().placement->ii = 0;
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_app(loop, diags));
  EXPECT_TRUE(diags.has_code(verify::kStructure)) << diags.str();
}

TEST(StaticVerify, TamperedStageCountIsRejected) {
  AppliedLoop loop = transform_clobber();
  loop.applications.front().placement->stages += 1;
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_app(loop, diags));
  EXPECT_TRUE(diags.has_code(verify::kStructure)) << diags.str();
}

TEST(StaticVerify, TamperedSigmaIsRejected) {
  AppliedLoop loop = transform_clobber();
  // Swap two MIs' slots: the recorded schedule no longer matches the
  // emitted pipeline, so dependences and/or coverage must complain.
  auto& sigma = loop.applications.front().placement->sigma;
  ASSERT_GE(sigma.size(), 2u);
  std::swap(sigma.front(), sigma.back());
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_app(loop, diags));
}

TEST(StaticVerify, DroppedRenameTableIsRejected) {
  AppliedLoop loop = transform_clobber();
  // Claim no renames happened while `planned` still lists the scalar:
  // the emitted copies no longer match the expected instances.
  loop.applications.front().placement->renames.clear();
  DiagnosticEngine diags;
  EXPECT_FALSE(verify_app(loop, diags));
}

TEST(StaticVerify, MissingReplacementIsRejected) {
  AppliedLoop loop = transform_clobber();
  loop.applications.front().replacement = nullptr;
  DiagnosticEngine diags;
  EXPECT_FALSE(verify::verify_transformed(loop.program, loop.applications,
                                          diags));
  EXPECT_TRUE(diags.has_code(verify::kStructure)) << diags.str();
}

// --- 4. static bounds checker ---------------------------------------------

int bounds_errors(const std::string& source, int* warnings = nullptr) {
  DiagnosticEngine diags;
  ast::Program program = frontend::parse_program(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  verify::check_bounds(program, diags);
  if (warnings != nullptr)
    *warnings = int(diags.count(Severity::Warning)) -
                int(diags.error_count());
  return int(diags.error_count());
}

TEST(StaticBounds, FlagsProvableOverrun) {
  EXPECT_GE(bounds_errors("double A[10];\n"
                          "int i;\n"
                          "for (i = 0; i < 20; i++) { A[i] = 1.0; }\n"),
            1);
}

TEST(StaticBounds, FlagsNegativeConstantIndex) {
  EXPECT_GE(bounds_errors("double A[10];\nA[0 - 1] = 1.0;\n"), 1);
}

TEST(StaticBounds, FlagsShiftedSubscriptUnderrun) {
  EXPECT_GE(bounds_errors("double A[10];\n"
                          "int i;\n"
                          "for (i = 0; i < 5; i++) { A[i - 2] = 1.0; }\n"),
            1);
}

TEST(StaticBounds, CleanLoopIsSilent) {
  int warnings = 0;
  EXPECT_EQ(bounds_errors("double A[10];\n"
                          "int i;\n"
                          "for (i = 2; i < 10; i++) { A[i - 2] = 1.0; }\n",
                          &warnings),
            0);
  EXPECT_EQ(warnings, 0);
}

TEST(StaticBounds, GuardedAccessOnlyWarns) {
  int warnings = 0;
  EXPECT_EQ(bounds_errors("double A[10];\n"
                          "int i;\n"
                          "for (i = 0; i < 20; i++) {\n"
                          "  if (i < 10) { A[i] = 1.0; }\n"
                          "}\n",
                          &warnings),
            0);
  EXPECT_GE(warnings, 1);
}

TEST(StaticBounds, LoopWithBreakOnlyWarns) {
  int warnings = 0;
  EXPECT_EQ(bounds_errors("double A[10];\n"
                          "int i;\n"
                          "for (i = 0; i < 20; i++) {\n"
                          "  A[i] = 1.0;\n"
                          "  if (i > 3) { break; }\n"
                          "}\n",
                          &warnings),
            0);
  EXPECT_GE(warnings, 1);
}

TEST(StaticBounds, SymbolicSubscriptIsSkipped) {
  // n is unbounded — nothing provable, so nothing reported.
  int warnings = 0;
  EXPECT_EQ(bounds_errors("double A[10];\nint n;\nA[n] = 1.0;\n", &warnings),
            0);
  EXPECT_EQ(warnings, 0);
}

// --- 5. static/runtime agreement ------------------------------------------

TEST(StaticVerify, AgreesWithOracleOnGeneratedLoops) {
  fuzz::DiffOptions diff;
  diff.check_backends = false;
  diff.check_static = true;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    fuzz::LoopGenerator gen{seed, {}};
    fuzz::DiffVerdict verdict = fuzz::differential_check(gen.generate(), diff);
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.str();
  }
}

// --- 6. lint surface -------------------------------------------------------

TEST(Lint, ParseFailureIsReported) {
  verify::LintResult res = verify::run_lint("for (;;", {});
  EXPECT_TRUE(res.parse_failed);
  EXPECT_FALSE(res.clean());
}

TEST(Lint, SkippedLoopsAreNoted) {
  // A loop the canonicalizer refuses (non-unit guard structure) still
  // lints clean, with a skip note instead of silence.
  verify::LintOptions opts;
  opts.slms.enable_filter = true;
  verify::LintResult res = verify::run_lint(
      "double A[64];\ndouble B[64];\nint i;\n"
      "for (i = 0; i < 60; i++) { A[i] = B[i]; }\n",
      opts);
  EXPECT_TRUE(res.clean()) << res.diags.str(Severity::Error);
  EXPECT_EQ(res.loops_applied + res.loops_skipped, 1);
  if (res.loops_skipped == 1)
    EXPECT_TRUE(res.diags.has_code("slms-skip"));
}

}  // namespace
