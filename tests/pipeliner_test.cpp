// Pipeliner-focused tests: loop-shape sweeps (steps, comparison ops,
// tiny trip counts), structural properties of the emitted code, and the
// trip-count guard.
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "ast/walk.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
using test::expect_equivalent;
using test::parse_or_die;

struct ShapeCase {
  const char* label;
  int lo;
  const char* cmp;
  int hi;
  int step;  // positive value used with +=/-= depending on direction
  bool down;
};

class LoopShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(LoopShapes, PipelinesEquivalently) {
  const ShapeCase& c = GetParam();
  std::ostringstream src;
  src << "double A[300]; double B[300]; double t;\nint i;\n"
      << "for (i = " << c.lo << "; i " << c.cmp << " " << c.hi << "; i "
      << (c.down ? "-=" : "+=") << " " << c.step << ") {\n"
      << "  t = B[i] * 2.0;\n"
      << "  A[i] = A[i " << (c.down ? "+" : "-") << " " << c.step
      << "] + t;\n}\n";
  Program original = parse_or_die(src.str());
  Program transformed = original.clone();
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  auto reports = slms::apply_slms(transformed, opts);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].applied)
      << c.label << ": " << reports[0].skip_reason;
  expect_equivalent(original, transformed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LoopShapes,
    ::testing::Values(
        ShapeCase{"up_lt_1", 4, "<", 290, 1, false},
        ShapeCase{"up_le_1", 4, "<=", 289, 1, false},
        ShapeCase{"up_lt_2", 4, "<", 290, 2, false},
        ShapeCase{"up_lt_3", 6, "<", 290, 3, false},
        ShapeCase{"up_le_5", 10, "<=", 280, 5, false},
        ShapeCase{"down_gt_1", 290, ">", 4, 1, true},
        ShapeCase{"down_ge_1", 290, ">=", 5, 1, true},
        ShapeCase{"down_gt_2", 290, ">", 6, 2, true},
        ShapeCase{"down_ge_3", 288, ">=", 9, 3, true}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(Pipeliner, TinyTripCountsAreLeftAloneOrCorrect) {
  // Trip counts 0..5 with a 2-stage pipeline: either skipped (too short)
  // or pipelined; both must be oracle-equivalent.
  for (int n = 0; n <= 5; ++n) {
    std::string src = "double A[64]; double B[64]; double t;\nint i;\n"
                      "for (i = 0; i < " + std::to_string(n) +
                      "; i++) {\n  t = B[i] + 1.0;\n  A[i] = t * 2.0;\n}\n";
    Program original = parse_or_die(src);
    Program transformed = original.clone();
    slms::SlmsOptions opts;
    opts.enable_filter = false;
    (void)slms::apply_slms(transformed, opts);
    expect_equivalent(original, transformed);
  }
}

TEST(Pipeliner, KernelRowsHoldIndependentStatements) {
  // Structural invariant: inside every emitted ParallelStmt, no two
  // members may write the same array cell at the same iv expression.
  Program p = parse_or_die(R"(
    double A[300]; double B[300]; double C[300];
    int i;
    for (i = 1; i < 290; i++) {
      A[i] = A[i - 1] * 0.5;
      B[i] = A[i] + 1.0;
      C[i] = B[i] * 2.0;
    }
  )");
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  (void)slms::apply_slms(p, opts);
  int parallel_rows = 0;
  for (const StmtPtr& s : p.stmts) {
    walk_stmts(*s, [&](const Stmt& st) {
      const auto* row = dyn_cast<ParallelStmt>(&st);
      if (row == nullptr) return;
      ++parallel_rows;
      // Members must be simple statements.
      for (const StmtPtr& m : row->stmts)
        EXPECT_TRUE(m->kind() == StmtKind::Assign ||
                    m->kind() == StmtKind::ExprStmt);
    });
  }
  EXPECT_GT(parallel_rows, 0);
}

TEST(Pipeliner, EpilogueRestoresInductionVariable) {
  // The iv's exit value must match the original's even for Le loops.
  const char* src = R"(
    double A[300];
    int i;
    for (i = 0; i <= 250; i++) {
      A[i] = A[i] + 1.0;
    }
    int probe = i * 3;
  )";
  Program original = parse_or_die(src);
  Program transformed = original.clone();
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  (void)slms::apply_slms(transformed, opts);
  expect_equivalent(original, transformed);
}

TEST(Pipeliner, SymbolicGuardSweep) {
  // Symbolic bound with every small n: guard selects original or
  // pipelined; all equivalent. Two-MI body so S=2.
  for (int n = 0; n <= 8; ++n) {
    std::string src = "double A[64]; double B[64];\nint n = " +
                      std::to_string(n) +
                      ";\nint i;\nfor (i = 0; i < n; i++) {\n"
                      "  A[i] = B[i] * 2.0;\n  B[i] = A[i] + 1.0;\n}\n";
    Program original = parse_or_die(src);
    Program transformed = original.clone();
    slms::SlmsOptions opts;
    opts.enable_filter = false;
    auto reports = slms::apply_slms(transformed, opts);
    if (!reports.empty() && reports[0].applied) {
      EXPECT_TRUE(reports[0].used_trip_guard);
    }
    expect_equivalent(original, transformed);
  }
}

TEST(Pipeliner, SymbolicDownCountingGuard) {
  for (int n : {0, 3, 40}) {
    std::string src = "double A[64]; double B[64];\nint n = " +
                      std::to_string(n) +
                      ";\nint i;\nfor (i = 50; i > n; i--) {\n"
                      "  A[i] = B[i] * 2.0;\n  B[i] = A[i] + 1.0;\n}\n";
    Program original = parse_or_die(src);
    Program transformed = original.clone();
    slms::SlmsOptions opts;
    opts.enable_filter = false;
    (void)slms::apply_slms(transformed, opts);
    expect_equivalent(original, transformed);
  }
}

TEST(Pipeliner, MaxIiOptionForcesSkip) {
  // II would be 2 (anti cycle without renaming); max_ii=1 must skip.
  Program p = parse_or_die(R"(
    double A[64]; double B[64]; double t;
    int i;
    for (i = 1; i < 60; i++) {
      t = B[i];
      A[i] = A[i - 1] + t;
      B[i] = t * 2.0;
    }
  )");
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  opts.renaming = slms::RenamingChoice::None;
  opts.max_ii = 1;
  auto reports = slms::apply_slms(p, opts);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].applied);
}

TEST(Pipeliner, UnrollCapRejectsRegisterPressure) {
  // Long chain forces lifetime > II; with max_unroll 1 the MVE plan is
  // rejected (paper's kernel-10 lesson as an option).
  Program p = parse_or_die(R"(
    double A[64]; double B[64]; double C[64];
    double t; double u; double v;
    int i;
    for (i = 0; i < 40; i++) {
      t = A[i + 2];
      u = B[i] * 2.0;
      v = u + 1.0;
      C[i] = v + t + C[i] * 0.5;
    }
  )");
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  opts.max_unroll = 1;
  auto reports = slms::apply_slms(p, opts);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].applied);
  EXPECT_NE(reports[0].skip_reason.find("register-pressure"),
            std::string::npos)
      << reports[0].skip_reason;
}

TEST(Pipeliner, ExplainTraceIsPopulated) {
  Program p = parse_or_die(R"(
    double A[64]; double B[64]; double t;
    int i;
    for (i = 1; i < 60; i++) {
      t = B[i] * 2.0;
      A[i] = A[i - 1] + t;
    }
  )");
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  opts.explain = true;
  auto reports = slms::apply_slms(p, opts);
  ASSERT_TRUE(reports[0].applied);
  ASSERT_GE(reports[0].trace.size(), 3u);
  bool has_mii = false;
  for (const std::string& line : reports[0].trace)
    if (line.find("MII search") != std::string::npos) has_mii = true;
  EXPECT_TRUE(has_mii);
}

}  // namespace
}  // namespace slc
