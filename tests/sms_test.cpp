// Swing modulo scheduling: legality, II quality vs Rau IMS, and the
// GCC-with-Swing backend preset.
#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "machine/lower.hpp"
#include "machine/sms.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"

namespace slc {
namespace {

using namespace machine;
using test::parse_or_die;

MirProgram lower_or_die(const ast::Program& p) {
  DiagnosticEngine diags;
  MirProgram mir = lower(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return mir;
}

const std::vector<MInst>* innermost_body(const MirProgram& mir) {
  for (const Region& r : mir.regions) {
    if (r.kind != Region::Kind::Loop) continue;
    if (r.loop->body.size() == 1 &&
        r.loop->body[0].kind == Region::Kind::Block)
      return &r.loop->body[0].insts;
  }
  return nullptr;
}

TEST(Sms, SchedulesASimpleLoop) {
  ast::Program p = parse_or_die(R"(
    double A[128]; double B[128];
    int i;
    for (i = 0; i < 120; i++) A[i] = B[i] * 2.0 + 1.0;
  )");
  MirProgram mir = lower_or_die(p);
  const auto* body = innermost_body(mir);
  ASSERT_NE(body, nullptr);
  MachineModel model = itanium2_model();
  ImsResult r = swing_modulo_schedule(*body, model, 1);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  // Swing kernels must satisfy the same modulo legality as IMS kernels.
  EXPECT_EQ(verify_modulo_schedule(*body, model, 1, r), std::nullopt);
  BlockSchedule list = list_schedule(*body, model);
  EXPECT_LT(r.ii, list.length);
}

TEST(Sms, RandomLoopsAreLegalAndNearIms) {
  int scheduled = 0;
  long sms_ii_sum = 0, ims_ii_sum = 0;
  for (std::uint64_t seed = 300; seed < 360; ++seed) {
    test::LoopGenOptions gen_opts;
    gen_opts.allow_if = false;
    test::LoopGenerator gen(seed, gen_opts);
    ast::Program p = parse_or_die(gen.generate());
    MirProgram mir = lower_or_die(p);
    const auto* body = innermost_body(mir);
    if (body == nullptr || body->empty()) continue;
    MachineModel model = itanium2_model();
    ImsResult sms = swing_modulo_schedule(*body, model, 1);
    ImsResult ims = modulo_schedule(*body, model, 1);
    if (!sms.ok || !ims.ok) continue;
    ++scheduled;
    auto issue = verify_modulo_schedule(*body, model, 1, sms);
    EXPECT_EQ(issue, std::nullopt)
        << "seed " << seed << ": " << issue.value_or("");
    // No backtracking: SMS may need a larger II, never a smaller MII.
    EXPECT_GE(sms.ii, std::max(sms.res_mii, sms.rec_mii));
    sms_ii_sum += sms.ii;
    ims_ii_sum += ims.ii;
  }
  EXPECT_GT(scheduled, 20);
  // "Weak Swing MS": on average not better than Rau's iterative MS.
  EXPECT_GE(sms_ii_sum, ims_ii_sum);
}

TEST(Sms, BackendPresetRuns) {
  const kernels::Kernel* k = kernels::find("daxpy");
  ASSERT_NE(k, nullptr);
  driver::ComparisonRow row =
      driver::compare_kernel(*k, driver::weak_compiler_sms());
  ASSERT_TRUE(row.ok) << row.error;
  EXPECT_TRUE(row.loop_base.modulo_scheduled)
      << row.loop_base.ims_fail_reason;
  // A software-pipelined backend beats plain list scheduling on daxpy.
  driver::ComparisonRow plain =
      driver::compare_kernel(*k, driver::weak_compiler_o3());
  ASSERT_TRUE(plain.ok);
  EXPECT_LT(row.cycles_base, plain.cycles_base);
}

}  // namespace
}  // namespace slc
