// Golden regression lock: the SLMS outcome (applied, II, stages, unroll,
// MI count, decompositions) for every benchmark kernel under the default
// options. Any change to the analyses or the scheduler that shifts these
// must be reviewed deliberately — they anchor the paper-reproduction
// claims in EXPERIMENTS.md (e.g. kernel8: II=1 with no decomposition;
// kernel24/idamax: the II=2 conditional reductions; stone1: filtered).
#include <gtest/gtest.h>

#include "kernels/kernels.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

struct Golden {
  const char* kernel;
  bool applied;
  int ii;
  std::int64_t stages;
  int unroll;
  int num_mis;
  int decompositions;
};

constexpr Golden kGolden[] = {
    {"kernel1", true, 1, 2, 2, 2, 1},
    {"kernel2", true, 1, 2, 2, 2, 1},
    {"kernel3", true, 1, 2, 2, 2, 1},
    {"kernel5", true, 1, 2, 2, 2, 1},
    {"kernel7", true, 1, 2, 2, 2, 1},
    {"kernel8", true, 1, 2, 1, 6, 0},   // §5: MII=1, no decomposition
    {"kernel4", true, 1, 2, 2, 2, 1},
    {"kernel6", true, 1, 2, 2, 2, 1},
    {"kernel9", true, 1, 2, 2, 2, 1},
    {"kernel10", true, 1, 6, 2, 10, 0}, // deep pipeline of loop variants
    {"kernel11", true, 1, 2, 2, 2, 1},
    {"kernel12", true, 1, 2, 2, 2, 1},
    {"kernel22", true, 1, 2, 1, 3, 0},  // Planckian: intrinsics, MII=1
    {"kernel24", true, 2, 2, 2, 3, 1},  // conditional reduction: II=2
    {"daxpy", true, 1, 2, 2, 2, 1},
    {"ddot", true, 1, 2, 2, 2, 1},
    {"ddot2", true, 1, 2, 2, 2, 1},
    {"dscal", true, 1, 2, 2, 2, 1},
    {"idamax", true, 2, 1, 2, 3, 0},    // if-converted, II=2
    {"idamax2", true, 2, 1, 2, 3, 0},
    {"dmxpy", true, 1, 2, 2, 2, 1},
    {"daxpy4", true, 1, 1, 1, 4, 0},   // already unrolled: 4 parallel MIs
    {"dswap", false, 0, 0, 1, 0, 0},   // §4 filter: a Linpack bad case
    {"nas_mxm", true, 1, 2, 2, 2, 1},
    {"nas_cholsky", true, 1, 2, 2, 2, 1},
    {"nas_btrix", true, 1, 2, 2, 2, 1},
    {"nas_gmtry", true, 1, 2, 1, 2, 0},
    {"nas_emit", true, 1, 2, 2, 2, 1},
    {"nas_vpenta", true, 1, 2, 2, 2, 1},
    {"nas_cfft2d", true, 1, 1, 1, 2, 0},  // independent MIs: S=1
    {"stone1", false, 0, 0, 1, 0, 0},     // §4 filter fires
    {"stone2", true, 1, 2, 2, 2, 1},
    {"stone3", true, 1, 2, 2, 2, 1},
    {"stone4", true, 2, 2, 2, 4, 0},
    {"stone5", true, 2, 2, 2, 4, 0},
    {"stone6", true, 1, 2, 2, 2, 1},
};

class GoldenKernels : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenKernels, SlmsOutcomeIsStable) {
  const Golden& g = GetParam();
  const kernels::Kernel* k = kernels::find(g.kernel);
  ASSERT_NE(k, nullptr);
  ast::Program p = test::parse_or_die(k->source);
  auto reports = slms::apply_slms(p, slms::SlmsOptions{});
  ASSERT_EQ(reports.size(), 1u);
  const slms::SlmsReport& r = reports[0];
  EXPECT_EQ(r.applied, g.applied) << r.skip_reason;
  EXPECT_EQ(r.ii, g.ii);
  EXPECT_EQ(r.stages, g.stages);
  EXPECT_EQ(r.unroll, g.unroll);
  EXPECT_EQ(r.num_mis, g.num_mis);
  EXPECT_EQ(r.decompositions, g.decompositions);
}

INSTANTIATE_TEST_SUITE_P(All, GoldenKernels, ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.kernel);
                         });

TEST(GoldenKernels, CoversEveryRegisteredKernel) {
  EXPECT_EQ(std::size(kGolden), kernels::all_kernels().size());
}

}  // namespace
}  // namespace slc
