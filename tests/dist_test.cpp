// Tests for the distributed sweep coordinator (src/dist): wire-protocol
// round-trips and torn-line tolerance, and the end-to-end
// `slc --suite --workers=N` contract — byte-identical output to a
// serial run through worker crashes, hangs, silent row drops, and
// straggler steals, plus journal-driven differential re-runs
// (`--diff-since`).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "driver/pipeline.hpp"
#include "support/failure.hpp"
#include "support/subprocess.hpp"

namespace {

using namespace slc;
namespace protocol = dist::protocol;
namespace subprocess = support::subprocess;
namespace fs = std::filesystem;

// ----- wire protocol ------------------------------------------------------

TEST(DistProtocol, CommandsRoundTrip) {
  protocol::Lease lease;
  lease.id = 7;
  lease.first = 12;
  lease.last = 15;
  protocol::Command cmd = protocol::parse_command(
      protocol::lease_command(lease));
  ASSERT_EQ(cmd.kind, protocol::Command::Kind::Lease);
  EXPECT_EQ(cmd.lease.id, 7u);
  EXPECT_EQ(cmd.lease.first, 12u);
  EXPECT_EQ(cmd.lease.last, 15u);

  protocol::Command quit = protocol::parse_command(protocol::quit_command());
  EXPECT_EQ(quit.kind, protocol::Command::Kind::Quit);
}

TEST(DistProtocol, EventsRoundTrip) {
  protocol::Event hello =
      protocol::parse_event(protocol::hello_line("w3", 4242));
  ASSERT_EQ(hello.kind, protocol::Event::Kind::Hello);
  EXPECT_EQ(hello.worker, "w3");
  EXPECT_EQ(hello.pid, 4242);

  protocol::Event hb = protocol::parse_event(protocol::heartbeat_line("w3"));
  ASSERT_EQ(hb.kind, protocol::Event::Kind::Heartbeat);
  EXPECT_EQ(hb.worker, "w3");

  driver::ComparisonRow row;
  row.kernel = "gen7";
  row.suite = "generated";
  row.slms_applied = true;
  row.ok = true;
  row.cycles_base = 960;
  row.cycles_slms = 240;
  row.energy_base = 3.5;
  row.energy_slms = 1.25;
  row.failure = support::make_failure(support::Stage::Worker,
                                      support::FailureKind::ChildSignal,
                                      "signal:SIGSEGV");
  protocol::Event back =
      protocol::parse_event(protocol::row_line(7, 12, row));
  ASSERT_EQ(back.kind, protocol::Event::Kind::Row);
  EXPECT_EQ(back.lease, 7u);
  EXPECT_EQ(back.index, 12u);
  EXPECT_EQ(back.row.kernel, "gen7");
  EXPECT_EQ(back.row.cycles_base, 960u);
  EXPECT_EQ(back.row.cycles_slms, 240u);
  EXPECT_DOUBLE_EQ(back.row.energy_base, 3.5);
  ASSERT_TRUE(back.row.failure.has_value());
  EXPECT_EQ(back.row.failure->kind, support::FailureKind::ChildSignal);

  protocol::Event done = protocol::parse_event(protocol::done_line(7, 4));
  ASSERT_EQ(done.kind, protocol::Event::Kind::Done);
  EXPECT_EQ(done.lease, 7u);
  EXPECT_EQ(done.computed, 4u);
}

TEST(DistProtocol, TornAndForeignLinesParseAsInvalid) {
  // A worker killed mid-write leaves a torn tail; the coordinator must
  // classify it Invalid and drop it, never throw or mis-dispatch.
  const char* torn[] = {
      "",
      "{",
      "{\"type\":\"row\",\"lease\":7,\"ind",
      "{\"type\":\"warp\"}",
      "not json at all",
      "{\"cmd\":\"lease\"}",  // a command is not an event
  };
  for (const char* line : torn)
    EXPECT_EQ(protocol::parse_event(line).kind,
              protocol::Event::Kind::Invalid)
        << line;
  EXPECT_EQ(protocol::parse_command("{\"cmd\":\"evict\"}").kind,
            protocol::Command::Kind::Invalid);
  // last < first is a malformed lease, not a 0-row one.
  EXPECT_EQ(
      protocol::parse_command(
          "{\"cmd\":\"lease\",\"lease\":1,\"first\":9,\"last\":2}")
          .kind,
      protocol::Command::Kind::Invalid);
}

// ----- end-to-end: slc --suite --workers=N --------------------------------

#ifdef SLC_TOOL_BIN

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("slc-dist-test-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

subprocess::RunResult run_slc(const std::vector<std::string>& args,
                              std::uint64_t timeout_ms = 120000) {
  subprocess::RunOptions run;
  run.argv.push_back(SLC_TOOL_BIN);
  run.argv.insert(run.argv.end(), args.begin(), args.end());
  run.timeout_ms = timeout_ms;
  return subprocess::run(run);
}

/// Pulls `key=<N>` out of the coordinator's stderr summary line
/// ("dist: workers=3 ... reclaims=4 ..."). -1 when absent.
long stat_of(const std::string& err, const std::string& key) {
  std::size_t at = err.find(" " + key + "=");
  if (at == std::string::npos) return -1;
  return std::strtol(err.c_str() + at + key.size() + 2, nullptr, 10);
}

// The small deterministic corpus keeps each E2E run in the hundreds of
// milliseconds; every assertion below compares against this serial run.
const std::vector<std::string> kSuite = {"--suite=generated",
                                         "--corpus-size=12"};

std::vector<std::string> with(std::vector<std::string> args,
                              std::vector<std::string> extra) {
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(DistE2E, MatchesSerialOutputByteForByte) {
  subprocess::RunResult serial = run_slc(with(kSuite, {"--jobs=1"}));
  ASSERT_TRUE(serial.clean()) << serial.describe() << "\n" << serial.err;
  TempDir tmp;
  subprocess::RunResult pool = run_slc(
      with(kSuite, {"--workers=2", "--journal=" + tmp.file("j.jsonl")}));
  ASSERT_TRUE(pool.clean()) << pool.describe() << "\n" << pool.err;
  EXPECT_EQ(serial.out, pool.out);
  EXPECT_NE(pool.err.find("2 distributed worker(s)"), std::string::npos)
      << pool.err;
  EXPECT_EQ(stat_of(pool.err, "requeued"), 0) << pool.err;
  EXPECT_TRUE(fs::exists(tmp.file("j.jsonl")));
}

TEST(DistE2E, WorkerCrashReclaimsLeasesAndLosesNoRows) {
  subprocess::RunResult serial = run_slc(with(kSuite, {"--jobs=1"}));
  ASSERT_TRUE(serial.clean()) << serial.err;
  TempDir tmp;
  // w0 dies on its first row; its leased rows must be reclaimed and the
  // pool must respawn a replacement. Output stays byte-identical: the
  // fault keys on the worker id, so re-runs on other workers are clean.
  subprocess::RunResult pool = run_slc(
      with(kSuite, {"--workers=2", "--fault=worker:crash@w0:",
                    "--journal=" + tmp.file("j.jsonl")}));
  ASSERT_TRUE(pool.spawned) << pool.spawn_error;
  EXPECT_EQ(pool.exit_code, 0) << pool.err;
  EXPECT_EQ(serial.out, pool.out);
  EXPECT_GE(stat_of(pool.err, "lost"), 1) << pool.err;
  EXPECT_GE(stat_of(pool.err, "reclaims"), 1) << pool.err;
  EXPECT_EQ(stat_of(pool.err, "degraded"), 0) << pool.err;
}

TEST(DistE2E, HungWorkerTripsHeartbeatDeadline) {
  subprocess::RunResult serial = run_slc(with(kSuite, {"--jobs=1"}));
  ASSERT_TRUE(serial.clean()) << serial.err;
  TempDir tmp;
  subprocess::RunResult pool = run_slc(
      with(kSuite, {"--workers=2", "--fault=worker:hang@w1:",
                    "--heartbeat-timeout-ms=1500",
                    "--journal=" + tmp.file("j.jsonl")}));
  ASSERT_TRUE(pool.spawned) << pool.spawn_error;
  EXPECT_EQ(pool.exit_code, 0) << pool.err;
  EXPECT_EQ(serial.out, pool.out);
  EXPECT_NE(pool.err.find("silent past the heartbeat deadline"),
            std::string::npos)
      << pool.err;
  EXPECT_GE(stat_of(pool.err, "reclaims"), 1) << pool.err;
}

TEST(DistE2E, DroppedRowsAreRequeuedToOtherWorkers) {
  subprocess::RunResult serial = run_slc(with(kSuite, {"--jobs=1"}));
  ASSERT_TRUE(serial.clean()) << serial.err;
  TempDir tmp;
  // w0 acknowledges leases but silently skips every row. The coordinator
  // must detect the short `done`, requeue the rows away from w0 (bounded
  // attempts), and finish without the serial fallback.
  subprocess::RunResult pool = run_slc(
      with(kSuite, {"--workers=2", "--fault=worker:drop@w0:",
                    "--journal=" + tmp.file("j.jsonl")}));
  ASSERT_TRUE(pool.spawned) << pool.spawn_error;
  EXPECT_EQ(pool.exit_code, 0) << pool.err;
  EXPECT_EQ(serial.out, pool.out);
  EXPECT_GE(stat_of(pool.err, "requeued"), 1) << pool.err;
  EXPECT_EQ(stat_of(pool.err, "fallbacks"), 0) << pool.err;
}

TEST(DistE2E, StragglerLeaseIsStolenByIdleWorker) {
  subprocess::RunResult serial = run_slc(with(kSuite, {"--jobs=1"}));
  ASSERT_TRUE(serial.clean()) << serial.err;
  TempDir tmp;
  auto start = std::chrono::steady_clock::now();
  // w0 delays 500 ms per row (6 rows leased to it => ~3 s alone); with
  // stealing after 400 ms the idle w1 must take over most of them. The
  // deadline assertion is the point of the test: a straggler must not
  // gate the sweep on its own pace.
  subprocess::RunResult pool = run_slc(
      with(kSuite,
           {"--workers=2", "--worker-rows=6", "--fault=worker:delay=500@w0:",
            "--steal-after-ms=400", "--heartbeat-timeout-ms=60000",
            "--journal=" + tmp.file("j.jsonl")}),
      /*timeout_ms=*/60000);
  auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(pool.clean()) << pool.describe() << "\n" << pool.err;
  EXPECT_EQ(serial.out, pool.out);
  EXPECT_GE(stat_of(pool.err, "steals"), 1) << pool.err;
  EXPECT_NE(pool.err.find("straggler"), std::string::npos) << pool.err;
  // 12 rows x 500 ms is the straggler-gated floor (6 s). With stealing
  // the sweep must finish well under it; 5 s leaves slack for load.
  EXPECT_LT(wall_ms, 5000) << pool.err;
}

TEST(DistE2E, DiffSinceRecomputesOnlyChangedRows) {
  TempDir tmp;
  subprocess::RunResult first = run_slc(
      with(kSuite, {"--workers=2", "--journal=" + tmp.file("old.jsonl")}));
  ASSERT_TRUE(first.clean()) << first.err;

  // Grow the corpus 12 -> 16: the 12 old keys must replay from the old
  // journal, only the 4 new rows may be recomputed. --corpus-size is a
  // row-set flag, deliberately excluded from the journal key signature.
  subprocess::RunResult diff = run_slc(
      {"--suite=generated", "--corpus-size=16", "--workers=2",
       "--diff-since=" + tmp.file("old.jsonl"),
       "--journal=" + tmp.file("new.jsonl")});
  ASSERT_TRUE(diff.clean()) << diff.err;
  EXPECT_NE(diff.err.find("12 reused (diff-since), 4 recomputed"),
            std::string::npos)
      << diff.err;

  subprocess::RunResult serial =
      run_slc({"--suite=generated", "--corpus-size=16", "--jobs=1"});
  ASSERT_TRUE(serial.clean()) << serial.err;
  EXPECT_EQ(serial.out, diff.out);
}

TEST(DistE2E, ResumeAndDiffSinceAreMutuallyExclusive) {
  subprocess::RunResult r = run_slc(
      with(kSuite, {"--workers=2", "--resume", "--diff-since=x.jsonl",
                    "--journal=y.jsonl"}));
  ASSERT_TRUE(r.spawned) << r.spawn_error;
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("mutually exclusive"), std::string::npos) << r.err;
}

#endif  // SLC_TOOL_BIN

}  // namespace
