// Backend substrate: lowering correctness (cross-checked against the AST
// interpreter), scheduler legality, and IMS behaviour including the
// paper's §7 failure modes.
#include <gtest/gtest.h>

#include "machine/ims.hpp"
#include "machine/lower.hpp"
#include "machine/sched.hpp"
#include "sim/executor.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"

namespace slc {
namespace {

using namespace machine;
using test::parse_or_die;

MirProgram lower_or_die(const ast::Program& p) {
  DiagnosticEngine diags;
  MirProgram mir = lower(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return mir;
}

/// Runs the program through both the AST interpreter and the MIR
/// executor and compares final memory (bit-exact for int/double).
void expect_lowering_equivalent(const std::string& source,
                                std::uint64_t seed = 0) {
  ast::Program p = parse_or_die(source);
  interp::RunResult ref = interp::Interpreter().run(p, seed);
  ASSERT_TRUE(ref.ok) << ref.error;

  MirProgram mir = lower_or_die(p);
  sim::SimOptions opts;
  opts.seed = seed;
  sim::SimResult got = sim::simulate(mir, itanium2_model(), opts);
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(ref.memory.diff(got.memory), "") << source;
}

TEST(Lowering, ScalarArithmetic) {
  expect_lowering_equivalent(R"(
    int x = 7; int y = 3;
    int q = x / y;
    int r = x % y;
    double d = 1.0 / 2.0;
    double e = d * 4.0 - 1.0;
  )");
}

TEST(Lowering, LoopsAndArrays) {
  expect_lowering_equivalent(R"(
    double A[32]; double B[32];
    int i;
    for (i = 0; i < 32; i++) A[i] = B[i] * 2.0 + 1.0;
    double s = 0.0;
    for (i = 0; i < 32; i++) s = s + A[i];
  )");
}

TEST(Lowering, TwoDimensionalArrays) {
  expect_lowering_equivalent(R"(
    double M[6][8];
    int i; int j;
    for (i = 0; i < 6; i++)
      for (j = 0; j < 8; j++)
        M[i][j] = M[i][j] + i * 10 + j;
  )");
}

TEST(Lowering, Conditionals) {
  expect_lowering_equivalent(R"(
    double A[16];
    double t = 0.0;
    int i;
    for (i = 0; i < 16; i++) {
      if (A[i] > 0.0) t = t + A[i];
      else t = t - 1.0;
    }
    int flag;
    if (t > 0.0) flag = 1; else flag = 0;
  )");
}

TEST(Lowering, GuardedStatementsSuppressLoads) {
  // if-converted style guard: the guarded load of A[i-1] at i == 0 is out
  // of bounds and must not execute when the guard is false.
  ast::Program p = parse_or_die(R"(
    double A[8];
    double x = 0.0;
    bool g;
    int i;
    for (i = 0; i < 8; i++) {
      g = i > 0;
      if (g) x = x + A[i - 1];
    }
  )");
  // Convert the if to a guard manually (as SLMS does).
  // The parser produced an IfStmt; run through SLMS if-conversion via the
  // normal driver instead: simply check the lowering of the if-stmt form.
  MirProgram mir = lower_or_die(p);
  sim::SimResult got = sim::simulate(mir, itanium2_model(), {});
  EXPECT_TRUE(got.ok) << got.error;
}

TEST(Lowering, Intrinsics) {
  expect_lowering_equivalent(R"(
    double a = fabs(-3.5);
    double b = sqrt(16.0);
    double c = min(a, b) + max(1.0, 2.0);
    double d = pow(2.0, 8.0);
  )");
}

TEST(Lowering, WhileLoop) {
  expect_lowering_equivalent(R"(
    int i = 0;
    int s = 0;
    while (i < 20) {
      s = s + i;
      i = i + 1;
    }
  )");
}

TEST(Lowering, RandomLoopsMatchInterpreter) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    test::LoopGenOptions gen_opts;
    gen_opts.allow_if = true;
    gen_opts.allow_2d = seed % 2 == 0;  // exercise 2-D flattening too
    test::LoopGenerator gen(seed, gen_opts);
    std::string source = gen.generate();
    SCOPED_TRACE(source);
    expect_lowering_equivalent(source, seed % 3);
  }
}

TEST(Lowering, SlmsOutputMatchesInterpreter) {
  // The full path: SLMS-transformed programs lower and execute
  // equivalently too (prologue/kernel/epilogue, MVE copies, guards).
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    test::LoopGenerator gen(seed);
    std::string source = gen.generate();
    ast::Program p = parse_or_die(source);
    slms::SlmsOptions opts;
    opts.enable_filter = false;
    (void)slms::apply_slms(p, opts);
    interp::RunResult ref = interp::Interpreter().run(p, 1);
    ASSERT_TRUE(ref.ok) << ref.error;
    MirProgram mir = lower_or_die(p);
    sim::SimOptions sopts;
    sopts.seed = 1;
    sim::SimResult got = sim::simulate(mir, itanium2_model(), sopts);
    ASSERT_TRUE(got.ok) << got.error << "\n" << source;
    EXPECT_EQ(ref.memory.diff(got.memory), "") << source;
  }
}

// ---------------------------------------------------------------------------
// schedulers
// ---------------------------------------------------------------------------

const std::vector<MInst>* innermost_body(const MirProgram& mir) {
  for (const Region& r : mir.regions) {
    if (r.kind != Region::Kind::Loop) continue;
    if (r.loop->body.size() == 1 &&
        r.loop->body[0].kind == Region::Kind::Block)
      return &r.loop->body[0].insts;
  }
  return nullptr;
}

TEST(ListSched, LegalAndCompact) {
  ast::Program p = parse_or_die(R"(
    double A[64]; double B[64]; double C[64]; double D[64];
    int i;
    for (i = 0; i < 60; i++) {
      A[i] = B[i] + 1.0;
      C[i] = D[i] * 2.0;
    }
  )");
  MirProgram mir = lower_or_die(p);
  const auto* body = innermost_body(mir);
  ASSERT_NE(body, nullptr);
  MachineModel model = itanium2_model();
  BlockSchedule sched = list_schedule(*body, model);
  EXPECT_EQ(verify_block_schedule(*body, sched, model), std::nullopt);
  // Independent work must overlap: fewer cycles than instructions.
  EXPECT_LT(sched.length, int(body->size()));
}

TEST(ListSched, RandomBlocksAreLegal) {
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    test::LoopGenerator gen(seed);
    ast::Program p = parse_or_die(gen.generate());
    MirProgram mir = lower_or_die(p);
    const auto* body = innermost_body(mir);
    if (body == nullptr || body->empty()) continue;
    for (const MachineModel& model :
         {itanium2_model(), power4_model(), pentium_model(), arm7_model()}) {
      BlockSchedule sched = list_schedule(*body, model);
      auto issue = verify_block_schedule(*body, sched, model);
      EXPECT_EQ(issue, std::nullopt) << model.name << " seed " << seed
                                     << ": " << issue.value_or("");
    }
  }
}

TEST(Ims, PipelinesASimpleLoop) {
  ast::Program p = parse_or_die(R"(
    double A[128]; double B[128];
    int i;
    for (i = 0; i < 120; i++) {
      A[i] = B[i] * 2.0 + 1.0;
    }
  )");
  MirProgram mir = lower_or_die(p);
  const auto* body = innermost_body(mir);
  ASSERT_NE(body, nullptr);
  MachineModel model = itanium2_model();
  ImsResult r = modulo_schedule(*body, model, 1);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  EXPECT_EQ(verify_modulo_schedule(*body, model, 1, r), std::nullopt);
  // The kernel must beat the list schedule (that is MS's whole point).
  BlockSchedule list = list_schedule(*body, model);
  EXPECT_LT(r.ii, list.length);
}

TEST(Ims, RecurrenceBoundsII) {
  // A[i] = A[i-1] * x: the fp-multiply recurrence forces II >= fp latency.
  ast::Program p = parse_or_die(R"(
    double A[128];
    double x = 1.0001;
    int i;
    for (i = 1; i < 120; i++) {
      A[i] = A[i - 1] * x;
    }
  )");
  MirProgram mir = lower_or_die(p);
  const auto* body = innermost_body(mir);
  ASSERT_NE(body, nullptr);
  MachineModel model = itanium2_model();
  ImsResult r = modulo_schedule(*body, model, 1);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  EXPECT_GE(r.rec_mii, model.lat_fpu);
  EXPECT_GE(r.ii, model.lat_fpu);
  EXPECT_EQ(verify_modulo_schedule(*body, model, 1, r), std::nullopt);
}

TEST(Ims, RandomLoopsProduceLegalKernels) {
  int scheduled = 0;
  for (std::uint64_t seed = 200; seed < 260; ++seed) {
    test::LoopGenOptions gen_opts;
    gen_opts.allow_if = false;
    test::LoopGenerator gen(seed, gen_opts);
    ast::Program p = parse_or_die(gen.generate());
    MirProgram mir = lower_or_die(p);
    const auto* body = innermost_body(mir);
    if (body == nullptr || body->empty()) continue;
    MachineModel model = itanium2_model();
    ImsResult r = modulo_schedule(*body, model, 1);
    if (!r.ok) continue;
    ++scheduled;
    auto issue = verify_modulo_schedule(*body, model, 1, r);
    EXPECT_EQ(issue, std::nullopt)
        << "seed " << seed << ": " << issue.value_or("");
  }
  EXPECT_GT(scheduled, 20);
}

TEST(Ims, RegisterPressureFailure) {
  // Paper Fig. 11: long-latency producer consumed by a slow recurrence
  // inflates value lifetimes; with a tiny register file IMS must refuse.
  ast::Program p = parse_or_die(R"(
    double A[128]; double B[128]; double Z[128];
    int i;
    for (i = 1; i < 120; i++) {
      Z[i] = Z[i - 1] + A[i] * A[i] + A[i + 1] * A[i + 2] + B[i] * B[i + 1];
    }
  )");
  MirProgram mir = lower_or_die(p);
  const auto* body = innermost_body(mir);
  ASSERT_NE(body, nullptr);
  MachineModel tiny = itanium2_model();
  tiny.fp_regs = 3;
  ImsResult r = modulo_schedule(*body, tiny, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.fail_reason.find("register pressure"), std::string::npos);
  // With registers to spare, the same loop schedules fine.
  ImsResult big = modulo_schedule(*body, itanium2_model(), 1);
  EXPECT_TRUE(big.ok) << big.fail_reason;
}

// ---------------------------------------------------------------------------
// simulator end-to-end sanity
// ---------------------------------------------------------------------------

TEST(Sim, PresetOrdering) {
  // -O0 > list-sched >= modulo-sched in cycles, on a parallelizable loop.
  ast::Program p = parse_or_die(R"(
    double A[256]; double B[256]; double C[256];
    int i;
    for (i = 0; i < 250; i++) {
      A[i] = B[i] * 2.0 + C[i];
    }
  )");
  MirProgram mir = lower_or_die(p);
  MachineModel model = itanium2_model();
  sim::SimOptions opts;
  opts.preset = sim::CompilerPreset::Sequential;
  auto seq = sim::simulate(mir, model, opts);
  opts.preset = sim::CompilerPreset::ListSched;
  auto list = sim::simulate(mir, model, opts);
  opts.preset = sim::CompilerPreset::ModuloSched;
  auto ms = sim::simulate(mir, model, opts);
  ASSERT_TRUE(seq.ok && list.ok && ms.ok);
  EXPECT_GT(seq.cycles, list.cycles);
  EXPECT_GE(list.cycles, ms.cycles);
  ASSERT_FALSE(ms.loops.empty());
  EXPECT_TRUE(ms.loops[0].modulo_scheduled);
}

TEST(Sim, SlmsSpeedsUpWeakCompiler) {
  // The paper's headline: on a weak (no-MS) compiler, SLMS reduces
  // cycles for a dependent-chain loop.
  const char* src = R"(
    double A[256]; double B[256]; double C[256];
    double t;
    int i;
    for (i = 1; i < 250; i++) {
      t = B[i] * 2.0;
      A[i] = A[i - 1] + t;
      C[i] = A[i] * 0.5;
    }
  )";
  ast::Program original = parse_or_die(src);
  ast::Program transformed = original.clone();
  slms::SlmsOptions sopts;
  sopts.enable_filter = false;
  auto reports = slms::apply_slms(transformed, sopts);
  ASSERT_TRUE(!reports.empty() && reports[0].applied)
      << reports[0].skip_reason;

  MachineModel model = itanium2_model();
  sim::SimOptions opts;
  opts.preset = sim::CompilerPreset::ListSched;

  MirProgram mir_orig = lower_or_die(original);
  MirProgram mir_slms = lower_or_die(transformed);
  auto r_orig = sim::simulate(mir_orig, model, opts);
  auto r_slms = sim::simulate(mir_slms, model, opts);
  ASSERT_TRUE(r_orig.ok && r_slms.ok) << r_orig.error << r_slms.error;
  EXPECT_LT(r_slms.cycles, r_orig.cycles)
      << "slms=" << r_slms.cycles << " orig=" << r_orig.cycles;
}

TEST(Sim, ScalarMachineRewardsLoadUseDistance) {
  // ARM model: separating a load from its use hides the interlock.
  ast::Program back_to_back = parse_or_die(R"(
    double A[128]; double B[128];
    int i;
    for (i = 0; i < 120; i++) {
      B[i] = A[i] * 2.0 + 1.0;
    }
  )");
  MirProgram mir = lower_or_die(back_to_back);
  sim::SimOptions opts;
  opts.preset = sim::CompilerPreset::Sequential;
  auto seq = sim::simulate(mir, arm7_model(), opts);
  opts.preset = sim::CompilerPreset::ListSched;
  auto sched = sim::simulate(mir, arm7_model(), opts);
  ASSERT_TRUE(seq.ok && sched.ok);
  EXPECT_LE(sched.cycles, seq.cycles);
}

TEST(Sim, EnergyTracksCyclesAndAccesses) {
  ast::Program p = parse_or_die(R"(
    double A[64];
    int i;
    for (i = 0; i < 60; i++) A[i] = A[i] + 1.0;
  )");
  MirProgram mir = lower_or_die(p);
  auto r = sim::simulate(mir, arm7_model(), {});
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GT(r.mem_accesses, 0u);
  // Leakage alone guarantees energy grows with cycles.
  EXPECT_GT(r.energy, 0.3 * double(r.cycles));
}

TEST(Sim, CacheMissesCostCycles) {
  // A stride large enough to miss every access vs a dense loop.
  ast::Program strided = parse_or_die(R"(
    double A[4096];
    int i;
    for (i = 0; i < 1024; i += 4) A[i] = A[i] + 1.0;
  )");
  ast::Program dense = parse_or_die(R"(
    double A[4096];
    int i;
    for (i = 0; i < 256; i++) A[i] = A[i] + 1.0;
  )");
  MachineModel model = arm7_model();
  auto rs = sim::simulate(lower_or_die(strided), model, {});
  auto rd = sim::simulate(lower_or_die(dense), model, {});
  ASSERT_TRUE(rs.ok && rd.ok);
  // Same iteration counts; the strided one misses more and runs longer.
  EXPECT_GT(rs.mem_misses, rd.mem_misses);
  EXPECT_GT(rs.cycles, rd.cycles);
}

}  // namespace
}  // namespace slc
