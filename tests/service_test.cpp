// Tests for the compile service (src/service): protocol round-trips,
// the LRU result cache and its persistence journal, the per-kernel
// circuit breaker state machine (injectable clock), the Service core's
// retry/degrade/shed behavior against a scriptable fake slc, subprocess
// fd hygiene (the pipes must be close-on-exec and survive fd-limit
// pressure), duplicate-key tolerance in the run journal, and an
// end-to-end slcd daemon conversation over a real Unix socket.
#include <gtest/gtest.h>
#include <dirent.h>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/journal.hpp"
#include "service/breaker.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/socket.hpp"
#include "support/fault.hpp"
#include "support/subprocess.hpp"

namespace {

using namespace slc;
using namespace slc::service;
namespace fs = std::filesystem;
namespace subprocess = support::subprocess;

fs::path unique_tmp(const std::string& stem) {
  static std::atomic<int> counter{0};
  return fs::temp_directory_path() /
         (stem + "-" + std::to_string(::getpid()) + "-" +
          std::to_string(counter.fetch_add(1)));
}

// ----- protocol -----------------------------------------------------------

TEST(Protocol, RequestRoundTrips) {
  Request req;
  req.id = 42;
  req.method = "compile";
  req.source = "void f() {}\n";
  req.args = {"--no-filter", "--emit-source"};
  req.deadline_ms = 1500;
  req.no_cache = true;
  std::optional<Request> back = parse_request_line(to_json(req).dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->method, "compile");
  EXPECT_EQ(back->source, req.source);
  EXPECT_EQ(back->args, req.args);
  EXPECT_EQ(back->deadline_ms, 1500u);
  EXPECT_TRUE(back->no_cache);
}

TEST(Protocol, ResponseRoundTrips) {
  Response r;
  r.id = 7;
  r.status = Status::Degraded;
  r.exit_code = 3;
  r.out = "line1\nline2\n";
  r.err = "warn\n";
  r.cached = true;
  r.attempts = 2;
  r.wall_ns = 123456789;
  r.detail = "circuit open";
  std::optional<Response> back = parse_response_line(to_json(r).dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, 7u);
  EXPECT_EQ(back->status, Status::Degraded);
  EXPECT_EQ(back->exit_code, 3);
  EXPECT_EQ(back->out, r.out);
  EXPECT_EQ(back->err, r.err);
  EXPECT_TRUE(back->cached);
  EXPECT_EQ(back->attempts, 2);
  EXPECT_EQ(back->wall_ns, 123456789u);
  EXPECT_EQ(back->detail, "circuit open");
  EXPECT_TRUE(back->answered());
}

TEST(Protocol, MalformedLinesAreRejected) {
  EXPECT_FALSE(parse_request_line("not json").has_value());
  EXPECT_FALSE(parse_request_line("{}").has_value());  // no id
  EXPECT_FALSE(
      parse_request_line("{\"id\":1,\"args\":\"not-an-array\"}").has_value());
  EXPECT_FALSE(parse_response_line("{\"id\":1}").has_value());  // no status
  EXPECT_FALSE(
      parse_response_line("{\"id\":1,\"status\":\"nonsense\"}").has_value());
}

// ----- result cache -------------------------------------------------------

Response ok_response(const std::string& out) {
  Response r;
  r.status = Status::Ok;
  r.out = out;
  return r;
}

TEST(ResultCacheTest, HitMissAndLruEviction) {
  ResultCache cache(2);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", ok_response("A"));
  cache.put("b", ok_response("B"));
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  ASSERT_TRUE(cache.get("a").has_value());
  cache.put("c", ok_response("C"));
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_GT(s.hit_rate(), 0.0);
}

TEST(ResultCacheTest, HitsComeBackMarkedCached) {
  ResultCache cache(4);
  Response r = ok_response("X");
  r.cached = false;
  r.id = 99;
  cache.put("k", r);
  std::optional<Response> hit = cache.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->cached);
  EXPECT_EQ(hit->id, 0u);  // the caller stamps the request id
  EXPECT_EQ(hit->out, "X");
}

TEST(ResultCacheTest, JournalPersistsAndResolvesDuplicatesLastWriteWins) {
  fs::path path = unique_tmp("slc-cache-journal");
  {
    ResultCache cache(8);
    ASSERT_TRUE(cache.open_journal(path.string()));
    cache.put("k1", ok_response("first"));
    cache.put("k1", ok_response("second"));  // same key appended twice
    cache.put("k2", ok_response("other"));
    cache.flush();
  }
  {
    // Simulate a kill -9 mid-append: a torn trailing line.
    std::ofstream f(path, std::ios::app);
    f << "{\"key\":\"torn\",\"response\":{\"sta";
  }
  ResultCache warm(8);
  ASSERT_TRUE(warm.open_journal(path.string()));
  CacheStats s = warm.stats();
  EXPECT_EQ(s.journal_loaded, 2u);      // k1, k2
  EXPECT_EQ(s.journal_duplicates, 1u);  // k1's second append
  EXPECT_EQ(s.journal_skipped, 1u);     // the torn tail
  std::optional<Response> hit = warm.get("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->out, "second");  // last write wins
  fs::remove(path);
}

// ----- circuit breaker ----------------------------------------------------

TEST(Breaker, TripsAfterThresholdAndServesOpen) {
  std::uint64_t now = 0;
  BreakerRegistry reg({/*threshold=*/3, /*cooldown_ms=*/1000},
                      [&now] { return now; });
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(reg.admit("k"), BreakerState::Closed);
    reg.record("k", false);
  }
  EXPECT_EQ(reg.trips(), 0u);
  EXPECT_EQ(reg.admit("k"), BreakerState::Closed);
  reg.record("k", false);  // third consecutive failure trips it
  EXPECT_EQ(reg.trips(), 1u);
  EXPECT_EQ(reg.state("k"), BreakerState::Open);
  EXPECT_EQ(reg.admit("k"), BreakerState::Open);
  EXPECT_EQ(reg.open_circuits(), 1u);
  // Other keys are unaffected.
  EXPECT_EQ(reg.admit("other"), BreakerState::Closed);
}

TEST(Breaker, SuccessResetsTheFailureStreak) {
  std::uint64_t now = 0;
  BreakerRegistry reg({3, 1000}, [&now] { return now; });
  reg.record("k", false);
  reg.record("k", false);
  reg.record("k", true);  // streak broken
  reg.record("k", false);
  reg.record("k", false);
  EXPECT_EQ(reg.state("k"), BreakerState::Closed);
  EXPECT_EQ(reg.trips(), 0u);
}

TEST(Breaker, HalfOpenProbeClosesOnSuccess) {
  std::uint64_t now = 0;
  BreakerRegistry reg({1, 500}, [&now] { return now; });
  reg.admit("k");
  reg.record("k", false);  // threshold 1: trips immediately
  EXPECT_EQ(reg.state("k"), BreakerState::Open);
  EXPECT_EQ(reg.admit("k"), BreakerState::Open);  // cooldown not elapsed
  now = 500;
  EXPECT_EQ(reg.admit("k"), BreakerState::HalfOpen);  // the one probe
  EXPECT_EQ(reg.admit("k"), BreakerState::Open);      // everyone else waits
  reg.record("k", true);
  EXPECT_EQ(reg.state("k"), BreakerState::Closed);
  EXPECT_EQ(reg.admit("k"), BreakerState::Closed);
  EXPECT_EQ(reg.open_circuits(), 0u);
}

TEST(Breaker, HalfOpenProbeReopensOnFailureAndRestartsCooldown) {
  std::uint64_t now = 0;
  BreakerRegistry reg({1, 500}, [&now] { return now; });
  reg.admit("k");
  reg.record("k", false);
  now = 500;
  EXPECT_EQ(reg.admit("k"), BreakerState::HalfOpen);
  reg.record("k", false);  // probe failed
  EXPECT_EQ(reg.state("k"), BreakerState::Open);
  now = 900;  // cooldown restarted at t=500, not elapsed yet
  EXPECT_EQ(reg.admit("k"), BreakerState::Open);
  now = 1000;
  EXPECT_EQ(reg.admit("k"), BreakerState::HalfOpen);
  // A second trip is only counted on Closed->Open transitions.
  EXPECT_EQ(reg.trips(), 1u);
}

// ----- subprocess fd hygiene (regression for the error paths) -------------

std::vector<int> open_fds() {
  std::vector<int> fds;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return fds;
  while (dirent* e = ::readdir(dir)) {
    if (e->d_name[0] == '.') continue;
    int fd = std::atoi(e->d_name);
    if (fd != ::dirfd(dir)) fds.push_back(fd);
  }
  ::closedir(dir);
  return fds;
}

/// Fds above stderr that would leak into an exec'd child (no FD_CLOEXEC).
int inheritable_extra_fds() {
  int n = 0;
  for (int fd : open_fds()) {
    if (fd <= 2) continue;
    int flags = ::fcntl(fd, F_GETFD);
    if (flags >= 0 && (flags & FD_CLOEXEC) == 0) ++n;
  }
  return n;
}

TEST(FdHygiene, RepeatedRunsLeakNoParentFds) {
  subprocess::RunOptions ro;
  ro.argv = {"/bin/sh", "-c", "cat; echo done"};
  ro.stdin_text = "hello";
  (void)subprocess::run(ro);  // warm any lazy one-time allocations
  std::size_t before = open_fds().size();
  for (int i = 0; i < 32; ++i) {
    subprocess::RunResult r = subprocess::run(ro);
    ASSERT_TRUE(r.spawned) << r.spawn_error;
    ASSERT_TRUE(r.clean());
  }
  EXPECT_EQ(open_fds().size(), before);
}

TEST(FdHygiene, ChildInheritsOnlyTheStandardStreams) {
  // The pipes backing stdin/stdout/stderr are created O_CLOEXEC, so the
  // exec'd child must see exactly fds 0-3 (3 is ls's own directory fd)
  // plus whatever this test process genuinely leaves inheritable.
  int extra = inheritable_extra_fds();
  subprocess::RunOptions ro;
  ro.argv = {"/bin/sh", "-c", "ls -1 /proc/self/fd | wc -l"};
  subprocess::RunResult r = subprocess::run(ro);
  ASSERT_TRUE(r.spawned) << r.spawn_error;
  ASSERT_TRUE(r.clean()) << r.describe() << "\n" << r.err;
  EXPECT_EQ(std::atoi(r.out.c_str()), 4 + extra) << r.out;
}

TEST(FdHygiene, SurvivesFdLimitPressureIncludingExecFailures) {
  // With ~16 spare fds, 48 sequential spawns (a third of which fail at
  // exec) only pass if every path — success, exec failure, watchdog —
  // releases all six pipe ends. A 3-fd-per-run leak exhausts the limit
  // by the sixth iteration and turns into spawn failures here.
  rlimit old{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old), 0);
  rlimit tight = old;
  tight.rlim_cur = rlim_t(open_fds().size()) + 16;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  for (int i = 0; i < 48; ++i) {
    subprocess::RunOptions ro;
    if (i % 3 == 2) {
      ro.argv = {"/nonexistent/binary/for/slc/tests"};
    } else {
      ro.argv = {"/bin/sh", "-c", "cat"};
      ro.stdin_text = "x";
    }
    subprocess::RunResult r = subprocess::run(ro);
    if (!(i % 3 == 2)) {
      ASSERT_TRUE(r.spawned && r.clean())
          << "iteration " << i << ": " << r.describe() << " "
          << r.spawn_error;
    }
  }
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old), 0);
}

// ----- run journal: duplicate keys ----------------------------------------

TEST(JournalDuplicates, LastWriteWinsAndIsCounted) {
  fs::path path = unique_tmp("slc-journal-dup");
  namespace journal = driver::journal;
  {
    journal::Journal jnl;
    ASSERT_TRUE(jnl.open(path.string(), /*truncate=*/true));
    driver::ComparisonRow row;
    row.kernel = "stale";
    row.ok = true;
    jnl.append("key-a", row);
    row.kernel = "fresh";  // crashed-then-resumed runs rewrite rows
    jnl.append("key-a", row);
    row.kernel = "other";
    jnl.append("key-b", row);
  }
  journal::LoadResult loaded = journal::load(path.string());
  EXPECT_EQ(loaded.rows.size(), 2u);
  EXPECT_EQ(loaded.duplicate_keys, 1u);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  ASSERT_TRUE(loaded.rows.count("key-a"));
  EXPECT_EQ(loaded.rows["key-a"].kernel, "fresh");
  fs::remove(path);
}

// ----- the Service core against a scriptable fake slc ---------------------

/// A /bin/sh stand-in for slc whose behavior is selected by fake flags:
///   --boom   crash with SIGSEGV — unless $FAKE_MARKER exists, then
///            succeed (lets tests script a recovery for the breaker)
///   --spin   hang until the watchdog kills it
///   --slow   sleep briefly, then succeed (occupies a worker)
///   --fail   exit 3 with a diagnostic (a deterministic answer)
///   --no-slms  print the base-only marker and exit 0 (degraded path)
/// Everything else echoes its argv (and stdin, when piped) so outputs
/// are distinguishable and cacheable.
std::string write_fake_slc() {
  fs::path path = unique_tmp("fake-slc");
  std::ofstream out(path);
  out << "#!/bin/sh\n"
         "for a in \"$@\"; do\n"
         "  case \"$a\" in\n"
         "    --no-slms) echo \"base-only:$*\"; exit 0;;\n"
         "  esac\n"
         "done\n"
         "for a in \"$@\"; do\n"
         "  case \"$a\" in\n"
         "    --boom)\n"
         "      if [ -n \"$FAKE_MARKER\" ] && [ -e \"$FAKE_MARKER\" ]; then\n"
         "        echo \"recovered:$*\"; exit 0\n"
         "      fi\n"
         "      kill -SEGV $$;;\n"
         "    --spin) sleep 600;;\n"
         "    --slow) sleep 0.4;;\n"
         "    --fail) echo \"diagnosed\" >&2; exit 3;;\n"
         "  esac\n"
         "done\n"
         "if [ \"$#\" -gt 0 ]; then\n"
         "  for last in \"$@\"; do :; done\n"
         "  if [ \"$last\" = \"-\" ]; then cat; fi\n"
         "fi\n"
         "echo \"ran:$*\"\n";
  out.close();
  ::chmod(path.c_str(), 0755);
  return path.string();
}

ServiceOptions fast_options(const std::string& fake_slc) {
  ServiceOptions o;
  o.slc_exe = fake_slc;
  o.workers = 2;
  o.queue_max = 4;
  o.child_timeout_ms = 1000;
  o.max_attempts = 2;
  o.retry_base_delay_ms = 1;
  o.breaker_threshold = 2;
  o.breaker_cooldown_ms = 100;
  return o;
}

Request compile_request(std::vector<std::string> args,
                        std::uint64_t id = 1) {
  Request req;
  req.id = id;
  req.args = std::move(args);
  return req;
}

TEST(ServiceCore, AnswersAndCachesDeterministicRuns) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Request req = compile_request({"--kernel=k1", "--report"});
  Response first = svc.execute(req);
  EXPECT_EQ(first.status, Status::Ok);
  EXPECT_EQ(first.exit_code, 0);
  EXPECT_EQ(first.out, "ran:--kernel=k1 --report\n");
  EXPECT_FALSE(first.cached);
  EXPECT_EQ(first.attempts, 1);
  Response second = svc.execute(req);
  EXPECT_EQ(second.status, Status::Ok);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.out, first.out);
  EXPECT_EQ(svc.stats().cache.hits, 1u);
  fs::remove(fake);
}

TEST(ServiceCore, SourceOnStdinReachesTheChild) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Request req = compile_request({"--emit-source"});
  req.source = "int v[10];\n";
  Response r = svc.execute(req);
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.out, "int v[10];\nran:--emit-source -\n");
  fs::remove(fake);
}

// ----- the in-process lint method ----------------------------------------
// `lint` must never spawn a sandbox child (it is the low-latency editor
// path) and must carry the CLI lint exit convention in exit_code:
// 0 clean, 1 findings, 65/EX_DATAERR parse failure.

TEST(ServiceLint, CleanSourceAnswersZeroWithoutAChild) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Request req;
  req.id = 7;
  req.method = "lint";
  req.source =
      "double A[64];\n"
      "double B[64];\n"
      "int i;\n"
      "for (i = 1; i < 60; i++) {\n"
      "  B[i] = B[i - 1] + A[i] * 0.5;\n"
      "}\n";
  req.args = {"--no-filter"};
  Response r = svc.execute(req);
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out.substr(0, 1), "[");  // diagnostics JSON array
  EXPECT_NE(r.err.find("loop(s) pipelined"), std::string::npos);
  EXPECT_EQ(svc.stats().child_spawns, 0u);  // in-process, no sandbox
  EXPECT_EQ(svc.stats().lints, 1u);
  fs::remove(fake);
}

TEST(ServiceLint, PlantedMiscompileAnswersOneWithFindings) {
  std::string error;
  ASSERT_TRUE(support::fault::configure("bug:prologue-drop", &error))
      << error;
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Request req;
  req.id = 8;
  req.method = "lint";
  req.source =
      "double A[64];\n"
      "double B[64];\n"
      "double C[64];\n"
      "double s;\n"
      "int i;\n"
      "for (i = 2; i < 60; i++) {\n"
      "  s = A[i] * 0.5;\n"
      "  B[i] = B[i - 1] + s;\n"
      "  C[i] = B[i] * s;\n"
      "}\n";
  req.args = {"--no-filter"};
  Response r = svc.execute(req);
  support::fault::clear();
  EXPECT_EQ(r.status, Status::Ok);  // transport ok; verdict is the exit
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("\"severity\""), std::string::npos);
  fs::remove(fake);
}

TEST(ServiceLint, ParseFailureAnswersSysexitsDataErr) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Request req;
  req.id = 9;
  req.method = "lint";
  req.source = "for (i = 0; i <\n";  // truncated: cannot parse
  Response r = svc.execute(req);
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.exit_code, 65);  // EX_DATAERR
  fs::remove(fake);
}

TEST(ServiceLint, MissingSourceIsABadRequest) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Request req;
  req.id = 10;
  req.method = "lint";  // no source at all
  Response r = svc.execute(req);
  EXPECT_EQ(r.status, Status::BadRequest);
  fs::remove(fake);
}

TEST(ServiceCore, NonZeroExitIsTheAnswerNotAFailure) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  Response r = svc.execute(compile_request({"--kernel=k2", "--fail"}));
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.err, "diagnosed\n");
  EXPECT_EQ(r.attempts, 1);  // deterministic: no retry
  // And it is cacheable: the second ask spawns nothing.
  Response again = svc.execute(compile_request({"--kernel=k2", "--fail"}));
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.exit_code, 3);
  EXPECT_EQ(svc.stats().breaker_trips, 0u);
  fs::remove(fake);
}

TEST(ServiceCore, CrashesRetryThenTripTheBreakerThenDegrade) {
  std::string fake = write_fake_slc();
  ServiceOptions options = fast_options(fake);
  Service svc(options);
  Request req = compile_request({"--kernel=boom", "--boom"});
  req.no_cache = true;

  // Two crashing requests (threshold) — each retried max_attempts times.
  Response r1 = svc.execute(req);
  EXPECT_EQ(r1.status, Status::Error);
  EXPECT_EQ(r1.attempts, options.max_attempts);
  Response r2 = svc.execute(req);
  EXPECT_EQ(r2.status, Status::Error);
  ServiceStats s = svc.stats();
  EXPECT_EQ(s.breaker_trips, 1u);
  EXPECT_EQ(s.retries, std::uint64_t(2 * (options.max_attempts - 1)));

  // Circuit open: the same kernel is served the degraded base-only run.
  Response r3 = svc.execute(req);
  EXPECT_EQ(r3.status, Status::Degraded);
  EXPECT_EQ(r3.out, "base-only:--kernel=boom --boom --no-slms\n");
  EXPECT_NE(r3.detail.find("circuit"), std::string::npos);

  // Other kernels are unaffected by boom's circuit.
  Response other = svc.execute(compile_request({"--kernel=fine"}));
  EXPECT_EQ(other.status, Status::Ok);
  fs::remove(fake);
}

TEST(ServiceCore, HalfOpenProbeRecoversAfterCooldown) {
  std::string fake = write_fake_slc();
  fs::path marker = unique_tmp("fake-slc-marker");
  ::setenv("FAKE_MARKER", marker.c_str(), 1);
  ServiceOptions options = fast_options(fake);
  options.breaker_threshold = 1;
  options.max_attempts = 1;
  options.breaker_cooldown_ms = 50;
  Service svc(options);
  Request req = compile_request({"--kernel=flappy", "--boom"});
  req.no_cache = true;

  EXPECT_EQ(svc.execute(req).status, Status::Error);  // trips (threshold 1)
  EXPECT_EQ(svc.execute(req).status, Status::Degraded);

  // The kernel "recovers"; after the cooldown the half-open probe runs
  // the full path again and closes the circuit.
  { std::ofstream m(marker); m << "ok\n"; }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  Response probe = svc.execute(req);
  EXPECT_EQ(probe.status, Status::Ok);
  EXPECT_EQ(probe.out, "recovered:--kernel=flappy --boom\n");
  EXPECT_EQ(svc.execute(req).status, Status::Ok);
  EXPECT_EQ(svc.stats().open_circuits, 0u);

  ::unsetenv("FAKE_MARKER");
  fs::remove(marker);
  fs::remove(fake);
}

TEST(ServiceCore, HangsAreKilledByTheWatchdog) {
  std::string fake = write_fake_slc();
  ServiceOptions options = fast_options(fake);
  options.child_timeout_ms = 200;
  options.max_attempts = 1;
  Service svc(options);
  Response r = svc.execute(compile_request({"--kernel=hang", "--spin"}));
  EXPECT_EQ(r.status, Status::Error);
  EXPECT_NE(r.detail.find("timeout"), std::string::npos) << r.detail;
  fs::remove(fake);
}

TEST(ServiceCore, OverloadShedsExplicitlyAndDrainRefusesNewWork) {
  std::string fake = write_fake_slc();
  ServiceOptions options = fast_options(fake);
  options.workers = 2;
  options.queue_max = 0;  // admission cap = the two busy workers
  Service svc(options);

  std::mutex mu;
  std::map<std::uint64_t, Status> done;
  auto on_done = [&](Response r) {
    std::lock_guard<std::mutex> lock(mu);
    done[r.id] = r.status;
  };
  // Two slow requests occupy both workers; the rest must shed NOW.
  std::uint64_t id = 0;
  svc.submit(compile_request({"--kernel=s1", "--slow"}, ++id), on_done);
  svc.submit(compile_request({"--kernel=s2", "--slow"}, ++id), on_done);
  int shed = 0;
  for (int i = 0; i < 4; ++i)
    if (!svc.submit(compile_request({"--kernel=q", "--slow"}, ++id),
                    on_done))
      ++shed;
  EXPECT_EQ(shed, 4);
  svc.drain();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(done.size(), 6u);  // every request answered exactly once
    EXPECT_EQ(done[1], Status::Ok);
    EXPECT_EQ(done[2], Status::Ok);
    for (std::uint64_t i = 3; i <= 6; ++i)
      EXPECT_EQ(done[i], Status::Overloaded);
  }
  EXPECT_EQ(svc.stats().shed, 4u);

  // Draining: new work is refused with `shutdown`.
  Status refused = Status::Ok;
  svc.submit(compile_request({"--kernel=late"}, 99),
             [&](Response r) { refused = r.status; });
  EXPECT_EQ(refused, Status::Shutdown);
  fs::remove(fake);
}

TEST(ServiceCore, StatsJsonCarriesTheCounters) {
  std::string fake = write_fake_slc();
  Service svc(fast_options(fake));
  (void)svc.execute(compile_request({"--kernel=k"}));
  (void)svc.execute(compile_request({"--kernel=k"}));
  std::optional<support::json::Value> v =
      support::json::parse(svc.stats_json().dump());
  ASSERT_TRUE(v.has_value());
  const support::json::Value* cache = v->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("hits")->as_u64(), 1u);
  EXPECT_EQ(v->find("completed")->as_u64(), 2u);
  fs::remove(fake);
}

// ----- slcd end-to-end over a real socket ---------------------------------

#ifdef SLCD_BIN

struct Daemon {
  pid_t pid = -1;
  std::string socket_path;

  static Daemon start(const std::string& fake_slc,
                      std::vector<std::string> extra = {}) {
    Daemon d;
    d.socket_path = unique_tmp("slcd-sock").string();
    std::vector<std::string> args = {SLCD_BIN,
                                     "--socket=" + d.socket_path,
                                     "--slc=" + fake_slc,
                                     "--workers=2",
                                     "--retry-base-delay-ms=1",
                                     "--child-timeout-ms=2000"};
    for (std::string& a : extra) args.push_back(std::move(a));
    d.pid = ::fork();
    if (d.pid == 0) {
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(SLCD_BIN, argv.data());
      _exit(127);
    }
    return d;
  }

  int connect_with_retry() {
    std::string error;
    for (int i = 0; i < 100; ++i) {
      int fd = socket::connect_unix(socket_path, &error);
      if (fd >= 0) return fd;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ADD_FAILURE() << "cannot connect to slcd: " << error;
    return -1;
  }

  int terminate_and_wait() {
    if (pid <= 0) return -1;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    ::unlink(socket_path.c_str());
    return status;
  }

  ~Daemon() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

TEST(SlcdE2E, PipelinedRequestsAllAnsweredAndDrainExitsZero) {
  std::string fake = write_fake_slc();
  Daemon daemon = Daemon::start(fake);
  int fd = daemon.connect_with_retry();
  ASSERT_GE(fd, 0);

  // Pipeline a mixed batch on one connection: responses may arrive out
  // of order but every id must be answered exactly once.
  std::string batch;
  auto add = [&batch](const Request& r) {
    batch += to_json(r).dump();
    batch.push_back('\n');
  };
  add(compile_request({"--kernel=a"}, 1));
  add(compile_request({"--kernel=boom", "--boom"}, 2));
  add(compile_request({"--kernel=a"}, 3));  // cache hit of id 1
  Request ping;
  ping.id = 4;
  ping.method = "ping";
  add(ping);
  batch += "this is not json\n";
  ASSERT_TRUE(socket::write_all(fd, batch));

  socket::LineReader reader(fd);
  std::map<std::uint64_t, Response> got;
  std::string line;
  int bad_request_replies = 0;
  while ((got.size() + bad_request_replies) < 5 &&
         reader.next_line(&line)) {
    std::optional<Response> r = parse_response_line(line);
    ASSERT_TRUE(r.has_value()) << line;
    if (r->status == Status::BadRequest && r->id == 0) {
      ++bad_request_replies;
      continue;
    }
    EXPECT_EQ(got.count(r->id), 0u) << "duplicate response id " << r->id;
    got[r->id] = *r;
  }
  ::close(fd);

  EXPECT_EQ(bad_request_replies, 1);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[1].status, Status::Ok);
  EXPECT_EQ(got[1].out, "ran:--kernel=a\n");
  EXPECT_FALSE(got[1].cached);
  EXPECT_EQ(got[2].status, Status::Error);  // crash after retries
  EXPECT_EQ(got[3].status, Status::Ok);
  EXPECT_EQ(got[3].out, got[1].out);        // byte-identical warm answer
  EXPECT_TRUE(got[3].cached || !got[1].cached);
  EXPECT_EQ(got[4].out, "pong");

  int status = daemon.terminate_and_wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);  // graceful drain
  fs::remove(fake);
}

TEST(SlcdE2E, ShutdownRequestDrainsTheDaemon) {
  std::string fake = write_fake_slc();
  Daemon daemon = Daemon::start(fake);
  int fd = daemon.connect_with_retry();
  ASSERT_GE(fd, 0);
  Request req;
  req.id = 1;
  req.method = "shutdown";
  std::string line = to_json(req).dump();
  line.push_back('\n');
  ASSERT_TRUE(socket::write_all(fd, line));
  socket::LineReader reader(fd);
  std::string reply;
  ASSERT_TRUE(reader.next_line(&reply));
  std::optional<Response> r = parse_response_line(reply);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, Status::Ok);
  EXPECT_EQ(r->out, "draining");
  ::close(fd);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
  daemon.pid = -1;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  fs::remove(fake);
}

#endif  // SLCD_BIN

}  // namespace
