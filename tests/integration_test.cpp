// Full-pipeline integration sweep: a sample of kernels through every
// backend preset, asserting the whole measurement machinery holds
// together (oracle, lowering, scheduling, simulation).
#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

struct SweepCase {
  const char* kernel;
  int backend;  // index into the preset list
};

driver::Backend backend_by_index(int index) {
  switch (index) {
    case 0: return driver::weak_compiler_o0();
    case 1: return driver::weak_compiler_o3();
    case 2: return driver::weak_compiler_sms();
    case 3: return driver::strong_compiler_icc();
    case 4: return driver::strong_compiler_xlc();
    case 5: return driver::superscalar_gcc();
    default: return driver::arm_gcc();
  }
}

class BackendSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BackendSweep, CompareKernelSucceeds) {
  const SweepCase& c = GetParam();
  const kernels::Kernel* k = kernels::find(c.kernel);
  ASSERT_NE(k, nullptr);
  driver::Backend backend = backend_by_index(c.backend);
  driver::ComparisonRow row = driver::compare_kernel(*k, backend);
  ASSERT_TRUE(row.ok) << backend.label << ": " << row.error;
  EXPECT_GT(row.cycles_base, 0u);
  EXPECT_GT(row.cycles_slms, 0u);
  // Sanity corridor: SLMS never changes cycle counts by more than 8x in
  // either direction on these kernels/backends.
  double s = row.speedup();
  EXPECT_GT(s, 0.125) << backend.label;
  EXPECT_LT(s, 8.0) << backend.label;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* kernel :
       {"kernel2", "kernel8", "kernel24", "daxpy", "ddot", "idamax",
        "stone2", "nas_btrix"}) {
    for (int b = 0; b < 7; ++b) cases.push_back({kernel, b});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, BackendSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.kernel) + "_b" +
             std::to_string(info.param.backend);
    });

TEST(Integration, SeedsChangeDataNotDecisions) {
  // Different memory seeds must not change whether SLMS applies or the
  // schedule shape — only data (and data-dependent cycles slightly).
  const kernels::Kernel* k = kernels::find("kernel8");
  driver::CompareOptions a, b;
  a.sim_seed = 1;
  b.sim_seed = 7;
  auto ra = driver::compare_kernel(*k, driver::weak_compiler_o3(), a);
  auto rb = driver::compare_kernel(*k, driver::weak_compiler_o3(), b);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_EQ(ra.slms_applied, rb.slms_applied);
  EXPECT_EQ(ra.report.ii, rb.report.ii);
  EXPECT_EQ(ra.report.unroll, rb.report.unroll);
}

}  // namespace
}  // namespace slc
