// End-to-end SLMS driver tests on the paper's worked examples, each
// verified against the interpreter oracle.
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
using slms::SlmsOptions;
using slms::SlmsReport;
using test::expect_equivalent;
using test::parse_or_die;

/// Applies SLMS to every loop in `source` and oracle-checks the result.
/// Returns the reports (one per visited loop).
std::vector<SlmsReport> run_slms(const std::string& source,
                                 SlmsOptions options = {},
                                 Program* transformed_out = nullptr) {
  Program original = parse_or_die(source);
  Program transformed = original.clone();
  std::vector<SlmsReport> reports = slms::apply_slms(transformed, options);
  expect_equivalent(original, transformed);
  if (transformed_out != nullptr) *transformed_out = std::move(transformed);
  return reports;
}

TEST(Slms, Section32SelfDependentLoopDecomposes) {
  // Paper §3.2: one MI + loop-carried self dependence; decomposition
  // hoists the anti-dependent load A[i+2] and SLMS reaches II=1.
  auto reports = run_slms(R"(
    double A[64];
    int i;
    for (i = 2; i < 62; i++) {
      A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];
    }
  )");
  ASSERT_EQ(reports.size(), 1u);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_EQ(r.ii, 1);
  EXPECT_GE(r.decompositions, 1);
  EXPECT_EQ(r.num_mis, 2);
}

TEST(Slms, Figure7DecompositionPlusMve) {
  // Paper Fig. 7: loop with an explicit register and a loop scalar; MVE
  // generates two copies per loop variant.
  Program transformed;
  auto reports = run_slms(R"(
    double A[70]; double B[70]; double C[70];
    double reg; double scal;
    int i;
    for (i = 1; i < 64; i++) {
      reg = A[i + 1];
      A[i] = A[i - 1] + reg;
      scal = B[i] / 2.0;
      C[i] = scal * 3.0;
    }
  )",
                          {}, &transformed);
  ASSERT_EQ(reports.size(), 1u);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_EQ(r.ii, 1);
  EXPECT_LE(r.stages, 3);
}

TEST(Slms, Section5NoDecompositionNeeded) {
  // Paper §5 second example (DU1/DU2/DU3): big body, no loop-carried
  // cycle => MII = 1 without decomposition.
  auto reports = run_slms(R"(
    double U1[220]; double U2[220]; double U3[220];
    double DU1[120]; double DU2[120]; double DU3[120];
    int ky;
    for (ky = 1; ky < 100; ky++) {
      DU1[ky] = U1[ky + 1] - U1[ky - 1];
      DU2[ky] = U2[ky + 1] - U2[ky - 1];
      DU3[ky] = U3[ky + 1] - U3[ky - 1];
      U1[ky + 101] = U1[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];
      U2[ky + 101] = U2[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];
      U3[ky + 101] = U3[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];
    }
  )");
  ASSERT_EQ(reports.size(), 1u);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_EQ(r.ii, 1);
  EXPECT_EQ(r.decompositions, 0);
  EXPECT_EQ(r.num_mis, 6);
}

TEST(Slms, MaxReductionWithIfConversion) {
  // Paper §5 first example. If-conversion predicates the body; the `max`
  // recurrence keeps II at 2 after one decomposition (the paper's II=1
  // version manually splits the reduction — a semantics-changing step
  // SLMS itself does not take).
  Program transformed;
  auto reports = run_slms(R"(
    double arr[128];
    double max;
    int i;
    max = arr[0];
    for (i = 1; i < 120; i++) {
      if (max < arr[i]) max = arr[i];
    }
  )",
                          {}, &transformed);
  ASSERT_EQ(reports.size(), 1u);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_TRUE(r.if_converted);
  EXPECT_EQ(r.ii, 2);
  EXPECT_EQ(r.decompositions, 1);
}

TEST(Slms, MveUnrollForLongLifetimes) {
  // A value consumed two stages after its definition forces two MVE
  // copies (unroll 2).
  Program transformed;
  auto reports = run_slms(R"(
    double A[64]; double B[64]; double C[64];
    double t; double u; double v;
    int i;
    for (i = 0; i < 40; i++) {
      t = A[i + 2];
      u = B[i] * 2.0;
      v = u + 1.0;
      C[i] = v + t + C[i - 1 + 1] * 0.5;
    }
  )",
                          {}, &transformed);
  ASSERT_EQ(reports.size(), 1u);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_EQ(r.ii, 1);
  EXPECT_EQ(r.unroll, 2) << to_source(transformed);
  EXPECT_GE(r.renamed_scalars, 1);
}

TEST(Slms, ScalarExpansionAlternative) {
  SlmsOptions opts;
  opts.renaming = slms::RenamingChoice::ScalarExpansion;
  Program transformed;
  auto reports = run_slms(R"(
    double A[64]; double B[64]; double C[64];
    double t; double u; double v;
    int i;
    for (i = 0; i < 40; i++) {
      t = A[i + 2];
      u = B[i] * 2.0;
      v = u + 1.0;
      C[i] = v + t + C[i - 1 + 1] * 0.5;
    }
  )",
                          opts, &transformed);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_EQ(r.unroll, 1);  // expansion does not unroll
  EXPECT_GE(r.renamed_scalars, 1);
  // The expansion array must appear in the output.
  EXPECT_NE(to_source(transformed).find("tArr"), std::string::npos)
      << to_source(transformed);
}

TEST(Slms, SymbolicBoundsUseTripGuard) {
  Program transformed;
  auto reports = run_slms(R"(
    double A[64]; double B[64]; double C[64];
    int n = 50;
    int i;
    for (i = 0; i < n; i++) {
      A[i] = B[i] * 2.0;
      C[i] = A[i] + 1.0;
    }
  )",
                          {}, &transformed);
  const SlmsReport& r = reports[0];
  EXPECT_TRUE(r.applied) << r.skip_reason;
  EXPECT_TRUE(r.used_trip_guard);
  EXPECT_EQ(r.ii, 1);
  EXPECT_EQ(r.stages, 2);
}

TEST(Slms, SymbolicGuardFallsBackForShortLoops) {
  // n smaller than the pipeline depth: the guard must route execution to
  // the original loop. Oracle-checked for several n.
  for (int n : {0, 1, 2, 3, 7}) {
    std::string src = R"(
      double A[64]; double B[64]; double C[64];
      int n = )" + std::to_string(n) +
                      R"(;
      int i;
      for (i = 0; i < n; i++) {
        A[i] = B[i] * 2.0;
        C[i] = A[i] + 1.0;
      }
    )";
    Program original = parse_or_die(src);
    Program transformed = original.clone();
    (void)slms::apply_slms(transformed, {});
    expect_equivalent(original, transformed);
  }
}

TEST(Slms, FilterSkipsMemoryBoundLoop) {
  // Paper §4 swap loop: memory-ref ratio above 0.85 => skipped.
  auto reports = run_slms(R"(
    double X[64]; double Y[64];
    double CT;
    int k;
    for (k = 0; k < 60; k++) {
      CT = X[k];
      X[k] = Y[k];
      Y[k] = CT;
    }
  )");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].applied);
  EXPECT_NE(reports[0].skip_reason.find("filtered"), std::string::npos)
      << reports[0].skip_reason;
  EXPECT_GE(reports[0].memory_ratio, 0.85);
}

TEST(Slms, FilterCanBeDisabled) {
  SlmsOptions opts;
  opts.enable_filter = false;
  auto reports = run_slms(R"(
    double X[64]; double Y[64];
    double CT;
    int k;
    for (k = 0; k < 60; k++) {
      CT = X[k];
      X[k] = Y[k];
      Y[k] = CT;
    }
  )",
                          opts);
  EXPECT_TRUE(reports[0].applied) << reports[0].skip_reason;
}

TEST(Slms, RejectsNonCanonicalLoops) {
  // Induction variable written in the body.
  auto reports = run_slms(R"(
    double A[64];
    int i;
    for (i = 0; i < 32; i++) {
      A[i] = 1.0;
      if (A[i] > 0.0) i = i + 0;
    }
  )");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].applied);
}

TEST(Slms, DeclInsideBodyIsRejectedWithHint) {
  auto reports = run_slms(R"(
    double A[64];
    int i;
    for (i = 1; i < 32; i++) {
      double t;
      t = A[i - 1];
      A[i] = t * 2.0;
    }
  )");
  EXPECT_FALSE(reports[0].applied);
  EXPECT_NE(reports[0].skip_reason.find("declare temporaries"),
            std::string::npos);
}

TEST(Slms, DownCountingLoop) {
  auto reports = run_slms(R"(
    double A[64]; double B[64];
    double t;
    int i;
    for (i = 60; i > 2; i--) {
      t = B[i];
      A[i] = A[i + 1] + t;
    }
  )");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].applied) << reports[0].skip_reason;
}

TEST(Slms, StepTwoLoop) {
  // Paper §8 works with j += 2 loops; dependences must use the effective
  // stride.
  auto reports = run_slms(R"(
    double x[128]; double y[128];
    double temp; double reg;
    int lw; int j;
    lw = 6;
    temp = 1.0;
    for (j = 4; j < 100; j = j + 2) {
      reg = y[j];
      temp = temp - x[lw] * reg;
      lw++;
    }
  )");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].applied) << reports[0].skip_reason;
}

TEST(Slms, NestedLoopTransformsInnermost) {
  Program transformed;
  auto reports = run_slms(R"(
    double a[40][40];
    double t;
    int i; int j;
    for (j = 0; j < 30; j++) {
      for (i = 0; i < 30; i++) {
        t = a[i][j];
        a[i][j + 1] = t + 1.0;
      }
    }
  )",
                          {}, &transformed);
  // Two loops visited: inner applied, outer rejected (body now a block).
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].applied) << reports[0].skip_reason;
  EXPECT_FALSE(reports[1].applied);
}

TEST(Slms, OpaqueCallIsSerialized) {
  // An unknown callee is a scheduling barrier: either SLMS skips the
  // loop, or the schedule keeps the call fully serialized (II >= 2, no
  // overlap of the call with itself). The oracle cannot execute unknown
  // calls, so only the report is checked here.
  Program p = parse_or_die(R"(
    double A[64];
    int i;
    for (i = 0; i < 32; i++) {
      A[i] = A[i] * 2.0;
      emit_event(A[i]);
    }
  )");
  auto reports = slms::apply_slms(p, {});
  ASSERT_EQ(reports.size(), 1u);
  if (reports[0].applied) {
    EXPECT_GE(reports[0].ii, 2);
  }
}

TEST(Slms, ParallelRowsAppearInOutput) {
  Program transformed;
  (void)run_slms(R"(
    double A[64]; double B[64]; double C[64];
    int i;
    for (i = 1; i < 60; i++) {
      A[i] = A[i - 1] * 0.5;
      B[i] = A[i] + 1.0;
      C[i] = B[i] * 2.0;
    }
  )",
                 {}, &transformed);
  std::string src = to_source(transformed);
  EXPECT_NE(src.find("||"), std::string::npos) << src;
}

}  // namespace
}  // namespace slc
