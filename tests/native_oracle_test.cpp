// Native-execution oracle (src/native) tests.
//
// The contract under test: a mini-C program lowered to C, compiled with
// the host compiler, and executed through the trampoline produces a
// memory image that is BYTE-IDENTICAL to the tree-walking interpreter's
// on the same seed — over the example programs, the kernel registry,
// and a 200-seed corpus of generated loops. On top of that:
//   * every planted `bug:<name>` miscompile is caught by the native
//     oracle alone (no interpreter in the loop);
//   * a missing host compiler degrades gracefully to the interpreter
//     (fell_back, never an error);
//   * codegen refuses what it cannot compile exactly, deterministically;
//   * the codegen cache serves memory and disk hits and reaches a
//     >90% hit rate on a warm second sweep.
//
// Everything that needs a host compiler is skipped (GTEST_SKIP) when
// none is detected, mirroring the CI job's explicit skip.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"
#include "interp/interp.hpp"
#include "kernels/kernels.hpp"
#include "native/cache.hpp"
#include "native/codegen.hpp"
#include "native/oracle.hpp"
#include "slms/slms.hpp"
#include "support/failure.hpp"
#include "support/fault.hpp"

namespace {

using namespace slc;

#define NATIVE_OR_SKIP()                                   \
  do {                                                     \
    if (!native::native_available())                       \
      GTEST_SKIP() << "no host C compiler detected";       \
  } while (0)

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

ast::Program parse(const std::string& source) {
  DiagnosticEngine diags;
  ast::Program p = frontend::parse_program(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return p;
}

/// Bit-exact agreement of one native execution with the interpreter:
/// same verdict, same abort kind, same step count, identical memory in
/// both diff directions.
void expect_byte_identical(const ast::Program& program, std::uint64_t seed,
                           const std::string& what) {
  interp::InterpOptions iopts;
  interp::RunResult it = interp::Interpreter(iopts).run(program, seed);
  native::NativeRun nat = native::run_native(program, seed, iopts);
  ASSERT_TRUE(nat.attempted) << what << ": " << nat.reason;
  EXPECT_EQ(it.ok, nat.result.ok) << what << ": interp=" << it.error
                                  << " native=" << nat.result.error;
  if (!it.ok || !nat.result.ok) {
    EXPECT_EQ(int(it.abort_kind), int(nat.result.abort_kind)) << what;
    EXPECT_EQ(it.steps, nat.result.steps) << what;
    return;
  }
  EXPECT_EQ(it.steps, nat.result.steps) << what;
  EXPECT_EQ(it.memory.diff(nat.result.memory), "") << what;
  EXPECT_EQ(nat.result.memory.diff(it.memory), "") << what;
}

/// Arms one planted bug for the duration of a test body.
class PlantedBug {
 public:
  explicit PlantedBug(const std::string& name) {
    std::string error;
    EXPECT_TRUE(support::fault::configure("bug:" + name, &error)) << error;
  }
  ~PlantedBug() { support::fault::clear(); }
};

/// Restores the cache's compiler/dir overrides even if a test fails.
class CacheOverrideGuard {
 public:
  ~CacheOverrideGuard() {
    native::CodegenCache::instance().set_host_cc("");
    native::CodegenCache::instance().set_cache_dir("");
  }
};

// --- 1. byte identity: registry, examples, generated corpus ---------------

TEST(NativeOracle, KernelRegistryByteIdentical) {
  NATIVE_OR_SKIP();
  int attempted = 0;
  for (const kernels::Kernel& k : kernels::all_kernels()) {
    ast::Program p = parse(k.source);
    interp::InterpOptions iopts;
    native::NativeRun nat = native::run_native(p, 0, iopts);
    if (!nat.attempted) continue;  // codegen refusal => interp fallback
    ++attempted;
    for (std::uint64_t seed : {0ULL, 1ULL})
      expect_byte_identical(p, seed, k.name);
  }
  // The registry is the native backend's bread and butter: refusing a
  // majority of it would gut the throughput win.
  EXPECT_GT(attempted, int(kernels::all_kernels().size() / 2));
}

TEST(NativeOracle, ExamplesBothModeAgree) {
  NATIVE_OR_SKIP();
  int seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(SLC_EXAMPLES_DIR)) {
    if (entry.path().extension() != ".c") continue;
    ++seen;
    std::string name = entry.path().filename().string();
    ast::Program original = parse(read_file(entry.path()));
    ast::Program transformed = original.clone();
    slms::SlmsOptions sopts;
    sopts.enable_filter = false;
    slms::apply_slms(transformed, sopts);

    interp::InterpOptions iopts;
    native::OracleOutcome out = native::oracle_check_equivalence(
        original, transformed, 0, iopts, native::OracleMode::Both);
    EXPECT_TRUE(out.eq.ok()) << name << ": " << out.eq.detail;
    EXPECT_FALSE(out.cross_check_failed)
        << name << ": " << out.cross_check_detail;
  }
  EXPECT_GT(seen, 0) << "no .c files under " << SLC_EXAMPLES_DIR;
}

TEST(NativeOracle, Fuzz200SeedCorpusByteIdentical) {
  NATIVE_OR_SKIP();
  int refused = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    fuzz::LoopGenerator gen{seed, {}};
    ast::Program p = parse(gen.generate());
    interp::InterpOptions iopts;
    native::NativeRun nat = native::run_native(p, 0, iopts);
    if (!nat.attempted) {
      ++refused;
      continue;
    }
    expect_byte_identical(p, 0, "gen seed " + std::to_string(seed));
  }
  // Generated canonical loops are squarely inside the supported subset.
  EXPECT_LT(refused, 10);
}

TEST(NativeOracle, DifferentialThreeWaySweep) {
  NATIVE_OR_SKIP();
  // AST interpreter vs MIR executor vs native code, per seed: the
  // differential harness's `both` mode plus the simulator cross-check.
  fuzz::DiffOptions diff;
  diff.oracle_mode = native::OracleMode::Both;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    fuzz::LoopGenerator gen{seed, {}};
    fuzz::DiffVerdict verdict = fuzz::differential_check(gen.generate(), diff);
    EXPECT_TRUE(verdict.ok) << "seed " << seed << ": " << verdict.str();
  }
}

// --- 2. planted miscompiles are caught natively ----------------------------

void expect_caught_natively(const std::string& bug,
                            const std::string& source) {
  PlantedBug armed(bug);
  ast::Program original = parse(source);
  ast::Program transformed = original.clone();
  slms::SlmsOptions sopts;
  sopts.enable_filter = false;
  slms::apply_slms(transformed, sopts);

  interp::InterpOptions iopts;
  native::OracleOutcome out = native::oracle_check_equivalence(
      original, transformed, 0, iopts, native::OracleMode::Native);
  EXPECT_TRUE(out.used_native) << bug;
  EXPECT_FALSE(out.fell_back) << bug << ": " << out.fallback_reason;
  EXPECT_FALSE(out.eq.ok())
      << bug << ": miscompile not caught by the native oracle";
}

std::string clobber_source() {
  return read_file(std::filesystem::path(SLC_EXAMPLES_DIR) /
                   "lint_clobber.c");
}

TEST(NativeOracle, CatchesMveSkipRename) {
  NATIVE_OR_SKIP();
  expect_caught_natively("mve-skip-rename", clobber_source());
}
TEST(NativeOracle, CatchesSchedSigmaSkew) {
  NATIVE_OR_SKIP();
  // sigma-skew corrupts the *exported* schedule metadata, not the
  // emitted source (see slms.cpp: "the static verifier must flag it...
  // without running anything") — no execution oracle can see it, and the
  // native oracle must NOT hallucinate a divergence. With the native
  // oracle in the differential harness, the bug is still caught: the
  // static verifier rejects a program the (native) oracle accepts.
  PlantedBug armed("sched-sigma-skew");
  ast::Program original = parse(clobber_source());
  ast::Program transformed = original.clone();
  slms::SlmsOptions sopts;
  sopts.enable_filter = false;
  slms::apply_slms(transformed, sopts);
  interp::InterpOptions iopts;
  native::OracleOutcome out = native::oracle_check_equivalence(
      original, transformed, 0, iopts, native::OracleMode::Both);
  EXPECT_TRUE(out.used_native);
  EXPECT_TRUE(out.eq.ok()) << out.eq.detail;
  EXPECT_FALSE(out.cross_check_failed) << out.cross_check_detail;

  fuzz::DiffOptions diff;
  diff.check_backends = false;
  diff.check_static = true;
  diff.oracle_mode = native::OracleMode::Native;
  fuzz::DiffVerdict verdict =
      fuzz::differential_check(clobber_source(), diff);
  EXPECT_FALSE(verdict.ok);
  EXPECT_EQ(int(verdict.failure.stage), int(support::Stage::Verify))
      << verdict.str();
}
TEST(NativeOracle, CatchesKernelRunOver) {
  NATIVE_OR_SKIP();
  expect_caught_natively("kernel-run-over", clobber_source());
}
TEST(NativeOracle, CatchesPrologueDrop) {
  NATIVE_OR_SKIP();
  expect_caught_natively("prologue-drop", clobber_source());
}
TEST(NativeOracle, CatchesPrologueEarlyIv) {
  NATIVE_OR_SKIP();
  expect_caught_natively("prologue-early-iv",
                         read_file(std::filesystem::path(SLC_EXAMPLES_DIR) /
                                   "lint_oob.c"));
}
TEST(NativeOracle, CatchesFixupStaleCopy) {
  NATIVE_OR_SKIP();
  expect_caught_natively("fixup-stale-copy", clobber_source());
}

// --- 3. graceful degradation -----------------------------------------------

TEST(NativeOracle, MissingCompilerFallsBackToInterp) {
  CacheOverrideGuard restore;
  native::CodegenCache::instance().set_host_cc(
      "/nonexistent/slc-no-such-cc");
  EXPECT_FALSE(native::native_available());
  EXPECT_EQ(native::oracle_identity(native::OracleMode::Native),
            "native:none");

  ast::Program original =
      parse("double A[32];\nint i;\nfor (i = 0; i < 32; i++) "
            "{ A[i] = 2.0; }\n");
  ast::Program transformed = original.clone();
  interp::InterpOptions iopts;
  native::OracleOutcome out = native::oracle_check_equivalence(
      original, transformed, 0, iopts, native::OracleMode::Native);
  EXPECT_TRUE(out.fell_back);
  EXPECT_FALSE(out.used_native);
  EXPECT_FALSE(out.fallback_reason.empty());
  EXPECT_TRUE(out.eq.ok()) << out.eq.detail;  // interp still decides
}

TEST(NativeOracle, FailureTaxonomyHasNativeStage) {
  // The Stage::Native / FailureKind::NativeError classifications must
  // round-trip through the journal's string form.
  EXPECT_EQ(std::string(support::to_string(support::Stage::Native)),
            "native");
  EXPECT_EQ(std::string(support::to_string(support::FailureKind::NativeError)),
            "native-error");
  auto stage = support::parse_stage("native");
  ASSERT_TRUE(stage.has_value());
  EXPECT_EQ(int(*stage), int(support::Stage::Native));
  auto kind = support::parse_failure_kind("native-error");
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(int(*kind), int(support::FailureKind::NativeError));
}

// --- 4. codegen: exactness via refusal, determinism ------------------------

TEST(NativeCodegen, RefusesOversizedArrays) {
  ast::Program p = parse("double A[99999999];\nA[0] = 1.0;\n");
  native::CodegenResult cg = native::generate_c(p);
  EXPECT_FALSE(cg.ok);
  EXPECT_FALSE(cg.reason.empty());
}

TEST(NativeCodegen, IsDeterministic) {
  ast::Program p = parse(kernels::find("kernel1")->source);
  native::CodegenResult a = native::generate_c(p);
  native::CodegenResult b = native::generate_c(p);
  ASSERT_TRUE(a.ok) << a.reason;
  EXPECT_EQ(a.c_source, b.c_source);  // the cache key depends on this
}

TEST(NativeCodegen, EmitsManifestForAllDecls) {
  ast::Program p = parse(
      "double A[8];\nint n;\ndouble s;\nint i;\n"
      "for (i = 0; i < 8; i++) { s = s + A[i]; }\n");
  native::CodegenResult cg = native::generate_c(p);
  ASSERT_TRUE(cg.ok) << cg.reason;
  EXPECT_EQ(cg.manifest.arrays.size(), 1u);
  EXPECT_EQ(cg.manifest.scalars.size(), 3u);
  EXPECT_NE(cg.c_source.find("slcnat_run"), std::string::npos);
}

// --- 5. the content-addressed codegen cache --------------------------------

TEST(NativeCache, MemDiskHitsAndWarmSweepRate) {
  NATIVE_OR_SKIP();
  CacheOverrideGuard restore;
  native::CodegenCache& cache = native::CodegenCache::instance();
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("slc-native-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  cache.set_cache_dir(dir.string());
  cache.reset_stats();

  ast::Program p = parse(kernels::find("kernel1")->source);
  native::CodegenResult cg = native::generate_c(p);
  ASSERT_TRUE(cg.ok) << cg.reason;

  // Cold: one real compiler invocation.
  auto first = cache.get_or_compile(cg.c_source);
  ASSERT_TRUE(first->ok) << first->error;
  EXPECT_EQ(cache.stats().compiles, 1u);

  // Warm, same process: memory hit.
  auto second = cache.get_or_compile(cg.c_source);
  EXPECT_TRUE(second->ok);
  EXPECT_EQ(second->entry, first->entry);
  EXPECT_EQ(cache.stats().mem_hits, 1u);

  // Simulated process restart (memory layer dropped): disk hit.
  cache.set_cache_dir(dir.string());
  auto third = cache.get_or_compile(cg.c_source);
  EXPECT_TRUE(third->ok) << third->error;
  EXPECT_EQ(cache.stats().disk_hits, 1u);

  // Warm second sweep over the whole registry: >90% hit rate (the
  // acceptance criterion the harness summary line reports).
  interp::InterpOptions iopts;
  for (int sweep = 0; sweep < 2; ++sweep) {
    if (sweep == 1) cache.reset_stats();
    for (const kernels::Kernel& k : kernels::all_kernels())
      (void)native::run_native(parse(k.source), 0, iopts);
  }
  EXPECT_GT(cache.stats().hit_rate(), 0.9)
      << "mem=" << cache.stats().mem_hits
      << " disk=" << cache.stats().disk_hits
      << " compiles=" << cache.stats().compiles;

  std::filesystem::remove_all(dir);
}

TEST(NativeCache, KeyedByCompilerSignature) {
  NATIVE_OR_SKIP();
  // Same mini-C source, two oracle identities: the journal key must not
  // collide across oracle backends (the --resume satellite).
  std::string id_interp =
      native::oracle_identity(native::OracleMode::Interp);
  std::string id_native =
      native::oracle_identity(native::OracleMode::Native);
  std::string id_both = native::oracle_identity(native::OracleMode::Both);
  EXPECT_EQ(id_interp, "interp");
  EXPECT_NE(id_native, id_interp);
  EXPECT_NE(id_both, id_native);
  EXPECT_EQ(id_native.rfind("native:", 0), 0u) << id_native;
}

}  // namespace
