// Failure injection for the schedule verifiers: a verifier that never
// fires is worthless, so corrupt legal schedules and check the checkers.
#include <gtest/gtest.h>

#include "machine/ims.hpp"
#include "machine/lower.hpp"
#include "machine/sms.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace machine;
using test::parse_or_die;

struct Fixture {
  MirProgram mir;
  const std::vector<MInst>* body = nullptr;
  MachineModel model = itanium2_model();
};

Fixture make_fixture() {
  Fixture f;
  ast::Program p = parse_or_die(R"(
    double A[128]; double B[128];
    int i;
    for (i = 1; i < 120; i++) {
      A[i] = A[i - 1] * 0.5 + B[i];
      B[i] = A[i] + 1.0;
    }
  )");
  DiagnosticEngine diags;
  f.mir = lower(p, diags);
  EXPECT_FALSE(diags.has_errors());
  for (const Region& r : f.mir.regions) {
    if (r.kind == Region::Kind::Loop && r.loop->body.size() == 1 &&
        r.loop->body[0].kind == Region::Kind::Block)
      f.body = &r.loop->body[0].insts;
  }
  EXPECT_NE(f.body, nullptr);
  return f;
}

TEST(Verifier, DetectsDependenceViolationInListSchedule) {
  Fixture f = make_fixture();
  BlockSchedule sched = list_schedule(*f.body, f.model);
  ASSERT_EQ(verify_block_schedule(*f.body, sched, f.model), std::nullopt);
  // Pull the last instruction to cycle 0: some producer is now violated.
  sched.cycle.back() = 0;
  EXPECT_NE(verify_block_schedule(*f.body, sched, f.model), std::nullopt);
}

TEST(Verifier, DetectsResourceOversubscription) {
  Fixture f = make_fixture();
  BlockSchedule sched = list_schedule(*f.body, f.model);
  // Cram every instruction into one cycle: issue width must trip.
  for (int& c : sched.cycle) c = 99;
  EXPECT_NE(verify_block_schedule(*f.body, sched, f.model), std::nullopt);
}

TEST(Verifier, DetectsModuloRowOverflow) {
  Fixture f = make_fixture();
  ImsResult r = modulo_schedule(*f.body, f.model, 1);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  ASSERT_EQ(verify_modulo_schedule(*f.body, f.model, 1, r), std::nullopt);
  // Collapse all slots onto one modulo row.
  ImsResult bad = r;
  for (std::size_t k = 0; k < bad.slot.size(); ++k)
    bad.slot[k] = int(k) * bad.ii;  // same row every time
  EXPECT_NE(verify_modulo_schedule(*f.body, f.model, 1, bad), std::nullopt);
}

TEST(Verifier, DetectsModuloDependenceViolation) {
  Fixture f = make_fixture();
  ImsResult r = swing_modulo_schedule(*f.body, f.model, 1);
  ASSERT_TRUE(r.ok) << r.fail_reason;
  ImsResult bad = r;
  // Reverse the slots: at least one latency constraint must break.
  int max_slot = 0;
  for (int s : bad.slot) max_slot = std::max(max_slot, s);
  for (int& s : bad.slot) s = max_slot - s;
  EXPECT_NE(verify_modulo_schedule(*f.body, f.model, 1, bad), std::nullopt);
}

TEST(Verifier, InterpreterCatchesBrokenTransformations) {
  // The oracle itself: an off-by-one "pipeline" must be caught.
  ast::Program original = parse_or_die(R"(
    double A[64];
    int i;
    for (i = 1; i < 60; i++) A[i] = A[i - 1] + 1.0;
  )");
  ast::Program broken = parse_or_die(R"(
    double A[64];
    int i;
    for (i = 1; i < 59; i++) A[i] = A[i - 1] + 1.0;
  )");
  EXPECT_NE(interp::check_equivalent(original, broken), "");
}

}  // namespace
}  // namespace slc
