// AST utilities: clone, equality, folding, substitution, printing.
#include <gtest/gtest.h>

#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "ast/printer.hpp"
#include "ast/subst.hpp"
#include "ast/walk.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
namespace b = ast::build;
using test::parse_stmt_or_die;

TEST(AstClone, DeepCopyIsEqualAndIndependent) {
  StmtPtr s = parse_stmt_or_die("A[i] = A[i - 1] + fabs(x) * 2.0;");
  StmtPtr c = s->clone();
  EXPECT_TRUE(equal(*s, *c));
  // Mutating the clone must not affect the original.
  rename_var(*c, "x", "y");
  EXPECT_FALSE(equal(*s, *c));
}

TEST(AstEqual, DistinguishesStructure) {
  EXPECT_TRUE(equal(*parse_stmt_or_die("x = a + b;"),
                    *parse_stmt_or_die("x = a + b;")));
  EXPECT_FALSE(equal(*parse_stmt_or_die("x = a + b;"),
                     *parse_stmt_or_die("x = b + a;")));
  EXPECT_FALSE(equal(*parse_stmt_or_die("x = a + b;"),
                     *parse_stmt_or_die("x = a - b;")));
  EXPECT_FALSE(equal(*parse_stmt_or_die("x += 1;"),
                     *parse_stmt_or_die("x -= 1;")));
}

TEST(Fold, IntegerArithmetic) {
  ExprPtr e = b::add(b::lit(2), b::mul(b::lit(3), b::lit(4)));
  fold(e);
  ASSERT_EQ(e->kind(), ExprKind::IntLit);
  EXPECT_EQ(dyn_cast<IntLit>(e.get())->value, 14);
}

TEST(Fold, IdentityRules) {
  ExprPtr e = b::add(b::var("i"), b::lit(0));
  fold(e);
  EXPECT_EQ(e->kind(), ExprKind::VarRef);

  e = b::mul(b::lit(1), b::var("i"));
  fold(e);
  EXPECT_EQ(e->kind(), ExprKind::VarRef);

  // (i + 2) + 3 => i + 5
  e = b::add(b::add(b::var("i"), b::lit(2)), b::lit(3));
  fold(e);
  EXPECT_EQ(to_source(*e), "i + 5");

  // (i + 2) - 2 => i
  e = b::sub(b::add(b::var("i"), b::lit(2)), b::lit(2));
  fold(e);
  EXPECT_EQ(to_source(*e), "i");

  // (i - 1) + 3 => i + 2
  e = b::add(b::sub(b::var("i"), b::lit(1)), b::lit(3));
  fold(e);
  EXPECT_EQ(to_source(*e), "i + 2");
}

TEST(Fold, DoesNotTouchFloats) {
  // 0.1 + 0.2 must NOT fold: transformed programs must stay bit-identical.
  ExprPtr e = b::add(b::flit(0.1), b::flit(0.2));
  fold(e);
  EXPECT_EQ(e->kind(), ExprKind::Binary);
}

TEST(Fold, Booleans) {
  ExprPtr e = b::bin(BinaryOp::And, b::blit(true), b::var("c"));
  fold(e);
  EXPECT_EQ(e->kind(), ExprKind::VarRef);

  e = b::lnot(b::lnot(b::var("c")));
  fold(e);
  EXPECT_EQ(e->kind(), ExprKind::VarRef);

  e = b::bin(BinaryOp::Lt, b::lit(3), b::lit(5));
  fold(e);
  ASSERT_EQ(e->kind(), ExprKind::BoolLit);
  EXPECT_TRUE(dyn_cast<BoolLit>(e.get())->value);
}

TEST(Subst, LoopVariableShift) {
  StmtPtr s = parse_stmt_or_die("A[i] = A[i - 1] + B[2 * i];");
  StmtPtr shifted = shift_iteration(*s, "i", 2);
  EXPECT_EQ(to_source(*shifted), "A[i + 2] = A[i + 1] + B[2 * (i + 2)];\n");
}

TEST(Subst, SubstituteWithConstantFolds) {
  StmtPtr s = parse_stmt_or_die("A[i + 1] = A[i - 1] * 2.0;");
  substitute_var(*s, "i", *b::lit(3));
  EXPECT_EQ(to_source(*s), "A[4] = A[2] * 2.0;\n");
}

TEST(Subst, RenameVarLeavesArraysAlone) {
  StmtPtr s = parse_stmt_or_die("t = t + A[t];");
  rename_var(*s, "t", "u");
  EXPECT_EQ(to_source(*s), "u = u + A[u];\n");
  rename_array(*s, "A", "B");
  EXPECT_EQ(to_source(*s), "u = u + B[u];\n");
}

TEST(Printer, GuardedStatement) {
  StmtPtr s = parse_stmt_or_die("x = x + 1;");
  auto* a = dyn_cast<AssignStmt>(s.get());
  a->guard = b::var("c");
  EXPECT_EQ(to_source(*s), "if (c) x = x + 1;\n");
}

TEST(Printer, ParallelRow) {
  std::vector<StmtPtr> row;
  row.push_back(parse_stmt_or_die("A[i] = t;"));
  row.push_back(parse_stmt_or_die("t = A[i + 2];"));
  StmtPtr p = b::parallel(std::move(row));
  EXPECT_EQ(to_source(*p), "A[i] = t;  ||  t = A[i + 2];\n");
  PrintOptions opts;
  opts.show_parallel_bars = false;
  EXPECT_EQ(to_source(*p, opts), "A[i] = t;  t = A[i + 2];\n");
}

TEST(Walk, CollectsScalarNames) {
  StmtPtr s = parse_stmt_or_die("A[i] = x + y * A[j];");
  auto names = scalar_names_used(*s);
  EXPECT_EQ(names, (std::vector<std::string>{"i", "j", "x", "y"}));
}

TEST(Walk, RewriteReplacesSlots) {
  StmtPtr s = parse_stmt_or_die("x = y + y;");
  int count = 0;
  rewrite_exprs(*s, [&](ExprPtr& slot) {
    if (const auto* v = dyn_cast<VarRef>(slot.get());
        v != nullptr && v->name == "y") {
      slot = b::lit(5);
      ++count;
    }
  });
  EXPECT_EQ(count, 2);
  fold(*s);
  EXPECT_EQ(to_source(*s), "x = 10;\n");
}

}  // namespace
}  // namespace slc
