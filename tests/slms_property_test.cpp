// Property-based testing: random canonical loops run through SLMS under
// every renaming mode must be interpreter-equivalent to the original.
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"

namespace slc {
namespace {

using namespace ast;
using slms::RenamingChoice;
using slms::SlmsOptions;
using test::LoopGenerator;
using test::LoopGenOptions;
using test::parse_or_die;

struct PropertyCase {
  RenamingChoice renaming;
  bool symbolic;
  int step;
  const char* label;
  bool allow_2d = false;
};

class SlmsProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SlmsProperty, RandomLoopsStayEquivalent) {
  const PropertyCase& pc = GetParam();
  int applied_count = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    LoopGenOptions gen_opts;
    gen_opts.symbolic_bound = pc.symbolic;
    gen_opts.step = pc.step;
    gen_opts.allow_2d = pc.allow_2d;
    LoopGenerator gen(seed, gen_opts);
    std::string source = gen.generate();

    Program original = parse_or_die(source);
    Program transformed = original.clone();

    SlmsOptions opts;
    opts.renaming = pc.renaming;
    opts.enable_filter = false;  // exercise the pipeline, not the filter
    auto reports = slms::apply_slms(transformed, opts);
    if (!reports.empty() && reports[0].applied) ++applied_count;

    for (int input_seed = 0; input_seed < 2; ++input_seed) {
      std::string diff = interp::check_equivalent(original, transformed,
                                                  std::uint64_t(input_seed));
      ASSERT_EQ(diff, "") << pc.label << " gen-seed " << seed
                          << " input-seed " << input_seed << "\n--- source\n"
                          << source << "\n--- transformed\n"
                          << to_source(transformed);
    }
  }
  // The generator must actually exercise the pipeliner, not just skips.
  EXPECT_GT(applied_count, 10) << pc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SlmsProperty,
    ::testing::Values(
        PropertyCase{RenamingChoice::Mve, false, 1, "mve"},
        PropertyCase{RenamingChoice::ScalarExpansion, false, 1, "expand"},
        PropertyCase{RenamingChoice::None, false, 1, "none"},
        PropertyCase{RenamingChoice::Mve, true, 1, "symbolic"},
        PropertyCase{RenamingChoice::Mve, false, 2, "step2"},
        PropertyCase{RenamingChoice::Mve, false, 3, "step3"},
        PropertyCase{RenamingChoice::Mve, false, 1, "matrices", true},
        PropertyCase{RenamingChoice::None, false, 2, "matrices_step2",
                     true}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace slc
