// Durable-IO layer (support/io) tests, plus the disk-fault error paths
// of every persisted artifact that rides on it: the run journal and its
// checkpoint, the slcd result cache, the native codegen cache, and
// `slc --fsck`.
//
// The contract under test, end to end:
//   * CRC32C framing detects mid-file corruption that JSON
//     well-formedness alone would misclassify as a torn tail;
//   * atomic_write_file leaves the target untouched under every
//     injected disk fault (EIO, ENOSPC, short write, fsync failure);
//   * a failed durable append is reported loudly and never leaves a
//     loadable partial record — at worst a torn tail that recovery
//     classifies and trims;
//   * corrupt records are quarantined (evidence preserved), never
//     silently dropped;
//   * journals written before framing existed still load (legacy);
//   * a corrupt native-cache .so fails its .sum digest, is deleted, and
//     recompiles — corrupt executable code is never dlopen'd on trust;
//   * `slc --fsck=repair` round-trips a damaged journal back to clean.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/fsck.hpp"
#include "driver/journal.hpp"
#include "frontend/parser.hpp"
#include "kernels/kernels.hpp"
#include "native/cache.hpp"
#include "native/codegen.hpp"
#include "native/oracle.hpp"
#include "service/cache.hpp"
#include "support/fault.hpp"
#include "support/io.hpp"
#include "support/json.hpp"

namespace {

namespace fs = std::filesystem;
using namespace slc;
namespace io = slc::support::io;
namespace fault = slc::support::fault;
namespace journal = slc::driver::journal;

/// Arms a fault spec for one scope; disarms even on assertion failure.
struct FaultScope {
  explicit FaultScope(const std::string& spec) {
    std::string error;
    EXPECT_TRUE(fault::configure(spec, &error)) << error;
  }
  ~FaultScope() { fault::clear(); }
};

/// A unique temp file whose *name* doubles as the @path fault filter —
/// faults armed against it cannot hit any other file the test touches.
struct TmpFile {
  fs::path path;
  explicit TmpFile(const std::string& stem) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           (stem + "-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".jsonl");
    cleanup();
  }
  ~TmpFile() { cleanup(); }
  void cleanup() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(fs::path(path.string() + ".quarantine"), ec);
    fs::remove(fs::path(path.string() + ".tmp"), ec);
    fs::remove(fs::path(path.string() + ".tmp." + std::to_string(::getpid())),
               ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
  /// The filename, for @path fault filters.
  [[nodiscard]] std::string filter() const {
    return path.filename().string();
  }
};

std::string read_all(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

driver::ComparisonRow sample_row(const std::string& kernel) {
  driver::ComparisonRow row;
  row.kernel = kernel;
  row.suite = "test";
  row.ok = true;
  row.report.applied = true;
  row.report.ii = 2;
  row.wall_ns = 42;
  return row;
}

// --- 1. CRC32C and record framing ------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value (iSCSI, RFC 3720 appendix).
  EXPECT_EQ(io::crc32c(""), 0u);
  EXPECT_EQ(io::crc32c("123456789"), 0xE3069283u);
  // Zero-padded lowercase hex, always 8 digits.
  EXPECT_EQ(io::hex32(0xE3069283u), "e3069283");
  EXPECT_EQ(io::hex32(0x1Au), "0000001a");
}

TEST(Framing, RoundTrips) {
  std::string framed = io::frame_record("{\"k\":1}");
  EXPECT_NE(framed.find(io::kFrameMarker), std::string::npos);
  std::string_view payload;
  EXPECT_EQ(io::parse_frame(framed, &payload), io::FrameStatus::FramedOk);
  EXPECT_EQ(payload, "{\"k\":1}");
}

TEST(Framing, DetectsSingleFlippedBit) {
  std::string framed = io::frame_record("{\"k\":1}");
  framed[2] ^= 0x01;  // one bit, inside the payload
  std::string_view payload;
  EXPECT_EQ(io::parse_frame(framed, &payload),
            io::FrameStatus::FramedCorrupt);
}

TEST(Framing, UnframedLinesAreLegacy) {
  std::string_view payload;
  EXPECT_EQ(io::parse_frame("{\"k\":1}", &payload), io::FrameStatus::Legacy);
  EXPECT_EQ(payload, "{\"k\":1}");
}

// --- 2. atomic_write_file under injected disk faults -----------------------

TEST(AtomicWrite, ReplacesWholeFileAndLeavesNoTmp) {
  TmpFile f("slc-dio-atomic");
  std::string error;
  ASSERT_TRUE(io::atomic_write_file(f.str(), "old\n", &error)) << error;
  ASSERT_TRUE(io::atomic_write_file(f.str(), "new\n", &error)) << error;
  EXPECT_EQ(read_all(f.path), "new\n");
  // No *.tmp.* residue in the directory.
  for (const auto& e : fs::directory_iterator(f.path.parent_path()))
    EXPECT_EQ(e.path().filename().string().find(f.filter() + ".tmp"),
              std::string::npos)
        << e.path();
}

TEST(AtomicWrite, EveryFaultKindLeavesTargetUntouched) {
  TmpFile f("slc-dio-faults");
  std::string error;
  ASSERT_TRUE(io::atomic_write_file(f.str(), "precious\n", &error)) << error;
  for (const char* kind :
       {"io:eio", "io:enospc", "io:short-write", "io:fsync-fail"}) {
    FaultScope scope(std::string(kind) + "@" + f.filter());
    error.clear();
    EXPECT_FALSE(io::atomic_write_file(f.str(), "replacement\n", &error))
        << kind;
    EXPECT_FALSE(error.empty()) << kind;
    fault::clear();
    EXPECT_EQ(read_all(f.path), "precious\n")
        << kind << " damaged the target";
  }
  // Tmp files from the failed attempts must have been unlinked.
  for (const auto& e : fs::directory_iterator(f.path.parent_path()))
    EXPECT_EQ(e.path().filename().string().find(f.filter() + ".tmp"),
              std::string::npos)
        << e.path();
}

// --- 3. AppendFile: durable appends, loud failures, torn tails -------------

TEST(AppendFile, AppendsSurviveScanWithFramesIntact) {
  TmpFile f("slc-dio-append");
  io::AppendFile out;
  std::string error;
  ASSERT_TRUE(out.open(f.str(), /*truncate=*/true, &error)) << error;
  ASSERT_TRUE(out.append_line(io::frame_record("{\"a\":1}"), &error)) << error;
  ASSERT_TRUE(out.append_line(io::frame_record("{\"b\":2}"), &error)) << error;
  out.close();

  io::ScanResult scan = io::scan_jsonl(f.str());
  ASSERT_TRUE(scan.opened);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.framed_ok, 2u);
  EXPECT_EQ(scan.crc_mismatches, 0u);
  EXPECT_FALSE(scan.ends_mid_line);
}

TEST(AppendFile, EnospcFailsLoudlyAndWritesNothing) {
  TmpFile f("slc-dio-enospc");
  io::AppendFile out;
  std::string error;
  ASSERT_TRUE(out.open(f.str(), /*truncate=*/true, &error)) << error;
  ASSERT_TRUE(out.append_line(io::frame_record("{\"a\":1}"), &error)) << error;
  {
    FaultScope scope("io:enospc@" + f.filter());
    error.clear();
    EXPECT_FALSE(out.append_line(io::frame_record("{\"b\":2}"), &error));
    EXPECT_NE(error.find("ENOSPC") != std::string::npos ||
                  error.find("No space") != std::string::npos ||
                  !error.empty(),
              false);
  }
  out.close();
  // The failed append left no bytes: exactly one complete record.
  io::ScanResult scan = io::scan_jsonl(f.str());
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_FALSE(scan.ends_mid_line);
}

TEST(AppendFile, ShortWriteLeavesOnlyATornTailNeverALoadableRecord) {
  TmpFile f("slc-dio-short");
  io::AppendFile out;
  std::string error;
  ASSERT_TRUE(out.open(f.str(), /*truncate=*/true, &error)) << error;
  ASSERT_TRUE(out.append_line(io::frame_record("{\"a\":1}"), &error)) << error;
  {
    FaultScope scope("io:short-write@" + f.filter());
    EXPECT_FALSE(out.append_line(io::frame_record("{\"b\":2}"), &error));
  }
  out.close();

  io::ScanResult scan = io::scan_jsonl(f.str());
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_TRUE(scan.ends_mid_line);  // the fragment is a torn tail...
  EXPECT_EQ(scan.framed_ok, 1u);    // ...and only one record frame-checks

  // trim_torn_tail quarantines the fragment and restores a clean file.
  bool trimmed = false;
  ASSERT_TRUE(io::trim_torn_tail(f.str(), &error, &trimmed)) << error;
  EXPECT_TRUE(trimmed);
  io::ScanResult after = io::scan_jsonl(f.str());
  EXPECT_EQ(after.records.size(), 1u);
  EXPECT_FALSE(after.ends_mid_line);
  EXPECT_EQ(read_lines(io::quarantine_path(f.str())).size(), 1u);
}

TEST(AppendFile, FsyncFailureIsReportedNotSwallowed) {
  TmpFile f("slc-dio-fsync");
  io::AppendFile out;
  std::string error;
  ASSERT_TRUE(out.open(f.str(), /*truncate=*/true, &error)) << error;
  FaultScope scope("io:fsync-fail@" + f.filter());
  EXPECT_FALSE(out.append_line(io::frame_record("{\"a\":1}"), &error));
  EXPECT_FALSE(error.empty());
}

using AppendFileDeathTest = ::testing::Test;

TEST(AppendFileDeathTest, CrashAfterKExitsWithTheTortureCode) {
  // io:crash-after hard-kills via _Exit(kIoCrashExitCode); the torture
  // harness (scripts/ci_torture_io.sh) keys on that exit code to tell
  // the planted crash from an organic one.
  TmpFile f("slc-dio-crash");
  EXPECT_EXIT(
      {
        std::string error;
        (void)fault::configure("io:crash-after=2@" + f.filter(), &error);
        io::AppendFile out;
        if (!out.open(f.str(), /*truncate=*/true, &error)) ::_Exit(3);
        for (int i = 0; i < 8; ++i)
          (void)out.append_line(io::frame_record("{\"i\":1}"), &error);
        ::_Exit(0);  // unreachable if the crash fired
      },
      ::testing::ExitedWithCode(fault::kIoCrashExitCode), "");
}

// --- 4. run journal: classification, quarantine, legacy, checkpoint --------

/// Writes `n` rows through the real Journal writer and returns the path.
void write_journal(const TmpFile& f, int n) {
  journal::Journal jnl;
  ASSERT_TRUE(jnl.open(f.str(), /*truncate=*/true));
  for (int i = 0; i < n; ++i)
    ASSERT_TRUE(jnl.append("key-" + std::to_string(i),
                           sample_row("k" + std::to_string(i))));
}

/// Flips one payload byte of line `index` (0-based), preserving length —
/// the CRC frame must catch it.
void corrupt_line(const fs::path& path, std::size_t index) {
  std::vector<std::string> lines = read_lines(path);
  ASSERT_GT(lines.size(), index);
  std::size_t marker = lines[index].rfind(io::kFrameMarker);
  ASSERT_NE(marker, std::string::npos);
  lines[index][marker / 2] ^= 0x01;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

TEST(JournalDurability, DistinguishesTornTailFromMidFileCorruption) {
  TmpFile f("slc-dio-journal");
  write_journal(f, 3);
  corrupt_line(f.path, 1);
  {
    std::ofstream app(f.path, std::ios::binary | std::ios::app);
    app << "{\"key\":\"key-9\",\"row\":{\"ker";  // torn, no newline
  }

  journal::LoadResult loaded = journal::load(f.str());
  EXPECT_EQ(loaded.rows.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 2u);  // corrupt + torn, the old total
  EXPECT_EQ(loaded.corrupt_lines, 1u);
  EXPECT_EQ(loaded.crc_mismatches, 1u);
  EXPECT_EQ(loaded.torn_tail, 1u);
  EXPECT_EQ(loaded.quarantined, 0u);  // not asked to

  journal::LoadOptions opts;
  opts.quarantine = true;
  journal::LoadResult q = journal::load(f.str(), opts);
  EXPECT_EQ(q.quarantined, 1u);
  EXPECT_EQ(read_lines(io::quarantine_path(f.str())).size(), 1u);
}

TEST(JournalDurability, CorruptFinalLineIsCorruptionNotATornTail) {
  // A CRC-framed line whose checksum fails is corruption even when it is
  // the last line — the frame proves the writer finished it.
  TmpFile f("slc-dio-jtail");
  write_journal(f, 2);
  corrupt_line(f.path, 1);
  journal::LoadResult loaded = journal::load(f.str());
  EXPECT_EQ(loaded.rows.size(), 1u);
  EXPECT_EQ(loaded.corrupt_lines, 1u);
  EXPECT_EQ(loaded.torn_tail, 0u);
}

TEST(JournalDurability, LegacyUnframedJournalsStillLoad) {
  TmpFile f("slc-dio-legacy");
  write_journal(f, 3);
  // Strip every frame, simulating a journal written before CRC framing.
  std::vector<std::string> lines = read_lines(f.path);
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) {
      std::string_view payload;
      ASSERT_EQ(io::parse_frame(line, &payload), io::FrameStatus::FramedOk);
      out << payload << "\n";
    }
  }
  journal::LoadResult loaded = journal::load(f.str());
  EXPECT_EQ(loaded.rows.size(), 3u);
  EXPECT_EQ(loaded.legacy_lines, 3u);
  EXPECT_EQ(loaded.skipped_lines, 0u);

  // Checkpointing a legacy journal upgrades every line to a CRC frame.
  journal::CheckpointResult cp = journal::checkpoint(f.str());
  ASSERT_TRUE(cp.ok) << cp.error;
  EXPECT_EQ(cp.rows, 3u);
  for (const std::string& line : read_lines(f.path)) {
    std::string_view payload;
    EXPECT_EQ(io::parse_frame(line, &payload), io::FrameStatus::FramedOk);
  }
}

TEST(JournalDurability, AppendFailuresAreCountedAndRowIsNotLoadable) {
  TmpFile f("slc-dio-japp");
  journal::Journal jnl;
  ASSERT_TRUE(jnl.open(f.str(), /*truncate=*/true));
  ASSERT_TRUE(jnl.append("key-0", sample_row("k0")));
  {
    FaultScope scope("io:enospc@" + f.filter());
    EXPECT_FALSE(jnl.append("key-1", sample_row("k1")));
  }
  EXPECT_EQ(jnl.append_failures(), 1u);
  EXPECT_FALSE(jnl.last_error().empty());
  // After the device "recovers", appends work again.
  EXPECT_TRUE(jnl.append("key-2", sample_row("k2")));

  journal::LoadResult loaded = journal::load(f.str());
  EXPECT_EQ(loaded.rows.size(), 2u);
  EXPECT_EQ(loaded.rows.count("key-1"), 0u);  // the lost row, recomputable
  EXPECT_EQ(loaded.skipped_lines, 0u);        // no partial record landed
}

TEST(JournalDurability, ReopenTrimsTheTornTailBeforeAppending) {
  TmpFile f("slc-dio-jtrim");
  write_journal(f, 2);
  {
    std::ofstream app(f.path, std::ios::binary | std::ios::app);
    app << "{\"key\":\"key-9\",\"row\":{\"ker";  // torn, no newline
  }
  // Re-opening for append must trim first — otherwise the next append
  // glues onto the fragment and one good record is silently swallowed.
  journal::Journal jnl;
  ASSERT_TRUE(jnl.open(f.str(), /*truncate=*/false));
  ASSERT_TRUE(jnl.append("key-2", sample_row("k2")));
  journal::LoadResult loaded = journal::load(f.str());
  EXPECT_EQ(loaded.rows.size(), 3u);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  EXPECT_EQ(read_lines(io::quarantine_path(f.str())).size(), 1u);
}

TEST(JournalDurability, CheckpointUnderEnospcLeavesJournalUntouched) {
  TmpFile f("slc-dio-jckpt");
  write_journal(f, 3);
  std::string before = read_all(f.path);
  {
    FaultScope scope("io:enospc@" + f.filter());
    journal::CheckpointResult cp = journal::checkpoint(f.str());
    EXPECT_FALSE(cp.ok);
    EXPECT_FALSE(cp.error.empty());
  }
  EXPECT_EQ(read_all(f.path), before);
  // And with the fault gone, the same checkpoint succeeds.
  journal::CheckpointResult cp = journal::checkpoint(f.str());
  EXPECT_TRUE(cp.ok) << cp.error;
  EXPECT_EQ(cp.rows, 3u);
}

// --- 5. slcd result cache: replay classification, append failures ----------

service::Response ok_response(const std::string& out) {
  service::Response r;
  r.status = service::Status::Ok;
  r.exit_code = 0;
  r.out = out;
  return r;
}

TEST(ServiceCacheDurability, ReplayClassifiesCorruptVsTornAndQuarantines) {
  TmpFile f("slc-dio-scache");
  {
    service::ResultCache cache(16);
    std::string error;
    ASSERT_TRUE(cache.open_journal(f.str(), &error)) << error;
    cache.put("key-a", ok_response("a"));
    cache.put("key-b", ok_response("b"));
    cache.put("key-c", ok_response("c"));
    cache.flush();
  }
  corrupt_line(f.path, 1);
  {
    std::ofstream app(f.path, std::ios::binary | std::ios::app);
    app << "{\"key\":\"key-d\",\"resp";  // torn, no newline
  }

  service::ResultCache cache(16);
  std::string error;
  ASSERT_TRUE(cache.open_journal(f.str(), &error)) << error;
  service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.journal_loaded, 2u);
  EXPECT_EQ(stats.journal_skipped, 2u);  // the pre-split total
  EXPECT_EQ(stats.journal_corrupt, 1u);
  EXPECT_EQ(stats.journal_crc_mismatches, 1u);
  EXPECT_EQ(stats.journal_torn, 1u);
  EXPECT_EQ(stats.journal_quarantined, 1u);
  // Two sidecar lines: the quarantined corrupt record, plus the torn
  // fragment that trim_torn_tail preserved before re-opening for append.
  EXPECT_EQ(read_lines(io::quarantine_path(f.str())).size(), 2u);
  EXPECT_TRUE(cache.get("key-a").has_value());
  EXPECT_FALSE(cache.get("key-b").has_value());  // the corrupt row
}

TEST(ServiceCacheDurability, PutAppendFailureIsCountedNotFatal) {
  TmpFile f("slc-dio-sfail");
  service::ResultCache cache(16);
  std::string error;
  ASSERT_TRUE(cache.open_journal(f.str(), &error)) << error;
  {
    FaultScope scope("io:eio@" + f.filter());
    cache.put("key-a", ok_response("a"));
  }
  EXPECT_EQ(cache.stats().append_failures, 1u);
  EXPECT_FALSE(cache.last_journal_error().empty());
  // The in-memory layer still serves the entry — persistence failure
  // degrades durability, not correctness.
  EXPECT_TRUE(cache.get("key-a").has_value());
  // A replay sees no partial record from the failed append.
  service::ResultCache replay(16);
  ASSERT_TRUE(replay.open_journal(f.str(), &error)) << error;
  EXPECT_EQ(replay.stats().journal_loaded, 0u);
  EXPECT_EQ(replay.stats().journal_skipped, 0u);
}

// --- 6. native codegen cache: .sum digests, orphan sweep -------------------

#define NATIVE_OR_SKIP()                                   \
  do {                                                     \
    if (!native::native_available())                       \
      GTEST_SKIP() << "no host C compiler detected";       \
  } while (0)

/// Restores the cache's compiler/dir overrides even if a test fails.
struct CacheOverrideGuard {
  ~CacheOverrideGuard() {
    native::CodegenCache::instance().set_host_cc("");
    native::CodegenCache::instance().set_cache_dir("");
  }
};

std::string kernel1_c_source() {
  DiagnosticEngine diags;
  ast::Program p =
      frontend::parse_program(kernels::find("kernel1")->source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  native::CodegenResult cg = native::generate_c(p);
  EXPECT_TRUE(cg.ok) << cg.reason;
  return cg.c_source;
}

TEST(NativeCacheDurability, CorruptSoFailsDigestIsDroppedAndRecompiled) {
  NATIVE_OR_SKIP();
  CacheOverrideGuard restore;
  native::CodegenCache& cache = native::CodegenCache::instance();
  fs::path dir = fs::temp_directory_path() /
                 ("slc-dio-natcache-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  cache.set_cache_dir(dir.string());
  cache.reset_stats();

  std::string c_source = kernel1_c_source();
  auto first = cache.get_or_compile(c_source);
  ASSERT_TRUE(first->ok) << first->error;
  ASSERT_EQ(cache.stats().compiles, 1u);

  // The publish left a .sum sidecar whose digest matches the .so bytes.
  fs::path so_path = dir / ("slcnat-" + first->key + ".so");
  fs::path sum_path = dir / ("slcnat-" + first->key + ".sum");
  ASSERT_TRUE(fs::exists(so_path));
  ASSERT_TRUE(fs::exists(sum_path));
  std::string sum = read_all(sum_path);
  while (!sum.empty() && (sum.back() == '\n' || sum.back() == '\r'))
    sum.pop_back();
  EXPECT_EQ(sum, io::hex32(io::crc32c(read_all(so_path))));

  // Rot the object on disk: flip one byte in place. (In place, same
  // size — the process still has the object mmap'd from the first
  // dlopen, and shrinking a mapped file would SIGBUS us, not the code
  // under test.)
  {
    std::fstream rot(so_path,
                     std::ios::binary | std::ios::in | std::ios::out);
    rot.seekg(0, std::ios::end);
    std::streamoff size = rot.tellg();
    ASSERT_GT(size, 64);
    rot.seekp(size / 2);
    char byte = 0;
    rot.seekg(size / 2);
    rot.get(byte);
    rot.seekp(size / 2);
    rot.put(char(byte ^ 0x01));
  }
  cache.set_cache_dir(dir.string());
  auto second = cache.get_or_compile(c_source);
  ASSERT_TRUE(second->ok) << second->error;
  EXPECT_EQ(cache.stats().corrupt_dropped, 1u);
  EXPECT_EQ(cache.stats().compiles, 2u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);

  // The recompile republished a healthy object + matching sidecar.
  std::string sum2 = read_all(sum_path);
  while (!sum2.empty() && (sum2.back() == '\n' || sum2.back() == '\r'))
    sum2.pop_back();
  EXPECT_EQ(sum2, io::hex32(io::crc32c(read_all(so_path))));

  // And a third open with intact bytes is a digest-verified disk hit.
  cache.set_cache_dir(dir.string());
  auto third = cache.get_or_compile(c_source);
  ASSERT_TRUE(third->ok) << third->error;
  EXPECT_EQ(cache.stats().disk_hits, 1u);

  fs::remove_all(dir);
}

TEST(NativeCacheDurability, StaleOrphanTmpFilesAreSweptAtOpen) {
  CacheOverrideGuard restore;
  native::CodegenCache& cache = native::CodegenCache::instance();
  fs::path dir = fs::temp_directory_path() /
                 ("slc-dio-natorphan-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // An orphan from a compiler killed mid-publish 20 minutes ago…
  fs::path stale = dir / "slcnat-deadbeef.so.tmp.12345";
  {
    std::ofstream f(stale, std::ios::binary);
    f << "half an object";
  }
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() -
                          std::chrono::minutes(20));
  // …and a fresh tmp that could be a live concurrent publish.
  fs::path live = dir / "slcnat-cafef00d.so.tmp.54321";
  {
    std::ofstream f(live, std::ios::binary);
    f << "in flight";
  }

  cache.set_cache_dir(dir.string());
  cache.reset_stats();
  (void)cache.cache_dir();  // opens the store, triggering the sweep
  EXPECT_EQ(cache.stats().orphans_removed, 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(live));  // never touch a possibly-live publish

  fs::remove_all(dir);
}

// --- 7. slc --fsck: verify reports, repair round-trips to clean ------------

TEST(Fsck, MissingStoresAreClean) {
  driver::fsck::Options opts;
  opts.journal_path = "/nonexistent/slc-dio-no-such-journal.jsonl";
  driver::fsck::Report rep = driver::fsck::run(opts);
  EXPECT_TRUE(rep.clean);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.problems, 0u);
}

TEST(Fsck, VerifyFindsDamageRepairQuarantinesAndReverifiesClean) {
  TmpFile f("slc-dio-fsck");
  write_journal(f, 4);
  corrupt_line(f.path, 2);
  {
    std::ofstream app(f.path, std::ios::binary | std::ios::app);
    app << "{\"key\":\"key-9\",\"row\":{\"ker";  // torn, no newline
  }

  driver::fsck::Options opts;
  opts.journal_path = f.str();

  // Verify mode: reports, repairs nothing, touches nothing.
  std::string before = read_all(f.path);
  driver::fsck::Report verify = driver::fsck::run(opts);
  EXPECT_FALSE(verify.clean);
  EXPECT_TRUE(verify.ok);  // fsck itself had no I/O trouble
  EXPECT_GT(verify.problems, 0u);
  EXPECT_EQ(verify.repaired, 0u);
  EXPECT_EQ(read_all(f.path), before);

  // Repair: quarantine the corrupt row, drop the torn tail, compact.
  opts.repair = true;
  driver::fsck::Report repair = driver::fsck::run(opts);
  EXPECT_TRUE(repair.clean) << [&] {
    std::string all;
    for (const std::string& line : repair.lines) all += line + "\n";
    return all;
  }();
  EXPECT_TRUE(repair.ok);
  EXPECT_GT(repair.repaired, 0u);
  EXPECT_EQ(repair.quarantined, 1u);
  EXPECT_EQ(read_lines(io::quarantine_path(f.str())).size(), 1u);

  // The repaired journal loads with 3 of 4 rows (the corrupt one is the
  // recovery sweep's to recompute) and zero damage counts.
  journal::LoadResult loaded = journal::load(f.str());
  EXPECT_EQ(loaded.rows.size(), 3u);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  EXPECT_EQ(loaded.legacy_lines, 0u);

  // And a second verify-only pass agrees: clean.
  opts.repair = false;
  driver::fsck::Report again = driver::fsck::run(opts);
  EXPECT_TRUE(again.clean);
  EXPECT_EQ(again.problems, 0u);
}

}  // namespace
