// The combined SLC pass: fusion + interchange + SLMS under one driver,
// oracle-verified end to end.
#include <gtest/gtest.h>

#include "driver/slc_pass.hpp"
#include "kernels/kernels.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"

namespace slc {
namespace {

using namespace ast;
using test::expect_equivalent;
using test::parse_or_die;

TEST(SlcPass, FusesThenPipelines) {
  const char* src = R"(
    double A[260]; double B[260]; double C[260];
    double t; double q;
    int i;
    for (i = 1; i < 250; i++) {
      t = A[i - 1];
      B[i] = B[i] + t;
      A[i] = t + B[i];
    }
    for (i = 1; i < 250; i++) {
      q = C[i - 1];
      B[i] = B[i] + q;
      C[i] = q * B[i];
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  driver::SlcOptions opts;
  opts.slms.enable_filter = false;
  driver::SlcReport report = driver::apply_slc(work, opts);
  EXPECT_EQ(report.fusions, 1);
  EXPECT_GE(report.loops_pipelined, 1);
  expect_equivalent(original, work);
}

TEST(SlcPass, InterchangesToUnlockSlms) {
  const char* src = R"(
    double a[40][41];
    double t;
    int i; int j;
    for (i = 0; i < 30; i++) {
      for (j = 0; j < 30; j++) {
        t = a[i][j];
        a[i][j + 1] = t;
      }
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  driver::SlcOptions opts;
  opts.slms.enable_filter = false;
  driver::SlcReport report = driver::apply_slc(work, opts);
  EXPECT_EQ(report.interchanges, 1);
  EXPECT_GE(report.loops_pipelined, 1);
  expect_equivalent(original, work);
}

TEST(SlcPass, LeavesIllegalFusionAlone) {
  const char* src = R"(
    double a[260]; double b[260]; double d[260];
    int i;
    for (i = 1; i < 250; i++) a[i] = b[i] + 1.0;
    for (i = 1; i < 250; i++) d[i] = a[i + 1] * 2.0;
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  driver::SlcOptions opts;
  opts.slms.enable_filter = false;
  driver::SlcReport report = driver::apply_slc(work, opts);
  EXPECT_EQ(report.fusions, 0);
  bool tipped = false;
  for (const auto& a : report.actions)
    if (a.kind == "fusion" && !a.applied) tipped = true;
  EXPECT_TRUE(tipped);
  expect_equivalent(original, work);
}

TEST(SlcPass, ChainsFusionAcrossThreeLoops) {
  const char* src = R"(
    double a[260]; double b[260]; double c[260];
    int i;
    for (i = 0; i < 250; i++) a[i] = a[i] + 1.0;
    for (i = 0; i < 250; i++) b[i] = b[i] * 2.0;
    for (i = 0; i < 250; i++) c[i] = c[i] - 3.0;
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  driver::SlcOptions opts;
  opts.slms.enable_filter = false;
  driver::SlcReport report = driver::apply_slc(work, opts);
  EXPECT_EQ(report.fusions, 2);
  expect_equivalent(original, work);
}

TEST(SlcPass, RandomLoopPairsStayEquivalent) {
  // Two independently generated loops back to back: the pass may fuse,
  // interchange, pipeline, or skip — equivalence must always hold.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    test::LoopGenerator gen_a{seed * 2 + 1};
    test::LoopGenerator gen_b{seed * 2 + 2};
    std::string src = gen_a.generate();
    // Rename arrays of the second program fragment to avoid decl clashes:
    // the generator always names arrays A..D and scalars s0..; reuse the
    // same declarations by generating the body only. Simpler: wrap the
    // two programs' loops under one set of decls by concatenating the
    // second generator's loop only when it parses standalone — here we
    // just run the pass on each singleton program.
    Program original = parse_or_die(src);
    Program work = original.clone();
    driver::SlcOptions opts;
    opts.slms.enable_filter = false;
    (void)driver::apply_slc(work, opts);
    expect_equivalent(original, work);
    std::string src_b = gen_b.generate();
    Program original_b = parse_or_die(src_b);
    Program work_b = original_b.clone();
    (void)driver::apply_slc(work_b, opts);
    expect_equivalent(original_b, work_b);
  }
}

TEST(SlcPass, NestKernelsSuite) {
  // Every registered 2-level nest: runs in bounds, and the SLC pass
  // output stays oracle-equivalent.
  for (const kernels::Kernel& k : kernels::nest_kernels()) {
    Program original = parse_or_die(k.source);
    auto r = interp::Interpreter().run(original, 0);
    ASSERT_TRUE(r.ok) << k.name << ": " << r.error;
    Program work = original.clone();
    driver::SlcOptions opts;
    opts.slms.enable_filter = false;
    (void)driver::apply_slc(work, opts);
    expect_equivalent(original, work);
  }
}

}  // namespace
}  // namespace slc
