// Shared test utilities: parsing with hard failure on diagnostics and the
// interpreter-oracle equivalence check run across several seeds.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "ast/ast.hpp"
#include "ast/printer.hpp"
#include "frontend/parser.hpp"
#include "interp/interp.hpp"
#include "support/diagnostics.hpp"

namespace slc::test {

inline ast::Program parse_or_die(std::string_view source) {
  DiagnosticEngine diags;
  ast::Program p = frontend::parse_program(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str() << "\nsource:\n" << source;
  return p;
}

inline ast::StmtPtr parse_stmt_or_die(std::string_view source) {
  DiagnosticEngine diags;
  ast::StmtPtr s = frontend::parse_statement(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str() << "\nsource:\n" << source;
  return s;
}

/// Asserts `transformed` computes the same memory image as `original` on
/// several random input seeds. On mismatch the transformed source is
/// printed for debugging.
inline void expect_equivalent(const ast::Program& original,
                              const ast::Program& transformed,
                              int num_seeds = 3) {
  for (int seed = 0; seed < num_seeds; ++seed) {
    std::string diff = interp::check_equivalent(original, transformed,
                                                std::uint64_t(seed));
    EXPECT_EQ(diff, "") << "seed " << seed << "\n--- transformed ---\n"
                        << ast::to_source(transformed);
    if (!diff.empty()) return;
  }
}

}  // namespace slc::test
