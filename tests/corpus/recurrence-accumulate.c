// Clean regression seed: loop-carried recurrence + accumulator, the shape
// MVE renaming must get right (kept from an early fuzzing sweep).
double A[128];
double B[128];
double s0;
int i;
for (i = 2; i < 96; i += 1) {
  s0 = A[i - 1] * 0.5;
  A[i] = s0 + B[i];
  B[i] = B[i] + 1.0;
}
