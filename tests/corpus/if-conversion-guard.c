// Clean regression seed: guarded store with a scalar temp — exercises
// if-conversion combined with scalar expansion.
double A[128];
double C[128];
double s0;
double s1;
int i;
for (i = 4; i < 100; i += 1) {
  s0 = C[i] - 2.0;
  if (C[i] < s0) A[i] = s0;
  s1 = A[i] + C[i - 2];
  C[i] = s1 * 0.25;
}
