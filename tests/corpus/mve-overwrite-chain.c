// slc_fuzz repro (shrunk): seed=158 variant=mve-eager
// failure: oracle/oracle-mismatch: memory differs: scalar s1: 8.40474e+07 vs 8.63382e+07 (input seed 0)
double B[128];
double s0;
double s1;
int i;
for (i = 4; i < 72; i += 1) {
  s0 = i;
  s1 = 9.5;
  B[i + 2] = s1;
  B[i + 2] = B[i + 1] + s0;
}
