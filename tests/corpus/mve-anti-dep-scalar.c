// slc_fuzz repro (shrunk): seed=75 variant=mve-eager
// failure: oracle/oracle-mismatch: memory differs: array A[6]: 0 vs -1 (input seed 0)
double A[128];
double s0;
int i;
for (i = 8; i < 22; i += 1) {
  if (A[i + 3] < i) A[i - 2] = 2.5;
  s0 = i;
  A[i - 2] = i - s0;
}
