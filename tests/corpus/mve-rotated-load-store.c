// slc_fuzz repro (shrunk): seed=83 variant=mve-eager
// failure: oracle/oracle-mismatch: memory differs: scalar s0: 5.08545e+166 vs 5.85472e+163 (input seed 0)
double B[128];
double C[128];
double s0;
double s1;
int i;
for (i = 8; i < 12; i += 1) {
  s1 = C[i + 3];
  C[i + 3] = i;
  C[i - 1] = s1;
}
