// Benchmark kernels: every kernel must parse, run in-bounds, survive
// SLMS with oracle equivalence, and lower to MIR that executes to the
// same memory image. This gates every number the benches print.
#include <gtest/gtest.h>

#include "driver/pipeline.hpp"
#include "kernels/kernels.hpp"
#include "machine/lower.hpp"
#include "sema/symbol_table.hpp"
#include "sim/executor.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using kernels::Kernel;
using test::parse_or_die;

class KernelCheck : public ::testing::TestWithParam<Kernel> {};

TEST_P(KernelCheck, ParsesAndPassesSema) {
  const Kernel& k = GetParam();
  DiagnosticEngine diags;
  ast::Program p = frontend::parse_program(k.source, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.str();
  (void)sema::analyze(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
}

TEST_P(KernelCheck, RunsInBounds) {
  const Kernel& k = GetParam();
  ast::Program p = parse_or_die(k.source);
  for (std::uint64_t seed : {0, 1}) {
    auto r = interp::Interpreter().run(p, seed);
    EXPECT_TRUE(r.ok) << k.name << ": " << r.error;
  }
}

TEST_P(KernelCheck, SlmsPreservesSemantics) {
  const Kernel& k = GetParam();
  ast::Program original = parse_or_die(k.source);
  for (slms::RenamingChoice mode :
       {slms::RenamingChoice::Mve, slms::RenamingChoice::ScalarExpansion,
        slms::RenamingChoice::None}) {
    ast::Program transformed = original.clone();
    slms::SlmsOptions opts;
    opts.renaming = mode;
    opts.enable_filter = false;
    (void)slms::apply_slms(transformed, opts);
    test::expect_equivalent(original, transformed, 2);
  }
}

TEST_P(KernelCheck, LoweringMatchesInterpreter) {
  const Kernel& k = GetParam();
  ast::Program p = parse_or_die(k.source);
  auto ref = interp::Interpreter().run(p, 0);
  ASSERT_TRUE(ref.ok) << ref.error;
  DiagnosticEngine diags;
  machine::MirProgram mir = machine::lower(p, diags);
  ASSERT_FALSE(diags.has_errors()) << diags.str();
  auto got = sim::simulate(mir, machine::itanium2_model(), {});
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(ref.memory.diff(got.memory), "") << k.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, KernelCheck, ::testing::ValuesIn(kernels::all_kernels()),
    [](const ::testing::TestParamInfo<Kernel>& info) {
      return info.param.name;
    });

TEST(KernelRegistry, SuitesArePopulated) {
  EXPECT_GE(kernels::suite("livermore").size(), 8u);
  EXPECT_GE(kernels::suite("linpack").size(), 6u);
  EXPECT_GE(kernels::suite("nas").size(), 6u);
  EXPECT_GE(kernels::suite("stone").size(), 5u);
  EXPECT_NE(kernels::find("kernel8"), nullptr);
  EXPECT_EQ(kernels::find("nonexistent"), nullptr);
}

// ---------------------------------------------------------------------------
// driver pipeline
// ---------------------------------------------------------------------------

TEST(Driver, CompareKernelProducesMetrics) {
  const Kernel* k = kernels::find("kernel8");
  ASSERT_NE(k, nullptr);
  driver::ComparisonRow row =
      driver::compare_kernel(*k, driver::weak_compiler_o3());
  ASSERT_TRUE(row.ok) << row.error;
  EXPECT_TRUE(row.slms_applied) << row.slms_skip_reason;
  EXPECT_GT(row.cycles_base, 0u);
  EXPECT_GT(row.cycles_slms, 0u);
  // Kernel 8 is the paper's showcase win on the weak compiler.
  EXPECT_GT(row.speedup(), 1.0);
}

TEST(Driver, FilterSkipsStone1) {
  const Kernel* k = kernels::find("stone1");
  ASSERT_NE(k, nullptr);
  driver::ComparisonRow row =
      driver::compare_kernel(*k, driver::weak_compiler_o3());
  ASSERT_TRUE(row.ok) << row.error;
  EXPECT_FALSE(row.slms_applied);
  EXPECT_DOUBLE_EQ(row.speedup(), 1.0);  // untouched program
}

TEST(Driver, SuiteComparisonCoversAllKernels) {
  auto rows = driver::compare_suite("linpack", driver::weak_compiler_o3());
  EXPECT_EQ(rows.size(), kernels::suite("linpack").size());
  for (const auto& r : rows) EXPECT_TRUE(r.ok) << r.kernel << ": " << r.error;
}

TEST(Driver, StrongCompilerUsesModuloScheduling) {
  const Kernel* k = kernels::find("daxpy");
  ASSERT_NE(k, nullptr);
  driver::ComparisonRow row =
      driver::compare_kernel(*k, driver::strong_compiler_icc());
  ASSERT_TRUE(row.ok) << row.error;
  EXPECT_TRUE(row.loop_base.modulo_scheduled)
      << row.loop_base.ims_fail_reason;
  EXPECT_GT(row.loop_base.ii, 0);
}

TEST(Driver, MeasureSourceWorks) {
  auto m = driver::measure_source(kernels::find("daxpy")->source,
                                  driver::weak_compiler_o0());
  ASSERT_TRUE(m.ok) << m.error;
  EXPECT_GT(m.cycles, 0u);
  ASSERT_FALSE(m.loops.empty());
  EXPECT_EQ(m.loops[0].iterations, 400u);
}

TEST(Driver, TablePrinterAligns) {
  driver::TablePrinter t({"a", "bb"});
  t.row({"xxx", "y"});
  std::string s = t.str();
  EXPECT_NE(s.find("xxx"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

}  // namespace
}  // namespace slc
