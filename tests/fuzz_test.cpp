// Tests for the differential fuzzing harness: generator determinism, the
// differential checker on known-clean seeds, the shrinking passes, and the
// end-to-end bug-detection path (a planted miscompile must be caught,
// shrunk, and the shrunk repro must still fail).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/shrink.hpp"
#include "support/failure.hpp"
#include "support/fault.hpp"

namespace slc {
namespace {

namespace fault = support::fault;
using support::FailureKind;
using support::Stage;

struct FaultScope {
  explicit FaultScope(const std::string& spec) {
    std::string error;
    EXPECT_TRUE(fault::configure(spec, &error)) << error;
  }
  ~FaultScope() { fault::clear(); }
};

/// Interpreter-only differential options: fast enough to sweep a seed
/// range inside a unit test. The simulator cross-check is covered by
/// slc_fuzz's own smoke test and CI's fixed-seed fuzz job.
fuzz::DiffOptions interp_only() {
  fuzz::DiffOptions o;
  o.check_backends = false;
  return o;
}

// ---------------------------------------------------------------------------
// generator
// ---------------------------------------------------------------------------

TEST(LoopGenerator, SameSeedSameProgram) {
  fuzz::LoopGenerator a(42), b(42);
  EXPECT_EQ(a.generate(), b.generate());
}

TEST(LoopGenerator, DifferentSeedsDiverge) {
  int distinct = 0;
  std::string first = fuzz::LoopGenerator(0).generate();
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    if (fuzz::LoopGenerator(seed).generate() != first) ++distinct;
  EXPECT_GT(distinct, 4);
}

// ---------------------------------------------------------------------------
// differential checker
// ---------------------------------------------------------------------------

TEST(Differential, CleanSeedsFindNothing) {
  fault::clear();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    std::string program = fuzz::LoopGenerator(seed).generate();
    fuzz::DiffVerdict v = fuzz::differential_check(program, interp_only());
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.str() << "\n"
                      << program;
  }
}

TEST(Differential, BackendCrossCheckCleanOnAFewSeeds) {
  fault::clear();
  fuzz::DiffOptions opts;  // backends on (default)
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    std::string program = fuzz::LoopGenerator(seed).generate();
    fuzz::DiffVerdict v = fuzz::differential_check(program, opts);
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.str();
  }
}

TEST(Differential, UnparseableProgramIsAParseFailure) {
  fault::clear();
  fuzz::DiffVerdict v =
      fuzz::differential_check("for (i = 0; i <; ) {", interp_only());
  EXPECT_FALSE(v.ok);
  EXPECT_EQ(v.failure.stage, Stage::Parse);
}

// ---------------------------------------------------------------------------
// shrinking
// ---------------------------------------------------------------------------

TEST(Shrink, DeletesEveryLineThePredicateDoesNotNeed) {
  std::string source = "aaa\nbbb\nkeep me\nccc\nddd\n";
  fuzz::ShrinkStats stats;
  std::string out = fuzz::shrink(
      source,
      [](const std::string& c) { return c.find("keep me") != std::string::npos; },
      {}, &stats);
  EXPECT_EQ(out, "keep me\n");
  EXPECT_EQ(stats.removed_lines, 4);
}

TEST(Shrink, TrimsTrailingExpressionTerms) {
  std::string source = "A[i] = B[i] + C[i] * 2.5;\n";
  std::string out = fuzz::shrink(
      source,
      [](const std::string& c) { return c.find("B[i]") != std::string::npos; },
      {});
  EXPECT_EQ(out, "A[i] = B[i];\n");
}

TEST(Shrink, RespectsAttemptBudget) {
  std::string source;
  for (int i = 0; i < 50; ++i) source += "line" + std::to_string(i) + "\n";
  fuzz::ShrinkOptions opts;
  opts.max_attempts = 10;
  fuzz::ShrinkStats stats;
  (void)fuzz::shrink(
      source, [](const std::string&) { return false; }, opts, &stats);
  EXPECT_LE(stats.attempts, 10);
}

// ---------------------------------------------------------------------------
// end to end: the planted miscompile must be caught and shrunk
// ---------------------------------------------------------------------------

TEST(Differential, PlantedMveBugIsCaughtAndShrunk) {
  FaultScope scope("bug:mve-skip-rename");

  // The bug fires on roughly 1% of generated loops; seed 75 is a known
  // repro, and scanning a small window keeps the test robust if the
  // generator's stream ever shifts slightly.
  std::string failing_program;
  fuzz::DiffVerdict verdict;
  for (std::uint64_t seed = 70; seed < 130 && failing_program.empty();
       ++seed) {
    std::string program = fuzz::LoopGenerator(seed).generate();
    fuzz::DiffVerdict v = fuzz::differential_check(program, interp_only());
    if (!v.ok) {
      failing_program = program;
      verdict = v;
    }
  }
  ASSERT_FALSE(failing_program.empty())
      << "planted bug not caught in seed window";
  EXPECT_EQ(verdict.failure.stage, Stage::Oracle);
  EXPECT_EQ(verdict.failure.kind, FailureKind::OracleMismatch);

  // Shrink while preserving the failure signature.
  auto still_fails = [&](const std::string& candidate) {
    fuzz::DiffVerdict v = fuzz::differential_check(candidate, interp_only());
    return !v.ok && v.failure.stage == verdict.failure.stage &&
           v.failure.kind == verdict.failure.kind;
  };
  fuzz::ShrinkStats stats;
  std::string shrunk = fuzz::shrink(failing_program, still_fails, {}, &stats);
  EXPECT_LT(shrunk.size(), failing_program.size());
  EXPECT_TRUE(still_fails(shrunk)) << shrunk;

  // The shrunk repro is only a miscompile *under the planted bug*: with
  // the bug disarmed the same program must pass (that is what makes the
  // corpus replayable in a clean tree).
  fault::clear();
  fuzz::DiffVerdict clean = fuzz::differential_check(shrunk, interp_only());
  EXPECT_TRUE(clean.ok) << clean.str() << "\n" << shrunk;
}

}  // namespace
}  // namespace slc
