// Compatibility shim: the generator was promoted into src/fuzz so the
// slc_fuzz tool can use it; tests keep their historical spelling.
#pragma once

#include "fuzz/generator.hpp"

namespace slc::test {
using fuzz::LoopGenerator;
using fuzz::LoopGenOptions;
}  // namespace slc::test
