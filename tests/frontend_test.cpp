// Lexer/parser round-trip and error behaviour.
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "frontend/lexer.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
using test::parse_or_die;

TEST(Lexer, TokenizesOperators) {
  DiagnosticEngine diags;
  frontend::Lexer lex("i += 2; a <= b && c != d", diags);
  auto toks = lex.tokenize();
  ASSERT_FALSE(diags.has_errors());
  std::vector<frontend::TokenKind> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  using frontend::TokenKind;
  EXPECT_EQ(kinds[0], TokenKind::Identifier);
  EXPECT_EQ(kinds[1], TokenKind::PlusAssign);
  EXPECT_EQ(kinds[2], TokenKind::IntLiteral);
  EXPECT_EQ(kinds[3], TokenKind::Semicolon);
  EXPECT_EQ(kinds[5], TokenKind::Le);
  EXPECT_EQ(kinds[7], TokenKind::AndAnd);
  EXPECT_EQ(kinds[9], TokenKind::NotEq);
  EXPECT_EQ(kinds.back(), TokenKind::End);
}

TEST(Lexer, SkipsComments) {
  DiagnosticEngine diags;
  frontend::Lexer lex("x /* block */ = 1; // line\ny = 2;", diags);
  auto toks = lex.tokenize();
  ASSERT_FALSE(diags.has_errors());
  EXPECT_EQ(toks.size(), 9u);  // x = 1 ; y = 2 ; <eof>
}

TEST(Lexer, FloatLiterals) {
  DiagnosticEngine diags;
  frontend::Lexer lex("1.5 2e3 7 1.25e-2", diags);
  auto toks = lex.tokenize();
  ASSERT_FALSE(diags.has_errors());
  EXPECT_EQ(toks[0].kind, frontend::TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[0].float_value, 1.5);
  EXPECT_EQ(toks[1].kind, frontend::TokenKind::FloatLiteral);
  EXPECT_DOUBLE_EQ(toks[1].float_value, 2000.0);
  EXPECT_EQ(toks[2].kind, frontend::TokenKind::IntLiteral);
  EXPECT_EQ(toks[2].int_value, 7);
  EXPECT_DOUBLE_EQ(toks[3].float_value, 0.0125);
}

TEST(Parser, SimpleLoop) {
  Program p = parse_or_die(R"(
    double A[100];
    int i;
    for (i = 0; i < 100; i++) {
      A[i] = A[i] * 2.0;
    }
  )");
  ASSERT_EQ(p.stmts.size(), 3u);
  EXPECT_EQ(p.stmts[0]->kind(), StmtKind::Decl);
  EXPECT_EQ(p.stmts[2]->kind(), StmtKind::For);
  const auto* f = dyn_cast<ForStmt>(p.stmts[2].get());
  const auto* step = dyn_cast<AssignStmt>(f->step.get());
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->op, AssignOp::Add);  // i++ desugars to i += 1
}

TEST(Parser, DeclInForInit) {
  Program p = parse_or_die("double A[10]; for (int i = 0; i < 10; i++) A[i] = 0.0;");
  const auto* f = dyn_cast<ForStmt>(p.stmts[1].get());
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->init->kind(), StmtKind::Decl);
  EXPECT_EQ(f->body->kind(), StmtKind::Block);  // single stmt wrapped
}

TEST(Parser, PrecedenceAndRoundTrip) {
  // Print and reparse: the ASTs must be structurally equal.
  const char* sources[] = {
      "x = a + b * c - d / e;",
      "x = (a + b) * (c - d);",
      "x = a - (b - c);",
      "x = a - b - c;",
      "ok = a < b && c >= d || !e;",
      "x = -a * -b;",
      "y = p ? a + 1 : b - 1;",
      "z = fabs(a - b) + min(c, d);",
      "A[i + 1][j - 2] = A[i][j] + 1.0;",
  };
  for (const char* src : sources) {
    DiagnosticEngine diags;
    StmtPtr s1 = frontend::parse_statement(src, diags);
    ASSERT_FALSE(diags.has_errors()) << src;
    std::string printed = to_source(*s1);
    StmtPtr s2 = frontend::parse_statement(printed, diags);
    ASSERT_FALSE(diags.has_errors()) << printed;
    EXPECT_TRUE(equal(*s1, *s2)) << src << " vs " << printed;
  }
}

TEST(Parser, IfElseChain) {
  Program p = parse_or_die(R"(
    int x; int y;
    if (x < y) x = x + 1; else if (x > y) y = y + 1; else x = 0;
  )");
  const auto* i = dyn_cast<IfStmt>(p.stmts[2].get());
  ASSERT_NE(i, nullptr);
  ASSERT_NE(i->else_stmt, nullptr);
  EXPECT_EQ(i->else_stmt->kind(), StmtKind::If);
}

TEST(Parser, WhileAndBreak) {
  Program p = parse_or_die(R"(
    int i = 0;
    int A[50];
    while (i < 50) {
      if (A[i] == 7) break;
      i++;
    }
  )");
  const auto* w = dyn_cast<WhileStmt>(p.stmts[2].get());
  ASSERT_NE(w, nullptr);
}

TEST(Parser, ReportsErrors) {
  DiagnosticEngine diags;
  (void)frontend::parse_program("for (i = 0; i < ; i++) {}", diags);
  EXPECT_TRUE(diags.has_errors());

  diags.clear();
  (void)frontend::parse_program("x = ;", diags);
  EXPECT_TRUE(diags.has_errors());

  diags.clear();
  (void)frontend::parse_program("3 = x;", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, CompoundAssignments) {
  for (const char* src :
       {"x += 1;", "x -= y;", "A[i] *= 2;", "x /= z;", "i--;"}) {
    DiagnosticEngine diags;
    StmtPtr s = frontend::parse_statement(src, diags);
    ASSERT_FALSE(diags.has_errors()) << src;
    EXPECT_EQ(s->kind(), StmtKind::Assign) << src;
  }
}

}  // namespace
}  // namespace slc
