// Printer/parser round-trip property: printing any parseable program and
// reparsing it yields a structurally equal AST (locations ignored), and
// SLMS output printed without parallel bars reparses to an equivalent
// program.
#include <gtest/gtest.h>

#include "ast/printer.hpp"
#include "kernels/kernels.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"

namespace slc {
namespace {

using namespace ast;
using test::parse_or_die;

TEST(RoundTrip, RandomLoops) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    test::LoopGenerator gen{seed};
    std::string source = gen.generate();
    Program p1 = parse_or_die(source);
    std::string printed = to_source(p1);
    Program p2 = parse_or_die(printed);
    EXPECT_TRUE(equal(p1, p2)) << "seed " << seed << "\n--- source\n"
                               << source << "--- printed\n" << printed;
  }
}

TEST(RoundTrip, SecondPrintIsAFixedPoint) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    test::LoopGenerator gen{seed + 1000};
    Program p1 = parse_or_die(gen.generate());
    std::string once = to_source(p1);
    Program p2 = parse_or_die(once);
    std::string twice = to_source(p2);
    EXPECT_EQ(once, twice) << "seed " << seed;
  }
}

TEST(RoundTrip, SlmsOutputReparsesInPlainMode) {
  // With show_parallel_bars=false the output is ordinary mini-C again,
  // and the reparsed program must still be oracle-equivalent to the
  // original (guards print as if-statements and re-parse as IfStmt — a
  // different tree, same semantics).
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    test::LoopGenerator gen{seed};
    std::string source = gen.generate();
    Program original = parse_or_die(source);
    Program transformed = original.clone();
    slms::SlmsOptions opts;
    opts.enable_filter = false;
    (void)slms::apply_slms(transformed, opts);

    PrintOptions popts;
    popts.show_parallel_bars = false;
    std::string plain = to_source(transformed, popts);
    Program reparsed = parse_or_die(plain);
    test::expect_equivalent(original, reparsed, 2);
  }
}

TEST(RoundTrip, KernelSuiteSources) {
  // Every kernel's own source round-trips.
  for (const auto& k : kernels::all_kernels()) {
    Program p1 = parse_or_die(k.source);
    Program p2 = parse_or_die(to_source(p1));
    EXPECT_TRUE(equal(p1, p2)) << k.name;
  }
}

}  // namespace
}  // namespace slc
