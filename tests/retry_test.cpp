// Tests for support/retry.hpp: the backoff schedule's bounds, the
// determinism of the seeded jitter stream, deadline-aware truncation of
// sleeps, predicate selectivity, and the interaction with the fault
// injector's fail-once transient failures.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/fault.hpp"
#include "support/failure.hpp"
#include "support/retry.hpp"

namespace {

using namespace slc;
namespace retry = support::retry;
using support::Deadline;
using support::Failure;
using support::FailureKind;
using support::Result;
using support::Stage;

retry::Policy no_jitter(int attempts = 5) {
  retry::Policy p;
  p.max_attempts = attempts;
  p.base_delay_ms = 10;
  p.multiplier = 2.0;
  p.max_delay_ms = 50;
  p.jitter = 0.0;
  return p;
}

Failure transient_failure() {
  Failure f = support::make_failure(Stage::Isolation,
                                    FailureKind::ChildSignal, "boom");
  f.transient = true;
  return f;
}

// ----- Backoff schedule ---------------------------------------------------

TEST(Backoff, ExponentialGrowthCappedAtMax) {
  retry::Backoff b(no_jitter());
  EXPECT_EQ(b.next_delay_ms(), 10u);
  EXPECT_EQ(b.next_delay_ms(), 20u);
  EXPECT_EQ(b.next_delay_ms(), 40u);
  EXPECT_EQ(b.next_delay_ms(), 50u);  // 80 capped to max_delay_ms
  EXPECT_EQ(b.next_delay_ms(), 50u);
  EXPECT_EQ(b.retries_scheduled(), 5);
}

TEST(Backoff, JitterStaysWithinConfiguredBand) {
  retry::Policy p = no_jitter();
  p.jitter = 0.5;
  p.seed = 42;
  retry::Backoff b(p);
  std::uint64_t expected[] = {10, 20, 40, 50, 50};
  for (std::uint64_t full : expected) {
    std::uint64_t d = b.next_delay_ms();
    EXPECT_LE(d, full);
    // jitter=0.5 shaves off at most half the delay.
    EXPECT_GE(d, full - full / 2 - 1);
  }
}

TEST(Backoff, SameSeedSameSchedule) {
  retry::Policy p = no_jitter(8);
  p.jitter = 0.9;
  p.seed = 1234;
  retry::Backoff a(p), b(p);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next_delay_ms(), b.next_delay_ms());
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  retry::Policy p = no_jitter(8);
  p.jitter = 0.9;
  p.seed = 1;
  retry::Backoff a(p);
  p.seed = 2;
  retry::Backoff b(p);
  bool any_different = false;
  for (int i = 0; i < 8; ++i)
    if (a.next_delay_ms() != b.next_delay_ms()) any_different = true;
  EXPECT_TRUE(any_different);
}

// ----- with_retry ---------------------------------------------------------

TEST(WithRetry, FirstAttemptSuccessMakesNoRetries) {
  retry::Stats stats;
  std::vector<std::uint64_t> sleeps;
  Result<int> r = retry::with_retry<int>(
      no_jitter(), Deadline::unlimited(), []() -> Result<int> { return 7; },
      retry::retry_if_transient, &stats,
      [&](std::uint64_t ms) { sleeps.push_back(ms); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(stats.slept_ms, 0u);
}

TEST(WithRetry, TransientFailuresRetryUntilSuccess) {
  retry::Stats stats;
  std::vector<std::uint64_t> sleeps;
  int calls = 0;
  Result<int> r = retry::with_retry<int>(
      no_jitter(), Deadline::unlimited(),
      [&]() -> Result<int> {
        if (++calls < 3) return transient_failure();
        return 42;
      },
      retry::retry_if_transient, &stats,
      [&](std::uint64_t ms) { sleeps.push_back(ms); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(stats.attempts, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 10u);  // the deterministic no-jitter schedule
  EXPECT_EQ(sleeps[1], 20u);
  EXPECT_EQ(stats.slept_ms, 30u);
}

TEST(WithRetry, NonRetryableFailureReturnsImmediately) {
  retry::Stats stats;
  int calls = 0;
  Result<int> r = retry::with_retry<int>(
      no_jitter(), Deadline::unlimited(),
      [&]() -> Result<int> {
        ++calls;
        return support::make_failure(Stage::Isolation, FailureKind::ChildExit,
                                     "exit:3");  // deterministic answer
      },
      retry::retry_if_transient, &stats, [](std::uint64_t) {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.attempts, 1);
}

TEST(WithRetry, AttemptsAreBoundedByPolicy) {
  retry::Stats stats;
  int calls = 0;
  Result<int> r = retry::with_retry<int>(
      no_jitter(3), Deadline::unlimited(),
      [&]() -> Result<int> {
        ++calls;
        return transient_failure();
      },
      retry::retry_if_transient, &stats, [](std::uint64_t) {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().kind, FailureKind::ChildSignal);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
}

TEST(WithRetry, SleepTruncatedToDeadline) {
  retry::Policy p = no_jitter();
  p.base_delay_ms = 10'000;  // far beyond the deadline's budget
  p.max_delay_ms = 10'000;
  retry::Stats stats;
  std::vector<std::uint64_t> sleeps;
  int calls = 0;
  Result<int> r = retry::with_retry<int>(
      p, Deadline::after_ms(200),
      [&]() -> Result<int> {
        if (++calls == 1) return transient_failure();
        return 1;
      },
      retry::retry_if_transient, &stats,
      [&](std::uint64_t ms) { sleeps.push_back(ms); });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(stats.truncated);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_LE(sleeps[0], 200u);  // never oversleeps the caller's budget
}

TEST(WithRetry, ExpiredDeadlineFailsWithoutAttempting) {
  retry::Stats stats;
  int calls = 0;
  Deadline d = Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Result<int> r = retry::with_retry<int>(
      no_jitter(), d,
      [&]() -> Result<int> {
        ++calls;
        return 1;
      },
      retry::retry_if_transient, &stats, [](std::uint64_t) {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().kind, FailureKind::DeadlineExceeded);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(stats.attempts, 0);
  EXPECT_TRUE(stats.gave_up_on_deadline);
}

TEST(WithRetry, GivesUpWhenBudgetExhaustedMidRetry) {
  retry::Stats stats;
  int calls = 0;
  // Each failing attempt burns most of the budget; once remaining_ms hits
  // zero the loop must stop scheduling sleeps and return the last failure.
  Result<int> r = retry::with_retry<int>(
      no_jitter(10), Deadline::after_ms(30),
      [&]() -> Result<int> {
        ++calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        return transient_failure();
      },
      retry::retry_if_transient, &stats, retry::sleep_ms);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().kind, FailureKind::ChildSignal);
  EXPECT_TRUE(stats.gave_up_on_deadline || stats.truncated);
  EXPECT_LT(calls, 10);
}

// ----- Interaction with SLC_FAULT fail-once -------------------------------

TEST(WithRetry, FailOnceFaultIsRetriedOnceThenSucceeds) {
  ASSERT_TRUE(support::fault::configure("slms:fail-once"));
  retry::Stats stats;
  Result<int> r = retry::with_retry<int>(
      no_jitter(), Deadline::unlimited(),
      [&]() -> Result<int> {
        if (std::optional<Failure> f =
                support::fault::trigger(Stage::Slms, "kernel8"))
          return *f;
        return 99;
      },
      retry::retry_if_transient, &stats, [](std::uint64_t) {});
  support::fault::clear();
  ASSERT_TRUE(r.ok()) << r.failure().brief();
  EXPECT_EQ(r.value(), 99);
  // Exactly one injected transient failure, one retry, then the answer.
  EXPECT_EQ(stats.attempts, 2);
}

TEST(WithRetry, PersistentInjectedFaultIsNotRetried) {
  ASSERT_TRUE(support::fault::configure("slms:fail"));
  retry::Stats stats;
  Result<int> r = retry::with_retry<int>(
      no_jitter(), Deadline::unlimited(),
      [&]() -> Result<int> {
        if (std::optional<Failure> f =
                support::fault::trigger(Stage::Slms, "kernel8"))
          return *f;
        return 99;
      },
      retry::retry_if_transient, &stats, [](std::uint64_t) {});
  support::fault::clear();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failure().kind, FailureKind::Injected);
  // `fail` (unlike fail-once) is not transient: no retry is owed.
  EXPECT_EQ(stats.attempts, 1);
}

}  // namespace
