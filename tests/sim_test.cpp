// Simulator components: cache behaviour, machine models, superscalar
// window effects, power accounting, cross-model determinism.
#include <gtest/gtest.h>

#include "machine/lower.hpp"
#include "sim/cache.hpp"
#include "sim/executor.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace machine;
using test::parse_or_die;

TEST(Cache, DirectMappedBasics) {
  CacheConfig config;
  config.line_bytes = 32;
  config.num_lines = 4;
  sim::DirectMappedCache cache(config);
  EXPECT_FALSE(cache.access(0));    // cold miss
  EXPECT_TRUE(cache.access(8));     // same line
  EXPECT_TRUE(cache.access(31));    // same line
  EXPECT_FALSE(cache.access(32));   // next line
  // Conflict: line 0 and line 4 map to the same set (4 lines).
  EXPECT_FALSE(cache.access(4 * 32));
  EXPECT_FALSE(cache.access(0));    // evicted
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.accesses(), 6u);
}

TEST(Models, PresetSanity) {
  MachineModel ia64 = itanium2_model();
  EXPECT_EQ(ia64.style, IssueStyle::Vliw);
  EXPECT_GT(ia64.issue_width, 1);
  MachineModel arm = arm7_model();
  EXPECT_EQ(arm.style, IssueStyle::Scalar);
  EXPECT_EQ(arm.issue_width, 1);
  MachineModel pent = pentium_model();
  EXPECT_EQ(pent.style, IssueStyle::Superscalar);
  EXPECT_LE(pent.int_regs, 8);

  MInst load;
  load.op = Op::Load;
  EXPECT_EQ(ia64.latency(load), ia64.lat_load);
  MInst fmul;
  fmul.op = Op::FMul;
  fmul.fp = true;
  EXPECT_EQ(unit_class(fmul.op, fmul.fp), UnitClass::Fpu);
  EXPECT_EQ(ia64.latency(fmul), ia64.lat_fpu);
}

MirProgram lower_or_die(const ast::Program& p) {
  DiagnosticEngine diags;
  MirProgram mir = lower(p, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  return mir;
}

TEST(Sim, DeterministicAcrossRuns) {
  ast::Program p = parse_or_die(R"(
    double A[128]; double B[128];
    int i;
    for (i = 1; i < 120; i++) A[i] = A[i - 1] + B[i];
  )");
  MirProgram mir = lower_or_die(p);
  auto r1 = sim::simulate(mir, itanium2_model(), {});
  auto r2 = sim::simulate(mir, itanium2_model(), {});
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.energy, r2.energy);
  EXPECT_EQ(r1.memory.diff(r2.memory), "");
}

TEST(Sim, SuperscalarWindowExtractsParallelism) {
  // Independent statements: the windowed Pentium model must beat the
  // single-issue ARM timing on the same program.
  ast::Program p = parse_or_die(R"(
    double A[256]; double B[256]; double C[256]; double D[256];
    int i;
    for (i = 0; i < 250; i++) {
      A[i] = A[i] + 1.0;
      B[i] = B[i] + 2.0;
      C[i] = C[i] + 3.0;
      D[i] = D[i] + 4.0;
    }
  )");
  MirProgram mir = lower_or_die(p);
  sim::SimOptions opts;
  opts.preset = sim::CompilerPreset::ListSched;
  auto pent = sim::simulate(mir, pentium_model(), opts);
  MachineModel narrow = pentium_model();
  narrow.issue_width = 1;
  narrow.superscalar_window = 1;
  auto narrow_r = sim::simulate(mir, narrow, opts);
  ASSERT_TRUE(pent.ok && narrow_r.ok);
  EXPECT_LT(pent.cycles, narrow_r.cycles);
}

TEST(Sim, ValuesIdenticalAcrossAllModelsAndPresets) {
  ast::Program p = parse_or_die(R"(
    double A[64]; double B[64]; double s = 0.0;
    int i;
    for (i = 1; i < 60; i++) {
      A[i] = A[i - 1] * 0.5 + B[i];
      s = s + A[i];
    }
  )");
  MirProgram mir = lower_or_die(p);
  auto ref = sim::simulate(mir, itanium2_model(), {});
  ASSERT_TRUE(ref.ok);
  for (const MachineModel& model :
       {power4_model(), pentium_model(), arm7_model()}) {
    for (sim::CompilerPreset preset :
         {sim::CompilerPreset::Sequential, sim::CompilerPreset::ListSched,
          sim::CompilerPreset::ModuloSched}) {
      sim::SimOptions opts;
      opts.preset = preset;
      auto r = sim::simulate(mir, model, opts);
      ASSERT_TRUE(r.ok) << model.name << "/" << to_string(preset);
      EXPECT_EQ(ref.memory.diff(r.memory), "")
          << model.name << "/" << to_string(preset);
    }
  }
}

TEST(Sim, LoopStatsCountIterations) {
  ast::Program p = parse_or_die(R"(
    double A[64];
    int i; int j;
    for (i = 0; i < 10; i++)
      for (j = 0; j < 5; j++)
        A[i + j] = A[i + j] + 1.0;
  )");
  MirProgram mir = lower_or_die(p);
  auto r = sim::simulate(mir, itanium2_model(), {});
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.loops.size(), 2u);
  // Order of discovery: outer loop first, inner second.
  EXPECT_EQ(r.loops[0].iterations, 10u);
  EXPECT_EQ(r.loops[1].iterations, 50u);
}

TEST(Sim, PredicatedOffMemoryOpsDoNotTouchCache) {
  ast::Program guarded = parse_or_die(R"(
    double A[64]; double x = 0.0;
    bool g = false;
    int i;
    for (i = 0; i < 60; i++) {
      if (g) x = x + A[i];
    }
  )");
  // The Cond-region lowering branches; build the predicated form through
  // SLMS-style guards instead by comparing access counts of taken vs
  // not-taken branches.
  MirProgram mir = lower_or_die(guarded);
  auto r = sim::simulate(mir, itanium2_model(), {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.mem_accesses, 0u);  // branch never taken => A never read
}

TEST(Sim, EnergyComponentsRespond) {
  ast::Program mem_heavy = parse_or_die(R"(
    double A[512]; double B[512];
    int i;
    for (i = 0; i < 500; i++) A[i] = B[i];
  )");
  ast::Program alu_heavy = parse_or_die(R"(
    double x = 1.0;
    int i;
    for (i = 0; i < 500; i++) x = x * 1.0001 + 0.5 - 0.25;
  )");
  auto rm = sim::simulate(lower_or_die(mem_heavy), arm7_model(), {});
  auto ra = sim::simulate(lower_or_die(alu_heavy), arm7_model(), {});
  ASSERT_TRUE(rm.ok && ra.ok);
  EXPECT_GT(rm.mem_accesses, ra.mem_accesses);
  EXPECT_GT(rm.energy, 0.0);
  EXPECT_GT(ra.energy, 0.0);
}

TEST(Sim, InstructionLimitAborts) {
  ast::Program p = parse_or_die(R"(
    int i; int x = 0;
    for (i = 0; i < 1000000; i++) x = x + 1;
  )");
  MirProgram mir = lower_or_die(p);
  sim::SimOptions opts;
  opts.max_insts = 1000;
  auto r = sim::simulate(mir, itanium2_model(), opts);
  EXPECT_FALSE(r.ok);
}

TEST(Sim, OutOfBoundsIsAnError) {
  ast::Program p = parse_or_die(R"(
    double A[4];
    int i;
    for (i = 0; i < 8; i++) A[i] = 0.0;
  )");
  MirProgram mir = lower_or_die(p);
  auto r = sim::simulate(mir, itanium2_model(), {});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of bounds"), std::string::npos);
}

}  // namespace
}  // namespace slc
