// Sema: symbol checking and canonical-loop recognition.
#include <gtest/gtest.h>

#include "sema/loop_info.hpp"
#include "sema/symbol_table.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace ast;
using test::parse_or_die;

DiagnosticEngine check(const char* src) {
  DiagnosticEngine diags;
  Program p = frontend::parse_program(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
  (void)sema::analyze(p, diags);
  return diags;
}

TEST(Sema, AcceptsWellFormedProgram) {
  auto diags = check(R"(
    double A[10]; int i; double s = 0.0;
    for (i = 0; i < 10; i++) s = s + A[i];
  )");
  EXPECT_FALSE(diags.has_errors()) << diags.str();
}

TEST(Sema, UndeclaredVariable) {
  auto diags = check("int x; x = y + 1;");
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, Redefinition) {
  auto diags = check("int x; double x;");
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, ArrayUsedAsScalar) {
  auto diags = check("double A[4]; double x; x = A + 1.0;");
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, ScalarUsedAsArray) {
  auto diags = check("double x; double y; y = x[2];");
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, RankMismatch) {
  auto diags = check("double M[4][4]; double x; x = M[1];");
  EXPECT_TRUE(diags.has_errors());
}

TEST(Sema, UnknownCallWarnsOnly) {
  auto diags = check("double x; x = mystery(1.0);");
  EXPECT_FALSE(diags.has_errors());
  bool warned = false;
  for (const auto& d : diags.diagnostics())
    if (d.severity == Severity::Warning) warned = true;
  EXPECT_TRUE(warned);
}

TEST(Sema, FreshNames) {
  Program p = parse_or_die("int reg; int reg1;");
  DiagnosticEngine diags;
  sema::SymbolTable table = sema::analyze(p, diags);
  EXPECT_EQ(table.fresh_name("reg"), "reg2");
  EXPECT_EQ(table.fresh_name("other"), "other");
  EXPECT_NE(table.lookup("reg"), nullptr);
  EXPECT_EQ(table.lookup("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// loop recognition
// ---------------------------------------------------------------------------

ForStmt* first_loop(Program& p) {
  for (StmtPtr& s : p.stmts)
    if (auto* f = dyn_cast<ForStmt>(s.get())) return f;
  return nullptr;
}

TEST(LoopInfo, CanonicalShapes) {
  struct Case {
    const char* header;
    std::int64_t step;
    BinaryOp cmp;
  };
  Case cases[] = {
      {"for (i = 0; i < 10; i++)", 1, BinaryOp::Lt},
      {"for (i = 0; i <= 10; i += 2)", 2, BinaryOp::Le},
      {"for (i = 10; i > 0; i--)", -1, BinaryOp::Gt},
      {"for (i = 10; i >= 0; i -= 3)", -3, BinaryOp::Ge},
      {"for (i = 0; i < 10; i = i + 4)", 4, BinaryOp::Lt},
  };
  for (const Case& c : cases) {
    std::string src = std::string("double A[32]; int i;\n") + c.header +
                      " A[0] = 1.0;";
    Program p = parse_or_die(src);
    auto info = sema::analyze_loop(*first_loop(p), nullptr);
    ASSERT_TRUE(info.has_value()) << c.header;
    EXPECT_EQ(info->iv, "i");
    EXPECT_EQ(info->step, c.step) << c.header;
    EXPECT_EQ(info->cmp, c.cmp) << c.header;
  }
}

TEST(LoopInfo, TripCount) {
  Program p = parse_or_die(
      "double A[64]; int i; for (i = 3; i < 12; i += 2) A[i] = 0.0;");
  auto info = sema::analyze_loop(*first_loop(p), nullptr);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->const_trip_count(), 5);  // 3,5,7,9,11
}

TEST(LoopInfo, RejectsNonCanonical) {
  const char* bad[] = {
      "double A[8]; int i; int j; for (i = 0; j < 8; i++) A[0] = 1.0;",
      "double A[8]; int i; for (i = 0; i < 8; i *= 2) A[0] = 1.0;",
      "double A[8]; int i; for (i = 0; i > 8; i++) A[0] = 1.0;",
  };
  for (const char* src : bad) {
    Program p = parse_or_die(src);
    std::string reason;
    auto info = sema::analyze_loop(*first_loop(p), &reason);
    EXPECT_FALSE(info.has_value()) << src;
    EXPECT_FALSE(reason.empty());
  }
}

TEST(LoopInfo, PipelineabilityFlags) {
  Program with_break = parse_or_die(R"(
    double A[8]; int i;
    for (i = 0; i < 8; i++) { if (A[i] > 0.0) break; A[i] = 1.0; }
  )");
  auto info = sema::analyze_loop(*first_loop(with_break), nullptr);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->body_is_pipelineable);

  Program writes_bound = parse_or_die(R"(
    double A[64]; int i; int n = 8;
    for (i = 0; i < n; i++) { A[i] = 1.0; n = n + 0; }
  )");
  info = sema::analyze_loop(*first_loop(writes_bound), nullptr);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->body_is_pipelineable);
}

}  // namespace
}  // namespace slc
