// Live-range compaction (paper Fig. 5).
#include <gtest/gtest.h>

#include "ast/build.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"
#include "xform/xform.hpp"

namespace slc {
namespace {

using namespace ast;
using test::expect_equivalent;
using test::parse_or_die;

ForStmt* first_loop(Program& p) {
  for (StmtPtr& s : p.stmts)
    if (auto* f = dyn_cast<ForStmt>(s.get())) return f;
  return nullptr;
}

void splice_first(Program& p, std::vector<StmtPtr> repl) {
  for (StmtPtr& s : p.stmts)
    if (s->kind() == StmtKind::For) {
      s = build::block(std::move(repl));
      return;
    }
}

TEST(Lifetimes, Figure5Shape) {
  // The paper's Fig. 5 pattern: a, b, c loaded up front, used far below;
  // independent work in between. Compaction must sink the loads toward
  // their uses, dropping max-live.
  const char* src = R"(
    double A[300]; double B[300]; double C[300];
    double X[300]; double Y[300]; double Z[300];
    double a; double b; double c;
    int i;
    for (i = 0; i < 290; i++) {
      a = A[i];
      b = B[i];
      c = C[i];
      X[i] = X[i] * 2.0;
      Y[i] = Y[i] + 1.0;
      Z[i] = Z[i] - 3.0;
      A[i] = a + 1.0;
      B[i] = b * 2.0;
      C[i] = c - 1.0;
    }
  )";
  Program original = parse_or_die(src);
  int before = xform::scalar_max_live(*first_loop(original));
  EXPECT_EQ(before, 3);

  Program work = original.clone();
  auto outcome = xform::compact_lifetimes(*first_loop(work));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  int after = xform::scalar_max_live(
      *dyn_cast<ForStmt>(outcome.replacement[0].get()));
  EXPECT_LT(after, before);
  EXPECT_EQ(after, 1);
  splice_first(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Lifetimes, RespectsDependences) {
  // b depends on a; the pass must not move the use before the def.
  const char* src = R"(
    double A[64]; double B[64];
    double a; double b;
    int i;
    for (i = 0; i < 60; i++) {
      a = A[i];
      b = a * 2.0;
      B[i] = B[i] + 1.0;
      A[i] = b + a;
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::compact_lifetimes(*first_loop(work));
  if (outcome.applied()) {
    splice_first(work, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
}

TEST(Lifetimes, NoImprovementMeansNotApplied) {
  const char* src = R"(
    double A[64];
    double a;
    int i;
    for (i = 0; i < 60; i++) {
      a = A[i];
      A[i] = a * 2.0;
      A[i] = A[i] + 1.0;
    }
  )";
  Program p = parse_or_die(src);
  auto outcome = xform::compact_lifetimes(*first_loop(p));
  EXPECT_FALSE(outcome.applied());
}

TEST(Lifetimes, RandomLoopsStayEquivalent) {
  int applied = 0;
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    test::LoopGenOptions gen_opts;
    gen_opts.allow_if = false;
    test::LoopGenerator gen(seed, gen_opts);
    Program original = parse_or_die(gen.generate());
    Program work = original.clone();
    auto outcome = xform::compact_lifetimes(*first_loop(work));
    if (!outcome.applied()) continue;
    ++applied;
    splice_first(work, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
  // The generator's scalar chains occasionally leave room to compact.
  SUCCEED() << applied << " loops compacted";
}

}  // namespace
}  // namespace slc
