// Delay model and MII solver, including the paper's Fig. 8 example.
#include <gtest/gtest.h>

#include <set>

#include "analysis/ddg.hpp"
#include "slms/mii.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using analysis::Ddg;
using analysis::DepDist;
using analysis::DepEdge;
using analysis::DepKind;
using slms::compute_delays;
using slms::MiiSolver;

DepEdge edge(int src, int dst, std::int64_t dist,
             DepKind kind = DepKind::Flow) {
  DepEdge e;
  e.src = src;
  e.dst = dst;
  e.kind = kind;
  e.var = "A";
  e.distances = {DepDist{dist, true}};
  return e;
}

TEST(Delays, PaperRules) {
  Ddg g;
  g.num_nodes = 4;
  g.edges.push_back(edge(0, 0, 1));  // self
  g.edges.push_back(edge(0, 1, 0));  // adjacent
  g.edges.push_back(edge(1, 2, 0));  // adjacent
  g.edges.push_back(edge(0, 2, 0));  // forward; longest path 0->1->2 = 2
  g.edges.push_back(edge(3, 0, 1));  // back edge
  auto d = compute_delays(g);
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 1);
  EXPECT_EQ(d[3], 2);  // rule 3: max path delay
  EXPECT_EQ(d[4], 1);  // rule 4
}

TEST(Delays, CycleDelaySumCoversCycleLength) {
  // Whatever the forward structure, every cycle's delay sum must be >=
  // its edge count (the §3.5 design property).
  Ddg g;
  g.num_nodes = 3;
  g.edges.push_back(edge(0, 1, 0));
  g.edges.push_back(edge(1, 2, 0));
  g.edges.push_back(edge(0, 2, 0));
  g.edges.push_back(edge(2, 0, 2, DepKind::Anti));  // back
  auto d = compute_delays(g);
  // Cycle 0->1->2->0: delays 1+1+1 = 3 >= 3 edges.
  EXPECT_GE(d[0] + d[1] + d[3], 3);
  // Cycle 0->2->0: delays 2+1 = 3 >= 2 edges.
  EXPECT_GE(d[2] + d[3], 2);
}

TEST(Mii, Figure8TwoCycles) {
  // Nodes a..f = 0..5. C1 = c->d->e->f->c with unit delays and distance
  // sum 4 => MII 1; C2 = c->d->f->c where delay(d->f)=2 (via e) and
  // distance sum 2 => MII 2. The paper: feasible at MII=2, not MII=1.
  Ddg g;
  g.num_nodes = 6;
  g.edges.push_back(edge(2, 3, 1));                 // c->d
  g.edges.push_back(edge(3, 4, 1));                 // d->e
  g.edges.push_back(edge(4, 5, 1));                 // e->f
  g.edges.push_back(edge(3, 5, 0));                 // d->f (delay 2 via e)
  g.edges.push_back(edge(5, 2, 1, DepKind::Anti));  // f->c back edge

  auto delays = compute_delays(g);
  // delay(d->f) must be the longest path d->e->f = 2.
  EXPECT_EQ(delays[3], 2);

  MiiSolver solver(g, delays);
  EXPECT_FALSE(solver.schedule_for(1).has_value());
  auto s2 = solver.schedule_for(2);
  ASSERT_TRUE(s2.has_value());

  auto best = solver.solve();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->ii, 2);
  EXPECT_GE(solver.recurrence_bound_hint(), 2);
}

TEST(Mii, IndependentMisScheduleAtIiOne) {
  Ddg g;
  g.num_nodes = 3;  // no edges at all
  MiiSolver solver(g, compute_delays(g));
  auto s = solver.solve();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ii, 1);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(s->sigma[std::size_t(k)], 0);
  EXPECT_EQ(s->stage_count(), 1);
}

TEST(Mii, ChainGetsStagedSchedule) {
  // 0 ->(d0) 1 ->(d0) 2: at II=1 the chain spreads across stages.
  Ddg g;
  g.num_nodes = 3;
  g.edges.push_back(edge(0, 1, 0));
  g.edges.push_back(edge(1, 2, 0));
  MiiSolver solver(g, compute_delays(g));
  auto s = solver.solve();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ii, 1);
  EXPECT_EQ(s->sigma, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(s->stage_count(), 3);
  EXPECT_EQ(s->offset(0), 2);
  EXPECT_EQ(s->offset(2), 0);
}

TEST(Mii, DecompositionRegisterPattern) {
  // MI0: reg = A[i+2];  MI1: A[i] = ...reg...
  // With the anti edge (planned MVE) dropped: II=1, reg def lands one
  // stage after its use — the paper's `A[i]=..reg1 || reg1=A[i+3]` shape.
  Ddg g;
  g.num_nodes = 2;
  g.edges.push_back(edge(0, 1, 0, DepKind::Flow));  // reg flow
  g.edges.push_back(edge(1, 1, 1, DepKind::Flow));  // A self (A[i-1] etc.)
  MiiSolver solver(g, compute_delays(g));
  auto s = solver.solve();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ii, 1);
  EXPECT_EQ(s->offset(0), 1);  // def runs one iteration ahead
  EXPECT_EQ(s->offset(1), 0);
}

TEST(Mii, AntiEdgeCycleForcesIiTwo) {
  // Same pattern *without* renaming: flow(0->1,d0) + anti(1->0,d1)
  // => cycle delay 2 / distance 1 => II 2.
  Ddg g;
  g.num_nodes = 2;
  g.edges.push_back(edge(0, 1, 0, DepKind::Flow));
  g.edges.push_back(edge(1, 0, 1, DepKind::Anti));
  MiiSolver solver(g, compute_delays(g));
  auto s = solver.solve();
  ASSERT_FALSE(s.has_value());  // II must be < #MIs = 2, and MII is 2
  auto s2 = solver.schedule_for(2);
  EXPECT_TRUE(s2.has_value());
}

TEST(Mii, UnknownDistanceBlocksPipelining) {
  Ddg g;
  g.num_nodes = 2;
  DepEdge e1 = edge(0, 1, 0);
  DepEdge e2 = edge(1, 0, 0, DepKind::Anti);
  e2.distances = {DepDist{0, false}};  // star
  g.edges.push_back(e1);
  g.edges.push_back(e2);
  MiiSolver solver(g, compute_delays(g));
  // Cycle with distance sum 0 is infeasible at every II.
  EXPECT_FALSE(solver.schedule_for(1).has_value());
  EXPECT_FALSE(solver.schedule_for(8).has_value());
}

TEST(Mii, MaxIiOptionCapsSearch) {
  Ddg g;
  g.num_nodes = 4;
  g.edges.push_back(edge(0, 1, 0));
  g.edges.push_back(edge(1, 0, 1, DepKind::Anti));  // forces II >= 2
  MiiSolver solver(g, compute_delays(g));
  slms::MiiOptions opts;
  opts.max_ii = 1;
  EXPECT_FALSE(solver.solve(opts).has_value());
  opts.max_ii = 3;
  auto s = solver.solve(opts);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ii, 2);
}

slms::ResourceModel one_class(const char* name, int units,
                              std::vector<int> members) {
  slms::ResourceClass cls;
  cls.name = name;
  cls.units = units;
  cls.members = std::move(members);
  slms::ResourceModel model;
  model.classes.push_back(std::move(cls));
  return model;
}

TEST(ResMii, PigeonholeBound) {
  EXPECT_EQ(slms::res_mii({}), 1);  // unbounded resources
  EXPECT_EQ(slms::res_mii(one_class("mem", 1, {0, 1, 2})), 3);
  EXPECT_EQ(slms::res_mii(one_class("mem", 2, {0, 1, 2})), 2);
  EXPECT_EQ(slms::res_mii(one_class("mem", 4, {0, 1, 2})), 1);
  EXPECT_EQ(slms::res_mii(one_class("mem", 1, {})), 1);

  // Several classes: the bound is the max over classes.
  slms::ResourceModel model = one_class("mem", 1, {0, 1, 2});
  slms::ResourceClass issue;
  issue.name = "issue";
  issue.units = 2;
  issue.members = {0, 1, 2, 3, 4, 5, 6, 7};
  model.classes.push_back(issue);
  EXPECT_EQ(slms::res_mii(model), 4);  // ceil(8/2) beats ceil(3/1)
}

TEST(ResMii, SolverFloorsAtResourceBound) {
  // A chain 0->1->2 schedules at II=1 unbounded, but a 1-unit class over
  // all three floors the search at ResMII=3, where the minimal schedule
  // (slots 0,1,2) lands each MI in its own row.
  Ddg g;
  g.num_nodes = 3;
  g.edges.push_back(edge(0, 1, 0));
  g.edges.push_back(edge(1, 2, 0));
  MiiSolver solver(g, compute_delays(g));
  EXPECT_EQ(solver.lower_bound(), 1);

  slms::ResourceModel model = one_class("mem", 1, {0, 1, 2});
  EXPECT_EQ(solver.lower_bound(&model), 3);

  slms::MiiOptions opts;
  opts.resources = &model;
  // The floor exceeds the paper's default II < #MIs bound, so the search
  // needs an explicit cap to have any candidates at all.
  EXPECT_FALSE(solver.solve(opts).has_value());
  opts.max_ii = 8;
  auto s = solver.solve(opts);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ii, 3);
  std::set<std::int64_t> rows;
  for (int k = 0; k < 3; ++k) rows.insert(s->row(k));
  EXPECT_EQ(rows.size(), 3u);
}

TEST(ResMii, RecurrenceBoundStillWinsWhenLarger) {
  // Fig. 8 cycle forces II=2; a wide resource class must not lower it.
  Ddg g;
  g.num_nodes = 2;
  g.edges.push_back(edge(0, 1, 0, DepKind::Flow));
  g.edges.push_back(edge(1, 0, 1, DepKind::Anti));
  MiiSolver solver(g, compute_delays(g));
  slms::ResourceModel model = one_class("mem", 8, {0, 1});
  EXPECT_EQ(solver.lower_bound(&model), 2);

  slms::MiiOptions opts;
  opts.resources = &model;
  opts.max_ii = 8;
  auto s = solver.solve(opts);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ii, 2);
}

TEST(ResMii, OvercommittedMinimalScheduleRejected) {
  // A chain 0->1->2 with a 1-unit class over {0, 2}: the minimal sigma at
  // II=2 puts MI0 and MI2 in the same row (slots 0 and 2), so the
  // conservative solver must move past II=2 even though ResMII is 1.
  Ddg g;
  g.num_nodes = 3;
  g.edges.push_back(edge(0, 1, 0));
  g.edges.push_back(edge(1, 2, 0));
  MiiSolver solver(g, compute_delays(g));
  slms::ResourceModel model = one_class("mem", 1, {0, 2});
  slms::MiiOptions opts;
  opts.resources = &model;
  opts.max_ii = 8;
  auto s = solver.solve(opts);
  ASSERT_TRUE(s.has_value());
  EXPECT_GT(s->ii, 1);
  EXPECT_NE(s->row(0), s->row(2));
}

TEST(Mii, MultipleDistancePairsUseTightest) {
  // Edge with distances {1, 3}: the II constraint binds at distance 1.
  Ddg g;
  g.num_nodes = 2;
  DepEdge e = edge(0, 1, 0);
  e.distances = {DepDist{1, true}, DepDist{3, true}};
  DepEdge back = edge(1, 0, 1, DepKind::Anti);
  g.edges.push_back(e);
  g.edges.push_back(back);
  MiiSolver solver(g, compute_delays(g));
  // Cycle delays 1+1=2, distances 1+1=2 (tightest) => II 1 feasible.
  EXPECT_TRUE(solver.schedule_for(1).has_value());
}

}  // namespace
}  // namespace slc
