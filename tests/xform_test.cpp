// Loop transformations: legality decisions and oracle equivalence,
// including the paper's §6 interaction examples.
#include <gtest/gtest.h>

#include "ast/build.hpp"
#include "ast/printer.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"
#include "xform/xform.hpp"

namespace slc {
namespace {

using namespace ast;
using test::expect_equivalent;
using test::parse_or_die;

/// Finds the n-th top-level for-loop of the program.
ForStmt* nth_loop(Program& p, int n) {
  int seen = 0;
  for (StmtPtr& s : p.stmts) {
    if (auto* f = dyn_cast<ForStmt>(s.get())) {
      if (seen == n) return f;
      ++seen;
    }
  }
  return nullptr;
}

/// Replaces the n-th top-level loop with `replacement`.
void splice(Program& p, int n, std::vector<StmtPtr> replacement) {
  int seen = 0;
  for (StmtPtr& s : p.stmts) {
    if (s->kind() == StmtKind::For) {
      if (seen == n) {
        s = build::block(std::move(replacement));
        return;
      }
      ++seen;
    }
  }
  FAIL() << "loop not found";
}

// ---------------------------------------------------------------------------
// interchange
// ---------------------------------------------------------------------------

TEST(Interchange, PaperSection6Example) {
  // for(i) for(j) { t = a[i][j]; a[i][j+1] = t; }  — SLMS can't pipeline
  // the j loop (t feeds a j-carried cycle); interchange makes i inner.
  const char* src = R"(
    double a[40][41];
    double t;
    int i; int j;
    for (i = 0; i < 30; i++) {
      for (j = 0; j < 30; j++) {
        t = a[i][j];
        a[i][j + 1] = t;
      }
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::interchange(*nth_loop(work, 0));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);

  // The interchanged inner loop now pipelines at II=1 with MVE.
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  auto reports = slms::apply_slms(work, opts);
  bool any_applied = false;
  for (const auto& r : reports) any_applied |= r.applied;
  EXPECT_TRUE(any_applied);
  expect_equivalent(original, work);
}

TEST(Interchange, RejectsDirectionVectorConflict) {
  // a[i+1][j-1] = a[i][j]: dependence (1, -1) blocks interchange.
  Program p = parse_or_die(R"(
    double a[40][40];
    int i; int j;
    for (i = 0; i < 30; i++) {
      for (j = 1; j < 30; j++) {
        a[i + 1][j - 1] = a[i][j] + 1.0;
      }
    }
  )");
  auto outcome = xform::interchange(*nth_loop(p, 0));
  EXPECT_FALSE(outcome.applied());
  EXPECT_NE(outcome.reason.find("(<,>)"), std::string::npos)
      << outcome.reason;
}

TEST(Interchange, AllowsForwardOnlyDependences) {
  // a[i][j] = a[i-1][j-1]: direction (1, 1) — interchange legal.
  const char* src = R"(
    double a[40][40];
    int i; int j;
    for (i = 1; i < 30; i++) {
      for (j = 1; j < 30; j++) {
        a[i][j] = a[i - 1][j - 1] * 0.5;
      }
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::interchange(*nth_loop(work, 0));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Interchange, RejectsNonRectangular) {
  Program p = parse_or_die(R"(
    double a[40][40];
    int i; int j;
    for (i = 0; i < 30; i++) {
      for (j = 0; j < i; j++) {
        a[i][j] = 1.0;
      }
    }
  )");
  auto outcome = xform::interchange(*nth_loop(p, 0));
  EXPECT_FALSE(outcome.applied());
}

// ---------------------------------------------------------------------------
// fusion
// ---------------------------------------------------------------------------

TEST(Fusion, PaperSection6FusedLoopsPipeline) {
  // The two §6 loops that individually reject SLMS but fuse into an
  // II=3-schedulable loop.
  const char* src = R"(
    double A[70]; double B[70]; double C[70];
    double t; double q;
    int i;
    for (i = 1; i < 60; i++) {
      t = A[i - 1];
      B[i] = B[i] + t;
      A[i] = t + B[i];
    }
    for (i = 1; i < 60; i++) {
      q = C[i - 1];
      B[i] = B[i] + q;
      C[i] = q * B[i];
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::fuse(*nth_loop(work, 0), *nth_loop(work, 1));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  // Replace both loops with the fused one.
  splice(work, 1, {});
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Fusion, RejectsBackwardDependence) {
  // Paper Fig. 10 shape: loop 2 reads a[i+1], written by loop 1 — the
  // dependence would become backward after fusion.
  Program p = parse_or_die(R"(
    double a[70]; double b[70]; double c[70]; double d[70];
    int i;
    for (i = 1; i < 60; i++) {
      a[i] = b[i] + c[i];
    }
    for (i = 1; i < 60; i++) {
      d[i] = a[i + 1] * 2.0;
    }
  )");
  auto outcome = xform::fuse(*nth_loop(p, 0), *nth_loop(p, 1));
  EXPECT_FALSE(outcome.applied());
  EXPECT_NE(outcome.reason.find("fusion-preventing"), std::string::npos)
      << outcome.reason;
}

TEST(Fusion, ForwardDependenceIsFine) {
  const char* src = R"(
    double a[70]; double b[70]; double d[70];
    int i;
    for (i = 1; i < 60; i++) {
      a[i] = b[i] * 2.0;
    }
    for (i = 1; i < 60; i++) {
      d[i] = a[i - 1] + 1.0;
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::fuse(*nth_loop(work, 0), *nth_loop(work, 1));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 1, {});
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Fusion, UnifiesDifferentIvNames) {
  const char* src = R"(
    double a[70]; double b[70];
    int i; int j;
    for (i = 0; i < 50; i++) a[i] = a[i] + 1.0;
    for (j = 0; j < 50; j++) b[j] = b[j] * 2.0;
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::fuse(*nth_loop(work, 0), *nth_loop(work, 1));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 1, {});
  splice(work, 0, std::move(outcome.replacement));
  // j keeps its pre-loop value in the fused program; compare arrays and i.
  for (int seed = 0; seed < 3; ++seed) {
    interp::Interpreter interp;
    auto ra = interp.run(original, std::uint64_t(seed));
    auto rb = interp.run(work, std::uint64_t(seed));
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_EQ(ra.memory.arrays.at("a").fdata, rb.memory.arrays.at("a").fdata);
    EXPECT_EQ(ra.memory.arrays.at("b").fdata, rb.memory.arrays.at("b").fdata);
  }
}

TEST(Fusion, RejectsScalarFlowBetweenLoops) {
  Program p = parse_or_die(R"(
    double a[70]; double b[70];
    double t;
    int i;
    for (i = 0; i < 50; i++) t = a[i];
    for (i = 0; i < 50; i++) b[i] = t + 1.0;
  )");
  auto outcome = xform::fuse(*nth_loop(p, 0), *nth_loop(p, 1));
  EXPECT_FALSE(outcome.applied());
}

// ---------------------------------------------------------------------------
// distribution
// ---------------------------------------------------------------------------

TEST(Distribution, SplitsIndependentGroups) {
  const char* src = R"(
    double a[70]; double b[70]; double c[70]; double d[70];
    int i;
    for (i = 1; i < 60; i++) {
      a[i] = a[i - 1] * 0.5;
      c[i] = d[i] + 1.0;
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::distribute(*nth_loop(work, 0), 1);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  EXPECT_EQ(outcome.replacement.size(), 2u);
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Distribution, RejectsBackwardCrossGroupDependence) {
  // Second statement writes what the first reads next iteration: the
  // dependence runs group2 -> group1.
  Program p = parse_or_die(R"(
    double a[70]; double b[70];
    int i;
    for (i = 1; i < 60; i++) {
      b[i] = a[i - 1] + 1.0;
      a[i] = b[i] * 2.0;
    }
  )");
  auto outcome = xform::distribute(*nth_loop(p, 0), 1);
  EXPECT_FALSE(outcome.applied());
}

// ---------------------------------------------------------------------------
// unroll / peel / reverse
// ---------------------------------------------------------------------------

TEST(Unroll, ConstantBoundsWithRemainder) {
  const char* src = R"(
    double a[70];
    int i;
    for (i = 0; i < 50; i++) a[i] = a[i] + 1.0;
  )";
  for (int factor : {2, 3, 4, 7}) {
    Program original = parse_or_die(src);
    Program work = original.clone();
    auto outcome = xform::unroll(*nth_loop(work, 0), factor);
    ASSERT_TRUE(outcome.applied()) << outcome.reason;
    splice(work, 0, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
}

TEST(Unroll, SymbolicBounds) {
  for (int n : {0, 1, 5, 49}) {
    std::string src = "double a[70];\nint n = " + std::to_string(n) +
                      ";\nint i;\nfor (i = 0; i < n; i++) a[i] = a[i] * "
                      "2.0;\n";
    Program original = parse_or_die(src);
    Program work = original.clone();
    auto outcome = xform::unroll(*nth_loop(work, 0), 3);
    ASSERT_TRUE(outcome.applied()) << outcome.reason;
    splice(work, 0, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
}

TEST(Peel, FrontPeeling) {
  const char* src = R"(
    double a[70];
    int i;
    for (i = 2; i < 40; i++) a[i] = a[i - 1] + a[i - 2];
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::peel_front(*nth_loop(work, 0), 3);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Peel, SymbolicGuarded) {
  for (int n : {0, 2, 3, 20}) {
    std::string src = "double a[70];\nint n = " + std::to_string(n) +
                      ";\nint i;\nfor (i = 0; i < n; i++) a[i] = a[i] + "
                      "1.0;\n";
    Program original = parse_or_die(src);
    Program work = original.clone();
    auto outcome = xform::peel_front(*nth_loop(work, 0), 3);
    ASSERT_TRUE(outcome.applied()) << outcome.reason;
    splice(work, 0, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
}

TEST(Reverse, LegalWithoutCarriedDeps) {
  const char* src = R"(
    double a[70]; double b[70];
    int i;
    for (i = 0; i < 50; i++) a[i] = b[i] * 2.0;
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::reverse(*nth_loop(work, 0));
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Reverse, RejectsCarriedDependence) {
  Program p = parse_or_die(R"(
    double a[70];
    int i;
    for (i = 1; i < 50; i++) a[i] = a[i - 1] + 1.0;
  )");
  auto outcome = xform::reverse(*nth_loop(p, 0));
  EXPECT_FALSE(outcome.applied());
}

// ---------------------------------------------------------------------------
// reduction parallelization (the §5 max example, automated)
// ---------------------------------------------------------------------------

TEST(Reduction, MaxSplitsIntoLanes) {
  const char* src = R"(
    double arr[128];
    double max;
    int i;
    max = arr[0];
    for (i = 1; i < 120; i++) {
      if (max < arr[i]) max = arr[i];
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::parallelize_reduction(*nth_loop(work, 0), 2);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);

  // After splitting, SLMS pipelines the lane loop (the paper's II=1 goal).
  slms::SlmsOptions opts;
  opts.enable_filter = false;
  auto reports = slms::apply_slms(work, opts);
  bool applied = false;
  for (const auto& r : reports) applied |= r.applied;
  EXPECT_TRUE(applied);
  expect_equivalent(original, work);
}

TEST(Reduction, IntSumStaysExact) {
  const char* src = R"(
    int v[100];
    double s;
    int i;
    s = 0;
    for (i = 0; i < 97; i++) {
      s += v[i];
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::parallelize_reduction(*nth_loop(work, 0), 4);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Reduction, MinViaGreaterThan) {
  const char* src = R"(
    double arr[64];
    double lo;
    int i;
    lo = arr[0];
    for (i = 1; i < 60; i++) {
      if (lo > arr[i]) lo = arr[i];
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::parallelize_reduction(*nth_loop(work, 0), 3);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice(work, 0, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Reduction, RejectsNonReductions) {
  Program p = parse_or_die(R"(
    double a[64];
    int i;
    for (i = 1; i < 60; i++) a[i] = a[i - 1] * 2.0;
  )");
  auto outcome = xform::parallelize_reduction(*nth_loop(p, 0), 2);
  EXPECT_FALSE(outcome.applied());
}

}  // namespace
}  // namespace slc
