// Exact modulo scheduler (src/exact): hand-computed optima, a brute-force
// cross-check on small instances, certificate tampering, the deterministic
// timeout path, and a 200-seed corpus sweep asserting the heuristic
// pipeline never beats the proven optimum.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <vector>

#include "analysis/ddg.hpp"
#include "exact/certificate.hpp"
#include "exact/encoding.hpp"
#include "exact/solver.hpp"
#include "slms/mii.hpp"
#include "slms/slms.hpp"
#include "support/int_math.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"
#include "verify/verify.hpp"

namespace slc {
namespace {

using analysis::Ddg;
using analysis::DepDist;
using analysis::DepEdge;
using analysis::DepKind;
using exact::DepConstraint;
using exact::ExactOptions;
using exact::ExactResult;
using exact::ExactStatus;
using exact::Instance;
using exact::InfeasibilityCert;
using slms::ResourceClass;
using slms::ResourceModel;
using test::LoopGenerator;
using test::LoopGenOptions;
using test::parse_or_die;

DepEdge edge(int src, int dst, std::int64_t dist,
             DepKind kind = DepKind::Flow) {
  DepEdge e;
  e.src = src;
  e.dst = dst;
  e.kind = kind;
  e.var = "A";
  e.distances = {DepDist{dist, true}};
  return e;
}

DepConstraint dep(int src, int dst, std::int64_t delay,
                  std::int64_t distance) {
  DepConstraint d;
  d.src = src;
  d.dst = dst;
  d.delay = delay;
  d.distance = distance;
  return d;
}

ResourceModel one_class(std::string name, int units, std::vector<int> members) {
  ResourceClass cls;
  cls.name = std::move(name);
  cls.units = units;
  cls.members = std::move(members);
  ResourceModel model;
  model.classes.push_back(std::move(cls));
  return model;
}

// ---------------------------------------------------------------------------
// Independent reference implementation for the cross-check: feasibility of
// a difference system by plain Bellman-Ford relaxation (longest path), and
// resource-constrained feasibility by exhaustive row enumeration. Shares
// nothing with src/exact but the Instance struct.

bool bf_feasible(int n, const std::vector<DepConstraint>& deps,
                 const std::vector<std::int64_t>& weights) {
  std::vector<std::int64_t> p(std::size_t(n), 0);
  for (int pass = 0; pass <= n; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < deps.size(); ++i) {
      const DepConstraint& d = deps[i];
      if (p[std::size_t(d.dst)] < p[std::size_t(d.src)] + weights[i]) {
        p[std::size_t(d.dst)] = p[std::size_t(d.src)] + weights[i];
        changed = true;
      }
    }
    if (!changed) return true;
  }
  return false;  // still relaxing after n passes: positive cycle
}

bool rows_fit(const Instance& inst, const std::vector<int>& rows, int ii) {
  for (const ResourceClass& cls : inst.resources.classes) {
    std::vector<int> count(std::size_t(ii), 0);
    for (int m : cls.members)
      if (++count[std::size_t(rows[std::size_t(m)])] > cls.units)
        return false;
  }
  return true;
}

bool brute_feasible_at(const Instance& inst, int ii) {
  if (inst.resources.empty()) {
    std::vector<std::int64_t> w(inst.deps.size());
    for (std::size_t i = 0; i < inst.deps.size(); ++i)
      w[i] = inst.deps[i].weight(ii);
    return bf_feasible(inst.num_mis, inst.deps, w);
  }
  // Enumerate every row assignment (ii^n of them) and decide the induced
  // stage system per assignment.
  std::vector<int> rows(std::size_t(inst.num_mis), 0);
  while (true) {
    if (rows_fit(inst, rows, ii)) {
      std::vector<std::int64_t> w(inst.deps.size());
      for (std::size_t i = 0; i < inst.deps.size(); ++i) {
        const DepConstraint& d = inst.deps[i];
        w[i] = ceil_div(d.delay - rows[std::size_t(d.dst)] +
                            rows[std::size_t(d.src)],
                        ii) -
               d.distance;
      }
      if (bf_feasible(inst.num_mis, inst.deps, w)) return true;
    }
    int k = 0;
    while (k < inst.num_mis && ++rows[std::size_t(k)] == ii)
      rows[std::size_t(k++)] = 0;
    if (k == inst.num_mis) return false;
  }
}

std::optional<int> brute_min_ii(const Instance& inst, int max_ii) {
  for (int ii = 1; ii <= max_ii; ++ii)
    if (brute_feasible_at(inst, ii)) return ii;
  return std::nullopt;
}

/// Solves and validates both certificate directions before returning.
ExactResult solve_checked(const Instance& inst, ExactOptions opts = {}) {
  ExactResult res = exact::solve(inst, opts);
  std::string why;
  if (res.status == ExactStatus::Optimal) {
    EXPECT_TRUE(exact::check_schedule(inst, res.schedule, &why)) << why;
    EXPECT_EQ(res.schedule.ii, res.ii);
  }
  if (res.lower_proof.has_value()) {
    EXPECT_TRUE(exact::check_infeasibility(inst, *res.lower_proof, &why))
        << why;
  }
  return res;
}

// ---------------------------------------------------------------------------

TEST(Exact, IndependentMisScheduleAtIiOne) {
  Instance inst;
  inst.num_mis = 3;
  ExactResult res = solve_checked(inst);
  EXPECT_EQ(res.status, ExactStatus::Optimal);
  EXPECT_EQ(res.ii, 1);
  EXPECT_FALSE(res.lower_proof.has_value());  // nothing below II=1 to refute
}

TEST(Exact, Figure8OptimumIsTwoWithLowerProof) {
  // The paper's Fig. 8 recurrence: C2 = c->d->f->c has delay sum 4 over
  // distance sum 2, so the optimum is II = 2 and II = 1 is refutable.
  Ddg g;
  g.num_nodes = 6;
  g.edges.push_back(edge(2, 3, 1));
  g.edges.push_back(edge(3, 4, 1));
  g.edges.push_back(edge(4, 5, 1));
  g.edges.push_back(edge(3, 5, 0));
  g.edges.push_back(edge(5, 2, 1, DepKind::Anti));
  Instance inst = exact::from_ddg(g, slms::compute_delays(g));

  ExactResult res = solve_checked(inst);
  EXPECT_EQ(res.status, ExactStatus::Optimal);
  EXPECT_EQ(res.ii, 2);
  ASSERT_TRUE(res.lower_proof.has_value());
  EXPECT_EQ(res.lower_proof->ii, 1);
  EXPECT_EQ(res.lower_proof->kind, InfeasibilityCert::Kind::PositiveCycle);
  EXPECT_FALSE(res.lower_proof->distance_free);
}

TEST(Exact, DistanceFreeCycleIsForeverInfeasible) {
  // sigma(1) - sigma(0) >= 1 and sigma(0) - sigma(1) >= 1: no II helps.
  Instance inst;
  inst.num_mis = 2;
  inst.deps = {dep(0, 1, 1, 0), dep(1, 0, 1, 0)};
  ExactResult res = solve_checked(inst);
  EXPECT_EQ(res.status, ExactStatus::Infeasible);
  EXPECT_FALSE(res.capped);
  ASSERT_TRUE(res.lower_proof.has_value());
  EXPECT_TRUE(res.lower_proof->distance_free);
}

TEST(Exact, PigeonholeResourceBound) {
  // Three independent memory MIs sharing one unit: II* = ResMII = 3.
  Instance inst;
  inst.num_mis = 3;
  inst.resources = one_class("mem", 1, {0, 1, 2});
  ExactResult res = solve_checked(inst);
  EXPECT_EQ(res.status, ExactStatus::Optimal);
  EXPECT_EQ(res.ii, 3);
  ASSERT_TRUE(res.lower_proof.has_value());
  EXPECT_EQ(res.lower_proof->kind, InfeasibilityCert::Kind::ResourceCount);
}

TEST(Exact, StarvedResourceClassInfeasible) {
  Instance inst;
  inst.num_mis = 1;
  inst.resources = one_class("mem", 0, {0});
  ExactResult res = solve_checked(inst);
  EXPECT_EQ(res.status, ExactStatus::Infeasible);
  EXPECT_FALSE(res.capped);
}

TEST(Exact, ResourceDependenceInteractionNeedsCdcl) {
  // Two MIs forced into the same row by a tight two-cycle (delay 2 each
  // way over distance 1: |sigma(1) - sigma(0)| <= II - 2 at II = 2 means
  // equality mod 2), but the class only admits one per row. Pigeonhole
  // passes at II = 2 (2 members, 2 rows), so only the CDCL layer can
  // refute it — with a Clausal certificate. II = 3 leaves slack.
  Instance inst;
  inst.num_mis = 2;
  inst.deps = {dep(0, 1, 2, 1), dep(1, 0, 2, 1)};
  inst.resources = one_class("mem", 1, {0, 1});
  ExactResult res = solve_checked(inst);
  EXPECT_EQ(res.status, ExactStatus::Optimal);
  EXPECT_EQ(res.ii, 3);
  ASSERT_TRUE(res.lower_proof.has_value());
  EXPECT_EQ(res.lower_proof->ii, 2);
  EXPECT_EQ(res.lower_proof->kind, InfeasibilityCert::Kind::Clausal);
  ASSERT_FALSE(res.lower_proof->clauses.empty());
  EXPECT_TRUE(res.lower_proof->clauses.back().lits.empty());
}

TEST(Exact, MaxIiCapExhaustionReportsCapped) {
  Instance inst;
  inst.num_mis = 2;
  inst.deps = {dep(0, 1, 1, 0), dep(1, 0, 1, 1)};  // forces II >= 2
  ExactOptions opts;
  opts.max_ii = 1;
  ExactResult res = solve_checked(inst, opts);
  EXPECT_EQ(res.status, ExactStatus::Infeasible);
  EXPECT_TRUE(res.capped);
  EXPECT_EQ(res.lower_bound, 2);
}

TEST(Exact, StepBudgetTimesOutGracefully) {
  Instance inst;
  inst.num_mis = 4;
  inst.deps = {dep(0, 1, 1, 0), dep(1, 2, 1, 0), dep(2, 3, 1, 0),
               dep(3, 0, 1, 1)};
  inst.resources = one_class("issue", 1, {0, 1, 2, 3});
  ExactOptions opts;
  opts.budget_ms = -1;  // clock off: the step cap alone must stop it
  opts.max_steps = 2;
  ExactResult res = exact::solve(inst, opts);
  EXPECT_EQ(res.status, ExactStatus::Timeout);
  // A timeout is an answer ("gap unknown"), never a crash or a claim.
  EXPECT_EQ(res.ii, 0);
}

TEST(Exact, TamperedScheduleRejected) {
  Ddg g;
  g.num_nodes = 3;
  g.edges.push_back(edge(0, 1, 0));
  g.edges.push_back(edge(1, 2, 0));
  Instance inst = exact::from_ddg(g, slms::compute_delays(g));
  ExactResult res = solve_checked(inst);
  ASSERT_EQ(res.status, ExactStatus::Optimal);

  exact::ScheduleCert bad = res.schedule;
  bad.sigma[2] = bad.sigma[0];  // violates the 1 -> 2 dependence
  std::string why;
  EXPECT_FALSE(exact::check_schedule(inst, bad, &why));
  EXPECT_NE(why, "");

  bad = res.schedule;
  bad.sigma.pop_back();
  EXPECT_FALSE(exact::check_schedule(inst, bad, nullptr));

  // Resource tampering: two members of a 1-unit class in one row.
  Instance rinst;
  rinst.num_mis = 2;
  rinst.resources = one_class("mem", 1, {0, 1});
  ExactResult rres = solve_checked(rinst);
  ASSERT_EQ(rres.status, ExactStatus::Optimal);
  exact::ScheduleCert rbad = rres.schedule;
  rbad.sigma[1] = rbad.sigma[0];
  EXPECT_FALSE(exact::check_schedule(rinst, rbad, nullptr));
}

TEST(Exact, TamperedProofRejected) {
  // Positive-cycle proof: reordering the cycle or dropping an edge breaks
  // the closed-cycle check.
  Instance inst;
  inst.num_mis = 2;
  inst.deps = {dep(0, 1, 1, 0), dep(1, 0, 1, 1)};
  ExactResult res = solve_checked(inst);
  ASSERT_EQ(res.status, ExactStatus::Optimal);
  ASSERT_TRUE(res.lower_proof.has_value());
  ASSERT_EQ(res.lower_proof->kind, InfeasibilityCert::Kind::PositiveCycle);

  InfeasibilityCert bad = *res.lower_proof;
  bad.dep_indices.pop_back();
  EXPECT_FALSE(exact::check_infeasibility(inst, bad, nullptr));

  bad = *res.lower_proof;
  bad.ii += 1;  // the cycle is not positive at the optimum itself
  EXPECT_FALSE(exact::check_infeasibility(inst, bad, nullptr));

  // Clausal proof: truncating the derivation (losing the empty clause)
  // or corrupting a lemma must be caught.
  Instance cinst;
  cinst.num_mis = 2;
  cinst.deps = {dep(0, 1, 2, 1), dep(1, 0, 2, 1)};
  cinst.resources = one_class("mem", 1, {0, 1});
  ExactResult cres = solve_checked(cinst);
  ASSERT_TRUE(cres.lower_proof.has_value());
  ASSERT_EQ(cres.lower_proof->kind, InfeasibilityCert::Kind::Clausal);

  InfeasibilityCert cbad = *cres.lower_proof;
  cbad.clauses.pop_back();
  EXPECT_FALSE(exact::check_infeasibility(cinst, cbad, nullptr));

  cbad = *cres.lower_proof;
  ASSERT_FALSE(cbad.clauses.empty());
  cbad.clauses[0].lits.clear();  // a fake early empty clause
  cbad.clauses[0].kind = exact::ProofClause::Kind::Learned;
  cbad.clauses[0].dep_indices.clear();
  EXPECT_FALSE(exact::check_infeasibility(cinst, cbad, nullptr));

  // A resource-count proof for a class that is not actually overfull.
  Instance pinst;
  pinst.num_mis = 3;
  pinst.resources = one_class("mem", 1, {0, 1, 2});
  InfeasibilityCert fake;
  fake.kind = InfeasibilityCert::Kind::ResourceCount;
  fake.ii = 3;  // 3 members fit 3 rows — the pigeonhole claim is false
  fake.class_index = 0;
  EXPECT_FALSE(exact::check_infeasibility(pinst, fake, nullptr));
}

TEST(Exact, BruteForceCrossCheck) {
  // Random instances small enough to decide exhaustively: the solver's
  // optimum (and its certificates) must match independent enumeration.
  std::mt19937 rng(20260808);
  auto pick = [&](int lo, int hi) {
    return lo + int(rng() % std::uint32_t(hi - lo + 1));
  };
  int optimal = 0;
  int infeasible = 0;
  for (int trial = 0; trial < 400; ++trial) {
    Instance inst;
    inst.num_mis = pick(2, 5);
    for (int s = 0; s < inst.num_mis; ++s)
      for (int t = 0; t < inst.num_mis; ++t) {
        if (pick(0, 3) != 0) continue;
        std::int64_t delay = pick(1, 3);
        // Forward edges get a chance of distance 0; cycles need carried
        // distance somewhere or the instance is (legitimately) infeasible.
        std::int64_t distance = pick(0, 2);
        inst.deps.push_back(dep(s, t, delay, distance));
      }
    if (pick(0, 1) == 1) {
      std::vector<int> members;
      for (int m = 0; m < inst.num_mis; ++m)
        if (pick(0, 1) == 1) members.push_back(m);
      if (!members.empty())
        inst.resources = one_class("mem", pick(1, 2), std::move(members));
    }

    std::int64_t max_delay = 1;
    for (const DepConstraint& d : inst.deps)
      max_delay = std::max(max_delay, d.delay);
    const int cap = int(std::int64_t(inst.num_mis) * max_delay + 1);

    ExactResult res = solve_checked(inst);
    std::optional<int> want = brute_min_ii(inst, cap);
    if (want.has_value()) {
      ASSERT_EQ(res.status, ExactStatus::Optimal) << "trial " << trial;
      EXPECT_EQ(res.ii, *want) << "trial " << trial;
      ++optimal;
    } else {
      EXPECT_EQ(res.status, ExactStatus::Infeasible) << "trial " << trial;
      ++infeasible;
    }
  }
  // The generator must exercise both outcomes, not degenerate to one.
  EXPECT_GT(optimal, 50);
  EXPECT_GT(infeasible, 50);
}

TEST(ExactCorpus, HeuristicNeverBeatsExactAndSchedulesVerify) {
  // 200 generated loops through the real SLMS pipeline: for every applied
  // placement the exact optimum on the same relaxed DDG must be <= the
  // heuristic II, the witness must pass the independent certificate
  // check, and src/verify must accept it as a legal schedule.
  int applied = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    LoopGenOptions gen_opts;
    LoopGenerator gen(seed, gen_opts);
    std::string source = gen.generate();
    ast::Program program = parse_or_die(source);

    slms::SlmsOptions opts;
    opts.enable_filter = false;
    std::vector<slms::SlmsApplication> applications;
    auto reports = slms::apply_slms(program, opts, &applications);

    for (const slms::SlmsApplication& app : applications) {
      if (!app.applied()) continue;
      ++applied;
      const slms::LoopPlacement& pl = *app.placement;
      Instance inst = exact::from_placement(pl);

      ExactOptions eopts;
      eopts.budget_ms = -1;  // deterministic: no wall-clock in tests
      ExactResult res = exact::solve(inst, eopts);
      ASSERT_EQ(res.status, ExactStatus::Optimal)
          << "seed " << seed << "\n" << source;
      EXPECT_LE(res.ii, pl.ii) << "seed " << seed << "\n" << source;

      std::string why;
      EXPECT_TRUE(exact::check_schedule(inst, res.schedule, &why))
          << "seed " << seed << ": " << why;
      if (res.lower_proof.has_value()) {
        EXPECT_TRUE(exact::check_infeasibility(inst, *res.lower_proof, &why))
            << "seed " << seed << ": " << why;
      }

      DiagnosticEngine diags;
      EXPECT_TRUE(verify::verify_schedule(pl, res.ii, res.schedule.sigma,
                                          diags))
          << "seed " << seed << "\n" << diags.str();

      // And the heuristic's own schedule is exact-feasible at its II —
      // the two solvers agree on the feasible region, not just the bound.
      exact::ScheduleCert heuristic;
      heuristic.ii = pl.ii;
      heuristic.sigma = pl.sigma;
      EXPECT_TRUE(exact::check_schedule(inst, heuristic, &why))
          << "seed " << seed << ": " << why;
    }
  }
  EXPECT_GT(applied, 40);
}

}  // namespace
}  // namespace slc
