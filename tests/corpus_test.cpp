// Corpus replay: every program archived in tests/corpus/ runs through the
// full differential check on every test run. The corpus holds shrunk
// repros from past fuzzing finds plus hand-picked regression seeds — a
// clean tree must pass all of them, and the planted-bug repros must fail
// again when the bug is re-armed (proving the corpus actually replays the
// original finds).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "support/fault.hpp"

#ifndef SLC_CORPUS_DIR
#error "SLC_CORPUS_DIR must point at tests/corpus"
#endif

namespace slc {
namespace {

namespace fs = std::filesystem;
namespace fault = support::fault;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(SLC_CORPUS_DIR))
    if (e.path().extension() == ".c") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Interpreter-only replay keeps the test fast; the simulator cross-check
/// runs in CI's fixed-seed fuzz job.
fuzz::DiffOptions replay_options() {
  fuzz::DiffOptions o;
  o.check_backends = false;
  return o;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 3u) << "corpus dir: " << SLC_CORPUS_DIR;
}

TEST(CorpusReplay, EveryProgramPassesClean) {
  fault::clear();
  for (const fs::path& path : corpus_files()) {
    std::string source = read_file(path);
    ASSERT_FALSE(source.empty()) << path;
    fuzz::DiffVerdict v = fuzz::differential_check(source, replay_options());
    EXPECT_TRUE(v.ok) << path.filename() << ": " << v.str();
  }
}

TEST(CorpusReplay, PlantedBugReprosFailAgainWhenBugIsArmed) {
  // The mve-*.c entries were shrunk from fuzzing finds under the planted
  // mve-skip-rename bug; re-arming it must reproduce every one of them.
  std::string error;
  ASSERT_TRUE(fault::configure("bug:mve-skip-rename", &error)) << error;
  int repros = 0;
  for (const fs::path& path : corpus_files()) {
    if (path.filename().string().rfind("mve-", 0) != 0) continue;
    ++repros;
    std::string source = read_file(path);
    fuzz::DiffVerdict v = fuzz::differential_check(source, replay_options());
    EXPECT_FALSE(v.ok) << path.filename()
                       << " no longer reproduces the planted bug";
  }
  fault::clear();
  EXPECT_GE(repros, 3);
}

}  // namespace
}  // namespace slc
