// Corpus replay: every program archived in tests/corpus/ runs through the
// full differential check on every test run. The corpus holds shrunk
// repros from past fuzzing finds plus hand-picked regression seeds — a
// clean tree must pass all of them, and the planted-bug repros must fail
// again when the bug is re-armed (proving the corpus actually replays the
// original finds).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "kernels/kernels.hpp"
#include "support/fault.hpp"

#ifndef SLC_CORPUS_DIR
#error "SLC_CORPUS_DIR must point at tests/corpus"
#endif

namespace slc {
namespace {

namespace fs = std::filesystem;
namespace fault = support::fault;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(SLC_CORPUS_DIR))
    if (e.path().extension() == ".c") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Interpreter-only replay keeps the test fast; the simulator cross-check
/// runs in CI's fixed-seed fuzz job.
fuzz::DiffOptions replay_options() {
  fuzz::DiffOptions o;
  o.check_backends = false;
  return o;
}

TEST(CorpusReplay, CorpusIsNotEmpty) {
  EXPECT_GE(corpus_files().size(), 3u) << "corpus dir: " << SLC_CORPUS_DIR;
}

TEST(CorpusReplay, EveryProgramPassesClean) {
  fault::clear();
  for (const fs::path& path : corpus_files()) {
    std::string source = read_file(path);
    ASSERT_FALSE(source.empty()) << path;
    fuzz::DiffVerdict v = fuzz::differential_check(source, replay_options());
    EXPECT_TRUE(v.ok) << path.filename() << ": " << v.str();
  }
}

TEST(CorpusReplay, PlantedBugReprosFailAgainWhenBugIsArmed) {
  // The mve-*.c entries were shrunk from fuzzing finds under the planted
  // mve-skip-rename bug; re-arming it must reproduce every one of them.
  std::string error;
  ASSERT_TRUE(fault::configure("bug:mve-skip-rename", &error)) << error;
  int repros = 0;
  for (const fs::path& path : corpus_files()) {
    if (path.filename().string().rfind("mve-", 0) != 0) continue;
    ++repros;
    std::string source = read_file(path);
    fuzz::DiffVerdict v = fuzz::differential_check(source, replay_options());
    EXPECT_FALSE(v.ok) << path.filename()
                       << " no longer reproduces the planted bug";
  }
  fault::clear();
  EXPECT_GE(repros, 3);
}

// ----- generated-corpus manifest lock -------------------------------------
// tests/corpus/generated.manifest commits the content hash of the first
// 10k generated kernels (`slc --corpus-manifest=10000`). The generator
// is a pure function of (index, seed); any drift — a tweaked splitmix
// constant, a changed template, a stdlib-dependent code path — renames
// or rehashes a line and fails here. This is what makes `--diff-since`
// across machines trustworthy: same index, same kernel text, same key.

TEST(GeneratedCorpus, MatchesCommittedManifest) {
  fs::path manifest = fs::path(SLC_CORPUS_DIR) / "generated.manifest";
  std::ifstream in(manifest);
  ASSERT_TRUE(in.is_open()) << manifest;
  std::size_t index = 0;
  std::string name, hash;
  while (in >> name >> hash) {
    kernels::Kernel k = kernels::generated_kernel(index);
    ASSERT_EQ(k.name, name) << "index " << index;
    ASSERT_EQ(kernels::source_hash(k.source), hash)
        << "generator drift at index " << index << " (" << name << ")";
    ++index;
  }
  EXPECT_EQ(index, 10000u) << "manifest truncated";
}

TEST(GeneratedCorpus, SuiteAndSingleKernelAgree) {
  // generated_suite(count) must be exactly the first `count` kernels —
  // the property the distributed workers rely on to rebuild the
  // coordinator's kernel vector from --corpus-size alone.
  std::vector<kernels::Kernel> suite = kernels::generated_suite(16);
  ASSERT_EQ(suite.size(), 16u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    kernels::Kernel k = kernels::generated_kernel(i);
    EXPECT_EQ(suite[i].name, k.name);
    EXPECT_EQ(suite[i].source, k.source);
  }
}

}  // namespace
}  // namespace slc
