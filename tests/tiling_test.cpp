// Loop tiling and the direction-vector analysis behind it.
#include <gtest/gtest.h>

#include "analysis/direction.hpp"
#include "machine/lower.hpp"
#include "sim/executor.hpp"
#include "ast/build.hpp"
#include "tests/helpers.hpp"
#include "xform/xform.hpp"

namespace slc {
namespace {

using namespace ast;
using test::expect_equivalent;
using test::parse_or_die;

ForStmt* first_loop(Program& p) {
  for (StmtPtr& s : p.stmts)
    if (auto* f = dyn_cast<ForStmt>(s.get())) return f;
  return nullptr;
}

void splice_first(Program& p, std::vector<StmtPtr> repl) {
  for (StmtPtr& s : p.stmts)
    if (s->kind() == StmtKind::For) {
      s = build::block(std::move(repl));
      return;
    }
}

// ---------------------------------------------------------------------------
// direction vectors
// ---------------------------------------------------------------------------

analysis::ArrayAccess access_of(const char* stmt, std::size_t index = 0) {
  static std::vector<StmtPtr> keep_alive;
  keep_alive.push_back(test::parse_stmt_or_die(stmt));
  auto set = analysis::collect_accesses(*keep_alive.back());
  return set.arrays.at(index);
}

TEST(DirectionVector, ExactComponents) {
  auto w = access_of("a[i][j] = 1.0;");
  auto r = access_of("x = a[i - 1][j - 2];");
  auto v = analysis::direction_vector(w, r, "i", "j", 1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->first.kind, analysis::DirComponent::Kind::Exact);
  EXPECT_EQ(v->first.value, 1);
  EXPECT_EQ(v->second.value, 2);
  EXPECT_FALSE(analysis::blocks_interchange(*v));
}

TEST(DirectionVector, PlusMinusBlocks) {
  auto w = access_of("a[i + 1][j - 1] = 1.0;");
  auto r = access_of("x = a[i][j];");
  auto v = analysis::direction_vector(w, r, "i", "j", 1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(analysis::blocks_interchange(*v));
}

TEST(DirectionVector, IndependentColumns) {
  auto w = access_of("a[i][j] = 1.0;");
  auto r = access_of("x = a[i][j + 1];");
  // Same i, j vs j+1: distance (0, -1)/(0, 1) — a real dependence.
  auto v = analysis::direction_vector(w, r, "i", "j", 1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->first.exactly_zero());
  EXPECT_FALSE(analysis::blocks_interchange(*v));

  // Misaligned strides never meet.
  auto w2 = access_of("a[i][2 * j] = 1.0;");
  auto r2 = access_of("x = a[i][2 * j + 1];");
  EXPECT_FALSE(
      analysis::direction_vector(w2, r2, "i", "j", 1, 1).has_value());
}

TEST(DirectionVector, CoupledSubscriptIsUnknown) {
  auto w = access_of("b[i + j] = 1.0;");
  auto r = access_of("x = b[i + j - 1];");
  auto v = analysis::direction_vector(w, r, "i", "j", 1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->first.kind, analysis::DirComponent::Kind::Unknown);
  EXPECT_TRUE(analysis::blocks_interchange(*v));
}

// ---------------------------------------------------------------------------
// tiling
// ---------------------------------------------------------------------------

TEST(Tiling, BlocksAnElementwiseNest) {
  const char* src = R"(
    double a[40][40]; double b[40][40];
    int i; int j;
    for (i = 0; i < 37; i++) {
      for (j = 0; j < 35; j++) {
        a[i][j] = b[i][j] * 2.0 + 1.0;
      }
    }
  )";
  for (auto [to, ti] : {std::pair{4, 4}, {8, 3}, {5, 16}, {64, 64}}) {
    Program original = parse_or_die(src);
    Program work = original.clone();
    auto outcome = xform::tile(*first_loop(work), to, ti);
    ASSERT_TRUE(outcome.applied()) << outcome.reason;
    splice_first(work, std::move(outcome.replacement));
    expect_equivalent(original, work);
  }
}

TEST(Tiling, ForwardDependencesAreFine) {
  // (1,1) dependence: fully permutable.
  const char* src = R"(
    double a[40][40];
    int i; int j;
    for (i = 1; i < 38; i++) {
      for (j = 1; j < 38; j++) {
        a[i][j] = a[i - 1][j - 1] * 0.5;
      }
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::tile(*first_loop(work), 7, 5);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_first(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Tiling, RejectsNonPermutableNest) {
  Program p = parse_or_die(R"(
    double a[40][40];
    int i; int j;
    for (i = 0; i < 38; i++) {
      for (j = 1; j < 38; j++) {
        a[i + 1][j - 1] = a[i][j] + 1.0;
      }
    }
  )");
  auto outcome = xform::tile(*first_loop(p), 4, 4);
  EXPECT_FALSE(outcome.applied());
  EXPECT_NE(outcome.reason.find("non-permutable"), std::string::npos);
}

TEST(Tiling, SymbolicBounds) {
  const char* src = R"(
    double a[64][64];
    int n = 50; int m = 41;
    int i; int j;
    for (i = 0; i < n; i++) {
      for (j = 0; j < m; j++) {
        a[i][j] = a[i][j] + 1.0;
      }
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::tile(*first_loop(work), 8, 8);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_first(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Tiling, TileLargerThanSpace) {
  const char* src = R"(
    double a[16][16];
    int i; int j;
    for (i = 0; i < 10; i++)
      for (j = 0; j < 10; j++)
        a[i][j] = a[i][j] * 2.0;
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::tile(*first_loop(work), 100, 100);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_first(work, std::move(outcome.replacement));
  expect_equivalent(original, work);
}

TEST(Tiling, RejectsScalarRecurrence) {
  Program p = parse_or_die(R"(
    double a[16][16]; double s;
    int i; int j;
    s = 0.0;
    for (i = 0; i < 10; i++)
      for (j = 0; j < 10; j++)
        s = s + a[i][j];
  )");
  auto outcome = xform::tile(*first_loop(p), 4, 4);
  EXPECT_FALSE(outcome.applied());
}

TEST(Tiling, ImprovesCacheBehaviourOnTransposedAccess) {
  // Column-major access of a row-major array thrashes a small cache;
  // tiling restores locality. Measured with the ARM model's tiny L1.
  const char* src = R"(
    double a[96][96]; double b[96][96];
    int i; int j;
    for (i = 0; i < 96; i++) {
      for (j = 0; j < 96; j++) {
        a[i][j] = a[i][j] + b[j][i];
      }
    }
  )";
  Program original = parse_or_die(src);
  Program work = original.clone();
  auto outcome = xform::tile(*first_loop(work), 8, 8);
  ASSERT_TRUE(outcome.applied()) << outcome.reason;
  splice_first(work, std::move(outcome.replacement));
  expect_equivalent(original, work);

  DiagnosticEngine diags;
  machine::MirProgram mir0 = machine::lower(original, diags);
  machine::MirProgram mir1 = machine::lower(work, diags);
  ASSERT_FALSE(diags.has_errors());
  auto r0 = sim::simulate(mir0, machine::arm7_model(), {});
  auto r1 = sim::simulate(mir1, machine::arm7_model(), {});
  ASSERT_TRUE(r0.ok && r1.ok);
  EXPECT_LT(r1.mem_misses, r0.mem_misses);
}

}  // namespace
}  // namespace slc
