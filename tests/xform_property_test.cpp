// Property tests for the classic loop transformations: random loops
// through unroll / peel / reverse / distribute, always oracle-checked.
// Legality rejections are fine; applied transformations must preserve
// semantics exactly.
#include <gtest/gtest.h>

#include "ast/build.hpp"
#include "ast/printer.hpp"
#include "slms/slms.hpp"
#include "tests/helpers.hpp"
#include "tests/loop_generator.hpp"
#include "xform/xform.hpp"

namespace slc {
namespace {

using namespace ast;
using test::parse_or_die;

ForStmt* first_loop(Program& p) {
  for (StmtPtr& s : p.stmts)
    if (auto* f = dyn_cast<ForStmt>(s.get())) return f;
  return nullptr;
}

void splice_first(Program& p, std::vector<StmtPtr> repl) {
  for (StmtPtr& s : p.stmts)
    if (s->kind() == StmtKind::For) {
      s = build::block(std::move(repl));
      return;
    }
}

using XformFn = xform::XformOutcome (*)(const ForStmt&);

struct PropertyCase {
  const char* label;
  int kind;  // 0=unroll2 1=unroll3 2=peel2 3=reverse 4=distribute
  bool symbolic;
};

class XformProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(XformProperty, RandomLoopsStayEquivalent) {
  const PropertyCase& pc = GetParam();
  int applied = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    test::LoopGenOptions gen_opts;
    gen_opts.symbolic_bound = pc.symbolic;
    gen_opts.allow_if = false;  // xforms require simple bodies
    test::LoopGenerator gen(seed, gen_opts);
    std::string source = gen.generate();
    Program original = parse_or_die(source);
    Program work = original.clone();
    ForStmt* loop = first_loop(work);
    ASSERT_NE(loop, nullptr);

    xform::XformOutcome outcome;
    switch (pc.kind) {
      case 0: outcome = xform::unroll(*loop, 2); break;
      case 1: outcome = xform::unroll(*loop, 3); break;
      case 2: outcome = xform::peel_front(*loop, 2); break;
      case 3: outcome = xform::reverse(*loop); break;
      default: outcome = xform::distribute(*loop, 1); break;
    }
    if (!outcome.applied()) continue;
    ++applied;
    splice_first(work, std::move(outcome.replacement));
    for (int input = 0; input < 2; ++input) {
      std::string diff =
          interp::check_equivalent(original, work, std::uint64_t(input));
      ASSERT_EQ(diff, "") << pc.label << " seed " << seed << "\n--- source\n"
                          << source << "--- transformed\n"
                          << to_source(work);
    }
  }
  // Unroll/peel always apply; reverse/distribute apply when legal.
  if (pc.kind <= 2) {
    EXPECT_GT(applied, 80) << pc.label;
  } else {
    EXPECT_GT(applied, 3) << pc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, XformProperty,
    ::testing::Values(PropertyCase{"unroll2", 0, false},
                      PropertyCase{"unroll3", 1, false},
                      PropertyCase{"unroll3_symbolic", 1, true},
                      PropertyCase{"peel2", 2, false},
                      PropertyCase{"peel2_symbolic", 2, true},
                      PropertyCase{"reverse", 3, false},
                      PropertyCase{"distribute", 4, false}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(XformProperty, ComposedUnrollThenSlms) {
  // §6: unrolling before SLMS is legal and composes; oracle must hold.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    test::LoopGenOptions gen_opts;
    gen_opts.allow_if = false;
    test::LoopGenerator gen(seed, gen_opts);
    Program original = parse_or_die(gen.generate());
    Program work = original.clone();
    ForStmt* loop = first_loop(work);
    auto unrolled = xform::unroll(*loop, 2);
    if (!unrolled.applied()) continue;
    splice_first(work, std::move(unrolled.replacement));
    slms::SlmsOptions sopts;
    sopts.enable_filter = false;
    (void)slms::apply_slms(work, sopts);
    test::expect_equivalent(original, work, 2);
  }
}

}  // namespace
}  // namespace slc
