// Tests for the crash-isolation layer (support/subprocess), the
// resumable run journal (driver/journal), the crash/hang fault kinds,
// and the end-to-end `slc --suite --isolate` supervisor contract:
// a planted crash degrades exactly one row, archives a repro, and a
// killed sweep resumes to byte-identical output.
#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "driver/journal.hpp"
#include "support/fault.hpp"
#include "support/failure.hpp"
#include "support/subprocess.hpp"

// raise(SIGSEGV) and RLIMIT_AS behave differently under sanitizer
// runtimes (ASan reports and exits instead of dying on the signal, and
// shadow memory collides with address-space caps), so the affected
// assertions relax there. Signal tests that go through /bin/sh — an
// uninstrumented binary — stay strict.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SLC_SANITIZED 1
#endif
#if !defined(SLC_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SLC_SANITIZED 1
#endif
#endif
#ifndef SLC_SANITIZED
#define SLC_SANITIZED 0
#endif

namespace {

using namespace slc;
namespace subprocess = support::subprocess;
namespace journal = driver::journal;
namespace fs = std::filesystem;
using subprocess::ExitClass;

subprocess::RunResult sh(const std::string& script,
                         std::uint64_t timeout_ms = 0) {
  subprocess::RunOptions run;
  run.argv = {"/bin/sh", "-c", script};
  run.timeout_ms = timeout_ms;
  return subprocess::run(run);
}

// ----- subprocess: spawn + classification ---------------------------------

TEST(Subprocess, CleanRunCapturesOutput) {
  subprocess::RunResult r = sh("echo out-line; echo err-line >&2");
  ASSERT_TRUE(r.spawned) << r.spawn_error;
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.cls, ExitClass::Clean);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.out, "out-line\n");
  EXPECT_EQ(r.err, "err-line\n");
  EXPECT_EQ(r.describe(), "clean");
  EXPECT_GT(r.wall_ns, 0u);
}

TEST(Subprocess, NonZeroExit) {
  subprocess::RunResult r = sh("exit 3");
  ASSERT_TRUE(r.spawned);
  EXPECT_EQ(r.cls, ExitClass::NonZero);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.describe(), "exit:3");
}

TEST(Subprocess, SignalDeath) {
  subprocess::RunResult r = sh("kill -SEGV $$");
  ASSERT_TRUE(r.spawned);
  EXPECT_EQ(r.cls, ExitClass::Signal);
  EXPECT_EQ(r.term_signal, SIGSEGV);
  EXPECT_EQ(r.describe(), "signal:SIGSEGV");
}

TEST(Subprocess, WatchdogKillsAndClassifiesTimeout) {
  subprocess::RunResult r = sh("sleep 30", /*timeout_ms=*/300);
  ASSERT_TRUE(r.spawned);
  EXPECT_TRUE(r.timed_out);
  EXPECT_EQ(r.cls, ExitClass::Timeout);
  EXPECT_EQ(r.describe(), "timeout");
  // The watchdog must fire near its deadline, not at the sleep's end.
  EXPECT_LT(r.wall_ns, std::uint64_t(10) * 1000 * 1000 * 1000);
}

TEST(Subprocess, ExecFailureIsNonZero127) {
  subprocess::RunOptions run;
  run.argv = {"/nonexistent/slc-no-such-binary"};
  subprocess::RunResult r = subprocess::run(run);
  ASSERT_TRUE(r.spawned);  // fork worked; exec failed inside the child
  EXPECT_EQ(r.cls, ExitClass::NonZero);
  EXPECT_EQ(r.exit_code, 127);
}

TEST(Subprocess, StdinIsDelivered) {
  subprocess::RunOptions run;
  run.argv = {"/bin/sh", "-c", "cat"};
  run.stdin_text = "piped through\n";
  subprocess::RunResult r = subprocess::run(run);
  ASSERT_TRUE(r.clean());
  EXPECT_EQ(r.out, "piped through\n");
}

TEST(Subprocess, OutputCapTruncatesWithoutHanging) {
  subprocess::RunOptions run;
  run.argv = {"/bin/sh", "-c", "yes x | head -c 1000000"};
  run.max_output_bytes = 4096;
  subprocess::RunResult r = subprocess::run(run);
  ASSERT_TRUE(r.spawned);
  EXPECT_LE(r.out.size(), 4096u);
}

TEST(Subprocess, SelfExePathExists) {
  std::string path = subprocess::self_exe_path("fallback");
  EXPECT_NE(path, "fallback");
  EXPECT_TRUE(fs::exists(path));
}

#if !SLC_SANITIZED
TEST(Subprocess, AddressSpaceCapTurnsAllocationIntoOom) {
  // The child tries to allocate ~256 MiB under a 64 MiB RLIMIT_AS cap.
  // dd's failed allocation exits nonzero with an error on stderr; with
  // the cap armed the classifier must call it Oom, not a plain failure.
  subprocess::RunOptions run;
  run.argv = {"/bin/sh", "-c", "dd if=/dev/zero of=/dev/null bs=256M count=1"};
  run.max_rss_mb = 64;
  subprocess::RunResult r = subprocess::run(run);
  ASSERT_TRUE(r.spawned);
  EXPECT_TRUE(r.rss_capped);
  EXPECT_NE(r.cls, ExitClass::Clean);
}
#endif

// ----- classification: pure, no spawning ----------------------------------

TEST(ClassifyExit, PriorityAndOomInference) {
  // Timeout beats everything, including the SIGKILL it caused.
  EXPECT_EQ(subprocess::classify_exit(true, true, SIGKILL, false, ""),
            ExitClass::Timeout);
  EXPECT_EQ(subprocess::classify_exit(false, false, 0, false, ""),
            ExitClass::Clean);
  EXPECT_EQ(subprocess::classify_exit(false, false, 2, false, ""),
            ExitClass::NonZero);
  EXPECT_EQ(subprocess::classify_exit(false, true, SIGSEGV, false, ""),
            ExitClass::Signal);
  // Unrequested SIGKILL while a cap was armed: the kernel OOM path.
  EXPECT_EQ(subprocess::classify_exit(false, true, SIGKILL, true, ""),
            ExitClass::Oom);
  // A capped child reporting an allocation failure on stderr is Oom.
  EXPECT_EQ(subprocess::classify_exit(false, false, 1, true,
                                      "terminate called after throwing an "
                                      "instance of 'std::bad_alloc'"),
            ExitClass::Oom);
  // The same stderr without a cap armed stays a plain nonzero exit.
  EXPECT_EQ(subprocess::classify_exit(false, false, 1, false,
                                      "std::bad_alloc"),
            ExitClass::NonZero);
}

TEST(ClassifyExit, MapsIntoFailureTaxonomy) {
  subprocess::RunResult r;
  r.spawned = true;
  r.cls = ExitClass::Signal;
  r.term_signal = SIGSEGV;
  support::Failure f = subprocess::to_failure(r);
  EXPECT_EQ(f.stage, support::Stage::Isolation);
  EXPECT_EQ(f.kind, support::FailureKind::ChildSignal);
  EXPECT_NE(f.message.find("signal:SIGSEGV"), std::string::npos);

  r.cls = ExitClass::Timeout;
  r.timed_out = true;
  EXPECT_EQ(subprocess::to_failure(r).kind,
            support::FailureKind::ChildTimeout);
  r.cls = ExitClass::Oom;
  EXPECT_EQ(subprocess::to_failure(r).kind, support::FailureKind::ChildOom);
  r.cls = ExitClass::NonZero;
  r.exit_code = 9;
  EXPECT_EQ(subprocess::to_failure(r).kind, support::FailureKind::ChildExit);
}

TEST(FailureTaxonomy, IsolationNamesRoundTrip) {
  EXPECT_STREQ(support::to_string(support::Stage::Isolation), "isolation");
  EXPECT_EQ(support::parse_stage("isolation"), support::Stage::Isolation);
  for (auto kind :
       {support::FailureKind::ChildExit, support::FailureKind::ChildSignal,
        support::FailureKind::ChildTimeout, support::FailureKind::ChildOom}) {
    auto parsed = support::parse_failure_kind(support::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(support::parse_failure_kind("no-such-kind").has_value());
}

// ----- fault kinds: crash / hang (parse only — never trigger these) -------

TEST(FaultKinds, CrashAndHangSpecsParse) {
  std::string error;
  EXPECT_TRUE(support::fault::configure("slms:crash@ddot2", &error)) << error;
  EXPECT_TRUE(support::fault::enabled());
  EXPECT_TRUE(support::fault::configure("simulate:hang", &error)) << error;
  EXPECT_TRUE(
      support::fault::configure("slms:crash,oracle:hang@daxpy", &error))
      << error;
  // Triggering with a non-matching kernel must be a no-op, not a crash.
  ASSERT_TRUE(support::fault::configure("slms:crash@only-this", &error))
      << error;
  EXPECT_FALSE(
      support::fault::trigger(support::Stage::Slms, "other").has_value());
  support::fault::clear();
  EXPECT_FALSE(support::fault::enabled());
}

TEST(FaultKinds, MalformedCrashSpecsRejected) {
  std::string error;
  EXPECT_FALSE(support::fault::configure("slms:crash=5", &error));
  EXPECT_FALSE(support::fault::configure("slms:hangs", &error));
  support::fault::clear();
}

// ----- journal: keys, lossless rows, torn tails ---------------------------

driver::ComparisonRow sample_row() {
  driver::ComparisonRow row;
  row.kernel = "ddot2";
  row.suite = "linpack";
  row.slms_applied = true;
  row.report.applied = true;
  row.report.loop_name = "loop0";
  row.report.num_mis = 3;
  row.report.ii = 2;
  row.report.stages = 4;
  row.report.unroll = 2;
  row.report.memory_ratio = 0.625;
  row.ok = true;
  row.degraded = true;
  row.failure = support::make_failure(support::Stage::Isolation,
                                      support::FailureKind::ChildSignal,
                                      "signal:SIGSEGV");
  row.failure->kernel = "ddot2";
  row.wall_ns = 123456789;
  row.cycles_base = 0xFFFFFFFFFFFFFFFFull;  // u64 must survive bit-exactly
  row.cycles_slms = 4242;
  row.energy_base = 1.0 / 3.0;  // needs round-trip-exact double formatting
  row.energy_slms = 0.125;
  row.misses_base = 17;
  row.loop_slms.modulo_scheduled = true;
  row.loop_slms.ii = 2;
  row.loop_slms.iterations = 420;
  row.loop_slms.ims_fail_reason = "n/a";
  row.exact.ran = true;
  row.exact.status = "optimal";
  row.exact.ii = 2;
  row.exact.lower_bound = 1;
  row.exact.heuristic_ii = 2;
  row.exact.verified = true;
  row.exact.solve_ns = 12345;
  row.exact.steps = 678;
  return row;
}

TEST(Journal, RowKeyIsStableAndInputSensitive) {
  std::string a = journal::row_key("for(;;){}", "--suite=x --seed=1");
  EXPECT_EQ(a, journal::row_key("for(;;){}", "--suite=x --seed=1"));
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, journal::row_key("for(;;){};", "--suite=x --seed=1"));
  EXPECT_NE(a, journal::row_key("for(;;){}", "--suite=x --seed=2"));
}

TEST(Journal, RowKeyIncludesBackendIdentities) {
  // The sentinel values ("interp" oracle, exact off) must reproduce the
  // historical two-argument keys byte for byte — old journals stay
  // resumable — while any non-default backend identity must re-key the
  // row so --resume / --diff-since never replay a measurement taken
  // under a different oracle or solver configuration.
  std::string a = journal::row_key("for(;;){}", "--suite=x --seed=1");
  EXPECT_EQ(a, journal::row_key("for(;;){}", "--suite=x --seed=1", "interp"));
  EXPECT_EQ(a,
            journal::row_key("for(;;){}", "--suite=x --seed=1", "interp", ""));
  EXPECT_NE(a, journal::row_key("for(;;){}", "--suite=x --seed=1",
                                "native:cc 12.0"));

  const std::string exact_id = "dl-cdcl-1 budget_ms=2000 max_steps=-1";
  std::string with_exact = journal::row_key("for(;;){}", "--suite=x --seed=1",
                                            "interp", exact_id);
  EXPECT_NE(a, with_exact);
  // Distinct solver configurations key distinct rows (a budget change can
  // flip a row between a proven gap and unknown).
  EXPECT_NE(with_exact,
            journal::row_key("for(;;){}", "--suite=x --seed=1", "interp",
                             exact_id + " resources=1"));
}

TEST(Journal, RowRoundTripsLosslessly) {
  driver::ComparisonRow row = sample_row();
  std::string text = journal::row_to_json(row).dump();
  std::optional<support::json::Value> parsed = support::json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  std::optional<driver::ComparisonRow> back = journal::row_from_json(*parsed);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->kernel, row.kernel);
  EXPECT_EQ(back->suite, row.suite);
  EXPECT_EQ(back->slms_applied, row.slms_applied);
  EXPECT_EQ(back->report.num_mis, row.report.num_mis);
  EXPECT_EQ(back->report.ii, row.report.ii);
  EXPECT_EQ(back->report.stages, row.report.stages);
  EXPECT_EQ(back->report.memory_ratio, row.report.memory_ratio);
  EXPECT_EQ(back->ok, row.ok);
  EXPECT_EQ(back->degraded, row.degraded);
  ASSERT_TRUE(back->failure.has_value());
  EXPECT_EQ(back->failure->stage, support::Stage::Isolation);
  EXPECT_EQ(back->failure->kind, support::FailureKind::ChildSignal);
  EXPECT_EQ(back->failure->kernel, "ddot2");
  EXPECT_EQ(back->wall_ns, row.wall_ns);
  EXPECT_EQ(back->cycles_base, row.cycles_base);
  EXPECT_EQ(back->cycles_slms, row.cycles_slms);
  EXPECT_EQ(back->energy_base, row.energy_base);
  EXPECT_EQ(back->energy_slms, row.energy_slms);
  EXPECT_EQ(back->misses_base, row.misses_base);
  EXPECT_EQ(back->loop_slms.modulo_scheduled, row.loop_slms.modulo_scheduled);
  EXPECT_EQ(back->loop_slms.ii, row.loop_slms.ii);
  EXPECT_EQ(back->loop_slms.iterations, row.loop_slms.iterations);
  EXPECT_EQ(back->loop_slms.ims_fail_reason, row.loop_slms.ims_fail_reason);
  EXPECT_EQ(back->exact.ran, row.exact.ran);
  EXPECT_EQ(back->exact.status, row.exact.status);
  EXPECT_EQ(back->exact.ii, row.exact.ii);
  EXPECT_EQ(back->exact.lower_bound, row.exact.lower_bound);
  EXPECT_EQ(back->exact.heuristic_ii, row.exact.heuristic_ii);
  EXPECT_EQ(back->exact.verified, row.exact.verified);
  EXPECT_EQ(back->exact.solve_ns, row.exact.solve_ns);
  EXPECT_EQ(back->exact.steps, row.exact.steps);
  ASSERT_TRUE(back->exact.gap().has_value());
  EXPECT_EQ(*back->exact.gap(), 0);
}

TEST(Journal, LoaderSkipsTornTailAndForeignLines) {
  fs::path path = fs::temp_directory_path() /
                  ("slc-journal-test-" + std::to_string(::getpid()) +
                   ".jsonl");
  {
    journal::Journal jnl;
    ASSERT_TRUE(jnl.open(path.string(), /*truncate=*/true));
    driver::ComparisonRow row = sample_row();
    jnl.append("key-one", row);
    row.kernel = "daxpy";
    jnl.append("key-two", row);
  }
  {
    // Simulate a kill -9 mid-append plus a stray non-journal line.
    std::ofstream f(path, std::ios::app);
    f << "not json at all\n";
    f << "{\"key\":\"key-three\",\"row\":{\"kern";  // torn, no newline
  }
  journal::LoadResult loaded = journal::load(path.string());
  EXPECT_EQ(loaded.rows.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 2u);
  ASSERT_TRUE(loaded.rows.count("key-one"));
  EXPECT_EQ(loaded.rows["key-two"].kernel, "daxpy");
  fs::remove(path);
}

TEST(Journal, BinaryVersionIsInKeyDomain) {
  // Not much to assert beyond non-emptiness and stability — but a key
  // computed now must match one computed later in the same process.
  EXPECT_FALSE(journal::binary_version().empty());
  EXPECT_EQ(journal::binary_version(), journal::binary_version());
}

// ----- journal checkpointing (tmp + fsync + rename + dir fsync) -----------

struct JournalFile {
  fs::path path;
  explicit JournalFile(const std::string& stem) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           (stem + "-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".jsonl");
    fs::remove(path);
    fs::remove(fs::path(path.string() + ".tmp"));
  }
  ~JournalFile() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(fs::path(path.string() + ".tmp"), ec);
  }
};

TEST(Checkpoint, CollapsesDuplicatesAndTornTailLastWriteWins) {
  JournalFile f("slc-checkpoint");
  {
    journal::Journal jnl;
    ASSERT_TRUE(jnl.open(f.path.string(), /*truncate=*/true));
    driver::ComparisonRow row = sample_row();
    jnl.append("key-one", row);
    row.kernel = "daxpy";
    jnl.append("key-two", row);
    row.kernel = "dswap";  // duplicate key: a resumed/stolen re-append
    jnl.append("key-one", row);
  }
  {
    std::ofstream app(f.path, std::ios::app);
    app << "{\"key\":\"key-three\",\"row\":{\"to";  // kill -9 torn tail
  }
  journal::CheckpointResult cp = journal::checkpoint(f.path.string());
  ASSERT_TRUE(cp.ok) << cp.error;
  EXPECT_EQ(cp.rows, 2u);
  EXPECT_EQ(cp.duplicates_dropped, 1u);
  EXPECT_EQ(cp.torn_lines_dropped, 1u);
  // The compacted journal is clean: no skipped lines, no duplicates,
  // and the duplicate key resolved to the LAST append.
  journal::LoadResult loaded = journal::load(f.path.string());
  EXPECT_EQ(loaded.rows.size(), 2u);
  EXPECT_EQ(loaded.skipped_lines, 0u);
  EXPECT_EQ(loaded.duplicate_keys, 0u);
  EXPECT_EQ(loaded.rows["key-one"].kernel, "dswap");
  // The tmp staging file must not survive a completed checkpoint.
  EXPECT_FALSE(fs::exists(f.path.string() + ".tmp"));
}

TEST(Checkpoint, KillBetweenAppendAndRenameNeverServesAStaleKey) {
  // The race the tmp+rename+dir-fsync discipline must survive: a
  // checkpoint snapshots key-one at v1, a concurrent append updates it
  // to v2, and the process is SIGKILLed before the checkpoint's rename.
  // On restart the journal must serve v2 — the stale .tmp snapshot is a
  // different path, invisible to load(), and must never shadow the
  // newer append.
  JournalFile f("slc-checkpoint-race");
  driver::ComparisonRow v1 = sample_row();
  v1.cycles_slms = 100;
  driver::ComparisonRow v2 = sample_row();
  v2.cycles_slms = 42;
  {
    journal::Journal jnl;
    ASSERT_TRUE(jnl.open(f.path.string(), /*truncate=*/true));
    jnl.append("key-one", v1);
  }
  {
    // The checkpoint-in-progress, frozen just before rename: a fully
    // written tmp holding the stale v1 snapshot.
    std::ofstream tmp(f.path.string() + ".tmp", std::ios::trunc);
    support::json::Value line = support::json::Value::object();
    line.set("key", support::json::Value::string("key-one"));
    line.set("row", journal::row_to_json(v1));
    tmp << line.dump() << "\n";
  }
  {
    journal::Journal jnl;
    ASSERT_TRUE(jnl.open(f.path.string(), /*truncate=*/false));
    jnl.append("key-one", v2);  // the append the kill must not undo
  }
  // -- SIGKILL here: the rename never happens. Restart: --
  journal::LoadResult loaded = journal::load(f.path.string());
  ASSERT_EQ(loaded.rows.count("key-one"), 1u);
  EXPECT_EQ(loaded.rows["key-one"].cycles_slms, 42u) << "stale key served";
  // The next checkpoint overwrites the leftover tmp and converges.
  journal::CheckpointResult cp = journal::checkpoint(f.path.string());
  ASSERT_TRUE(cp.ok) << cp.error;
  journal::LoadResult after = journal::load(f.path.string());
  ASSERT_EQ(after.rows.count("key-one"), 1u);
  EXPECT_EQ(after.rows["key-one"].cycles_slms, 42u);
  EXPECT_FALSE(fs::exists(f.path.string() + ".tmp"));
}

// ----- end-to-end: the slc --isolate supervisor ---------------------------

#ifdef SLC_TOOL_BIN

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("slc-isolate-test-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

subprocess::RunResult run_slc(const std::vector<std::string>& args,
                              std::uint64_t timeout_ms = 120000) {
  subprocess::RunOptions run;
  run.argv.push_back(SLC_TOOL_BIN);
  run.argv.insert(run.argv.end(), args.begin(), args.end());
  run.timeout_ms = timeout_ms;
  return subprocess::run(run);
}

TEST(IsolateE2E, MatchesInProcessOutputByteForByte) {
  subprocess::RunResult plain = run_slc({"--suite=linpack", "--jobs=2"});
  ASSERT_TRUE(plain.clean()) << plain.describe() << "\n" << plain.err;
  TempDir tmp;
  subprocess::RunResult iso =
      run_slc({"--suite=linpack", "--isolate", "--jobs=2",
               "--journal=" + tmp.file("j.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  ASSERT_TRUE(iso.clean()) << iso.describe() << "\n" << iso.err;
  EXPECT_EQ(plain.out, iso.out);
}

TEST(IsolateE2E, PlantedCrashDegradesOneRowAndArchivesRepro) {
  TempDir tmp;
  subprocess::RunResult r =
      run_slc({"--suite=linpack", "--isolate", "--jobs=2",
               "--fault=slms:crash@ddot2", "--journal=" + tmp.file("j.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  // The sweep must complete (degraded rows are still ok → exit 0).
  ASSERT_TRUE(r.spawned) << r.spawn_error;
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("1 row(s) degraded"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("1 child crash(es)"), std::string::npos) << r.err;

  // The repro must name the kernel and carry a replayable command line.
  fs::path repro = fs::path(tmp.file("crashes")) / "ddot2.c";
  ASSERT_TRUE(fs::exists(repro)) << r.err;
  std::ifstream f(repro);
  std::stringstream buf;
  buf << f.rdbuf();
  std::string text = buf.str();
  EXPECT_NE(text.find("// command: "), std::string::npos);
  EXPECT_NE(text.find("--child-rows="), std::string::npos);
  EXPECT_NE(text.find("double"), std::string::npos);  // the source itself
#if !SLC_SANITIZED
  // Outside sanitizer builds the planted raise(SIGSEGV) dies by signal.
  EXPECT_NE(text.find("signal:SIGSEGV"), std::string::npos) << text;
#endif
}

TEST(IsolateE2E, HangIsKilledByWatchdogAndDegrades) {
  TempDir tmp;
  subprocess::RunResult r =
      run_slc({"--suite=linpack", "--isolate", "--fault=slms:hang@dscal",
               "--child-timeout-ms=2000", "--jobs=2",
               "--journal=" + tmp.file("j.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  ASSERT_TRUE(r.spawned) << r.spawn_error;
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("timeout"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("1 row(s) degraded"), std::string::npos) << r.err;
  EXPECT_TRUE(fs::exists(fs::path(tmp.file("crashes")) / "dscal.c"));
}

TEST(IsolateE2E, ResumeReplaysToByteIdenticalOutput) {
  TempDir tmp;
  subprocess::RunResult full =
      run_slc({"--suite=linpack", "--isolate",
               "--journal=" + tmp.file("full.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  ASSERT_TRUE(full.clean()) << full.err;

  // Keep only the first 4 journal lines — as if the sweep was killed.
  {
    std::ifstream in(tmp.file("full.jsonl"));
    std::ofstream out(tmp.file("part.jsonl"));
    std::string line;
    for (int i = 0; i < 4 && std::getline(in, line); ++i) out << line << "\n";
  }
  subprocess::RunResult resumed =
      run_slc({"--suite=linpack", "--isolate", "--resume",
               "--journal=" + tmp.file("part.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  ASSERT_TRUE(resumed.clean()) << resumed.err;
  EXPECT_EQ(full.out, resumed.out);
  EXPECT_NE(resumed.err.find("4 resumed from journal"), std::string::npos)
      << resumed.err;

  // The same journal also resumes in-process (no --isolate): the key
  // covers row inputs, not the execution mode.
  {
    std::ifstream in(tmp.file("full.jsonl"));
    std::ofstream out(tmp.file("part2.jsonl"));
    std::string line;
    for (int i = 0; i < 4 && std::getline(in, line); ++i) out << line << "\n";
  }
  subprocess::RunResult inproc =
      run_slc({"--suite=linpack", "--resume",
               "--journal=" + tmp.file("part2.jsonl")});
  ASSERT_TRUE(inproc.clean()) << inproc.err;
  EXPECT_EQ(full.out, inproc.out);
}

TEST(IsolateE2E, SigintFlushesJournalAndResumeCompletes) {
  TempDir tmp;
  // A per-row delay keeps the sweep alive long enough to interrupt it.
  std::string cmd = std::string(SLC_TOOL_BIN) +
                    " --suite=linpack --isolate --jobs=1"
                    " --fault=simulate:delay=200 --journal=" +
                    tmp.file("j.jsonl") + " --crash-dir=" +
                    tmp.file("crashes");
  subprocess::RunResult killed = sh(
      "(" + cmd + " >" + tmp.file("out") + " 2>" + tmp.file("err") +
          " & pid=$!; sleep 1; kill -INT $pid; wait $pid; echo RC=$?)",
      /*timeout_ms=*/60000);
  ASSERT_TRUE(killed.clean()) << killed.describe();
  EXPECT_NE(killed.out.find("RC=130"), std::string::npos) << killed.out;
  {
    std::ifstream err(tmp.file("err"));
    std::stringstream buf;
    buf << err.rdbuf();
    EXPECT_NE(buf.str().find("resume with --resume"), std::string::npos)
        << buf.str();
  }

  subprocess::RunResult resumed =
      run_slc({"--suite=linpack", "--isolate", "--jobs=1",
               "--fault=simulate:delay=200", "--resume",
               "--journal=" + tmp.file("j.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  ASSERT_TRUE(resumed.clean()) << resumed.err;
  // The delay fault does not change row bytes, so the resumed table must
  // match an undisturbed run's.
  subprocess::RunResult reference = run_slc({"--suite=linpack", "--jobs=2"});
  ASSERT_TRUE(reference.clean());
  EXPECT_EQ(resumed.out, reference.out);
}

TEST(IsolateE2E, ShardedRunSurvivesCrashInsideShard) {
  TempDir tmp;
  subprocess::RunResult r =
      run_slc({"--suite=linpack", "--isolate=4", "--jobs=1",
               "--fault=slms:crash@ddot2", "--no-shrink-crash",
               "--journal=" + tmp.file("j.jsonl"),
               "--crash-dir=" + tmp.file("crashes")});
  ASSERT_TRUE(r.spawned) << r.spawn_error;
  // Salvage + re-run must still complete every row with one degraded.
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.err.find("1 row(s) degraded"), std::string::npos) << r.err;
  EXPECT_TRUE(fs::exists(fs::path(tmp.file("crashes")) / "ddot2.c"));
}

#endif  // SLC_TOOL_BIN

}  // namespace
