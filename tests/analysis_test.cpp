// Dependence analysis: linear forms, access collection, pairwise tests,
// and DDG construction.
#include <gtest/gtest.h>

#include "analysis/access.hpp"
#include "analysis/ddg.hpp"
#include "analysis/direction.hpp"
#include "analysis/linear_form.hpp"
#include "ast/build.hpp"
#include "tests/helpers.hpp"

namespace slc {
namespace {

using namespace analysis;
using namespace ast;
using test::parse_stmt_or_die;

ExprPtr parse_expr(const std::string& src) {
  StmtPtr s = parse_stmt_or_die("x = " + src + ";");
  return std::move(dyn_cast<AssignStmt>(s.get())->rhs);
}

TEST(LinearForm, BasicShapes) {
  auto f = linearize(*parse_expr("2 * i + j - 3"));
  EXPECT_TRUE(f.exact);
  EXPECT_EQ(f.coeff_of("i"), 2);
  EXPECT_EQ(f.coeff_of("j"), 1);
  EXPECT_EQ(f.constant, -3);

  f = linearize(*parse_expr("i - i"));
  EXPECT_TRUE(f.exact);
  EXPECT_EQ(f.coeff_of("i"), 0);
  EXPECT_TRUE(f.coeffs.empty());

  f = linearize(*parse_expr("-(i + 1) + 4"));
  EXPECT_EQ(f.coeff_of("i"), -1);
  EXPECT_EQ(f.constant, 3);

  f = linearize(*parse_expr("i * j"));
  EXPECT_FALSE(f.exact);

  f = linearize(*parse_expr("3 * (i + 2)"));
  EXPECT_EQ(f.coeff_of("i"), 3);
  EXPECT_EQ(f.constant, 6);
}

TEST(LinearForm, Residue) {
  auto a = linearize(*parse_expr("i + j"));
  auto b = linearize(*parse_expr("i + j - 2"));
  auto c = linearize(*parse_expr("i + k"));
  EXPECT_TRUE(a.same_residue(b, "i"));
  EXPECT_FALSE(a.same_residue(c, "i"));
}

TEST(Access, CountsLoadsStoresAndOps) {
  StmtPtr s = parse_stmt_or_die("x = A[i] + B[i] + C[i] + D[i];");
  AccessSet set = collect_accesses(*s);
  EXPECT_EQ(set.load_store_count, 4);
  EXPECT_EQ(set.arith_op_count, 3);
  ASSERT_EQ(set.arrays.size(), 4u);
  for (const auto& a : set.arrays) EXPECT_FALSE(a.is_write);

  s = parse_stmt_or_die("A[i] += x * 2;");
  set = collect_accesses(*s);
  // A[i] read + A[i] write; '+' from compound, '*' explicit.
  EXPECT_EQ(set.load_store_count, 2);
  EXPECT_EQ(set.arith_op_count, 2);
}

TEST(Access, MemoryRefRatioOfPaperSwapLoop) {
  // Paper §4: the swap loop has LS=6, AO=1, ratio 0.857.
  StmtPtr s1 = parse_stmt_or_die("CT = X[k][i];");
  StmtPtr s2 = parse_stmt_or_die("X[k][i] = X[k][j] * 2;");
  StmtPtr s3 = parse_stmt_or_die("X[k][j] = CT;");
  // Note: scalar CT is not a load/store at source level; the paper counts
  // array references. LS = 4 array refs + ... the paper counts 6 (it
  // counts CT as memory too). We count the 4 array refs plus the two CT
  // sides? — we follow array refs only, so construct the ratio check on
  // our own convention and assert it exceeds the threshold either way.
  double ratio = memory_ref_ratio({s1.get(), s2.get(), s3.get()});
  EXPECT_GT(ratio, 0.79);
}

TEST(DepTest, SameCoefficientDistances) {
  // A[i] = ... ; ... = A[i-2]  => flow distance 2.
  StmtPtr w = parse_stmt_or_die("A[i] = 1.0;");
  StmtPtr r = parse_stmt_or_die("x = A[i - 2];");
  auto aw = collect_accesses(*w).arrays[0];
  auto ar = collect_accesses(*r).arrays[0];
  auto res = test_dependence(aw, ar, "i", 1);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, 2);  // read happens 2 iterations later

  // Opposite orientation.
  res = test_dependence(ar, aw, "i", 1);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, -2);
}

TEST(DepTest, Step2MisalignedIsIndependent) {
  // With step 2, A[j] and A[j-1] touch disjoint (even/odd) cells.
  StmtPtr w = parse_stmt_or_die("A[j] = 1.0;");
  StmtPtr r = parse_stmt_or_die("x = A[j - 1];");
  auto aw = collect_accesses(*w).arrays[0];
  auto ar = collect_accesses(*r).arrays[0];
  EXPECT_EQ(test_dependence(aw, ar, "j", 2).kind,
            DepTestResult::Kind::Independent);
  // A[j-2] is aligned: distance 1.
  StmtPtr r2 = parse_stmt_or_die("x = A[j - 2];");
  auto ar2 = collect_accesses(*r2).arrays[0];
  auto res = test_dependence(aw, ar2, "j", 2);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, 1);
}

TEST(DepTest, GcdIndependence) {
  // 2i and 2i+1: never equal.
  StmtPtr w = parse_stmt_or_die("A[2 * i] = 1.0;");
  StmtPtr r = parse_stmt_or_die("x = A[2 * i + 1];");
  auto aw = collect_accesses(*w).arrays[0];
  auto ar = collect_accesses(*r).arrays[0];
  EXPECT_EQ(test_dependence(aw, ar, "i", 1).kind,
            DepTestResult::Kind::Independent);
}

TEST(DepTest, DifferentCoefficientsUnknown) {
  StmtPtr w = parse_stmt_or_die("A[2 * i] = 1.0;");
  StmtPtr r = parse_stmt_or_die("x = A[i];");
  auto aw = collect_accesses(*w).arrays[0];
  auto ar = collect_accesses(*r).arrays[0];
  EXPECT_EQ(test_dependence(aw, ar, "i", 1).kind,
            DepTestResult::Kind::Unknown);
}

TEST(DepTest, TwoDimensional) {
  // X[k][i] vs X[k-1][i]: distance 1 in the loop over k; invariant dim i
  // must match.
  StmtPtr w = parse_stmt_or_die("X[k][i] = 1.0;");
  StmtPtr r = parse_stmt_or_die("x = X[k - 1][i];");
  auto aw = collect_accesses(*w).arrays[0];
  auto ar = collect_accesses(*r).arrays[0];
  auto res = test_dependence(aw, ar, "k", 1);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, 1);

  // Different invariant columns (i vs i+1 never collide): independent.
  StmtPtr r2 = parse_stmt_or_die("x = X[k - 1][i + 1];");
  auto ar2 = collect_accesses(*r2).arrays[0];
  EXPECT_EQ(test_dependence(aw, ar2, "k", 1).kind,
            DepTestResult::Kind::Independent);
}

TEST(DepTest, InvariantCellUnknown) {
  StmtPtr w = parse_stmt_or_die("A[0] = x;");
  StmtPtr r = parse_stmt_or_die("y = A[0];");
  auto aw = collect_accesses(*w).arrays[0];
  auto ar = collect_accesses(*r).arrays[0];
  EXPECT_EQ(test_dependence(aw, ar, "i", 1).kind,
            DepTestResult::Kind::Unknown);
}

// --------------------------------------------------------------------------
// DDG construction
// --------------------------------------------------------------------------

std::vector<StmtPtr> parse_mis(std::initializer_list<const char*> lines) {
  std::vector<StmtPtr> out;
  for (const char* l : lines) out.push_back(parse_stmt_or_die(l));
  return out;
}

std::vector<const Stmt*> ptrs(const std::vector<StmtPtr>& mis) {
  std::vector<const Stmt*> out;
  for (const auto& m : mis) out.push_back(m.get());
  return out;
}

TEST(Ddg, IntroExampleFlowElimination) {
  // Paper §1: t = A[i]*B[i]; s = s + t;
  auto mis = parse_mis({"t = A[i] * B[i];", "s = s + t;"});
  Ddg g = build_ddg(ptrs(mis), "i");
  // flow t: MI0 -> MI1 dist 0; anti t: MI1 -> MI0 dist 1;
  // s: self flow/anti/output dist on MI1.
  bool found_flow = false, found_anti = false, found_self = false;
  for (const DepEdge& e : g.edges) {
    if (e.var == "t" && e.kind == DepKind::Flow) {
      EXPECT_EQ(e.src, 0);
      EXPECT_EQ(e.dst, 1);
      EXPECT_EQ(e.min_distance(), 0);
      found_flow = true;
    }
    if (e.var == "t" && e.kind == DepKind::Anti) {
      EXPECT_EQ(e.src, 1);
      EXPECT_EQ(e.dst, 0);
      EXPECT_EQ(e.min_distance(), 1);
      found_anti = true;
    }
    if (e.var == "s" && e.src == 1 && e.dst == 1 && e.kind == DepKind::Flow) {
      EXPECT_EQ(e.min_distance(), 1);
      found_self = true;
    }
  }
  EXPECT_TRUE(found_flow);
  EXPECT_TRUE(found_anti);
  EXPECT_TRUE(found_self);
}

TEST(Ddg, SelfLoopCarriedArrayDependence) {
  auto mis = parse_mis({"A[i] = A[i - 1] + A[i - 2];"});
  Ddg g = build_ddg(ptrs(mis), "i");
  // Self flow edge with distances {1, 2} (multiple pairs, §3.6).
  const DepEdge* self = nullptr;
  for (const DepEdge& e : g.edges)
    if (e.src == 0 && e.dst == 0 && e.kind == DepKind::Flow) self = &e;
  ASSERT_NE(self, nullptr);
  ASSERT_EQ(self->distances.size(), 2u);
  EXPECT_EQ(self->distances[0].distance, 1);
  EXPECT_EQ(self->distances[1].distance, 2);
}

TEST(Ddg, NoDependenceBetweenDistinctArrays) {
  auto mis = parse_mis({"A[i] = B[i] * 2;", "C[i] = D[i] + 1;"});
  Ddg g = build_ddg(ptrs(mis), "i");
  EXPECT_TRUE(g.edges.empty()) << g.dump();
}

TEST(Ddg, OpaqueCallIsBarrier) {
  auto mis = parse_mis({"A[i] = B[i];", "frobnicate(A[i]);"});
  Ddg g = build_ddg(ptrs(mis), "i");
  // The call node must be ordered against the other MI in both directions.
  EXPECT_FALSE(g.edges_between(0, 1).empty());
  EXPECT_FALSE(g.edges_between(1, 0).empty());
}

TEST(Ddg, GuardReadsArePartOfTheGraph) {
  auto mis = parse_mis({"c = x < y;", "x = x + 1;"});
  auto* second = dyn_cast<AssignStmt>(mis[1].get());
  second->guard = build::var("c");
  Ddg g = build_ddg(ptrs(mis), "i");
  bool pred_flow = false;
  for (const DepEdge& e : g.edges)
    if (e.var == "c" && e.kind == DepKind::Flow && e.src == 0 && e.dst == 1)
      pred_flow = true;
  EXPECT_TRUE(pred_flow) << g.dump();
}

// ---------------------------------------------------------------------------
// edge cases: negative strides, non-unit coefficients, symbolic bounds
// ---------------------------------------------------------------------------

ArrayAccess access_at(const char* stmt, std::size_t index = 0) {
  static std::vector<StmtPtr> keep_alive;
  keep_alive.push_back(parse_stmt_or_die(stmt));
  auto set = collect_accesses(*keep_alive.back());
  return set.arrays.at(index);
}

TEST(LinearForm, NonUnitCoefficientsDistribute) {
  auto f = linearize(*parse_expr("3 * (2 * i - j) + 2 * i"));
  EXPECT_TRUE(f.exact);
  EXPECT_EQ(f.coeff_of("i"), 8);
  EXPECT_EQ(f.coeff_of("j"), -3);
  EXPECT_EQ(f.constant, 0);

  f = linearize(*parse_expr("(i + 2) * 4 - 1"));
  EXPECT_TRUE(f.exact);
  EXPECT_EQ(f.coeff_of("i"), 4);
  EXPECT_EQ(f.constant, 7);
}

TEST(LinearForm, SymbolicResidueComparison) {
  // Symbolic bound terms like `n` must cancel only when identical.
  auto a = linearize(*parse_expr("i + n - 1"));
  auto b = linearize(*parse_expr("i + n"));
  auto c = linearize(*parse_expr("i + m"));
  EXPECT_TRUE(a.exact);
  EXPECT_TRUE(a.same_residue(b, "i"));
  EXPECT_FALSE(a.same_residue(c, "i"));
  EXPECT_EQ(a.coeff_of("n"), 1);
  EXPECT_EQ(a.constant, -1);
}

TEST(DepTest, NegativeStrideCarriedDistance) {
  // Down-counting loop: iv visits lo, lo-1, ... so the cell A[i-1] is
  // one the loop has NOT written yet — the write A[i] reaches it one
  // iteration later. The flow direction of the up-counting stencil turns
  // into a read-before-write (distance -1 from the write's viewpoint).
  auto w = access_at("A[i] = 1.0;");
  auto r = access_at("x = A[i - 1];");
  DepTestResult res = test_dependence(w, r, "i", -1);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, -1);

  // From the read's viewpoint the write lands one iteration later.
  res = test_dependence(r, w, "i", -1);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, 1);
}

TEST(DepTest, NonUnitCoefficientWithWideStep) {
  // Subscript advances coef*step = 4 per iteration; a lag of 4 elements
  // is exactly one iteration.
  auto w = access_at("A[2 * i] = 1.0;");
  auto r = access_at("x = A[2 * i - 4];");
  DepTestResult res = test_dependence(w, r, "i", 2);
  ASSERT_EQ(res.kind, DepTestResult::Kind::Distance);
  EXPECT_EQ(res.distance, 1);

  // A lag that is not a multiple of coef*step can never collide.
  auto r2 = access_at("x = A[2 * i - 3];");
  EXPECT_EQ(test_dependence(w, r2, "i", 2).kind,
            DepTestResult::Kind::Independent);
}

TEST(DepTest, SymbolicBoundResidueBlocksExactAnswer) {
  // A[i] vs A[i + n]: the symbolic offset is loop-invariant but unknown,
  // so the tester must refuse to produce an exact distance.
  auto w = access_at("A[i] = 1.0;");
  auto r = access_at("x = A[i + n];");
  EXPECT_EQ(test_dependence(w, r, "i", 1).kind,
            DepTestResult::Kind::Unknown);
}

TEST(DirectionVector, NegativeOuterStride) {
  // Down-counting outer loop: the row a[i-1] is visited one outer
  // iteration earlier, so the raw (unflipped) outer component is -1.
  auto w = access_at("a[i][j] = 1.0;");
  auto r = access_at("x = a[i - 1][j];");
  auto v = direction_vector(w, r, "i", "j", -1, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->first.kind, DirComponent::Kind::Exact);
  EXPECT_EQ(v->first.value, -1);
  EXPECT_TRUE(v->second.exactly_zero());
}

TEST(DirectionVector, BothStridesNegativeFlipsBack) {
  // (i+1, j-1) lag under (-1, -1) strides: outer -1, inner +1 in
  // iteration space — lexicographically negative, so the flipped vector
  // (+1, -1) blocks interchange exactly as in the positive-stride case.
  auto w = access_at("a[i + 1][j - 1] = 1.0;");
  auto r = access_at("x = a[i][j];");
  auto v = direction_vector(w, r, "i", "j", -1, -1);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(blocks_interchange(*v));
}

}  // namespace
}  // namespace slc
