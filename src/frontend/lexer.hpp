// Hand-written lexer for the mini-C loop dialect. Supports `//` and
// `/* */` comments.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace slc::frontend {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Tokenizes the whole input. The last token is always TokenKind::End.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  [[nodiscard]] Token next();
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char expected);
  void skip_trivia();
  [[nodiscard]] SourceLoc here() const { return {line_, column_}; }

  std::string_view src_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace slc::frontend
