// Token definitions for the mini-C loop dialect.
#pragma once

#include <cstdint>
#include <string>

#include "support/source_location.hpp"

namespace slc::frontend {

enum class TokenKind : std::uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // keywords
  KwInt,
  KwFloat,
  KwDouble,
  KwBool,
  KwFor,
  KwWhile,
  KwIf,
  KwElse,
  KwBreak,
  KwTrue,
  KwFalse,
  // punctuation / operators
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Assign,       // =
  PlusAssign,   // +=
  MinusAssign,  // -=
  StarAssign,   // *=
  SlashAssign,  // /=
  PlusPlus,     // ++
  MinusMinus,   // --
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Not,
  Question,
  Colon,
};

[[nodiscard]] const char* to_string(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::End;
  SourceLoc loc;
  std::string text;        // identifier spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
};

}  // namespace slc::frontend
