#include "frontend/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace slc::frontend {

const char* to_string(TokenKind k) {
  switch (k) {
    case TokenKind::End: return "<eof>";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwBool: return "'bool'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Comma: return "','";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Assign: return "'='";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::StarAssign: return "'*='";
    case TokenKind::SlashAssign: return "'/='";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::Lt: return "'<'";
    case TokenKind::Le: return "'<='";
    case TokenKind::Gt: return "'>'";
    case TokenKind::Ge: return "'>='";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::AndAnd: return "'&&'";
    case TokenKind::OrOr: return "'||'";
    case TokenKind::Not: return "'!'";
    case TokenKind::Question: return "'?'";
    case TokenKind::Colon: return "':'";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> kw = {
      {"int", TokenKind::KwInt},       {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble}, {"bool", TokenKind::KwBool},
      {"for", TokenKind::KwFor},       {"while", TokenKind::KwWhile},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"break", TokenKind::KwBreak},   {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  return kw;
}
}  // namespace

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : src_(source), diags_(diags) {}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    Token t = next();
    bool end = t.kind == TokenKind::End;
    tokens.push_back(std::move(t));
    if (end) break;
  }
  return tokens;
}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_trivia() {
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error("parse-syntax", here(), "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skip_trivia();
  Token t;
  t.loc = here();
  if (pos_ >= src_.size()) {
    t.kind = TokenKind::End;
    return t;
  }

  char c = advance();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string ident(1, c);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      ident.push_back(advance());
    if (auto it = keywords().find(ident); it != keywords().end()) {
      t.kind = it->second;
    } else {
      t.kind = TokenKind::Identifier;
      t.text = std::move(ident);
    }
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num(1, c);
    while (std::isdigit(static_cast<unsigned char>(peek())))
      num.push_back(advance());
    bool is_float = false;
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      num.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek())))
        num.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t save = pos_;
      std::string exp(1, advance());
      if (peek() == '+' || peek() == '-') exp.push_back(advance());
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        is_float = true;
        while (std::isdigit(static_cast<unsigned char>(peek())))
          exp.push_back(advance());
        num += exp;
      } else {
        pos_ = save;  // not an exponent after all
      }
    }
    if (is_float) {
      t.kind = TokenKind::FloatLiteral;
      t.float_value = std::stod(num);
    } else {
      t.kind = TokenKind::IntLiteral;
      std::from_chars(num.data(), num.data() + num.size(), t.int_value);
    }
    return t;
  }

  switch (c) {
    case '(': t.kind = TokenKind::LParen; return t;
    case ')': t.kind = TokenKind::RParen; return t;
    case '{': t.kind = TokenKind::LBrace; return t;
    case '}': t.kind = TokenKind::RBrace; return t;
    case '[': t.kind = TokenKind::LBracket; return t;
    case ']': t.kind = TokenKind::RBracket; return t;
    case ';': t.kind = TokenKind::Semicolon; return t;
    case ',': t.kind = TokenKind::Comma; return t;
    case '?': t.kind = TokenKind::Question; return t;
    case ':': t.kind = TokenKind::Colon; return t;
    case '+':
      t.kind = match('+') ? TokenKind::PlusPlus
               : match('=') ? TokenKind::PlusAssign
                            : TokenKind::Plus;
      return t;
    case '-':
      t.kind = match('-') ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusAssign
                            : TokenKind::Minus;
      return t;
    case '*':
      t.kind = match('=') ? TokenKind::StarAssign : TokenKind::Star;
      return t;
    case '/':
      t.kind = match('=') ? TokenKind::SlashAssign : TokenKind::Slash;
      return t;
    case '%': t.kind = TokenKind::Percent; return t;
    case '=':
      t.kind = match('=') ? TokenKind::EqEq : TokenKind::Assign;
      return t;
    case '<':
      t.kind = match('=') ? TokenKind::Le : TokenKind::Lt;
      return t;
    case '>':
      t.kind = match('=') ? TokenKind::Ge : TokenKind::Gt;
      return t;
    case '!':
      t.kind = match('=') ? TokenKind::NotEq : TokenKind::Not;
      return t;
    case '&':
      if (match('&')) {
        t.kind = TokenKind::AndAnd;
        return t;
      }
      diags_.error("parse-syntax", t.loc, "expected '&&'");
      t.kind = TokenKind::End;
      return t;
    case '|':
      if (match('|')) {
        t.kind = TokenKind::OrOr;
        return t;
      }
      diags_.error("parse-syntax", t.loc, "expected '||'");
      t.kind = TokenKind::End;
      return t;
    default:
      diags_.error("parse-syntax", t.loc, std::string("unexpected character '") + c + "'");
      t.kind = TokenKind::End;
      return t;
  }
}

}  // namespace slc::frontend
