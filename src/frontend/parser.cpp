#include "frontend/parser.hpp"

#include "ast/build.hpp"
#include "frontend/lexer.hpp"

namespace slc::frontend {

using namespace ast;

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty()) tokens_.push_back(Token{});  // guarantee End sentinel
}

const Token& Parser::peek(std::size_t ahead) const {
  std::size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind k) {
  if (!check(k)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind k, const char* context) {
  if (check(k)) return advance();
  diags_.error("parse-syntax", peek().loc, std::string("expected ") + to_string(k) +
                               " in " + context + ", found " +
                               to_string(peek().kind));
  return peek();
}

Program Parser::parse_program() {
  Program p;
  while (!at_end() && !diags_.has_errors()) {
    StmtPtr s = statement();
    if (!s) break;
    p.stmts.push_back(std::move(s));
  }
  return p;
}

StmtPtr Parser::parse_single_statement() { return statement(); }

namespace {
bool is_type_keyword(TokenKind k) {
  return k == TokenKind::KwInt || k == TokenKind::KwFloat ||
         k == TokenKind::KwDouble || k == TokenKind::KwBool;
}
ScalarType to_scalar_type(TokenKind k) {
  switch (k) {
    case TokenKind::KwInt: return ScalarType::Int;
    case TokenKind::KwFloat: return ScalarType::Float;
    case TokenKind::KwDouble: return ScalarType::Double;
    default: return ScalarType::Bool;
  }
}
}  // namespace

StmtPtr Parser::statement() {
  if (diags_.has_errors()) return nullptr;
  const Token& t = peek();
  if (is_type_keyword(t.kind)) return declaration();
  switch (t.kind) {
    case TokenKind::LBrace:
      return block();
    case TokenKind::KwIf:
      return if_statement();
    case TokenKind::KwFor:
      return for_statement();
    case TokenKind::KwWhile:
      return while_statement();
    case TokenKind::KwBreak: {
      SourceLoc loc = advance().loc;
      expect(TokenKind::Semicolon, "break statement");
      return std::make_unique<BreakStmt>(loc);
    }
    default: {
      StmtPtr s = simple_statement();
      expect(TokenKind::Semicolon, "statement");
      return s;
    }
  }
}

StmtPtr Parser::declaration() {
  const Token& type_tok = advance();
  ScalarType type = to_scalar_type(type_tok.kind);
  const Token& name = expect(TokenKind::Identifier, "declaration");
  std::vector<std::int64_t> dims;
  while (accept(TokenKind::LBracket)) {
    const Token& dim = expect(TokenKind::IntLiteral, "array dimension");
    dims.push_back(dim.int_value);
    expect(TokenKind::RBracket, "array dimension");
  }
  ExprPtr init;
  if (accept(TokenKind::Assign)) {
    if (!dims.empty())
      diags_.error("parse-syntax", peek().loc, "array initializers are not supported");
    init = expression();
  }
  expect(TokenKind::Semicolon, "declaration");
  return std::make_unique<DeclStmt>(type, name.text, std::move(dims),
                                    std::move(init), type_tok.loc);
}

StmtPtr Parser::block() {
  SourceLoc loc = expect(TokenKind::LBrace, "block").loc;
  std::vector<StmtPtr> stmts;
  while (!check(TokenKind::RBrace) && !at_end() && !diags_.has_errors())
    stmts.push_back(statement());
  expect(TokenKind::RBrace, "block");
  return std::make_unique<BlockStmt>(std::move(stmts), loc);
}

StmtPtr Parser::if_statement() {
  SourceLoc loc = advance().loc;  // 'if'
  expect(TokenKind::LParen, "if condition");
  ExprPtr cond = expression();
  expect(TokenKind::RParen, "if condition");
  StmtPtr then_stmt = statement();
  StmtPtr else_stmt;
  if (accept(TokenKind::KwElse)) else_stmt = statement();
  return std::make_unique<IfStmt>(std::move(cond), std::move(then_stmt),
                                  std::move(else_stmt), loc);
}

StmtPtr Parser::for_statement() {
  SourceLoc loc = advance().loc;  // 'for'
  expect(TokenKind::LParen, "for header");
  StmtPtr init;
  if (!check(TokenKind::Semicolon)) {
    if (is_type_keyword(peek().kind)) {
      // `for (int i = 0; ...)` — declaration consumes its own ';'.
      init = declaration();
    } else {
      init = simple_statement();
      expect(TokenKind::Semicolon, "for header");
    }
  } else {
    advance();
  }
  ExprPtr cond;
  if (!check(TokenKind::Semicolon)) cond = expression();
  expect(TokenKind::Semicolon, "for header");
  StmtPtr step;
  if (!check(TokenKind::RParen)) step = simple_statement();
  expect(TokenKind::RParen, "for header");
  StmtPtr body = statement();
  if (body && body->kind() != StmtKind::Block) {
    std::vector<StmtPtr> ss;
    ss.push_back(std::move(body));
    body = std::make_unique<BlockStmt>(std::move(ss));
  }
  return std::make_unique<ForStmt>(std::move(init), std::move(cond),
                                   std::move(step), std::move(body), loc);
}

StmtPtr Parser::while_statement() {
  SourceLoc loc = advance().loc;  // 'while'
  expect(TokenKind::LParen, "while condition");
  ExprPtr cond = expression();
  expect(TokenKind::RParen, "while condition");
  StmtPtr body = statement();
  if (body && body->kind() != StmtKind::Block) {
    std::vector<StmtPtr> ss;
    ss.push_back(std::move(body));
    body = std::make_unique<BlockStmt>(std::move(ss));
  }
  return std::make_unique<WhileStmt>(std::move(cond), std::move(body), loc);
}

StmtPtr Parser::simple_statement() {
  ExprPtr e = expression();
  SourceLoc loc = e ? e->loc : peek().loc;

  auto is_lvalue = [](const Expr& x) {
    return x.kind() == ExprKind::VarRef || x.kind() == ExprKind::ArrayRef;
  };

  const Token& t = peek();
  AssignOp op;
  switch (t.kind) {
    case TokenKind::Assign: op = AssignOp::Set; break;
    case TokenKind::PlusAssign: op = AssignOp::Add; break;
    case TokenKind::MinusAssign: op = AssignOp::Sub; break;
    case TokenKind::StarAssign: op = AssignOp::Mul; break;
    case TokenKind::SlashAssign: op = AssignOp::Div; break;
    case TokenKind::PlusPlus:
    case TokenKind::MinusMinus: {
      advance();
      if (!is_lvalue(*e)) {
        diags_.error("parse-syntax", loc, "'++'/'--' requires a variable or array element");
        return std::make_unique<ExprStmt>(std::move(e), loc);
      }
      AssignOp inc =
          t.kind == TokenKind::PlusPlus ? AssignOp::Add : AssignOp::Sub;
      return std::make_unique<AssignStmt>(std::move(e), inc, build::lit(1),
                                          loc);
    }
    default:
      return std::make_unique<ExprStmt>(std::move(e), loc);
  }
  advance();
  if (!is_lvalue(*e))
    diags_.error("parse-syntax", loc, "assignment target must be a variable or array element");
  ExprPtr rhs = expression();
  return std::make_unique<AssignStmt>(std::move(e), op, std::move(rhs), loc);
}

ExprPtr Parser::expression() { return ternary(); }

ExprPtr Parser::ternary() {
  ExprPtr cond = logical_or();
  if (!accept(TokenKind::Question)) return cond;
  ExprPtr then_e = ternary();
  expect(TokenKind::Colon, "conditional expression");
  ExprPtr else_e = ternary();
  SourceLoc loc = cond ? cond->loc : SourceLoc{};
  return std::make_unique<Conditional>(std::move(cond), std::move(then_e),
                                       std::move(else_e), loc);
}

ExprPtr Parser::logical_or() {
  ExprPtr lhs = logical_and();
  while (check(TokenKind::OrOr)) {
    SourceLoc loc = advance().loc;
    ExprPtr rhs = logical_and();
    lhs = std::make_unique<Binary>(BinaryOp::Or, std::move(lhs),
                                   std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::logical_and() {
  ExprPtr lhs = equality();
  while (check(TokenKind::AndAnd)) {
    SourceLoc loc = advance().loc;
    ExprPtr rhs = equality();
    lhs = std::make_unique<Binary>(BinaryOp::And, std::move(lhs),
                                   std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::equality() {
  ExprPtr lhs = relational();
  while (check(TokenKind::EqEq) || check(TokenKind::NotEq)) {
    BinaryOp op =
        peek().kind == TokenKind::EqEq ? BinaryOp::Eq : BinaryOp::Ne;
    SourceLoc loc = advance().loc;
    ExprPtr rhs = relational();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
  return lhs;
}

ExprPtr Parser::relational() {
  ExprPtr lhs = additive();
  for (;;) {
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::Lt: op = BinaryOp::Lt; break;
      case TokenKind::Le: op = BinaryOp::Le; break;
      case TokenKind::Gt: op = BinaryOp::Gt; break;
      case TokenKind::Ge: op = BinaryOp::Ge; break;
      default: return lhs;
    }
    SourceLoc loc = advance().loc;
    ExprPtr rhs = additive();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr Parser::additive() {
  ExprPtr lhs = multiplicative();
  for (;;) {
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::Plus: op = BinaryOp::Add; break;
      case TokenKind::Minus: op = BinaryOp::Sub; break;
      default: return lhs;
    }
    SourceLoc loc = advance().loc;
    ExprPtr rhs = multiplicative();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr Parser::multiplicative() {
  ExprPtr lhs = unary();
  for (;;) {
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::Star: op = BinaryOp::Mul; break;
      case TokenKind::Slash: op = BinaryOp::Div; break;
      case TokenKind::Percent: op = BinaryOp::Mod; break;
      default: return lhs;
    }
    SourceLoc loc = advance().loc;
    ExprPtr rhs = unary();
    lhs = std::make_unique<Binary>(op, std::move(lhs), std::move(rhs), loc);
  }
}

ExprPtr Parser::unary() {
  if (check(TokenKind::Minus)) {
    SourceLoc loc = advance().loc;
    return std::make_unique<Unary>(UnaryOp::Neg, unary(), loc);
  }
  if (check(TokenKind::Not)) {
    SourceLoc loc = advance().loc;
    return std::make_unique<Unary>(UnaryOp::Not, unary(), loc);
  }
  return primary();
}

ExprPtr Parser::primary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::IntLiteral:
      advance();
      return std::make_unique<IntLit>(t.int_value, t.loc);
    case TokenKind::FloatLiteral:
      advance();
      return std::make_unique<FloatLit>(t.float_value, t.loc);
    case TokenKind::KwTrue:
      advance();
      return std::make_unique<BoolLit>(true, t.loc);
    case TokenKind::KwFalse:
      advance();
      return std::make_unique<BoolLit>(false, t.loc);
    case TokenKind::LParen: {
      advance();
      ExprPtr e = expression();
      expect(TokenKind::RParen, "parenthesized expression");
      return e;
    }
    case TokenKind::Identifier: {
      advance();
      if (check(TokenKind::LParen)) {
        advance();
        std::vector<ExprPtr> args;
        if (!check(TokenKind::RParen)) {
          args.push_back(expression());
          while (accept(TokenKind::Comma)) args.push_back(expression());
        }
        expect(TokenKind::RParen, "call");
        return std::make_unique<Call>(t.text, std::move(args), t.loc);
      }
      if (check(TokenKind::LBracket)) {
        std::vector<ExprPtr> subs;
        while (accept(TokenKind::LBracket)) {
          subs.push_back(expression());
          expect(TokenKind::RBracket, "array subscript");
        }
        return std::make_unique<ArrayRef>(t.text, std::move(subs), t.loc);
      }
      return std::make_unique<VarRef>(t.text, t.loc);
    }
    default:
      diags_.error("parse-syntax", t.loc, std::string("expected expression, found ") +
                              to_string(t.kind));
      advance();
      return std::make_unique<IntLit>(0, t.loc);
  }
}

Program parse_program(std::string_view source, DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  return parser.parse_program();
}

StmtPtr parse_statement(std::string_view source, DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.tokenize(), diags);
  return parser.parse_single_statement();
}

}  // namespace slc::frontend
