// Recursive-descent parser producing the slc AST.
//
// Grammar (mini-C loop dialect):
//   program  := stmt*
//   stmt     := decl | block | if | for | while | 'break' ';' | simple ';'
//   decl     := type ident ('[' INT ']')* ('=' expr)? ';'
//   simple   := lvalue assign-op expr | lvalue '++' | lvalue '--' | expr
//   for      := 'for' '(' simple? ';' expr? ';' simple? ')' stmt
//   while    := 'while' '(' expr ')' stmt
//   expr     := ternary with C precedence (no comma operator)
//
// `i++` / `i--` desugar to `i += 1` / `i -= 1`.
#pragma once

#include <string_view>

#include "ast/ast.hpp"
#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace slc::frontend {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses a whole program. On error, diagnostics are recorded and the
  /// best-effort partial program is returned; callers must check
  /// diags.has_errors().
  [[nodiscard]] ast::Program parse_program();

  /// Parses a single statement (convenience for tests).
  [[nodiscard]] ast::StmtPtr parse_single_statement();

 private:
  // statements
  ast::StmtPtr statement();
  ast::StmtPtr declaration();
  ast::StmtPtr block();
  ast::StmtPtr if_statement();
  ast::StmtPtr for_statement();
  ast::StmtPtr while_statement();
  ast::StmtPtr simple_statement();  // no trailing ';'

  // expressions, by precedence
  ast::ExprPtr expression();
  ast::ExprPtr ternary();
  ast::ExprPtr logical_or();
  ast::ExprPtr logical_and();
  ast::ExprPtr equality();
  ast::ExprPtr relational();
  ast::ExprPtr additive();
  ast::ExprPtr multiplicative();
  ast::ExprPtr unary();
  ast::ExprPtr primary();

  // helpers
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  [[nodiscard]] bool check(TokenKind k) const { return peek().kind == k; }
  bool accept(TokenKind k);
  const Token& expect(TokenKind k, const char* context);
  const Token& advance();
  [[nodiscard]] bool at_end() const { return check(TokenKind::End); }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
};

/// One-call helpers: lex + parse.
[[nodiscard]] ast::Program parse_program(std::string_view source,
                                         DiagnosticEngine& diags);
[[nodiscard]] ast::StmtPtr parse_statement(std::string_view source,
                                           DiagnosticEngine& diags);

}  // namespace slc::frontend
