#include "native/codegen.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace slc::native {

namespace {

using namespace ast;

/// Internal control flow for "this program cannot be lowered soundly";
/// converted to CodegenResult.ok = false at the boundary.
struct Refusal : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void refuse(const std::string& why) { throw Refusal(why); }

const char* ctype(ScalarType t) {
  return is_floating(t) ? "double" : "long long";
}

std::string int_lit(std::int64_t v) {
  // INT64_MIN has no negative C literal; spell it as an expression.
  if (v == std::numeric_limits<std::int64_t>::min())
    return "(-9223372036854775807LL - 1)";
  if (v < 0) return "(" + std::to_string(v) + "LL)";
  return std::to_string(v) + "LL";
}

std::string double_lit(double v) {
  if (!std::isfinite(v)) refuse("non-finite float literal");
  // Hexfloat round-trips the exact bit pattern through the C compiler.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  std::string s(buf);
  if (v < 0 || (v == 0.0 && std::signbit(v))) s = "(" + s + ")";
  return s;
}

/// A flattened expression result: `text` is always a temp name, a
/// scalar local, or a parenthesized literal — safe to repeat.
struct Val {
  std::string text;
  ScalarType type = ScalarType::Int;

  [[nodiscard]] bool floating() const { return is_floating(type); }
};

class Emitter {
 public:
  explicit Emitter(const Program& program) : program_(program) {}

  CodegenResult run() {
    CodegenResult result;
    try {
      collect();
      std::ostringstream body;
      for (const StmtPtr& s : program_.stmts) emit_stmt(*s, body, "  ");
      result.c_source = assemble(body.str());
      result.manifest = std::move(manifest_);
      result.ok = true;
    } catch (const Refusal& r) {
      result.ok = false;
      result.reason = r.what();
    }
    return result;
  }

 private:
  // -- collection: slots, type consistency, fast/checked mode --------------

  void collect() {
    for (const StmtPtr& s : program_.stmts) collect_stmt(*s, /*top=*/true);
    for (const std::string& name : scalar_used_)
      if (!scalar_slot_.contains(name))
        refuse("scalar '" + name + "' is never declared");
    for (const std::string& name : array_used_)
      if (!array_slot_.contains(name))
        refuse("array '" + name + "' is never declared");
    decide_checked_mode();
  }

  void collect_stmt(const Stmt& s, bool top) {
    switch (s.kind()) {
      case StmtKind::Decl: {
        const auto* d = dyn_cast<DeclStmt>(&s);
        if (!top) has_nested_decl_ = true;
        if (d->is_array()) {
          std::int64_t n = 1;
          for (std::int64_t dim : d->dims) {
            if (dim <= 0) refuse("non-positive array dimension");
            if (n > (std::int64_t(1) << 24) / dim)
              refuse("array too large for the native oracle");
            n *= dim;
          }
          auto it = array_slot_.find(d->name);
          if (it == array_slot_.end()) {
            array_slot_.emplace(d->name, manifest_.arrays.size());
            manifest_.arrays.push_back({d->name, d->type, d->dims, n});
          } else {
            const ArraySlot& prev = manifest_.arrays[it->second];
            if (prev.type != d->type || prev.dims != d->dims)
              refuse("array '" + d->name + "' redeclared with a different "
                     "type or shape");
          }
        } else {
          auto it = scalar_slot_.find(d->name);
          if (it == scalar_slot_.end()) {
            scalar_slot_.emplace(d->name, manifest_.scalars.size());
            manifest_.scalars.push_back({d->name, d->type});
          } else if (manifest_.scalars[it->second].type != d->type) {
            refuse("scalar '" + d->name + "' redeclared with a different "
                   "type");
          }
          if (d->init) collect_expr(*d->init);
        }
        break;
      }
      case StmtKind::Assign: {
        const auto* a = dyn_cast<AssignStmt>(&s);
        if (a->guard) collect_expr(*a->guard);
        collect_expr(*a->rhs);
        collect_expr(*a->lhs);
        break;
      }
      case StmtKind::ExprStmt: {
        const auto* x = dyn_cast<ExprStmt>(&s);
        if (x->guard) collect_expr(*x->guard);
        collect_expr(*x->expr);
        break;
      }
      case StmtKind::Block:
        for (const StmtPtr& c : dyn_cast<BlockStmt>(&s)->stmts)
          collect_stmt(*c, false);
        break;
      case StmtKind::Parallel:
        for (const StmtPtr& c : dyn_cast<ParallelStmt>(&s)->stmts)
          collect_stmt(*c, false);
        break;
      case StmtKind::If: {
        const auto* i = dyn_cast<IfStmt>(&s);
        collect_expr(*i->cond);
        collect_stmt(*i->then_stmt, false);
        if (i->else_stmt) collect_stmt(*i->else_stmt, false);
        break;
      }
      case StmtKind::For: {
        const auto* f = dyn_cast<ForStmt>(&s);
        if (f->init) collect_stmt(*f->init, false);
        if (f->cond) collect_expr(*f->cond);
        if (f->step) collect_stmt(*f->step, false);
        collect_stmt(*f->body, false);
        break;
      }
      case StmtKind::While: {
        const auto* w = dyn_cast<WhileStmt>(&s);
        collect_expr(*w->cond);
        collect_stmt(*w->body, false);
        break;
      }
      case StmtKind::Break:
        break;
    }
  }

  void collect_expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::BoolLit:
        break;
      case ExprKind::VarRef:
        scalar_used_.insert(dyn_cast<VarRef>(&e)->name);
        break;
      case ExprKind::ArrayRef: {
        const auto* a = dyn_cast<ArrayRef>(&e);
        array_used_.insert(a->name);
        for (const ExprPtr& sub : a->subscripts) collect_expr(*sub);
        break;
      }
      case ExprKind::Binary: {
        const auto* b = dyn_cast<Binary>(&e);
        collect_expr(*b->lhs);
        collect_expr(*b->rhs);
        break;
      }
      case ExprKind::Unary:
        collect_expr(*dyn_cast<Unary>(&e)->operand);
        break;
      case ExprKind::Call:
        for (const ExprPtr& a : dyn_cast<Call>(&e)->args) collect_expr(*a);
        break;
      case ExprKind::Conditional: {
        const auto* c = dyn_cast<Conditional>(&e);
        collect_expr(*c->cond);
        collect_expr(*c->then_expr);
        collect_expr(*c->else_expr);
        break;
      }
    }
  }

  /// Fast mode (no per-access liveness checks) is sound when every
  /// declaration is a direct child of the program — top-level statements
  /// execute in textual order, so a pre-order ref-after-decl check
  /// proves no access can ever observe an undeclared variable. Anything
  /// subtler (decls inside loops/ifs, decl-as-for-init) runs in checked
  /// mode, which replicates interp's "use of undeclared" BadProgram
  /// abort at run time.
  void decide_checked_mode() {
    checked_ = has_nested_decl_;
    if (checked_) return;
    std::set<std::string> live_s, live_a;
    bool ordered = true;
    auto check_refs = [&](const Stmt& s) {
      walk_refs(s, [&](const std::string& n, bool arr) {
        if (arr ? !live_a.contains(n) : !live_s.contains(n)) ordered = false;
      });
    };
    for (const StmtPtr& s : program_.stmts) {
      if (const auto* d = dyn_cast<DeclStmt>(s.get())) {
        if (d->init)
          walk_expr_refs(*d->init, [&](const std::string& n, bool arr) {
            if (arr ? !live_a.contains(n) : !live_s.contains(n))
              ordered = false;
          });
        (d->is_array() ? live_a : live_s).insert(d->name);
      } else {
        check_refs(*s);
      }
      if (!ordered) break;
    }
    checked_ = !ordered;
  }

  template <class Fn>
  void walk_expr_refs(const Expr& e, const Fn& fn) {
    switch (e.kind()) {
      case ExprKind::VarRef: fn(dyn_cast<VarRef>(&e)->name, false); break;
      case ExprKind::ArrayRef: {
        const auto* a = dyn_cast<ArrayRef>(&e);
        fn(a->name, true);
        for (const ExprPtr& s : a->subscripts) walk_expr_refs(*s, fn);
        break;
      }
      case ExprKind::Binary: {
        const auto* b = dyn_cast<Binary>(&e);
        walk_expr_refs(*b->lhs, fn);
        walk_expr_refs(*b->rhs, fn);
        break;
      }
      case ExprKind::Unary:
        walk_expr_refs(*dyn_cast<Unary>(&e)->operand, fn);
        break;
      case ExprKind::Call:
        for (const ExprPtr& a : dyn_cast<Call>(&e)->args)
          walk_expr_refs(*a, fn);
        break;
      case ExprKind::Conditional: {
        const auto* c = dyn_cast<Conditional>(&e);
        walk_expr_refs(*c->cond, fn);
        walk_expr_refs(*c->then_expr, fn);
        walk_expr_refs(*c->else_expr, fn);
        break;
      }
      default: break;
    }
  }

  template <class Fn>
  void walk_refs(const Stmt& s, const Fn& fn) {
    switch (s.kind()) {
      case StmtKind::Decl:
        if (const auto* d = dyn_cast<DeclStmt>(&s); d->init)
          walk_expr_refs(*d->init, fn);
        break;
      case StmtKind::Assign: {
        const auto* a = dyn_cast<AssignStmt>(&s);
        if (a->guard) walk_expr_refs(*a->guard, fn);
        walk_expr_refs(*a->rhs, fn);
        walk_expr_refs(*a->lhs, fn);
        break;
      }
      case StmtKind::ExprStmt: {
        const auto* x = dyn_cast<ExprStmt>(&s);
        if (x->guard) walk_expr_refs(*x->guard, fn);
        walk_expr_refs(*x->expr, fn);
        break;
      }
      case StmtKind::Block:
        for (const StmtPtr& c : dyn_cast<BlockStmt>(&s)->stmts)
          walk_refs(*c, fn);
        break;
      case StmtKind::Parallel:
        for (const StmtPtr& c : dyn_cast<ParallelStmt>(&s)->stmts)
          walk_refs(*c, fn);
        break;
      case StmtKind::If: {
        const auto* i = dyn_cast<IfStmt>(&s);
        walk_expr_refs(*i->cond, fn);
        walk_refs(*i->then_stmt, fn);
        if (i->else_stmt) walk_refs(*i->else_stmt, fn);
        break;
      }
      case StmtKind::For: {
        const auto* f = dyn_cast<ForStmt>(&s);
        if (f->init) walk_refs(*f->init, fn);
        if (f->cond) walk_expr_refs(*f->cond, fn);
        if (f->step) walk_refs(*f->step, fn);
        walk_refs(*f->body, fn);
        break;
      }
      case StmtKind::While: {
        const auto* w = dyn_cast<WhileStmt>(&s);
        walk_expr_refs(*w->cond, fn);
        walk_refs(*w->body, fn);
        break;
      }
      case StmtKind::Break:
        break;
    }
  }

  // -- small emission helpers ----------------------------------------------

  std::string new_temp() { return "t" + std::to_string(temp_++); }

  static std::string as_double(const Val& v) {
    return v.floating() ? v.text : "(double)" + v.text;
  }
  static std::string as_int(const Val& v) {
    return v.floating() ? "(long long)" + v.text : v.text;
  }
  static std::string truthy(const Val& v) {
    return v.floating() ? "(" + v.text + " != 0.0)"
                        : "(" + v.text + " != 0)";
  }

  std::size_t scalar_of(const std::string& name) {
    auto it = scalar_slot_.find(name);
    if (it == scalar_slot_.end()) refuse("scalar '" + name + "' unknown");
    return it->second;
  }
  std::size_t array_of(const std::string& name) {
    auto it = array_slot_.find(name);
    if (it == array_slot_.end()) refuse("array '" + name + "' unknown");
    return it->second;
  }

  void live_check_scalar(std::size_t slot, std::ostream& os,
                         const std::string& ind) {
    if (checked_)
      os << ind << "if (!sc_live[" << slot << "]) slcnat_fail(ctx, 4);\n";
  }
  void live_check_array(std::size_t slot, std::ostream& os,
                        const std::string& ind) {
    if (checked_)
      os << ind << "if (!arr_live[" << slot << "]) slcnat_fail(ctx, 4);\n";
  }

  /// interp::Engine::coerce() — the value written into a scalar of
  /// declared type `to`.
  std::string coerced(const Val& v, ScalarType to) {
    switch (to) {
      case ScalarType::Int: return as_int(v);
      case ScalarType::Bool: return "(" + truthy(v) + " ? 1 : 0)";
      case ScalarType::Float: return "(double)(float)" + as_double(v);
      case ScalarType::Double: return as_double(v);
    }
    refuse("bad coercion target");
  }

  // -- expressions ----------------------------------------------------------

  Val emit_expr(const Expr& e, std::ostream& os, const std::string& ind) {
    switch (e.kind()) {
      case ExprKind::IntLit:
        return {int_lit(dyn_cast<IntLit>(&e)->value), ScalarType::Int};
      case ExprKind::FloatLit:
        return {double_lit(dyn_cast<FloatLit>(&e)->value),
                ScalarType::Double};
      case ExprKind::BoolLit:
        return {dyn_cast<BoolLit>(&e)->value ? "1LL" : "0LL",
                ScalarType::Bool};
      case ExprKind::VarRef: {
        const auto* v = dyn_cast<VarRef>(&e);
        std::size_t slot = scalar_of(v->name);
        live_check_scalar(slot, os, ind);
        return {"s" + std::to_string(slot), manifest_.scalars[slot].type};
      }
      case ExprKind::ArrayRef:
        return emit_array_load(*dyn_cast<ArrayRef>(&e), os, ind);
      case ExprKind::Binary:
        return emit_binary(*dyn_cast<Binary>(&e), os, ind);
      case ExprKind::Unary: {
        const auto* u = dyn_cast<Unary>(&e);
        Val v = emit_expr(*u->operand, os, ind);
        std::string t = new_temp();
        if (u->op == UnaryOp::Not) {
          os << ind << "const long long " << t << " = " << truthy(v)
             << " ? 0 : 1;\n";
          return {t, ScalarType::Bool};
        }
        if (v.floating()) {
          os << ind << "const double " << t << " = -(" << v.text << ");\n";
          return {t, v.type};
        }
        os << ind << "const long long " << t << " = -(" << v.text << ");\n";
        return {t, ScalarType::Int};
      }
      case ExprKind::Call:
        return emit_call(*dyn_cast<Call>(&e), os, ind);
      case ExprKind::Conditional: {
        const auto* c = dyn_cast<Conditional>(&e);
        std::string t = new_temp();
        std::ostringstream pre;
        Val cond = emit_expr(*c->cond, pre, ind + "  ");
        std::ostringstream thn, els;
        Val tv = emit_expr(*c->then_expr, thn, ind + "    ");
        Val ev = emit_expr(*c->else_expr, els, ind + "    ");
        ScalarType type = join_type(tv.type, ev.type,
                                    "conditional expression arms");
        os << ind << ctype(type) << " " << t << " = 0;\n"
           << ind << "{\n" << pre.str()
           << ind << "  if " << truthy(cond) << " {\n" << thn.str()
           << ind << "    " << t << " = " << tv.text << ";\n"
           << ind << "  } else {\n" << els.str()
           << ind << "    " << t << " = " << ev.text << ";\n"
           << ind << "  }\n" << ind << "}\n";
        return {t, type};
      }
    }
    refuse("unsupported expression kind");
  }

  /// Runtime type of conditional/min/max results depends on which
  /// operand is picked; lowering is only sound when the static join is
  /// exact. Int/Bool join to Int (identical arithmetic semantics);
  /// anything else mismatched is refused.
  ScalarType join_type(ScalarType a, ScalarType b, const char* what) {
    if (a == b) return a;
    if (!is_floating(a) && !is_floating(b)) return ScalarType::Int;
    refuse(std::string(what) + " mix " + to_string(a) + " and " +
           to_string(b) + " — runtime-dependent value type");
  }

  Val emit_binary(const Binary& b, std::ostream& os, const std::string& ind) {
    // Short-circuit forms replicate interp's lazy right operand:
    // And skips the rhs when the lhs is false (result 0), Or when the
    // lhs is true (result 1).
    if (b.op == BinaryOp::And || b.op == BinaryOp::Or) {
      std::string t = new_temp();
      std::ostringstream pre, rhs;
      Val l = emit_expr(*b.lhs, pre, ind + "  ");
      Val r = emit_expr(*b.rhs, rhs, ind + "    ");
      bool is_and = b.op == BinaryOp::And;
      os << ind << "long long " << t << " = 0;\n"
         << ind << "{\n" << pre.str()
         << ind << "  if (" << (is_and ? "!" : "") << truthy(l) << ") {\n"
         << ind << "    " << t << " = " << (is_and ? 0 : 1) << ";\n"
         << ind << "  } else {\n"
         << rhs.str()
         << ind << "    " << t << " = " << truthy(r) << " ? 1 : 0;\n"
         << ind << "  }\n" << ind << "}\n";
      return {t, ScalarType::Bool};
    }

    Val l = emit_expr(*b.lhs, os, ind);
    Val r = emit_expr(*b.rhs, os, ind);
    bool fp = l.floating() || r.floating();
    std::string t = new_temp();

    if (is_comparison(b.op)) {
      const char* op = b.op == BinaryOp::Lt   ? "<"
                       : b.op == BinaryOp::Le ? "<="
                       : b.op == BinaryOp::Gt ? ">"
                       : b.op == BinaryOp::Ge ? ">="
                       : b.op == BinaryOp::Eq ? "=="
                                              : "!=";
      std::string x = fp ? as_double(l) : as_int(l);
      std::string y = fp ? as_double(r) : as_int(r);
      os << ind << "const long long " << t << " = (" << x << " " << op
         << " " << y << ") ? 1 : 0;\n";
      return {t, ScalarType::Bool};
    }

    if (fp) {
      bool both_float =
          l.type == ScalarType::Float && r.type == ScalarType::Float;
      std::string x = as_double(l), y = as_double(r);
      std::string raw;
      switch (b.op) {
        case BinaryOp::Add: raw = x + " + " + y; break;
        case BinaryOp::Sub: raw = x + " - " + y; break;
        case BinaryOp::Mul: raw = x + " * " + y; break;
        case BinaryOp::Div: raw = x + " / " + y; break;
        case BinaryOp::Mod: raw = "fmod(" + x + ", " + y + ")"; break;
        default: refuse("bad fp op");
      }
      if (both_float) raw = "(double)(float)(" + raw + ")";
      os << ind << "const double " << t << " = " << raw << ";\n";
      return {t, both_float ? ScalarType::Float : ScalarType::Double};
    }

    std::string x = as_int(l), y = as_int(r);
    switch (b.op) {
      case BinaryOp::Add:
        os << ind << "const long long " << t << " = " << x << " + " << y
           << ";\n";
        break;
      case BinaryOp::Sub:
        os << ind << "const long long " << t << " = " << x << " - " << y
           << ";\n";
        break;
      case BinaryOp::Mul:
        os << ind << "const long long " << t << " = " << x << " * " << y
           << ";\n";
        break;
      case BinaryOp::Div:
        os << ind << "const long long " << t << " = slcnat_idiv(ctx, " << x
           << ", " << y << ");\n";
        break;
      case BinaryOp::Mod:
        os << ind << "const long long " << t << " = slcnat_imod(ctx, " << x
           << ", " << y << ");\n";
        break;
      default: refuse("bad int op");
    }
    return {t, ScalarType::Int};
  }

  Val emit_call(const Call& c, std::ostream& os, const std::string& ind) {
    auto need = [&](std::size_t n) {
      if (c.args.size() != n)
        refuse("intrinsic " + c.callee + " called with " +
               std::to_string(c.args.size()) + " args (wants " +
               std::to_string(n) + ")");
    };
    auto unary_libm = [&](const char* fn) {
      need(1);
      Val a = emit_expr(*c.args[0], os, ind);
      std::string t = new_temp();
      os << ind << "const double " << t << " = " << fn << "("
         << as_double(a) << ");\n";
      return Val{t, ScalarType::Double};
    };
    if (c.callee == "fabs") return unary_libm("fabs");
    if (c.callee == "sqrt") return unary_libm("sqrt");
    if (c.callee == "exp") return unary_libm("exp");
    if (c.callee == "log") return unary_libm("log");
    if (c.callee == "sin") return unary_libm("sin");
    if (c.callee == "cos") return unary_libm("cos");
    if (c.callee == "floor") return unary_libm("floor");
    if (c.callee == "ceil") return unary_libm("ceil");
    if (c.callee == "pow") {
      need(2);
      Val a = emit_expr(*c.args[0], os, ind);
      Val b = emit_expr(*c.args[1], os, ind);
      std::string t = new_temp();
      os << ind << "const double " << t << " = pow(" << as_double(a) << ", "
         << as_double(b) << ");\n";
      return {t, ScalarType::Double};
    }
    if (c.callee == "abs") {
      need(1);
      Val a = emit_expr(*c.args[0], os, ind);
      std::string v = new_temp(), t = new_temp();
      os << ind << "const long long " << v << " = " << as_int(a) << ";\n"
         << ind << "const long long " << t << " = (" << v << " < 0) ? -"
         << v << " : " << v << ";\n";
      return {t, ScalarType::Int};
    }
    if (c.callee == "min" || c.callee == "max") {
      need(2);
      Val a = emit_expr(*c.args[0], os, ind);
      Val b = emit_expr(*c.args[1], os, ind);
      ScalarType type = join_type(a.type, b.type, "min/max operands");
      const char* cmp = c.callee == "min" ? "<=" : ">=";
      std::string t = new_temp();
      if (is_floating(type)) {
        os << ind << "const double " << t << " = (" << a.text << " " << cmp
           << " " << b.text << ") ? " << a.text << " : " << b.text << ";\n";
      } else {
        os << ind << "const long long " << t << " = (" << as_int(a) << " "
           << cmp << " " << as_int(b) << ") ? " << as_int(a) << " : "
           << as_int(b) << ";\n";
      }
      return {t, type};
    }
    refuse("call to unknown function " + c.callee);
  }

  /// Subscript evaluation + bounds checks + row-major flattening,
  /// replicating interp's flat_index() (including its per-dim check
  /// shape and final flattened-range check). Returns the flat index
  /// temp.
  std::string emit_index(const ArrayRef& ref, const ArraySlot& slot,
                         std::ostream& os, const std::string& ind) {
    std::string flat = "0LL";
    for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
      Val idx = emit_expr(*ref.subscripts[d], os, ind);
      std::string ti = new_temp();
      os << ind << "const long long " << ti << " = " << as_int(idx)
         << ";\n";
      bool in_dims = d < slot.dims.size();
      os << ind << "if (ctx->check_bounds && (" << ti << " < 0";
      if (in_dims) os << " || " << ti << " >= " << int_lit(slot.dims[d]);
      os << ")) slcnat_fail(ctx, 2);\n";
      std::int64_t mult = in_dims ? slot.dims[d] : 1;
      flat = "(" + flat + " * " + int_lit(mult) + " + " + ti + ")";
    }
    std::string tf = new_temp();
    os << ind << "const long long " << tf << " = " << flat << ";\n"
       << ind << "if (ctx->check_bounds && (" << tf << " < 0 || " << tf
       << " >= " << int_lit(slot.size) << ")) slcnat_fail(ctx, 2);\n";
    return tf;
  }

  Val emit_array_load(const ArrayRef& ref, std::ostream& os,
                      const std::string& ind) {
    std::size_t s = array_of(ref.name);
    const ArraySlot& slot = manifest_.arrays[s];
    live_check_array(s, os, ind);
    std::string tf = emit_index(ref, slot, os, ind);
    std::string t = new_temp();
    std::string a = "a" + std::to_string(s);
    if (is_floating(slot.type)) {
      os << ind << "const double " << t << " = " << a << "[" << tf
         << "];\n";
      return {t, slot.type};
    }
    if (slot.type == ScalarType::Bool) {
      os << ind << "const long long " << t << " = (" << a << "[" << tf
         << "] != 0) ? 1 : 0;\n";
      return {t, ScalarType::Bool};
    }
    os << ind << "const long long " << t << " = " << a << "[" << tf
       << "];\n";
    return {t, ScalarType::Int};
  }

  void emit_array_store(const ArraySlot& slot, std::size_t s,
                        const std::string& tf, const Val& v,
                        std::ostream& os, const std::string& ind) {
    std::string a = "a" + std::to_string(s);
    switch (slot.type) {
      case ScalarType::Float:
        os << ind << a << "[" << tf << "] = (double)(float)" << as_double(v)
           << ";\n";
        break;
      case ScalarType::Double:
        os << ind << a << "[" << tf << "] = " << as_double(v) << ";\n";
        break;
      case ScalarType::Bool:
        os << ind << a << "[" << tf << "] = " << truthy(v) << " ? 1 : 0;\n";
        break;
      case ScalarType::Int:
        os << ind << a << "[" << tf << "] = " << as_int(v) << ";\n";
        break;
    }
  }

  /// interp::Engine::apply() — compound-assignment arithmetic (no Mod).
  Val emit_apply(AssignOp op, const Val& cur, const Val& rhs,
                 std::ostream& os, const std::string& ind) {
    bool fp = cur.floating() || rhs.floating();
    std::string t = new_temp();
    if (fp) {
      bool both_float = cur.type == ScalarType::Float &&
                        rhs.type == ScalarType::Float;
      std::string x = as_double(cur), y = as_double(rhs);
      std::string raw;
      switch (op) {
        case AssignOp::Add: raw = x + " + " + y; break;
        case AssignOp::Sub: raw = x + " - " + y; break;
        case AssignOp::Mul: raw = x + " * " + y; break;
        case AssignOp::Div: raw = x + " / " + y; break;
        default: refuse("bad compound op");
      }
      if (both_float) raw = "(double)(float)(" + raw + ")";
      os << ind << "const double " << t << " = " << raw << ";\n";
      return {t, both_float ? ScalarType::Float : ScalarType::Double};
    }
    std::string x = as_int(cur), y = as_int(rhs);
    switch (op) {
      case AssignOp::Add:
        os << ind << "const long long " << t << " = " << x << " + " << y
           << ";\n";
        break;
      case AssignOp::Sub:
        os << ind << "const long long " << t << " = " << x << " - " << y
           << ";\n";
        break;
      case AssignOp::Mul:
        os << ind << "const long long " << t << " = " << x << " * " << y
           << ";\n";
        break;
      case AssignOp::Div:
        os << ind << "const long long " << t << " = slcnat_idiv(ctx, " << x
           << ", " << y << ");\n";
        break;
      default: refuse("bad compound op");
    }
    return {t, ScalarType::Int};
  }

  // -- statements -----------------------------------------------------------

  void emit_stmt(const Stmt& s, std::ostream& os, const std::string& ind) {
    os << ind << "{\n";
    std::string in = ind + "  ";
    os << in << "SLCNAT_STEP();\n";
    switch (s.kind()) {
      case StmtKind::Decl:
        emit_decl(*dyn_cast<DeclStmt>(&s), os, in);
        break;
      case StmtKind::Assign:
        emit_assign(*dyn_cast<AssignStmt>(&s), os, in);
        break;
      case StmtKind::ExprStmt: {
        const auto* x = dyn_cast<ExprStmt>(&s);
        if (x->guard) {
          Val g = emit_expr(*x->guard, os, in);
          os << in << "if " << truthy(g) << " {\n";
          (void)emit_expr(*x->expr, os, in + "  ");
          os << in << "}\n";
        } else {
          (void)emit_expr(*x->expr, os, in);
        }
        break;
      }
      case StmtKind::Block:
        for (const StmtPtr& c : dyn_cast<BlockStmt>(&s)->stmts)
          emit_stmt(*c, os, in);
        break;
      case StmtKind::Parallel:
        // Sequential, exactly like the interpreter (paper §3: `||` rows
        // must stay valid sequential C).
        for (const StmtPtr& c : dyn_cast<ParallelStmt>(&s)->stmts)
          emit_stmt(*c, os, in);
        break;
      case StmtKind::If: {
        const auto* i = dyn_cast<IfStmt>(&s);
        Val c = emit_expr(*i->cond, os, in);
        os << in << "if " << truthy(c) << " {\n";
        emit_stmt(*i->then_stmt, os, in + "  ");
        os << in << "}";
        if (i->else_stmt) {
          os << " else {\n";
          emit_stmt(*i->else_stmt, os, in + "  ");
          os << in << "}";
        }
        os << "\n";
        break;
      }
      case StmtKind::For: {
        const auto* f = dyn_cast<ForStmt>(&s);
        if (f->init) emit_stmt(*f->init, os, in);
        os << in << "for (;;) {\n";
        std::string li = in + "  ";
        if (f->cond) {
          Val c = emit_expr(*f->cond, os, li);
          os << li << "if (!" << truthy(c) << ") break;\n";
        }
        os << li << "SLCNAT_STEP();\n";
        ++loop_depth_;
        emit_stmt(*f->body, os, li);
        if (f->step) emit_stmt(*f->step, os, li);
        --loop_depth_;
        os << in << "}\n";
        break;
      }
      case StmtKind::While: {
        const auto* w = dyn_cast<WhileStmt>(&s);
        os << in << "for (;;) {\n";
        std::string li = in + "  ";
        Val c = emit_expr(*w->cond, os, li);
        os << li << "if (!" << truthy(c) << ") break;\n";
        os << li << "SLCNAT_STEP();\n";
        ++loop_depth_;
        emit_stmt(*w->body, os, li);
        --loop_depth_;
        os << in << "}\n";
        break;
      }
      case StmtKind::Break:
        if (loop_depth_ == 0) refuse("break outside of loop");
        os << in << "break;\n";
        break;
    }
    os << ind << "}\n";
  }

  void emit_decl(const DeclStmt& d, std::ostream& os, const std::string& in) {
    if (d.is_array()) {
      std::size_t s = array_of(d.name);
      // Host buffers are prefilled; a (re-)executed decl only marks the
      // array live (interp skips refilling a re-entered decl).
      if (checked_) os << in << "arr_live[" << s << "] = 1;\n";
      return;
    }
    std::size_t s = scalar_of(d.name);
    std::string var = "s" + std::to_string(s);
    if (d.init) {
      Val v = emit_expr(*d.init, os, in);
      os << in << var << " = " << coerced(v, d.type) << ";\n";
    } else {
      std::string idx = std::to_string(s);
      switch (d.type) {
        case ScalarType::Int:
          os << in << var << " = isc_fill[" << idx << "];\n";
          break;
        case ScalarType::Bool:
          os << in << var << " = ((isc_fill[" << idx
             << "] % 2) != 0) ? 1 : 0;\n";
          break;
        case ScalarType::Float:
          os << in << var << " = (double)(float)fsc_fill[" << idx << "];\n";
          break;
        case ScalarType::Double:
          os << in << var << " = fsc_fill[" << idx << "];\n";
          break;
      }
    }
    if (checked_) os << in << "sc_live[" << s << "] = 1;\n";
  }

  void emit_assign(const AssignStmt& a, std::ostream& o,
                   const std::string& in) {
    std::string body_ind = in;
    if (a.guard) {
      Val g = emit_expr(*a.guard, o, in);
      o << in << "if " << truthy(g) << " {\n";
      body_ind = in + "  ";
    }

    Val rhs = emit_expr(*a.rhs, o, body_ind);
    if (const auto* v = dyn_cast<VarRef>(a.lhs.get())) {
      std::size_t s = scalar_of(v->name);
      ScalarType type = manifest_.scalars[s].type;
      std::string var = "s" + std::to_string(s);
      live_check_scalar(s, o, body_ind);
      Val value = rhs;
      if (a.op != AssignOp::Set)
        value = emit_apply(a.op, Val{var, type}, rhs, o, body_ind);
      o << body_ind << var << " = " << coerced(value, type) << ";\n";
    } else if (const auto* ar = dyn_cast<ArrayRef>(a.lhs.get())) {
      std::size_t s = array_of(ar->name);
      const ArraySlot& slot = manifest_.arrays[s];
      live_check_array(s, o, body_ind);
      std::string tf = emit_index(*ar, slot, o, body_ind);
      Val value = rhs;
      if (a.op != AssignOp::Set) {
        // Element load for the compound op (subscripts are evaluated
        // once; interp evaluates them twice with identical results and
        // identical abort behavior — subscript evaluation never ticks).
        std::string cur = new_temp();
        std::string arr = "a" + std::to_string(s);
        Val cur_v;
        if (is_floating(slot.type)) {
          o << body_ind << "const double " << cur << " = " << arr << "["
            << tf << "];\n";
          cur_v = {cur, slot.type};
        } else if (slot.type == ScalarType::Bool) {
          o << body_ind << "const long long " << cur << " = (" << arr << "["
            << tf << "] != 0) ? 1 : 0;\n";
          cur_v = {cur, ScalarType::Bool};
        } else {
          o << body_ind << "const long long " << cur << " = " << arr << "["
            << tf << "];\n";
          cur_v = {cur, ScalarType::Int};
        }
        value = emit_apply(a.op, cur_v, rhs, o, body_ind);
      }
      emit_array_store(slot, s, tf, value, o, body_ind);
    } else {
      refuse("assignment target is neither scalar nor array");
    }
    if (a.guard) o << in << "}\n";
  }

  // -- assembly -------------------------------------------------------------

  std::string assemble(const std::string& body) {
    std::ostringstream os;
    os << "/* Generated by the slc native oracle (ABI v" << kNativeAbiVersion
       << "). Do not edit. */\n"
          "#include <math.h>\n"
          "#include <setjmp.h>\n"
          "\n"
          "typedef struct {\n"
          "  unsigned long long steps;\n"
          "  unsigned long long max_steps;\n"
          "  long long check_bounds;\n"
          "  long long abort_kind;\n"
          "  jmp_buf jb;\n"
          "} slcnat_ctx;\n"
          "\n"
          "static void slcnat_fail(slcnat_ctx* c, long long kind) {\n"
          "  c->abort_kind = kind;\n"
          "  longjmp(c->jb, 1);\n"
          "}\n"
          "\n"
          "static long long slcnat_idiv(slcnat_ctx* c, long long x, "
          "long long y) {\n"
          "  if (y == 0) slcnat_fail(c, 1);\n"
          "  return x / y;\n"
          "}\n"
          "\n"
          "static long long slcnat_imod(slcnat_ctx* c, long long x, "
          "long long y) {\n"
          "  if (y == 0) slcnat_fail(c, 1);\n"
          "  return x % y;\n"
          "}\n";
    std::string text = os.str();

    std::ostringstream fn;
    fn << "\n#define SLCNAT_STEP() do { if (++ctx->steps > ctx->max_steps) "
          "slcnat_fail(ctx, 3); } while (0)\n"
          "\n"
          "long long slcnat_run(slcnat_ctx* ctx,\n"
          "                     double* fsc, long long* isc,\n"
          "                     const double* fsc_fill, "
          "const long long* isc_fill,\n"
          "                     unsigned char* sc_live,\n"
          "                     void* const* arr, unsigned char* arr_live) "
          "{\n"
          "  if (setjmp(ctx->jb) != 0) return ctx->abort_kind;\n"
          "  (void)fsc; (void)isc; (void)fsc_fill; (void)isc_fill;\n"
          "  (void)sc_live; (void)arr; (void)arr_live;\n";
    for (std::size_t i = 0; i < manifest_.arrays.size(); ++i) {
      const ArraySlot& a = manifest_.arrays[i];
      fn << "  " << ctype(a.type) << "* const a" << i << " = ("
         << ctype(a.type) << "*)arr[" << i << "]; /* " << a.name << " */\n"
         << "  (void)a" << i << ";\n";
    }
    for (std::size_t i = 0; i < manifest_.scalars.size(); ++i) {
      const ScalarSlot& s = manifest_.scalars[i];
      fn << "  " << ctype(s.type) << " s" << i << " = 0; /* " << s.name
         << " */\n";
    }
    fn << "\n" << body << "\n";
    // Copy-out: final scalar values plus liveness. In fast mode every
    // declaration is top-level and has executed by the time control
    // reaches here, so everything is live.
    for (std::size_t i = 0; i < manifest_.scalars.size(); ++i) {
      const ScalarSlot& s = manifest_.scalars[i];
      fn << "  " << (is_floating(s.type) ? "fsc" : "isc") << "[" << i
         << "] = s" << i << ";\n";
      if (!checked_) fn << "  sc_live[" << i << "] = 1;\n";
    }
    if (!checked_)
      for (std::size_t i = 0; i < manifest_.arrays.size(); ++i)
        fn << "  arr_live[" << i << "] = 1;\n";
    fn << "  return 0;\n"
          "}\n";
    return text + fn.str();
  }

  const Program& program_;
  Manifest manifest_;
  std::map<std::string, std::size_t> scalar_slot_;
  std::map<std::string, std::size_t> array_slot_;
  std::set<std::string> scalar_used_;
  std::set<std::string> array_used_;
  bool has_nested_decl_ = false;
  bool checked_ = false;
  int temp_ = 0;
  int loop_depth_ = 0;
};

}  // namespace

CodegenResult generate_c(const ast::Program& program) {
  return Emitter(program).run();
}

}  // namespace slc::native
