// Mini-C -> freestanding C lowering for the native-execution oracle.
//
// The generated translation unit replicates the tree-walking
// interpreter's observable semantics *bit for bit*: the same
// float-rounding discipline (Float values live as float-rounded
// doubles), the same left-to-right evaluation and abort ordering
// (expressions are flattened into three-address temporaries so C's
// unsequenced evaluation cannot reorder an out-of-bounds abort past a
// divide-by-zero), the same statement step counting (one tick per
// executed statement plus one per loop iteration), and the same abort
// classification (longjmp back to the entry trampoline with the
// AbortKind number).
//
// Constructs whose runtime behavior cannot be pinned down statically —
// unknown callees, wrong intrinsic arity, `break` outside a loop,
// conditional/min/max operands whose scalar type would only be known at
// run time, a name redeclared with a different type — are *refused*
// (CodegenResult.ok = false) instead of approximated; the oracle layer
// falls back to the interpreter for those programs. Refusal is always
// sound: it can cost speed, never correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace slc::native {

/// Bumping this orphans every cached shared object (the ABI version is
/// part of the content hash in cache.hpp).
inline constexpr int kNativeAbiVersion = 1;

/// One scalar variable of the generated program, in slot order. The
/// host passes deterministic fill values per slot and reads final
/// values back from per-slot out arrays.
struct ScalarSlot {
  std::string name;
  ast::ScalarType type = ast::ScalarType::Int;
};

/// One array of the generated program, in slot order. The host owns the
/// buffer (double or int64 elements, row-major) and prefills it exactly
/// like interp's declare().
struct ArraySlot {
  std::string name;
  ast::ScalarType type = ast::ScalarType::Double;
  std::vector<std::int64_t> dims;
  std::int64_t size = 0;  // product of dims
};

/// The memory-image contract between host and generated code.
struct Manifest {
  std::vector<ScalarSlot> scalars;
  std::vector<ArraySlot> arrays;
};

struct CodegenResult {
  bool ok = false;
  std::string reason;  // refusal reason when !ok
  std::string c_source;
  Manifest manifest;
};

/// Lowers `program` to a freestanding C translation unit exporting
/// `slcnat_run` (see the ABI comment at the top of the emitted source).
/// Deterministic: identical programs produce byte-identical C, which is
/// what makes the content-addressed codegen cache effective.
[[nodiscard]] CodegenResult generate_c(const ast::Program& program);

}  // namespace slc::native
