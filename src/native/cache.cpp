#include "native/cache.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "native/codegen.hpp"
#include "support/io.hpp"
#include "support/retry.hpp"
#include "support/subprocess.hpp"

namespace slc::native {

namespace fs = std::filesystem;
namespace io = slc::support::io;

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view text, std::uint64_t h = kFnvOffset) {
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string hex64(std::uint64_t h) {
  std::ostringstream os;
  os << std::hex << h;
  return os.str();
}

/// Compile flags are part of the contract with codegen.cpp: no FMA
/// contraction, no builtin constant folding through MPFR, wrapping
/// signed arithmetic — see DESIGN.md §11.
const std::vector<std::string>& compile_flags() {
  static const std::vector<std::string> flags = {
      "-O2", "-fPIC", "-shared", "-fwrapv", "-ffp-contract=off",
      "-fno-builtin"};
  return flags;
}

std::string first_line(const std::string& text) {
  auto nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

}  // namespace

struct CodegenCache::Impl {
  std::mutex mu;
  // Compiler detection (lazy, once per override).
  bool detected = false;
  std::string cc;         // empty after detection => unavailable
  std::string signature;  // first line of `cc --version`
  std::string cc_override;
  // Disk store.
  std::string dir_override;
  std::string dir;
  bool dir_ready = false;
  // In-memory layer + in-flight compiles.
  std::map<std::string, std::shared_future<std::shared_ptr<const Compiled>>>
      entries;
  CacheStats stats;

  void detect_locked() {
    if (detected) return;
    detected = true;
    cc.clear();
    signature.clear();
    std::vector<std::string> candidates;
    if (!cc_override.empty()) {
      candidates.push_back(cc_override);
    } else if (const char* env = std::getenv("SLC_NATIVE_CC");
               env != nullptr && *env != '\0') {
      candidates.push_back(env);
    } else {
      candidates = {"cc", "gcc", "clang"};
    }
    for (const std::string& cand : candidates) {
      support::subprocess::RunOptions ro;
      ro.argv = {cand, "--version"};
      ro.timeout_ms = 10'000;
      auto r = support::subprocess::run(ro);
      if (r.clean() && !r.out.empty()) {
        cc = cand;
        signature = first_line(r.out);
        break;
      }
    }
  }

  std::string dir_locked() {
    if (dir_ready) return dir;
    if (!dir_override.empty()) {
      dir = dir_override;
    } else if (const char* env = std::getenv("SLC_NATIVE_CACHE_DIR");
               env != nullptr && *env != '\0') {
      dir = env;
    } else {
      dir = (fs::temp_directory_path() /
             ("slc-native-cache-" + std::to_string(::getuid())))
                .string();
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    // Sweep orphaned *.tmp.<pid> files: a compiler (or the process
    // driving it) killed between emitting the temp object and the
    // rename leaves one behind forever. Only old ones go — a live
    // concurrent publish uses a fresh tmp for at most seconds.
    auto cutoff = fs::file_time_type::clock::now() - std::chrono::minutes(10);
    for (const auto& e : fs::directory_iterator(dir, ec)) {
      if (e.path().filename().string().find(".tmp.") == std::string::npos)
        continue;
      std::error_code tec;
      auto t = fs::last_write_time(e.path(), tec);
      if (tec || t > cutoff) continue;
      if (fs::remove(e.path(), tec) && !tec) ++stats.orphans_removed;
    }
    dir_ready = true;
    return dir;
  }

  /// mtime-LRU trim of the .so store down to the configured cap.
  /// Deleting a shared object that another process has already mapped
  /// is safe on POSIX (the mapping survives the unlink).
  void evict_locked(const std::string& store) {
    std::uint64_t cap = env_u64("SLC_NATIVE_CACHE_MAX", 512);
    if (cap == 0) cap = 1;
    std::vector<std::pair<fs::file_time_type, fs::path>> objects;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(store, ec)) {
      if (e.path().extension() != ".so") continue;
      auto t = fs::last_write_time(e.path(), ec);
      if (!ec) objects.emplace_back(t, e.path());
    }
    if (objects.size() <= cap) return;
    std::sort(objects.begin(), objects.end());
    std::size_t excess = objects.size() - cap;
    for (std::size_t i = 0; i < excess; ++i) {
      fs::remove(objects[i].second, ec);
      fs::path c = objects[i].second;
      c.replace_extension(".c");
      fs::remove(c, ec);
      fs::path sum = objects[i].second;
      sum.replace_extension(".sum");
      std::error_code sec;
      fs::remove(sum, sec);
      if (!ec) ++stats.evictions;
    }
  }

  std::shared_ptr<const Compiled> load_so(const std::string& key,
                                          const fs::path& so) {
    auto entry = std::make_shared<Compiled>();
    entry->key = key;
    void* handle = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
      const char* e = ::dlerror();
      entry->error = "dlopen failed: " + std::string(e ? e : "?");
      return entry;
    }
    // Intentionally never dlclose'd: other threads may still be
    // executing inside the object, and one handle per distinct kernel
    // per process is bounded by the sweep size anyway.
    void* sym = ::dlsym(handle, "slcnat_run");
    if (sym == nullptr) {
      entry->error = "dlsym(slcnat_run) failed";
      return entry;
    }
    entry->entry = reinterpret_cast<EntryFn>(sym);
    entry->ok = true;
    return entry;
  }

  std::shared_ptr<const Compiled> compile(const std::string& key,
                                          const std::string& c_source,
                                          const std::string& compiler,
                                          const std::string& store) {
    fs::path base = fs::path(store) / ("slcnat-" + key);
    fs::path c_path = base;
    c_path += ".c";
    fs::path so_path = base;
    so_path += ".so";
    fs::path sum_path = base;
    sum_path += ".sum";

    std::error_code ec;
    if (fs::exists(so_path, ec)) {
      // Verify the .sum digest before handing the bytes to dlopen: a
      // corrupt shared object is executable code, and "dlopen succeeded"
      // is a much weaker check than "the bytes are the ones we
      // published". Objects from before .sum existed have no sidecar and
      // load on dlopen's say-so alone, as they always did.
      bool digest_ok = true;
      std::string so_bytes, sum_text;
      if (read_file(sum_path, &sum_text)) {
        while (!sum_text.empty() &&
               (sum_text.back() == '\n' || sum_text.back() == '\r'))
          sum_text.pop_back();
        digest_ok = read_file(so_path, &so_bytes) &&
                    io::hex32(io::crc32c(so_bytes)) == sum_text;
      }
      if (digest_ok) {
        auto entry = load_so(key, so_path);
        if (entry->ok) {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.disk_hits;
          return entry;
        }
      }
      // Corrupt (digest mismatch) or undlopenable: delete the bad object
      // and its sidecar, count it, and recompile from source.
      fs::remove(so_path, ec);
      std::error_code sec;
      fs::remove(sum_path, sec);
      std::lock_guard<std::mutex> lock(mu);
      ++stats.corrupt_dropped;
    }

    auto fail = [&](std::string why) {
      auto entry = std::make_shared<Compiled>();
      entry->key = key;
      entry->error = std::move(why);
      std::lock_guard<std::mutex> lock(mu);
      ++stats.failures;
      return entry;
    };

    {
      // Atomic + fsynced: the archived source always matches the object
      // compiled from it, even across a power cut.
      std::string werror;
      if (!io::atomic_write_file(c_path.string(), c_source, &werror))
        return fail("cannot write " + c_path.string() + ": " + werror);
    }

    // Compile to a private temp name, then atomically publish: a
    // concurrent process never dlopens a half-written object.
    fs::path tmp = so_path;
    tmp += ".tmp." + std::to_string(::getpid());
    support::subprocess::RunOptions ro;
    ro.argv.push_back(compiler);
    for (const std::string& f : compile_flags()) ro.argv.push_back(f);
    ro.argv.push_back("-o");
    ro.argv.push_back(tmp.string());
    ro.argv.push_back(c_path.string());
    ro.argv.push_back("-lm");
    ro.timeout_ms = 60'000;
    // A lost compiler process (OOM blip, signal, spawn hiccup) is worth a
    // couple of jittered retries; a nonzero exit is a real diagnostic and
    // is returned as-is. Same policy the compile service uses for its
    // sandboxed children.
    support::retry::Policy policy;
    policy.max_attempts = 3;
    policy.base_delay_ms = 50;
    support::retry::Stats rstats;
    support::Result<support::subprocess::RunResult> retried =
        support::retry::with_retry<support::subprocess::RunResult>(
            policy, support::Deadline::unlimited(),
            [&]() -> support::Result<support::subprocess::RunResult> {
              auto run = support::subprocess::run(ro);
              if (run.clean() ||
                  (run.spawned &&
                   run.cls == support::subprocess::ExitClass::NonZero))
                return run;
              support::Failure f =
                  run.spawned ? support::subprocess::to_failure(run)
                              : support::make_failure(
                                    support::Stage::Native,
                                    support::FailureKind::NativeError,
                                    "spawn failed: " + run.spawn_error);
              f.transient = true;
              return f;
            },
            support::retry::retry_if_transient, &rstats);
    if (rstats.attempts > 1) {
      std::lock_guard<std::mutex> lock(mu);
      stats.retries += std::uint64_t(rstats.attempts - 1);
    }
    if (!retried.ok()) {
      fs::remove(tmp, ec);
      return fail("host compiler failed after " +
                  std::to_string(rstats.attempts) + " attempt(s): " +
                  retried.failure().brief());
    }
    auto r = retried.value();
    if (!r.clean()) {
      fs::remove(tmp, ec);
      return fail("host compiler " + r.describe() + ": " +
                  first_line(r.err.empty() ? r.out : r.err));
    }
    // Publish through the durable-IO layer: re-writing the compiler's
    // output via atomic_write_file gets the fsync-before-rename ordering
    // (the old bare rename could publish an empty object after a power
    // cut) and yields the exact byte stream the .sum digest covers.
    std::string so_bytes;
    if (!read_file(tmp, &so_bytes)) {
      fs::remove(tmp, ec);
      return fail("cannot read compiler output " + tmp.string());
    }
    std::string perror;
    if (!io::atomic_write_file(so_path.string(), so_bytes, &perror)) {
      fs::remove(tmp, ec);
      return fail("cannot publish " + so_path.string() + ": " + perror);
    }
    fs::remove(tmp, ec);
    // The digest sidecar lands after the object; a crash between the two
    // leaves a sum-less object, which loads legacy-style (dlopen-only)
    // and gets its sidecar rewritten on the next compile of the key.
    if (!io::atomic_write_file(sum_path.string(),
                               io::hex32(io::crc32c(so_bytes)) + "\n",
                               &perror)) {
      std::error_code sec;
      fs::remove(sum_path, sec);  // no sidecar beats a wrong one
    }

    auto entry = load_so(key, so_path);
    {
      std::lock_guard<std::mutex> lock(mu);
      if (entry->ok) {
        ++stats.compiles;
      } else {
        ++stats.failures;
      }
      evict_locked(store);
    }
    return entry;
  }
};

CodegenCache& CodegenCache::instance() {
  static CodegenCache cache;
  return cache;
}

CodegenCache::Impl& CodegenCache::impl() {
  static Impl impl;
  return impl;
}

bool CodegenCache::available() { return !compiler_signature().empty(); }

std::string CodegenCache::compiler_signature() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.detect_locked();
  return im.signature;
}

std::shared_ptr<const Compiled> CodegenCache::get_or_compile(
    const std::string& c_source) {
  Impl& im = impl();
  std::unique_lock<std::mutex> lock(im.mu);
  im.detect_locked();
  if (im.cc.empty()) {
    ++im.stats.failures;
    auto entry = std::make_shared<Compiled>();
    entry->error = "no host C compiler available";
    return entry;
  }
  std::string compiler = im.cc;
  std::string store = im.dir_locked();

  std::uint64_t h = fnv1a(c_source);
  h = fnv1a("\x1f", h);
  h = fnv1a(im.signature, h);
  for (const std::string& f : compile_flags()) h = fnv1a(f, fnv1a(" ", h));
  h = fnv1a("\x1f""abi", h);
  h = fnv1a(std::to_string(kNativeAbiVersion), h);
  std::string key = hex64(h);

  auto it = im.entries.find(key);
  if (it != im.entries.end()) {
    // Published or in flight; either way the host compiler is skipped.
    auto fut = it->second;
    ++im.stats.mem_hits;
    lock.unlock();
    return fut.get();
  }
  std::promise<std::shared_ptr<const Compiled>> promise;
  im.entries.emplace(key, promise.get_future().share());
  lock.unlock();

  // Compile outside the lock; publish whatever happened so waiters and
  // future lookups see the same entry.
  std::shared_ptr<const Compiled> entry;
  try {
    entry = im.compile(key, c_source, compiler, store);
  } catch (const std::exception& e) {
    auto failed = std::make_shared<Compiled>();
    failed->key = key;
    failed->error = std::string("native cache exception: ") + e.what();
    std::lock_guard<std::mutex> relock(im.mu);
    ++im.stats.failures;
    entry = failed;
  }
  promise.set_value(entry);
  return entry;
}

CacheStats CodegenCache::stats() const {
  Impl& im = const_cast<CodegenCache*>(this)->impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.stats;
}

void CodegenCache::reset_stats() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.stats = CacheStats{};
}

void CodegenCache::set_host_cc(const std::string& cc) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.cc_override = cc;
  im.detected = false;
  im.entries.clear();  // entries were keyed under the old signature
}

void CodegenCache::set_cache_dir(const std::string& dir) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.dir_override = dir;
  im.dir_ready = false;
  im.entries.clear();
}

std::string CodegenCache::cache_dir() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  return im.dir_locked();
}

}  // namespace slc::native
