#include "native/oracle.hpp"

#include <time.h>

#include <algorithm>
#include <csetjmp>
#include <mutex>
#include <sstream>
#include <vector>

#include "native/cache.hpp"
#include "native/codegen.hpp"

namespace slc::native {

namespace {

using interp::AbortKind;
using interp::RunResult;

/// Host mirror of the generated slcnat_ctx. Layout-compatible by
/// construction: same leading members in the same order, and the
/// trailing jmp_buf is only touched by code *inside* the shared object
/// (both setjmp and longjmp live there), so the host just has to
/// reserve enough space — same libc, same jmp_buf.
struct NativeCtx {
  unsigned long long steps = 0;
  unsigned long long max_steps = 0;
  long long check_bounds = 1;
  long long abort_kind = 0;
  std::jmp_buf jb;
};

AbortKind abort_kind_of(long long rc) {
  switch (rc) {
    case 1: return AbortKind::DivideByZero;
    case 2: return AbortKind::OutOfBounds;
    case 3: return AbortKind::StepLimit;
    case 4: return AbortKind::BadProgram;
    default: return AbortKind::None;
  }
}

const char* abort_text(AbortKind kind) {
  switch (kind) {
    case AbortKind::DivideByZero: return "integer division by zero";
    case AbortKind::OutOfBounds: return "array index out of bounds";
    case AbortKind::StepLimit: return "step limit exceeded";
    case AbortKind::BadProgram: return "use of undeclared variable";
    case AbortKind::None: break;
  }
  return "ok";
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = kFnvOffset;
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::mutex stats_mu;
OracleStats g_stats;

void bump(std::uint64_t OracleStats::* field) {
  std::lock_guard<std::mutex> lock(stats_mu);
  ++(g_stats.*field);
}

/// Prepared input/output state for one native execution, mirroring
/// interp::Engine::declare()'s deterministic fills exactly.
struct HostState {
  std::vector<double> fsc, fsc_fill;
  std::vector<long long> isc, isc_fill;
  std::vector<unsigned char> sc_live, arr_live;
  std::vector<std::vector<double>> fbuf;
  std::vector<std::vector<std::int64_t>> ibuf;
  std::vector<void*> arr;

  void build(const Manifest& m, std::uint64_t seed) {
    std::size_t ns = m.scalars.size();
    std::size_t na = m.arrays.size();
    fsc.assign(ns, 0.0);
    fsc_fill.assign(ns, 0.0);
    isc.assign(ns, 0);
    isc_fill.assign(ns, 0);
    sc_live.assign(ns, 0);
    arr_live.assign(na, 0);
    fbuf.assign(na, {});
    ibuf.assign(na, {});
    arr.assign(na, nullptr);
    for (std::size_t i = 0; i < ns; ++i) {
      fsc_fill[i] = interp::random_fill_double(seed, m.scalars[i].name, -1);
      isc_fill[i] = interp::random_fill_int(seed, m.scalars[i].name, -1);
    }
    for (std::size_t k = 0; k < na; ++k) {
      const ArraySlot& a = m.arrays[k];
      if (ast::is_floating(a.type)) {
        fbuf[k].resize(std::size_t(a.size));
        for (std::int64_t i = 0; i < a.size; ++i) {
          double v = interp::random_fill_double(seed, a.name, i);
          fbuf[k][std::size_t(i)] =
              a.type == ast::ScalarType::Float ? double(float(v)) : v;
        }
        arr[k] = fbuf[k].data();
      } else {
        ibuf[k].resize(std::size_t(a.size));
        for (std::int64_t i = 0; i < a.size; ++i)
          ibuf[k][std::size_t(i)] = interp::random_fill_int(seed, a.name, i);
        arr[k] = ibuf[k].data();
      }
    }
  }

  long long invoke(EntryFn entry, NativeCtx& ctx) {
    return entry(&ctx, fsc.data(), isc.data(), fsc_fill.data(),
                 isc_fill.data(), sc_live.data(), arr.data(),
                 arr_live.data());
  }

  interp::MemoryImage take_memory(const Manifest& m) {
    interp::MemoryImage image;
    for (std::size_t i = 0; i < m.scalars.size(); ++i) {
      if (sc_live[i] == 0) continue;
      const ScalarSlot& s = m.scalars[i];
      interp::Value v;
      switch (s.type) {
        case ast::ScalarType::Int:
          v = interp::Value::of_int(isc[i]);
          break;
        case ast::ScalarType::Bool:
          v = interp::Value::of_bool(isc[i] != 0);
          break;
        case ast::ScalarType::Float:
          // fsc[i] is already float-rounded by the generated stores;
          // of_float's re-round is exact on such values.
          v = interp::Value::of_float(fsc[i]);
          break;
        case ast::ScalarType::Double:
          v = interp::Value::of_double(fsc[i]);
          break;
      }
      image.scalars.emplace(s.name, v);
    }
    for (std::size_t k = 0; k < m.arrays.size(); ++k) {
      if (arr_live[k] == 0) continue;
      const ArraySlot& a = m.arrays[k];
      interp::ArrayValue av;
      av.type = a.type;
      av.dims = a.dims;
      if (ast::is_floating(a.type)) {
        av.fdata = std::move(fbuf[k]);
      } else {
        av.idata = std::move(ibuf[k]);
      }
      image.arrays.emplace(a.name, std::move(av));
    }
    return image;
  }
};

/// interp vs native divergence description for one leg; empty = agree.
/// Memory is compared both directions (diff() is one-directional) and
/// the step counter doubles as a codegen-drift canary.
std::string cross_check_legs(const char* which, const RunResult& it,
                             const RunResult& nat) {
  std::ostringstream os;
  os << which << ": ";
  if (it.ok != nat.ok) {
    os << "interp " << (it.ok ? "succeeded" : ("aborted (" + it.error + ")"))
       << " but native " << (nat.ok ? "succeeded" : "aborted");
    return os.str();
  }
  if (!it.ok) {
    if (it.abort_kind != nat.abort_kind) {
      os << "abort kind diverges: interp=" << int(it.abort_kind)
         << " native=" << int(nat.abort_kind);
      return os.str();
    }
    if (it.steps != nat.steps) {
      os << "steps diverge on abort: interp=" << it.steps
         << " native=" << nat.steps;
      return os.str();
    }
    return "";
  }
  if (it.steps != nat.steps) {
    os << "steps diverge: interp=" << it.steps << " native=" << nat.steps;
    return os.str();
  }
  std::string d = it.memory.diff(nat.memory);
  if (d.empty()) d = nat.memory.diff(it.memory);
  if (!d.empty()) {
    os << d;
    return os.str();
  }
  return "";
}

}  // namespace

const char* to_string(OracleMode mode) {
  switch (mode) {
    case OracleMode::Interp: return "interp";
    case OracleMode::Native: return "native";
    case OracleMode::Both: return "both";
  }
  return "?";
}

std::optional<OracleMode> parse_oracle_mode(std::string_view name) {
  if (name == "interp") return OracleMode::Interp;
  if (name == "native") return OracleMode::Native;
  if (name == "both") return OracleMode::Both;
  return std::nullopt;
}

bool native_available() { return CodegenCache::instance().available(); }

std::string oracle_identity(OracleMode mode) {
  if (mode == OracleMode::Interp) return "interp";
  std::string sig = CodegenCache::instance().compiler_signature();
  std::string tag;
  if (sig.empty()) {
    tag = "none";
  } else {
    std::ostringstream os;
    os << std::hex << fnv1a(sig);
    tag = os.str().substr(0, 8);
  }
  return std::string(to_string(mode)) + ":" + tag;
}

NativeRun run_native(const ast::Program& program, std::uint64_t seed,
                     const interp::InterpOptions& options) {
  NativeRun nr;
  CodegenResult cg = generate_c(program);
  if (!cg.ok) {
    nr.reason = "codegen refused: " + cg.reason;
    return nr;
  }
  auto compiled = CodegenCache::instance().get_or_compile(cg.c_source);
  if (!compiled->ok) {
    nr.reason = compiled->error;
    return nr;
  }

  HostState state;
  state.build(cg.manifest, seed);
  NativeCtx ctx;
  ctx.max_steps = options.max_steps;
  ctx.check_bounds = options.check_bounds ? 1 : 0;
  long long rc = state.invoke(compiled->entry, ctx);

  nr.attempted = true;
  bump(&OracleStats::native_runs);
  nr.result.steps = ctx.steps;
  if (rc != 0) {
    nr.result.ok = false;
    nr.result.abort_kind = abort_kind_of(rc);
    nr.result.error =
        std::string("native abort: ") + abort_text(nr.result.abort_kind);
    // Unlike the interpreter, no partial memory image on abort — no
    // caller consumes one (equivalence only compares successful runs).
    return nr;
  }
  nr.result.ok = true;
  nr.result.memory = state.take_memory(cg.manifest);
  return nr;
}

OracleOutcome oracle_check_equivalence(const ast::Program& original,
                                       const ast::Program& transformed,
                                       std::uint64_t seed,
                                       const interp::InterpOptions& options,
                                       OracleMode mode) {
  OracleOutcome out;
  if (mode == OracleMode::Interp) {
    out.eq = interp::check_equivalence(original, transformed, seed, options);
    return out;
  }

  if (mode == OracleMode::Native) {
    NativeRun a = run_native(original, seed, options);
    NativeRun b;
    bool b_ran = false;
    if (a.attempted && a.result.ok) {
      b = run_native(transformed, seed, options);
      b_ran = true;
    }
    if (!a.attempted || (b_ran && !b.attempted)) {
      out.fell_back = true;
      out.fallback_reason = !a.attempted ? a.reason : b.reason;
      bump(&OracleStats::fallbacks);
      out.eq = interp::check_equivalence(original, transformed, seed,
                                         options);
      return out;
    }
    out.used_native = true;
    // Same short-circuit shape as interp::check_equivalence.
    if (!a.result.ok) {
      out.eq.status = interp::EquivalenceResult::Status::OriginalFailed;
      out.eq.abort_kind = a.result.abort_kind;
      out.eq.detail = "original program failed: " + a.result.error;
      return out;
    }
    if (!b.result.ok) {
      out.eq.status = interp::EquivalenceResult::Status::TransformedFailed;
      out.eq.abort_kind = b.result.abort_kind;
      out.eq.detail = "transformed program failed: " + b.result.error;
      return out;
    }
    std::string d = a.result.memory.diff(b.result.memory);
    if (!d.empty()) {
      out.eq.status = interp::EquivalenceResult::Status::Mismatch;
      out.eq.detail = "memory differs: " + d;
    }
    return out;
  }

  // Both: the interpreter's verdict is authoritative; the native legs
  // are cross-checked against it and divergence is reported separately
  // (it indicates a codegen/cache bug, not a transform bug).
  interp::Interpreter interp_engine(options);
  RunResult ia = interp_engine.run(original, seed);
  NativeRun na = run_native(original, seed, options);
  if (na.attempted) {
    bump(&OracleStats::cross_checks);
    std::string d = cross_check_legs("original", ia, na.result);
    if (!d.empty()) {
      out.cross_check_failed = true;
      out.cross_check_detail = d;
      bump(&OracleStats::cross_check_failures);
    }
    out.used_native = true;
  } else {
    out.fell_back = true;
    out.fallback_reason = na.reason;
    bump(&OracleStats::fallbacks);
  }
  if (!ia.ok) {
    out.eq.status = interp::EquivalenceResult::Status::OriginalFailed;
    out.eq.abort_kind = ia.abort_kind;
    out.eq.detail = "original program failed: " + ia.error;
    return out;
  }
  RunResult ib = interp_engine.run(transformed, seed);
  NativeRun nb = run_native(transformed, seed, options);
  if (nb.attempted) {
    bump(&OracleStats::cross_checks);
    std::string d = cross_check_legs("transformed", ib, nb.result);
    if (!d.empty() && !out.cross_check_failed) {
      out.cross_check_failed = true;
      out.cross_check_detail = d;
      bump(&OracleStats::cross_check_failures);
    }
    out.used_native = true;
  } else if (!out.fell_back) {
    out.fell_back = true;
    out.fallback_reason = nb.reason;
    bump(&OracleStats::fallbacks);
  }
  if (!ib.ok) {
    out.eq.status = interp::EquivalenceResult::Status::TransformedFailed;
    out.eq.abort_kind = ib.abort_kind;
    out.eq.detail = "transformed program failed: " + ib.error;
    return out;
  }
  std::string d = ia.memory.diff(ib.memory);
  if (!d.empty()) {
    out.eq.status = interp::EquivalenceResult::Status::Mismatch;
    out.eq.detail = "memory differs: " + d;
  }
  return out;
}

struct NativeExecutable::Impl {
  Manifest manifest;
  EntryFn entry = nullptr;
  interp::InterpOptions options;
  HostState pristine;
  HostState scratch;
};

NativeExecutable::NativeExecutable() : impl_(new Impl) {}
NativeExecutable::~NativeExecutable() = default;

std::unique_ptr<NativeExecutable> NativeExecutable::prepare(
    const ast::Program& program, std::uint64_t seed,
    const interp::InterpOptions& options) {
  CodegenResult cg = generate_c(program);
  if (!cg.ok) return nullptr;
  auto compiled = CodegenCache::instance().get_or_compile(cg.c_source);
  if (!compiled->ok) return nullptr;
  std::unique_ptr<NativeExecutable> exe(new NativeExecutable());
  exe->impl_->manifest = std::move(cg.manifest);
  exe->impl_->entry = compiled->entry;
  exe->impl_->options = options;
  exe->impl_->pristine.build(exe->impl_->manifest, seed);
  return exe;
}

interp::RunResult NativeExecutable::run() {
  Impl& im = *impl_;
  HostState& s = im.scratch;
  // vector operator= reuses capacity after the first run, so restoring
  // the pristine inputs is flat copies, not per-run re-hashing of the
  // deterministic fills.
  s = im.pristine;
  for (std::size_t k = 0; k < s.arr.size(); ++k)
    s.arr[k] = ast::is_floating(im.manifest.arrays[k].type)
                   ? static_cast<void*>(s.fbuf[k].data())
                   : static_cast<void*>(s.ibuf[k].data());
  NativeCtx ctx;
  ctx.max_steps = im.options.max_steps;
  ctx.check_bounds = im.options.check_bounds ? 1 : 0;
  long long rc = s.invoke(im.entry, ctx);
  bump(&OracleStats::native_runs);
  interp::RunResult result;
  result.steps = ctx.steps;
  if (rc != 0) {
    result.ok = false;
    result.abort_kind = abort_kind_of(rc);
    result.error =
        std::string("native abort: ") + abort_text(result.abort_kind);
    return result;
  }
  result.ok = true;
  result.memory = s.take_memory(im.manifest);
  return result;
}

std::uint64_t time_native_ns(const ast::Program& program, std::uint64_t seed,
                             const interp::InterpOptions& options,
                             int repeats) {
  CodegenResult cg = generate_c(program);
  if (!cg.ok) return 0;
  auto compiled = CodegenCache::instance().get_or_compile(cg.c_source);
  if (!compiled->ok) return 0;

  HostState pristine;
  pristine.build(cg.manifest, seed);
  std::vector<std::uint64_t> samples;
  samples.reserve(std::size_t(std::max(repeats, 1)));
  for (int rep = 0; rep < std::max(repeats, 1); ++rep) {
    HostState state = pristine;  // reset inputs outside the timed region
    for (std::size_t k = 0; k < state.arr.size(); ++k)
      state.arr[k] = ast::is_floating(cg.manifest.arrays[k].type)
                         ? static_cast<void*>(state.fbuf[k].data())
                         : static_cast<void*>(state.ibuf[k].data());
    NativeCtx ctx;
    ctx.max_steps = options.max_steps;
    ctx.check_bounds = options.check_bounds ? 1 : 0;
    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    long long rc = state.invoke(compiled->entry, ctx);
    clock_gettime(CLOCK_MONOTONIC, &t1);
    if (rc != 0) return 0;
    std::int64_t ns = std::int64_t(t1.tv_sec - t0.tv_sec) * 1'000'000'000 +
                      (std::int64_t(t1.tv_nsec) - std::int64_t(t0.tv_nsec));
    samples.push_back(ns > 0 ? std::uint64_t(ns) : 0);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

OracleStats oracle_stats() {
  std::lock_guard<std::mutex> lock(stats_mu);
  return g_stats;
}

void reset_oracle_stats() {
  std::lock_guard<std::mutex> lock(stats_mu);
  g_stats = OracleStats{};
}

}  // namespace slc::native
