// Content-addressed codegen cache for the native-execution oracle.
//
// Key = fnv1a(generated C source ‖ host-compiler signature ‖ compile
// flags ‖ ABI version). The journal's kernel identity hashes the mini-C
// source; this cache hashes the *generated C* instead, which subsumes it
// (codegen is deterministic) and additionally invalidates on compiler
// upgrades and flag changes — a stale shared object can never be loaded
// for the wrong compiler or ABI.
//
// Two layers:
//   * in-memory: key -> dlopen'd entry point. Handles are deliberately
//     never dlclose'd (other threads may still be executing inside the
//     object); a process compiles each distinct kernel at most once.
//   * on-disk (SLC_NATIVE_CACHE_DIR, default /tmp/slc-native-cache-<uid>):
//     slcnat-<key>.{c,so,sum}. Survives process restarts, so a re-run
//     sweep pays zero compiler invocations. mtime-LRU eviction keeps at
//     most SLC_NATIVE_CACHE_MAX (default 512) shared objects. The .sum
//     sidecar carries the CRC32C digest of the published .so; a disk hit
//     verifies it before dlopen, and a mismatch (bit rot, torn publish on
//     a pre-durability build) deletes the object and recompiles instead
//     of loading corrupt executable code. Objects published before .sum
//     existed load as before (dlopen is the only check). Orphaned
//     *.tmp.<pid> files from compilers killed mid-publish are swept out
//     when the store is opened.
//
// Concurrent get_or_compile calls for the same key coalesce onto one
// compile via the promise/shared_future publish idiom (same shape as the
// driver's transform cache).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace slc::native {

/// Signature of the generated `slcnat_run` entry point. The first
/// argument points at the host-side slcnat_ctx (see runner.cpp for the
/// mirrored struct layout).
using EntryFn = long long (*)(void* ctx, double* fsc, long long* isc,
                              const double* fsc_fill,
                              const long long* isc_fill,
                              unsigned char* sc_live, void* const* arr,
                              unsigned char* arr_live);

/// A compiled-and-loaded kernel. Immutable after publication; shared
/// by every row that runs the same generated source.
struct Compiled {
  bool ok = false;
  std::string error;  // compile/link/dlopen diagnostics when !ok
  std::string key;    // content hash (hex)
  EntryFn entry = nullptr;
};

struct CacheStats {
  std::uint64_t mem_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t compiles = 0;
  std::uint64_t failures = 0;
  std::uint64_t evictions = 0;
  /// Host-compiler invocations retried after a transient (spawn/signal/
  /// timeout) failure — see support/retry.hpp. A nonzero compiler exit
  /// is a deterministic diagnosis and is never retried.
  std::uint64_t retries = 0;
  /// On-disk objects that failed their `.sum` CRC32C digest (or failed
  /// to dlopen) and were deleted before recompiling — a corrupt cache
  /// entry costs one compile, never a wrong (or crashing) dlopen.
  std::uint64_t corrupt_dropped = 0;
  /// Stale `*.tmp.<pid>` files (a compiler killed mid-publish) removed
  /// when the disk store was opened.
  std::uint64_t orphans_removed = 0;

  [[nodiscard]] std::uint64_t lookups() const {
    return mem_hits + disk_hits + compiles + failures;
  }
  /// Fraction of lookups that skipped the host compiler entirely.
  [[nodiscard]] double hit_rate() const {
    std::uint64_t n = lookups();
    return n == 0 ? 0.0 : double(mem_hits + disk_hits) / double(n);
  }
};

class CodegenCache {
 public:
  /// Process-wide instance (the disk store and compiler detection are
  /// genuinely global resources).
  [[nodiscard]] static CodegenCache& instance();

  /// True when a host C compiler was detected and shared objects can be
  /// loaded. When false every get_or_compile returns a !ok entry and
  /// the oracle layer falls back to the interpreter.
  [[nodiscard]] bool available();

  /// First line of `<cc> --version` — part of the cache key and of the
  /// journal's oracle identity. Empty when no compiler is available.
  [[nodiscard]] std::string compiler_signature();

  /// Returns the loaded entry for this generated source, compiling at
  /// most once per key per disk store. Never returns null.
  [[nodiscard]] std::shared_ptr<const Compiled> get_or_compile(
      const std::string& c_source);

  [[nodiscard]] CacheStats stats() const;
  void reset_stats();

  // Test hooks. set_host_cc("") re-runs autodetection; pointing it at a
  // nonexistent binary simulates a runner without a compiler.
  void set_host_cc(const std::string& cc);
  void set_cache_dir(const std::string& dir);
  [[nodiscard]] std::string cache_dir();

 private:
  CodegenCache() = default;
  struct Impl;
  [[nodiscard]] Impl& impl();
};

}  // namespace slc::native
