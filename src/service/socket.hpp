// Minimal Unix-domain socket plumbing for slcd and `slc --client`.
//
// Everything here is blocking and line-oriented (the protocol is NDJSON);
// the daemon gets its concurrency from one reader thread per connection
// plus the worker pool, not from nonblocking I/O. All descriptors are
// created close-on-exec so sandboxed compile children never inherit a
// client connection.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace slc::service::socket {

/// Binds and listens on a Unix socket path, unlinking any stale socket
/// file first. Returns the listening fd, or -1 with *error set.
[[nodiscard]] int listen_unix(const std::string& path, std::string* error);

/// Connects to a listening Unix socket. Returns the fd, or -1 with
/// *error set.
[[nodiscard]] int connect_unix(const std::string& path, std::string* error);

/// Writes the whole buffer, retrying on EINTR/short writes. False on a
/// broken connection. SIGPIPE is suppressed (MSG_NOSIGNAL).
[[nodiscard]] bool write_all(int fd, std::string_view text);

/// Buffered newline-delimited reader over a blocking fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Fills *line with the next line (without the '\n'). False on EOF or
  /// a read error; a final unterminated fragment is returned as a line
  /// first (torn-tail tolerance, same as the journal loader).
  [[nodiscard]] bool next_line(std::string* line);

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Default rendezvous path shared by slcd and `slc --client`:
/// $SLCD_SOCKET if set, else /tmp/slcd-<uid>.sock.
[[nodiscard]] std::string default_socket_path();

}  // namespace slc::service::socket
