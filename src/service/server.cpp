#include "service/server.hpp"

#include <chrono>

#include "driver/journal.hpp"
#include "support/retry.hpp"
#include "support/subprocess.hpp"
#include "verify/lint.hpp"

namespace slc::service {

namespace json = support::json;
using json::Value;
using support::Deadline;
using support::Failure;
using support::FailureKind;
using support::Result;

namespace {

std::uint64_t now_ns() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

std::string join_args(const std::vector<std::string>& args) {
  std::string out;
  for (const std::string& a : args) {
    if (!out.empty()) out.push_back(' ');
    out += a;
  }
  return out;
}

/// Infrastructure failures retry and feed the breaker; anything else
/// (notably a deterministic nonzero exit, which never even becomes a
/// Failure here) does not.
bool infrastructure_failure(const Failure& f) {
  return f.transient || f.kind == FailureKind::ChildSignal ||
         f.kind == FailureKind::ChildTimeout ||
         f.kind == FailureKind::ChildOom;
}

}  // namespace

Service::Service(ServiceOptions options)
    : options_(options),
      slc_exe_(options.slc_exe.empty()
                   ? support::subprocess::self_exe_path("slc")
                   : options.slc_exe),
      cache_(options.cache_max),
      breakers_(BreakerRegistry::Options{options.breaker_threshold,
                                         options.breaker_cooldown_ms}),
      pool_(std::make_unique<support::ThreadPool>(
          std::size_t(support::resolve_jobs(options.workers)))) {
  if (!options_.cache_journal.empty()) {
    std::string error;
    if (!cache_.open_journal(options_.cache_journal, &error)) {
      // Memory-only degradation, not a startup failure: the daemon's job
      // is to stay up. The miss counters will tell the story.
    }
  }
}

Service::~Service() { drain(); }

std::string Service::cache_key(const Request& request) {
  // Reuse the journal's fnv1a(kernel, argv, version) identity. For
  // source-on-stdin requests the program text *is* the kernel; for
  // registry-driven requests the argv (--kernel=..., --suite) pins it.
  return driver::journal::row_key(request.source, join_args(request.args),
                                  "slcd");
}

std::string Service::breaker_key(const Request& request) {
  for (const std::string& a : request.args) {
    if (a.rfind("--kernel=", 0) == 0) return a.substr(9);
    if (a.rfind("--suite", 0) == 0) return "suite:" + a;
  }
  if (!request.source.empty())
    return "src:" + driver::journal::row_key(request.source, "", "slcd");
  return "argv:" + join_args(request.args);
}

bool Service::submit(Request request, std::function<void(Response)> done) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.received;
  }
  if (draining_.load(std::memory_order_relaxed)) {
    Response r;
    r.id = request.id;
    r.status = Status::Shutdown;
    r.detail = "daemon is draining";
    done(std::move(r));
    return false;
  }
  std::size_t workers = std::size_t(support::resolve_jobs(options_.workers));
  std::size_t limit = workers + options_.queue_max;
  std::size_t in_flight =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (in_flight > limit) {
    // Explicit load shed: answer `overloaded` now rather than queueing
    // unboundedly and timing everyone out later.
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
      ++stats_.completed;
    }
    Response r;
    r.id = request.id;
    r.status = Status::Overloaded;
    r.detail = "queue full (" + std::to_string(limit) + " in flight)";
    done(std::move(r));
    return false;
  }
  auto req = std::make_shared<Request>(std::move(request));
  auto cb = std::make_shared<std::function<void(Response)>>(std::move(done));
  pool_->submit([this, req, cb]() {
    // Workers must never throw: ThreadPool::wait_idle rethrows the first
    // task exception, which for a daemon means death. Fence everything.
    Response r;
    try {
      r = execute(*req);
    } catch (const std::exception& e) {
      r.id = req->id;
      r.status = Status::Error;
      r.detail = std::string("internal: ") + e.what();
    } catch (...) {
      r.id = req->id;
      r.status = Status::Error;
      r.detail = "internal: unknown exception";
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    try {
      (*cb)(std::move(r));
    } catch (...) {
    }
  });
  return true;
}

Response Service::execute(const Request& request) {
  std::uint64_t start = now_ns();
  Response r;
  if (request.method == "ping") {
    r.id = request.id;
    r.status = Status::Ok;
    r.out = "pong";
  } else if (request.method == "stats") {
    r.id = request.id;
    r.status = Status::Ok;
    r.out = stats_json().dump();
  } else if (request.method == "lint") {
    r = run_lint_request(request);
  } else if (request.method == "compile") {
    r = run_compile(request);
  } else {
    r.id = request.id;
    r.status = Status::BadRequest;
    r.detail = "unknown method: " + request.method;
  }
  r.wall_ns = now_ns() - start;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.completed;
  switch (r.status) {
    case Status::Ok: ++stats_.ok; break;
    case Status::Degraded: ++stats_.degraded; break;
    case Status::Tripped: ++stats_.tripped; break;
    case Status::Overloaded: ++stats_.shed; break;
    case Status::Error: ++stats_.errors; break;
    case Status::Shutdown: break;
    case Status::BadRequest: ++stats_.bad_requests; break;
  }
  return r;
}

Response Service::run_lint_request(const Request& request) {
  // Static lint is pure analysis on the program text: no execution, no
  // sandbox child, no cache entry (it is already faster than a cache
  // round trip through the journal key hash). This is the daemon's
  // low-latency path — editors poll it on every save.
  Response r;
  r.id = request.id;
  if (request.source.empty()) {
    r.status = Status::BadRequest;
    r.detail = "lint needs program text in \"source\"";
    return r;
  }
  verify::LintOptions lopts;
  for (const std::string& a : request.args) {
    // Only the transform knobs that change what lint sees matter here;
    // compile-only args (e.g. --measure) are ignored so clients can send
    // one arg vector for both methods.
    if (a == "--no-filter") lopts.slms.enable_filter = false;
  }
  verify::LintResult res = verify::run_lint(request.source, lopts);
  r.status = Status::Ok;  // transport ok; the verdict lives in exit_code
  r.out = res.diags.to_json().dump() + "\n";
  r.err = "lint: " + std::to_string(res.loops_applied) +
          " loop(s) pipelined, " + std::to_string(res.loops_skipped) +
          " skipped, " + std::to_string(res.diags.error_count()) +
          " error(s)\n";
  // Mirror the CLI's sysexits convention so `slc --client --lint` and a
  // local `slc --lint` are drop-in interchangeable for scripts.
  if (res.parse_failed)
    r.exit_code = 65;  // EX_DATAERR: input was not a parsable program
  else
    r.exit_code = res.clean() ? 0 : 1;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.lints;
  }
  return r;
}

Response Service::run_child_once(const Request& request,
                                 const std::vector<std::string>& extra_args,
                                 std::uint64_t deadline_left_ms,
                                 Result<Response>* as_result) {
  support::subprocess::RunOptions ro;
  ro.argv.push_back(slc_exe_);
  for (const std::string& a : request.args) ro.argv.push_back(a);
  for (const std::string& a : extra_args) ro.argv.push_back(a);
  if (!request.source.empty()) {
    ro.argv.push_back("-");
    ro.stdin_text = request.source;
  }
  ro.timeout_ms = options_.child_timeout_ms;
  if (deadline_left_ms > 0 && deadline_left_ms < ro.timeout_ms)
    ro.timeout_ms = deadline_left_ms;
  ro.max_rss_mb = options_.max_rss_mb;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.child_spawns;
  }
  support::subprocess::RunResult run = support::subprocess::run(ro);

  Response r;
  r.id = request.id;
  if (run.spawned && (run.cls == support::subprocess::ExitClass::Clean ||
                      run.cls == support::subprocess::ExitClass::NonZero)) {
    // The child finished deliberately: nonzero or not, this is the
    // deterministic answer for this input.
    r.status = Status::Ok;
    r.exit_code = run.exit_code;
    r.out = run.out;
    r.err = run.err;
    if (as_result != nullptr) *as_result = r;
    return r;
  }
  Failure f = run.spawned
                  ? support::subprocess::to_failure(run)
                  : support::make_failure(
                        support::Stage::Isolation, FailureKind::Unknown,
                        "spawn failed: " + run.spawn_error);
  if (!run.spawned) f.transient = true;  // fork/pipe blips are retryable
  if (as_result != nullptr) *as_result = f;
  r.status = Status::Error;
  r.detail = f.brief();
  r.err = run.err;
  return r;
}

Response Service::run_degraded(const Request& request, BreakerState state) {
  // Circuit open: skip the known-crashing full pipeline and serve the
  // base-only (untransformed) result — bounded cost, honest answer.
  Result<Response> outcome = support::make_failure(
      support::Stage::Isolation, FailureKind::Unknown, "not run");
  Response r = run_child_once(request, {"--no-slms"}, 0, &outcome);
  if (outcome.ok()) {
    r.status = Status::Degraded;
    r.detail = std::string("circuit ") + to_string(state) +
               "; served base-only result";
  } else {
    r.status = Status::Tripped;
    r.detail = std::string("circuit ") + to_string(state) +
               " and degraded fallback failed: " + r.detail;
  }
  return r;
}

Response Service::run_compile(const Request& request) {
  std::string key = cache_key(request);
  if (!request.no_cache) {
    if (std::optional<Response> hit = cache_.get(key)) {
      hit->id = request.id;
      return *hit;
    }
  } else {
    // Count the deliberate bypass as a miss so hit_rate stays honest.
    (void)cache_.get(key);
  }

  std::string bkey = breaker_key(request);
  BreakerState admitted = breakers_.admit(bkey);
  if (admitted == BreakerState::Open) return run_degraded(request, admitted);

  Deadline deadline = Deadline::after_ms(request.deadline_ms);

  support::retry::Policy policy;
  policy.max_attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  policy.base_delay_ms = options_.retry_base_delay_ms;
  policy.seed = options_.retry_seed;

  support::retry::Stats rstats;
  Result<Response> result = support::retry::with_retry<Response>(
      policy, deadline,
      [&]() -> Result<Response> {
        Result<Response> outcome = support::make_failure(
            support::Stage::Isolation, FailureKind::Unknown, "not run");
        std::uint64_t left = deadline.active() ? deadline.remaining_ms() : 0;
        (void)run_child_once(request, {}, left, &outcome);
        return outcome;
      },
      infrastructure_failure, &rstats);
  if (rstats.attempts > 1) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.retries += std::uint64_t(rstats.attempts - 1);
  }

  Response r;
  r.id = request.id;
  r.attempts = rstats.attempts;
  if (result.ok()) {
    r = result.value();
    r.id = request.id;
    r.attempts = rstats.attempts;
    breakers_.record(bkey, true);
    cache_.put(key, r);
    return r;
  }
  breakers_.record(bkey, false);
  r.status = Status::Error;
  r.detail = result.failure().brief();
  if (rstats.gave_up_on_deadline) r.detail += " (deadline exhausted)";
  return r;
}

void Service::drain() {
  draining_.store(true, std::memory_order_relaxed);
  try {
    pool_->wait_idle();
  } catch (...) {
    // Task exceptions are already converted to error responses in
    // submit(); anything left here must not take down the drain path.
  }
  cache_.flush();
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  s.cache = cache_.stats();
  s.breaker_trips = breakers_.trips();
  s.open_circuits = breakers_.open_circuits();
  return s;
}

Value Service::stats_json() const {
  ServiceStats s = stats();
  Value v = Value::object();
  v.set("received", Value::number(s.received));
  v.set("completed", Value::number(s.completed));
  v.set("ok", Value::number(s.ok));
  v.set("degraded", Value::number(s.degraded));
  v.set("tripped", Value::number(s.tripped));
  v.set("shed", Value::number(s.shed));
  v.set("errors", Value::number(s.errors));
  v.set("bad_requests", Value::number(s.bad_requests));
  v.set("child_spawns", Value::number(s.child_spawns));
  v.set("lints", Value::number(s.lints));
  v.set("retries", Value::number(s.retries));
  v.set("breaker_trips", Value::number(s.breaker_trips));
  v.set("open_circuits", Value::number(s.open_circuits));
  Value cache = Value::object();
  cache.set("hits", Value::number(s.cache.hits));
  cache.set("misses", Value::number(s.cache.misses));
  cache.set("insertions", Value::number(s.cache.insertions));
  cache.set("evictions", Value::number(s.cache.evictions));
  cache.set("entries", Value::number(s.cache.entries));
  cache.set("journal_loaded", Value::number(s.cache.journal_loaded));
  cache.set("journal_duplicates", Value::number(s.cache.journal_duplicates));
  cache.set("journal_skipped", Value::number(s.cache.journal_skipped));
  cache.set("journal_corrupt", Value::number(s.cache.journal_corrupt));
  cache.set("journal_torn", Value::number(s.cache.journal_torn));
  cache.set("journal_crc_mismatches",
            Value::number(s.cache.journal_crc_mismatches));
  cache.set("journal_quarantined",
            Value::number(s.cache.journal_quarantined));
  cache.set("append_failures", Value::number(s.cache.append_failures));
  v.set("cache", std::move(cache));
  return v;
}

}  // namespace slc::service
