#include "service/breaker.hpp"

#include <chrono>

namespace slc::service {

namespace {

std::uint64_t steady_now_ms() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

}  // namespace

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Open: return "open";
    case BreakerState::HalfOpen: return "half-open";
  }
  return "?";
}

BreakerRegistry::BreakerRegistry(Options options, ClockFn clock)
    : options_(options),
      clock_(clock ? std::move(clock) : ClockFn(steady_now_ms)) {
  if (options_.threshold < 1) options_.threshold = 1;
}

BreakerState BreakerRegistry::admit(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[key];
  switch (e.state) {
    case BreakerState::Closed:
      return BreakerState::Closed;
    case BreakerState::HalfOpen:
      // A probe is already in flight; everyone else stays on the
      // degraded path until it reports.
      return BreakerState::Open;
    case BreakerState::Open: {
      if (clock_() - e.opened_at_ms >= options_.cooldown_ms &&
          !e.probe_in_flight) {
        e.state = BreakerState::HalfOpen;
        e.probe_in_flight = true;
        return BreakerState::HalfOpen;
      }
      return BreakerState::Open;
    }
  }
  return BreakerState::Closed;
}

void BreakerRegistry::record(const std::string& key, bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[key];
  if (e.state == BreakerState::HalfOpen) {
    e.probe_in_flight = false;
    if (success) {
      e.state = BreakerState::Closed;
      e.consecutive_failures = 0;
    } else {
      e.state = BreakerState::Open;
      e.opened_at_ms = clock_();
    }
    return;
  }
  if (success) {
    e.consecutive_failures = 0;
    return;
  }
  if (++e.consecutive_failures >= options_.threshold &&
      e.state == BreakerState::Closed) {
    e.state = BreakerState::Open;
    e.opened_at_ms = clock_();
    ++trips_;
  }
}

BreakerState BreakerRegistry::state(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? BreakerState::Closed : it->second.state;
}

std::uint64_t BreakerRegistry::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

std::uint64_t BreakerRegistry::open_circuits() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [key, e] : entries_)
    if (e.state != BreakerState::Closed) ++n;
  return n;
}

}  // namespace slc::service
