#include "service/cache.hpp"

#include <filesystem>
#include <fstream>

namespace slc::service {

namespace json = support::json;
using json::Value;

struct ResultCache::JournalFile {
  std::ofstream out;
};

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::optional<Response> ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  Response r = it->second->second;
  r.cached = true;
  r.id = 0;
  return r;
}

void ResultCache::put_locked(const std::string& key,
                             const Response& response) {
  Response stored = response;
  stored.id = 0;
  stored.cached = false;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(stored);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, std::move(stored));
    index_[key] = lru_.begin();
    ++stats_.insertions;
    while (lru_.size() > max_entries_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  stats_.entries = lru_.size();
}

void ResultCache::put(const std::string& key, const Response& response) {
  std::lock_guard<std::mutex> lock(mu_);
  put_locked(key, response);
  if (journal_ != nullptr && journal_->out.good()) {
    Value line = Value::object();
    line.set("key", Value::string(key));
    Response stored = response;
    stored.id = 0;
    stored.cached = false;
    line.set("response", to_json(stored));
    journal_->out << line.dump() << '\n';
    journal_->out.flush();  // each append survives a kill -9 on its own
  }
}

bool ResultCache::open_journal(const std::string& path, std::string* error) {
  // Replay phase: existing lines warm the cache. Duplicate keys are the
  // normal trace of a crashed-then-restarted daemon — last write wins.
  {
    std::ifstream in(path);
    std::string line;
    std::lock_guard<std::mutex> lock(mu_);
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      std::optional<Value> v = json::parse(line);
      const Value* key = v ? v->find("key") : nullptr;
      const Value* resp = v ? v->find("response") : nullptr;
      std::optional<Response> parsed =
          resp != nullptr ? response_from_json(*resp) : std::nullopt;
      if (key == nullptr || !key->is_string() || !parsed) {
        ++stats_.journal_skipped;
        continue;
      }
      if (index_.find(key->as_string()) != index_.end())
        ++stats_.journal_duplicates;
      else
        ++stats_.journal_loaded;
      put_locked(key->as_string(), *parsed);
      // put_locked counts an insertion per fresh key; loading is not an
      // insertion in the serving sense, so rewind the counter.
    }
    stats_.insertions = 0;
    stats_.evictions = 0;
  }

  auto jf = std::make_shared<JournalFile>();
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  jf->out.open(path, std::ios::app);
  if (!jf->out) {
    if (error != nullptr) *error = "cannot open cache journal " + path;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = std::move(jf);
  return true;
}

void ResultCache::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) journal_->out.flush();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace slc::service
