#include "service/cache.hpp"

#include <vector>

#include "support/io.hpp"

namespace slc::service {

namespace io = support::io;
namespace json = support::json;
using json::Value;

struct ResultCache::JournalFile {
  io::AppendFile out;
};

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::optional<Response> ResultCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  Response r = it->second->second;
  r.cached = true;
  r.id = 0;
  return r;
}

void ResultCache::put_locked(const std::string& key,
                             const Response& response) {
  Response stored = response;
  stored.id = 0;
  stored.cached = false;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(stored);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, std::move(stored));
    index_[key] = lru_.begin();
    ++stats_.insertions;
    while (lru_.size() > max_entries_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  stats_.entries = lru_.size();
}

void ResultCache::put(const std::string& key, const Response& response) {
  std::lock_guard<std::mutex> lock(mu_);
  put_locked(key, response);
  if (journal_ != nullptr && journal_->out.active()) {
    Value line = Value::object();
    line.set("key", Value::string(key));
    Response stored = response;
    stored.id = 0;
    stored.cached = false;
    line.set("response", to_json(stored));
    // One framed record, one write(), one fdatasync: an acknowledged put
    // is on disk, and a kill -9 tears at most this record.
    std::string err;
    if (!journal_->out.append_line(io::frame_record(line.dump()), &err)) {
      ++stats_.append_failures;
      journal_error_ = err;
    }
  }
}

bool ResultCache::open_journal(const std::string& path, std::string* error) {
  // Replay phase: existing lines warm the cache. Duplicate keys are the
  // normal trace of a crashed-then-restarted daemon — last write wins.
  // Unreadable lines are classified: the torn final line of a crash
  // mid-append is expected residue; anything else (a framed line whose
  // CRC fails, an interior line that does not parse) is mid-file
  // corruption, counted separately and quarantined so the evidence
  // survives the replay that skips it.
  {
    io::ScanResult scan = io::scan_jsonl(path);
    std::vector<std::string> corrupt_raw;
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      const io::ScanRecord& rec = scan.records[i];
      bool last = i + 1 == scan.records.size();
      bool tail_candidate = last && scan.ends_mid_line;

      bool readable = rec.frame != io::FrameStatus::FramedCorrupt;
      std::optional<Response> parsed;
      const Value* key = nullptr;
      std::optional<Value> v;
      if (readable) {
        v = json::parse(rec.payload);
        key = v ? v->find("key") : nullptr;
        const Value* resp = v ? v->find("response") : nullptr;
        parsed = resp != nullptr ? response_from_json(*resp) : std::nullopt;
        readable = key != nullptr && key->is_string() && parsed.has_value();
      }
      if (!readable) {
        ++stats_.journal_skipped;
        if (rec.frame == io::FrameStatus::FramedCorrupt)
          ++stats_.journal_crc_mismatches;
        if (tail_candidate && rec.frame != io::FrameStatus::FramedCorrupt) {
          ++stats_.journal_torn;
        } else {
          ++stats_.journal_corrupt;
          corrupt_raw.push_back(rec.raw);
        }
        continue;
      }
      if (index_.find(key->as_string()) != index_.end())
        ++stats_.journal_duplicates;
      else
        ++stats_.journal_loaded;
      put_locked(key->as_string(), *parsed);
      // put_locked counts an insertion per fresh key; loading is not an
      // insertion in the serving sense, so rewind the counter.
    }
    stats_.insertions = 0;
    stats_.evictions = 0;
    if (!corrupt_raw.empty())
      stats_.journal_quarantined = io::quarantine(path, corrupt_raw);
  }

  // Trim a torn final record before appending: O_APPEND after a tear
  // glues the next put onto the fragment, losing both.
  std::string trim_error;
  if (!io::trim_torn_tail(path, &trim_error)) {
    if (error != nullptr) *error = "cache journal tail repair: " + trim_error;
    return false;
  }

  auto jf = std::make_shared<JournalFile>();
  if (!jf->out.open(path, /*truncate=*/false, error)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  journal_ = std::move(jf);
  return true;
}

void ResultCache::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr && journal_->out.active()) {
    std::string err;
    if (!journal_->out.sync(&err)) {
      ++stats_.append_failures;
      journal_error_ = err;
    }
  }
}

std::string ResultCache::last_journal_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_error_;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace slc::service
