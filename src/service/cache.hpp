// Shared content-addressed result cache for the compile service.
//
// Key = driver::journal::row_key(source-or-kernel-identity, argv
// signature): the same fnv1a(kernel, argv, version) identity the
// resumable journal already uses, promoted to a request-level cache. A
// request whose key was answered before is served the stored bytes with
// no child process — the "warm daemon" path that amortizes process
// startup, parsing, and analysis across millions of identical requests.
//
// Only deterministic answers are cached (clean runs and nonzero child
// exits — both are THE answer for that input). Crashes, timeouts, sheds,
// and degraded fallbacks are never cached: they describe the moment, not
// the input.
//
// Bounded by max_entries with LRU eviction; optionally persisted to an
// append-only JSONL journal so a restarted daemon comes back warm. The
// loader is torn-line tolerant and resolves duplicate keys last-write-
// wins (a restarted daemon re-appends keys it re-computed).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/protocol.hpp"

namespace slc::service {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;          // current size
  std::uint64_t journal_loaded = 0;   // entries restored at startup
  std::uint64_t journal_duplicates = 0;
  std::uint64_t journal_skipped = 0;  // total unreadable = corrupt + torn
  std::uint64_t journal_corrupt = 0;  // mid-file: CRC mismatch/unparseable
  std::uint64_t journal_torn = 0;     // 0 or 1: torn final line
  std::uint64_t journal_crc_mismatches = 0;  // subset of corrupt, CRC-caught
  std::uint64_t journal_quarantined = 0;     // corrupt lines -> .quarantine
  std::uint64_t append_failures = 0;  // puts that failed to persist

  [[nodiscard]] double hit_rate() const {
    std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : double(hits) / double(n);
  }
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t max_entries);

  /// Thread-safe lookup; refreshes LRU position and counts hit/miss.
  /// The returned response has cached=true and id=0 (the caller stamps
  /// the request id).
  [[nodiscard]] std::optional<Response> get(const std::string& key);

  /// Thread-safe insert (last write wins); evicts the LRU tail beyond
  /// max_entries. Appends to the persistence journal when open.
  void put(const std::string& key, const Response& response);

  /// Opens the persistence journal: replays existing entries into the
  /// cache — classifying unreadable lines as torn tail vs mid-file
  /// corruption, quarantining the latter to `path + ".quarantine"` — then
  /// trims any torn final record and appends every future put through the
  /// durable-IO layer (CRC32C-framed, write+fdatasync per record).
  /// Returns false (cache stays memory-only) on I/O failure. Journals
  /// written before framing existed replay fine (legacy lines).
  bool open_journal(const std::string& path, std::string* error = nullptr);
  void flush();

  /// Most recent persistence error (see CacheStats::append_failures).
  [[nodiscard]] std::string last_journal_error() const;

  [[nodiscard]] CacheStats stats() const;

 private:
  void put_locked(const std::string& key, const Response& response);

  mutable std::mutex mu_;
  std::size_t max_entries_;
  /// Front = most recently used.
  std::list<std::pair<std::string, Response>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, Response>>::iterator>
      index_;
  CacheStats stats_;
  std::string journal_error_;

  struct JournalFile;
  std::shared_ptr<JournalFile> journal_;
};

}  // namespace slc::service
