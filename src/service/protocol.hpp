// The slcd wire protocol: newline-delimited JSON over a Unix socket.
//
// One request per line, one response per line, matched by `id` (responses
// may arrive out of order when a connection pipelines requests — the
// daemon answers as workers finish). The payload model is deliberately
// "slc argv + program text": a request is exactly the command line a cold
// `slc` process would have been started with, so the daemon can sandbox
// it into a child `slc` and the answer is byte-identical to the cold run.
//
//   {"id":1,"method":"compile","args":["--no-filter","--emit-source"],
//    "source":"void f(...) {...}"}
//   {"id":1,"status":"ok","exit":0,"out":"...","err":"","cached":false,
//    "attempts":1,"wall_ns":1234567}
//
// Methods:
//   compile   run slc with `args` (+ `source` on stdin when nonempty)
//   lint      static legality check on `source`, in-process (no sandbox
//             child): diagnostics as a JSON array in `out`, `exit` 0
//             clean / 1 findings / 65 parse failure — the low-latency
//             editor path
//   ping      liveness probe; responds ok/"pong"
//   stats     service counters as a JSON object in `out`
//   shutdown  begin graceful drain (finish in-flight, then exit)
//
// Statuses (the explicit-robustness contract: every admitted request is
// answered with exactly one of these — there is no silent drop):
//   ok          the child ran to completion (exit code in `exit`; a
//               nonzero exit is still `ok` transport-wise — it is the
//               deterministic answer for that input)
//   degraded    the kernel's circuit is open; `out` holds the base-only
//               (untransformed) result instead of the SLMS one
//   tripped     circuit open and even the degraded fallback failed
//   overloaded  load shed at admission: the bounded queue was full
//   error       infrastructure failure after retries (child crash,
//               watchdog timeout, OOM, spawn failure) — see `detail`
//   shutdown    refused: the daemon is draining
//   bad-request malformed request line / unknown method
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace slc::service {

struct Request {
  std::uint64_t id = 0;
  std::string method = "compile";
  /// Program text fed to the child's stdin ("-" is appended to args).
  /// Empty for registry-driven requests (--kernel=, --suite=).
  std::string source;
  /// The slc argument vector, excluding the binary and any input path.
  std::vector<std::string> args;
  /// Per-request wall-clock budget in ms (0 = the server default). Bounds
  /// the whole request: sandbox watchdog, retries, and backoff sleeps.
  std::uint64_t deadline_ms = 0;
  /// Bypass the result cache (always re-execute; the result is still
  /// stored). Fuzz oracles use this to re-measure suspicious rows.
  bool no_cache = false;
};

enum class Status : std::uint8_t {
  Ok,
  Degraded,
  Tripped,
  Overloaded,
  Error,
  Shutdown,
  BadRequest,
};

[[nodiscard]] const char* to_string(Status status);
[[nodiscard]] std::optional<Status> parse_status(std::string_view name);

struct Response {
  std::uint64_t id = 0;
  Status status = Status::Error;
  int exit_code = 0;
  std::string out;     // child stdout (byte-exact)
  std::string err;     // child stderr (byte-exact)
  bool cached = false; // served from the result cache, no child spawned
  int attempts = 0;    // sandbox spawns consumed (0 for cache hits/sheds)
  std::uint64_t wall_ns = 0;
  std::string detail;  // failure classification / degradation reason

  /// Transport-level success: the request produced its deterministic
  /// answer (possibly a nonzero child exit).
  [[nodiscard]] bool answered() const {
    return status == Status::Ok || status == Status::Degraded;
  }
};

[[nodiscard]] support::json::Value to_json(const Request& request);
[[nodiscard]] support::json::Value to_json(const Response& response);
[[nodiscard]] std::optional<Request> request_from_json(
    const support::json::Value& value);
[[nodiscard]] std::optional<Response> response_from_json(
    const support::json::Value& value);

/// Convenience: parse one NDJSON line into a Request. nullopt on any
/// syntax or schema error (the daemon answers `bad-request`).
[[nodiscard]] std::optional<Request> parse_request_line(
    std::string_view line);
[[nodiscard]] std::optional<Response> parse_response_line(
    std::string_view line);

}  // namespace slc::service
