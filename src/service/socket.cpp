#include "service/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace slc::service::socket {

namespace {

int fill_addr(const std::string& path, sockaddr_un* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr)
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes): " + path;
    return -1;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return 0;
}

}  // namespace

int listen_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (fill_addr(path, &addr, error) != 0) return -1;
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr)
      *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "bind " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 128) != 0) {
    if (error != nullptr)
      *error = "listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (fill_addr(path, &addr, error) != 0) return -1;
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr)
      *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_all(int fd, std::string_view text) {
  std::size_t off = 0;
  while (off < text.size()) {
    ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += std::size_t(n);
  }
  return true;
}

bool LineReader::next_line(std::string* line) {
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      // Unterminated tail: surface it once, then report EOF.
      line->swap(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      continue;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, std::size_t(n));
  }
}

std::string default_socket_path() {
  if (const char* env = std::getenv("SLCD_SOCKET");
      env != nullptr && *env != '\0')
    return env;
  return "/tmp/slcd-" + std::to_string(::getuid()) + ".sock";
}

}  // namespace slc::service::socket
