// Per-kernel circuit breakers for the compile service.
//
// A kernel that keeps crashing or hanging its sandboxed child would, at
// service scale, burn a worker slot (and the full watchdog budget) on
// every request that names it. The breaker caps that cost with the
// classic three-state machine, keyed by kernel identity:
//
//   Closed    normal service; consecutive infrastructure failures are
//             counted, a success resets the count. `threshold` failures
//             in a row trip the circuit.
//   Open      requests for this kernel skip the failing path entirely
//             and are served the degraded base-only result instead —
//             bounded cost, honest answer. After `cooldown_ms` the next
//             request is allowed through as a probe (Half-open).
//   Half-open exactly one in-flight probe; success closes the circuit,
//             failure re-opens it and restarts the cooldown.
//
// Only infrastructure failures (crash / timeout / OOM / spawn) feed the
// breaker; a deterministic nonzero exit is an *answer*, not a fault.
// The clock is injectable so the state machine is unit-testable without
// sleeping through cooldowns.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

namespace slc::service {

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

[[nodiscard]] const char* to_string(BreakerState state);

class BreakerRegistry {
 public:
  struct Options {
    /// Consecutive infrastructure failures that trip the circuit.
    int threshold = 3;
    /// How long an open circuit rejects before allowing a probe.
    std::uint64_t cooldown_ms = 5000;
  };

  using ClockFn = std::function<std::uint64_t()>;  // monotonic ms

  explicit BreakerRegistry(Options options, ClockFn clock = {});

  /// Admission decision for one request on `key`:
  ///   Closed   — run the full path; report the outcome via record().
  ///   HalfOpen — run the full path as the one probe; MUST record().
  ///   Open     — do not run the full path; serve degraded. No record().
  [[nodiscard]] BreakerState admit(const std::string& key);

  /// Reports the outcome of an admitted (Closed or Half-open) attempt.
  void record(const std::string& key, bool success);

  [[nodiscard]] BreakerState state(const std::string& key) const;
  /// Total Closed->Open transitions since construction.
  [[nodiscard]] std::uint64_t trips() const;
  /// Circuits currently open (or half-open).
  [[nodiscard]] std::uint64_t open_circuits() const;

 private:
  struct Entry {
    BreakerState state = BreakerState::Closed;
    int consecutive_failures = 0;
    std::uint64_t opened_at_ms = 0;
    bool probe_in_flight = false;
  };

  Options options_;
  ClockFn clock_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t trips_ = 0;
};

}  // namespace slc::service
