// The slcd service core: admission control, sandboxed execution with
// retries, per-kernel circuit breaking, and a shared result cache — all
// transport-agnostic, so it is unit-testable without a socket and
// reusable by any front end (tools/slcd.cpp wires it to a Unix socket).
//
// Request lifecycle:
//
//   submit ── queue full? ──────────────► overloaded  (explicit shed)
//      │        draining? ─────────────► shutdown
//      ▼
//   worker ── cache hit? ──────────────► ok (cached)
//      │
//      ├─ breaker Open? ── degraded child run ─► degraded | tripped
//      │
//      └─ full child run under retry policy
//             │ Clean/NonZero ─────────► ok   (cached, breaker success)
//             │ Signal/Timeout/Oom/spawn, retries exhausted
//             └───────────────────────► error (breaker failure)
//
// `lint` requests bypass the whole sandbox pipeline: static analysis
// never executes the program, so verify::run_lint runs in-process on
// the worker thread — no child spawn, no cache, no breaker — and the
// response carries the CLI's lint exit convention (0 clean, 1 findings,
// 65/EX_DATAERR parse failure) in exit_code with the diagnostics as a
// JSON array in `out`.
//
// Every admitted request is answered exactly once; nothing is silently
// dropped. Execution happens in a sandboxed child `slc` process
// (support/subprocess: watchdog SIGKILL, RLIMIT_AS cap, crash
// classification), so a crashing kernel costs the daemon one worker slot
// for one watchdog budget — never the daemon itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/breaker.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "support/failure.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace slc::service {

struct ServiceOptions {
  /// The slc binary to sandbox requests into. Empty = /proc/self/exe
  /// (correct when the daemon is slcd living next to slc — see slcd's
  /// --slc flag).
  std::string slc_exe;
  /// Worker threads (0 = hardware concurrency).
  int workers = 0;
  /// Bounded queue: requests admitted beyond busy workers. Admission
  /// fails fast with `overloaded` once workers + queue_max requests are
  /// in flight.
  std::size_t queue_max = 64;
  /// Per-attempt sandbox watchdog (ms) when the request has no deadline.
  std::uint64_t child_timeout_ms = 10'000;
  /// Address-space cap for sandboxed children (MiB, 0 = none).
  std::uint64_t max_rss_mb = 0;
  /// Retry policy for infrastructure failures (crash/timeout/oom/spawn).
  int max_attempts = 2;
  std::uint64_t retry_base_delay_ms = 20;
  std::uint64_t retry_seed = 0;
  /// Circuit breaker per kernel identity.
  int breaker_threshold = 3;
  std::uint64_t breaker_cooldown_ms = 3000;
  /// Result cache entries (LRU beyond this).
  std::size_t cache_max = 1024;
  /// Optional persistence journal for the result cache ("" = memory-only).
  std::string cache_journal;
};

struct ServiceStats {
  std::uint64_t received = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t tripped = 0;
  std::uint64_t shed = 0;       // overloaded responses
  std::uint64_t errors = 0;     // infrastructure failures after retries
  std::uint64_t bad_requests = 0;
  std::uint64_t child_spawns = 0;
  std::uint64_t lints = 0;      // in-process lint requests served
  std::uint64_t retries = 0;    // extra attempts beyond the first
  std::uint64_t breaker_trips = 0;
  std::uint64_t open_circuits = 0;
  CacheStats cache;
};

class Service {
 public:
  explicit Service(ServiceOptions options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Asynchronous entry point: admission-checks `request` and either
  /// (a) schedules it on the worker pool — `done` fires exactly once,
  /// from a worker thread, with the final response — or (b) sheds it,
  /// calling `done` synchronously with overloaded/shutdown. Returns
  /// false when shed. `done` must not throw.
  bool submit(Request request, std::function<void(Response)> done);

  /// Synchronous execution of one request (the worker body; exposed for
  /// unit tests and the one-shot client paths). Does not consume queue
  /// admission.
  [[nodiscard]] Response execute(const Request& request);

  /// Graceful drain: stop admitting, finish everything in flight, flush
  /// the cache journal. Idempotent.
  void drain();
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] support::json::Value stats_json() const;

  /// The cache/breaker identity of a request (exposed for tests).
  [[nodiscard]] static std::string cache_key(const Request& request);
  [[nodiscard]] static std::string breaker_key(const Request& request);

 private:
  Response run_compile(const Request& request);
  Response run_lint_request(const Request& request);
  Response run_degraded(const Request& request, BreakerState state);
  Response run_child_once(const Request& request,
                          const std::vector<std::string>& extra_args,
                          std::uint64_t deadline_left_ms,
                          support::Result<Response>* as_result);

  ServiceOptions options_;
  std::string slc_exe_;
  ResultCache cache_;
  BreakerRegistry breakers_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> in_flight_{0};

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace slc::service
