#include "service/protocol.hpp"

namespace slc::service {

namespace json = support::json;
using json::Value;

const char* to_string(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::Degraded: return "degraded";
    case Status::Tripped: return "tripped";
    case Status::Overloaded: return "overloaded";
    case Status::Error: return "error";
    case Status::Shutdown: return "shutdown";
    case Status::BadRequest: return "bad-request";
  }
  return "?";
}

std::optional<Status> parse_status(std::string_view name) {
  if (name == "ok") return Status::Ok;
  if (name == "degraded") return Status::Degraded;
  if (name == "tripped") return Status::Tripped;
  if (name == "overloaded") return Status::Overloaded;
  if (name == "error") return Status::Error;
  if (name == "shutdown") return Status::Shutdown;
  if (name == "bad-request") return Status::BadRequest;
  return std::nullopt;
}

Value to_json(const Request& request) {
  Value v = Value::object();
  v.set("id", Value::number(request.id));
  v.set("method", Value::string(request.method));
  if (!request.source.empty())
    v.set("source", Value::string(request.source));
  Value args = Value::array();
  for (const std::string& a : request.args) args.push(Value::string(a));
  v.set("args", std::move(args));
  if (request.deadline_ms != 0)
    v.set("deadline_ms", Value::number(request.deadline_ms));
  if (request.no_cache) v.set("no_cache", Value::boolean(true));
  return v;
}

std::optional<Request> request_from_json(const Value& value) {
  if (!value.is_object()) return std::nullopt;
  Request r;
  const Value* id = value.find("id");
  if (id == nullptr || !id->is_number()) return std::nullopt;
  r.id = id->as_u64();
  if (const Value* m = value.find("method")) {
    if (!m->is_string()) return std::nullopt;
    r.method = m->as_string();
  }
  if (const Value* s = value.find("source")) r.source = s->as_string();
  if (const Value* a = value.find("args")) {
    if (!a->is_array()) return std::nullopt;
    for (const Value& item : a->items()) {
      if (!item.is_string()) return std::nullopt;
      r.args.push_back(item.as_string());
    }
  }
  if (const Value* d = value.find("deadline_ms")) r.deadline_ms = d->as_u64();
  if (const Value* n = value.find("no_cache")) r.no_cache = n->as_bool();
  return r;
}

Value to_json(const Response& response) {
  Value v = Value::object();
  v.set("id", Value::number(response.id));
  v.set("status", Value::string(to_string(response.status)));
  v.set("exit", Value::number(std::int64_t(response.exit_code)));
  v.set("out", Value::string(response.out));
  v.set("err", Value::string(response.err));
  v.set("cached", Value::boolean(response.cached));
  v.set("attempts", Value::number(std::int64_t(response.attempts)));
  v.set("wall_ns", Value::number(response.wall_ns));
  if (!response.detail.empty())
    v.set("detail", Value::string(response.detail));
  return v;
}

std::optional<Response> response_from_json(const Value& value) {
  if (!value.is_object()) return std::nullopt;
  Response r;
  const Value* id = value.find("id");
  const Value* status = value.find("status");
  if (id == nullptr || status == nullptr) return std::nullopt;
  std::optional<Status> parsed = parse_status(status->as_string());
  if (!parsed) return std::nullopt;
  r.id = id->as_u64();
  r.status = *parsed;
  if (const Value* f = value.find("exit")) r.exit_code = int(f->as_i64());
  if (const Value* f = value.find("out")) r.out = f->as_string();
  if (const Value* f = value.find("err")) r.err = f->as_string();
  if (const Value* f = value.find("cached")) r.cached = f->as_bool();
  if (const Value* f = value.find("attempts")) r.attempts = int(f->as_i64());
  if (const Value* f = value.find("wall_ns")) r.wall_ns = f->as_u64();
  if (const Value* f = value.find("detail")) r.detail = f->as_string();
  return r;
}

std::optional<Request> parse_request_line(std::string_view line) {
  std::optional<Value> v = json::parse(line);
  if (!v) return std::nullopt;
  return request_from_json(*v);
}

std::optional<Response> parse_response_line(std::string_view line) {
  std::optional<Value> v = json::parse(line);
  if (!v) return std::nullopt;
  return response_from_json(*v);
}

}  // namespace slc::service
