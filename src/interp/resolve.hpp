// Slot resolution for the interpreter oracle.
//
// The tree-walking interpreter used to look every variable access up in
// a std::map<std::string, ...> — a string compare per scalar read in the
// innermost loop of every oracle run. The Resolver pass walks the AST
// once before execution and assigns every distinct scalar name and every
// distinct array name a dense integer slot (first-encounter order of a
// pre-order walk), caching the id on each VarRef/ArrayRef/DeclStmt node.
// Execution then indexes flat vectors instead of maps.
//
// The assignment is static (independent of runtime control flow), so a
// program resolved once stays consistently annotated across repeated
// runs and seeds. Re-resolving is cheap (one O(nodes) walk) and
// unconditionally overwrites stale annotations, which makes it safe to
// interpret a program, transform it (SLMS splices in new declarations),
// and interpret it again.
//
// Thread-safety: the slot fields are written through `mutable`, so a
// given Program must not be interpreted from two threads concurrently.
// The harness parallelizes across kernels (each thread owns its parse),
// never across runs of one AST.
#pragma once

#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace slc::interp {

/// Name tables produced by resolution: slot -> name, per namespace
/// (scalars and arrays live in separate namespaces, as in the map-based
/// interpreter).
struct SlotTable {
  std::vector<std::string> scalar_names;
  std::vector<std::string> array_names;

  [[nodiscard]] std::size_t num_scalars() const { return scalar_names.size(); }
  [[nodiscard]] std::size_t num_arrays() const { return array_names.size(); }
};

/// Walks `program`, annotates every VarRef/ArrayRef/DeclStmt with its
/// slot, and returns the name tables. Existing annotations are
/// overwritten.
SlotTable resolve_slots(const ast::Program& program);

}  // namespace slc::interp
