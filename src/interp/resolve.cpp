#include "interp/resolve.hpp"

#include <unordered_map>

#include "ast/walk.hpp"

namespace slc::interp {

namespace {

struct Namespace {
  std::unordered_map<std::string, std::int32_t> ids;
  std::vector<std::string> names;

  std::int32_t intern(const std::string& name) {
    auto [it, inserted] = ids.emplace(name, std::int32_t(names.size()));
    if (inserted) names.push_back(name);
    return it->second;
  }
};

}  // namespace

SlotTable resolve_slots(const ast::Program& program) {
  Namespace scalars;
  Namespace arrays;

  auto visit_expr = [&](const ast::Expr& e) {
    if (const auto* v = ast::dyn_cast<ast::VarRef>(&e)) {
      v->slot = scalars.intern(v->name);
    } else if (const auto* a = ast::dyn_cast<ast::ArrayRef>(&e)) {
      a->slot = arrays.intern(a->name);
    }
  };
  auto visit_stmt = [&](const ast::Stmt& s) {
    if (const auto* d = ast::dyn_cast<ast::DeclStmt>(&s)) {
      d->slot = d->is_array() ? arrays.intern(d->name)
                              : scalars.intern(d->name);
    }
  };

  for (const ast::StmtPtr& s : program.stmts) {
    ast::walk_stmts(*s, visit_stmt);
    ast::walk_exprs(*s, visit_expr);
  }

  SlotTable table;
  table.scalar_names = std::move(scalars.names);
  table.array_names = std::move(arrays.names);
  return table;
}

}  // namespace slc::interp
