#include "interp/interp.hpp"

#include <cmath>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "ast/walk.hpp"
#include "interp/resolve.hpp"

namespace slc::interp {

using namespace ast;

// ---------------------------------------------------------------------------
// deterministic fill
// ---------------------------------------------------------------------------

namespace {
std::uint64_t mix(std::uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

double random_fill_double(std::uint64_t seed, const std::string& name,
                          std::int64_t index) {
  std::uint64_t h = mix(seed ^ mix(hash_name(name) + std::uint64_t(index)));
  // Small magnitudes keep float programs away from overflow while staying
  // bit-reproducible.
  return double(h % 2048) / 64.0 - 16.0;
}

std::int64_t random_fill_int(std::uint64_t seed, const std::string& name,
                             std::int64_t index) {
  std::uint64_t h = mix(seed ^ mix(hash_name(name) + std::uint64_t(index)));
  return std::int64_t(h % 201) - 100;
}

// ---------------------------------------------------------------------------
// MemoryImage
// ---------------------------------------------------------------------------

std::string MemoryImage::diff(const MemoryImage& other) const {
  std::ostringstream os;
  for (const auto& [name, v] : scalars) {
    auto it = other.scalars.find(name);
    if (it == other.scalars.end()) return "missing scalar " + name;
    const Value& w = it->second;
    bool same = v.is_floating() || w.is_floating()
                    ? std::memcmp(&v.f, &w.f, sizeof(double)) == 0 &&
                          v.is_floating() == w.is_floating()
                    : v.i == w.i;
    if (!same) {
      os << "scalar " << name << ": " << (v.is_floating() ? v.f : double(v.i))
         << " vs " << (w.is_floating() ? w.f : double(w.i));
      return os.str();
    }
  }
  for (const auto& [name, a] : arrays) {
    auto it = other.arrays.find(name);
    if (it == other.arrays.end()) return "missing array " + name;
    const ArrayValue& b = it->second;
    if (is_floating(a.type)) {
      if (a.fdata.size() != b.fdata.size())
        return "array " + name + " size differs";
      for (std::size_t i = 0; i < a.fdata.size(); ++i) {
        if (std::memcmp(&a.fdata[i], &b.fdata[i], sizeof(double)) != 0) {
          os << "array " << name << "[" << i << "]: " << a.fdata[i] << " vs "
             << b.fdata[i];
          return os.str();
        }
      }
    } else {
      if (a.idata.size() != b.idata.size())
        return "array " + name + " size differs";
      for (std::size_t i = 0; i < a.idata.size(); ++i) {
        if (a.idata[i] != b.idata[i]) {
          os << "array " << name << "[" << i << "]: " << a.idata[i] << " vs "
             << b.idata[i];
          return os.str();
        }
      }
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// variable stores
// ---------------------------------------------------------------------------
//
// The evaluation engine is templated over a store policy so both
// implementations share every line of evaluation logic:
//
//   MapStore  — the original std::map<name, value> store. Kept as the
//               reference implementation (and for ASTs one does not want
//               annotated).
//   SlotStore — resolves names to dense slots up front (interp/resolve)
//               and indexes flat vectors during execution. This is the
//               default; it is what makes the oracle cheap enough to run
//               on every comparison row of the evaluation harness.

namespace {

class MapStore {
 public:
  explicit MapStore(const Program&) {}

  [[nodiscard]] Value* find_scalar(const VarRef& ref) {
    auto it = scalars_.find(ref.name);
    return it == scalars_.end() ? nullptr : &it->second;
  }
  void define_scalar(const DeclStmt& d, Value v) { scalars_[d.name] = v; }

  [[nodiscard]] ArrayValue* find_array(const ArrayRef& ref) {
    auto it = arrays_.find(ref.name);
    return it == arrays_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool has_array(const DeclStmt& d) const {
    return arrays_.contains(d.name);
  }
  void define_array(const DeclStmt& d, ArrayValue a) {
    arrays_.emplace(d.name, std::move(a));
  }

  [[nodiscard]] MemoryImage take_memory() {
    MemoryImage img;
    img.scalars = std::move(scalars_);
    img.arrays = std::move(arrays_);
    return img;
  }

 private:
  std::map<std::string, Value> scalars_;
  std::map<std::string, ArrayValue> arrays_;
};

class SlotStore {
 public:
  explicit SlotStore(const Program& program)
      : table_(resolve_slots(program)),
        scalars_(table_.num_scalars()),
        scalar_live_(table_.num_scalars(), 0),
        arrays_(table_.num_arrays()),
        array_live_(table_.num_arrays(), 0) {}

  [[nodiscard]] Value* find_scalar(const VarRef& ref) {
    std::int32_t s = ref.slot;
    if (s < 0 || std::size_t(s) >= scalars_.size() || !scalar_live_[s])
      return nullptr;
    return &scalars_[std::size_t(s)];
  }
  void define_scalar(const DeclStmt& d, Value v) {
    std::size_t s = std::size_t(d.slot);
    scalars_[s] = v;
    scalar_live_[s] = 1;
  }

  [[nodiscard]] ArrayValue* find_array(const ArrayRef& ref) {
    std::int32_t s = ref.slot;
    if (s < 0 || std::size_t(s) >= arrays_.size() || !array_live_[s])
      return nullptr;
    return &arrays_[std::size_t(s)];
  }
  [[nodiscard]] bool has_array(const DeclStmt& d) const {
    return d.slot >= 0 && array_live_[std::size_t(d.slot)] != 0;
  }
  void define_array(const DeclStmt& d, ArrayValue a) {
    std::size_t s = std::size_t(d.slot);
    arrays_[s] = std::move(a);
    array_live_[s] = 1;
  }

  [[nodiscard]] MemoryImage take_memory() {
    MemoryImage img;
    for (std::size_t i = 0; i < scalars_.size(); ++i)
      if (scalar_live_[i]) img.scalars.emplace(table_.scalar_names[i],
                                               scalars_[i]);
    for (std::size_t i = 0; i < arrays_.size(); ++i)
      if (array_live_[i])
        img.arrays.emplace(table_.array_names[i], std::move(arrays_[i]));
    return img;
  }

 private:
  SlotTable table_;
  std::vector<Value> scalars_;
  std::vector<char> scalar_live_;
  std::vector<ArrayValue> arrays_;
  std::vector<char> array_live_;
};

// ---------------------------------------------------------------------------
// evaluation engine
// ---------------------------------------------------------------------------

struct BreakException {};
struct AbortException {
  std::string message;
  AbortKind kind = AbortKind::BadProgram;
};

template <class Store>
class Engine {
 public:
  Engine(const InterpOptions& options, std::uint64_t seed, Store& store)
      : options_(options), seed_(seed), store_(store) {}

  void run_program(const Program& program) {
    for (const StmtPtr& s : program.stmts) exec(*s);
  }

  std::uint64_t steps() const { return steps_; }

 private:
  void tick() {
    if (++steps_ > options_.max_steps)
      throw AbortException{"step limit exceeded (possible infinite loop)",
                           AbortKind::StepLimit};
  }

  // -- declarations ---------------------------------------------------------

  void declare(const DeclStmt& d) {
    if (d.is_array()) {
      if (store_.has_array(d)) return;  // re-entered decl in a loop
      ArrayValue a;
      a.type = d.type;
      a.dims = d.dims;
      std::int64_t n = 1;
      for (std::int64_t dim : d.dims) n *= dim;
      if (is_floating(d.type)) {
        a.fdata.resize(std::size_t(n));
        for (std::int64_t i = 0; i < n; ++i) {
          double v = random_fill_double(seed_, d.name, i);
          a.fdata[std::size_t(i)] =
              d.type == ScalarType::Float ? double(float(v)) : v;
        }
      } else {
        a.idata.resize(std::size_t(n));
        for (std::int64_t i = 0; i < n; ++i)
          a.idata[std::size_t(i)] = random_fill_int(seed_, d.name, i);
      }
      store_.define_array(d, std::move(a));
      return;
    }
    Value v;
    if (d.init != nullptr) {
      v = coerce(eval(*d.init), d.type);
    } else {
      switch (d.type) {
        case ScalarType::Int:
          v = Value::of_int(random_fill_int(seed_, d.name, -1));
          break;
        case ScalarType::Bool:
          v = Value::of_bool(random_fill_int(seed_, d.name, -1) % 2 != 0);
          break;
        case ScalarType::Float:
          v = Value::of_float(random_fill_double(seed_, d.name, -1));
          break;
        case ScalarType::Double:
          v = Value::of_double(random_fill_double(seed_, d.name, -1));
          break;
      }
    }
    store_.define_scalar(d, v);
  }

  static Value coerce(Value v, ScalarType to) {
    switch (to) {
      case ScalarType::Int:
        return Value::of_int(v.as_int());
      case ScalarType::Bool:
        return Value::of_bool(v.truthy());
      case ScalarType::Float:
        return Value::of_float(v.as_double());
      case ScalarType::Double:
        return Value::of_double(v.as_double());
    }
    return v;
  }

  // -- lvalue resolution ----------------------------------------------------

  std::int64_t flat_index(const ArrayValue& a, const ArrayRef& ref) {
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < ref.subscripts.size(); ++d) {
      std::int64_t idx = eval(*ref.subscripts[d]).as_int();
      if (options_.check_bounds &&
          (idx < 0 || (d < a.dims.size() && idx >= a.dims[d]))) {
        throw AbortException{"array index out of bounds: " + ref.name + "[" +
                                 std::to_string(idx) + "] (dim " +
                                 std::to_string(d) + ")",
                             AbortKind::OutOfBounds};
      }
      flat = flat * (d < a.dims.size() ? a.dims[d] : 1) + idx;
    }
    if (options_.check_bounds &&
        (flat < 0 || flat >= a.size()))
      throw AbortException{"flattened index out of bounds in " + ref.name,
                           AbortKind::OutOfBounds};
    return flat;
  }

  Value load_array(const ArrayRef& ref) {
    ArrayValue* a = store_.find_array(ref);
    if (a == nullptr) throw AbortException{"undeclared array " + ref.name};
    std::int64_t i = flat_index(*a, ref);
    if (is_floating(a->type)) {
      double v = a->fdata[std::size_t(i)];
      return a->type == ScalarType::Float ? Value::of_float(v)
                                          : Value::of_double(v);
    }
    return a->type == ScalarType::Bool
               ? Value::of_bool(a->idata[std::size_t(i)] != 0)
               : Value::of_int(a->idata[std::size_t(i)]);
  }

  void store_array(const ArrayRef& ref, Value v) {
    ArrayValue* a = store_.find_array(ref);
    if (a == nullptr) throw AbortException{"undeclared array " + ref.name};
    std::int64_t i = flat_index(*a, ref);
    if (is_floating(a->type)) {
      double d = v.as_double();
      a->fdata[std::size_t(i)] =
          a->type == ScalarType::Float ? double(float(d)) : d;
    } else {
      a->idata[std::size_t(i)] = a->type == ScalarType::Bool
                                     ? (v.truthy() ? 1 : 0)
                                     : v.as_int();
    }
  }

  Value load_scalar(const VarRef& ref) {
    Value* v = store_.find_scalar(ref);
    if (v == nullptr)
      throw AbortException{"use of undeclared scalar " + ref.name + " at " +
                           to_string(ref.loc)};
    return *v;
  }

  void store_scalar(const VarRef& ref, Value v) {
    Value* cur = store_.find_scalar(ref);
    if (cur == nullptr)
      throw AbortException{"store to undeclared scalar " + ref.name};
    *cur = coerce(v, cur->type);
  }

  // -- expressions ----------------------------------------------------------

  Value eval(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLit:
        return Value::of_int(dyn_cast<IntLit>(&e)->value);
      case ExprKind::FloatLit:
        return Value::of_double(dyn_cast<FloatLit>(&e)->value);
      case ExprKind::BoolLit:
        return Value::of_bool(dyn_cast<BoolLit>(&e)->value);
      case ExprKind::VarRef:
        return load_scalar(*dyn_cast<VarRef>(&e));
      case ExprKind::ArrayRef:
        return load_array(*dyn_cast<ArrayRef>(&e));
      case ExprKind::Binary:
        return eval_binary(*dyn_cast<Binary>(&e));
      case ExprKind::Unary: {
        const auto* u = dyn_cast<Unary>(&e);
        Value v = eval(*u->operand);
        if (u->op == UnaryOp::Not) return Value::of_bool(!v.truthy());
        if (v.is_floating()) {
          Value r = v;
          r.f = -r.f;
          return r;
        }
        return Value::of_int(-v.i);
      }
      case ExprKind::Call:
        return eval_call(*dyn_cast<Call>(&e));
      case ExprKind::Conditional: {
        const auto* c = dyn_cast<Conditional>(&e);
        // Short-circuit: only the selected arm is evaluated (the §10
        // while-loop SLMS relies on this to guard pointer-like accesses).
        return eval(*c->cond).truthy() ? eval(*c->then_expr)
                                       : eval(*c->else_expr);
      }
    }
    throw AbortException{"unreachable expression kind"};
  }

  Value eval_binary(const Binary& b) {
    if (b.op == BinaryOp::And) {
      Value l = eval(*b.lhs);
      if (!l.truthy()) return Value::of_bool(false);
      return Value::of_bool(eval(*b.rhs).truthy());
    }
    if (b.op == BinaryOp::Or) {
      Value l = eval(*b.lhs);
      if (l.truthy()) return Value::of_bool(true);
      return Value::of_bool(eval(*b.rhs).truthy());
    }

    Value l = eval(*b.lhs);
    Value r = eval(*b.rhs);
    bool fp = l.is_floating() || r.is_floating();

    if (is_comparison(b.op)) {
      if (fp) {
        double x = l.as_double(), y = r.as_double();
        switch (b.op) {
          case BinaryOp::Lt: return Value::of_bool(x < y);
          case BinaryOp::Le: return Value::of_bool(x <= y);
          case BinaryOp::Gt: return Value::of_bool(x > y);
          case BinaryOp::Ge: return Value::of_bool(x >= y);
          case BinaryOp::Eq: return Value::of_bool(x == y);
          default: return Value::of_bool(x != y);
        }
      }
      std::int64_t x = l.as_int(), y = r.as_int();
      switch (b.op) {
        case BinaryOp::Lt: return Value::of_bool(x < y);
        case BinaryOp::Le: return Value::of_bool(x <= y);
        case BinaryOp::Gt: return Value::of_bool(x > y);
        case BinaryOp::Ge: return Value::of_bool(x >= y);
        case BinaryOp::Eq: return Value::of_bool(x == y);
        default: return Value::of_bool(x != y);
      }
    }

    if (fp) {
      double x = l.as_double(), y = r.as_double();
      // Operations on two floats stay float-precision, like C.
      bool both_float = l.type == ScalarType::Float &&
                        r.type == ScalarType::Float;
      double out;
      switch (b.op) {
        case BinaryOp::Add: out = x + y; break;
        case BinaryOp::Sub: out = x - y; break;
        case BinaryOp::Mul: out = x * y; break;
        case BinaryOp::Div: out = x / y; break;
        case BinaryOp::Mod:
          out = std::fmod(x, y);
          break;
        default:
          throw AbortException{"bad fp op"};
      }
      return both_float ? Value::of_float(out) : Value::of_double(out);
    }

    std::int64_t x = l.as_int(), y = r.as_int();
    switch (b.op) {
      case BinaryOp::Add: return Value::of_int(x + y);
      case BinaryOp::Sub: return Value::of_int(x - y);
      case BinaryOp::Mul: return Value::of_int(x * y);
      case BinaryOp::Div:
        if (y == 0)
          throw AbortException{"integer division by zero",
                               AbortKind::DivideByZero};
        return Value::of_int(x / y);
      case BinaryOp::Mod:
        if (y == 0)
          throw AbortException{"integer modulo by zero",
                               AbortKind::DivideByZero};
        return Value::of_int(x % y);
      default:
        throw AbortException{"bad int op"};
    }
  }

  Value eval_call(const Call& c) {
    auto arg = [&](std::size_t i) { return eval(*c.args[i]); };
    auto need = [&](std::size_t n) {
      if (c.args.size() != n)
        throw AbortException{"intrinsic " + c.callee + " expects " +
                             std::to_string(n) + " args"};
    };
    if (c.callee == "fabs") { need(1); return Value::of_double(std::fabs(arg(0).as_double())); }
    if (c.callee == "sqrt") { need(1); return Value::of_double(std::sqrt(arg(0).as_double())); }
    if (c.callee == "exp") { need(1); return Value::of_double(std::exp(arg(0).as_double())); }
    if (c.callee == "log") { need(1); return Value::of_double(std::log(arg(0).as_double())); }
    if (c.callee == "sin") { need(1); return Value::of_double(std::sin(arg(0).as_double())); }
    if (c.callee == "cos") { need(1); return Value::of_double(std::cos(arg(0).as_double())); }
    if (c.callee == "pow") { need(2); return Value::of_double(std::pow(arg(0).as_double(), arg(1).as_double())); }
    if (c.callee == "floor") { need(1); return Value::of_double(std::floor(arg(0).as_double())); }
    if (c.callee == "ceil") { need(1); return Value::of_double(std::ceil(arg(0).as_double())); }
    if (c.callee == "abs") { need(1); return Value::of_int(std::llabs(arg(0).as_int())); }
    if (c.callee == "min" || c.callee == "max") {
      need(2);
      Value a = arg(0), b = arg(1);
      bool fp = a.is_floating() || b.is_floating();
      bool pick_a = c.callee == "min"
                        ? (fp ? a.as_double() <= b.as_double() : a.as_int() <= b.as_int())
                        : (fp ? a.as_double() >= b.as_double() : a.as_int() >= b.as_int());
      return pick_a ? a : b;
    }
    throw AbortException{"call to unknown function " + c.callee};
  }

  // -- statements -----------------------------------------------------------

  void exec(const Stmt& s) {
    tick();
    switch (s.kind()) {
      case StmtKind::Decl:
        declare(*dyn_cast<DeclStmt>(&s));
        break;
      case StmtKind::Assign: {
        const auto* a = dyn_cast<AssignStmt>(&s);
        if (a->guard != nullptr && !eval(*a->guard).truthy()) break;
        Value rhs = eval(*a->rhs);
        if (a->op != AssignOp::Set) {
          Value cur = a->lhs->kind() == ExprKind::VarRef
                          ? load_scalar(*dyn_cast<VarRef>(a->lhs.get()))
                          : load_array(*dyn_cast<ArrayRef>(a->lhs.get()));
          BinaryOp op = a->op == AssignOp::Add   ? BinaryOp::Add
                        : a->op == AssignOp::Sub ? BinaryOp::Sub
                        : a->op == AssignOp::Mul ? BinaryOp::Mul
                                                 : BinaryOp::Div;
          rhs = apply(op, cur, rhs);
        }
        if (const auto* v = dyn_cast<VarRef>(a->lhs.get())) {
          store_scalar(*v, rhs);
        } else {
          store_array(*dyn_cast<ArrayRef>(a->lhs.get()), rhs);
        }
        break;
      }
      case StmtKind::ExprStmt: {
        const auto* x = dyn_cast<ExprStmt>(&s);
        if (x->guard != nullptr && !eval(*x->guard).truthy()) break;
        (void)eval(*x->expr);
        break;
      }
      case StmtKind::Block:
        for (const StmtPtr& c : dyn_cast<BlockStmt>(&s)->stmts) exec(*c);
        break;
      case StmtKind::Parallel:
        // Sequential execution: see header comment.
        for (const StmtPtr& c : dyn_cast<ParallelStmt>(&s)->stmts) exec(*c);
        break;
      case StmtKind::If: {
        const auto* i = dyn_cast<IfStmt>(&s);
        if (eval(*i->cond).truthy()) {
          exec(*i->then_stmt);
        } else if (i->else_stmt != nullptr) {
          exec(*i->else_stmt);
        }
        break;
      }
      case StmtKind::For: {
        const auto* f = dyn_cast<ForStmt>(&s);
        if (f->init) exec(*f->init);
        try {
          while (f->cond == nullptr || eval(*f->cond).truthy()) {
            tick();
            exec(*f->body);
            if (f->step) exec(*f->step);
          }
        } catch (const BreakException&) {
        }
        break;
      }
      case StmtKind::While: {
        const auto* w = dyn_cast<WhileStmt>(&s);
        try {
          while (eval(*w->cond).truthy()) {
            tick();
            exec(*w->body);
          }
        } catch (const BreakException&) {
        }
        break;
      }
      case StmtKind::Break:
        throw BreakException{};
    }
  }

  Value apply(BinaryOp op, Value l, Value r) {
    // Replicates eval_binary's arithmetic path for compound assignments.
    bool fp = l.is_floating() || r.is_floating();
    if (fp) {
      double x = l.as_double(), y = r.as_double();
      double out = 0.0;
      switch (op) {
        case BinaryOp::Add: out = x + y; break;
        case BinaryOp::Sub: out = x - y; break;
        case BinaryOp::Mul: out = x * y; break;
        case BinaryOp::Div: out = x / y; break;
        default: throw AbortException{"bad compound op"};
      }
      bool both_float =
          l.type == ScalarType::Float && r.type == ScalarType::Float;
      return both_float ? Value::of_float(out) : Value::of_double(out);
    }
    std::int64_t x = l.as_int(), y = r.as_int();
    switch (op) {
      case BinaryOp::Add: return Value::of_int(x + y);
      case BinaryOp::Sub: return Value::of_int(x - y);
      case BinaryOp::Mul: return Value::of_int(x * y);
      case BinaryOp::Div:
        if (y == 0)
          throw AbortException{"integer division by zero",
                               AbortKind::DivideByZero};
        return Value::of_int(x / y);
      default:
        throw AbortException{"bad compound op"};
    }
  }

  const InterpOptions& options_;
  std::uint64_t seed_;
  std::uint64_t steps_ = 0;
  Store& store_;
};

template <class Store>
RunResult run_with_store(const InterpOptions& options, const Program& program,
                         std::uint64_t seed) {
  Store store(program);
  Engine<Store> engine(options, seed, store);
  RunResult result;
  try {
    engine.run_program(program);
    result.ok = true;
  } catch (const AbortException& e) {
    result.ok = false;
    result.error = e.message;
    result.abort_kind = e.kind;
  } catch (const BreakException&) {
    result.ok = false;
    result.error = "break outside of loop";
    result.abort_kind = AbortKind::BadProgram;
  }
  result.steps = engine.steps();
  result.memory = store.take_memory();
  return result;
}

}  // namespace

RunResult Interpreter::run(const Program& program, std::uint64_t seed) {
  return options_.resolve_slots
             ? run_with_store<SlotStore>(options_, program, seed)
             : run_with_store<MapStore>(options_, program, seed);
}

EquivalenceResult check_equivalence(const Program& a, const Program& b,
                                    std::uint64_t seed,
                                    InterpOptions options) {
  EquivalenceResult result;
  Interpreter interp(options);
  RunResult ra = interp.run(a, seed);
  if (!ra.ok) {
    result.status = EquivalenceResult::Status::OriginalFailed;
    result.abort_kind = ra.abort_kind;
    result.detail = "original program failed: " + ra.error;
    return result;
  }
  RunResult rb = interp.run(b, seed);
  if (!rb.ok) {
    result.status = EquivalenceResult::Status::TransformedFailed;
    result.abort_kind = rb.abort_kind;
    result.detail = "transformed program failed: " + rb.error;
    return result;
  }
  std::string d = ra.memory.diff(rb.memory);
  if (!d.empty()) {
    result.status = EquivalenceResult::Status::Mismatch;
    result.detail = "memory differs: " + d;
  }
  return result;
}

std::string check_equivalent(const Program& a, const Program& b,
                             std::uint64_t seed, InterpOptions options) {
  return check_equivalence(a, b, seed, options).detail;
}

}  // namespace slc::interp
