// Tree-walking interpreter for the mini-C dialect — the *correctness
// oracle* of the project. Every transformation (SLMS, MVE, scalar
// expansion, if-conversion, interchange, fusion, ...) must produce a
// program whose final memory image is identical to the original's on the
// same inputs. ParallelStmt rows execute sequentially: SLMS output must
// remain a valid sequential program (paper §3).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "ast/ast.hpp"
#include "sema/symbol_table.hpp"
#include "support/diagnostics.hpp"

namespace slc::interp {

/// Runtime scalar value. Int/Bool are exact; Float is stored rounded to
/// float precision so `float` programs behave like C.
struct Value {
  ast::ScalarType type = ast::ScalarType::Int;
  std::int64_t i = 0;
  double f = 0.0;

  [[nodiscard]] static Value of_int(std::int64_t v) {
    return {ast::ScalarType::Int, v, 0.0};
  }
  [[nodiscard]] static Value of_bool(bool v) {
    return {ast::ScalarType::Bool, v ? 1 : 0, 0.0};
  }
  [[nodiscard]] static Value of_double(double v) {
    return {ast::ScalarType::Double, 0, v};
  }
  [[nodiscard]] static Value of_float(double v) {
    return {ast::ScalarType::Float, 0, static_cast<float>(v)};
  }

  [[nodiscard]] bool is_floating() const { return ast::is_floating(type); }
  [[nodiscard]] double as_double() const { return is_floating() ? f : double(i); }
  [[nodiscard]] std::int64_t as_int() const {
    return is_floating() ? static_cast<std::int64_t>(f) : i;
  }
  [[nodiscard]] bool truthy() const {
    return is_floating() ? f != 0.0 : i != 0;
  }
};

/// Array contents plus metadata. Multi-dimensional arrays are stored
/// row-major.
struct ArrayValue {
  ast::ScalarType type = ast::ScalarType::Double;
  std::vector<std::int64_t> dims;
  std::vector<double> fdata;        // floating arrays
  std::vector<std::int64_t> idata;  // int/bool arrays

  [[nodiscard]] std::int64_t size() const {
    return ast::is_floating(type) ? std::int64_t(fdata.size())
                                  : std::int64_t(idata.size());
  }
};

/// Final (or initial) program state: every declared variable and array.
struct MemoryImage {
  std::map<std::string, Value> scalars;
  std::map<std::string, ArrayValue> arrays;

  /// One-directional exact comparison (bit-level for floating data):
  /// every variable of *this* image must exist in `other` with the same
  /// value. Extra variables in `other` are ignored — transformations
  /// legitimately introduce registers/predicates/expansion arrays, and
  /// equivalence is judged on the original program's state. Returns a
  /// human-readable description of the first difference, or empty string.
  [[nodiscard]] std::string diff(const MemoryImage& other) const;
  [[nodiscard]] bool operator==(const MemoryImage& other) const {
    return diff(other).empty();
  }
};

struct InterpOptions {
  /// Abort after this many executed statements (runaway protection).
  std::uint64_t max_steps = 50'000'000;
  /// When true, array accesses out of declared bounds abort the run with
  /// an error. SLMS-generated code must never go out of bounds.
  bool check_bounds = true;
  /// When true (default) variable accesses are resolved to dense integer
  /// slots before execution (see interp/resolve.hpp) so the hot loop
  /// indexes vectors instead of std::map string lookups. When false, the
  /// legacy map-based store runs — kept as the reference implementation;
  /// both paths must produce identical MemoryImages.
  bool resolve_slots = true;
};

/// Machine-readable classification of an interpreter abort, so the
/// harness can record a structured Failure instead of parsing message
/// strings. `None` when the run succeeded.
enum class AbortKind : std::uint8_t {
  None,
  DivideByZero,
  OutOfBounds,
  StepLimit,
  BadProgram,  // undeclared names, malformed nodes, break outside loop
};

struct RunResult {
  bool ok = false;
  std::string error;           // set when !ok
  AbortKind abort_kind = AbortKind::None;  // classification when !ok
  std::uint64_t steps = 0;     // statements executed
  MemoryImage memory;
};

class Interpreter {
 public:
  explicit Interpreter(InterpOptions options = {}) : options_(options) {}

  /// Runs the program from scratch. Declared arrays/scalars without
  /// initializers are filled deterministically from `seed` (so that two
  /// structurally different but equivalent programs see identical
  /// inputs).
  [[nodiscard]] RunResult run(const ast::Program& program,
                              std::uint64_t seed = 0);

 private:
  InterpOptions options_;
};

/// Deterministic pseudo-random fill value for (seed, name, index) — shared
/// with the test generators so expected inputs can be reconstructed.
[[nodiscard]] double random_fill_double(std::uint64_t seed,
                                        const std::string& name,
                                        std::int64_t index);
[[nodiscard]] std::int64_t random_fill_int(std::uint64_t seed,
                                           const std::string& name,
                                           std::int64_t index);

/// Structured equivalence verdict: which program (if any) failed and how,
/// so the fail-safe harness can record a classified Failure.
struct EquivalenceResult {
  enum class Status : std::uint8_t {
    Equivalent,
    OriginalFailed,     // the reference program itself aborted
    TransformedFailed,  // the transformed program aborted
    Mismatch,           // both ran; final memory images differ
  };
  Status status = Status::Equivalent;
  AbortKind abort_kind = AbortKind::None;  // set for *Failed statuses
  std::string detail;                      // human-readable description

  [[nodiscard]] bool ok() const { return status == Status::Equivalent; }
};

/// Runs both programs on the same seed and compares memory images.
[[nodiscard]] EquivalenceResult check_equivalence(const ast::Program& a,
                                                  const ast::Program& b,
                                                  std::uint64_t seed = 0,
                                                  InterpOptions options = {});

/// Convenience wrapper around check_equivalence: returns empty string
/// when equivalent, else a description.
[[nodiscard]] std::string check_equivalent(const ast::Program& a,
                                           const ast::Program& b,
                                           std::uint64_t seed = 0,
                                           InterpOptions options = {});

}  // namespace slc::interp
