// Direct-mapped L1 cache model feeding the cycle and power accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine_model.hpp"

namespace slc::sim {

class DirectMappedCache {
 public:
  explicit DirectMappedCache(const machine::CacheConfig& config)
      : config_(config), tags_(std::size_t(config.num_lines), -1) {}

  /// Returns true on hit; updates the line on miss.
  bool access(std::int64_t addr) {
    ++accesses_;
    std::int64_t line = addr / config_.line_bytes;
    std::size_t index = std::size_t(line % config_.num_lines);
    if (tags_[index] == line) return true;
    tags_[index] = line;
    ++misses_;
    return false;
  }

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  machine::CacheConfig config_;
  std::vector<std::int64_t> tags_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace slc::sim
