#include "sim/executor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <map>

#include "machine/sched.hpp"
#include "machine/sms.hpp"
#include "sim/cache.hpp"
#include "support/fault.hpp"

namespace slc::sim {

using machine::MachineModel;
using machine::MInst;
using machine::MirProgram;
using machine::Op;
using machine::Region;
using machine::UnitClass;

const char* to_string(CompilerPreset preset) {
  switch (preset) {
    case CompilerPreset::Sequential:
      return "sequential";
    case CompilerPreset::ListSched:
      return "list-sched";
    case CompilerPreset::ModuloSched:
      return "modulo-sched";
  }
  return "?";
}

namespace {

constexpr int kInfSlack = 1 << 28;

struct MVal {
  bool fp = false;
  std::int64_t i = 0;
  double f = 0.0;

  [[nodiscard]] double d() const { return fp ? f : double(i); }
  [[nodiscard]] std::int64_t n() const {
    return fp ? std::int64_t(f) : i;
  }
  [[nodiscard]] bool truthy() const { return fp ? f != 0.0 : i != 0; }

  static MVal of_int(std::int64_t v) { return {false, v, 0.0}; }
  static MVal of_fp(double v) { return {true, 0, v}; }
};

struct SimError {
  std::string message;
};

// ---------------------------------------------------------------------------
// dynamic-issue timing models (Scalar / Superscalar styles)
// ---------------------------------------------------------------------------

class StreamTiming {
 public:
  virtual ~StreamTiming() = default;
  /// `extra_latency` carries cache-miss penalties for memory ops.
  virtual void feed(const MInst& inst, int extra_latency) = 0;
  virtual std::uint64_t finish() = 0;
};

/// Single-issue in-order scoreboard with load-use interlock (ARM7).
class ScalarTiming final : public StreamTiming {
 public:
  explicit ScalarTiming(const MachineModel& model) : model_(model) {}

  void feed(const MInst& inst, int extra_latency) override {
    std::uint64_t start = t_;
    for (int s : inst.sources())
      if (auto it = ready_.find(s); it != ready_.end())
        start = std::max(start, it->second);
    if (inst.pred >= 0)
      if (auto it = ready_.find(inst.pred); it != ready_.end())
        start = std::max(start, it->second);
    t_ = start + 1;
    if (inst.dst >= 0)
      ready_[inst.dst] =
          start + std::uint64_t(model_.latency(inst) + extra_latency);
  }

  std::uint64_t finish() override { return t_; }

 private:
  const MachineModel& model_;
  std::uint64_t t_ = 0;
  std::map<int, std::uint64_t> ready_;
};

/// Windowed dynamic issue: in-order fetch into a small window, up to
/// issue_width ready instructions leave per cycle (Pentium).
class SuperscalarTiming final : public StreamTiming {
 public:
  explicit SuperscalarTiming(const MachineModel& model) : model_(model) {}

  void feed(const MInst& inst, int extra_latency) override {
    Pending p;
    p.srcs = inst.sources();
    if (inst.pred >= 0) p.srcs.push_back(inst.pred);
    p.dst = inst.dst;
    p.latency = model_.latency(inst) + extra_latency;
    p.cls = unit_class(inst.op, inst.fp);
    window_.push_back(std::move(p));
    while (int(window_.size()) > model_.superscalar_window) step();
  }

  std::uint64_t finish() override {
    while (!window_.empty()) step();
    return t_;
  }

 private:
  struct Pending {
    std::vector<int> srcs;
    int dst = -1;
    int latency = 1;
    UnitClass cls = UnitClass::Alu;
  };

  void step() {
    int issued = 0;
    std::array<int, 3> unit_use{0, 0, 0};
    for (std::size_t k = 0;
         k < window_.size() &&
         k < std::size_t(model_.superscalar_window) &&
         issued < model_.issue_width;) {
      Pending& p = window_[k];
      bool ready = true;
      for (int s : p.srcs)
        if (auto it = ready_.find(s); it != ready_.end() && it->second > t_)
          ready = false;
      if (ready && unit_use[std::size_t(p.cls)] < model_.units_of(p.cls)) {
        ++unit_use[std::size_t(p.cls)];
        ++issued;
        if (p.dst >= 0) ready_[p.dst] = t_ + std::uint64_t(p.latency);
        window_.erase(window_.begin() + std::ptrdiff_t(k));
        continue;  // same k now refers to the next instruction
      }
      ++k;
    }
    ++t_;
  }

  const MachineModel& model_;
  std::uint64_t t_ = 0;
  std::map<int, std::uint64_t> ready_;
  std::deque<Pending> window_;
};

// ---------------------------------------------------------------------------
// static block analyses (VLIW styles)
// ---------------------------------------------------------------------------

struct BlockInfo {
  machine::BlockSchedule sched;
  int seq_length = 0;            // width-1 in-order length
  std::vector<int> slack;        // per-inst load->first-use distance
  int steady_cycles = 0;         // list-sched + carried-dep stalls
  int max_live = 0;              // register-pressure estimate
};

int sequential_length(const std::vector<MInst>& block,
                      const MachineModel& model) {
  std::map<int, long> ready;
  long t = 0;
  for (const MInst& m : block) {
    long start = t;
    for (int s : m.sources())
      if (auto it = ready.find(s); it != ready.end())
        start = std::max(start, it->second);
    t = start + 1;
    if (m.dst >= 0) ready[m.dst] = start + model.latency(m);
  }
  return int(t);
}

std::vector<int> load_slack(const std::vector<MInst>& block,
                            const std::vector<int>& cycle) {
  std::vector<int> slack(block.size(), kInfSlack);
  for (std::size_t i = 0; i < block.size(); ++i) {
    if (block[i].op != Op::Load || block[i].dst < 0) continue;
    for (std::size_t j = i + 1; j < block.size(); ++j) {
      bool reads = block[j].pred == block[i].dst;
      for (int s : block[j].sources()) reads |= s == block[i].dst;
      if (reads)
        slack[i] = std::min(slack[i], cycle[j] - cycle[i]);
    }
  }
  return slack;
}

int estimate_max_live(const std::vector<MInst>& block) {
  // Live intervals over block positions; a simple sweep.
  std::map<int, std::pair<int, int>> range;  // vreg -> [def, last use]
  for (int k = 0; k < int(block.size()); ++k) {
    const MInst& m = block[std::size_t(k)];
    for (int s : m.sources()) {
      auto it = range.find(s);
      if (it != range.end()) it->second.second = k;
    }
    if (m.dst >= 0 && !range.contains(m.dst)) range[m.dst] = {k, k};
  }
  int best = 0;
  for (int k = 0; k < int(block.size()); ++k) {
    int live = 0;
    for (const auto& [v, r] : range)
      if (r.first <= k && k <= r.second && r.second > r.first) ++live;
    best = std::max(best, live);
  }
  return best;
}

struct KernelInfo {
  machine::ImsResult ims;
  std::vector<int> slack;  // load->use modulo slack
};

// ---------------------------------------------------------------------------
// executor
// ---------------------------------------------------------------------------

class Executor {
 public:
  Executor(const MirProgram& program, const MachineModel& model,
           const SimOptions& options)
      : program_(program), model_(model), options_(options),
        cache_(model.cache), regs_(std::size_t(program.num_vregs)) {
    if (model_.style == machine::IssueStyle::Scalar) {
      stream_ = std::make_unique<ScalarTiming>(model_);
    } else if (model_.style == machine::IssueStyle::Superscalar) {
      stream_ = std::make_unique<SuperscalarTiming>(model_);
    }
  }

  SimResult run() {
    SimResult result;
    try {
      init_memory();
      for (const Region& r : program_.regions) exec_region(r);
      if (stream_ != nullptr) cycles_ += stream_->finish();
      result.ok = true;
    } catch (const SimError& e) {
      result.ok = false;
      result.error = e.message;
    }
    result.cycles = cycles_;
    result.instructions = instructions_;
    result.mem_accesses = cache_.accesses();
    result.mem_misses = cache_.misses();
    energy_ += model_.power.leakage_per_cycle * double(cycles_);
    result.energy = energy_;
    result.loops.assign(loop_stats_ordered_.begin(),
                        loop_stats_ordered_.end());
    result.memory = extract_memory();
    return result;
  }

 private:
  // -- memory image -----------------------------------------------------

  void init_memory() {
    for (const auto& [name, info] : program_.arrays) {
      if (info.fp) {
        auto& data = farrays_[name];
        data.resize(std::size_t(info.size));
        for (std::int64_t k = 0; k < info.size; ++k)
          data[std::size_t(k)] =
              interp::random_fill_double(options_.seed, name, k);
      } else {
        auto& data = iarrays_[name];
        data.resize(std::size_t(info.size));
        for (std::int64_t k = 0; k < info.size; ++k)
          data[std::size_t(k)] =
              interp::random_fill_int(options_.seed, name, k);
      }
    }
    for (const auto& [name, vreg] : program_.scalar_vreg) {
      bool fp = program_.scalar_fp.at(name);
      regs_[std::size_t(vreg)] =
          fp ? MVal::of_fp(interp::random_fill_double(options_.seed, name, -1))
             : MVal::of_int(interp::random_fill_int(options_.seed, name, -1));
    }
  }

  interp::MemoryImage extract_memory() {
    interp::MemoryImage image;
    for (const auto& [name, info] : program_.arrays) {
      interp::ArrayValue a;
      a.dims = info.dims;
      if (info.fp) {
        a.type = ast::ScalarType::Double;
        a.fdata = farrays_.at(name);
      } else {
        a.type = ast::ScalarType::Int;
        a.idata = iarrays_.at(name);
      }
      image.arrays.emplace(name, std::move(a));
    }
    for (const auto& [name, vreg] : program_.scalar_vreg) {
      const MVal& v = regs_[std::size_t(vreg)];
      image.scalars[name] = v.fp ? interp::Value::of_double(v.f)
                                 : interp::Value::of_int(v.i);
    }
    return image;
  }

  // -- value execution ----------------------------------------------------

  /// Executes one instruction's effect; returns the miss penalty of a
  /// memory access (0 otherwise).
  int exec_inst(const MInst& m) {
    if (++instructions_ > options_.max_insts)
      throw SimError{"instruction limit exceeded"};

    // Energy by unit class.
    switch (unit_class(m.op, m.fp)) {
      case UnitClass::Mem:
        energy_ += model_.power.mem_energy;
        break;
      case UnitClass::Fpu:
        energy_ += model_.power.fpu_energy;
        break;
      case UnitClass::Alu:
        energy_ += model_.power.alu_energy;
        break;
    }

    if (m.pred >= 0 && !regs_[std::size_t(m.pred)].truthy()) return 0;

    auto src = [&](int v) -> const MVal& { return regs_[std::size_t(v)]; };
    auto set = [&](MVal v) {
      if (m.dst >= 0) regs_[std::size_t(m.dst)] = v;
    };

    switch (m.op) {
      case Op::Const:
        set(m.fp ? MVal::of_fp(m.fimm) : MVal::of_int(m.imm));
        return 0;
      case Op::Mov: {
        MVal v = src(m.src1);
        // Respect the destination's declared domain (int scalar taking a
        // float value truncates, like the interpreter's coercion).
        if (m.fp && !v.fp) v = MVal::of_fp(v.d());
        if (!m.fp && v.fp) v = MVal::of_int(v.n());
        set(v);
        return 0;
      }
      case Op::Add: set(MVal::of_int(src(m.src1).n() + src(m.src2).n())); return 0;
      case Op::Sub: set(MVal::of_int(src(m.src1).n() - src(m.src2).n())); return 0;
      case Op::Mul: set(MVal::of_int(src(m.src1).n() * src(m.src2).n())); return 0;
      case Op::Div: {
        std::int64_t d = src(m.src2).n();
        if (d == 0) throw SimError{"integer division by zero"};
        set(MVal::of_int(src(m.src1).n() / d));
        return 0;
      }
      case Op::Mod: {
        std::int64_t d = src(m.src2).n();
        if (d == 0) throw SimError{"integer modulo by zero"};
        set(MVal::of_int(src(m.src1).n() % d));
        return 0;
      }
      case Op::Neg: set(MVal::of_int(-src(m.src1).n())); return 0;
      case Op::FAdd: set(MVal::of_fp(src(m.src1).d() + src(m.src2).d())); return 0;
      case Op::FSub: set(MVal::of_fp(src(m.src1).d() - src(m.src2).d())); return 0;
      case Op::FMul: set(MVal::of_fp(src(m.src1).d() * src(m.src2).d())); return 0;
      case Op::FDiv: set(MVal::of_fp(src(m.src1).d() / src(m.src2).d())); return 0;
      case Op::FNeg: set(MVal::of_fp(-src(m.src1).d())); return 0;
      case Op::CmpLt:
      case Op::CmpLe:
      case Op::CmpGt:
      case Op::CmpGe:
      case Op::CmpEq:
      case Op::CmpNe: {
        bool fp = src(m.src1).fp || src(m.src2).fp;
        bool r;
        if (fp) {
          double a = src(m.src1).d(), b = src(m.src2).d();
          r = m.op == Op::CmpLt   ? a < b
              : m.op == Op::CmpLe ? a <= b
              : m.op == Op::CmpGt ? a > b
              : m.op == Op::CmpGe ? a >= b
              : m.op == Op::CmpEq ? a == b
                                  : a != b;
        } else {
          std::int64_t a = src(m.src1).n(), b = src(m.src2).n();
          r = m.op == Op::CmpLt   ? a < b
              : m.op == Op::CmpLe ? a <= b
              : m.op == Op::CmpGt ? a > b
              : m.op == Op::CmpGe ? a >= b
              : m.op == Op::CmpEq ? a == b
                                  : a != b;
        }
        set(MVal::of_int(r ? 1 : 0));
        return 0;
      }
      case Op::And:
        set(MVal::of_int(src(m.src1).truthy() && src(m.src2).truthy()));
        return 0;
      case Op::Or:
        set(MVal::of_int(src(m.src1).truthy() || src(m.src2).truthy()));
        return 0;
      case Op::Not:
        set(MVal::of_int(src(m.src1).truthy() ? 0 : 1));
        return 0;
      case Op::Select:
        set(src(m.src1).truthy() ? src(m.src2) : src(m.src3));
        return 0;
      case Op::Call: {
        double a = m.src1 >= 0 ? src(m.src1).d() : 0.0;
        double b = m.src2 >= 0 ? src(m.src2).d() : 0.0;
        if (m.callee == "fabs") { set(MVal::of_fp(std::fabs(a))); return 0; }
        if (m.callee == "sqrt") { set(MVal::of_fp(std::sqrt(a))); return 0; }
        if (m.callee == "exp") { set(MVal::of_fp(std::exp(a))); return 0; }
        if (m.callee == "log") { set(MVal::of_fp(std::log(a))); return 0; }
        if (m.callee == "sin") { set(MVal::of_fp(std::sin(a))); return 0; }
        if (m.callee == "cos") { set(MVal::of_fp(std::cos(a))); return 0; }
        if (m.callee == "pow") { set(MVal::of_fp(std::pow(a, b))); return 0; }
        if (m.callee == "floor") { set(MVal::of_fp(std::floor(a))); return 0; }
        if (m.callee == "ceil") { set(MVal::of_fp(std::ceil(a))); return 0; }
        if (m.callee == "abs") {
          set(MVal::of_int(std::llabs(src(m.src1).n())));
          return 0;
        }
        if (m.callee == "min" || m.callee == "max") {
          bool fp = src(m.src1).fp || src(m.src2).fp;
          bool pick_a = m.callee == "min"
                            ? (fp ? src(m.src1).d() <= src(m.src2).d()
                                  : src(m.src1).n() <= src(m.src2).n())
                            : (fp ? src(m.src1).d() >= src(m.src2).d()
                                  : src(m.src1).n() >= src(m.src2).n());
          set(pick_a ? src(m.src1) : src(m.src2));
          return 0;
        }
        throw SimError{"unknown callee " + m.callee};
      }
      case Op::Load:
      case Op::Store: {
        auto arr = program_.arrays.find(m.array);
        if (arr == program_.arrays.end())
          throw SimError{"unknown array " + m.array};
        std::int64_t idx = src(m.src1).n();
        if (idx < 0 || idx >= arr->second.size)
          throw SimError{"array index out of bounds: " + m.array + "[" +
                         std::to_string(idx) + "]"};
        std::int64_t addr = arr->second.base_addr + idx * 8;
        bool hit = cache_.access(addr);
        if (!hit) energy_ += model_.power.miss_energy;
        if (m.op == Op::Load) {
          if (arr->second.fp) {
            set(MVal::of_fp(farrays_.at(m.array)[std::size_t(idx)]));
          } else {
            set(MVal::of_int(iarrays_.at(m.array)[std::size_t(idx)]));
          }
        } else {
          if (arr->second.fp) {
            farrays_.at(m.array)[std::size_t(idx)] = src(m.src2).d();
          } else {
            iarrays_.at(m.array)[std::size_t(idx)] = src(m.src2).n();
          }
        }
        return hit ? 0 : model_.cache.miss_cycles;
      }
    }
    return 0;
  }

  // -- block execution ------------------------------------------------------

  [[nodiscard]] bool uses_stream_timing() const { return stream_ != nullptr; }

  BlockInfo& info_for(const std::vector<MInst>& block, std::int64_t step,
                      bool in_loop) {
    auto [it, fresh] = block_info_.try_emplace(&block);
    if (!fresh) return it->second;
    BlockInfo& info = it->second;
    info.sched = machine::list_schedule(block, model_);
    info.seq_length = sequential_length(block, model_);
    info.slack = load_slack(block, info.sched.cycle);
    info.max_live = estimate_max_live(block);
    if (in_loop) {
      auto carried = machine::carried_deps(block, model_, step);
      info.steady_cycles =
          machine::steady_state_cycles(block, info.sched, carried);
    } else {
      info.steady_cycles = info.sched.length;
    }
    return info;
  }

  /// Executes a straight-line block; `step`/`in_loop` refine the static
  /// timing for loop bodies.
  void exec_block(const std::vector<MInst>& block, std::int64_t step = 1,
                  bool in_loop = false) {
    if (block.empty()) return;
    if (uses_stream_timing()) {
      // Optionally the compiler statically reorders the block first
      // (the -O3 cases on Pentium/ARM).
      if (options_.preset != CompilerPreset::Sequential) {
        BlockInfo& info = info_for(block, step, in_loop);
        std::vector<std::size_t> order(block.size());
        for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return info.sched.cycle[a] < info.sched.cycle[b];
                         });
        // Value execution must stay in program order for correctness of
        // WAR cases; the *timing* stream sees the reordered code. Since
        // the static schedule respects all dependences, executing values
        // in schedule order is also safe.
        std::vector<int> penalty(block.size(), 0);
        for (std::size_t k : order) penalty[k] = exec_inst(block[k]);
        for (std::size_t k : order) stream_->feed(block[k], penalty[k]);
        // Register-pressure spills on tiny register files.
        int spill = info.max_live - model_.regs_for(false);
        if (spill > 0) cycles_ += std::uint64_t(2 * spill);
        return;
      }
      for (const MInst& m : block) {
        int penalty = exec_inst(m);
        stream_->feed(m, penalty);
      }
      return;
    }

    // VLIW static accounting.
    BlockInfo& info = info_for(block, step, in_loop);
    std::uint64_t stalls = 0;
    for (std::size_t k = 0; k < block.size(); ++k) {
      int penalty = exec_inst(block[k]);
      if (penalty > 0) {
        int hidden = options_.preset == CompilerPreset::Sequential
                         ? 0
                         : std::min(info.slack[k], penalty);
        stalls += std::uint64_t(penalty - hidden);
      }
    }
    std::uint64_t base =
        options_.preset == CompilerPreset::Sequential
            ? std::uint64_t(info.seq_length)
            : std::uint64_t(in_loop ? info.steady_cycles : info.sched.length);
    cycles_ += base + stalls;
  }

  // -- regions ---------------------------------------------------------------

  void exec_region(const Region& region) {
    switch (region.kind) {
      case Region::Kind::Block:
        exec_block(region.insts);
        break;
      case Region::Kind::Loop:
        exec_loop(*region.loop, &region);
        break;
      case Region::Kind::Cond: {
        exec_block(region.cond->pred);
        cycles_ += 1;  // branch
        bool taken = regs_[std::size_t(region.cond->pred_reg)].truthy();
        const auto& side =
            taken ? region.cond->then_regions : region.cond->else_regions;
        for (const Region& r : side) exec_region(r);
        break;
      }
    }
  }

  void exec_loop(const machine::LoopRegion& loop, const Region* key) {
    auto [idx_it, fresh_stat] =
        loop_stat_index_.try_emplace(key, loop_stats_ordered_.size());
    if (fresh_stat) loop_stats_ordered_.emplace_back();
    LoopStat& stat = loop_stats_ordered_[idx_it->second];

    // Kernel mode: strong compiler + canonical innermost single-block body.
    const std::vector<MInst>* body_block = nullptr;
    if (loop.body.size() == 1 && loop.body[0].kind == Region::Kind::Block)
      body_block = &loop.body[0].insts;

    KernelInfo* kernel = nullptr;
    if (options_.preset == CompilerPreset::ModuloSched && loop.canonical &&
        body_block != nullptr && !body_block->empty() &&
        stream_ == nullptr) {
      auto [it, fresh] = kernel_info_.try_emplace(key);
      if (fresh) {
        it->second.ims =
            options_.ms_algorithm == MsAlgorithm::Swing
                ? machine::swing_modulo_schedule(*body_block, model_,
                                                 loop.step_value)
                : machine::modulo_schedule(*body_block, model_,
                                           loop.step_value, options_.ims);
        if (it->second.ims.ok) {
          // Modulo slack: distance from a load to its first consumer in
          // schedule slots.
          const auto& ims = it->second.ims;
          it->second.slack.assign(body_block->size(), kInfSlack);
          auto deps_b = machine::block_deps(*body_block, model_);
          auto deps_c =
              machine::carried_deps(*body_block, model_, loop.step_value);
          auto note = [&](const machine::MirDep& d) {
            const MInst& producer = (*body_block)[std::size_t(d.src)];
            if (producer.op != Op::Load) return;
            long s = long(ims.slot[std::size_t(d.dst)]) +
                     long(ims.ii) * d.distance -
                     ims.slot[std::size_t(d.src)];
            it->second.slack[std::size_t(d.src)] = int(std::min<long>(
                it->second.slack[std::size_t(d.src)], s));
          };
          for (const auto& d : deps_b) note(d);
          for (const auto& d : deps_c) note(d);
        }
      }
      if (it->second.ims.ok) kernel = &it->second;
      stat.res_mii = it->second.ims.res_mii;
      stat.rec_mii = it->second.ims.rec_mii;
      if (!it->second.ims.ok)
        stat.ims_fail_reason = it->second.ims.fail_reason;
    }

    if (body_block != nullptr) stat.body_insts = int(body_block->size());

    exec_block(loop.init);
    bool first_kernel_iter = true;
    for (;;) {
      // Condition evaluation: values always run; timing cost below.
      for (const MInst& m : loop.cond) (void)exec_inst(m);
      if (!regs_[std::size_t(loop.cond_reg)].truthy()) break;
      ++stat.iterations;

      if (kernel != nullptr) {
        if (first_kernel_iter) {
          // Pipeline fill.
          cycles_ += std::uint64_t((kernel->ims.stages - 1) * kernel->ims.ii);
          first_kernel_iter = false;
          stat.modulo_scheduled = true;
          stat.ii = kernel->ims.ii;
          stat.stages = kernel->ims.stages;
          stat.bundles_per_iter = kernel->ims.ii;
        }
        std::uint64_t stalls = 0;
        for (std::size_t k = 0; k < body_block->size(); ++k) {
          int penalty = exec_inst((*body_block)[k]);
          if (penalty > 0)
            stalls += std::uint64_t(
                penalty - std::min(kernel->slack[k], penalty));
        }
        cycles_ += std::uint64_t(kernel->ims.ii) + stalls;
        for (const MInst& m : loop.step) (void)exec_inst(m);
        continue;
      }

      for (const Region& r : loop.body) {
        if (r.kind == Region::Kind::Block) {
          exec_block(r.insts, loop.step_value == 0 ? 1 : loop.step_value,
                     /*in_loop=*/true);
        } else {
          exec_region(r);
        }
      }
      if (uses_stream_timing() ||
          options_.preset == CompilerPreset::Sequential) {
        exec_block_timing_only(loop.cond);
        exec_block(loop.step);
      } else {
        // -O3 compilers fold counter update + branch: 1 cycle overhead.
        for (const MInst& m : loop.step) (void)exec_inst(m);
        cycles_ += 1;
      }
      if (body_block != nullptr && !stat.modulo_scheduled &&
          stat.bundles_per_iter == 0) {
        stat.bundles_per_iter =
            info_for(*body_block,
                     loop.step_value == 0 ? 1 : loop.step_value, true)
                .sched.length;
      }
    }
  }

  /// Cond blocks already executed for values; account timing only.
  void exec_block_timing_only(const std::vector<MInst>& block) {
    if (block.empty()) return;
    if (uses_stream_timing()) {
      for (const MInst& m : block) stream_->feed(m, 0);
      return;
    }
    cycles_ += std::uint64_t(sequential_length(block, model_));
  }

  const MirProgram& program_;
  const MachineModel& model_;
  SimOptions options_;
  DirectMappedCache cache_;

  std::vector<MVal> regs_;
  std::map<std::string, std::vector<double>> farrays_;
  std::map<std::string, std::vector<std::int64_t>> iarrays_;

  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  double energy_ = 0.0;

  std::unique_ptr<StreamTiming> stream_;
  std::map<const void*, BlockInfo> block_info_;
  std::map<const void*, KernelInfo> kernel_info_;
  std::map<const void*, std::size_t> loop_stat_index_;
  // Deque: exec_loop holds a reference across nested-loop discovery, so
  // growth must not invalidate references to existing elements.
  std::deque<LoopStat> loop_stats_ordered_;
};

}  // namespace

SimResult simulate(const MirProgram& program, const MachineModel& model,
                   const SimOptions& options) {
  // Fail-safe pipeline injection point: lets tests force a simulator
  // failure without constructing an unsimulatable program.
  if (support::fault::enabled()) {
    if (auto f = support::fault::trigger(support::Stage::Simulate,
                                         options.fault_label)) {
      SimResult result;
      result.error = f->str();
      return result;
    }
  }
  Executor executor(program, model, options);
  return executor.run();
}

}  // namespace slc::sim
