// MIR executor: functional execution (exact values, used for the
// lowering cross-check against the AST interpreter) combined with a
// pluggable timing model that reproduces the paper's measurement setups:
//
//   preset Sequential  — "-O0": in-order, width 1, blocking latencies;
//   preset ListSched   — weak compiler "-O3": static basic-block list
//                        scheduling, no software pipelining (GCC role);
//   preset ModuloSched — strong compiler: Rau IMS on innermost loop
//                        bodies, list scheduling elsewhere (ICC/XLC role).
//
// The machine model's issue style selects the micro-architecture:
// VLIW presets use static schedule lengths with a miss-slack model
// (arithmetic scheduled between a load and its use hides part of a miss);
// Superscalar runs a windowed dynamic-issue scoreboard over the executed
// instruction stream; Scalar runs a single-issue load-use-interlock
// scoreboard (ARM7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/interp.hpp"
#include "machine/ims.hpp"
#include "machine/lower.hpp"
#include "machine/machine_model.hpp"

namespace slc::sim {

enum class CompilerPreset : std::uint8_t {
  Sequential,
  ListSched,
  ModuloSched,
};

[[nodiscard]] const char* to_string(CompilerPreset preset);

/// Which machine-level software pipeliner the ModuloSched preset runs:
/// Rau's iterative MS (ICC/XLC role) or Swing MS (GCC's pipeliner, which
/// the paper calls "a weak Swing MS").
enum class MsAlgorithm : std::uint8_t { Rau, Swing };

struct SimOptions {
  CompilerPreset preset = CompilerPreset::ListSched;
  MsAlgorithm ms_algorithm = MsAlgorithm::Rau;
  std::uint64_t seed = 0;        // memory-fill seed (same as interpreter)
  std::uint64_t max_insts = 200'000'000;
  machine::ImsOptions ims;
  /// Kernel/program label matched against fault-injection @filters
  /// (support/fault.hpp). Purely diagnostic; empty is fine.
  std::string fault_label;
};

/// Per-innermost-loop statistics (the paper reports II and bundle counts
/// per loop).
struct LoopStat {
  bool modulo_scheduled = false;  // IMS succeeded and was used
  int ii = 0;                     // kernel II when modulo scheduled
  int res_mii = 0;
  int rec_mii = 0;
  int stages = 0;
  int bundles_per_iter = 0;  // kernel rows (MS) or schedule length (list)
  int body_insts = 0;
  std::uint64_t iterations = 0;
  std::string ims_fail_reason;    // when ModuloSched fell back
};

struct SimResult {
  bool ok = false;
  std::string error;

  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t mem_misses = 0;
  double energy = 0.0;  // activity-based power model (Panalyzer stand-in)

  std::vector<LoopStat> loops;

  /// Final architectural state for oracle cross-checks against the AST
  /// interpreter (bit-exact for int/double programs).
  interp::MemoryImage memory;
};

/// Executes `program` on `model` under `options`.
[[nodiscard]] SimResult simulate(const machine::MirProgram& program,
                                 const machine::MachineModel& model,
                                 const SimOptions& options = {});

}  // namespace slc::sim
