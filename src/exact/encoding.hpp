// Constraint encoding of source-level modulo scheduling (DESIGN.md §14).
//
// A scheduling instance is the paper's constraint system made explicit:
// one difference constraint per dependence edge,
//
//   sigma(dst) - sigma(src) >= delay(e) - II * distance(e),
//
// over the per-edge delays of slms::compute_delays, plus an optional
// resource model bounding how many MIs of a class may share a schedule
// row (sigma mod II). Two builders are provided:
//
//   * from_ddg — encode a DDG the caller already built (unit tests, the
//     fuzzer's synthetic graphs).
//   * from_placement — encode exactly what the SLMS driver solved: the
//     DDG is rebuilt from the placement's final MIs and split the same
//     way src/verify/dependence.cpp splits it (anti/output edges of
//     scalars planned for renaming are dropped, delays recomputed on the
//     kept graph). This is what makes `ii_exact <= ii_slms` a theorem
//     rather than an observation: the exact solver decides the same
//     relaxation the heuristic searched.
//
// An edge's binding constraint uses its smallest distance (unknown "*"
// distances collapse to 0 per the DepEdge::min_distance contract, which
// makes the instance infeasible at every II — matching the driver's
// refusal to pipeline across unknown distances).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ddg.hpp"
#include "slms/mii.hpp"
#include "slms/placement.hpp"

namespace slc::exact {

/// One dependence constraint sigma(dst) - sigma(src) >= delay - II*distance.
struct DepConstraint {
  int src = 0;
  int dst = 0;
  std::int64_t delay = 1;
  std::int64_t distance = 0;

  [[nodiscard]] std::int64_t weight(std::int64_t ii) const {
    return delay - ii * distance;
  }
};

struct Instance {
  int num_mis = 0;
  std::vector<DepConstraint> deps;
  slms::ResourceModel resources;  // empty => unbounded (the default mode)
};

[[nodiscard]] Instance from_ddg(const analysis::Ddg& ddg,
                                const std::vector<std::int64_t>& delays,
                                slms::ResourceModel resources = {});

[[nodiscard]] Instance from_placement(const slms::LoopPlacement& placement,
                                      slms::ResourceModel resources = {});

/// Machine-style resource classes for a placement's MIs: a memory class
/// (MIs that read or write any array) with `mem_units` slots per row and
/// an issue-width class over every MI. Non-positive unit counts drop the
/// class. This is the opt-in `--exact-resources` model — SLMS itself
/// schedules without resources, so resource-constrained optima are
/// reported for study, not held to the gap >= 0 invariant.
[[nodiscard]] slms::ResourceModel derive_resources(
    const slms::LoopPlacement& placement, int mem_units, int issue_width);

}  // namespace slc::exact
