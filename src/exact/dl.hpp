// Incremental difference-logic core of the exact modulo scheduler.
//
// Maintains a potential function over longest-path constraints
//
//   pot(dst) - pot(src) >= w        (one "edge" src -> dst, weight w)
//
// with potentials implicitly floored at 0 (pot starts at 0 and only ever
// rises, which encodes sigma >= 0). add() repairs the potentials by
// label-correcting propagation seeded at the new constraint — the
// Cotton/Maler incremental scheme transposed to longest paths. Because
// the engine is at a fixpoint before every add(), a positive cycle can
// only close through the new edge, so detection is exact and local: the
// moment propagation relaxes the new edge's *source*, the parent chain
// from that source back to the seed, plus the new edge, is a positive
// cycle. The tags of its constraints are reported for certificates and
// CDCL conflict clauses.
//
// push()/pop() checkpoints restore both the constraint set and the
// potentials, which is what lets the CDCL layer (sat.hpp) use one engine
// across its whole search tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace slc::exact {

class DiffEngine {
 public:
  explicit DiffEngine(int num_nodes);

  /// Adds one constraint. Returns false when it closes a positive
  /// cycle; conflict() then lists the tags of the constraints on that
  /// cycle (the new one included) and the engine state is exactly what
  /// it was before the call — the constraint is not retained.
  bool add(int src, int dst, std::int64_t w, int tag);

  /// LIFO checkpoints: pop() drops every constraint added since the
  /// matching push() and restores the potentials bit-for-bit.
  void push();
  void pop();

  [[nodiscard]] const std::vector<std::int64_t>& potentials() const {
    return pot_;
  }
  [[nodiscard]] const std::vector<int>& conflict() const { return conflict_; }
  /// Relaxations performed so far — the unit the solve budget charges.
  [[nodiscard]] std::int64_t steps() const { return steps_; }

 private:
  struct Edge {
    int src = 0;
    int dst = 0;
    std::int64_t w = 0;
    int tag = 0;
  };
  struct Saved {
    int node = 0;
    std::int64_t pot = 0;
    int parent = -1;
  };
  struct Frame {
    std::size_t edges = 0;
    std::size_t trail = 0;
  };

  void undo_trail(std::size_t mark);

  int n_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;  // edge ids by source node
  std::vector<std::int64_t> pot_;
  std::vector<int> parent_;  // edge id that last relaxed the node, or -1
  std::vector<Saved> trail_;
  std::vector<Frame> frames_;
  std::vector<int> conflict_;
  std::int64_t steps_ = 0;
};

}  // namespace slc::exact
