// Exact modulo scheduler: provably minimal II with certificates.
//
// solve() searches II upward from 1. Every candidate is decided exactly:
//
//   1. Pigeonhole resource count (|members| > units*II => ResourceCount
//      certificate).
//   2. The pure difference core — the dependence constraints over sigma
//      with edge weights delay - II*distance, run through the
//      incremental engine (dl.hpp). A positive cycle is a PositiveCycle
//      certificate; with an empty resource model, feasibility here IS
//      optimality (this upward scan is exactly the difMin method the
//      heuristic MiiSolver uses, so RecMII falls out of it for free) and
//      the minimal potentials are the schedule witness.
//   3. With resources, CDCL over row booleans (sat.hpp) with the
//      difference engine as its theory: sigma splits into
//      II*stage + row, fixed rows turn each dependence into a stage
//      difference constraint, and theory conflicts become Cycle/Overflow
//      lemmas. UNSAT yields a Clausal certificate.
//
// The first feasible II is optimal because every smaller one carries an
// infeasibility certificate; the result keeps the certificate of II*-1
// as the no-improvement proof. A positive cycle with zero total distance
// (or a class with no units) is infeasible at every II -> Infeasible.
// Exhausting the budget mid-candidate degrades to Timeout — the caller
// reports gap=unknown, never an error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "exact/certificate.hpp"
#include "exact/encoding.hpp"

namespace slc::exact {

/// Solver version tag: part of every journal options signature via
/// exact_identity(); bump on any change that can alter answers.
inline constexpr const char* kSolverVersion = "dl-cdcl-1";

enum class ExactStatus { Optimal, Infeasible, Timeout };
[[nodiscard]] const char* to_string(ExactStatus s);

struct ExactOptions {
  /// Wall-clock budget; < 0 disables the clock.
  std::int64_t budget_ms = 2000;
  /// Deterministic step cap (< 0: unlimited). Tests use this to force
  /// the timeout path reproducibly.
  std::int64_t max_steps = -1;
  /// Search cap (inclusive). Defaults to a termination bound past which
  /// a schedule always exists; when set and exhausted, the result is
  /// Infeasible with `capped` set.
  std::optional<int> max_ii;
};

struct ExactStats {
  std::int64_t solve_ns = 0;
  std::int64_t steps = 0;
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  int candidates = 0;  // IIs examined
};

struct ExactResult {
  ExactStatus status = ExactStatus::Timeout;
  int ii = 0;                // the proven-minimal II (status Optimal)
  ScheduleCert schedule;     // witness at ii (status Optimal)
  /// Infeasibility certificate at ii-1 (Optimal, absent when ii == 1),
  /// or at the last II refuted (Infeasible/Timeout, absent when none).
  std::optional<InfeasibilityCert> lower_proof;
  /// Greatest II proven infeasible, plus one; equals max(RecMII, ResMII)
  /// once the scan passes both bounds. On Optimal this equals ii.
  int lower_bound = 1;
  bool capped = false;  // Infeasible only because max_ii cut the search
  ExactStats stats;
};

[[nodiscard]] ExactResult solve(const Instance& inst,
                                const ExactOptions& opts = {});

/// Identity of the exact configuration for journal row keys: solver
/// version, budget, step cap, and whether a resource model constrains
/// the schedule. Rows solved under different exact settings must never
/// be replayed into each other by --resume/--diff-since.
[[nodiscard]] std::string exact_identity(const ExactOptions& opts,
                                         bool with_resources);

}  // namespace slc::exact
