// Shared solve budget for the exact backend: a deterministic step cap
// (every relaxation/propagation/decision charges one step) plus an
// optional wall-clock deadline. The step cap exists so tests can force
// the timeout path deterministically; the deadline is what --exact-
// budget-ms surfaces. Both degrade a row to gap=unknown, never to an
// error.
#pragma once

#include <chrono>
#include <cstdint>

namespace slc::exact {

class Budget {
 public:
  Budget() = default;
  Budget(std::int64_t max_steps, std::int64_t budget_ms)
      : max_steps_(max_steps) {
    if (budget_ms >= 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms);
      has_deadline_ = true;
    }
  }

  /// Records `k` units of work. Returns true while within budget.
  bool charge(std::int64_t k) {
    steps_ += k;
    if (max_steps_ >= 0 && steps_ > max_steps_) exhausted_ = true;
    // The clock is polled once per ~1k steps: cheap enough to never
    // matter, frequent enough that a budget overrun stays small.
    if (has_deadline_ && !exhausted_ && steps_ >= next_clock_check_) {
      next_clock_check_ = steps_ + 1024;
      if (std::chrono::steady_clock::now() > deadline_) exhausted_ = true;
    }
    return !exhausted_;
  }

  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] std::int64_t steps() const { return steps_; }

 private:
  std::int64_t max_steps_ = -1;  // < 0: unlimited
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool exhausted_ = false;
  std::int64_t steps_ = 0;
  std::int64_t next_clock_check_ = 0;
};

}  // namespace slc::exact
