#include "exact/encoding.hpp"

#include <set>
#include <string>
#include <utility>

#include "analysis/access.hpp"

namespace slc::exact {

using analysis::DepEdge;
using analysis::DepKind;

Instance from_ddg(const analysis::Ddg& ddg,
                  const std::vector<std::int64_t>& delays,
                  slms::ResourceModel resources) {
  Instance inst;
  inst.num_mis = ddg.num_nodes;
  inst.resources = std::move(resources);
  inst.deps.reserve(ddg.edges.size());
  for (std::size_t k = 0; k < ddg.edges.size(); ++k) {
    const DepEdge& e = ddg.edges[k];
    inst.deps.push_back({e.src, e.dst, delays[k], e.min_distance()});
  }
  return inst;
}

Instance from_placement(const slms::LoopPlacement& placement,
                        slms::ResourceModel resources) {
  std::vector<const ast::Stmt*> mis;
  mis.reserve(placement.mis.size());
  for (const ast::StmtPtr& m : placement.mis) mis.push_back(m.get());
  analysis::Ddg full =
      analysis::build_ddg(mis, placement.iv, placement.step);

  // Split exactly like the driver (and the verifier's replay): anti and
  // output edges through scalars planned for renaming were dropped
  // before solving, and delays are recomputed on the kept graph because
  // the forward-delay rule depends on the graph shape.
  const std::set<std::string> planned(placement.planned.begin(),
                                      placement.planned.end());
  analysis::Ddg spec;
  spec.num_nodes = full.num_nodes;
  for (DepEdge& e : full.edges)
    if (e.kind == DepKind::Flow || planned.count(e.var) == 0)
      spec.edges.push_back(std::move(e));

  return from_ddg(spec, slms::compute_delays(spec), std::move(resources));
}

slms::ResourceModel derive_resources(const slms::LoopPlacement& placement,
                                     int mem_units, int issue_width) {
  slms::ResourceModel model;
  if (mem_units > 0) {
    slms::ResourceClass mem;
    mem.name = "mem";
    mem.units = mem_units;
    for (int k = 0; k < int(placement.mis.size()); ++k) {
      analysis::AccessSet acc =
          analysis::collect_accesses(*placement.mis[std::size_t(k)]);
      if (!acc.arrays.empty()) mem.members.push_back(k);
    }
    if (!mem.members.empty()) model.classes.push_back(std::move(mem));
  }
  if (issue_width > 0) {
    slms::ResourceClass issue;
    issue.name = "issue";
    issue.units = issue_width;
    for (int k = 0; k < int(placement.mis.size()); ++k)
      issue.members.push_back(k);
    if (!issue.members.empty()) model.classes.push_back(std::move(issue));
  }
  return model;
}

}  // namespace slc::exact
