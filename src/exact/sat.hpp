// CDCL layer of the exact modulo scheduler (DPLL(T) over row booleans).
//
// A deliberately small conflict-driven solver: two-watched-literal
// propagation, first-UIP conflict analysis, non-chronological
// backjumping, and a static decision order (lowest unassigned variable,
// tried true first — variables are laid out MI-major/row-minor, so this
// walks MIs in source order through the rows). No restarts and no
// activity heuristics: instances are a loop body's MIs times its II.
//
// The theory hook is how the difference-logic core participates: the
// solver reports every trail extension to the Theory in order; the
// theory may veto an assignment with a conflict clause (a ProofClause
// whose literals are all currently false), which the solver adds to the
// database, logs to the proof, and resolves like any other conflict.
// Every learned clause is logged too, so an UNSAT run leaves behind a
// checkable clausal refutation ending in the empty clause
// (certificate.hpp validates it by RUP).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "exact/budget.hpp"
#include "exact/certificate.hpp"

namespace slc::exact {

using Lit = int;  // +v / -v over variables v in [1, num_vars]

class Theory {
 public:
  virtual ~Theory() = default;

  /// Notified once per literal appended to the trail, in trail order.
  /// Must record exactly one undo entry per call (even when vetoing).
  /// Returns false on a theory conflict, filling *out with a lemma
  /// clause whose literals are all false under the current assignment.
  virtual bool on_assign(Lit lit, ProofClause* out) = 0;

  /// The trail shrank to `new_size` literals: pop undo entries past it.
  virtual void on_backtrack(std::size_t new_size) = 0;
};

enum class SatStatus { Sat, Unsat, Budget };

struct SatStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
};

class CdclSolver {
 public:
  /// `theory` may be null (pure boolean solving); not owned.
  CdclSolver(int num_vars, Theory* theory);

  /// Adds a problem clause (before solve; literals must be distinct and
  /// non-tautological, which the row encoding guarantees).
  void add_clause(const std::vector<Lit>& lits);

  /// Solves under `budget`; appends lemma + learned clauses to *proof
  /// (ending with the empty clause when Unsat). `proof` may be null.
  SatStatus solve(Budget& budget, std::vector<ProofClause>* proof,
                  SatStats* stats);

  /// Model value of a variable after Sat.
  [[nodiscard]] bool value(int var) const {
    return val_[std::size_t(var)] == 1;
  }

 private:
  [[nodiscard]] int lit_value(Lit l) const {  // 1 true, -1 false, 0 unset
    const int v = val_[std::size_t(std::abs(l))];
    return l > 0 ? v : -v;
  }
  [[nodiscard]] std::size_t widx(Lit l) const {
    return 2 * std::size_t(std::abs(l)) + (l < 0 ? 1 : 0);
  }
  [[nodiscard]] int current_level() const { return int(trail_lim_.size()); }

  void enqueue(Lit l, int reason);
  void attach_clause(int cid);
  int propagate(std::vector<ProofClause>* proof, SatStats* stats);
  std::vector<Lit> analyze(int confl, int* out_btlevel);
  void backtrack(int level);

  int nvars_;
  Theory* theory_;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<std::vector<int>> watches_;  // clause ids by watched literal
  std::vector<std::int8_t> val_;
  std::vector<int> level_;
  std::vector<int> reason_;  // clause id, or -1 (decision / unset)
  std::vector<char> seen_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::size_t theory_head_ = 0;
  Budget* budget_ = nullptr;
  bool unsat0_ = false;
};

}  // namespace slc::exact
