#include "exact/certificate.hpp"

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "support/int_math.hpp"

namespace slc::exact {

namespace {

bool fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
  return false;
}

/// The implicit problem clauses of the clausal encoding at `ii`: one-hot
/// row selection per MI (at-least-one + pairwise at-most-one).
std::vector<std::vector<int>> problem_clauses(int num_mis, int ii) {
  std::vector<std::vector<int>> db;
  for (int mi = 0; mi < num_mis; ++mi) {
    std::vector<int> alo;
    alo.reserve(std::size_t(ii));
    for (int r = 0; r < ii; ++r) alo.push_back(row_var(mi, r, ii));
    db.push_back(std::move(alo));
    for (int r = 0; r < ii; ++r)
      for (int r2 = r + 1; r2 < ii; ++r2)
        db.push_back({-row_var(mi, r, ii), -row_var(mi, r2, ii)});
  }
  return db;
}

/// Naive unit propagation to fixpoint; returns true when a conflict is
/// derived. Small and obviously-correct beats fast here — this is the
/// trusted base of the proof checker.
bool rup_conflict(const std::vector<std::vector<int>>& db, int num_vars,
                  const std::vector<int>& assumed_false) {
  std::vector<std::int8_t> val(std::size_t(num_vars) + 1, 0);
  auto lit_val = [&](int lit) -> int {
    int v = val[std::size_t(std::abs(lit))];
    return lit > 0 ? v : -v;
  };
  for (int lit : assumed_false) {
    if (lit_val(lit) == 1) return false;  // clause already satisfied
    val[std::size_t(std::abs(lit))] = std::int8_t(lit > 0 ? -1 : 1);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::vector<int>& clause : db) {
      int unassigned = 0;
      int unit = 0;
      bool satisfied = false;
      for (int lit : clause) {
        const int v = lit_val(lit);
        if (v == 1) {
          satisfied = true;
          break;
        }
        if (v == 0) {
          ++unassigned;
          unit = lit;
          if (unassigned > 1) break;
        }
      }
      if (satisfied || unassigned > 1) continue;
      if (unassigned == 0) return true;  // conflict
      val[std::size_t(std::abs(unit))] = std::int8_t(unit > 0 ? 1 : -1);
      changed = true;
    }
  }
  return false;
}

/// Decodes all-negative row literals into an mi -> row map.
bool decode_rows(const std::vector<int>& lits, int num_mis, int ii,
                 std::map<int, int>* rows, std::string* why) {
  for (int lit : lits) {
    if (lit >= 0) return fail(why, "row literal is not negative");
    const int var = -lit;
    if (var < 1 || var > num_mis * ii)
      return fail(why, "row literal out of range");
    const int mi = var_mi(var, ii);
    const int row = var_row(var, ii);
    auto [it, inserted] = rows->emplace(mi, row);
    if (!inserted && it->second != row)
      return fail(why, "two different rows claimed for one MI");
  }
  return true;
}

/// Checks that `dep_indices` is an ordered closed cycle in `inst` and
/// returns its total (delay, distance) via out-params.
bool closed_cycle(const Instance& inst, const std::vector<int>& dep_indices,
                  std::string* why) {
  if (dep_indices.empty()) return fail(why, "empty dependence cycle");
  for (std::size_t k = 0; k < dep_indices.size(); ++k) {
    const int d = dep_indices[k];
    if (d < 0 || d >= int(inst.deps.size()))
      return fail(why, "dependence index out of range");
    const int next = dep_indices[(k + 1) % dep_indices.size()];
    if (inst.deps[std::size_t(d)].dst != inst.deps[std::size_t(next)].src)
      return fail(why, "dependence edges do not form a closed cycle");
  }
  return true;
}

bool check_cycle_lemma(const Instance& inst, int ii, const ProofClause& pc,
                       std::string* why) {
  std::map<int, int> rows;
  if (!decode_rows(pc.lits, inst.num_mis, ii, &rows, why)) return false;
  if (!closed_cycle(inst, pc.dep_indices, why)) return false;
  // Under the rows the clause negates, the stage-difference constraints
  // around the cycle must be unsatisfiable: their weights sum positive.
  std::int64_t total = 0;
  for (int d : pc.dep_indices) {
    const DepConstraint& dep = inst.deps[std::size_t(d)];
    auto src_it = rows.find(dep.src);
    auto dst_it = rows.find(dep.dst);
    if (src_it == rows.end() || dst_it == rows.end())
      return fail(why, "cycle endpoint row is not fixed by the clause");
    total += ceil_div(dep.delay - dst_it->second + src_it->second, ii) -
             dep.distance;
  }
  if (total <= 0)
    return fail(why, "claimed stage cycle is not positive");
  return true;
}

bool check_overflow_lemma(const Instance& inst, int ii,
                          const ProofClause& pc, std::string* why) {
  if (pc.class_index < 0 ||
      pc.class_index >= int(inst.resources.classes.size()))
    return fail(why, "resource class index out of range");
  const slms::ResourceClass& cls =
      inst.resources.classes[std::size_t(pc.class_index)];
  if (pc.row < 0 || pc.row >= ii)
    return fail(why, "overflow row out of range");
  const std::set<int> members(cls.members.begin(), cls.members.end());
  std::set<int> seen;
  for (int lit : pc.lits) {
    if (lit >= 0) return fail(why, "overflow literal is not negative");
    const int var = -lit;
    if (var < 1 || var > inst.num_mis * ii)
      return fail(why, "overflow literal out of range");
    if (var_row(var, ii) != pc.row)
      return fail(why, "overflow literal names a different row");
    const int mi = var_mi(var, ii);
    if (members.count(mi) == 0)
      return fail(why, "overflow literal names an MI outside the class");
    if (!seen.insert(mi).second)
      return fail(why, "duplicate MI in overflow clause");
  }
  if (int(seen.size()) <= cls.units)
    return fail(why, "overflow clause does not exceed the unit count");
  return true;
}

}  // namespace

bool check_schedule(const Instance& inst, const ScheduleCert& cert,
                    std::string* why) {
  if (cert.ii < 1) return fail(why, "II must be positive");
  if (int(cert.sigma.size()) != inst.num_mis)
    return fail(why, "sigma size disagrees with the MI count");
  for (std::size_t k = 0; k < cert.sigma.size(); ++k)
    if (cert.sigma[k] < 0)
      return fail(why, "negative slot for MI " + std::to_string(k + 1));
  for (std::size_t k = 0; k < inst.deps.size(); ++k) {
    const DepConstraint& d = inst.deps[k];
    const std::int64_t lhs =
        cert.sigma[std::size_t(d.dst)] - cert.sigma[std::size_t(d.src)];
    if (lhs >= d.weight(cert.ii)) continue;
    std::ostringstream msg;
    msg << "dependence " << k << " violated: sigma(" << d.dst
        << ") - sigma(" << d.src << ") = " << lhs << " < " << d.delay
        << " - " << cert.ii << "*" << d.distance;
    return fail(why, msg.str());
  }
  for (std::size_t c = 0; c < inst.resources.classes.size(); ++c) {
    const slms::ResourceClass& cls = inst.resources.classes[c];
    std::vector<int> per_row(std::size_t(cert.ii), 0);
    for (int mi : cls.members) {
      if (mi < 0 || mi >= inst.num_mis)
        return fail(why, "resource class member out of range");
      const std::int64_t row = cert.sigma[std::size_t(mi)] % cert.ii;
      if (++per_row[std::size_t(row)] > cls.units)
        return fail(why, "resource class '" + cls.name + "' overcommits row " +
                             std::to_string(row));
    }
  }
  return true;
}

bool check_infeasibility(const Instance& inst, const InfeasibilityCert& cert,
                         std::string* why) {
  if (cert.ii < 1) return fail(why, "II must be positive");

  switch (cert.kind) {
    case InfeasibilityCert::Kind::PositiveCycle: {
      if (!closed_cycle(inst, cert.dep_indices, why)) return false;
      std::int64_t delay = 0;
      std::int64_t dist = 0;
      for (int d : cert.dep_indices) {
        delay += inst.deps[std::size_t(d)].delay;
        dist += inst.deps[std::size_t(d)].distance;
      }
      if (delay - std::int64_t(cert.ii) * dist <= 0)
        return fail(why, "claimed cycle is not positive at this II");
      if (cert.distance_free && dist != 0)
        return fail(why, "cycle claimed distance-free carries distance");
      return true;
    }

    case InfeasibilityCert::Kind::ResourceCount: {
      if (cert.class_index < 0 ||
          cert.class_index >= int(inst.resources.classes.size()))
        return fail(why, "resource class index out of range");
      const slms::ResourceClass& cls =
          inst.resources.classes[std::size_t(cert.class_index)];
      if (cls.units <= 0)
        return !cls.members.empty() ||
               fail(why, "empty class with no units proves nothing");
      if (std::int64_t(cls.members.size()) <=
          std::int64_t(cls.units) * cert.ii)
        return fail(why, "class members fit into units * II rows");
      return true;
    }

    case InfeasibilityCert::Kind::Clausal: {
      if (cert.clauses.empty())
        return fail(why, "clausal proof is empty");
      const int num_vars = inst.num_mis * cert.ii;
      std::vector<std::vector<int>> db =
          problem_clauses(inst.num_mis, cert.ii);
      for (std::size_t i = 0; i < cert.clauses.size(); ++i) {
        const ProofClause& pc = cert.clauses[i];
        for (int lit : pc.lits)
          if (lit == 0 || std::abs(lit) > num_vars)
            return fail(why, "proof clause " + std::to_string(i) +
                                 " invalid: literal out of range");
        bool ok = false;
        std::string sub;
        switch (pc.kind) {
          case ProofClause::Kind::Cycle:
            ok = check_cycle_lemma(inst, cert.ii, pc, &sub);
            break;
          case ProofClause::Kind::Overflow:
            ok = check_overflow_lemma(inst, cert.ii, pc, &sub);
            break;
          case ProofClause::Kind::Learned:
            ok = rup_conflict(db, num_vars, pc.lits);
            if (!ok) sub = "clause is not RUP over the prior database";
            break;
        }
        if (!ok)
          return fail(why, "proof clause " + std::to_string(i) +
                               " invalid: " + sub);
        db.push_back(pc.lits);
      }
      if (!cert.clauses.back().lits.empty())
        return fail(why, "proof does not end with the empty clause");
      return true;
    }
  }
  return fail(why, "unknown certificate kind");
}

}  // namespace slc::exact
