#include "exact/dl.hpp"

#include <algorithm>
#include <deque>

namespace slc::exact {

DiffEngine::DiffEngine(int num_nodes)
    : n_(num_nodes),
      out_(std::size_t(num_nodes)),
      pot_(std::size_t(num_nodes), 0),
      parent_(std::size_t(num_nodes), -1) {}

void DiffEngine::push() { frames_.push_back({edges_.size(), trail_.size()}); }

void DiffEngine::pop() {
  const Frame f = frames_.back();
  frames_.pop_back();
  undo_trail(f.trail);
  while (edges_.size() > f.edges) {
    out_[std::size_t(edges_.back().src)].pop_back();
    edges_.pop_back();
  }
}

void DiffEngine::undo_trail(std::size_t mark) {
  while (trail_.size() > mark) {
    const Saved& s = trail_.back();
    pot_[std::size_t(s.node)] = s.pot;
    parent_[std::size_t(s.node)] = s.parent;
    trail_.pop_back();
  }
}

bool DiffEngine::add(int src, int dst, std::int64_t w, int tag) {
  ++steps_;
  if (pot_[std::size_t(dst)] >= pot_[std::size_t(src)] + w) {
    edges_.push_back({src, dst, w, tag});
    out_[std::size_t(src)].push_back(int(edges_.size()) - 1);
    return true;
  }
  if (src == dst) {  // violated self constraint: w > 0 on its own cycle
    conflict_.assign(1, tag);
    return false;
  }

  const int id = int(edges_.size());
  edges_.push_back({src, dst, w, tag});
  out_[std::size_t(src)].push_back(id);
  const std::size_t mark = trail_.size();

  auto relax = [&](int node, std::int64_t val, int via) {
    trail_.push_back(
        {node, pot_[std::size_t(node)], parent_[std::size_t(node)]});
    pot_[std::size_t(node)] = val;
    parent_[std::size_t(node)] = via;
    ++steps_;
  };

  std::deque<int> queue;
  relax(dst, pot_[std::size_t(src)] + w, id);
  queue.push_back(dst);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int eid : out_[std::size_t(u)]) {
      const Edge& e = edges_[std::size_t(eid)];
      const std::int64_t cand = pot_[std::size_t(u)] + e.w;
      if (cand <= pot_[std::size_t(e.dst)]) continue;
      if (e.dst != src) {
        relax(e.dst, cand, eid);
        queue.push_back(e.dst);
        continue;
      }
      // Relaxing the new edge's source closes a positive cycle: the
      // engine was at a fixpoint before this add(), so no cycle avoids
      // the new edge, and the strict increase of pot(src) makes the
      // cycle weight > 0. Walk the parent chain from u back toward the
      // seed. Parent and potential are always written together, so any
      // *revisit* on the walk is itself a positive parent cycle (the
      // timestamps around it cannot all decrease) — extract whichever
      // closes first.
      conflict_.clear();
      std::vector<int> pos(std::size_t(n_), -1);
      std::vector<int> tags;  // tags[j]: parent edge of j-th walked node
      int x = u;
      bool closed = false;
      while (!closed) {
        if (pos[std::size_t(x)] != -1) {
          // Parent cycle: the edges since the first visit of x.
          conflict_.assign(tags.begin() + pos[std::size_t(x)], tags.end());
          std::reverse(conflict_.begin(), conflict_.end());
          closed = true;
          break;
        }
        pos[std::size_t(x)] = int(tags.size());
        const int peid = parent_[std::size_t(x)];
        tags.push_back(edges_[std::size_t(peid)].tag);
        if (peid == id) {
          // Reached the seed: new edge, chain down to u, then u -> src.
          conflict_.assign(tags.rbegin(), tags.rend());
          conflict_.push_back(e.tag);
          closed = true;
          break;
        }
        x = edges_[std::size_t(peid)].src;
      }
      undo_trail(mark);
      out_[std::size_t(src)].pop_back();
      edges_.pop_back();
      return false;
    }
  }
  return true;
}

}  // namespace slc::exact
