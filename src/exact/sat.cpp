#include "exact/sat.hpp"

#include <algorithm>
#include <utility>

namespace slc::exact {

CdclSolver::CdclSolver(int num_vars, Theory* theory)
    : nvars_(num_vars),
      theory_(theory),
      watches_(2 * std::size_t(num_vars) + 2),
      val_(std::size_t(num_vars) + 1, 0),
      level_(std::size_t(num_vars) + 1, 0),
      reason_(std::size_t(num_vars) + 1, -1),
      seen_(std::size_t(num_vars) + 1, 0) {}

void CdclSolver::enqueue(Lit l, int reason) {
  const std::size_t v = std::size_t(std::abs(l));
  val_[v] = std::int8_t(l > 0 ? 1 : -1);
  level_[v] = current_level();
  reason_[v] = reason;
  trail_.push_back(l);
  if (budget_ != nullptr) budget_->charge(1);
}

void CdclSolver::attach_clause(int cid) {
  std::vector<Lit>& c = clauses_[std::size_t(cid)];
  if (c.size() < 2) return;  // unit clauses live on the level-0 trail
  // Watch the two literals assigned last (unassigned counts as "last"):
  // after any backtrack that could make the clause relevant again, both
  // watches are unassigned, which is the two-watch invariant.
  auto rank = [&](Lit l) {
    return lit_value(l) == 0 ? int(1u << 30) : level_[std::size_t(std::abs(l))];
  };
  for (std::size_t k = 1; k < c.size(); ++k)
    if (rank(c[k]) > rank(c[0])) std::swap(c[0], c[k]);
  for (std::size_t k = 2; k < c.size(); ++k)
    if (rank(c[k]) > rank(c[1])) std::swap(c[1], c[k]);
  watches_[widx(c[0])].push_back(cid);
  watches_[widx(c[1])].push_back(cid);
}

void CdclSolver::add_clause(const std::vector<Lit>& lits) {
  if (lits.empty()) {
    unsat0_ = true;
    return;
  }
  const int cid = int(clauses_.size());
  clauses_.push_back(lits);
  if (lits.size() == 1) {
    const int v = lit_value(lits[0]);
    if (v == -1)
      unsat0_ = true;
    else if (v == 0)
      enqueue(lits[0], cid);
    return;
  }
  attach_clause(cid);
}

void CdclSolver::backtrack(int level) {
  while (trail_.size() > trail_lim_[std::size_t(level)]) {
    const std::size_t v = std::size_t(std::abs(trail_.back()));
    val_[v] = 0;
    reason_[v] = -1;
    trail_.pop_back();
  }
  trail_lim_.resize(std::size_t(level));
  if (theory_ != nullptr && theory_head_ > trail_.size())
    theory_->on_backtrack(trail_.size());
  theory_head_ = std::min(theory_head_, trail_.size());
  qhead_ = std::min(qhead_, trail_.size());
}

int CdclSolver::propagate(std::vector<ProofClause>* proof, SatStats* stats) {
  while (true) {
    if (qhead_ < trail_.size()) {
      const Lit p = trail_[qhead_++];
      ++stats->propagations;
      std::vector<int>& ws = watches_[widx(-p)];
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < ws.size()) {
        const int cid = ws[i++];
        std::vector<Lit>& c = clauses_[std::size_t(cid)];
        if (c[0] == -p) std::swap(c[0], c[1]);
        if (lit_value(c[0]) == 1) {  // satisfied: keep watching
          ws[j++] = cid;
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (lit_value(c[k]) != -1) {
            std::swap(c[1], c[k]);
            watches_[widx(c[1])].push_back(cid);
            moved = true;
            break;
          }
        }
        if (moved) continue;
        ws[j++] = cid;  // clause stays watched on -p
        if (lit_value(c[0]) == -1) {  // every literal false: conflict
          while (i < ws.size()) ws[j++] = ws[i++];
          ws.resize(j);
          return cid;
        }
        enqueue(c[0], cid);  // unit
      }
      ws.resize(j);
    } else if (theory_ != nullptr && theory_head_ < trail_.size()) {
      const Lit p = trail_[theory_head_++];
      ProofClause lemma;
      if (!theory_->on_assign(p, &lemma)) {
        if (proof != nullptr) proof->push_back(lemma);
        const int cid = int(clauses_.size());
        clauses_.push_back(lemma.lits);
        attach_clause(cid);
        return cid;
      }
    } else {
      return -1;
    }
  }
}

std::vector<Lit> CdclSolver::analyze(int confl, int* out_btlevel) {
  std::vector<Lit> learned{0};  // slot 0: the asserting (first-UIP) literal
  int counter = 0;
  Lit asserted = 0;  // trail literal whose reason clause is resolved next
  std::size_t idx = trail_.size();
  int cid = confl;
  do {
    const std::vector<Lit>& c = clauses_[std::size_t(cid)];
    for (const Lit q : c) {
      if (q == asserted) continue;  // the literal this reason asserted
      const std::size_t v = std::size_t(std::abs(q));
      if (seen_[v] != 0 || level_[v] == 0) continue;
      seen_[v] = 1;
      if (level_[v] == current_level())
        ++counter;
      else
        learned.push_back(q);
    }
    do {
      --idx;
    } while (seen_[std::size_t(std::abs(trail_[idx]))] == 0);
    asserted = trail_[idx];
    seen_[std::size_t(std::abs(asserted))] = 0;
    cid = reason_[std::size_t(std::abs(asserted))];
    --counter;
  } while (counter > 0);
  learned[0] = -asserted;

  int bt = 0;
  for (std::size_t k = 1; k < learned.size(); ++k) {
    const std::size_t v = std::size_t(std::abs(learned[k]));
    seen_[v] = 0;
    bt = std::max(bt, level_[v]);
  }
  *out_btlevel = bt;
  return learned;
}

SatStatus CdclSolver::solve(Budget& budget, std::vector<ProofClause>* proof,
                            SatStats* stats) {
  budget_ = &budget;
  auto log_learned = [&](std::vector<Lit> lits) {
    if (proof == nullptr) return;
    ProofClause pc;
    pc.kind = ProofClause::Kind::Learned;
    pc.lits = std::move(lits);
    proof->push_back(std::move(pc));
  };
  auto unsat = [&]() {
    log_learned({});
    return SatStatus::Unsat;
  };
  if (unsat0_) return unsat();

  while (true) {
    const int confl = propagate(proof, stats);
    if (confl >= 0) {
      ++stats->conflicts;
      if (current_level() == 0) return unsat();
      int bt = 0;
      std::vector<Lit> learned = analyze(confl, &bt);
      log_learned(learned);
      const int cid = int(clauses_.size());
      clauses_.push_back(std::move(learned));
      backtrack(bt);
      attach_clause(cid);
      enqueue(clauses_[std::size_t(cid)][0], cid);
      continue;
    }
    if (budget.exhausted()) return SatStatus::Budget;
    int decision = 0;
    for (int v = 1; v <= nvars_; ++v) {
      if (val_[std::size_t(v)] == 0) {
        decision = v;
        break;
      }
    }
    if (decision == 0) return SatStatus::Sat;
    ++stats->decisions;
    trail_lim_.push_back(trail_.size());
    enqueue(decision, -1);
  }
}

}  // namespace slc::exact
