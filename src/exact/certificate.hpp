// Certificates of the exact scheduler's answers, and their checkers.
//
// The solver (solver.hpp) never asks to be trusted: every SAT answer
// carries a concrete schedule and every UNSAT answer carries a proof
// object, and both are validated by the small, solver-independent
// routines here (the driver additionally replays SAT schedules through
// src/verify's dependence machinery). Three proof shapes cover all
// UNSAT answers:
//
//   * PositiveCycle — a dependence cycle whose total delay exceeds
//     II * total distance: no sigma can satisfy it. A cycle with zero
//     total distance is infeasible at *every* II (distance_free).
//   * ResourceCount — pigeonhole: a resource class with more members
//     than units * II cannot place one member instance per row.
//   * Clausal — a resource-constrained refutation: an ordered lemma
//     list over the row booleans x(mi,row). Theory lemmas (Cycle /
//     Overflow) are verified arithmetically from their own
//     justification; Learned clauses are verified by reverse unit
//     propagation (RUP) over the implicit one-hot problem clauses plus
//     every earlier clause; the list ends with the empty clause.
//
// Variable numbering for the clausal form: x(mi,row) = mi*II + row + 1,
// literals DIMACS-style (+v true / -v false).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exact/encoding.hpp"

namespace slc::exact {

[[nodiscard]] inline int row_var(int mi, int row, int ii) {
  return mi * ii + row + 1;
}
[[nodiscard]] inline int var_mi(int var, int ii) { return (var - 1) / ii; }
[[nodiscard]] inline int var_row(int var, int ii) { return (var - 1) % ii; }

/// A concrete schedule claimed optimal at `ii`.
struct ScheduleCert {
  int ii = 0;
  std::vector<std::int64_t> sigma;
};

struct ProofClause {
  enum class Kind { Cycle, Overflow, Learned };
  Kind kind = Kind::Learned;
  std::vector<int> lits;         // all-false row literals (Cycle/Overflow)
  std::vector<int> dep_indices;  // Cycle: deps on the positive stage cycle
  int class_index = -1;          // Overflow: overfull resource class
  int row = -1;                  // Overflow: the overfull row
};

struct InfeasibilityCert {
  enum class Kind { PositiveCycle, ResourceCount, Clausal };
  int ii = 0;
  Kind kind = Kind::PositiveCycle;
  std::vector<int> dep_indices;      // PositiveCycle: ordered closed cycle
  bool distance_free = false;        // cycle distance sums to 0: no II works
  int class_index = -1;              // ResourceCount
  std::vector<ProofClause> clauses;  // Clausal: ends with the empty clause
};

/// Re-checks a schedule against every dependence constraint and resource
/// row count of `inst`. Independent of the solver's data structures.
[[nodiscard]] bool check_schedule(const Instance& inst,
                                  const ScheduleCert& cert,
                                  std::string* why = nullptr);

/// Validates an infeasibility proof for `inst` at `cert.ii`.
[[nodiscard]] bool check_infeasibility(const Instance& inst,
                                       const InfeasibilityCert& cert,
                                       std::string* why = nullptr);

}  // namespace slc::exact
