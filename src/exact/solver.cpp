#include "exact/solver.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "exact/budget.hpp"
#include "exact/dl.hpp"
#include "exact/sat.hpp"
#include "support/int_math.hpp"

namespace slc::exact {

namespace {

/// DPLL(T) theory: fixed rows turn dependences into stage-difference
/// constraints fed to the incremental difference engine; resource rows
/// are counted eagerly. Conflicts come back as Cycle/Overflow lemmas
/// over the row literals that caused them.
class RowTheory final : public Theory {
 public:
  RowTheory(const Instance& inst, int ii, Budget& budget)
      : inst_(inst),
        ii_(ii),
        budget_(budget),
        dl_(inst.num_mis),
        row_of_(std::size_t(inst.num_mis), -1),
        deps_of_(std::size_t(inst.num_mis)),
        classes_of_(std::size_t(inst.num_mis)) {
    for (int d = 0; d < int(inst_.deps.size()); ++d) {
      const DepConstraint& dep = inst_.deps[std::size_t(d)];
      deps_of_[std::size_t(dep.src)].push_back(d);
      if (dep.dst != dep.src) deps_of_[std::size_t(dep.dst)].push_back(d);
    }
    counts_.resize(inst_.resources.classes.size());
    for (int c = 0; c < int(inst_.resources.classes.size()); ++c) {
      counts_[std::size_t(c)].assign(std::size_t(ii), 0);
      for (int m : inst_.resources.classes[std::size_t(c)].members)
        classes_of_[std::size_t(m)].push_back(c);
    }
  }

  bool on_assign(Lit lit, ProofClause* out) override {
    Record rec;
    bool ok = true;
    if (lit > 0) {
      const int mi = var_mi(lit, ii_);
      const int row = var_row(lit, ii_);
      rec.mi = mi;
      rec.row = row;
      dl_.push();
      row_of_[std::size_t(mi)] = row;
      for (int c : classes_of_[std::size_t(mi)]) {
        const slms::ResourceClass& cls =
            inst_.resources.classes[std::size_t(c)];
        const int cnt = ++counts_[std::size_t(c)][std::size_t(row)];
        if (ok && cnt > cls.units) {
          ok = false;
          out->kind = ProofClause::Kind::Overflow;
          out->class_index = c;
          out->row = row;
          for (int m : cls.members)
            if (row_of_[std::size_t(m)] == row)
              out->lits.push_back(-row_var(m, row, ii_));
        }
      }
      if (ok) {
        for (int d : deps_of_[std::size_t(mi)]) {
          const DepConstraint& dep = inst_.deps[std::size_t(d)];
          const int ra = row_of_[std::size_t(dep.src)];
          const int rb = row_of_[std::size_t(dep.dst)];
          if (ra < 0 || rb < 0) continue;
          const std::int64_t w =
              ceil_div(dep.delay - rb + ra, ii_) - dep.distance;
          const std::int64_t s0 = dl_.steps();
          const bool added = dl_.add(dep.src, dep.dst, w, d);
          budget_.charge(dl_.steps() - s0);
          if (!added) {
            ok = false;
            out->kind = ProofClause::Kind::Cycle;
            out->dep_indices = dl_.conflict();
            std::set<int> mis;
            for (int cd : out->dep_indices) {
              mis.insert(inst_.deps[std::size_t(cd)].src);
              mis.insert(inst_.deps[std::size_t(cd)].dst);
            }
            for (int m : mis)
              out->lits.push_back(
                  -row_var(m, row_of_[std::size_t(m)], ii_));
            break;
          }
        }
      }
    }
    records_.push_back(rec);
    return ok;
  }

  void on_backtrack(std::size_t new_size) override {
    while (records_.size() > new_size) {
      const Record& r = records_.back();
      if (r.mi >= 0) {
        for (int c : classes_of_[std::size_t(r.mi)])
          --counts_[std::size_t(c)][std::size_t(r.row)];
        row_of_[std::size_t(r.mi)] = -1;
        dl_.pop();
      }
      records_.pop_back();
    }
  }

  [[nodiscard]] const DiffEngine& dl() const { return dl_; }
  [[nodiscard]] int row_of(int mi) const {
    return row_of_[std::size_t(mi)];
  }

 private:
  struct Record {
    int mi = -1;  // < 0: literal did not fix a row
    int row = -1;
  };

  const Instance& inst_;
  int ii_;
  Budget& budget_;
  DiffEngine dl_;
  std::vector<int> row_of_;
  std::vector<std::vector<int>> deps_of_;
  std::vector<std::vector<int>> classes_of_;
  std::vector<std::vector<int>> counts_;  // per class, per row
  std::vector<Record> records_;
};

/// Decide one candidate II exactly. Fills exactly one of *schedule /
/// *proof on a definite answer; returns Budget when the budget died.
enum class Candidate { Sat, Unsat, Budget };

Candidate try_ii(const Instance& inst, int ii, Budget& budget,
                 ExactStats* stats, ScheduleCert* schedule,
                 InfeasibilityCert* proof) {
  proof->ii = ii;

  // 1. Pigeonhole on every resource class.
  for (int c = 0; c < int(inst.resources.classes.size()); ++c) {
    const slms::ResourceClass& cls = inst.resources.classes[std::size_t(c)];
    const bool starved = cls.units <= 0 && !cls.members.empty();
    if (starved || std::int64_t(cls.members.size()) >
                       std::int64_t(std::max(cls.units, 0)) * ii) {
      proof->kind = InfeasibilityCert::Kind::ResourceCount;
      proof->class_index = c;
      return Candidate::Unsat;
    }
  }

  // 2. Difference core over sigma.
  DiffEngine core(inst.num_mis);
  for (int d = 0; d < int(inst.deps.size()); ++d) {
    const DepConstraint& dep = inst.deps[std::size_t(d)];
    const std::int64_t s0 = core.steps();
    const bool added = core.add(dep.src, dep.dst, dep.weight(ii), d);
    const bool alive = budget.charge(core.steps() - s0);
    if (!added) {
      proof->kind = InfeasibilityCert::Kind::PositiveCycle;
      proof->dep_indices = core.conflict();
      std::int64_t dist = 0;
      for (int cd : proof->dep_indices)
        dist += inst.deps[std::size_t(cd)].distance;
      proof->distance_free = dist == 0;
      return Candidate::Unsat;
    }
    if (!alive) return Candidate::Budget;
  }
  if (inst.resources.empty()) {
    schedule->ii = ii;
    schedule->sigma = core.potentials();
    return Candidate::Sat;
  }

  // 3. CDCL over the row booleans, difference engine as the theory.
  RowTheory theory(inst, ii, budget);
  CdclSolver sat(inst.num_mis * ii, &theory);
  for (int mi = 0; mi < inst.num_mis; ++mi) {
    std::vector<Lit> alo;
    alo.reserve(std::size_t(ii));
    for (int r = 0; r < ii; ++r) alo.push_back(row_var(mi, r, ii));
    sat.add_clause(alo);
    for (int r = 0; r < ii; ++r)
      for (int r2 = r + 1; r2 < ii; ++r2)
        sat.add_clause({-row_var(mi, r, ii), -row_var(mi, r2, ii)});
  }
  SatStats sstats;
  proof->kind = InfeasibilityCert::Kind::Clausal;
  proof->clauses.clear();
  const SatStatus st = sat.solve(budget, &proof->clauses, &sstats);
  stats->decisions += sstats.decisions;
  stats->propagations += sstats.propagations;
  stats->conflicts += sstats.conflicts;
  switch (st) {
    case SatStatus::Budget:
      return Candidate::Budget;
    case SatStatus::Unsat:
      return Candidate::Unsat;
    case SatStatus::Sat:
      break;
  }
  schedule->ii = ii;
  schedule->sigma.assign(std::size_t(inst.num_mis), 0);
  const std::vector<std::int64_t>& stage = theory.dl().potentials();
  for (int mi = 0; mi < inst.num_mis; ++mi)
    schedule->sigma[std::size_t(mi)] =
        std::int64_t(ii) * stage[std::size_t(mi)] + theory.row_of(mi);
  return Candidate::Sat;
}

}  // namespace

const char* to_string(ExactStatus s) {
  switch (s) {
    case ExactStatus::Optimal: return "optimal";
    case ExactStatus::Infeasible: return "infeasible";
    case ExactStatus::Timeout: return "timeout";
  }
  return "?";
}

ExactResult solve(const Instance& inst, const ExactOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  ExactResult res;
  Budget budget(opts.max_steps, opts.budget_ms);

  auto finish = [&](ExactStatus status) {
    res.status = status;
    res.stats.steps = budget.steps();
    res.stats.solve_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    return res;
  };

  if (inst.num_mis == 0) {
    res.ii = 1;
    res.schedule.ii = 1;
    return finish(ExactStatus::Optimal);
  }

  // Past this II a schedule always exists (rows can be made distinct and
  // stages absorb every delay), so the scan terminates without a cap.
  std::int64_t max_delay = 1;
  for (const DepConstraint& d : inst.deps)
    max_delay = std::max(max_delay, d.delay);
  const int cap = opts.max_ii.value_or(
      int(std::int64_t(inst.num_mis) * max_delay + 1));

  for (int ii = 1; ii <= cap; ++ii) {
    ++res.stats.candidates;
    ScheduleCert schedule;
    InfeasibilityCert proof;
    switch (try_ii(inst, ii, budget, &res.stats, &schedule, &proof)) {
      case Candidate::Budget:
        return finish(ExactStatus::Timeout);
      case Candidate::Sat:
        res.ii = ii;
        res.schedule = std::move(schedule);
        res.lower_bound = ii;
        return finish(ExactStatus::Optimal);
      case Candidate::Unsat: {
        res.lower_bound = ii + 1;
        const bool forever =
            (proof.kind == InfeasibilityCert::Kind::PositiveCycle &&
             proof.distance_free) ||
            (proof.kind == InfeasibilityCert::Kind::ResourceCount &&
             inst.resources.classes[std::size_t(proof.class_index)].units <=
                 0);
        res.lower_proof = std::move(proof);
        if (forever) return finish(ExactStatus::Infeasible);
        break;
      }
    }
    if (budget.exhausted()) return finish(ExactStatus::Timeout);
  }
  res.capped = opts.max_ii.has_value();
  return finish(ExactStatus::Infeasible);
}

std::string exact_identity(const ExactOptions& opts, bool with_resources) {
  std::string id = kSolverVersion;
  id += " budget_ms=" + std::to_string(opts.budget_ms);
  id += " max_steps=" + std::to_string(opts.max_steps);
  id += " resources=" + std::string(with_resources ? "1" : "0");
  return id;
}

}  // namespace slc::exact
