// Canonical-loop recognition. SLMS (and the classic loop transformations)
// operate on counted for-loops of the shape
//
//   for (iv = lo; iv < hi; iv += step)   (also <=, and negative steps with
//   for (iv = lo; iv > hi; iv -= step)    >, >=)
//
// LoopInfo captures that shape plus derived facts (trip count when the
// bounds are constant). Loops outside the shape are reported unsupported
// — the paper's SLC would "tip the user" to rewrite them (§2).
#pragma once

#include <optional>
#include <string>

#include "ast/ast.hpp"

namespace slc::sema {

struct LoopInfo {
  ast::ForStmt* loop = nullptr;  // the analyzed loop (non-owning)
  std::string iv;                // induction variable
  const ast::Expr* lower = nullptr;   // initial value expression
  const ast::Expr* upper = nullptr;   // bound expression from the condition
  ast::BinaryOp cmp = ast::BinaryOp::Lt;  // Lt/Le/Gt/Ge as written
  std::int64_t step = 1;         // signed; negative for down-counting

  /// Trip count when lower/upper are integer constants.
  [[nodiscard]] std::optional<std::int64_t> const_trip_count() const;

  /// True when the body neither writes `iv` nor contains break/while/goto
  /// -like control flow that would invalidate pipelining.
  bool body_is_pipelineable = false;
  std::string reject_reason;  // filled when not pipelineable
};

/// Recognizes the canonical shape; returns nullopt (with a reason in
/// *reason when provided) otherwise.
[[nodiscard]] std::optional<LoopInfo> analyze_loop(ast::ForStmt& loop,
                                                   std::string* reason =
                                                       nullptr);

/// The loop body as a statement list (the body block's statements).
[[nodiscard]] std::vector<ast::Stmt*> body_statements(ast::ForStmt& loop);

}  // namespace slc::sema
