#include "sema/loop_info.hpp"

#include "ast/fold.hpp"
#include "ast/walk.hpp"
#include "support/int_math.hpp"

namespace slc::sema {

using namespace ast;

std::optional<std::int64_t> LoopInfo::const_trip_count() const {
  if (lower == nullptr || upper == nullptr) return std::nullopt;
  auto lo = const_int(*lower);
  auto hi = const_int(*upper);
  if (!lo || !hi || step == 0) return std::nullopt;
  std::int64_t span;
  switch (cmp) {
    case BinaryOp::Lt:
      span = *hi - *lo;
      break;
    case BinaryOp::Le:
      span = *hi - *lo + 1;
      break;
    case BinaryOp::Gt:
      span = *lo - *hi;
      break;
    case BinaryOp::Ge:
      span = *lo - *hi + 1;
      break;
    default:
      return std::nullopt;
  }
  std::int64_t s = step > 0 ? step : -step;
  if (span <= 0) return 0;
  return ceil_div(span, s);
}

namespace {

/// Matches `iv = e` returning e, or nullptr.
const Expr* match_init(const Stmt* init, std::string& iv) {
  const auto* a = dyn_cast<AssignStmt>(init);
  if (a != nullptr && a->op == AssignOp::Set) {
    const auto* v = dyn_cast<VarRef>(a->lhs.get());
    if (v == nullptr) return nullptr;
    iv = v->name;
    return a->rhs.get();
  }
  // `for (int i = 0; ...)`
  if (const auto* d = dyn_cast<DeclStmt>(init);
      d != nullptr && !d->is_array() && d->init != nullptr) {
    iv = d->name;
    return d->init.get();
  }
  return nullptr;
}

/// Matches `iv (+|-)= c` or c-step assignments; returns signed step.
std::optional<std::int64_t> match_step(const Stmt* step,
                                       const std::string& iv) {
  const auto* a = dyn_cast<AssignStmt>(step);
  if (a == nullptr) return std::nullopt;
  const auto* v = dyn_cast<VarRef>(a->lhs.get());
  if (v == nullptr || v->name != iv) return std::nullopt;
  if (a->op == AssignOp::Add || a->op == AssignOp::Sub) {
    auto c = const_int(*a->rhs);
    if (!c) return std::nullopt;
    return a->op == AssignOp::Add ? *c : -*c;
  }
  if (a->op == AssignOp::Set) {
    // i = i + c / i = i - c
    const auto* b = dyn_cast<Binary>(a->rhs.get());
    if (b == nullptr) return std::nullopt;
    const auto* lv = dyn_cast<VarRef>(b->lhs.get());
    if (lv == nullptr || lv->name != iv) return std::nullopt;
    auto c = const_int(*b->rhs);
    if (!c) return std::nullopt;
    if (b->op == BinaryOp::Add) return *c;
    if (b->op == BinaryOp::Sub) return -*c;
  }
  return std::nullopt;
}

}  // namespace

std::optional<LoopInfo> analyze_loop(ForStmt& loop, std::string* reason) {
  auto fail = [&](const char* why) -> std::optional<LoopInfo> {
    if (reason != nullptr) *reason = why;
    return std::nullopt;
  };

  if (loop.init == nullptr || loop.cond == nullptr || loop.step == nullptr)
    return fail("loop header is not fully specified");

  LoopInfo info;
  info.loop = &loop;

  const Expr* lower = match_init(loop.init.get(), info.iv);
  if (lower == nullptr) return fail("loop init is not 'iv = expr'");
  info.lower = lower;

  auto step = match_step(loop.step.get(), info.iv);
  if (!step || *step == 0) return fail("loop step is not 'iv += const'");
  info.step = *step;

  const auto* cond = dyn_cast<Binary>(loop.cond.get());
  if (cond == nullptr) return fail("loop condition is not a comparison");
  const auto* cv = dyn_cast<VarRef>(cond->lhs.get());
  if (cv == nullptr || cv->name != info.iv)
    return fail("loop condition does not compare the induction variable");
  switch (cond->op) {
    case BinaryOp::Lt:
    case BinaryOp::Le:
      if (info.step < 0) return fail("up-counting condition with negative step");
      break;
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (info.step > 0) return fail("down-counting condition with positive step");
      break;
    default:
      return fail("loop condition is not <, <=, > or >=");
  }
  info.cmp = cond->op;
  info.upper = cond->rhs.get();

  // Body restrictions for pipelining.
  info.body_is_pipelineable = true;
  walk_stmts(*loop.body, [&](const Stmt& s) {
    if (!info.body_is_pipelineable) return;
    switch (s.kind()) {
      case StmtKind::Break:
        info.body_is_pipelineable = false;
        info.reject_reason = "body contains break";
        break;
      case StmtKind::While:
        info.body_is_pipelineable = false;
        info.reject_reason = "body contains a while loop";
        break;
      case StmtKind::For:
        info.body_is_pipelineable = false;
        info.reject_reason = "body contains a nested for loop";
        break;
      case StmtKind::Assign: {
        const auto* a = dyn_cast<AssignStmt>(&s);
        if (const auto* v = dyn_cast<VarRef>(a->lhs.get());
            v != nullptr && v->name == info.iv) {
          info.body_is_pipelineable = false;
          info.reject_reason = "body writes the induction variable";
        }
        break;
      }
      default:
        break;
    }
  });
  // The bound must not be written in the body either.
  if (info.body_is_pipelineable) {
    walk_stmts(*loop.body, [&](const Stmt& s) {
      const auto* a = dyn_cast<AssignStmt>(&s);
      if (a == nullptr) return;
      const auto* v = dyn_cast<VarRef>(a->lhs.get());
      if (v == nullptr) return;
      bool bound_uses_var = false;
      walk_exprs(*info.upper, [&](const Expr& e) {
        if (const auto* u = dyn_cast<VarRef>(&e);
            u != nullptr && u->name == v->name)
          bound_uses_var = true;
      });
      if (bound_uses_var) {
        info.body_is_pipelineable = false;
        info.reject_reason = "body writes a variable used in the loop bound";
      }
    });
  }

  return info;
}

std::vector<Stmt*> body_statements(ForStmt& loop) {
  std::vector<Stmt*> out;
  if (auto* b = dyn_cast<BlockStmt>(loop.body.get())) {
    out.reserve(b->stmts.size());
    for (StmtPtr& s : b->stmts) out.push_back(s.get());
  } else if (loop.body) {
    out.push_back(loop.body.get());
  }
  return out;
}

}  // namespace slc::sema
