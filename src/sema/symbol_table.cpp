#include "sema/symbol_table.hpp"

#include <set>

#include "ast/walk.hpp"

namespace slc::sema {

using namespace ast;

void SymbolTable::declare(const DeclStmt& decl, DiagnosticEngine& diags) {
  if (index_.contains(decl.name)) {
    diags.error("sema-symbol", decl.loc, "redefinition of '" + decl.name + "'");
    return;
  }
  index_[decl.name] = order_.size();
  order_.push_back(Symbol{decl.name, decl.type, decl.dims});
}

bool SymbolTable::declare_synthesized(Symbol sym) {
  if (index_.contains(sym.name)) return false;
  index_[sym.name] = order_.size();
  order_.push_back(std::move(sym));
  return true;
}

const Symbol* SymbolTable::lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &order_[it->second];
}

bool SymbolTable::is_array(const std::string& name) const {
  const Symbol* s = lookup(name);
  return s != nullptr && s->is_array();
}

std::string SymbolTable::fresh_name(const std::string& hint) const {
  if (!index_.contains(hint)) return hint;
  for (int i = 1;; ++i) {
    std::string candidate = hint + std::to_string(i);
    if (!index_.contains(candidate)) return candidate;
  }
}

namespace {

/// Set of intrinsic callees the analyses understand as pure.
const std::set<std::string>& pure_intrinsics() {
  static const std::set<std::string> fns = {
      "fabs", "sqrt", "exp", "log", "sin", "cos", "min", "max", "abs",
      "pow",  "floor", "ceil"};
  return fns;
}

void check_stmt(const Stmt& s, const SymbolTable& table,
                DiagnosticEngine& diags);

void check_expr(const Expr& e, const SymbolTable& table,
                DiagnosticEngine& diags) {
  walk_exprs(e, [&](const Expr& x) {
    if (const auto* v = dyn_cast<VarRef>(&x)) {
      const Symbol* sym = table.lookup(v->name);
      if (sym == nullptr) {
        diags.error("sema-symbol", x.loc, "use of undeclared variable '" + v->name + "'");
      } else if (sym->is_array()) {
        diags.error("sema-symbol", x.loc, "array '" + v->name + "' used without subscript");
      }
    } else if (const auto* a = dyn_cast<ArrayRef>(&x)) {
      const Symbol* sym = table.lookup(a->name);
      if (sym == nullptr) {
        diags.error("sema-symbol", x.loc, "use of undeclared array '" + a->name + "'");
      } else if (!sym->is_array()) {
        diags.error("sema-symbol", x.loc, "scalar '" + a->name + "' used with subscript");
      } else if (sym->dims.size() != a->subscripts.size()) {
        diags.error("sema-symbol", x.loc, "array '" + a->name + "' has rank " +
                               std::to_string(sym->dims.size()) + ", used with " +
                               std::to_string(a->subscripts.size()) +
                               " subscripts");
      }
    } else if (const auto* c = dyn_cast<Call>(&x)) {
      if (!pure_intrinsics().contains(c->callee)) {
        diags.warning(x.loc, "call to unknown function '" + c->callee +
                                 "' is treated as an opaque barrier");
      }
    }
  });
}

void check_stmt(const Stmt& s, const SymbolTable& table,
                DiagnosticEngine& diags) {
  walk_exprs(s, [&](const Expr&) {});  // keep signature; real work below
  walk_stmts(s, [&](const Stmt& st) {
    switch (st.kind()) {
      case StmtKind::Assign: {
        const auto* a = dyn_cast<AssignStmt>(&st);
        check_expr(*a->lhs, table, diags);
        check_expr(*a->rhs, table, diags);
        if (a->guard) check_expr(*a->guard, table, diags);
        break;
      }
      case StmtKind::ExprStmt: {
        const auto* x = dyn_cast<ExprStmt>(&st);
        check_expr(*x->expr, table, diags);
        if (x->guard) check_expr(*x->guard, table, diags);
        break;
      }
      case StmtKind::If:
        check_expr(*dyn_cast<IfStmt>(&st)->cond, table, diags);
        break;
      case StmtKind::While:
        check_expr(*dyn_cast<WhileStmt>(&st)->cond, table, diags);
        break;
      case StmtKind::For: {
        const auto* f = dyn_cast<ForStmt>(&st);
        if (f->cond) check_expr(*f->cond, table, diags);
        break;
      }
      case StmtKind::Decl: {
        const auto* d = dyn_cast<DeclStmt>(&st);
        if (d->init) check_expr(*d->init, table, diags);
        break;
      }
      default:
        break;
    }
  });
}

}  // namespace

SymbolTable analyze(const Program& program, DiagnosticEngine& diags) {
  SymbolTable table;
  for (const StmtPtr& s : program.stmts) {
    walk_stmts(*s, [&](const Stmt& st) {
      if (const auto* d = dyn_cast<DeclStmt>(&st)) table.declare(*d, diags);
    });
  }
  for (const StmtPtr& s : program.stmts) check_stmt(*s, table, diags);
  return table;
}

}  // namespace slc::sema
