// Symbol information for a program: scalar and array declarations. The
// dialect has one flat scope (declarations may appear anywhere at the top
// level or inside blocks, but a name is declared once per program — the
// same discipline the paper's Tiny loops follow).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.hpp"
#include "support/diagnostics.hpp"

namespace slc::sema {

struct Symbol {
  std::string name;
  ast::ScalarType type = ast::ScalarType::Int;
  std::vector<std::int64_t> dims;  // empty => scalar

  [[nodiscard]] bool is_array() const { return !dims.empty(); }
  [[nodiscard]] std::int64_t element_count() const {
    std::int64_t n = 1;
    for (std::int64_t d : dims) n *= d;
    return n;
  }
};

class SymbolTable {
 public:
  /// Records a declaration; reports redefinition through `diags`.
  void declare(const ast::DeclStmt& decl, DiagnosticEngine& diags);

  /// Declares a synthesized symbol (SLMS-introduced registers/arrays).
  /// Returns false if the name is taken.
  bool declare_synthesized(Symbol sym);

  [[nodiscard]] const Symbol* lookup(const std::string& name) const;
  [[nodiscard]] bool is_array(const std::string& name) const;

  /// A name not colliding with any declared symbol: `hint`, `hint1`, ...
  [[nodiscard]] std::string fresh_name(const std::string& hint) const;

  [[nodiscard]] const std::vector<Symbol>& symbols() const { return order_; }

 private:
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<Symbol> order_;
};

/// Builds a symbol table from every DeclStmt in the program (at any
/// nesting depth) and checks basic rules: no redefinition, uses after
/// declaration, subscript counts matching declared rank, scalars not
/// indexed. Returns the table; errors go to `diags`.
[[nodiscard]] SymbolTable analyze(const ast::Program& program,
                                  DiagnosticEngine& diags);

}  // namespace slc::sema
