// Software-pipeline construction (the MS table of paper Fig. 1, §5 step 6).
//
// Given the modulo schedule sigma for the MIs of a canonical loop, every
// MI instance (iteration t, MI k) has a global slot
//     g(t, k) = II * t + sigma(k).
// MI k executes in the kernel with iteration offset
//     off(k) = (S - 1) - stage(k),        S = stage count,
// so one kernel iteration at counter c executes MI k on source iteration
// c + off(k). Instances not covered by the kernel are emitted as
// straight-line prologue (t < off(k)) and epilogue (t >= Nk + off(k))
// code, all in ascending (g, t) order — which is exactly the order that
// makes the emitted sequential program respect every dependence the
// schedule satisfied.
//
// Modulo variable expansion (paper §3.3) unrolls the kernel `unroll`
// times and renames each planned scalar round-robin by iteration parity
// (t mod unroll); scalar expansion (§3.4) rewrites a planned scalar into
// a per-iteration array cell instead. Unrolling and expansion require
// constant loop bounds; with symbolic bounds the pipeliner emits an
// unrolled-by-1 pipeline and the caller wraps it in a trip-count guard.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "slms/mii.hpp"

namespace slc::slms {

/// How a planned scalar is de-falsified.
enum class RenameMode { MveCopies, Expand };

struct RenamedScalar {
  std::string name;
  RenameMode mode = RenameMode::MveCopies;
  /// MVE: the `unroll` copy names, indexed by t mod unroll.
  std::vector<std::string> copy_names;
  /// Expansion: the temporary array, indexed by the instance's iv value.
  std::string array_name;
};

struct PipelinePlan {
  // Canonical loop parameters.
  std::string iv;
  const ast::Expr* lower = nullptr;  // non-owning; cloned on use
  const ast::Expr* upper = nullptr;
  ast::BinaryOp cmp = ast::BinaryOp::Lt;
  std::int64_t step = 1;

  // Constant bounds when known (enables MVE/expansion and exact
  // prologue/epilogue constants).
  std::optional<std::int64_t> const_lower;
  std::optional<std::int64_t> const_upper;

  // The MIs in source order (owned; already if-converted / decomposed).
  std::vector<ast::StmtPtr> mis;

  ModuloSchedule sched;
  int unroll = 1;  // kernel unroll factor u (1 => no MVE copies)
  std::vector<RenamedScalar> renames;

  [[nodiscard]] bool bounds_are_constant() const {
    return const_lower.has_value() && const_upper.has_value();
  }
  /// Trip count; requires constant bounds.
  [[nodiscard]] std::int64_t trip_count() const;
};

/// Builds the replacement statements: prologue..., kernel for-loop,
/// epilogue..., live-out fixups. Preconditions (checked):
///  * unroll > 1 or any rename requires constant bounds;
///  * constant bounds require trip_count() >= stage_count - 1 + unroll.
/// Violations return an empty vector.
[[nodiscard]] std::vector<ast::StmtPtr> build_pipeline(
    const PipelinePlan& plan);

/// The trip-count guard `span > (S-1)*step` (adjusted for the comparison
/// operator) under which the pipelined form is valid; used by the driver
/// to wrap symbolic-bound pipelines:  if (guard) pipelined else original.
[[nodiscard]] ast::ExprPtr trip_count_guard(const PipelinePlan& plan);

}  // namespace slc::slms
