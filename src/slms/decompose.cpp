#include "slms/decompose.hpp"

#include "analysis/access.hpp"
#include "analysis/ddg.hpp"
#include "ast/build.hpp"
#include "ast/walk.hpp"

namespace slc::slms {

using namespace ast;
using analysis::ArrayAccess;
using analysis::DepTestResult;

namespace {

/// All stores in the MI list with their MI index.
struct IndexedStore {
  int mi = 0;
  ArrayAccess access;
};

std::vector<IndexedStore> collect_stores(const std::vector<StmtPtr>& mis) {
  std::vector<IndexedStore> stores;
  for (int k = 0; k < int(mis.size()); ++k) {
    analysis::AccessSet set = analysis::collect_accesses(*mis[std::size_t(k)]);
    for (ArrayAccess& a : set.arrays)
      if (a.is_write) stores.push_back({k, std::move(a)});
  }
  return stores;
}

/// True when some store feeds this load (flow dependence into the load),
/// or when the tester cannot tell. Such loads must not be hoisted past
/// the schedule's discretion.
bool load_has_flow_source(const ArrayAccess& load, int load_mi,
                          const std::vector<IndexedStore>& stores,
                          const std::string& iv, std::int64_t step) {
  for (const IndexedStore& s : stores) {
    DepTestResult r = analysis::test_dependence(s.access, load, iv, step);
    switch (r.kind) {
      case DepTestResult::Kind::Independent:
        continue;
      case DepTestResult::Kind::Unknown:
        return true;  // conservative
      case DepTestResult::Kind::Distance:
        // r.distance = iteration(load) - iteration(store) at collision.
        if (r.distance > 0) return true;
        if (r.distance == 0 && s.mi < load_mi) return true;
        // distance 0 in the same MI: the store happens after the read.
        continue;
    }
  }
  return false;
}

/// True when some store touches the same cells in a *later* iteration
/// (an anti dependence) — hoisting such loads is what breaks the
/// paper's §3.2 self-dependence cycles, so they are preferred.
bool load_has_anti_sink(const ArrayAccess& load, int load_mi,
                        const std::vector<IndexedStore>& stores,
                        const std::string& iv, std::int64_t step) {
  for (const IndexedStore& s : stores) {
    DepTestResult r = analysis::test_dependence(s.access, load, iv, step);
    if (r.kind == DepTestResult::Kind::Distance &&
        (r.distance < 0 || (r.distance == 0 && s.mi > load_mi)))
      return true;
  }
  return false;
}

}  // namespace

std::optional<DecomposeResult> decompose_once(
    std::vector<StmtPtr>& mis, const std::string& iv, std::int64_t step,
    NameAllocator& names,
    const std::function<ScalarType(const std::string&)>& element_type) {
  std::vector<IndexedStore> stores = collect_stores(mis);

  const ArrayRef* best = nullptr;
  int best_mi = -1;
  bool best_has_anti = false;

  for (int k = 0; k < int(mis.size()); ++k) {
    auto* a = dyn_cast<AssignStmt>(mis[std::size_t(k)].get());
    if (a == nullptr || a->guard != nullptr) continue;
    // Nothing to gain from splitting `x = A[i]`-shaped MIs further.
    if (a->rhs->kind() == ExprKind::ArrayRef ||
        a->rhs->kind() == ExprKind::VarRef)
      continue;

    analysis::AccessSet set = analysis::collect_accesses(*a);
    for (const analysis::ArrayAccess& load : set.arrays) {
      if (load.is_write) continue;
      if (load_has_flow_source(load, k, stores, iv, step)) continue;
      bool anti = load_has_anti_sink(load, k, stores, iv, step);
      if (best == nullptr || (anti && !best_has_anti)) {
        best = load.ref;
        best_mi = k;
        best_has_anti = anti;
      }
    }
    if (best != nullptr && best_has_anti) break;
  }

  if (best == nullptr) return std::nullopt;

  DecomposeResult result;
  result.array = best->name;
  result.reg_type = element_type(best->name);
  result.reg_name = names.fresh("reg");
  result.inserted_at = best_mi;

  // reg = <load>;  inserted directly before the consumer, then the load
  // in the consumer is replaced by the register.
  ExprPtr load_clone = best->clone();
  auto* consumer = dyn_cast<AssignStmt>(mis[std::size_t(best_mi)].get());
  rewrite_exprs(consumer->rhs, [&](ExprPtr& slot) {
    if (slot.get() == best) slot = build::var(result.reg_name);
  });
  mis.insert(mis.begin() + best_mi,
             build::assign(build::var(result.reg_name),
                           std::move(load_clone)));
  return result;
}

namespace {

/// Arithmetic-operation count of an expression.
int op_count(const Expr& e) {
  int ops = 0;
  walk_exprs(e, [&](const Expr& x) {
    if (const auto* b = dyn_cast<Binary>(&x)) {
      if (is_arithmetic(b->op)) ++ops;
    } else if (x.kind() == ExprKind::Unary || x.kind() == ExprKind::Call) {
      ++ops;
    }
  });
  return ops;
}

/// Crude result-type inference for split temporaries: floating if any
/// floating array element or float literal participates.
ScalarType infer_type(
    const Expr& e,
    const std::function<ScalarType(const std::string&)>& element_type) {
  bool floating = false;
  walk_exprs(e, [&](const Expr& x) {
    if (x.kind() == ExprKind::FloatLit) floating = true;
    if (const auto* a = dyn_cast<ArrayRef>(&x))
      if (is_floating(element_type(a->name))) floating = true;
  });
  return floating ? ScalarType::Double : ScalarType::Int;
}

}  // namespace

namespace {

/// Shrinks `e` in place until its op count is <= max_ops by hoisting
/// subtrees into temporaries (appended to `emitted`). Hoisting never
/// re-associates: the value tree is unchanged, a subtree merely gets a
/// name, so floating-point results are bit-identical. Returns the op
/// count of the shrunken expression.
int shrink_expr(ExprPtr& e, int max_ops, NameAllocator& names,
                const std::function<ScalarType(const std::string&)>&
                    element_type,
                std::vector<StmtPtr>& emitted,
                std::vector<StmtPtr>& new_decls, int& splits) {
  int total = op_count(*e);
  if (total <= max_ops) return total;
  auto* b = dyn_cast<Binary>(e.get());
  if (b == nullptr || !is_arithmetic(b->op)) return total;  // give up
  int l = shrink_expr(b->lhs, max_ops, names, element_type, emitted,
                      new_decls, splits);
  int r = shrink_expr(b->rhs, max_ops, names, element_type, emitted,
                      new_decls, splits);
  if (l + r + 1 <= max_ops) return l + r + 1;
  // Hoist the heavier side into a temporary MI.
  ExprPtr& side = l >= r ? b->lhs : b->rhs;
  int kept = l >= r ? r : l;
  std::string tmp = names.fresh("t");
  new_decls.push_back(build::decl(infer_type(*side, element_type), tmp));
  emitted.push_back(build::assign(build::var(tmp), std::move(side)));
  side = build::var(tmp);
  ++splits;
  return kept + 1;
}

}  // namespace

int split_by_resources(
    std::vector<StmtPtr>& mis, int max_ops, NameAllocator& names,
    const std::function<ScalarType(const std::string&)>& element_type,
    std::vector<StmtPtr>& new_decls) {
  if (max_ops < 1) return 0;
  int splits = 0;
  for (std::size_t k = 0; k < mis.size(); ++k) {
    auto* a = dyn_cast<AssignStmt>(mis[k].get());
    if (a == nullptr || a->guard != nullptr || a->op != AssignOp::Set)
      continue;
    std::vector<StmtPtr> emitted;
    shrink_expr(a->rhs, max_ops, names, element_type, emitted, new_decls,
                splits);
    if (!emitted.empty()) {
      std::size_t count = emitted.size();
      mis.insert(mis.begin() + std::ptrdiff_t(k),
                 std::make_move_iterator(emitted.begin()),
                 std::make_move_iterator(emitted.end()));
      k += count;  // skip past the temporaries to the original MI
    }
  }
  return splits;
}

}  // namespace slc::slms
