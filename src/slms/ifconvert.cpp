#include "slms/ifconvert.hpp"

#include "ast/build.hpp"

namespace slc::slms {

using namespace ast;

namespace {

class Converter {
 public:
  Converter(NameAllocator& names, std::vector<StmtPtr>& decls)
      : names_(names), decls_(decls) {}

  bool convert_block(BlockStmt& block) {
    std::vector<StmtPtr> out;
    for (StmtPtr& s : block.stmts) {
      if (!convert_stmt(std::move(s), /*guard=*/nullptr, out)) return false;
    }
    block.stmts = std::move(out);
    return true;
  }

  IfConvertResult result;

 private:
  /// Appends the predicated expansion of `s` under `guard` (nullable).
  bool convert_stmt(StmtPtr s, const Expr* guard, std::vector<StmtPtr>& out) {
    switch (s->kind()) {
      case StmtKind::Assign: {
        auto* a = dyn_cast<AssignStmt>(s.get());
        if (!apply_guard(a->guard, guard)) return false;
        out.push_back(std::move(s));
        return true;
      }
      case StmtKind::ExprStmt: {
        auto* x = dyn_cast<ExprStmt>(s.get());
        if (!apply_guard(x->guard, guard)) return false;
        out.push_back(std::move(s));
        return true;
      }
      case StmtKind::Decl:
        if (guard != nullptr) {
          result.reject_reason = "declaration inside a conditional";
          return false;
        }
        out.push_back(std::move(s));
        return true;
      case StmtKind::Block: {
        auto* b = dyn_cast<BlockStmt>(s.get());
        for (StmtPtr& c : b->stmts)
          if (!convert_stmt(std::move(c), guard, out)) return false;
        return true;
      }
      case StmtKind::If:
        return convert_if(*dyn_cast<IfStmt>(s.get()), guard, out);
      default:
        result.reject_reason =
            "body contains a construct if-conversion cannot predicate";
        return false;
    }
  }

  bool convert_if(IfStmt& i, const Expr* guard, std::vector<StmtPtr>& out) {
    result.changed = true;

    // p = cond  (or p = guard && cond under an enclosing guard — && keeps
    // the evaluation semantics of the nested branch).
    std::string pred = names_.fresh("pred");
    decls_.push_back(build::decl(ScalarType::Bool, pred));
    ExprPtr pred_value = std::move(i.cond);
    if (guard != nullptr)
      pred_value = build::bin(BinaryOp::And, guard->clone(),
                              std::move(pred_value));
    out.push_back(build::assign(build::var(pred), std::move(pred_value)));

    ExprPtr then_guard = build::var(pred);
    if (!convert_stmt(std::move(i.then_stmt), then_guard.get(), out))
      return false;

    if (i.else_stmt != nullptr) {
      // q = !p under the enclosing guard.
      ExprPtr else_cond = build::lnot(build::var(pred));
      if (guard != nullptr)
        else_cond = build::bin(BinaryOp::And, guard->clone(),
                               std::move(else_cond));
      std::string npred = names_.fresh("pred");
      decls_.push_back(build::decl(ScalarType::Bool, npred));
      out.push_back(build::assign(build::var(npred), std::move(else_cond)));
      ExprPtr else_guard = build::var(npred);
      if (!convert_stmt(std::move(i.else_stmt), else_guard.get(), out))
        return false;
    }
    return true;
  }

  /// Conjoins `guard` onto an existing (possibly null) statement guard.
  bool apply_guard(ExprPtr& slot, const Expr* guard) {
    if (guard == nullptr) return true;
    if (slot == nullptr) {
      slot = guard->clone();
    } else {
      slot = build::bin(BinaryOp::And, guard->clone(), std::move(slot));
    }
    return true;
  }

  NameAllocator& names_;
  std::vector<StmtPtr>& decls_;
};

}  // namespace

IfConvertResult if_convert_body(BlockStmt& body, NameAllocator& names,
                                std::vector<StmtPtr>& new_decls) {
  Converter conv(names, new_decls);
  if (!conv.convert_block(body)) {
    conv.result.ok = false;
    if (conv.result.reject_reason.empty())
      conv.result.reject_reason = "if-conversion failed";
  }
  return conv.result;
}

}  // namespace slc::slms
