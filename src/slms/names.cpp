#include "slms/names.hpp"

#include "ast/walk.hpp"

namespace slc::slms {

using namespace ast;

namespace {
void seed_from(const Stmt& s, std::set<std::string>& used) {
  walk_stmts(s, [&](const Stmt& st) {
    if (const auto* d = dyn_cast<DeclStmt>(&st)) used.insert(d->name);
  });
  walk_exprs(s, [&](const Expr& e) {
    if (const auto* v = dyn_cast<VarRef>(&e)) used.insert(v->name);
    if (const auto* a = dyn_cast<ArrayRef>(&e)) used.insert(a->name);
  });
}
}  // namespace

NameAllocator NameAllocator::for_program(const Program& program) {
  std::set<std::string> used;
  for (const StmtPtr& s : program.stmts) seed_from(*s, used);
  return NameAllocator(std::move(used));
}

NameAllocator NameAllocator::for_stmt(const Stmt& stmt) {
  std::set<std::string> used;
  seed_from(stmt, used);
  return NameAllocator(std::move(used));
}

std::string NameAllocator::fresh(const std::string& hint) {
  if (!used_.contains(hint)) {
    used_.insert(hint);
    return hint;
  }
  for (int i = 1;; ++i) {
    std::string candidate = hint + std::to_string(i);
    if (!used_.contains(candidate)) {
      used_.insert(candidate);
      return candidate;
    }
  }
}

}  // namespace slc::slms
