// Placement metadata exported by the SLMS driver for every applied loop.
//
// The static legality verifier (src/verify) must not reverse-engineer the
// schedule out of the emitted AST — a pipeliner bug would then corrupt
// both the claim and the evidence. Instead transform_loop records, next
// to the replacement statements, exactly what it *intended*: the
// canonical loop parameters, the final MI list (after if-conversion and
// decomposition), the modulo schedule sigma, the MVE/expansion rename
// tables, and which scalars had their anti/output edges dropped from the
// DDG on the promise of renaming. The verifier independently rederives
// what a correct pipeline for this intent must look like and checks the
// emitted AST against it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "slms/pipeliner.hpp"
#include "support/int_math.hpp"

namespace slc::slms {

struct LoopPlacement {
  // Canonical loop parameters (bound expressions cloned — owned here).
  std::string iv;
  ast::ExprPtr lower;
  ast::ExprPtr upper;
  ast::BinaryOp cmp = ast::BinaryOp::Lt;
  std::int64_t step = 1;
  std::optional<std::int64_t> const_lower;
  std::optional<std::int64_t> const_upper;

  // The modulo schedule the pipeline was built from.
  int ii = 1;
  std::int64_t stages = 1;
  int unroll = 1;
  std::vector<std::int64_t> sigma;  // slot per MI, sigma[k]

  // Final MIs in source order (cloned; post if-conversion/decomposition).
  std::vector<ast::StmtPtr> mis;

  // Renaming: the applied rename tables, plus every scalar whose false
  // (anti/output) edges were dropped from the DDG before solving. The
  // `planned` set is a superset of `renames` — a planned scalar whose
  // lifetime fits inside the II may legally stay unrenamed, but its
  // dropped edges still have to be re-justified by the verifier.
  std::vector<RenamedScalar> renames;
  std::vector<std::string> planned;

  // Symbolic-bound emission: the pipeline sits in the then-arm of a
  // trip-count guard and `guarded_fallback` is the clone of the original
  // loop in the else-arm.
  bool used_trip_guard = false;
  ast::StmtPtr guarded_fallback;

  [[nodiscard]] bool bounds_are_constant() const {
    return const_lower.has_value() && const_upper.has_value();
  }
  [[nodiscard]] std::int64_t stage(int k) const {
    return sigma[std::size_t(k)] / ii;
  }
  [[nodiscard]] std::int64_t row(int k) const {
    return sigma[std::size_t(k)] % ii;
  }
  [[nodiscard]] std::int64_t offset(int k) const {
    return stages - 1 - stage(k);
  }
  /// Trip count; requires constant bounds.
  [[nodiscard]] std::int64_t trip_count() const {
    std::int64_t lo = *const_lower;
    std::int64_t hi = *const_upper;
    std::int64_t span;
    switch (cmp) {
      case ast::BinaryOp::Lt: span = hi - lo; break;
      case ast::BinaryOp::Le: span = hi - lo + 1; break;
      case ast::BinaryOp::Gt: span = lo - hi; break;
      case ast::BinaryOp::Ge: span = lo - hi + 1; break;
      default: return 0;
    }
    if (span <= 0) return 0;
    return ceil_div(span, step > 0 ? step : -step);
  }
};

}  // namespace slc::slms
