// Source-level delay model (paper §3.5) and MII computation (paper §3.6).
//
// Delays are defined purely on the dependence-graph structure (pipeline
// stalls have no meaning at source level):
//   1. delay(MI_i, MI_i)   = 1   (loop-carried self dependence)
//   2. delay(MI_i, MI_i+1) = 1
//   3. delay(MI_i, MI_j)   = longest forward-edge path i -> j   (i < j)
//   4. delay(MI_i, MI_j)   = 1   for back edges                 (i > j)
// This guarantees the sum of delays along every dependence cycle is >=
// the number of edges in the cycle, so a feasible kernel never violates
// a dependency.
//
// The MII uses only the recurrence constraint (PMII): candidate II values
// are tried in increasing order; II is feasible iff the constraint graph
//   sigma(dst) - sigma(src) >= delay(e) - II * distance(e)
// has no positive cycle (the "iterative shortest path" / difMin method of
// Zaky and Allan et al. that the paper adopts). On success the solver also
// returns the minimal schedule slots sigma — the kernel placement used by
// the pipeliner.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ddg.hpp"

namespace slc::slms {

/// Per-edge source-level delays for a DDG, indexed like ddg.edges.
[[nodiscard]] std::vector<std::int64_t> compute_delays(
    const analysis::Ddg& ddg);

/// A feasible modulo schedule at initiation interval `ii`.
struct ModuloSchedule {
  int ii = 0;
  std::vector<std::int64_t> sigma;  // schedule slot of each MI

  [[nodiscard]] int num_mis() const { return int(sigma.size()); }
  [[nodiscard]] std::int64_t stage(int mi) const {
    return sigma[std::size_t(mi)] / ii;
  }
  [[nodiscard]] std::int64_t row(int mi) const {
    return sigma[std::size_t(mi)] % ii;
  }
  /// Total pipeline stages S = max stage + 1.
  [[nodiscard]] std::int64_t stage_count() const;
  /// Iteration offset of MI in the kernel: S-1 - stage(mi).
  [[nodiscard]] std::int64_t offset(int mi) const {
    return stage_count() - 1 - stage(mi);
  }
};

/// One resource class of the (optional) resource model: `units` slots
/// per cycle shared by the MIs in `members`. An MI occupies one unit of
/// its class in its schedule row, so at most `units` members may share a
/// row mod II. Membership is by MI index; an MI may appear in several
/// classes (e.g. a memory class and an all-MIs issue-width class).
struct ResourceClass {
  std::string name;
  int units = 1;
  std::vector<int> members;
};

struct ResourceModel {
  std::vector<ResourceClass> classes;

  [[nodiscard]] bool empty() const { return classes.empty(); }
};

/// Resource-constrained lower bound ResMII = max over classes of
/// ceil(uses(r) / units(r)): with uses(r) MIs competing for units(r)
/// slots per row, fewer than that many rows cannot hold one instance of
/// every member per iteration. Empty model (unbounded resources) => 1.
[[nodiscard]] int res_mii(const ResourceModel& resources);

struct MiiOptions {
  /// Largest II tried (inclusive). Default: #MIs - 1, because the paper
  /// rejects II >= #MIs as "no better than the sequential schedule" (§5).
  std::optional<int> max_ii;
  /// Resource model constraining how many MIs of a class may share a
  /// schedule row mod II. Null/empty keeps the historical behaviour
  /// (unbounded resources) — but now by explicit contract instead of a
  /// silent assumption. When present, solve() floors its II search at
  /// res_mii() and rejects any candidate whose minimal (Bellman-Ford)
  /// schedule overcommits a class row. This keeps the solver sound and
  /// conservative: it never claims an II the resources cannot carry, but
  /// it may overshoot the true resource-constrained optimum because it
  /// only examines the minimal-sigma witness per II — the exact backend
  /// (src/exact) is the complete decision procedure.
  const ResourceModel* resources = nullptr;
};

class MiiSolver {
 public:
  MiiSolver(const analysis::Ddg& ddg, std::vector<std::int64_t> delays);

  /// Feasibility test for one candidate II: Bellman-Ford longest path
  /// over the constraint graph. Returns the minimal sigma assignment, or
  /// nullopt when a positive cycle exists.
  [[nodiscard]] std::optional<ModuloSchedule> schedule_for(int ii) const;

  /// Smallest feasible II in [1, max_ii]; nullopt when none exists.
  [[nodiscard]] std::optional<ModuloSchedule> solve(MiiOptions opts = {}) const;

  /// Analytic lower bound max over explicit simple cycles of
  /// ceil(sum delay / sum distance) — exposed for the Fig. 8 unit tests;
  /// solve() does not need it.
  [[nodiscard]] std::int64_t recurrence_bound_hint() const;

  /// Combined MII lower bound max(RecMII, ResMII) — the floor every
  /// schedule (heuristic or exact) must respect. RecMII is the
  /// recurrence bound above; ResMII comes from `resources` (1 when null
  /// or empty).
  [[nodiscard]] std::int64_t lower_bound(
      const ResourceModel* resources = nullptr) const;

 private:
  const analysis::Ddg& ddg_;
  std::vector<std::int64_t> delays_;
};

}  // namespace slc::slms
