// Bad-case filtering (paper §4): SLMS can *hurt* when overlapping
// iterations piles up parallel memory operations. The paper's heuristic
// skips loops whose memory-ref ratio LS/(LS+AO) is >= 0.85 and notes the
// threshold is machine-specific; §11 adds that requiring >= 6 arithmetic
// operations per array reference removes almost all remaining bad cases.
#pragma once

#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace slc::slms {

struct FilterOptions {
  /// Skip when LS/(LS+AO) >= this (paper's Itanium/GCC value: 0.85).
  double memory_ratio_threshold = 0.85;
  /// When > 0, additionally require AO/LS >= this to apply SLMS (the §11
  /// "six arithmetic operations per array reference" heuristic uses 6).
  double min_arith_per_ref = 0.0;
};

struct FilterDecision {
  bool apply = true;
  double memory_ratio = 0.0;
  double arith_per_ref = 0.0;
  int load_stores = 0;
  int arith_ops = 0;
  std::string reason;  // set when !apply
};

/// Evaluates the filter over a loop body's statements.
[[nodiscard]] FilterDecision evaluate_filter(
    const std::vector<const ast::Stmt*>& body, const FilterOptions& opts);

}  // namespace slc::slms
