#include "slms/pipeliner.hpp"

#include <algorithm>

#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "ast/subst.hpp"
#include "ast/walk.hpp"
#include "support/fault.hpp"
#include "support/int_math.hpp"

namespace slc::slms {

using namespace ast;

std::int64_t PipelinePlan::trip_count() const {
  std::int64_t lo = *const_lower;
  std::int64_t hi = *const_upper;
  std::int64_t span;
  switch (cmp) {
    case BinaryOp::Lt: span = hi - lo; break;
    case BinaryOp::Le: span = hi - lo + 1; break;
    case BinaryOp::Gt: span = lo - hi; break;
    case BinaryOp::Ge: span = lo - hi + 1; break;
    default: return 0;
  }
  if (span <= 0) return 0;
  std::int64_t s = step > 0 ? step : -step;
  return ceil_div(span, s);
}

namespace {

/// One MI instance: source iteration t (normalized), MI index k.
struct Instance {
  std::int64_t g;  // global slot II*t + sigma(k)
  std::int64_t t;
  int k;
};

class Builder {
 public:
  explicit Builder(const PipelinePlan& plan)
      : plan_(plan),
        ii_(plan.sched.ii),
        stages_(plan.sched.stage_count()),
        unroll_(plan.unroll) {}

  std::vector<StmtPtr> build() {
    std::vector<StmtPtr> out;
    const bool constant = plan_.bounds_are_constant();
    if (!constant && (unroll_ > 1 || !plan_.renames.empty())) return out;

    std::int64_t kernel_trips = 0;  // rounded-down kernel coverage (const)
    std::int64_t n_iters = 0;
    if (constant) {
      n_iters = plan_.trip_count();
      std::int64_t nk = n_iters - (stages_ - 1);
      if (nk < unroll_) return out;  // not enough iterations to pipeline
      kernel_trips = (nk / unroll_) * unroll_;
    }

    emit_prologue(out, constant);
    emit_kernel(out, constant, kernel_trips);
    emit_epilogue(out, constant, kernel_trips, n_iters);
    emit_iv_fixup(out, constant, n_iters);
    emit_fixups(out, constant, n_iters);
    return out;
  }

 private:
  [[nodiscard]] std::int64_t offset(int k) const {
    return plan_.sched.offset(k);
  }
  [[nodiscard]] std::int64_t sigma(int k) const {
    return plan_.sched.sigma[std::size_t(k)];
  }
  [[nodiscard]] int num_mis() const { return int(plan_.mis.size()); }

  /// Statement for MI k with the loop variable bound to `iv_expr` and
  /// iteration parity `t_mod` (for MVE copy selection; pass -1 when the
  /// parity is irrelevant because unroll == 1).
  StmtPtr make_instance(int k, ExprPtr iv_expr, std::int64_t t_mod) {
    StmtPtr s = plan_.mis[std::size_t(k)]->clone();
    for (const RenamedScalar& r : plan_.renames) {
      if (r.mode == RenameMode::MveCopies) {
        if (unroll_ > 1 && t_mod >= 0)
          rename_var(*s, r.name, r.copy_names[std::size_t(t_mod)]);
      } else {
        // Expansion: s -> sArr[iv]; the iv substitution below turns the
        // placeholder subscript into this instance's index expression.
        rewrite_exprs(*s, [&](ExprPtr& slot) {
          if (const auto* v = dyn_cast<VarRef>(slot.get());
              v != nullptr && v->name == r.name) {
            slot = build::index(r.array_name, build::var(plan_.iv));
          }
        });
      }
    }
    substitute_var(*s, plan_.iv, *iv_expr);
    return s;
  }

  /// iv value of normalized iteration t as an expression.
  ExprPtr iv_value(std::int64_t t, bool constant) {
    if (constant)
      return build::lit(*plan_.const_lower + t * plan_.step);
    ExprPtr e = plan_.lower->clone();
    if (t != 0) e = build::add(std::move(e), build::lit(t * plan_.step));
    fold(e);
    return e;
  }

  /// Emits `instances` (already collected) sorted by (g, t, k), grouping
  /// equal-g instances into one parallel row.
  void emit_instances(std::vector<Instance> instances,
                      const std::function<ExprPtr(const Instance&)>& iv_of,
                      std::vector<StmtPtr>& out) {
    std::sort(instances.begin(), instances.end(),
              [](const Instance& a, const Instance& b) {
                return std::tie(a.g, a.t, a.k) < std::tie(b.g, b.t, b.k);
              });
    std::size_t i = 0;
    while (i < instances.size()) {
      std::size_t j = i;
      while (j < instances.size() && instances[j].g == instances[i].g) ++j;
      std::vector<StmtPtr> row;
      for (std::size_t x = i; x < j; ++x) {
        const Instance& inst = instances[x];
        std::int64_t t_mod =
            unroll_ > 1 ? ((inst.t % unroll_) + unroll_) % unroll_ : -1;
        row.push_back(make_instance(inst.k, iv_of(inst), t_mod));
      }
      if (row.size() == 1) {
        out.push_back(std::move(row.front()));
      } else {
        out.push_back(build::parallel(std::move(row)));
      }
      i = j;
    }
  }

  void emit_prologue(std::vector<StmtPtr>& out, bool constant) {
    std::vector<Instance> instances;
    for (int k = 0; k < num_mis(); ++k)
      for (std::int64_t t = 0; t < offset(k); ++t)
        instances.push_back({ii_ * t + sigma(k), t, k});
    // Deliberate miscompile (bug:prologue-drop): silently lose the
    // earliest prologue instance — iteration 0 of the deepest-offset MI
    // never runs. The verifier's coverage check must flag the hole
    // (slms-iter-coverage); no-op on single-stage pipelines, which have
    // no prologue.
    if (support::fault::bug_planted("prologue-drop") && !instances.empty())
      instances.erase(std::min_element(
          instances.begin(), instances.end(),
          [](const Instance& a, const Instance& b) {
            return std::tie(a.g, a.t, a.k) < std::tie(b.g, b.t, b.k);
          }));
    emit_instances(
        std::move(instances),
        [&](const Instance& inst) {
          std::int64_t t = inst.t;
          // Deliberate miscompile (bug:prologue-early-iv): bind every
          // prologue instance to the previous iteration's iv value. The
          // shifted A[i-k] references walk off the front of their arrays
          // — the classic prologue hazard the static bounds check
          // (slms-oob) exists for.
          if (support::fault::bug_planted("prologue-early-iv")) --t;
          return iv_value(t, constant);
        },
        out);
  }

  void emit_kernel(std::vector<StmtPtr>& out, bool constant,
                   std::int64_t kernel_trips) {
    // Header: iv = lo; iv <cmp> kernel-bound; iv += unroll*step.
    StmtPtr init = build::assign(build::var(plan_.iv), plan_.lower->clone());
    ExprPtr cond;
    if (constant) {
      std::int64_t bound = *plan_.const_lower + kernel_trips * plan_.step;
      // Deliberate miscompile (bug:kernel-run-over): stretch the kernel
      // bound by one unrolled round, re-executing iterations the epilogue
      // also covers. The verifier's iteration-space accounting must catch
      // the duplication (slms-iter-coverage).
      if (support::fault::bug_planted("kernel-run-over"))
        bound += std::int64_t(unroll_) * plan_.step;
      cond = build::bin(plan_.step > 0 ? BinaryOp::Lt : BinaryOp::Gt,
                        build::var(plan_.iv), build::lit(bound));
    } else {
      ExprPtr bound = build::sub(plan_.upper->clone(),
                                 build::lit((stages_ - 1) * plan_.step));
      fold(bound);
      cond = build::bin(plan_.cmp, build::var(plan_.iv), std::move(bound));
    }
    std::int64_t stride = std::int64_t(unroll_) * plan_.step;
    StmtPtr step_stmt =
        stride >= 0
            ? build::assign(build::var(plan_.iv), build::lit(stride),
                            AssignOp::Add)
            : build::assign(build::var(plan_.iv), build::lit(-stride),
                            AssignOp::Sub);

    // Body: unroll copies x II rows, each row in ascending-offset order.
    std::vector<StmtPtr> body;
    for (int j = 0; j < unroll_; ++j) {
      for (std::int64_t r = 0; r < ii_; ++r) {
        std::vector<int> members;
        for (int k = 0; k < num_mis(); ++k)
          if (plan_.sched.row(k) == r) members.push_back(k);
        if (members.empty()) continue;
        // Ascending offset == ascending source-iteration order, which is
        // the sequentially-correct order inside a parallel row.
        std::sort(members.begin(), members.end(), [&](int a, int b) {
          return std::make_tuple(offset(a), a) <
                 std::make_tuple(offset(b), b);
        });
        std::vector<StmtPtr> row;
        for (int k : members) {
          std::int64_t delta = (j + offset(k)) * plan_.step;
          std::int64_t t_mod = (j + offset(k)) % unroll_;
          row.push_back(make_instance(
              k, build::var_plus(plan_.iv, delta), t_mod));
        }
        if (row.size() == 1) {
          body.push_back(std::move(row.front()));
        } else {
          body.push_back(build::parallel(std::move(row)));
        }
      }
    }

    out.push_back(std::make_unique<ForStmt>(
        std::move(init), std::move(cond), std::move(step_stmt),
        build::block(std::move(body))));
  }

  void emit_epilogue(std::vector<StmtPtr>& out, bool constant,
                     std::int64_t kernel_trips, std::int64_t n_iters) {
    std::vector<Instance> instances;
    if (constant) {
      for (int k = 0; k < num_mis(); ++k)
        for (std::int64_t t = kernel_trips + offset(k); t < n_iters; ++t)
          instances.push_back({ii_ * t + sigma(k), t, k});
      emit_instances(
          std::move(instances),
          [&](const Instance& inst) { return iv_value(inst.t, true); }, out);
      return;
    }
    // Symbolic: t is relative to the kernel exit value of iv
    // (t_rel = t - Nk, in [offset(k), S-1)).
    for (int k = 0; k < num_mis(); ++k)
      for (std::int64_t t_rel = offset(k); t_rel < stages_ - 1; ++t_rel)
        instances.push_back({ii_ * t_rel + sigma(k), t_rel, k});
    emit_instances(
        std::move(instances),
        [&](const Instance& inst) {
          return build::var_plus(plan_.iv, inst.t * plan_.step);
        },
        out);
  }

  /// Restores the induction variable's original exit value — code after
  /// the loop may read it, and the oracle compares final scalar states.
  void emit_iv_fixup(std::vector<StmtPtr>& out, bool constant,
                     std::int64_t n_iters) {
    if (constant) {
      out.push_back(build::assign(
          build::var(plan_.iv),
          build::lit(*plan_.const_lower + n_iters * plan_.step)));
      return;
    }
    // Symbolic: the kernel exits (S-1) iterations early.
    std::int64_t delta = (stages_ - 1) * plan_.step;
    if (delta == 0) return;
    out.push_back(
        delta > 0
            ? build::assign(build::var(plan_.iv), build::lit(delta),
                            AssignOp::Add)
            : build::assign(build::var(plan_.iv), build::lit(-delta),
                            AssignOp::Sub));
  }

  void emit_fixups(std::vector<StmtPtr>& out, bool constant,
                   std::int64_t n_iters) {
    if (!constant || plan_.renames.empty() || n_iters == 0) return;
    for (const RenamedScalar& r : plan_.renames) {
      if (r.mode == RenameMode::MveCopies) {
        if (unroll_ <= 1) continue;
        std::size_t last = std::size_t((n_iters - 1) % unroll_);
        // Deliberate miscompile (bug:fixup-stale-copy): restore the
        // live-out scalar from copy 0 regardless of which MVE copy the
        // final iteration wrote. The verifier's rename-soundness check
        // must flag the wrong copy (slms-rename-undef); no-op when
        // (n-1) mod unroll happens to be 0.
        if (support::fault::bug_planted("fixup-stale-copy")) last = 0;
        out.push_back(build::assign(build::var(r.name),
                                    build::var(r.copy_names[last])));
      } else {
        std::int64_t last_iv =
            *plan_.const_lower + (n_iters - 1) * plan_.step;
        out.push_back(build::assign(
            build::var(r.name),
            build::index(r.array_name, build::lit(last_iv))));
      }
    }
  }

  const PipelinePlan& plan_;
  std::int64_t ii_;
  std::int64_t stages_;
  int unroll_;
};

}  // namespace

std::vector<StmtPtr> build_pipeline(const PipelinePlan& plan) {
  return Builder(plan).build();
}

ExprPtr trip_count_guard(const PipelinePlan& plan) {
  std::int64_t abs_step = plan.step > 0 ? plan.step : -plan.step;
  std::int64_t stages = plan.sched.stage_count();
  ExprPtr span;
  BinaryOp op;
  switch (plan.cmp) {
    case BinaryOp::Lt:
      span = build::sub(plan.upper->clone(), plan.lower->clone());
      op = BinaryOp::Gt;
      break;
    case BinaryOp::Le:
      span = build::sub(plan.upper->clone(), plan.lower->clone());
      op = BinaryOp::Ge;
      break;
    case BinaryOp::Gt:
      span = build::sub(plan.lower->clone(), plan.upper->clone());
      op = BinaryOp::Gt;
      break;
    default:  // Ge
      span = build::sub(plan.lower->clone(), plan.upper->clone());
      op = BinaryOp::Ge;
      break;
  }
  fold(span);
  ExprPtr guard = build::bin(op, std::move(span),
                             build::lit((stages - 1) * abs_step));
  fold(guard);
  return guard;
}

}  // namespace slc::slms
