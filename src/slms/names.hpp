// Fresh-name allocation for SLMS-synthesized variables (decomposition
// registers `reg1`, predicates `pred0`, expansion arrays `regArr`, ...).
#pragma once

#include <set>
#include <string>

#include "ast/ast.hpp"

namespace slc::slms {

class NameAllocator {
 public:
  NameAllocator() = default;
  explicit NameAllocator(std::set<std::string> used) : used_(std::move(used)) {}

  /// Seeds the allocator with every identifier appearing in `program`
  /// (variables, arrays, declarations).
  [[nodiscard]] static NameAllocator for_program(const ast::Program& program);

  /// Seeds from a single statement tree.
  [[nodiscard]] static NameAllocator for_stmt(const ast::Stmt& stmt);

  /// Returns `hint` if unused, else `hint<N>` for the first free N >= 1,
  /// and registers the result.
  [[nodiscard]] std::string fresh(const std::string& hint);

  void reserve(const std::string& name) { used_.insert(name); }
  [[nodiscard]] bool taken(const std::string& name) const {
    return used_.contains(name);
  }

 private:
  std::set<std::string> used_;
};

}  // namespace slc::slms
