#include "slms/filter.hpp"

#include <sstream>

#include "analysis/access.hpp"

namespace slc::slms {

FilterDecision evaluate_filter(const std::vector<const ast::Stmt*>& body,
                               const FilterOptions& opts) {
  FilterDecision d;
  for (const ast::Stmt* s : body) {
    analysis::AccessSet a = analysis::collect_accesses(*s);
    d.load_stores += a.load_store_count;
    d.arith_ops += a.arith_op_count;
  }
  int total = d.load_stores + d.arith_ops;
  d.memory_ratio = total == 0 ? 0.0 : double(d.load_stores) / double(total);
  d.arith_per_ref = d.load_stores == 0
                        ? double(d.arith_ops)
                        : double(d.arith_ops) / double(d.load_stores);

  std::ostringstream why;
  if (d.memory_ratio >= opts.memory_ratio_threshold) {
    d.apply = false;
    why << "memory-ref ratio " << d.memory_ratio << " >= threshold "
        << opts.memory_ratio_threshold;
  } else if (opts.min_arith_per_ref > 0.0 &&
             d.arith_per_ref < opts.min_arith_per_ref) {
    d.apply = false;
    why << "arithmetic ops per array reference " << d.arith_per_ref
        << " < required " << opts.min_arith_per_ref;
  }
  d.reason = why.str();
  return d;
}

}  // namespace slc::slms
