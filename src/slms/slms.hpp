// The SLMS driver — the paper's §5 algorithm end to end:
//
//   1. filter bad cases (§4);
//   2. source-level if-conversion (§3.1);
//   3. partition the body into MIs;
//   4. plan false-dependence elimination (MVE §3.3 / scalar expansion
//      §3.4) for renameable scalars, dropping their anti/output edges;
//   5. build the DDG, compute delays (§3.5) and the MII via iterative
//      shortest path (§3.6);
//   6. on failure, decompose an MI (§3.2) and retry, up to a budget;
//   7. construct prologue / kernel / epilogue, apply MVE or scalar
//      expansion, and splice the result back into the program.
//
// Loops with symbolic bounds are pipelined without renaming and guarded
// by a trip-count test (`if (enough iterations) pipelined else original`),
// so the transformation is unconditionally semantics-preserving — the
// property the interpreter oracle checks for every kernel in the suite.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "slms/filter.hpp"
#include "slms/mii.hpp"
#include "slms/placement.hpp"

namespace slc::slms {

enum class RenamingChoice {
  None,             // keep anti/output deps (usually a larger II)
  Mve,              // modulo variable expansion: unroll + rename
  ScalarExpansion,  // per-iteration temporary arrays
};

struct SlmsOptions {
  bool enable_filter = true;
  FilterOptions filter;
  bool enable_if_conversion = true;
  int max_decompositions = 4;
  RenamingChoice renaming = RenamingChoice::Mve;
  /// Kernel unroll cap; MVE needing more copies is rejected (register
  /// pressure guard — the paper's kernel-10 lesson).
  int max_unroll = 8;
  /// Eager MVE (paper behaviour, Fig. 7): rename every expandable loop
  /// variant and unroll the kernel at least twice, so consecutive
  /// iterations' work lands in one straight-line body — this is what lets
  /// SLMS "compensate for the lack of MVE and unrolling" in a weak final
  /// compiler (§9.1). When false, MVE only fires when a register lifetime
  /// exceeds the II.
  bool eager_mve = true;
  /// Override the II search bound (inclusive). Default: #MIs - 1.
  std::optional<int> max_ii;
  /// Record a human-readable explanation of every decision into
  /// SlmsReport::trace — the paper's interactive-SLC "tips" (Fig. 4/5).
  bool explain = false;
};

struct SlmsReport {
  bool applied = false;
  std::string skip_reason;   // set when !applied
  std::string loop_name;     // optional label set by the caller

  int num_mis = 0;           // after if-conversion and decomposition
  int ii = 0;
  std::int64_t stages = 0;
  int unroll = 1;
  int decompositions = 0;
  int renamed_scalars = 0;
  bool if_converted = false;
  bool used_trip_guard = false;  // symbolic-bound guarded emission
  double memory_ratio = 0.0;

  /// Step-by-step decision log (filled when SlmsOptions::explain).
  std::vector<std::string> trace;
};

/// Result of transforming one loop: the statements that replace it
/// (declarations first, then the pipelined code). Empty when skipped.
struct SlmsResult {
  std::vector<ast::StmtPtr> replacement;
  SlmsReport report;
  /// Placement metadata for the static verifier; engaged iff applied.
  std::optional<LoopPlacement> placement;

  [[nodiscard]] bool applied() const { return report.applied; }
};

/// Transforms a single canonical for-loop. `program` provides symbol
/// types and the used-name universe; the loop must belong to it (or at
/// least declare against its symbols). The loop itself is not modified.
[[nodiscard]] SlmsResult transform_loop(const ast::ForStmt& loop,
                                        const ast::Program& program,
                                        const SlmsOptions& options = {});

/// One applied (or skipped) loop recorded by apply_slms, parallel to the
/// returned report list. For an applied loop, `placement` holds the
/// schedule metadata and `replacement` points at the block spliced into
/// the program (non-owning — valid while the program is alive and
/// untouched). Skipped loops leave both empty.
struct SlmsApplication {
  std::optional<LoopPlacement> placement;
  const ast::BlockStmt* replacement = nullptr;

  [[nodiscard]] bool applied() const { return placement.has_value(); }
};

/// Applies SLMS to every innermost canonical for-loop in the program,
/// splicing replacements in place. Returns one report per loop visited
/// (applied or skipped). When `applications` is non-null it receives one
/// SlmsApplication per report (same order) for the static verifier.
std::vector<SlmsReport> apply_slms(ast::Program& program,
                                   const SlmsOptions& options = {},
                                   std::vector<SlmsApplication>* applications =
                                       nullptr);

}  // namespace slc::slms
