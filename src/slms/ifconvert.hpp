// Source-level if-conversion (paper §3.1): if-statements inside a loop
// body are replaced by predicated statements guarded with fresh boolean
// variables, mirroring machine-level if-conversion:
//
//   if (x < y) { x = x + 1; A[i] += x; } else y = y + 1;
//     =>
//   c = x < y;
//   if (c)  x = x + 1;
//   if (c)  A[i] += x;
//   if (!c) y = y + 1;
//
// Nested if-statements compose their guards conjunctively through
// additional predicate variables. Predicates are declared before the
// loop; declarations are appended to `new_decls`.
#pragma once

#include <vector>

#include "ast/ast.hpp"
#include "slms/names.hpp"

namespace slc::slms {

struct IfConvertResult {
  bool changed = false;         // body had at least one if-statement
  bool ok = true;               // false => body not convertible
  std::string reject_reason;
};

/// Converts every if-statement in `body` (a BlockStmt) into predicated
/// simple statements. `new_decls` receives the predicate declarations the
/// caller must place before the loop.
[[nodiscard]] IfConvertResult if_convert_body(
    ast::BlockStmt& body, NameAllocator& names,
    std::vector<ast::StmtPtr>& new_decls);

}  // namespace slc::slms
