// MI decomposition (paper §3.2): splits a "large" MI by hoisting one
// array load into a fresh register MI:
//
//   A[i] = A[i-1] + A[i-2] + A[i+1] + A[i+2];
//     =>
//   reg1 = A[i+2];
//   A[i] = A[i-1] + A[i-2] + A[i+1] + reg1;
//
// Decomposition is needed when the loop has a single MI (a valid II must
// be < #MIs) or when a loop-carried self dependence pins the MII too
// high. Only loads with *no flow dependence from any store in the body*
// are candidates — hoisting those lets the subsequent MVE/scalar
// expansion remove the new register's anti dependence and free the
// schedule. The split is textually in-place (the register MI is inserted
// directly before its consumer), so semantics are trivially preserved.
//
// A second operation, resource splitting, halves MIs whose operation
// count exceeds what one VLIW multi-instruction can hold; the MII ignores
// resources (§3.6) but the final compiler's bundle packer benefits.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "slms/names.hpp"

namespace slc::slms {

struct DecomposeResult {
  std::string reg_name;
  std::string array;          // the array whose load was hoisted
  ast::ScalarType reg_type;   // element type of that array
  int inserted_at = 0;        // index of the new register MI in `mis`
};

/// Performs one load-hoisting decomposition on `mis` (in place). Returns
/// nullopt when no MI has a hoistable load. `element_type` maps an array
/// name to its element type.
[[nodiscard]] std::optional<DecomposeResult> decompose_once(
    std::vector<ast::StmtPtr>& mis, const std::string& iv, std::int64_t step,
    NameAllocator& names,
    const std::function<ast::ScalarType(const std::string&)>& element_type);

/// Resource splitting: rewrites any assignment whose right-hand side has
/// more than `max_ops` arithmetic operations into a chain of register
/// temporaries, each stage within budget. Returns the number of splits.
int split_by_resources(
    std::vector<ast::StmtPtr>& mis, int max_ops, NameAllocator& names,
    const std::function<ast::ScalarType(const std::string&)>& element_type,
    std::vector<ast::StmtPtr>& new_decls);

}  // namespace slc::slms
