#include "slms/mii.hpp"

#include <algorithm>

#include "support/int_math.hpp"

namespace slc::slms {

using analysis::Ddg;
using analysis::DepEdge;

std::vector<std::int64_t> compute_delays(const Ddg& ddg) {
  const int n = ddg.num_nodes;
  // Longest forward-edge path between every pair, counted in edges.
  // dist[i][j] = -1 when unreachable.
  std::vector<std::vector<std::int64_t>> dist(
      std::size_t(n), std::vector<std::int64_t>(std::size_t(n), -1));
  for (int i = 0; i < n; ++i) dist[std::size_t(i)][std::size_t(i)] = 0;
  // Forward edges only (src < dst); nodes are in source order, so a
  // single sweep by increasing destination is a topological DP.
  for (int j = 0; j < n; ++j) {
    for (const DepEdge& e : ddg.edges) {
      if (e.src >= e.dst || e.dst != j) continue;
      for (int i = 0; i < n; ++i) {
        std::int64_t via = dist[std::size_t(i)][std::size_t(e.src)];
        if (via < 0) continue;
        auto& d = dist[std::size_t(i)][std::size_t(j)];
        d = std::max(d, via + 1);
      }
    }
  }

  std::vector<std::int64_t> delays;
  delays.reserve(ddg.edges.size());
  for (const DepEdge& e : ddg.edges) {
    if (e.src == e.dst) {
      delays.push_back(1);  // rule 1: self dependence
    } else if (e.src < e.dst) {
      // rules 2 & 3: longest forward path (adjacent MIs give 1).
      std::int64_t d = dist[std::size_t(e.src)][std::size_t(e.dst)];
      delays.push_back(std::max<std::int64_t>(1, d));
    } else {
      delays.push_back(1);  // rule 4: back edge
    }
  }
  return delays;
}

std::int64_t ModuloSchedule::stage_count() const {
  std::int64_t max_stage = 0;
  for (int k = 0; k < num_mis(); ++k) max_stage = std::max(max_stage, stage(k));
  return max_stage + 1;
}

MiiSolver::MiiSolver(const Ddg& ddg, std::vector<std::int64_t> delays)
    : ddg_(ddg), delays_(std::move(delays)) {}

std::optional<ModuloSchedule> MiiSolver::schedule_for(int ii) const {
  const int n = ddg_.num_nodes;
  if (n == 0 || ii <= 0) return std::nullopt;

  // Longest-path relaxation with implicit source sigma >= 0. An edge's
  // binding constraint uses its smallest distance (unknown => 0, the most
  // conservative assumption).
  std::vector<std::int64_t> sigma(std::size_t(n), 0);
  for (int round = 0; round <= n; ++round) {
    bool changed = false;
    for (std::size_t k = 0; k < ddg_.edges.size(); ++k) {
      const DepEdge& e = ddg_.edges[k];
      std::int64_t w = delays_[k] - std::int64_t(ii) * e.min_distance();
      std::int64_t cand = sigma[std::size_t(e.src)] + w;
      if (cand > sigma[std::size_t(e.dst)]) {
        sigma[std::size_t(e.dst)] = cand;
        changed = true;
      }
    }
    if (!changed) {
      ModuloSchedule s;
      s.ii = ii;
      s.sigma = std::move(sigma);
      return s;
    }
  }
  return std::nullopt;  // positive cycle: II infeasible
}

namespace {

/// True when `sched` packs more members of some class into one row mod
/// II than the class has units — the witness the historical solver never
/// looked at (it silently assumed unbounded resources).
bool schedule_overcommits(const ModuloSchedule& sched,
                          const ResourceModel& resources) {
  for (const ResourceClass& cls : resources.classes) {
    if (cls.units <= 0) return true;  // a class nothing may occupy
    std::vector<int> per_row(std::size_t(sched.ii), 0);
    for (int mi : cls.members) {
      if (mi < 0 || mi >= sched.num_mis()) continue;
      if (++per_row[std::size_t(sched.row(mi))] > cls.units) return true;
    }
  }
  return false;
}

}  // namespace

int res_mii(const ResourceModel& resources) {
  std::int64_t bound = 1;
  for (const ResourceClass& cls : resources.classes) {
    if (cls.members.empty()) continue;
    std::int64_t units = std::max(1, cls.units);
    bound = std::max(bound,
                     ceil_div(std::int64_t(cls.members.size()), units));
  }
  return int(bound);
}

std::optional<ModuloSchedule> MiiSolver::solve(MiiOptions opts) const {
  const int n = ddg_.num_nodes;
  if (n == 0) return std::nullopt;
  // A valid SLMS II must beat the sequential schedule: II < #MIs (§5).
  int bound = opts.max_ii.value_or(n - 1);
  const bool bounded =
      opts.resources != nullptr && !opts.resources->empty();
  // Resource floor: no II below ResMII can hold every class member once
  // per iteration, so candidates below it are skipped outright.
  int floor_ii = bounded ? res_mii(*opts.resources) : 1;
  for (int ii = std::max(1, floor_ii); ii <= bound; ++ii) {
    auto s = schedule_for(ii);
    if (!s) continue;
    if (bounded && schedule_overcommits(*s, *opts.resources))
      continue;  // minimal witness overcommits a class row (see
                 // MiiOptions::resources: conservative, not complete)
    return s;
  }
  return std::nullopt;
}

std::int64_t MiiSolver::lower_bound(const ResourceModel* resources) const {
  std::int64_t bound = recurrence_bound_hint();
  if (resources != nullptr && !resources->empty())
    bound = std::max(bound, std::int64_t(res_mii(*resources)));
  return bound;
}

std::int64_t MiiSolver::recurrence_bound_hint() const {
  const int n = ddg_.num_nodes;
  std::int64_t best = 1;
  // DFS enumeration of simple cycles starting from their minimal node.
  // Loop bodies are small (< ~50 MIs) and the enumeration is capped.
  int budget = 200000;

  for (int start = 0; start < n && budget > 0; ++start) {
    std::vector<int> stack_nodes{start};
    std::vector<std::int64_t> delay_sum{0};
    std::vector<std::int64_t> dist_sum{0};
    std::vector<bool> on_stack(std::size_t(n), false);
    on_stack[std::size_t(start)] = true;

    // Iterative DFS over edge indices.
    std::vector<std::size_t> edge_iter{0};
    while (!stack_nodes.empty() && budget > 0) {
      int u = stack_nodes.back();
      bool advanced = false;
      for (std::size_t k = edge_iter.back(); k < ddg_.edges.size(); ++k) {
        const DepEdge& e = ddg_.edges[k];
        if (e.src != u) continue;
        if (e.dst < start) continue;  // canonical: cycles via minimal node
        --budget;
        edge_iter.back() = k + 1;
        std::int64_t d = delays_[k];
        std::int64_t dd = e.min_distance();
        if (e.dst == start) {
          std::int64_t total_delay = delay_sum.back() + d;
          std::int64_t total_dist = dist_sum.back() + dd;
          if (total_dist > 0)
            best = std::max(best, ceil_div(total_delay, total_dist));
          continue;
        }
        if (on_stack[std::size_t(e.dst)]) continue;
        stack_nodes.push_back(e.dst);
        delay_sum.push_back(delay_sum.back() + d);
        dist_sum.push_back(dist_sum.back() + dd);
        on_stack[std::size_t(e.dst)] = true;
        edge_iter.push_back(0);
        advanced = true;
        break;
      }
      if (!advanced) {
        on_stack[std::size_t(stack_nodes.back())] = false;
        stack_nodes.pop_back();
        delay_sum.pop_back();
        dist_sum.pop_back();
        edge_iter.pop_back();
      }
    }
  }
  return best;
}

}  // namespace slc::slms
