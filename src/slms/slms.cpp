#include "slms/slms.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/access.hpp"
#include "analysis/ddg.hpp"
#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "ast/walk.hpp"
#include "sema/loop_info.hpp"
#include "slms/decompose.hpp"
#include "slms/ifconvert.hpp"
#include "slms/pipeliner.hpp"
#include "support/fault.hpp"
#include "support/int_math.hpp"

namespace slc::slms {

using namespace ast;

namespace {

// ---------------------------------------------------------------------------
// type lookup over program decls + SLMS-synthesized decls
// ---------------------------------------------------------------------------

class TypeContext {
 public:
  explicit TypeContext(const Program& program) {
    for (const StmtPtr& s : program.stmts) {
      walk_stmts(*s, [&](const Stmt& st) {
        if (const auto* d = dyn_cast<DeclStmt>(&st))
          types_[d->name] = d->type;
      });
    }
  }

  void add(const std::string& name, ScalarType t) { types_[name] = t; }

  [[nodiscard]] ScalarType of(const std::string& name) const {
    auto it = types_.find(name);
    return it == types_.end() ? ScalarType::Double : it->second;
  }

  [[nodiscard]] std::function<ScalarType(const std::string&)> lookup_fn()
      const {
    return [this](const std::string& n) { return of(n); };
  }

 private:
  std::map<std::string, ScalarType> types_;
};

// ---------------------------------------------------------------------------
// scalar def-use over the MI list
// ---------------------------------------------------------------------------

struct ScalarDefUse {
  std::vector<int> defs;
  std::vector<int> uses;
  bool renameable = false;  // single unguarded Set def preceding all uses
};

std::map<std::string, ScalarDefUse> analyze_scalars(
    const std::vector<StmtPtr>& mis, const std::string& iv) {
  std::map<std::string, ScalarDefUse> out;
  for (int k = 0; k < int(mis.size()); ++k) {
    analysis::AccessSet set =
        analysis::collect_accesses(*mis[std::size_t(k)]);
    for (const analysis::ScalarAccess& s : set.scalars) {
      if (s.name == iv) continue;
      ScalarDefUse& du = out[s.name];
      auto& list = s.is_write ? du.defs : du.uses;
      if (list.empty() || list.back() != k) list.push_back(k);
    }
  }
  for (auto& [name, du] : out) {
    if (du.defs.size() != 1) continue;
    int def = du.defs.front();
    const auto* a = dyn_cast<AssignStmt>(mis[std::size_t(def)].get());
    if (a == nullptr || a->op != AssignOp::Set || a->guard != nullptr)
      continue;
    const auto* lhs = dyn_cast<VarRef>(a->lhs.get());
    if (lhs == nullptr || lhs->name != name) continue;
    bool ok = true;
    for (int u : du.uses)
      if (u <= def) ok = false;
    du.renameable = ok;
  }
  return out;
}

/// Removes anti/output edges through the planned scalars — the false
/// dependences MVE / scalar expansion will eliminate (paper §5 step 6c).
void drop_false_scalar_edges(analysis::Ddg& ddg,
                             const std::set<std::string>& planned) {
  std::erase_if(ddg.edges, [&](const analysis::DepEdge& e) {
    return e.kind != analysis::DepKind::Flow && planned.contains(e.var);
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// transform_loop
// ---------------------------------------------------------------------------

SlmsResult transform_loop(const ForStmt& loop, const Program& program,
                          const SlmsOptions& options) {
  SlmsResult res;
  SlmsReport& rep = res.report;
  auto note = [&](std::string msg) {
    if (options.explain) rep.trace.push_back(std::move(msg));
  };
  auto skip = [&](std::string why) -> SlmsResult {
    rep.applied = false;
    note("skip: " + why);
    rep.skip_reason = std::move(why);
    res.replacement.clear();
    return std::move(res);
  };

  // Work on a clone; normalize a decl-style init (`for (int i = e; ...)`)
  // so the induction variable survives the loop for the epilogue.
  StmtPtr cloned = loop.clone();
  auto* work = dyn_cast<ForStmt>(cloned.get());
  std::vector<StmtPtr> new_decls;
  if (const auto* d = dyn_cast<DeclStmt>(work->init.get());
      d != nullptr && !d->is_array() && d->init != nullptr) {
    new_decls.push_back(build::decl(d->type, d->name));
    work->init = build::assign(build::var(d->name), d->init->clone());
  }

  std::string reason;
  auto info_opt = sema::analyze_loop(*work, &reason);
  if (!info_opt) return skip("not a canonical loop: " + reason);
  sema::LoopInfo info = *info_opt;
  if (!info.body_is_pipelineable) return skip(info.reject_reason);

  // Keep a pristine normalized copy for the symbolic-bound fallback arm.
  StmtPtr fallback = work->clone();

  // -- 1. bad-case filter ---------------------------------------------------
  {
    std::vector<const Stmt*> body_ptrs;
    for (Stmt* s : sema::body_statements(*work)) body_ptrs.push_back(s);
    FilterDecision fd = evaluate_filter(body_ptrs, options.filter);
    rep.memory_ratio = fd.memory_ratio;
    note("filter (§4): LS=" + std::to_string(fd.load_stores) +
         " AO=" + std::to_string(fd.arith_ops) + " memory-ref ratio=" +
         std::to_string(fd.memory_ratio) +
         (fd.apply ? " -> apply" : " -> bad case"));
    if (options.enable_filter && !fd.apply)
      return skip("filtered: " + fd.reason);
  }

  NameAllocator names = NameAllocator::for_program(program);
  TypeContext types(program);

  // -- 2. if-conversion -----------------------------------------------------
  auto* body_block = dyn_cast<BlockStmt>(work->body.get());
  bool has_if = false;
  for (const StmtPtr& s : body_block->stmts)
    if (s->kind() == StmtKind::If) has_if = true;
  if (has_if) {
    if (!options.enable_if_conversion)
      return skip("body contains if-statements (if-conversion disabled)");
    std::vector<StmtPtr> pred_decls;
    IfConvertResult icr = if_convert_body(*body_block, names, pred_decls);
    if (!icr.ok) return skip("if-conversion failed: " + icr.reject_reason);
    rep.if_converted = icr.changed;
    note("if-conversion (§3.1): " + std::to_string(pred_decls.size()) +
         " predicate(s) introduced");
    for (StmtPtr& d : pred_decls) {
      types.add(dyn_cast<DeclStmt>(d.get())->name, ScalarType::Bool);
      new_decls.push_back(std::move(d));
    }
  }

  // -- 3. MI partitioning ---------------------------------------------------
  std::vector<StmtPtr> mis;
  for (StmtPtr& s : body_block->stmts) {
    if (s->kind() != StmtKind::Assign && s->kind() != StmtKind::ExprStmt)
      return skip(
          "unsupported statement in loop body (hint: declare temporaries "
          "outside the loop)");
    mis.push_back(std::move(s));
  }
  body_block->stmts.clear();
  if (mis.empty()) return skip("empty loop body");

  // -- 4. renaming feasibility ----------------------------------------------
  auto const_lo = const_int(*info.lower);
  auto const_hi = const_int(*info.upper);
  bool constant = const_lo.has_value() && const_hi.has_value();
  bool renaming_allowed =
      options.renaming != RenamingChoice::None && constant &&
      (options.renaming == RenamingChoice::Mve ||
       (info.step > 0 && *const_lo >= 0));

  // -- 5/6. schedule, decomposing on failure ---------------------------------
  std::optional<ModuloSchedule> sched;
  std::set<std::string> planned;
  int decompositions = 0;
  for (;;) {
    planned.clear();
    if (renaming_allowed)
      for (const auto& [name, du] : analyze_scalars(mis, info.iv))
        if (du.renameable) planned.insert(name);

    std::vector<const Stmt*> mi_ptrs;
    for (const StmtPtr& s : mis) mi_ptrs.push_back(s.get());
    analysis::Ddg ddg = analysis::build_ddg(mi_ptrs, info.iv, info.step);
    drop_false_scalar_edges(ddg, planned);
    {
      std::string names_list;
      for (const std::string& n : planned)
        names_list += (names_list.empty() ? "" : ", ") + n;
      note("DDG: " + std::to_string(mis.size()) + " MIs, " +
           std::to_string(ddg.edges.size()) + " edges" +
           (planned.empty()
                ? std::string()
                : "; false deps dropped for renameable scalars {" +
                      names_list + "}"));
    }
    MiiSolver solver(ddg, compute_delays(ddg));
    sched = solver.solve({options.max_ii});
    if (sched.has_value()) {
      // Deliberate pessimization (support/fault.hpp, `bug:sched-ii-inflate`):
      // re-solve one II above the minimum the search just proved feasible.
      // Raising II only relaxes the modulo inequality, so the inflated
      // schedule is still correct — the static verifier and the execution
      // oracle both accept it, and only the exact oracle exposes the bug
      // as a nonzero II-optimality gap. This is the planted fault the CI
      // exact-gate job must catch.
      if (support::fault::bug_planted("sched-ii-inflate")) {
        if (auto inflated = solver.schedule_for(sched->ii + 1))
          sched = std::move(inflated);
      }
      note("MII search (§3.6): feasible at II=" +
           std::to_string(sched->ii) + ", " +
           std::to_string(sched->stage_count()) + " stage(s)");
      break;
    }
    note("MII search: no II < " + std::to_string(mis.size()) +
         " is feasible");

    if (decompositions >= options.max_decompositions)
      return skip("no valid II within the decomposition budget");
    auto dr = decompose_once(mis, info.iv, info.step, names,
                             types.lookup_fn());
    if (!dr.has_value())
      return skip("no valid II and no decomposable MI (failure, §5 step 5a)");
    note("decomposition (§3.2): hoisted a load of '" + dr->array +
         "' into register '" + dr->reg_name + "'");
    types.add(dr->reg_name, dr->reg_type);
    new_decls.push_back(build::decl(dr->reg_type, dr->reg_name));
    ++decompositions;
  }

  // Deliberate miscompile (support/fault.hpp, `bug:sched-sigma-skew`):
  // pull the last MI one slot earlier than the solver placed it. The
  // minimal Bellman-Ford solution makes some incoming constraint tight on
  // every node with sigma > 0, so the skewed schedule violates the modulo
  // inequality on at least one dependence edge — the static verifier must
  // flag it (slms-dep-violation) without running anything. Everything
  // downstream (unroll, emission, exported metadata) consistently uses
  // the skewed schedule, exactly as a real scheduler bug would.
  if (support::fault::bug_planted("sched-sigma-skew") &&
      sched->sigma.back() > 0)
    --sched->sigma.back();

  // -- 6a. register lifetimes => unroll factor & rename plan -----------------
  const int ii = sched->ii;
  std::vector<RenamedScalar> renames;
  int unroll = 1;
  {
    bool eager =
        options.eager_mve && options.renaming == RenamingChoice::Mve;
    auto defuse = analyze_scalars(mis, info.iv);
    for (const std::string& name : planned) {
      // Deliberate miscompile used to validate the differential fuzzer
      // (support/fault.hpp, `bug:mve-skip-rename`): the scalar's anti/
      // output dependences were already dropped from the DDG on the
      // promise of renaming, so skipping the rename lets overlapped
      // lifetimes in the pipelined kernel read clobbered values.
      if (support::fault::bug_planted("mve-skip-rename")) continue;
      const ScalarDefUse& du = defuse.at(name);
      if (du.uses.empty()) continue;
      std::int64_t sig_def = sched->sigma[std::size_t(du.defs.front())];
      std::int64_t lifetime = 0;
      for (int u : du.uses)
        lifetime = std::max(lifetime, sched->sigma[std::size_t(u)] - sig_def);
      if (lifetime <= ii && !eager) continue;  // safe without renaming
      RenamedScalar r;
      r.name = name;
      if (options.renaming == RenamingChoice::Mve) {
        r.mode = RenameMode::MveCopies;
        unroll = std::max(unroll, int(ceil_div(lifetime, ii)));
        if (eager) unroll = std::max(unroll, 2);
      } else {
        r.mode = RenameMode::Expand;
        r.array_name = names.fresh(name + "Arr");
      }
      renames.push_back(std::move(r));
    }
    if (unroll > options.max_unroll)
      return skip("MVE unroll factor " + std::to_string(unroll) +
                  " exceeds the register-pressure cap");
    if (!renames.empty())
      note("renaming (§3.3/§3.4): " + std::to_string(renames.size()) +
           " scalar(s), kernel unroll " + std::to_string(unroll));
    for (RenamedScalar& r : renames) {
      if (r.mode != RenameMode::MveCopies) continue;
      for (int c = 0; c < unroll; ++c) {
        std::string copy = names.fresh(r.name);
        new_decls.push_back(build::decl(types.of(r.name), copy));
        r.copy_names.push_back(std::move(copy));
      }
    }
  }

  // -- 6b. pipeline construction ---------------------------------------------
  PipelinePlan plan;
  plan.iv = info.iv;
  plan.lower = info.lower;
  plan.upper = info.upper;
  plan.cmp = info.cmp;
  plan.step = info.step;
  plan.const_lower = const_lo;
  plan.const_upper = const_hi;
  plan.mis = std::move(mis);
  plan.sched = *sched;
  plan.unroll = unroll;
  plan.renames = std::move(renames);

  std::int64_t stages = plan.sched.stage_count();
  if (constant) {
    std::int64_t n = plan.trip_count();
    if (n < stages - 1 + unroll)
      return skip("trip count " + std::to_string(n) +
                  " too short for " + std::to_string(stages) +
                  " pipeline stages");
    // Scalar-expansion arrays sized to the iv range they index.
    for (const RenamedScalar& r : plan.renames) {
      if (r.mode != RenameMode::Expand) continue;
      std::int64_t size = *const_lo + (n - 1) * plan.step + 1;
      new_decls.push_back(build::decl_array(
          types.of(r.name), r.array_name, {size}));
    }
  }

  std::vector<StmtPtr> pipelined = build_pipeline(plan);
  if (pipelined.empty()) return skip("pipeline construction failed");

  // Export the placement metadata the static verifier checks the emitted
  // pipeline against (bounds cloned — `work` dies with this call).
  {
    LoopPlacement pl;
    pl.iv = plan.iv;
    pl.lower = info.lower->clone();
    pl.upper = info.upper->clone();
    pl.cmp = plan.cmp;
    pl.step = plan.step;
    pl.const_lower = const_lo;
    pl.const_upper = const_hi;
    pl.ii = ii;
    pl.stages = stages;
    pl.unroll = unroll;
    pl.sigma = plan.sched.sigma;
    for (const StmtPtr& s : plan.mis) pl.mis.push_back(s->clone());
    pl.renames = plan.renames;
    pl.planned.assign(planned.begin(), planned.end());
    if (!constant) {
      pl.used_trip_guard = true;
      pl.guarded_fallback = fallback->clone();
    }
    res.placement = std::move(pl);
  }

  if (!constant) {
    // Guarded emission: pipelined only when the trip count covers the
    // pipeline depth, otherwise the original loop runs.
    ExprPtr guard = trip_count_guard(plan);
    StmtPtr guarded = std::make_unique<IfStmt>(
        std::move(guard), build::block(std::move(pipelined)),
        std::move(fallback));
    pipelined.clear();
    pipelined.push_back(std::move(guarded));
    rep.used_trip_guard = true;
    note("symbolic bounds: pipelined form wrapped in a trip-count guard");
  }
  note("pipelined: prologue + " + std::to_string(sched->ii) +
       "-row kernel + epilogue emitted");

  res.replacement = std::move(new_decls);
  for (StmtPtr& s : pipelined) res.replacement.push_back(std::move(s));

  rep.applied = true;
  rep.num_mis = int(plan.mis.size());
  rep.ii = ii;
  rep.stages = stages;
  rep.unroll = unroll;
  rep.decompositions = decompositions;
  rep.renamed_scalars = int(plan.renames.size());
  return res;
}

// ---------------------------------------------------------------------------
// program-level application
// ---------------------------------------------------------------------------

namespace {

void process_slot(StmtPtr& slot, Program& program, const SlmsOptions& options,
                  std::vector<SlmsReport>& reports,
                  std::vector<SlmsApplication>* applications);

void process_list(std::vector<StmtPtr>& list, Program& program,
                  const SlmsOptions& options,
                  std::vector<SlmsReport>& reports,
                  std::vector<SlmsApplication>* applications) {
  for (StmtPtr& s : list)
    process_slot(s, program, options, reports, applications);
}

void process_slot(StmtPtr& slot, Program& program, const SlmsOptions& options,
                  std::vector<SlmsReport>& reports,
                  std::vector<SlmsApplication>* applications) {
  switch (slot->kind()) {
    case StmtKind::Block:
      process_list(dyn_cast<BlockStmt>(slot.get())->stmts, program, options,
                   reports, applications);
      return;
    case StmtKind::Parallel:
      process_list(dyn_cast<ParallelStmt>(slot.get())->stmts, program,
                   options, reports, applications);
      return;
    case StmtKind::If: {
      auto* i = dyn_cast<IfStmt>(slot.get());
      process_slot(i->then_stmt, program, options, reports, applications);
      if (i->else_stmt)
        process_slot(i->else_stmt, program, options, reports, applications);
      return;
    }
    case StmtKind::While:
      process_slot(dyn_cast<WhileStmt>(slot.get())->body, program, options,
                   reports, applications);
      return;
    case StmtKind::For: {
      auto* f = dyn_cast<ForStmt>(slot.get());
      // Innermost-first: transform nested loops, then attempt this one
      // (it will be rejected as non-canonical if children were pipelined
      // into blocks — SLMS targets innermost loops).
      process_slot(f->body, program, options, reports, applications);
      SlmsResult r = transform_loop(*f, program, options);
      reports.push_back(r.report);
      SlmsApplication app;
      if (r.applied()) {
        slot = build::block(std::move(r.replacement));
        app.placement = std::move(r.placement);
        app.replacement = dyn_cast<BlockStmt>(slot.get());
      }
      if (applications != nullptr) applications->push_back(std::move(app));
      return;
    }
    default:
      return;
  }
}

}  // namespace

std::vector<SlmsReport> apply_slms(Program& program,
                                   const SlmsOptions& options,
                                   std::vector<SlmsApplication>* applications) {
  std::vector<SlmsReport> reports;
  process_list(program.stmts, program, options, reports, applications);
  return reports;
}

}  // namespace slc::slms
