// `slc --lint` — run SLMS on a source under the given options and
// statically verify every applied loop, without executing anything.
#pragma once

#include <string>

#include "slms/slms.hpp"
#include "support/diagnostics.hpp"

namespace slc::verify {

struct LintOptions {
  /// Transform configuration to lint under (same knobs as `slc`).
  slms::SlmsOptions slms;
  /// Also run the whole-program static bounds check on the result.
  bool check_bounds = true;
};

struct LintResult {
  /// Everything reported: parse errors, per-loop skip notes
  /// ("slms-skip"), and the verifier's findings.
  DiagnosticEngine diags;
  int loops_applied = 0;
  int loops_skipped = 0;
  bool parse_failed = false;

  [[nodiscard]] bool clean() const { return !diags.has_errors(); }
};

/// Parses `source`, applies SLMS, and verifies the result statically.
[[nodiscard]] LintResult run_lint(const std::string& source,
                                  const LintOptions& options = {});

}  // namespace slc::verify
