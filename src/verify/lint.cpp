#include "verify/lint.hpp"

#include <vector>

#include "frontend/parser.hpp"
#include "verify/verify.hpp"

namespace slc::verify {

LintResult run_lint(const std::string& source, const LintOptions& options) {
  LintResult res;
  ast::Program program = frontend::parse_program(source, res.diags);
  if (res.diags.has_errors()) {
    res.parse_failed = true;
    return res;
  }

  std::vector<slms::SlmsApplication> applications;
  std::vector<slms::SlmsReport> reports =
      slms::apply_slms(program, options.slms, &applications);
  for (const slms::SlmsReport& r : reports) {
    if (r.applied) {
      ++res.loops_applied;
    } else {
      ++res.loops_skipped;
      res.diags.note("slms-skip", {},
                     "loop not pipelined — " + r.skip_reason);
    }
  }

  VerifyOptions vopts;
  vopts.check_bounds = options.check_bounds;
  verify_transformed(program, applications, res.diags, vopts);
  return res;
}

}  // namespace slc::verify
