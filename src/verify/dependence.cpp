// Metadata sanity and dependence preservation.
//
// The DDG is rebuilt from the recorded MIs — the exact statements the
// schedule was computed for — and every edge is replayed against the
// recorded sigma. Edges the driver dropped before solving (anti/output
// edges of scalars planned for renaming) are not trusted: each one is
// re-justified from the rename tables, or flagged.
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "analysis/access.hpp"
#include "analysis/ddg.hpp"
#include "slms/mii.hpp"
#include "verify/internal.hpp"
#include "verify/verify.hpp"

namespace slc::verify {

using analysis::DepEdge;
using analysis::DepKind;
using slms::LoopPlacement;
using slms::RenamedScalar;
using slms::RenameMode;

namespace {

std::string mi_name(int k) { return "MI " + std::to_string(k + 1); }

/// Re-derives the renameability analyze_scalars() promised: exactly one
/// defining MI, shaped `name = expr` (plain, unguarded), that neither
/// reads the previous value nor follows any use. MVE and scalar
/// expansion are only sound for such scalars — every read sees the value
/// written earlier in the same iteration, so all cross-iteration edges
/// through the scalar are false dependences.
bool scalar_renameable(const LoopPlacement& pl, const std::string& name,
                       std::string* why) {
  int def = -1;
  for (int k = 0; k < int(pl.mis.size()); ++k) {
    analysis::AccessSet acc = analysis::collect_accesses(*pl.mis[std::size_t(k)]);
    bool writes = acc.writes_scalar(name);
    bool reads = acc.reads_scalar(name);
    if (writes) {
      if (def != -1) {
        *why = "it is defined more than once per iteration";
        return false;
      }
      def = k;
      const auto* a = ast::dyn_cast<ast::AssignStmt>(pl.mis[std::size_t(k)].get());
      const auto* lhs = a != nullptr ? ast::dyn_cast<ast::VarRef>(a->lhs.get())
                                     : nullptr;
      if (a == nullptr || lhs == nullptr || lhs->name != name ||
          a->op != ast::AssignOp::Set || a->guard != nullptr) {
        *why = "its definition is not a plain unguarded assignment";
        return false;
      }
      if (reads) {
        *why = "its definition reads the previous iteration's value";
        return false;
      }
    } else if (reads && def == -1) {
      *why = "it is read before it is defined in the iteration";
      return false;
    }
  }
  if (def == -1) {
    *why = "it is never defined in the loop body";
    return false;
  }
  return true;
}

}  // namespace

bool check_metadata(const LoopPlacement& pl, DiagnosticEngine& diags) {
  const std::size_t errs0 = diags.error_count();
  const SourceLoc loc =
      pl.mis.empty() ? SourceLoc{} : pl.mis.front()->loc;
  auto fail = [&](const char* code, const std::string& msg) {
    diags.error(code, loc, "placement metadata: " + msg);
  };

  if (pl.mis.empty() || pl.sigma.size() != pl.mis.size()) {
    fail(kStructure, "schedule and MI list sizes disagree");
    return false;
  }
  if (pl.ii < 1 || pl.unroll < 1 || pl.stages < 1 || pl.step == 0) {
    fail(kStructure, "II, unroll, stage count, and step must be positive");
    return false;
  }
  if (pl.lower == nullptr || pl.upper == nullptr) {
    fail(kStructure, "loop bounds are missing");
    return false;
  }
  if (pl.cmp != ast::BinaryOp::Lt && pl.cmp != ast::BinaryOp::Le &&
      pl.cmp != ast::BinaryOp::Gt && pl.cmp != ast::BinaryOp::Ge) {
    fail(kStructure, "loop comparison is not a canonical inequality");
    return false;
  }
  std::int64_t max_stage = 0;
  for (std::size_t k = 0; k < pl.sigma.size(); ++k) {
    if (pl.sigma[k] < 0) {
      fail(kStructure, "negative schedule slot for " + mi_name(int(k)));
      return false;
    }
    max_stage = std::max(max_stage, pl.sigma[k] / pl.ii);
  }
  if (max_stage + 1 != pl.stages) {
    fail(kStructure, "recorded stage count disagrees with the schedule");
    return false;
  }

  if (pl.used_trip_guard) {
    if (pl.bounds_are_constant() || pl.unroll != 1 || !pl.renames.empty() ||
        pl.guarded_fallback == nullptr) {
      fail(kStructure,
           "guarded symbolic emission requires symbolic bounds, no "
           "unrolling, no renaming, and a recorded fallback loop");
      return false;
    }
  } else {
    if (!pl.bounds_are_constant()) {
      fail(kStructure, "unguarded emission requires constant bounds");
      return false;
    }
    if (pl.trip_count() - (pl.stages - 1) < pl.unroll) {
      fail(kIterCoverage,
           "trip count is too short for the recorded stage count and "
           "unroll factor — the pipeline should have been rejected");
      return false;
    }
  }

  std::set<std::string> rename_names;
  for (const RenamedScalar& r : pl.renames) {
    if (!rename_names.insert(r.name).second)
      fail(kRenameUndef, "scalar '" + r.name + "' is renamed twice");
    if (r.mode == RenameMode::MveCopies) {
      if (pl.unroll < 2) {
        fail(kRenameUndef, "MVE rename of '" + r.name +
                               "' without kernel unrolling never applies");
        continue;
      }
      if (r.copy_names.size() != std::size_t(pl.unroll)) {
        fail(kRenameUndef,
             "MVE rename of '" + r.name + "' records " +
                 std::to_string(r.copy_names.size()) + " copies for " +
                 std::to_string(pl.unroll) + " unrolled iterations");
        continue;
      }
      std::set<std::string> copies;
      for (const std::string& c : r.copy_names)
        if (c == r.name || !copies.insert(c).second)
          fail(kRenameUndef, "MVE copies of '" + r.name +
                                 "' are not pairwise-distinct fresh names");
    } else if (r.array_name.empty()) {
      fail(kRenameUndef,
           "scalar expansion of '" + r.name + "' records no array");
    }
  }

  std::set<std::string> to_check(pl.planned.begin(), pl.planned.end());
  to_check.insert(rename_names.begin(), rename_names.end());
  for (const std::string& name : to_check) {
    std::string why;
    if (!scalar_renameable(pl, name, &why))
      fail(kRenameUndef, "false dependences of scalar '" + name +
                             "' were dropped, but " + why);
  }

  return diags.error_count() == errs0;
}

void check_dependences(const LoopPlacement& pl, DiagnosticEngine& diags) {
  std::vector<const ast::Stmt*> mis;
  mis.reserve(pl.mis.size());
  for (const ast::StmtPtr& m : pl.mis) mis.push_back(m.get());
  analysis::Ddg full = analysis::build_ddg(mis, pl.iv, pl.step);

  const std::set<std::string> planned(pl.planned.begin(), pl.planned.end());
  std::map<std::string, const RenamedScalar*> renamed;
  for (const RenamedScalar& r : pl.renames) renamed.emplace(r.name, &r);

  // Unknown ("*") distances: per the DepEdge::min_distance() contract the
  // solver refuses every II when one is present, so a produced schedule
  // resting on one is a driver bug — there is nothing to verify against.
  for (const DepEdge& e : full.edges) {
    for (const analysis::DepDist& d : e.distances) {
      if (d.known) continue;
      std::ostringstream msg;
      msg << to_string(e.kind) << " dependence on '" << e.var << "' ("
          << mi_name(e.src) << " -> " << mi_name(e.dst)
          << ") has unknown distance '*'; pipelining this loop cannot be "
             "justified and should have been refused";
      diags.error(kDepUnknown, pl.mis[std::size_t(e.src)]->loc, msg.str());
    }
  }

  // Split the graph the way the driver did before solving: anti/output
  // edges through planned scalars were dropped on the promise of
  // renaming. Delays are recomputed on the kept (spec) graph — the
  // forward-delay rule depends on the graph shape, so using the full
  // graph would check against constraints the solver never saw.
  analysis::Ddg spec;
  spec.num_nodes = full.num_nodes;
  std::vector<const DepEdge*> dropped;
  for (const DepEdge& e : full.edges) {
    if (e.kind != DepKind::Flow && planned.count(e.var) != 0)
      dropped.push_back(&e);
    else
      spec.edges.push_back(e);
  }

  const std::vector<std::int64_t> delays = slms::compute_delays(spec);
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    const DepEdge& e = spec.edges[i];
    auto sig = [&](int k) { return pl.sigma[std::size_t(k)]; };
    for (const analysis::DepDist& d : e.distances) {
      if (!d.known) continue;
      std::int64_t lhs = sig(e.dst) - sig(e.src) + pl.ii * d.distance;
      if (lhs >= delays[i]) continue;
      std::ostringstream msg;
      msg << "schedule violates the " << to_string(e.kind)
          << " dependence on '" << e.var << "' (" << mi_name(e.src) << " -> "
          << mi_name(e.dst) << ", distance " << d.distance << "): sigma("
          << mi_name(e.dst) << ") - sigma(" << mi_name(e.src) << ") + II*"
          << d.distance << " = " << lhs << " < delay " << delays[i];
      diags.error(kDepViolation, pl.mis[std::size_t(e.src)]->loc, msg.str());
    }
  }

  // Dropped edges: justified only by the rename that was promised.
  for (const DepEdge* e : dropped) {
    auto it = renamed.find(e->var);
    const RenamedScalar* r = it == renamed.end() ? nullptr : it->second;
    if (r != nullptr && r->mode == RenameMode::Expand) continue;  // per-
    // iteration array slots: the false dependence is gone entirely.
    if (r != nullptr && (pl.unroll < 2 ||
                         r->copy_names.size() != std::size_t(pl.unroll)))
      continue;  // malformed rename table — already reported by
                 // check_metadata; the margin math below would be noise.
    for (const analysis::DepDist& d : e->distances) {
      if (!d.known || d.distance < 0) continue;
      // Effective distance after renaming: with u round-robin MVE copies
      // the def clobbers a given copy every u iterations, so a carried
      // false dependence moves out to distance u; a same-iteration one
      // stays. An unrenamed planned scalar keeps its original distance.
      std::int64_t eff = r == nullptr ? d.distance
                         : d.distance == 0 ? 0
                                           : std::int64_t(pl.unroll);
      std::int64_t margin =
          pl.ii * eff + pl.sigma[std::size_t(e->dst)] -
          pl.sigma[std::size_t(e->src)];
      // margin > 0: the clobber lands in a strictly later slot. margin ==
      // 0 with eff > 0: same slot, later iteration — the emitter orders
      // equal-slot rows by ascending iteration (check_coverage enforces
      // slms-emit-order), so the read still wins. margin == 0 with eff ==
      // 0 is same slot, same iteration: safe only in source order.
      bool safe = margin > 0 || (margin == 0 && (eff > 0 || e->src < e->dst));
      if (safe) continue;
      std::ostringstream msg;
      if (r == nullptr) {
        msg << "dropped " << to_string(e->kind) << " dependence on scalar '"
            << e->var << "' (" << mi_name(e->src) << " -> " << mi_name(e->dst)
            << ", distance " << d.distance
            << ") is not neutralized: the scalar was planned for renaming "
               "but left unrenamed, and the schedule reorders the accesses";
        diags.error(kDepViolation, pl.mis[std::size_t(e->src)]->loc,
                    msg.str());
      } else {
        msg << "MVE copies of '" << e->var << "' are clobbered too early ("
            << mi_name(e->src) << " -> " << mi_name(e->dst)
            << "): the write " << pl.unroll
            << " iterations later lands " << -margin
            << " slot(s) before the last read of the copy — more copies "
               "(a larger unroll) are needed for this schedule";
        diags.error(kRenameClobber, pl.mis[std::size_t(e->src)]->loc,
                    msg.str());
      }
    }
  }
}

bool verify_schedule(const LoopPlacement& pl, int ii,
                     const std::vector<std::int64_t>& sigma,
                     DiagnosticEngine& diags) {
  const std::size_t errs0 = diags.error_count();
  const SourceLoc loc = pl.mis.empty() ? SourceLoc{} : pl.mis.front()->loc;
  if (ii < 1 || sigma.size() != pl.mis.size()) {
    diags.error(kStructure, loc,
                "schedule to verify does not match the placement (II " +
                    std::to_string(ii) + ", " +
                    std::to_string(sigma.size()) + " slots for " +
                    std::to_string(pl.mis.size()) + " MIs)");
    return false;
  }
  for (std::size_t k = 0; k < sigma.size(); ++k) {
    if (sigma[k] >= 0) continue;
    diags.error(kStructure, loc,
                "negative schedule slot for " + mi_name(int(k)));
    return false;
  }

  std::vector<const ast::Stmt*> mis;
  mis.reserve(pl.mis.size());
  for (const ast::StmtPtr& m : pl.mis) mis.push_back(m.get());
  analysis::Ddg full = analysis::build_ddg(mis, pl.iv, pl.step);

  // Same split as check_dependences: the schedule under test was solved
  // against the relaxed graph, and it is never emitted, so the dropped
  // edges' rename-margin obligations do not apply to it.
  const std::set<std::string> planned(pl.planned.begin(), pl.planned.end());
  analysis::Ddg spec;
  spec.num_nodes = full.num_nodes;
  for (const DepEdge& e : full.edges) {
    if (e.kind != DepKind::Flow && planned.count(e.var) != 0) continue;
    spec.edges.push_back(e);
  }

  const std::vector<std::int64_t> delays = slms::compute_delays(spec);
  for (std::size_t i = 0; i < spec.edges.size(); ++i) {
    const DepEdge& e = spec.edges[i];
    for (const analysis::DepDist& d : e.distances) {
      if (!d.known) {
        diags.error(kDepUnknown, pl.mis[std::size_t(e.src)]->loc,
                    "dependence on '" + e.var +
                        "' has unknown distance '*'; no schedule over this "
                        "graph can be justified");
        continue;
      }
      std::int64_t lhs = sigma[std::size_t(e.dst)] -
                         sigma[std::size_t(e.src)] + ii * d.distance;
      if (lhs >= delays[i]) continue;
      std::ostringstream msg;
      msg << "schedule violates the " << to_string(e.kind)
          << " dependence on '" << e.var << "' (" << mi_name(e.src) << " -> "
          << mi_name(e.dst) << ", distance " << d.distance << "): sigma("
          << mi_name(e.dst) << ") - sigma(" << mi_name(e.src) << ") + II*"
          << d.distance << " = " << lhs << " < delay " << delays[i];
      diags.error(kDepViolation, pl.mis[std::size_t(e.src)]->loc, msg.str());
    }
  }
  return diags.error_count() == errs0;
}

}  // namespace slc::verify
