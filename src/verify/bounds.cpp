// Whole-program static array-bounds check (slms-oob).
//
// Intentionally a *prover*, not a heuristic: a subscript is flagged only
// when its value range, computed by interval arithmetic over constant
// subscript terms and constant-bound canonical loop counters, provably
// escapes the array's declared extent. Anything symbolic, non-linear, or
// depending on a variable whose range is unknown is silently accepted —
// zero false positives on legal code is part of the contract (the golden
// suite and the fuzzer's static/runtime agreement gate both rely on it).
//
// The classic catch: a pipelined prologue instance of `A[i-k]` whose
// substituted constant folds to a negative subscript.
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/linear_form.hpp"
#include "ast/ast.hpp"
#include "verify/verify.hpp"

namespace slc::verify {

using namespace ast;
using analysis::LinearForm;

namespace {

struct Range {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // inclusive
};

struct Extent {
  std::vector<std::int64_t> dims;
};

class BoundsChecker {
 public:
  explicit BoundsChecker(DiagnosticEngine& diags) : diags_(diags) {}

  void run(const Program& program) {
    for (const StmtPtr& s : program.stmts) visit(*s, /*guarded=*/false);
  }

 private:
  /// Canonical constant-bound counter loop whose body never rewrites the
  /// counter: gives the counter a provable range. Returns the iv name.
  std::optional<std::pair<std::string, Range>> loop_range(const ForStmt& f) {
    std::string iv;
    std::int64_t lo = 0;
    if (const auto* a = dyn_cast<AssignStmt>(f.init.get())) {
      const auto* v = dyn_cast<VarRef>(a->lhs.get());
      const auto* l = dyn_cast<IntLit>(a->rhs.get());
      if (v == nullptr || l == nullptr || a->op != AssignOp::Set ||
          a->guard != nullptr)
        return std::nullopt;
      iv = v->name;
      lo = l->value;
    } else if (const auto* d = dyn_cast<DeclStmt>(f.init.get())) {
      const auto* l =
          d->init != nullptr ? dyn_cast<IntLit>(d->init.get()) : nullptr;
      if (l == nullptr || d->is_array()) return std::nullopt;
      iv = d->name;
      lo = l->value;
    } else {
      return std::nullopt;
    }

    const auto* c = dyn_cast<Binary>(f.cond.get());
    const auto* cv = c != nullptr ? dyn_cast<VarRef>(c->lhs.get()) : nullptr;
    const auto* cl = c != nullptr ? dyn_cast<IntLit>(c->rhs.get()) : nullptr;
    if (cv == nullptr || cl == nullptr || cv->name != iv) return std::nullopt;

    const auto* st = dyn_cast<AssignStmt>(f.step.get());
    const auto* sv = st != nullptr ? dyn_cast<VarRef>(st->lhs.get()) : nullptr;
    const auto* sl = st != nullptr ? dyn_cast<IntLit>(st->rhs.get()) : nullptr;
    if (sv == nullptr || sl == nullptr || sv->name != iv ||
        st->guard != nullptr)
      return std::nullopt;
    std::int64_t step = 0;
    if (st->op == AssignOp::Add)
      step = sl->value;
    else if (st->op == AssignOp::Sub)
      step = -sl->value;
    if (step == 0) return std::nullopt;

    std::int64_t bound = cl->value;
    std::int64_t first = lo;
    std::int64_t count = 0;  // trip count
    switch (c->op) {
      case BinaryOp::Lt:
        if (step <= 0) return std::nullopt;
        count = bound - first;
        break;
      case BinaryOp::Le:
        if (step <= 0) return std::nullopt;
        count = bound - first + 1;
        break;
      case BinaryOp::Gt:
        if (step >= 0) return std::nullopt;
        count = first - bound;
        break;
      case BinaryOp::Ge:
        if (step >= 0) return std::nullopt;
        count = first - bound + 1;
        break;
      default:
        return std::nullopt;
    }
    if (count <= 0) return std::nullopt;  // zero-trip: body never runs
    std::int64_t abs_step = step > 0 ? step : -step;
    std::int64_t trips = (count + abs_step - 1) / abs_step;
    std::int64_t last = first + (trips - 1) * step;

    // The range is only valid if the body never rewrites the counter and
    // cannot leave the loop mid-range via break (the counter still stays
    // within [first, last] — break only shrinks the set of iterations, so
    // subscript ranges remain valid; a rewrite of iv does not).
    if (writes_var(*f.body, iv)) return std::nullopt;
    Range r{std::min(first, last), std::max(first, last)};
    return std::make_pair(iv, r);
  }

  /// True when `s` contains a break that exits *this* loop level (does
  /// not descend into nested loops, whose breaks are theirs).
  static bool has_toplevel_break(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Break:
        return true;
      case StmtKind::Block:
        for (const StmtPtr& c : static_cast<const BlockStmt&>(s).stmts)
          if (has_toplevel_break(*c)) return true;
        return false;
      case StmtKind::Parallel:
        for (const StmtPtr& c : static_cast<const ParallelStmt&>(s).stmts)
          if (has_toplevel_break(*c)) return true;
        return false;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        if (has_toplevel_break(*i.then_stmt)) return true;
        return i.else_stmt != nullptr && has_toplevel_break(*i.else_stmt);
      }
      default:
        return false;  // For/While own their breaks
    }
  }

  static bool writes_var(const Stmt& s, const std::string& name) {
    bool writes = false;
    std::function<void(const Stmt&)> go = [&](const Stmt& st) {
      switch (st.kind()) {
        case StmtKind::Assign: {
          const auto& a = static_cast<const AssignStmt&>(st);
          if (const auto* v = dyn_cast<VarRef>(a.lhs.get());
              v != nullptr && v->name == name)
            writes = true;
          break;
        }
        case StmtKind::Decl: {
          const auto& d = static_cast<const DeclStmt&>(st);
          if (d.name == name) writes = true;
          break;
        }
        case StmtKind::Block:
          for (const StmtPtr& c : static_cast<const BlockStmt&>(st).stmts)
            go(*c);
          break;
        case StmtKind::Parallel:
          for (const StmtPtr& c : static_cast<const ParallelStmt&>(st).stmts)
            go(*c);
          break;
        case StmtKind::If: {
          const auto& i = static_cast<const IfStmt&>(st);
          go(*i.then_stmt);
          if (i.else_stmt != nullptr) go(*i.else_stmt);
          break;
        }
        case StmtKind::For: {
          const auto& f = static_cast<const ForStmt&>(st);
          if (f.init != nullptr) go(*f.init);
          if (f.step != nullptr) go(*f.step);
          go(*f.body);
          break;
        }
        case StmtKind::While:
          go(*static_cast<const WhileStmt&>(st).body);
          break;
        default:
          break;
      }
    };
    go(s);
    return writes;
  }

  void visit(const Stmt& s, bool guarded) {
    switch (s.kind()) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.is_array()) extents_[d.name] = Extent{d.dims};
        if (d.init != nullptr) check_expr(*d.init, guarded);
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        bool g = guarded || a.guard != nullptr;
        if (a.guard != nullptr) check_expr(*a.guard, guarded);
        check_expr(*a.lhs, g);
        check_expr(*a.rhs, g);
        break;
      }
      case StmtKind::ExprStmt: {
        const auto& e = static_cast<const ExprStmt&>(s);
        bool g = guarded || e.guard != nullptr;
        if (e.guard != nullptr) check_expr(*e.guard, guarded);
        check_expr(*e.expr, g);
        break;
      }
      case StmtKind::Block:
        for (const StmtPtr& c : static_cast<const BlockStmt&>(s).stmts)
          visit(*c, guarded);
        break;
      case StmtKind::Parallel:
        for (const StmtPtr& c : static_cast<const ParallelStmt&>(s).stmts)
          visit(*c, guarded);
        break;
      case StmtKind::If: {
        const auto& i = static_cast<const IfStmt&>(s);
        check_expr(*i.cond, guarded);
        visit(*i.then_stmt, /*guarded=*/true);
        if (i.else_stmt != nullptr) visit(*i.else_stmt, /*guarded=*/true);
        break;
      }
      case StmtKind::While: {
        const auto& w = static_cast<const WhileStmt&>(s);
        check_expr(*w.cond, guarded);
        visit(*w.body, /*guarded=*/true);
        break;
      }
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.init != nullptr) visit(*f.init, guarded);
        if (f.cond != nullptr) check_expr(*f.cond, guarded);
        auto rng = loop_range(f);
        // A provable counter range makes body subscripts checkable at
        // the loop's own guardedness; otherwise the body might never run
        // (symbolic/zero-trip bound), so violations inside only warn. A
        // break can end the loop before a violating iteration, so it
        // demotes too — the counter range itself stays valid.
        bool body_guarded =
            guarded || !rng.has_value() || has_toplevel_break(*f.body);
        std::optional<Range> saved;
        bool had = false;
        if (rng) {
          auto it = ranges_.find(rng->first);
          if (it != ranges_.end()) {
            saved = it->second;
            had = true;
          }
          ranges_[rng->first] = rng->second;
        }
        visit(*f.body, body_guarded);
        if (rng) {
          if (had)
            ranges_[rng->first] = *saved;
          else
            ranges_.erase(rng->first);
        }
        if (f.step != nullptr) visit(*f.step, body_guarded);
        break;
      }
      default:
        break;
    }
  }

  void check_expr(const Expr& e, bool guarded) {
    switch (e.kind()) {
      case ExprKind::ArrayRef: {
        const auto& a = static_cast<const ArrayRef&>(e);
        check_array_ref(a, guarded);
        for (const ExprPtr& sub : a.subscripts) check_expr(*sub, guarded);
        break;
      }
      case ExprKind::Binary: {
        const auto& b = static_cast<const Binary&>(e);
        check_expr(*b.lhs, guarded);
        check_expr(*b.rhs, guarded);
        break;
      }
      case ExprKind::Unary:
        check_expr(*static_cast<const Unary&>(e).operand, guarded);
        break;
      case ExprKind::Call:
        for (const ExprPtr& arg : static_cast<const Call&>(e).args)
          check_expr(*arg, guarded);
        break;
      case ExprKind::Conditional: {
        const auto& c = static_cast<const Conditional&>(e);
        check_expr(*c.cond, guarded);
        check_expr(*c.then_expr, /*guarded=*/true);
        check_expr(*c.else_expr, /*guarded=*/true);
        break;
      }
      default:
        break;
    }
  }

  void check_array_ref(const ArrayRef& a, bool guarded) {
    auto it = extents_.find(a.name);
    if (it == extents_.end()) return;  // extern/unknown array
    const Extent& ext = it->second;
    if (ext.dims.size() != a.subscripts.size()) return;  // sema's problem
    for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
      LinearForm f = analysis::linearize(*a.subscripts[d]);
      if (!f.exact) continue;
      std::int64_t lo = f.constant;
      std::int64_t hi = f.constant;
      bool provable = true;
      for (const auto& [var, coeff] : f.coeffs) {
        if (coeff == 0) continue;
        auto r = ranges_.find(var);
        if (r == ranges_.end()) {
          provable = false;
          break;
        }
        if (coeff > 0) {
          lo += coeff * r->second.lo;
          hi += coeff * r->second.hi;
        } else {
          lo += coeff * r->second.hi;
          hi += coeff * r->second.lo;
        }
      }
      if (!provable) continue;
      if (lo >= 0 && hi < ext.dims[d]) continue;
      std::ostringstream msg;
      msg << "subscript " << d + 1 << " of '" << a.name << "' provably ";
      if (lo < 0 && hi == lo)
        msg << "evaluates to " << lo;
      else if (lo == hi)
        msg << "evaluates to " << lo;
      else
        msg << "spans [" << lo << ", " << hi << "]";
      msg << ", outside the declared extent [0, " << ext.dims[d] << ")";
      if (guarded) {
        diags_.warning(kOob, a.loc,
                       msg.str() + " (in conditionally-executed code)");
      } else {
        diags_.error(kOob, a.loc, msg.str());
      }
    }
  }

  DiagnosticEngine& diags_;
  std::map<std::string, Extent> extents_;
  std::map<std::string, Range> ranges_;
};

}  // namespace

void check_bounds(const Program& program, DiagnosticEngine& diags) {
  BoundsChecker(diags).run(program);
}

}  // namespace slc::verify
