// Static SLMS legality verifier.
//
// Given the placement metadata a transform_loop run exported (the loop
// parameters, MI list, modulo schedule, and rename tables — see
// slms/placement.hpp) and the replacement AST it spliced in, this module
// proves, without executing anything, that the pipelined code is a legal
// reordering of the original loop:
//
//   1. Dependence preservation — the DDG of the original body is rebuilt
//      and every flow/anti/output edge is checked against the modulo-
//      scheduling inequality sigma(dst) - sigma(src) + II*d >= delay.
//      Edges the driver dropped on the promise of renaming are
//      re-justified from the rename tables instead of trusted.
//   2. Iteration-space coverage — prologue instances, kernel rounds, and
//      epilogue instances must execute every MI exactly once per source
//      iteration in [lo, hi), in an order consistent with the schedule.
//   3. Renaming soundness — MVE copy selection must follow iteration
//      parity, live-out fixups must restore the copy the last iteration
//      wrote, and renamed scalars must actually be renameable.
//   4. Static bounds — subscripts whose value is provable (shifted
//      prologue constants, constant-bound loop ranges) must stay inside
//      the declared array extents.
//
// Violations are reported through the DiagnosticEngine with the stable
// codes below; `slc --lint` and the driver's verify stage surface them.
#pragma once

#include "ast/ast.hpp"
#include "slms/slms.hpp"
#include "support/diagnostics.hpp"

namespace slc::verify {

// Stable diagnostic codes (documented in DESIGN.md §10; CI greps them).
inline constexpr const char* kDepViolation = "slms-dep-violation";
inline constexpr const char* kDepUnknown = "slms-dep-unknown";
inline constexpr const char* kIterCoverage = "slms-iter-coverage";
inline constexpr const char* kRenameUndef = "slms-rename-undef";
inline constexpr const char* kRenameClobber = "slms-rename-clobber";
inline constexpr const char* kEmitOrder = "slms-emit-order";
inline constexpr const char* kStructure = "slms-structure";
inline constexpr const char* kOob = "slms-oob";

struct VerifyOptions {
  /// Also run the whole-program static bounds check (slms-oob).
  bool check_bounds = true;
};

/// Checks one applied loop: placement metadata sanity, dependence
/// preservation, iteration-space coverage, renaming soundness, and
/// emission order. Appends diagnostics; returns true when no *error*
/// was added (notes/warnings do not fail verification).
bool verify_loop(const slms::LoopPlacement& placement,
                 const ast::BlockStmt& replacement,
                 DiagnosticEngine& diags);

/// Verifies every applied loop recorded by apply_slms against the
/// transformed program, then (optionally) bounds-checks the whole
/// program. Returns true when no error was added.
bool verify_transformed(const ast::Program& transformed,
                        const std::vector<slms::SlmsApplication>& applications,
                        DiagnosticEngine& diags,
                        const VerifyOptions& options = {});

/// Re-checks an arbitrary modulo schedule (`ii`, `sigma`) against the
/// placement's dependence graph, split exactly as the driver split it
/// before solving (anti/output edges of planned scalars dropped, delays
/// recomputed on the kept graph). This is how the exact scheduler's
/// certificates are validated independently of src/exact: the schedule
/// is never emitted, so only the relaxation constraints apply. Returns
/// true when no error was added.
bool verify_schedule(const slms::LoopPlacement& placement, int ii,
                     const std::vector<std::int64_t>& sigma,
                     DiagnosticEngine& diags);

/// Whole-program static array-bounds check. Flags subscripts that
/// *provably* leave their array's declared extent (slms-oob): constant
/// subscripts, and affine subscripts of constant-bound canonical loop
/// counters, evaluated by interval arithmetic. Provable violations in
/// conditionally-executed contexts are reported as warnings (the guard
/// may never let them run); unconditional ones are errors. Never flags
/// anything it cannot prove, so clean code stays clean.
void check_bounds(const ast::Program& program,
                  DiagnosticEngine& diags);

}  // namespace slc::verify
