#include "verify/verify.hpp"

#include "verify/internal.hpp"

namespace slc::verify {

bool verify_loop(const slms::LoopPlacement& placement,
                 const ast::BlockStmt& replacement,
                 DiagnosticEngine& diags) {
  const std::size_t errs0 = diags.error_count();
  if (check_metadata(placement, diags)) {
    check_dependences(placement, diags);
    check_coverage(placement, replacement, diags);
  }
  return diags.error_count() == errs0;
}

bool verify_transformed(const ast::Program& transformed,
                        const std::vector<slms::SlmsApplication>& applications,
                        DiagnosticEngine& diags,
                        const VerifyOptions& options) {
  const std::size_t errs0 = diags.error_count();
  for (const slms::SlmsApplication& app : applications) {
    if (!app.applied()) continue;
    if (app.replacement == nullptr) {
      diags.error(kStructure, {},
                  "applied loop recorded no replacement block to verify");
      continue;
    }
    verify_loop(*app.placement, *app.replacement, diags);
  }
  if (options.check_bounds) check_bounds(transformed, diags);
  return diags.error_count() == errs0;
}

}  // namespace slc::verify
