// Structure, iteration-space coverage, renaming of emitted instances,
// and emission order.
//
// Strategy: rather than decoding the emitted AST back into a schedule,
// we enumerate the *slots* a correct pipeline must fill — prologue
// {(k, t) : t < offset(k)}, kernel {(k, d) : d in [offset(k),
// offset(k)+unroll)} per round, epilogue {(k, t) : kernel end <= t < n}
// — build the reference statement for each slot from the metadata
// (InstanceBuilder), and let every emitted statement claim the slot it
// equals. A dropped slot, a double claim, a claim outside the section's
// range, a statement matching no slot, or claims in non-schedule order
// each map to a stable diagnostic. Statements that are identical for
// every iteration (no loop-variable use, same MVE parity) are
// interchangeable, so greedy earliest-slot claiming is exact.
#include <algorithm>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "support/int_math.hpp"
#include "verify/internal.hpp"
#include "verify/verify.hpp"

namespace slc::verify {

using namespace ast;
using slms::LoopPlacement;
using slms::RenamedScalar;
using slms::RenameMode;

namespace {

std::string mi_name(int k) { return "MI " + std::to_string(k + 1); }

/// Statements of a region in execution order, parallel rows flattened
/// (a ParallelStmt executes its members sequentially).
std::vector<const Stmt*> flatten(const std::vector<StmtPtr>& stmts,
                                 std::size_t begin, std::size_t end) {
  std::vector<const Stmt*> out;
  for (std::size_t i = begin; i < end; ++i) {
    if (const auto* par = dyn_cast<ParallelStmt>(stmts[i].get())) {
      for (const StmtPtr& m : par->stmts) out.push_back(m.get());
    } else {
      out.push_back(stmts[i].get());
    }
  }
  return out;
}

/// Slot-claiming matcher for one section (prologue, kernel body, or
/// epilogue). `expected(k, t)` is the reference statement of slot
/// (k, t); t is an absolute iteration for straight-line sections and a
/// round-relative offset inside the kernel. Matching is attempted over
/// the window [win_lo, win_hi) so off-by-one bugs are *recognized* (and
/// reported as out-of-range claims) instead of degrading into an
/// unhelpful "unrecognized statement".
class SectionMatcher {
 public:
  using ExpectedFn = std::function<const Stmt*(int, std::int64_t)>;

  SectionMatcher(const LoopPlacement& pl, DiagnosticEngine& diags,
                 std::string section, ExpectedFn expected,
                 std::int64_t win_lo, std::int64_t win_hi)
      : pl_(pl),
        diags_(diags),
        section_(std::move(section)),
        expected_(std::move(expected)),
        win_lo_(win_lo),
        win_hi_(win_hi),
        lo_(pl.mis.size(), 0),
        hi_(pl.mis.size(), 0) {}

  void set_interval(int k, std::int64_t lo, std::int64_t hi) {
    hi = std::max(lo, hi);
    // Guard against a corrupt kernel bound claiming the epilogue must
    // re-run most of the loop: report the hole without enumerating it.
    if (hi - lo > 4096) {
      std::ostringstream msg;
      msg << section_ << " would have to execute " << (hi - lo)
          << " iterations of " << mi_name(k)
          << " — the kernel bound cannot be right";
      diags_.error(kIterCoverage, pl_.mis[std::size_t(k)]->loc, msg.str());
      hi = lo;
    }
    lo_[std::size_t(k)] = lo;
    hi_[std::size_t(k)] = hi;
  }

  /// Tries to recognize `s` as a pipeline instance; false when it
  /// matches no slot in the window (the caller tries other
  /// interpretations — fixups, wrong-parity instances — before
  /// reporting it unrecognized).
  bool match(const Stmt& s) {
    std::vector<std::pair<int, std::int64_t>> cands;
    for (int k = 0; k < int(pl_.mis.size()); ++k)
      for (std::int64_t t = win_lo_; t < win_hi_; ++t) {
        const Stmt* e = expected_(k, t);
        if (e != nullptr && equal(s, *e)) cands.emplace_back(k, t);
      }
    if (cands.empty()) return false;

    const std::pair<int, std::int64_t>* best = nullptr;
    std::tuple<std::int64_t, std::int64_t, int> best_key{};
    for (const auto& c : cands) {
      if (!in_interval(c) || claimed_.count(c) != 0) continue;
      auto key = std::make_tuple(g_of(c), c.second, c.first);
      if (best == nullptr || key < best_key) {
        best = &c;
        best_key = key;
      }
    }
    if (best != nullptr) {
      claimed_.insert(*best);
      order_.emplace_back(g_of(*best), best->second, best->first);
      return true;
    }

    // Recognized, but every matching slot is taken or out of range.
    const auto& c = *std::min_element(
        cands.begin(), cands.end(), [&](const auto& a, const auto& b) {
          return std::make_tuple(g_of(a), a.second, a.first) <
                 std::make_tuple(g_of(b), b.second, b.first);
        });
    std::ostringstream msg;
    if (in_interval(c)) {
      msg << section_ << " executes " << mi_name(c.first) << " for "
          << unit_ << " " << c.second << " more than once";
    } else {
      msg << section_ << " executes " << mi_name(c.first) << " for "
          << unit_ << " " << c.second << ", outside its range ["
          << lo_[std::size_t(c.first)] << ", " << hi_[std::size_t(c.first)]
          << ")";
    }
    diags_.error(kIterCoverage, s.loc, msg.str());
    return true;
  }

  /// Missing-slot accounting and the emission-order check.
  void finish() {
    for (int k = 0; k < int(pl_.mis.size()); ++k) {
      std::vector<std::int64_t> missing;
      for (std::int64_t t = lo_[std::size_t(k)]; t < hi_[std::size_t(k)]; ++t)
        if (claimed_.count({k, t}) == 0) missing.push_back(t);
      if (missing.empty()) continue;
      std::ostringstream msg;
      msg << section_ << " never executes " << mi_name(k) << " for "
          << unit_;
      if (missing.size() == 1) {
        msg << " " << missing.front();
      } else {
        msg << "s ";
        for (std::size_t i = 0; i < missing.size() && i < 3; ++i)
          msg << (i != 0 ? ", " : "") << missing[i];
        if (missing.size() > 3)
          msg << ", ... (" << missing.size() << " total)";
      }
      diags_.error(kIterCoverage, pl_.mis[std::size_t(k)]->loc, msg.str());
    }
    for (std::size_t i = 1; i < order_.size(); ++i) {
      if (order_[i] >= order_[i - 1]) continue;
      std::ostringstream msg;
      msg << section_ << " emits " << mi_name(std::get<2>(order_[i]))
          << " for " << unit_ << " " << std::get<1>(order_[i])
          << " after later-scheduled work; rows must appear in schedule "
             "order and, within a row, in iteration order";
      diags_.error(kEmitOrder,
                   pl_.mis[std::size_t(std::get<2>(order_[i]))]->loc,
                   msg.str());
      break;
    }
  }

  void set_unit(std::string unit) { unit_ = std::move(unit); }
  void set_window(std::int64_t lo, std::int64_t hi) {
    win_lo_ = lo;
    win_hi_ = hi;
  }

 private:
  [[nodiscard]] bool in_interval(const std::pair<int, std::int64_t>& c) const {
    return c.second >= lo_[std::size_t(c.first)] &&
           c.second < hi_[std::size_t(c.first)];
  }
  [[nodiscard]] std::int64_t g_of(const std::pair<int, std::int64_t>& c) const {
    return pl_.ii * c.second + pl_.sigma[std::size_t(c.first)];
  }

  const LoopPlacement& pl_;
  DiagnosticEngine& diags_;
  std::string section_;
  std::string unit_ = "iteration";
  ExpectedFn expected_;
  std::int64_t win_lo_, win_hi_;
  std::vector<std::int64_t> lo_, hi_;
  std::set<std::pair<int, std::int64_t>> claimed_;
  // (g, t, k) of each claim in emitted order; the schedule requires this
  // to be non-decreasing (ParallelStmt rows run sequentially, so the
  // tie-break order is what the margin-0 dependence argument rests on).
  std::vector<std::tuple<std::int64_t, std::int64_t, int>> order_;
};

/// Wrong-MVE-copy diagnosis: once normal matching failed, retry with
/// every other parity (and with the rename skipped, parity -1). A hit
/// pinpoints an instance reading/writing the wrong round-robin copy.
bool diagnose_parity(
    const LoopPlacement& pl, InstanceBuilder& inst, const Stmt& s,
    DiagnosticEngine& diags,
    const std::function<const Stmt*(int, std::int64_t, std::int64_t)>&
        expected_parity,
    std::int64_t win_lo, std::int64_t win_hi) {
  if (pl.unroll <= 1 || pl.renames.empty()) return false;
  for (int k = 0; k < int(pl.mis.size()); ++k)
    for (std::int64_t t = win_lo; t < win_hi; ++t)
      for (std::int64_t p = -1; p < std::int64_t(pl.unroll); ++p) {
        if (p == inst.parity_of(t)) continue;
        const Stmt* e = expected_parity(k, t, p);
        if (e == nullptr || !equal(s, *e)) continue;
        std::ostringstream msg;
        msg << "instance of " << mi_name(k) << " for iteration " << t;
        if (p < 0)
          msg << " skips the MVE rename entirely";
        else
          msg << " uses MVE copy " << p << " where copy "
              << inst.parity_of(t) << " is live";
        msg << " — it reads or clobbers the wrong round-robin copy";
        diags.error(kRenameUndef, s.loc, msg.str());
        return true;
      }
  return false;
}

/// Replica of the emitter's trip-count guard condition, built only from
/// the metadata (pipeliner.cpp trip_count_guard — keep in sync).
ExprPtr expected_guard(const LoopPlacement& pl) {
  std::int64_t abs_step = pl.step > 0 ? pl.step : -pl.step;
  ExprPtr span;
  BinaryOp op;
  switch (pl.cmp) {
    case BinaryOp::Lt:
      span = build::sub(pl.upper->clone(), pl.lower->clone());
      op = BinaryOp::Gt;
      break;
    case BinaryOp::Le:
      span = build::sub(pl.upper->clone(), pl.lower->clone());
      op = BinaryOp::Ge;
      break;
    case BinaryOp::Gt:
      span = build::sub(pl.lower->clone(), pl.upper->clone());
      op = BinaryOp::Gt;
      break;
    default:  // Ge
      span = build::sub(pl.lower->clone(), pl.upper->clone());
      op = BinaryOp::Ge;
      break;
  }
  fold(span);
  ExprPtr guard =
      build::bin(op, std::move(span), build::lit((pl.stages - 1) * abs_step));
  fold(guard);
  return guard;
}

/// The live-out fixups a constant-bound pipeline must end with, in
/// claimable form.
struct FixupSet {
  struct Entry {
    StmtPtr want;
    std::string what;      // for the missing-fixup message
    const char* code;      // diagnostic when missing
    bool claimed = false;
  };
  std::vector<Entry> entries;

  bool claim(const Stmt& s) {
    for (Entry& e : entries) {
      if (e.claimed || !equal(s, *e.want)) continue;
      e.claimed = true;
      return true;
    }
    return false;
  }
};

FixupSet expected_fixups(const LoopPlacement& pl, std::int64_t n) {
  FixupSet fx;
  if (pl.bounds_are_constant()) {
    fx.entries.push_back(
        {build::assign(build::var(pl.iv),
                       build::lit(*pl.const_lower + n * pl.step)),
         "exit value of '" + pl.iv + "'", kIterCoverage});
    if (n > 0) {
      for (const RenamedScalar& r : pl.renames) {
        if (r.mode == RenameMode::MveCopies) {
          if (pl.unroll <= 1 ||
              r.copy_names.size() != std::size_t(pl.unroll))
            continue;  // malformed table; reported by check_metadata
          std::size_t last = std::size_t((n - 1) % pl.unroll);
          fx.entries.push_back(
              {build::assign(build::var(r.name),
                             build::var(r.copy_names[last])),
               "live-out value of '" + r.name + "'", kRenameUndef});
        } else {
          std::int64_t last_iv = *pl.const_lower + (n - 1) * pl.step;
          fx.entries.push_back(
              {build::assign(build::var(r.name),
                             build::index(r.array_name,
                                          build::lit(last_iv))),
               "live-out value of '" + r.name + "'", kRenameUndef});
        }
      }
    }
  } else {
    std::int64_t delta = (pl.stages - 1) * pl.step;
    if (delta != 0) {
      fx.entries.push_back(
          {delta > 0 ? build::assign(build::var(pl.iv), build::lit(delta),
                                     AssignOp::Add)
                     : build::assign(build::var(pl.iv), build::lit(-delta),
                                     AssignOp::Sub),
           "exit value of '" + pl.iv + "'", kIterCoverage});
    }
  }
  return fx;
}

/// A tail statement that assigns a renamed scalar from the *wrong* MVE
/// copy or expansion slot — the fixup-specific rename diagnosis.
bool diagnose_wrong_fixup(const LoopPlacement& pl, const Stmt& s,
                          std::int64_t n, FixupSet& fx,
                          DiagnosticEngine& diags) {
  const auto* a = dyn_cast<AssignStmt>(&s);
  if (a == nullptr || a->op != AssignOp::Set || a->guard != nullptr)
    return false;
  const auto* lhs = dyn_cast<VarRef>(a->lhs.get());
  if (lhs == nullptr) return false;
  for (const RenamedScalar& r : pl.renames) {
    if (lhs->name != r.name) continue;
    std::ostringstream msg;
    if (r.mode == RenameMode::MveCopies) {
      const auto* rhs = dyn_cast<VarRef>(a->rhs.get());
      if (rhs == nullptr) continue;
      auto it =
          std::find(r.copy_names.begin(), r.copy_names.end(), rhs->name);
      if (it == r.copy_names.end()) continue;
      std::size_t last = pl.unroll > 1 ? std::size_t((n - 1) % pl.unroll) : 0;
      msg << "live-out fixup restores '" << r.name << "' from copy '"
          << rhs->name << "', but the final iteration wrote copy '"
          << (last < r.copy_names.size() ? r.copy_names[last] : "?") << "'";
    } else {
      const auto* rhs = dyn_cast<ArrayRef>(a->rhs.get());
      if (rhs == nullptr || rhs->name != r.array_name) continue;
      msg << "live-out fixup restores '" << r.name
          << "' from the wrong element of '" << r.array_name << "'";
    }
    diags.error(kRenameUndef, s.loc, msg.str());
    // Consume the expected fixup so a second (missing-fixup) report is
    // not stacked on top of the same bug.
    for (FixupSet::Entry& e : fx.entries)
      if (!e.claimed && e.what.find("'" + r.name + "'") != std::string::npos) {
        e.claimed = true;
        break;
      }
    return true;
  }
  return false;
}

struct KernelHeader {
  const ForStmt* loop = nullptr;
  std::int64_t rounds = 0;  // constant bounds: rounds the emitted bound runs
  bool ok = false;
};

KernelHeader check_kernel_header(const LoopPlacement& pl, const ForStmt& f,
                                 DiagnosticEngine& diags) {
  KernelHeader h;
  h.loop = &f;

  const auto* init = dyn_cast<AssignStmt>(f.init.get());
  const auto* init_lhs =
      init != nullptr ? dyn_cast<VarRef>(init->lhs.get()) : nullptr;
  if (init == nullptr || init_lhs == nullptr || init_lhs->name != pl.iv ||
      init->op != AssignOp::Set || init->guard != nullptr ||
      init->rhs == nullptr || !equal(*init->rhs, *pl.lower)) {
    diags.error(kStructure, f.loc,
                "kernel loop does not start '" + pl.iv +
                    "' at the loop lower bound");
    return h;
  }

  std::int64_t stride = 0;
  const auto* st = dyn_cast<AssignStmt>(f.step.get());
  const auto* st_lhs = st != nullptr ? dyn_cast<VarRef>(st->lhs.get()) : nullptr;
  const auto* st_rhs = st != nullptr ? dyn_cast<IntLit>(st->rhs.get()) : nullptr;
  if (st != nullptr && st_lhs != nullptr && st_lhs->name == pl.iv &&
      st_rhs != nullptr && st->guard == nullptr &&
      (st->op == AssignOp::Add || st->op == AssignOp::Sub)) {
    stride = st->op == AssignOp::Add ? st_rhs->value : -st_rhs->value;
  } else {
    diags.error(kStructure, f.loc,
                "kernel loop step is not a constant advance of '" + pl.iv +
                    "'");
    return h;
  }
  if (stride != std::int64_t(pl.unroll) * pl.step) {
    std::ostringstream msg;
    msg << "kernel advances '" << pl.iv << "' by " << stride
        << " per round, but " << pl.unroll << " unrolled iteration(s) of step "
        << pl.step << " require " << std::int64_t(pl.unroll) * pl.step;
    diags.error(kStructure, f.loc, msg.str());
    return h;
  }

  if (pl.bounds_are_constant()) {
    const auto* c = dyn_cast<Binary>(f.cond.get());
    const auto* c_lhs = c != nullptr ? dyn_cast<VarRef>(c->lhs.get()) : nullptr;
    const auto* c_rhs = c != nullptr ? dyn_cast<IntLit>(c->rhs.get()) : nullptr;
    const BinaryOp want = pl.step > 0 ? BinaryOp::Lt : BinaryOp::Gt;
    if (c == nullptr || c->op != want || c_lhs == nullptr ||
        c_lhs->name != pl.iv || c_rhs == nullptr) {
      diags.error(kStructure, f.loc,
                  "kernel bound is not a constant comparison of '" + pl.iv +
                      "'");
      return h;
    }
    std::int64_t span = pl.step > 0 ? c_rhs->value - *pl.const_lower
                                    : *pl.const_lower - c_rhs->value;
    std::int64_t abs_stride = stride > 0 ? stride : -stride;
    h.rounds = span <= 0 ? 0 : ceil_div(span, abs_stride);
  } else {
    ExprPtr bound = build::sub(pl.upper->clone(),
                               build::lit((pl.stages - 1) * pl.step));
    fold(bound);
    ExprPtr want = build::bin(pl.cmp, build::var(pl.iv), std::move(bound));
    if (f.cond == nullptr || !equal(*f.cond, *want)) {
      diags.error(kIterCoverage, f.loc,
                  "kernel bound does not stop (stages-1) iterations before "
                  "the loop bound — the epilogue would re-run or miss "
                  "iterations");
      // Structure is otherwise intact; keep checking with the intended
      // shape so the epilogue diagnostics stay meaningful.
    }
  }
  h.ok = true;
  return h;
}

}  // namespace

void check_coverage(const LoopPlacement& pl, const BlockStmt& replacement,
                    DiagnosticEngine& diags) {
  const SourceLoc loc0 =
      pl.mis.empty() ? SourceLoc{} : pl.mis.front()->loc;

  // --- Locate the pipeline region: leading decls, then (symbolic) a
  // single trip-count guard whose then-arm holds the pipeline.
  std::size_t i = 0;
  while (i < replacement.stmts.size() &&
         replacement.stmts[i]->kind() == StmtKind::Decl)
    ++i;
  const std::vector<StmtPtr>* pipe = nullptr;
  if (pl.used_trip_guard) {
    const IfStmt* guard = i < replacement.stmts.size()
                              ? dyn_cast<IfStmt>(replacement.stmts[i].get())
                              : nullptr;
    if (guard == nullptr || i + 1 != replacement.stmts.size()) {
      diags.error(kStructure, loc0,
                  "symbolic-bound pipeline is not wrapped in a single "
                  "trip-count guard");
      return;
    }
    ExprPtr want = expected_guard(pl);
    if (guard->cond == nullptr || !equal(*guard->cond, *want))
      diags.error(kIterCoverage, guard->loc,
                  "trip-count guard does not test for at least (stages-1) "
                  "iterations — short loops would enter the pipeline");
    if (guard->else_stmt == nullptr || pl.guarded_fallback == nullptr ||
        !equal(*guard->else_stmt, *pl.guarded_fallback))
      diags.error(kStructure, guard->loc,
                  "trip-count guard fallback is not the original loop");
    const auto* then_block = dyn_cast<BlockStmt>(guard->then_stmt.get());
    if (then_block == nullptr) {
      diags.error(kStructure, guard->loc,
                  "trip-count guard then-arm is not a block");
      return;
    }
    pipe = &then_block->stmts;
    i = 0;
  } else {
    pipe = &replacement.stmts;
  }

  // --- The unique kernel loop.
  std::size_t kernel_idx = pipe->size();
  for (std::size_t j = i; j < pipe->size(); ++j) {
    if ((*pipe)[j]->kind() != StmtKind::For) continue;
    if (kernel_idx != pipe->size()) {
      diags.error(kStructure, (*pipe)[j]->loc,
                  "pipelined replacement contains more than one loop");
      return;
    }
    kernel_idx = j;
  }
  if (kernel_idx == pipe->size()) {
    diags.error(kStructure, loc0,
                "pipelined replacement contains no kernel loop");
    return;
  }
  const auto* kernel = dyn_cast<ForStmt>((*pipe)[kernel_idx].get());
  KernelHeader header = check_kernel_header(pl, *kernel, diags);
  if (!header.ok) return;

  InstanceBuilder inst(pl);
  const std::int64_t window_pad = pl.stages + pl.unroll + 2;

  // --- Kernel body: slots are round-relative iteration offsets d in
  // [offset(k), offset(k)+unroll); order within the round is row-major
  // by schedule slot g = II*d + sigma (== j-major over the unroll).
  {
    SectionMatcher km(
        pl, diags, "kernel",
        [&](int k, std::int64_t d) { return inst.kernel_delta(k, d); },
        -2, window_pad);
    km.set_unit("iteration offset");
    for (int k = 0; k < int(pl.mis.size()); ++k)
      km.set_interval(k, pl.offset(k), pl.offset(k) + pl.unroll);
    const auto* body = dyn_cast<BlockStmt>(kernel->body.get());
    if (body == nullptr) {
      diags.error(kStructure, kernel->loc, "kernel body is not a block");
      return;
    }
    for (const Stmt* s : flatten(body->stmts, 0, body->stmts.size())) {
      if (km.match(*s)) continue;
      if (diagnose_parity(
              pl, inst, *s, diags,
              [&](int k, std::int64_t d, std::int64_t p) {
                return inst.kernel_delta_parity(k, d, p);
              },
              -2, window_pad))
        continue;
      diags.error(kIterCoverage, s->loc,
                  "unrecognized statement in the kernel body — it is no "
                  "instance of any scheduled MI");
    }
    km.finish();
  }

  const bool constant = pl.bounds_are_constant();
  const std::int64_t n = constant ? pl.trip_count() : 0;

  // --- Prologue: absolute iterations t in [0, offset(k)).
  {
    SectionMatcher pm(
        pl, diags, "prologue",
        [&](int k, std::int64_t t) { return inst.at_iteration(k, t); },
        -window_pad, window_pad);
    for (int k = 0; k < int(pl.mis.size()); ++k)
      pm.set_interval(k, 0, pl.offset(k));
    for (const Stmt* s : flatten(*pipe, i, kernel_idx)) {
      if (pm.match(*s)) continue;
      if (diagnose_parity(
              pl, inst, *s, diags,
              [&](int k, std::int64_t t, std::int64_t p) {
                return inst.at_iteration_parity(k, t, p);
              },
              -window_pad, window_pad))
        continue;
      diags.error(kIterCoverage, s->loc,
                  "unrecognized statement before the kernel — it is no "
                  "prologue instance of any scheduled MI");
    }
    pm.finish();
  }

  // --- Epilogue + fixups after the kernel.
  FixupSet fx = expected_fixups(pl, n);
  std::int64_t win_lo = 0;
  std::int64_t win_hi = 0;
  SectionMatcher em(
      pl, diags, "epilogue",
      constant
          ? SectionMatcher::ExpectedFn(
                [&](int k, std::int64_t t) { return inst.at_iteration(k, t); })
          : SectionMatcher::ExpectedFn([&](int k, std::int64_t t) {
              return inst.epilogue_rel(k, t);
            }),
      0, 0);
  if (constant) {
    std::int64_t min_lo = n;
    for (int k = 0; k < int(pl.mis.size()); ++k) {
      std::int64_t end = pl.offset(k) + pl.unroll * header.rounds;
      if (end > n) {
        std::ostringstream msg;
        msg << "kernel runs " << mi_name(k) << " through iteration "
            << end - 1 << ", past the last loop iteration " << n - 1;
        diags.error(kIterCoverage, pl.mis[std::size_t(k)]->loc, msg.str());
        end = n;
      }
      em.set_interval(k, end, n);
      min_lo = std::min(min_lo, end);
    }
    win_hi = n + window_pad;
    win_lo = std::max(min_lo - window_pad, win_hi - 4096);
  } else {
    // Relative slots t_rel in [offset(k), stages-1) against the kernel
    // exit value of the induction variable.
    for (int k = 0; k < int(pl.mis.size()); ++k)
      em.set_interval(k, pl.offset(k), pl.stages - 1);
    win_lo = -2;
    win_hi = window_pad;
  }
  em.set_window(win_lo, win_hi);

  bool seen_fixup = false;
  for (const Stmt* s : flatten(*pipe, kernel_idx + 1, pipe->size())) {
    if (em.match(*s)) {
      if (seen_fixup)
        diags.error(kEmitOrder, s->loc,
                    "pipeline instance emitted after the live-out fixups");
      continue;
    }
    if (fx.claim(*s)) {
      seen_fixup = true;
      continue;
    }
    if (diagnose_wrong_fixup(pl, *s, n, fx, diags)) {
      seen_fixup = true;
      continue;
    }
    if (diagnose_parity(
            pl, inst, *s, diags,
            [&](int k, std::int64_t t, std::int64_t p) {
              return inst.at_iteration_parity(k, t, p);
            },
            win_lo, win_hi))
      continue;
    diags.error(kIterCoverage, s->loc,
                "unrecognized statement after the kernel — neither an "
                "epilogue instance nor a live-out fixup");
  }
  em.finish();
  for (const FixupSet::Entry& e : fx.entries) {
    if (e.claimed) continue;
    diags.error(e.code, loc0,
                "pipeline never restores the " + e.what +
                    " after the loop");
  }
}

}  // namespace slc::verify
