// Internals shared by the verifier's translation units. Not installed;
// include only from src/verify/*.cpp and the unit tests.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "ast/ast.hpp"
#include "slms/placement.hpp"
#include "support/diagnostics.hpp"

namespace slc::verify {

/// Rebuilds, from placement metadata alone, the statement a *correct*
/// pipeline must contain for MI `k` at a given iteration — mirroring the
/// emitter's substitution rules (MVE copy by iteration parity, scalar
/// expansion to `arr[iv]`, then loop-variable substitution with
/// constant folding) without ever calling the emitter. The coverage
/// checker compares emitted statements against these references, so a
/// pipeliner bug cannot corrupt both sides of the comparison.
class InstanceBuilder {
 public:
  explicit InstanceBuilder(const slms::LoopPlacement& pl) : pl_(pl) {}

  /// Straight-line instance for absolute iteration t (prologue and the
  /// constant-bound epilogue): iv is the literal lo + t*step, or the
  /// folded `lower + t*step` for symbolic bounds. MVE parity is
  /// t mod unroll (euclidean).
  const ast::Stmt* at_iteration(int k, std::int64_t t);
  /// Same, with a forced MVE parity (wrong-copy diagnosis); parity -1
  /// means "no MVE rename applied".
  const ast::Stmt* at_iteration_parity(int k, std::int64_t t,
                                       std::int64_t parity);

  /// Kernel-relative instance at iteration offset d from the round's
  /// base: iv + d*step, parity d mod unroll.
  const ast::Stmt* kernel_delta(int k, std::int64_t d);
  const ast::Stmt* kernel_delta_parity(int k, std::int64_t d,
                                       std::int64_t parity);

  /// Symbolic-bound epilogue instance, relative to the kernel's exit iv:
  /// iv + t_rel*step (symbolic emission implies unroll == 1, so parity
  /// never applies).
  const ast::Stmt* epilogue_rel(int k, std::int64_t t_rel);

  [[nodiscard]] std::int64_t parity_of(std::int64_t t) const {
    std::int64_t u = pl_.unroll;
    return u > 1 ? ((t % u) + u) % u : -1;
  }

 private:
  enum class Kind : int { Iteration, Kernel, EpilogueRel };

  const ast::Stmt* get(Kind kind, int k, std::int64_t pos,
                       std::int64_t parity);
  [[nodiscard]] ast::StmtPtr build(int k, ast::ExprPtr iv_expr,
                                   std::int64_t parity) const;
  [[nodiscard]] ast::ExprPtr iteration_iv(std::int64_t t) const;

  const slms::LoopPlacement& pl_;
  std::map<std::tuple<int, int, std::int64_t, std::int64_t>, ast::StmtPtr>
      cache_;
};

/// Placement metadata sanity: internally consistent sizes, a schedule
/// whose stage count matches, rename tables shaped like the emitter
/// requires, and renamed/planned scalars that really are renameable.
/// Returns false when the metadata is too broken for the other checks
/// to be meaningful.
bool check_metadata(const slms::LoopPlacement& pl,
                    DiagnosticEngine& diags);

/// Dependence preservation: rebuild the DDG over the recorded MIs and
/// check every edge — kept edges against the modulo-scheduling
/// inequality, dropped (planned-scalar anti/output) edges against the
/// rename tables that were supposed to neutralize them.
void check_dependences(const slms::LoopPlacement& pl,
                       DiagnosticEngine& diags);

/// Structure, iteration-space coverage, renaming of emitted instances,
/// live-out fixups, and emission order of the replacement block.
void check_coverage(const slms::LoopPlacement& pl,
                    const ast::BlockStmt& replacement,
                    DiagnosticEngine& diags);

}  // namespace slc::verify
