#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "ast/subst.hpp"
#include "ast/walk.hpp"
#include "verify/internal.hpp"

namespace slc::verify {

using namespace ast;
using slms::RenamedScalar;
using slms::RenameMode;

const Stmt* InstanceBuilder::at_iteration(int k, std::int64_t t) {
  return at_iteration_parity(k, t, parity_of(t));
}

const Stmt* InstanceBuilder::at_iteration_parity(int k, std::int64_t t,
                                                 std::int64_t parity) {
  return get(Kind::Iteration, k, t, parity);
}

const Stmt* InstanceBuilder::kernel_delta(int k, std::int64_t d) {
  return kernel_delta_parity(k, d, parity_of(d));
}

const Stmt* InstanceBuilder::kernel_delta_parity(int k, std::int64_t d,
                                                 std::int64_t parity) {
  return get(Kind::Kernel, k, d, parity);
}

const Stmt* InstanceBuilder::epilogue_rel(int k, std::int64_t t_rel) {
  return get(Kind::EpilogueRel, k, t_rel, -1);
}

const Stmt* InstanceBuilder::get(Kind kind, int k, std::int64_t pos,
                                 std::int64_t parity) {
  if (k < 0 || std::size_t(k) >= pl_.mis.size()) return nullptr;
  auto key = std::make_tuple(int(kind), k, pos, parity);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.get();

  ExprPtr iv;
  switch (kind) {
    case Kind::Iteration:
      iv = iteration_iv(pos);
      break;
    case Kind::Kernel:
      iv = build::var_plus(pl_.iv, pos * pl_.step);
      break;
    case Kind::EpilogueRel:
      iv = build::var_plus(pl_.iv, pos * pl_.step);
      break;
  }
  StmtPtr s = build(k, std::move(iv), parity);
  const Stmt* raw = s.get();
  cache_.emplace(key, std::move(s));
  return raw;
}

StmtPtr InstanceBuilder::build(int k, ExprPtr iv_expr,
                               std::int64_t parity) const {
  StmtPtr s = pl_.mis[std::size_t(k)]->clone();
  for (const RenamedScalar& r : pl_.renames) {
    if (r.mode == RenameMode::MveCopies) {
      if (pl_.unroll > 1 && parity >= 0 &&
          std::size_t(parity) < r.copy_names.size())
        rename_var(*s, r.name, r.copy_names[std::size_t(parity)]);
    } else {
      rewrite_exprs(*s, [&](ExprPtr& slot) {
        if (const auto* v = dyn_cast<VarRef>(slot.get());
            v != nullptr && v->name == r.name) {
          slot = build::index(r.array_name, build::var(pl_.iv));
        }
      });
    }
  }
  substitute_var(*s, pl_.iv, *iv_expr);
  return s;
}

ExprPtr InstanceBuilder::iteration_iv(std::int64_t t) const {
  if (pl_.bounds_are_constant())
    return build::lit(*pl_.const_lower + t * pl_.step);
  ExprPtr e = pl_.lower->clone();
  if (t != 0) e = build::add(std::move(e), build::lit(t * pl_.step));
  fold(e);
  return e;
}

}  // namespace slc::verify
