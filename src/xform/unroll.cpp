// Unrolling, front-peeling, and reversal (paper §6: unrolling resolves
// high-II cases and improves kernel resource utilization; peeling and
// reversal are the "complex combination" Fig. 10 contrasts with SLMS).
#include "analysis/ddg.hpp"
#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "ast/subst.hpp"
#include "sema/loop_info.hpp"
#include "support/int_math.hpp"
#include "xform/common.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;

namespace {

/// Trip count of a canonical loop with constant bounds.
std::optional<std::int64_t> const_trips(const sema::LoopInfo& info) {
  return info.const_trip_count();
}

/// One full source iteration of `body` with the iv bound to `iv_expr`.
void emit_iteration(const BlockStmt& body, const std::string& iv,
                    const Expr& iv_expr, std::vector<StmtPtr>& out) {
  for (const StmtPtr& s : body.stmts) {
    StmtPtr inst = s->clone();
    substitute_var(*inst, iv, iv_expr);
    out.push_back(std::move(inst));
  }
}

}  // namespace

XformOutcome unroll(const ForStmt& loop, int factor) {
  XformOutcome out;
  if (factor < 2) {
    out.reason = "unroll factor must be >= 2";
    return out;
  }
  std::string reason;
  auto shape = detail::shape_of(loop, &reason);
  if (!shape) {
    out.reason = "loop not canonical: " + reason;
    return out;
  }
  if (!shape->info.body_is_pipelineable) {
    out.reason = shape->info.reject_reason;
    return out;
  }
  const sema::LoopInfo& info = shape->info;
  auto* body = dyn_cast<BlockStmt>(shape->loop->body.get());

  // Unrolled body: factor copies at iv, iv+step, ...
  std::vector<StmtPtr> unrolled;
  for (int c = 0; c < factor; ++c) {
    ExprPtr iv_expr = build::var_plus(info.iv, std::int64_t(c) * info.step);
    emit_iteration(*body, info.iv, *iv_expr, unrolled);
  }

  StmtPtr init = build::assign(build::var(info.iv), info.lower->clone());
  std::int64_t stride = std::int64_t(factor) * info.step;
  StmtPtr step_stmt =
      stride >= 0 ? build::assign(build::var(info.iv), build::lit(stride),
                                  AssignOp::Add)
                  : build::assign(build::var(info.iv), build::lit(-stride),
                                  AssignOp::Sub);

  auto trips = const_trips(info);
  if (trips.has_value()) {
    auto lo = const_int(*info.lower);
    std::int64_t main = (*trips / factor) * factor;
    ExprPtr cond = build::bin(info.step > 0 ? BinaryOp::Lt : BinaryOp::Gt,
                              build::var(info.iv),
                              build::lit(*lo + main * info.step));
    out.replacement.push_back(std::make_unique<ForStmt>(
        std::move(init), std::move(cond), std::move(step_stmt),
        build::block(std::move(unrolled))));
    // Remainder iterations as straight-line code.
    for (std::int64_t t = main; t < *trips; ++t) {
      ExprPtr iv_expr = build::lit(*lo + t * info.step);
      emit_iteration(*body, info.iv, *iv_expr, out.replacement);
    }
    // Restore the iv's exit value.
    out.replacement.push_back(build::assign(
        build::var(info.iv), build::lit(*lo + *trips * info.step)));
    return out;
  }

  // Symbolic bounds: main loop while `factor` more iterations fit, then a
  // remainder loop continuing from the current iv.
  ExprPtr bound = build::sub(info.upper->clone(),
                             build::lit(std::int64_t(factor - 1) * info.step));
  fold(bound);
  ExprPtr cond = build::bin(info.cmp, build::var(info.iv), std::move(bound));
  out.replacement.push_back(std::make_unique<ForStmt>(
      std::move(init), std::move(cond), std::move(step_stmt),
      build::block(std::move(unrolled))));

  StmtPtr rem_step = info.step >= 0
                         ? build::assign(build::var(info.iv),
                                         build::lit(info.step), AssignOp::Add)
                         : build::assign(build::var(info.iv),
                                         build::lit(-info.step),
                                         AssignOp::Sub);
  out.replacement.push_back(std::make_unique<ForStmt>(
      nullptr,
      build::bin(info.cmp, build::var(info.iv), info.upper->clone()),
      std::move(rem_step), shape->loop->body->clone()));
  return out;
}

XformOutcome peel_front(const ForStmt& loop, int count) {
  XformOutcome out;
  if (count < 1) {
    out.reason = "peel count must be >= 1";
    return out;
  }
  std::string reason;
  auto shape = detail::shape_of(loop, &reason);
  if (!shape) {
    out.reason = "loop not canonical: " + reason;
    return out;
  }
  if (!shape->info.body_is_pipelineable) {
    out.reason = shape->info.reject_reason;
    return out;
  }
  const sema::LoopInfo& info = shape->info;
  auto* body = dyn_cast<BlockStmt>(shape->loop->body.get());

  auto trips = const_trips(info);
  std::vector<StmtPtr> peeled;
  for (int t = 0; t < count; ++t) {
    ExprPtr iv_expr = info.lower->clone();
    if (t != 0)
      iv_expr = build::add(std::move(iv_expr),
                           build::lit(std::int64_t(t) * info.step));
    fold(iv_expr);
    emit_iteration(*body, info.iv, *iv_expr, peeled);
  }

  // Residual loop starting `count` iterations in.
  ExprPtr new_lower = build::add(info.lower->clone(),
                                 build::lit(std::int64_t(count) * info.step));
  fold(new_lower);
  auto residual = std::make_unique<ForStmt>(
      build::assign(build::var(info.iv), std::move(new_lower)),
      shape->loop->cond->clone(), shape->loop->step->clone(),
      shape->loop->body->clone());

  if (trips.has_value()) {
    if (*trips < count) {
      out.reason = "trip count smaller than peel count";
      return out;
    }
    out.replacement = std::move(peeled);
    out.replacement.push_back(std::move(residual));
    return out;
  }

  // Symbolic: guard — peeled form only when at least `count` iterations
  // exist, otherwise the original loop.
  std::int64_t abs_step = info.step > 0 ? info.step : -info.step;
  ExprPtr span = info.cmp == BinaryOp::Lt || info.cmp == BinaryOp::Le
                     ? build::sub(info.upper->clone(), info.lower->clone())
                     : build::sub(info.lower->clone(), info.upper->clone());
  BinaryOp op = (info.cmp == BinaryOp::Le || info.cmp == BinaryOp::Ge)
                    ? BinaryOp::Gt
                    : BinaryOp::Ge;
  ExprPtr guard = build::bin(op, std::move(span),
                             build::lit(std::int64_t(count) * abs_step));
  fold(guard);
  peeled.push_back(std::move(residual));
  out.replacement.push_back(std::make_unique<IfStmt>(
      std::move(guard), build::block(std::move(peeled)),
      std::move(shape->owned)));
  return out;
}

XformOutcome reverse(const ForStmt& loop) {
  XformOutcome out;
  std::string reason;
  auto shape = detail::shape_of(loop, &reason);
  if (!shape) {
    out.reason = "loop not canonical: " + reason;
    return out;
  }
  if (!detail::body_is_simple(*shape->loop)) {
    out.reason = "body must be a simple statement list";
    return out;
  }
  const sema::LoopInfo& info = shape->info;

  // Legality: no loop-carried dependence (all distances exactly 0).
  analysis::Ddg ddg =
      analysis::build_ddg(detail::body_ptrs(*shape->loop), info.iv,
                          info.step);
  for (const analysis::DepEdge& e : ddg.edges) {
    if (e.loop_carried()) {
      out.reason = "loop-carried dependence via '" + e.var +
                   "' blocks reversal";
      return out;
    }
  }

  auto trips = const_trips(info);
  if (trips.has_value()) {
    auto lo = const_int(*info.lower);
    if (*trips == 0) {
      out.replacement.push_back(std::move(shape->owned));
      return out;
    }
    std::int64_t last = *lo + (*trips - 1) * info.step;
    StmtPtr init = build::assign(build::var(info.iv), build::lit(last));
    ExprPtr cond = build::bin(info.step > 0 ? BinaryOp::Ge : BinaryOp::Le,
                              build::var(info.iv), build::lit(*lo));
    StmtPtr step_stmt =
        info.step > 0 ? build::assign(build::var(info.iv),
                                      build::lit(info.step), AssignOp::Sub)
                      : build::assign(build::var(info.iv),
                                      build::lit(-info.step), AssignOp::Add);
    out.replacement.push_back(std::make_unique<ForStmt>(
        std::move(init), std::move(cond), std::move(step_stmt),
        std::move(shape->loop->body)));
    // iv exit value differs after reversal; restore the original's.
    out.replacement.push_back(build::assign(
        build::var(info.iv), build::lit(*lo + *trips * info.step)));
    return out;
  }

  // Symbolic bounds: supported for unit steps with a '<' comparison.
  if (info.step == 1 && info.cmp == BinaryOp::Lt) {
    ExprPtr last = build::sub(info.upper->clone(), build::lit(1));
    fold(last);
    StmtPtr init = build::assign(build::var(info.iv), std::move(last));
    ExprPtr cond =
        build::bin(BinaryOp::Ge, build::var(info.iv), info.lower->clone());
    StmtPtr step_stmt = build::assign(build::var(info.iv), build::lit(1),
                                      AssignOp::Sub);
    out.replacement.push_back(std::make_unique<ForStmt>(
        std::move(init), std::move(cond), std::move(step_stmt),
        std::move(shape->loop->body)));
    // Exit value: original leaves iv at max(lower, upper); reversed
    // leaves it at lower-1. Restore only the common case upper >= lower.
    out.replacement.push_back(build::assign(
        build::var(info.iv),
        std::make_unique<Conditional>(
            build::bin(BinaryOp::Gt, info.upper->clone(),
                       info.lower->clone()),
            info.upper->clone(), info.lower->clone())));
    return out;
  }
  out.reason = "symbolic-bound reversal supported only for unit-step '<' loops";
  return out;
}

}  // namespace slc::xform
