// Rectangular 2-level loop tiling (the paper's intro lists tiling among
// the SLC's transformations, following Bacon et al. [4]):
//
//   for (i = lo1; i < hi1; i++)            for (iT = lo1; iT < hi1; iT += Ti)
//     for (j = lo2; j < hi2; j++)    =>      for (jT = lo2; jT < hi2; jT += Tj)
//       body                                   for (i = iT; i < min(iT+Ti, hi1); i++)
//                                                for (j = jT; j < min(jT+Tj, hi2); j++)
//                                                  body
//
// Legal exactly when the band is fully permutable — for two levels, the
// same condition as interchange (no (+,-) dependence vector). Restricted
// to unit-step '<' loops; bounds may be symbolic (min() handles the
// partial edge tiles).
#include "analysis/direction.hpp"
#include "ast/build.hpp"
#include "slms/names.hpp"
#include "xform/nest.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;

XformOutcome tile(const ForStmt& outer_loop, int tile_outer,
                  int tile_inner) {
  XformOutcome out;
  if (tile_outer < 1 || tile_inner < 1) {
    out.reason = "tile sizes must be >= 1";
    return out;
  }
  auto nest = detail::analyze_nest(outer_loop, &out.reason);
  if (!nest) return out;
  if (nest->outer_info.step != 1 || nest->inner_info.step != 1 ||
      nest->outer_info.cmp != BinaryOp::Lt ||
      nest->inner_info.cmp != BinaryOp::Lt) {
    out.reason = "tiling supports unit-step '<' nests";
    return out;
  }

  // Permutability (== interchange legality for a 2-level band).
  auto accesses = detail::nest_accesses(*nest);
  for (std::size_t x = 0; x < accesses.size(); ++x) {
    for (std::size_t y = x; y < accesses.size(); ++y) {
      if (!accesses[x].is_write && !accesses[y].is_write) continue;
      auto vec = analysis::direction_vector(
          accesses[x], accesses[y], nest->outer_info.iv,
          nest->inner_info.iv, nest->outer_info.step,
          nest->inner_info.step);
      if (!vec) continue;
      if (analysis::blocks_interchange(*vec)) {
        out.reason = "dependence through '" + accesses[x].array +
                     "' makes the nest non-permutable";
        return out;
      }
    }
  }

  slms::NameAllocator names = slms::NameAllocator::for_stmt(outer_loop);
  std::string it = names.fresh(nest->outer_info.iv + "T");
  std::string jt = names.fresh(nest->inner_info.iv + "T");

  auto min_call = [](ExprPtr a, ExprPtr b) {
    std::vector<ExprPtr> args;
    args.push_back(std::move(a));
    args.push_back(std::move(b));
    return std::make_unique<Call>("min", std::move(args));
  };

  // Innermost pair: original ivs sweep one tile.
  ExprPtr i_hi = min_call(
      build::add(build::var(it), build::lit(tile_outer)),
      nest->outer_info.upper->clone());
  ExprPtr j_hi = min_call(
      build::add(build::var(jt), build::lit(tile_inner)),
      nest->inner_info.upper->clone());

  StmtPtr j_loop = std::make_unique<ForStmt>(
      build::assign(build::var(nest->inner_info.iv), build::var(jt)),
      build::lt(build::var(nest->inner_info.iv), std::move(j_hi)),
      build::assign(build::var(nest->inner_info.iv), build::lit(1),
                    AssignOp::Add),
      std::move(nest->inner->body));

  std::vector<StmtPtr> i_body;
  i_body.push_back(std::move(j_loop));
  StmtPtr i_loop = std::make_unique<ForStmt>(
      build::assign(build::var(nest->outer_info.iv), build::var(it)),
      build::lt(build::var(nest->outer_info.iv), std::move(i_hi)),
      build::assign(build::var(nest->outer_info.iv), build::lit(1),
                    AssignOp::Add),
      build::block(std::move(i_body)));

  // Tile loops.
  std::vector<StmtPtr> jt_body;
  jt_body.push_back(std::move(i_loop));
  StmtPtr jt_loop = std::make_unique<ForStmt>(
      build::assign(build::var(jt), nest->inner_info.lower->clone()),
      build::lt(build::var(jt), nest->inner_info.upper->clone()),
      build::assign(build::var(jt), build::lit(tile_inner), AssignOp::Add),
      build::block(std::move(jt_body)));

  std::vector<StmtPtr> it_body;
  it_body.push_back(std::move(jt_loop));
  StmtPtr it_loop = std::make_unique<ForStmt>(
      build::assign(build::var(it), nest->outer_info.lower->clone()),
      build::lt(build::var(it), nest->outer_info.upper->clone()),
      build::assign(build::var(it), build::lit(tile_outer), AssignOp::Add),
      build::block(std::move(it_body)));

  out.replacement.push_back(build::decl(ScalarType::Int, it));
  out.replacement.push_back(build::decl(ScalarType::Int, jt));
  out.replacement.push_back(std::move(it_loop));
  return out;
}

}  // namespace slc::xform
