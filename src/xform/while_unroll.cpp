// Generalized while-loop unrolling (paper §10 / Huang-Leng [8]).
#include "ast/build.hpp"
#include "ast/walk.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;

XformOutcome unroll_while(const WhileStmt& loop, int factor) {
  XformOutcome out;
  if (factor < 2) {
    out.reason = "unroll factor must be >= 2";
    return out;
  }
  // `break` inside the body would escape from copy k and skip the
  // remaining copies — which is exactly the original semantics, so it is
  // allowed. Nested loops containing their own breaks are fine too; only
  // `continue`-like constructs would be a problem and the dialect has
  // none.
  std::vector<StmtPtr> body;
  {
    const auto* block = dyn_cast<BlockStmt>(loop.body.get());
    if (block == nullptr) {
      out.reason = "loop body must be a block";
      return out;
    }
    for (const StmtPtr& s : block->stmts) body.push_back(s->clone());
  }

  std::vector<StmtPtr> unrolled;
  for (int c = 0; c < factor; ++c) {
    if (c > 0) {
      // if (!(cond)) break;
      std::vector<StmtPtr> brk;
      brk.push_back(std::make_unique<BreakStmt>());
      unrolled.push_back(std::make_unique<IfStmt>(
          build::lnot(loop.cond->clone()), build::block(std::move(brk))));
    }
    for (const StmtPtr& s : body) unrolled.push_back(s->clone());
  }

  out.replacement.push_back(std::make_unique<WhileStmt>(
      loop.cond->clone(), build::block(std::move(unrolled))));
  return out;
}

}  // namespace slc::xform
