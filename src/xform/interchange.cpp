// Loop interchange for perfect 2-level rectangular nests (paper §6 uses
// it to legalize SLMS on the `a[i][j+1] = a[i][j]` loop).
#include <map>

#include "analysis/access.hpp"
#include "analysis/direction.hpp"
#include "ast/walk.hpp"
#include "xform/common.hpp"
#include "xform/nest.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;
using analysis::ArrayAccess;

XformOutcome interchange(const ForStmt& outer_loop) {
  XformOutcome out;

  auto nest = detail::analyze_nest(outer_loop, &out.reason);
  if (!nest) return out;

  // Array dependences: reject direction (<, >).
  {
    std::vector<ArrayAccess> all = detail::nest_accesses(*nest);
    for (std::size_t x = 0; x < all.size(); ++x) {
      for (std::size_t y = x; y < all.size(); ++y) {
        if (!all[x].is_write && !all[y].is_write) continue;
        auto vec = analysis::direction_vector(
            all[x], all[y], nest->outer_info.iv, nest->inner_info.iv,
            nest->outer_info.step, nest->inner_info.step);
        if (!vec) continue;  // independent
        if (analysis::blocks_interchange(*vec)) {
          out.reason = "dependence with direction (<,>) through array '" +
                       all[x].array + "'";
          return out;
        }
      }
    }
  }

  // Swap the headers: the inner loop's header moves outside.
  auto* outer = nest->outer;
  auto* inner = nest->inner;
  StmtPtr body = std::move(inner->body);
  auto new_inner = std::make_unique<ForStmt>(
      std::move(outer->init), std::move(outer->cond), std::move(outer->step),
      std::move(body));
  auto new_outer = std::make_unique<ForStmt>(
      std::move(inner->init), std::move(inner->cond), std::move(inner->step),
      nullptr);
  std::vector<StmtPtr> outer_body;
  outer_body.push_back(std::move(new_inner));
  new_outer->body = std::make_unique<BlockStmt>(std::move(outer_body));
  out.replacement.push_back(std::move(new_outer));
  return out;
}

}  // namespace slc::xform
