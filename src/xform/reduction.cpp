// Reduction parallelization — the semantics-aware step the paper performs
// manually in the §5 max example ("the last line was added manually"):
// the reduction variable is split into `lanes` interleaved accumulators
// so SLMS/MVE can overlap the comparisons, and a combining tail restores
// the scalar.
#include "analysis/access.hpp"
#include "ast/build.hpp"
#include "ast/fold.hpp"
#include "ast/subst.hpp"
#include "ast/walk.hpp"
#include "slms/names.hpp"
#include "xform/common.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;

namespace {

enum class ReductionKind { Max, Min, Sum };

struct ReductionPattern {
  ReductionKind kind;
  std::string scalar;
  const Expr* element = nullptr;  // the combined expression e(i)
};

/// Recognizes `if (s < e) s = e;` / `if (s > e) s = e;` / `s += e;` /
/// `s = s + e;` bodies.
std::optional<ReductionPattern> match_reduction(const ForStmt& loop,
                                                const std::string& iv) {
  std::vector<const Stmt*> body = detail::body_ptrs(loop);
  if (body.size() != 1) return std::nullopt;

  auto element_ok = [&iv](const Expr& e, const std::string& s) {
    bool ok = true;
    walk_exprs(e, [&](const Expr& x) {
      if (const auto* v = dyn_cast<VarRef>(&x);
          v != nullptr && v->name == s)
        ok = false;  // element must not read the accumulator
    });
    (void)iv;
    return ok;
  };

  if (const auto* i = dyn_cast<IfStmt>(body[0])) {
    if (i->else_stmt != nullptr) return std::nullopt;
    const auto* cond = dyn_cast<Binary>(i->cond.get());
    if (cond == nullptr ||
        (cond->op != BinaryOp::Lt && cond->op != BinaryOp::Gt))
      return std::nullopt;
    const auto* cv = dyn_cast<VarRef>(cond->lhs.get());
    if (cv == nullptr) return std::nullopt;
    const Stmt* then_stmt = i->then_stmt.get();
    if (const auto* blk = dyn_cast<BlockStmt>(then_stmt)) {
      if (blk->stmts.size() != 1) return std::nullopt;
      then_stmt = blk->stmts[0].get();
    }
    const auto* assign = dyn_cast<AssignStmt>(then_stmt);
    if (assign == nullptr || assign->op != AssignOp::Set) return std::nullopt;
    const auto* lhs = dyn_cast<VarRef>(assign->lhs.get());
    if (lhs == nullptr || lhs->name != cv->name) return std::nullopt;
    if (!equal(*cond->rhs, *assign->rhs)) return std::nullopt;
    if (!element_ok(*assign->rhs, lhs->name)) return std::nullopt;
    return ReductionPattern{
        cond->op == BinaryOp::Lt ? ReductionKind::Max : ReductionKind::Min,
        lhs->name, assign->rhs.get()};
  }

  if (const auto* a = dyn_cast<AssignStmt>(body[0])) {
    if (a->guard != nullptr) return std::nullopt;
    const auto* lhs = dyn_cast<VarRef>(a->lhs.get());
    if (lhs == nullptr) return std::nullopt;
    if (a->op == AssignOp::Add) {
      if (!element_ok(*a->rhs, lhs->name)) return std::nullopt;
      return ReductionPattern{ReductionKind::Sum, lhs->name, a->rhs.get()};
    }
    if (a->op == AssignOp::Set) {
      // s = s + e
      const auto* b = dyn_cast<Binary>(a->rhs.get());
      if (b == nullptr || b->op != BinaryOp::Add) return std::nullopt;
      const auto* sv = dyn_cast<VarRef>(b->lhs.get());
      if (sv == nullptr || sv->name != lhs->name) return std::nullopt;
      if (!element_ok(*b->rhs, lhs->name)) return std::nullopt;
      return ReductionPattern{ReductionKind::Sum, lhs->name, b->rhs.get()};
    }
  }
  return std::nullopt;
}

/// One lane's update statement for iteration expression `iv_expr`.
StmtPtr lane_update(const ReductionPattern& pat, const std::string& lane,
                    const std::string& iv, const Expr& iv_expr) {
  ExprPtr element = pat.element->clone();
  StmtPtr stmt;
  switch (pat.kind) {
    case ReductionKind::Sum:
      stmt = build::assign(build::var(lane), std::move(element),
                           AssignOp::Add);
      break;
    case ReductionKind::Max:
    case ReductionKind::Min: {
      BinaryOp rel =
          pat.kind == ReductionKind::Max ? BinaryOp::Lt : BinaryOp::Gt;
      auto assign = std::make_unique<AssignStmt>(
          build::var(lane), AssignOp::Set, element->clone());
      assign->guard = build::bin(rel, build::var(lane), std::move(element));
      stmt = std::move(assign);
      break;
    }
  }
  substitute_var(*stmt, iv, iv_expr);
  return stmt;
}

}  // namespace

XformOutcome parallelize_reduction(const ForStmt& loop, int lanes) {
  XformOutcome out;
  if (lanes < 2) {
    out.reason = "need at least 2 lanes";
    return out;
  }
  std::string reason;
  auto shape = detail::shape_of(loop, &reason);
  if (!shape) {
    out.reason = "loop not canonical: " + reason;
    return out;
  }
  const sema::LoopInfo& info = shape->info;
  auto pattern = match_reduction(*shape->loop, info.iv);
  if (!pattern) {
    out.reason = "body is not a recognizable max/min/sum reduction";
    return out;
  }
  auto trips = info.const_trip_count();
  if (!trips) {
    out.reason = "reduction splitting requires constant bounds";
    return out;
  }
  auto lo = const_int(*info.lower);
  if (*trips < lanes) {
    out.reason = "trip count smaller than lane count";
    return out;
  }

  slms::NameAllocator names = slms::NameAllocator::for_stmt(loop);
  std::vector<std::string> lane_names;
  for (int l = 0; l < lanes; ++l)
    lane_names.push_back(names.fresh(pattern->scalar));

  // Lane initialization. max/min lanes start at the current accumulator
  // (idempotent); sum lanes start at zero except lane 0, which absorbs
  // the incoming partial sum.
  for (int l = 0; l < lanes; ++l) {
    ExprPtr init;
    if (pattern->kind == ReductionKind::Sum) {
      init = l == 0 ? build::var(pattern->scalar) : ExprPtr(build::lit(0));
    } else {
      init = build::var(pattern->scalar);
    }
    // Lane declarations adopt double: exact for max/min of any numeric
    // array and for integer-valued doubles; documented restriction.
    out.replacement.push_back(
        build::decl(ScalarType::Double, lane_names[std::size_t(l)],
                    std::move(init)));
  }

  // Main interleaved loop over a lanes-multiple prefix.
  std::int64_t main = (*trips / lanes) * lanes;
  std::vector<StmtPtr> body;
  for (int l = 0; l < lanes; ++l) {
    ExprPtr iv_expr =
        build::var_plus(info.iv, std::int64_t(l) * info.step);
    body.push_back(lane_update(*pattern, lane_names[std::size_t(l)],
                               info.iv, *iv_expr));
  }
  StmtPtr init = build::assign(build::var(info.iv), info.lower->clone());
  ExprPtr cond = build::bin(info.step > 0 ? BinaryOp::Lt : BinaryOp::Gt,
                            build::var(info.iv),
                            build::lit(*lo + main * info.step));
  std::int64_t stride = std::int64_t(lanes) * info.step;
  StmtPtr step_stmt =
      stride >= 0 ? build::assign(build::var(info.iv), build::lit(stride),
                                  AssignOp::Add)
                  : build::assign(build::var(info.iv), build::lit(-stride),
                                  AssignOp::Sub);
  out.replacement.push_back(std::make_unique<ForStmt>(
      std::move(init), std::move(cond), std::move(step_stmt),
      build::block(std::move(body))));

  // Remainder iterations feed lane (t mod lanes).
  for (std::int64_t t = main; t < *trips; ++t) {
    ExprPtr iv_expr = build::lit(*lo + t * info.step);
    out.replacement.push_back(lane_update(
        *pattern, lane_names[std::size_t(t % lanes)], info.iv, *iv_expr));
  }

  // Combine ("the last line", added automatically here).
  if (pattern->kind == ReductionKind::Sum) {
    ExprPtr total = build::var(lane_names[0]);
    for (int l = 1; l < lanes; ++l)
      total = build::add(std::move(total), build::var(lane_names[size_t(l)]));
    out.replacement.push_back(
        build::assign(build::var(pattern->scalar), std::move(total)));
  } else {
    out.replacement.push_back(build::assign(build::var(pattern->scalar),
                                            build::var(lane_names[0])));
    BinaryOp rel =
        pattern->kind == ReductionKind::Max ? BinaryOp::Lt : BinaryOp::Gt;
    for (int l = 1; l < lanes; ++l) {
      auto fix = std::make_unique<AssignStmt>(
          build::var(pattern->scalar), AssignOp::Set,
          build::var(lane_names[std::size_t(l)]));
      fix->guard = build::bin(rel, build::var(pattern->scalar),
                              build::var(lane_names[std::size_t(l)]));
      out.replacement.push_back(std::move(fix));
    }
  }

  // iv exit value.
  out.replacement.push_back(build::assign(
      build::var(info.iv), build::lit(*lo + *trips * info.step)));
  return out;
}

}  // namespace slc::xform
