#include "xform/nest.hpp"

#include <map>

#include "ast/walk.hpp"
#include "xform/common.hpp"

namespace slc::xform::detail {

using namespace ast;

std::optional<Nest> analyze_nest(const ForStmt& outer_loop,
                                 std::string* reason) {
  auto fail = [&](std::string why) -> std::optional<Nest> {
    if (reason != nullptr) *reason = std::move(why);
    return std::nullopt;
  };

  Nest nest;
  nest.owned = outer_loop.clone();
  nest.outer = dyn_cast<ForStmt>(nest.owned.get());

  std::string why;
  auto outer_info = sema::analyze_loop(*nest.outer, &why);
  if (!outer_info) return fail("outer loop not canonical: " + why);
  nest.outer_info = *outer_info;

  auto* outer_body = dyn_cast<BlockStmt>(nest.outer->body.get());
  if (outer_body == nullptr || outer_body->stmts.size() != 1 ||
      outer_body->stmts[0]->kind() != StmtKind::For)
    return fail("not a perfect 2-level nest");
  nest.inner = dyn_cast<ForStmt>(outer_body->stmts[0].get());

  auto inner_info = sema::analyze_loop(*nest.inner, &why);
  if (!inner_info) return fail("inner loop not canonical: " + why);
  nest.inner_info = *inner_info;
  if (!nest.inner_info.body_is_pipelineable ||
      !body_is_simple(*nest.inner))
    return fail("inner body is not a simple statement list");

  // Rectangularity: inner bounds must not mention the outer iv.
  for (const Expr* bound : {nest.inner_info.lower, nest.inner_info.upper}) {
    bool uses_outer = false;
    walk_exprs(*bound, [&](const Expr& e) {
      if (const auto* v = dyn_cast<VarRef>(&e);
          v != nullptr && v->name == nest.outer_info.iv)
        uses_outer = true;
    });
    if (uses_outer)
      return fail("inner bounds depend on the outer induction variable");
  }

  // Scalars written in the body must be def-before-use temporaries.
  {
    std::vector<const Stmt*> body = body_ptrs(*nest.inner);
    std::map<std::string, std::pair<int, int>> first;  // def, use
    for (int k = 0; k < int(body.size()); ++k) {
      analysis::AccessSet set =
          analysis::collect_accesses(*body[std::size_t(k)]);
      for (const auto& s : set.scalars) {
        if (s.name == nest.inner_info.iv || s.name == nest.outer_info.iv)
          continue;
        auto [it, fresh] = first.try_emplace(s.name, INT32_MAX, INT32_MAX);
        (void)fresh;
        if (s.is_write) {
          it->second.first = std::min(it->second.first, k);
        } else {
          it->second.second = std::min(it->second.second, k);
        }
      }
    }
    for (const auto& [name, du] : first) {
      bool written = du.first != INT32_MAX;
      bool read = du.second != INT32_MAX;
      if (written && read && du.second <= du.first)
        return fail("scalar '" + name +
                    "' carries a dependence across iterations");
    }
  }
  return nest;
}

std::vector<analysis::ArrayAccess> nest_accesses(const Nest& nest) {
  std::vector<analysis::ArrayAccess> all;
  for (const Stmt* s : body_ptrs(*nest.inner)) {
    analysis::AccessSet set = analysis::collect_accesses(*s);
    for (analysis::ArrayAccess& a : set.arrays) all.push_back(std::move(a));
  }
  return all;
}

}  // namespace slc::xform::detail
