// Source-level live-range compaction (paper Fig. 5): the SLC re-arranges
// statements so scalar life-times shrink, improving the final compiler's
// register allocation. Only intra-iteration (distance-0) dependences
// constrain the order of statements within one iteration — loop-carried
// dependences hold in any body order — so the pass greedily re-lists the
// body, preferring statements that kill live scalars and delaying those
// that create long-lived ones.
#include <algorithm>
#include <map>
#include <set>

#include "analysis/access.hpp"
#include "analysis/ddg.hpp"
#include "sema/loop_info.hpp"
#include "xform/common.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;

namespace {

/// Scalar live intervals over a body order; returns the maximal number of
/// simultaneously-live def-before-use temporaries.
int max_live(const std::vector<const Stmt*>& body, const std::string& iv) {
  struct Interval {
    int def = INT32_MAX;
    int last_use = -1;
  };
  std::map<std::string, Interval> intervals;
  for (int k = 0; k < int(body.size()); ++k) {
    analysis::AccessSet set =
        analysis::collect_accesses(*body[std::size_t(k)]);
    for (const auto& s : set.scalars) {
      if (s.name == iv) continue;
      Interval& iv_range = intervals[s.name];
      if (s.is_write) {
        iv_range.def = std::min(iv_range.def, k);
      } else {
        iv_range.last_use = std::max(iv_range.last_use, k);
      }
    }
  }
  int best = 0;
  for (int k = 0; k < int(body.size()); ++k) {
    int live = 0;
    for (const auto& [name, r] : intervals)
      if (r.def <= k && k < r.last_use) ++live;
    best = std::max(best, live);
  }
  return best;
}

}  // namespace

int scalar_max_live(const ast::ForStmt& loop) {
  auto body = detail::body_ptrs(loop);
  std::string iv;
  if (auto info = sema::analyze_loop(const_cast<ast::ForStmt&>(loop), nullptr))
    iv = info->iv;
  return max_live(body, iv);
}

XformOutcome compact_lifetimes(const ForStmt& loop) {
  XformOutcome out;
  std::string reason;
  auto shape = detail::shape_of(loop, &reason);
  if (!shape) {
    out.reason = "loop not canonical: " + reason;
    return out;
  }
  if (!detail::body_is_simple(*shape->loop)) {
    out.reason = "body must be a simple statement list";
    return out;
  }
  auto* block = dyn_cast<BlockStmt>(shape->loop->body.get());
  const int n = int(block->stmts.size());
  if (n < 3) {
    out.reason = "nothing to reorder";
    return out;
  }

  std::vector<const Stmt*> body;
  for (const StmtPtr& s : block->stmts) body.push_back(s.get());
  const std::string& iv = shape->info.iv;
  int before = max_live(body, iv);

  // Intra-iteration ordering constraints: distance-0 DDG edges.
  analysis::Ddg ddg = analysis::build_ddg(body, iv, shape->info.step);
  std::vector<std::vector<int>> succs{std::size_t(n)};
  std::vector<int> indegree(std::size_t(n), 0);
  for (const analysis::DepEdge& e : ddg.edges) {
    bool zero_dist = false;
    for (const auto& d : e.distances)
      if (d.known && d.distance == 0) zero_dist = true;
    if (!zero_dist || e.src == e.dst) continue;
    succs[std::size_t(e.src)].push_back(e.dst);
    ++indegree[std::size_t(e.dst)];
  }

  // Per-statement scalar reads/writes (excluding the iv).
  std::vector<std::set<std::string>> reads{std::size_t(n)};
  std::vector<std::set<std::string>> writes{std::size_t(n)};
  std::map<std::string, int> remaining_uses;
  for (int k = 0; k < n; ++k) {
    analysis::AccessSet set = analysis::collect_accesses(*body[std::size_t(k)]);
    for (const auto& s : set.scalars) {
      if (s.name == iv) continue;
      if (s.is_write) {
        writes[std::size_t(k)].insert(s.name);
      } else {
        reads[std::size_t(k)].insert(s.name);
        ++remaining_uses[s.name];
      }
    }
  }

  // Greedy re-listing: prefer statements that retire live values and
  // avoid opening new long-lived ones.
  std::set<std::string> live;
  std::vector<int> order;
  std::vector<bool> done(std::size_t(n), false);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    int best_score = INT32_MIN;
    for (int k = 0; k < n; ++k) {
      if (done[std::size_t(k)] || indegree[std::size_t(k)] != 0) continue;
      int kills = 0, births = 0;
      for (const std::string& r : reads[std::size_t(k)])
        if (live.contains(r) && remaining_uses[r] == 1) ++kills;
      for (const std::string& w : writes[std::size_t(k)])
        if (!live.contains(w) && remaining_uses[w] > 0) ++births;
      int score = kills * 2 - births;
      if (score > best_score) {
        best_score = score;
        best = k;
      }
    }
    order.push_back(best);
    done[std::size_t(best)] = true;
    for (const std::string& r : reads[std::size_t(best)]) {
      if (--remaining_uses[r] == 0) live.erase(r);
    }
    for (const std::string& w : writes[std::size_t(best)])
      if (remaining_uses[w] > 0) live.insert(w);
    for (int s : succs[std::size_t(best)]) --indegree[std::size_t(s)];
  }

  std::vector<const Stmt*> new_body;
  for (int k : order) new_body.push_back(body[std::size_t(k)]);
  int after = max_live(new_body, iv);
  if (after >= before) {
    out.reason = "no life-time improvement found (max live " +
                 std::to_string(before) + ")";
    return out;
  }

  std::vector<StmtPtr> reordered;
  for (int k : order) reordered.push_back(std::move(block->stmts[std::size_t(k)]));
  block->stmts = std::move(reordered);
  out.replacement.push_back(std::move(shape->owned));
  return out;
}

}  // namespace slc::xform
