// Classic source-level loop transformations (paper §6, citing Bacon et
// al. [4]). SLMS composes with these in both orders; each transformation
// carries its own dependence-based legality test and is verified against
// the interpreter oracle in the test suite.
//
// All functions are non-destructive: they take the loop(s) by const
// reference and return the replacement statement(s), or an empty result
// with a reason when the transformation is illegal or unsupported.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.hpp"

namespace slc::xform {

struct XformOutcome {
  std::vector<ast::StmtPtr> replacement;
  std::string reason;  // set when replacement is empty

  [[nodiscard]] bool applied() const { return !replacement.empty(); }
};

/// Loop interchange on a perfect 2-level nest. Legal when no dependence
/// has direction (<, >) across the two levels.
[[nodiscard]] XformOutcome interchange(const ast::ForStmt& outer);

/// Fuses two adjacent loops with identical iteration spaces. Legal when
/// no dependence from the first loop's body to the second's would become
/// backward-carried after fusion.
[[nodiscard]] XformOutcome fuse(const ast::ForStmt& first,
                                const ast::ForStmt& second);

/// Distributes (fissions) a loop at body-statement index `cut`
/// (statements [0, cut) stay in the first loop). Legal when no
/// dependence flows from the second group back into the first.
[[nodiscard]] XformOutcome distribute(const ast::ForStmt& loop, int cut);

/// Unrolls by `factor`; always legal. Constant bounds peel the remainder
/// as straight-line code; symbolic bounds keep a remainder loop.
[[nodiscard]] XformOutcome unroll(const ast::ForStmt& loop, int factor);

/// Peels the first `count` iterations. Symbolic bounds emit a trip-count
/// guard like SLMS does.
[[nodiscard]] XformOutcome peel_front(const ast::ForStmt& loop, int count);

/// Reverses the iteration order. Legal when the body carries no
/// loop-carried dependence.
[[nodiscard]] XformOutcome reverse(const ast::ForStmt& loop);

/// Source-level live-range compaction (paper Fig. 5): re-lists the loop
/// body (respecting intra-iteration dependences) so scalar life-times
/// shrink, improving the final compiler's register allocation. Applied
/// only when the maximal number of simultaneously-live scalars drops.
[[nodiscard]] XformOutcome compact_lifetimes(const ast::ForStmt& loop);

/// Metric behind compact_lifetimes: max simultaneously-live scalar
/// temporaries in the loop body, in source order.
[[nodiscard]] int scalar_max_live(const ast::ForStmt& loop);

/// Rectangular 2-level loop tiling (blocking). Legal when the nest is
/// fully permutable — for two levels, the interchange condition. The
/// partial edge tiles are bounded with min(), so symbolic bounds work.
[[nodiscard]] XformOutcome tile(const ast::ForStmt& outer, int tile_outer,
                                int tile_inner);

/// Generalized while-loop unrolling (paper §10, citing Huang & Leng [8]):
///   while (c) { B }
///     =>
///   while (c) { B; if (!(c)) break; B; ... }
/// Always legal (the condition is re-tested between copies); this is the
/// enabling step for while-loop SLMS, which overlaps the copies.
[[nodiscard]] XformOutcome unroll_while(const ast::WhileStmt& loop,
                                        int factor);

/// Reduction parallelization for the paper's §5 max example: rewrites
///   for (...) if (s REL arr[i]) s = arr[i];    (max/min via <, >)
/// or
///   for (...) s += <expr>;                      (sum)
/// into `lanes` interleaved partial reductions combined after the loop —
/// the manually-added "last line" of the paper's max example. Note: sum
/// reassociates floating point; it is exact for max/min and integers.
[[nodiscard]] XformOutcome parallelize_reduction(const ast::ForStmt& loop,
                                                 int lanes);

}  // namespace slc::xform
