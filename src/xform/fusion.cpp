// Loop fusion (paper §6): two adjacent conformable loops merge into one.
#include <map>
#include <set>

#include "analysis/access.hpp"
#include "analysis/ddg.hpp"
#include "ast/fold.hpp"
#include "ast/subst.hpp"
#include "ast/walk.hpp"
#include "xform/common.hpp"
#include "xform/xform.hpp"

namespace slc::xform {

using namespace ast;

namespace {

/// First def / first use body index per scalar (excluding the iv).
struct DefUsePos {
  int first_def = INT32_MAX;
  int first_use = INT32_MAX;
  [[nodiscard]] bool written() const { return first_def != INT32_MAX; }
  [[nodiscard]] bool read() const { return first_use != INT32_MAX; }
  [[nodiscard]] bool killed_before_use() const {
    return !read() || (written() && first_def < first_use);
  }
};

std::map<std::string, DefUsePos> scalar_positions(
    const std::vector<const Stmt*>& body, const std::string& iv) {
  std::map<std::string, DefUsePos> out;
  for (int k = 0; k < int(body.size()); ++k) {
    analysis::AccessSet set =
        analysis::collect_accesses(*body[std::size_t(k)]);
    for (const auto& s : set.scalars) {
      if (s.name == iv) continue;
      DefUsePos& p = out[s.name];
      if (s.is_write) {
        p.first_def = std::min(p.first_def, k);
      } else {
        p.first_use = std::min(p.first_use, k);
      }
    }
  }
  return out;
}

}  // namespace

XformOutcome fuse(const ForStmt& first, const ForStmt& second) {
  XformOutcome out;
  std::string reason;
  auto a = detail::shape_of(first, &reason);
  if (!a) {
    out.reason = "first loop not canonical: " + reason;
    return out;
  }
  auto b = detail::shape_of(second, &reason);
  if (!b) {
    out.reason = "second loop not canonical: " + reason;
    return out;
  }
  if (!detail::body_is_simple(*a->loop) || !detail::body_is_simple(*b->loop)) {
    out.reason = "loop bodies must be simple statement lists";
    return out;
  }

  // Conformability: identical bounds/step/cmp after unifying the iv name.
  if (b->info.iv != a->info.iv) {
    // The second loop's counter is rewritten to the first's; reject when
    // that would capture an unrelated use of the name.
    for (const std::string& n : scalar_names_used(*b->loop)) {
      if (n == a->info.iv) {
        out.reason = "second loop already uses '" + a->info.iv +
                     "'; cannot unify induction variables";
        return out;
      }
    }
    rename_var(*b->loop, b->info.iv, a->info.iv);
    auto reanalyzed = sema::analyze_loop(*b->loop, &reason);
    if (!reanalyzed) {
      out.reason = "iv unification failed: " + reason;
      return out;
    }
    b->info = *reanalyzed;
  }
  if (a->info.step != b->info.step || a->info.cmp != b->info.cmp ||
      !equal(*a->info.lower, *b->info.lower) ||
      !equal(*a->info.upper, *b->info.upper)) {
    out.reason = "iteration spaces differ";
    return out;
  }

  std::vector<const Stmt*> body1 = detail::body_ptrs(*a->loop);
  std::vector<const Stmt*> body2 = detail::body_ptrs(*b->loop);

  // Scalar legality (see header): no value may flow through a scalar from
  // one loop into the other across the fusion point.
  {
    auto pos1 = scalar_positions(body1, a->info.iv);
    auto pos2 = scalar_positions(body2, a->info.iv);
    for (const auto& [name, p2] : pos2) {
      auto it = pos1.find(name);
      if (it == pos1.end()) continue;
      const DefUsePos& p1 = it->second;
      if (p1.written() && p2.read() && !p2.killed_before_use()) {
        out.reason = "scalar '" + name + "' flows from loop 1 into loop 2";
        return out;
      }
      if (p2.written() && p1.read()) {
        out.reason = "scalar '" + name + "' written in loop 2 is read in loop 1";
        return out;
      }
    }
  }

  // Array legality: a dependence between the loops must not become
  // backward-carried after fusion (delta = iter2 - iter1 must be >= 0).
  for (const Stmt* s1 : body1) {
    analysis::AccessSet set1 = analysis::collect_accesses(*s1);
    for (const Stmt* s2 : body2) {
      analysis::AccessSet set2 = analysis::collect_accesses(*s2);
      for (const auto& r1 : set1.arrays) {
        for (const auto& r2 : set2.arrays) {
          if (!r1.is_write && !r2.is_write) continue;
          auto res = analysis::test_dependence(r1, r2, a->info.iv,
                                               a->info.step);
          switch (res.kind) {
            case analysis::DepTestResult::Kind::Independent:
              break;
            case analysis::DepTestResult::Kind::Unknown:
              out.reason = "unanalyzable dependence through '" + r1.array +
                           "' blocks fusion";
              return out;
            case analysis::DepTestResult::Kind::Distance:
              if (res.distance < 0) {
                out.reason = "fusion-preventing dependence through '" +
                             r1.array + "' (distance " +
                             std::to_string(res.distance) + ")";
                return out;
              }
              break;
          }
        }
      }
    }
  }

  // Fuse: first loop's header, concatenated bodies.
  auto* block1 = dyn_cast<BlockStmt>(a->loop->body.get());
  auto* block2 = dyn_cast<BlockStmt>(b->loop->body.get());
  for (StmtPtr& s : block2->stmts) block1->stmts.push_back(std::move(s));
  out.replacement.push_back(std::move(a->owned));
  return out;
}

XformOutcome distribute(const ForStmt& loop, int cut) {
  XformOutcome out;
  std::string reason;
  auto shape = detail::shape_of(loop, &reason);
  if (!shape) {
    out.reason = "loop not canonical: " + reason;
    return out;
  }
  if (!detail::body_is_simple(*shape->loop)) {
    out.reason = "body must be a simple statement list";
    return out;
  }
  std::vector<const Stmt*> body = detail::body_ptrs(*shape->loop);
  if (cut <= 0 || cut >= int(body.size())) {
    out.reason = "cut index out of range";
    return out;
  }

  // Legality: no dependence (of any kind or distance) from the second
  // group back into the first — after distribution every iteration of
  // group 1 precedes all of group 2.
  analysis::Ddg ddg =
      analysis::build_ddg(body, shape->info.iv, shape->info.step);
  for (const analysis::DepEdge& e : ddg.edges) {
    if (e.src >= cut && e.dst < cut) {
      out.reason = "dependence from statement " + std::to_string(e.src) +
                   " back to statement " + std::to_string(e.dst) +
                   " via '" + e.var + "' blocks distribution";
      return out;
    }
    bool unknown = false;
    for (const auto& d : e.distances)
      if (!d.known) unknown = true;
    if (unknown && ((e.src < cut) != (e.dst < cut))) {
      out.reason = "unanalyzable cross-group dependence via '" + e.var + "'";
      return out;
    }
  }

  // Emit the two loops.
  auto* block = dyn_cast<BlockStmt>(shape->loop->body.get());
  std::vector<StmtPtr> group2;
  for (int k = cut; k < int(block->stmts.size()); ++k)
    group2.push_back(std::move(block->stmts[std::size_t(k)]));
  block->stmts.resize(std::size_t(cut));

  auto second = std::make_unique<ForStmt>(
      shape->loop->init->clone(), shape->loop->cond->clone(),
      shape->loop->step->clone(),
      std::make_unique<BlockStmt>(std::move(group2)));
  out.replacement.push_back(std::move(shape->owned));
  out.replacement.push_back(std::move(second));
  return out;
}

}  // namespace slc::xform
