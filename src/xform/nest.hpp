// Shared perfect-2-nest analysis for interchange and tiling.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/access.hpp"
#include "ast/ast.hpp"
#include "sema/loop_info.hpp"

namespace slc::xform::detail {

/// A cloned, validated perfect 2-level rectangular nest. `outer`/`inner`
/// point into `owned`.
struct Nest {
  ast::StmtPtr owned;
  ast::ForStmt* outer = nullptr;
  ast::ForStmt* inner = nullptr;
  sema::LoopInfo outer_info;
  sema::LoopInfo inner_info;
};

/// Clones and validates: both levels canonical, inner body a simple
/// statement list, inner bounds independent of the outer iv
/// (rectangular), and every scalar written in the body is a
/// def-before-use temporary (no scalar carried across iterations, which
/// neither interchange nor tiling preserves in general).
[[nodiscard]] std::optional<Nest> analyze_nest(const ast::ForStmt& outer,
                                               std::string* reason);

/// All array accesses of the nest's (inner) body.
[[nodiscard]] std::vector<analysis::ArrayAccess> nest_accesses(
    const Nest& nest);

}  // namespace slc::xform::detail
