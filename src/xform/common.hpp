// Internal helpers shared by the loop transformations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.hpp"
#include "sema/loop_info.hpp"

namespace slc::xform::detail {

/// A cloned loop together with its canonical-shape analysis; `info`
/// points into `owned`.
struct LoopShape {
  ast::StmtPtr owned;
  ast::ForStmt* loop = nullptr;
  sema::LoopInfo info;
};

/// Clones and analyzes; nullopt (with reason) when not canonical.
[[nodiscard]] std::optional<LoopShape> shape_of(const ast::ForStmt& loop,
                                                std::string* reason);

/// Body statements of a loop as raw pointers (block flattened one level).
[[nodiscard]] std::vector<const ast::Stmt*> body_ptrs(
    const ast::ForStmt& loop);

/// True when every body statement is a simple MI (assign / expr stmt).
[[nodiscard]] bool body_is_simple(const ast::ForStmt& loop);

}  // namespace slc::xform::detail
