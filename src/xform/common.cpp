#include "xform/common.hpp"

namespace slc::xform::detail {

using namespace ast;

std::optional<LoopShape> shape_of(const ForStmt& loop, std::string* reason) {
  LoopShape shape;
  shape.owned = loop.clone();
  shape.loop = dyn_cast<ForStmt>(shape.owned.get());
  auto info = sema::analyze_loop(*shape.loop, reason);
  if (!info) return std::nullopt;
  shape.info = *info;
  return shape;
}

std::vector<const Stmt*> body_ptrs(const ForStmt& loop) {
  std::vector<const Stmt*> out;
  if (const auto* b = dyn_cast<BlockStmt>(loop.body.get())) {
    for (const StmtPtr& s : b->stmts) out.push_back(s.get());
  } else if (loop.body) {
    out.push_back(loop.body.get());
  }
  return out;
}

bool body_is_simple(const ForStmt& loop) {
  for (const Stmt* s : body_ptrs(loop))
    if (s->kind() != StmtKind::Assign && s->kind() != StmtKind::ExprStmt)
      return false;
  return true;
}

}  // namespace slc::xform::detail
