// The worker end of the distributed sweep: a loop over stdin lease
// commands that measures the leased rows one at a time and streams each
// result back as a flushed protocol row line. `slc --suite ...
// --dist-worker=ID` lands here after the CLI resolves the suite and
// backend exactly the way an --isolate child does, so a worker-computed
// row is byte-identical to an in-process one.
//
// Worker-level fault injection hooks in per row with subject
// "<worker-id>:<kernel>" at Stage::Worker (see support/fault.hpp):
// crash/hang faults take the process down mid-lease (the coordinator's
// heartbeat deadline reclaims the lease), delay models a straggler
// (the coordinator steals from it), and drop swallows the row's result
// line entirely (the coordinator re-queues it when the lease's done
// event arrives short).
#pragma once

#include <string>
#include <vector>

#include "driver/pipeline.hpp"
#include "kernels/kernels.hpp"

namespace slc::dist {

struct WorkerOptions {
  std::string worker_id;
  std::vector<kernels::Kernel> kernels;
  driver::Backend backend;
  driver::CompareOptions compare;  // jobs forced to 1; on_row ignored
};

/// Runs the stdin/stdout lease loop until a quit command or EOF.
/// Returns a process exit code (0 on a clean quit/EOF, sysexits-style
/// 65 on a malformed lease range).
int run_worker(const WorkerOptions& options);

}  // namespace slc::dist
