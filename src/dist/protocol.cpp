#include "dist/protocol.hpp"

#include "driver/journal.hpp"
#include "support/json.hpp"

namespace slc::dist::protocol {

namespace json = support::json;

std::string lease_command(const Lease& lease) {
  json::Value v = json::Value::object();
  v.set("cmd", json::Value::string("lease"));
  v.set("lease", json::Value::number(lease.id));
  v.set("first", json::Value::number(std::uint64_t(lease.first)));
  v.set("last", json::Value::number(std::uint64_t(lease.last)));
  return v.dump();
}

std::string quit_command() { return "{\"cmd\":\"quit\"}"; }

Command parse_command(std::string_view line) {
  Command cmd;
  auto parsed = json::parse(line);
  if (!parsed || !parsed->is_object()) return cmd;
  const json::Value* what = parsed->find("cmd");
  if (what == nullptr) return cmd;
  if (what->as_string() == "quit") {
    cmd.kind = Command::Kind::Quit;
    return cmd;
  }
  if (what->as_string() != "lease") return cmd;
  const json::Value* id = parsed->find("lease");
  const json::Value* first = parsed->find("first");
  const json::Value* last = parsed->find("last");
  if (id == nullptr || first == nullptr || last == nullptr) return cmd;
  cmd.lease.id = id->as_u64();
  cmd.lease.first = std::size_t(first->as_u64());
  cmd.lease.last = std::size_t(last->as_u64());
  if (cmd.lease.last < cmd.lease.first) return cmd;
  cmd.kind = Command::Kind::Lease;
  return cmd;
}

std::string hello_line(const std::string& worker_id, int pid) {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("hello"));
  v.set("worker", json::Value::string(worker_id));
  v.set("pid", json::Value::number(std::int64_t(pid)));
  return v.dump();
}

std::string heartbeat_line(const std::string& worker_id) {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("hb"));
  v.set("worker", json::Value::string(worker_id));
  return v.dump();
}

std::string row_line(std::uint64_t lease, std::size_t index,
                     const driver::ComparisonRow& row) {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("row"));
  v.set("lease", json::Value::number(lease));
  v.set("index", json::Value::number(std::uint64_t(index)));
  v.set("row", driver::journal::row_to_json(row));
  return v.dump();
}

std::string done_line(std::uint64_t lease, std::size_t computed) {
  json::Value v = json::Value::object();
  v.set("type", json::Value::string("done"));
  v.set("lease", json::Value::number(lease));
  v.set("computed", json::Value::number(std::uint64_t(computed)));
  return v.dump();
}

Event parse_event(std::string_view line) {
  Event ev;
  auto parsed = json::parse(line);
  if (!parsed || !parsed->is_object()) return ev;
  const json::Value* type = parsed->find("type");
  if (type == nullptr) return ev;
  const std::string& t = type->as_string();
  if (t == "hello") {
    const json::Value* worker = parsed->find("worker");
    if (worker == nullptr || !worker->is_string()) return ev;
    ev.worker = worker->as_string();
    if (const json::Value* pid = parsed->find("pid")) {
      ev.pid = int(pid->as_i64());
    }
    ev.kind = Event::Kind::Hello;
    return ev;
  }
  if (t == "hb") {
    if (const json::Value* worker = parsed->find("worker")) {
      ev.worker = worker->as_string();
    }
    ev.kind = Event::Kind::Heartbeat;
    return ev;
  }
  if (t == "row") {
    const json::Value* lease = parsed->find("lease");
    const json::Value* index = parsed->find("index");
    const json::Value* row = parsed->find("row");
    if (lease == nullptr || index == nullptr || row == nullptr) return ev;
    auto parsed_row = driver::journal::row_from_json(*row);
    if (!parsed_row) return ev;
    ev.lease = lease->as_u64();
    ev.index = std::size_t(index->as_u64());
    ev.row = std::move(*parsed_row);
    ev.kind = Event::Kind::Row;
    return ev;
  }
  if (t == "done") {
    const json::Value* lease = parsed->find("lease");
    if (lease == nullptr) return ev;
    ev.lease = lease->as_u64();
    if (const json::Value* computed = parsed->find("computed")) {
      ev.computed = std::size_t(computed->as_u64());
    }
    ev.kind = Event::Kind::Done;
    return ev;
  }
  return ev;
}

}  // namespace slc::dist::protocol
