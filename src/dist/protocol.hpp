// The distributed-sweep wire protocol: NDJSON between the coordinator
// (src/dist/coordinator.hpp) and its worker endpoints (slc processes
// started with --dist-worker=ID).
//
// This generalizes the --isolate `--child-rows` transport from a
// one-shot argv assignment to a long-lived conversation, so one worker
// process amortizes startup across many leases:
//
//   coordinator -> worker (stdin):
//     {"cmd":"lease","lease":7,"first":12,"last":15}
//     {"cmd":"quit"}
//   worker -> coordinator (stdout, one flushed line each):
//     {"type":"hello","worker":"w3","pid":4242}
//     {"type":"hb","worker":"w3"}                  before every row
//     {"type":"row","lease":7,"index":12,"row":{...}}
//     {"type":"done","lease":7,"computed":4}
//
// The row payload is the journal's lossless ComparisonRow serialization
// (driver/journal.hpp), so a row computed by a remote worker is
// indistinguishable from one computed in-process — the same property the
// --isolate children already have. Any line the coordinator cannot
// parse is counted and dropped (torn-tail tolerance: a worker killed
// mid-write must not poison the sweep); liveness is inferred from line
// arrival times, so a worker hung inside a row goes silent and trips
// the heartbeat deadline without any side channel.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "driver/pipeline.hpp"

namespace slc::dist::protocol {

/// One shard assignment: rows [first, last] of the suite, identified by
/// a coordinator-unique lease id (steals clone the remaining rows of a
/// lease under a fresh id, so late duplicates are attributable).
struct Lease {
  std::uint64_t id = 0;
  std::size_t first = 0;
  std::size_t last = 0;
};

struct Command {
  enum class Kind : std::uint8_t { Lease, Quit, Invalid };
  Kind kind = Kind::Invalid;
  Lease lease;
};

[[nodiscard]] std::string lease_command(const Lease& lease);
[[nodiscard]] std::string quit_command();
[[nodiscard]] Command parse_command(std::string_view line);

struct Event {
  enum class Kind : std::uint8_t { Hello, Heartbeat, Row, Done, Invalid };
  Kind kind = Kind::Invalid;
  std::string worker;               // hello / heartbeat
  int pid = 0;                      // hello
  std::uint64_t lease = 0;          // row / done
  std::size_t index = 0;            // row
  driver::ComparisonRow row;        // row
  std::size_t computed = 0;         // done: rows this lease reported
};

[[nodiscard]] std::string hello_line(const std::string& worker_id, int pid);
[[nodiscard]] std::string heartbeat_line(const std::string& worker_id);
[[nodiscard]] std::string row_line(std::uint64_t lease, std::size_t index,
                                   const driver::ComparisonRow& row);
[[nodiscard]] std::string done_line(std::uint64_t lease,
                                    std::size_t computed);
[[nodiscard]] Event parse_event(std::string_view line);

}  // namespace slc::dist::protocol
