// The fault-tolerant distributed sweep coordinator (`slc --suite ...
// --workers=N`): generalizes the --isolate supervisor from one-shot
// shard children to a pool of persistent worker processes speaking the
// dist protocol (dist/protocol.hpp), with the fault-tolerance loop the
// one-shot model cannot express:
//
//   lease    — rows are handed out in contiguous leases; a lease is a
//              loan, not a transfer: the coordinator remembers every
//              outstanding row and can re-issue it.
//   heartbeat— workers emit a line before every row; liveness is the
//              time since a worker's last line, so crashes (pipe EOF)
//              and hangs (silence past the deadline) are both detected
//              without any side channel.
//   reclaim  — rows leased to a dead or hung worker are re-queued
//              (bounded by max_row_attempts) and the worker is
//              replaced, up to a respawn budget.
//   steal    — when the queue drains, an idle worker clones the
//              remaining rows of the slowest in-flight lease
//              (straggler mitigation); the first result to arrive
//              wins, late duplicates are counted and dropped.
//   commit   — at-most-once per row through the journal: a row is
//              committed exactly once no matter how many workers
//              eventually report it, and every commit is a flushed
//              journal append, so kill -9 of the *coordinator* is
//              resumable too.
//
// Rows that exhaust their attempt budget — and every row left over if
// the whole pool dies — fall back to one-shot isolate-style children
// (full, then base-only) so a sweep always terminates with n rows:
// zero lost rows is an invariant, not a best case.
//
// Differential re-runs (`--diff-since=old.jsonl`): rows whose journal
// key (kernel source ⊕ options ⊕ oracle ⊕ binary version) matches an
// entry of a previous sweep's journal are replayed byte-identically
// into the new journal; only changed/new keys are re-measured.
#pragma once

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "driver/pipeline.hpp"
#include "kernels/kernels.hpp"

namespace slc::dist {

struct Options {
  /// Path to the slc binary to spawn (normally /proc/self/exe).
  std::string slc_exe;
  /// Pass-through arguments for workers: the parent's argv minus the
  /// coordinator-level flags, plus everything (--suite, --corpus-size,
  /// --fault) a worker needs to rebuild the identical kernel vector.
  std::vector<std::string> child_args;
  /// Worker pool size.
  int workers = 2;
  /// Rows per lease. Small leases re-execute less after a loss; large
  /// leases amortize protocol chatter.
  int lease_rows = 4;
  /// A worker silent for longer than this is declared dead: SIGKILLed,
  /// its lease reclaimed, a replacement spawned.
  std::uint64_t heartbeat_timeout_ms = 10000;
  /// Once the queue is empty, an in-flight lease older than this has
  /// its remaining rows cloned to an idle worker (one steal per lease).
  std::uint64_t steal_after_ms = 2000;
  /// Re-queue budget per row before it is handed to the serial
  /// fallback path.
  int max_row_attempts = 3;
  /// Total replacement workers the sweep may spawn beyond the initial
  /// pool (a crash-looping fleet must not fork-bomb).
  int max_respawns = 16;
  /// Per-worker address-space cap in MiB. 0 = none.
  std::uint64_t max_rss_mb = 0;
  /// Journal key context (the CLI passes the joined signature args).
  std::string options_signature;
  /// Oracle backend identity mixed into the journal key.
  std::string oracle_identity = "interp";
  /// Exact-oracle identity (exact::exact_identity); "" = exact off.
  std::string exact_identity;
  /// Journal path; empty disables journaling (and resume/diff).
  std::string journal_path;
  /// Replay rows already in journal_path instead of recomputing.
  bool resume = false;
  /// Differential re-run: a previous sweep's journal whose
  /// matching-key rows are replayed (and re-appended to the fresh
  /// journal); only changed keys are measured. Mutually exclusive
  /// with resume.
  std::string seed_journal;
  /// Polled in the scheduling loop; when set the coordinator stops
  /// granting, kills the pool, flushes the journal, and returns
  /// interrupted = true.
  const volatile std::sig_atomic_t* interrupted = nullptr;
};

/// Scheduler counters, printed by the CLI and asserted by the chaos CI
/// job (reclaims>0, steals>0) and the dist tests.
struct Stats {
  std::size_t workers_spawned = 0;   // initial pool + respawns
  std::size_t workers_lost = 0;      // EOF'd or heartbeat-killed
  std::size_t leases_granted = 0;    // includes steal leases
  std::size_t reclaims = 0;          // rows reclaimed from lost workers
  std::size_t steals = 0;            // leases cloned off stragglers
  std::size_t stolen_rows = 0;
  std::size_t duplicate_rows = 0;    // results for already-committed rows
  std::size_t requeued_rows = 0;     // rows a finished lease never
                                     // reported (drop fault / lost line)
  std::size_t fallback_rows = 0;     // rows measured by the serial path
  std::size_t degraded_rows = 0;     // fallback rows degraded to base
};

struct Outcome {
  std::vector<driver::ComparisonRow> rows;  // input order
  std::vector<std::uint8_t> completed;      // per row
  std::size_t resumed = 0;       // --resume journal replays
  std::size_t diff_reused = 0;   // --diff-since seed replays
  Stats stats;
  bool interrupted = false;
  std::vector<std::string> notes;  // coordinator log, one line each
};

[[nodiscard]] Outcome run_suite(const std::vector<kernels::Kernel>& kernels,
                                const Options& options);

}  // namespace slc::dist
