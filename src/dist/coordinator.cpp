#include "dist/coordinator.hpp"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dist/protocol.hpp"
#include "driver/journal.hpp"
#include "service/socket.hpp"
#include "support/failure.hpp"
#include "support/json.hpp"
#include "support/subprocess.hpp"

namespace slc::dist {

namespace json = support::json;
namespace subprocess = support::subprocess;
using driver::ComparisonRow;
using support::Failure;
using support::FailureKind;
using support::Stage;
using Clock = std::chrono::steady_clock;

namespace {

enum class SlotState : std::uint8_t { Starting, Idle, Busy, Dead };

/// One worker endpoint. Slots are never reused: a replacement worker
/// gets a fresh slot (and thus a fresh id), so fault filters pinned to
/// "w0:" never follow a respawn and late events stay attributable.
struct Slot {
  std::string id;
  subprocess::Child child;
  std::thread reader;
  SlotState state = SlotState::Starting;
  std::uint64_t lease = 0;  // active lease id, 0 = none
  Clock::time_point last_seen;
};

/// An in-flight lease: the loaned rows not yet committed or reported.
struct LeaseInfo {
  std::uint64_t id = 0;
  std::size_t slot = 0;
  std::vector<std::size_t> outstanding;  // sorted
  Clock::time_point granted;
  bool stolen = false;  // this lease has already been cloned once
};

/// A line (or EOF) from a worker's stdout, forwarded by its reader
/// thread to the scheduler.
struct Incoming {
  std::size_t slot = 0;
  bool eof = false;
  protocol::Event event;
};

struct Ctx {
  Ctx(const std::vector<kernels::Kernel>& k, const Options& o)
      : kernels(k), opts(o) {}

  const std::vector<kernels::Kernel>& kernels;
  const Options& opts;
  std::vector<std::string> keys;
  driver::journal::Journal jnl;
  Outcome out;

  std::vector<Slot> slots;
  std::unordered_map<std::uint64_t, LeaseInfo> leases;
  std::uint64_t next_lease = 1;

  std::deque<std::size_t> pending;     // rows awaiting a lease
  std::vector<std::size_t> exhausted;  // rows past max_row_attempts
  std::vector<int> attempts;
  std::vector<int> last_slot;          // last slot a row was leased to
  std::vector<std::optional<Failure>> last_failure;
  std::size_t committed = 0;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Incoming> inbox;
};

void note(Ctx& ctx, std::string line) {
  ctx.out.notes.push_back(std::move(line));
}

std::uint64_t ms_since(Clock::time_point t) {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - t)
                           .count());
}

void reader_main(Ctx* ctx, std::size_t slot_idx, int fd) {
  service::socket::LineReader reader(fd);
  std::string line;
  while (reader.next_line(&line)) {
    Incoming in;
    in.slot = slot_idx;
    in.event = protocol::parse_event(line);
    {
      std::lock_guard<std::mutex> lock(ctx->mu);
      ctx->inbox.push_back(std::move(in));
    }
    ctx->cv.notify_one();
  }
  Incoming eof;
  eof.slot = slot_idx;
  eof.eof = true;
  {
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->inbox.push_back(std::move(eof));
  }
  ctx->cv.notify_one();
}

bool spawn_worker(Ctx& ctx) {
  std::size_t idx = ctx.slots.size();
  ctx.slots.emplace_back();
  Slot& slot = ctx.slots.back();
  slot.id = "w" + std::to_string(idx);
  slot.last_seen = Clock::now();

  subprocess::Child::SpawnOptions spawn;
  spawn.argv.push_back(ctx.opts.slc_exe);
  spawn.argv.insert(spawn.argv.end(), ctx.opts.child_args.begin(),
                    ctx.opts.child_args.end());
  spawn.argv.push_back("--dist-worker=" + slot.id);
  spawn.max_rss_mb = ctx.opts.max_rss_mb;

  std::string error;
  if (!slot.child.spawn(spawn, &error)) {
    slot.state = SlotState::Dead;
    note(ctx, "dist: spawn of " + slot.id + " failed — " + error);
    return false;
  }
  slot.state = SlotState::Starting;
  ++ctx.out.stats.workers_spawned;
  slot.reader = std::thread(reader_main, &ctx, idx, slot.child.stdout_fd());
  return true;
}

std::size_t live_workers(const Ctx& ctx) {
  std::size_t n = 0;
  for (const Slot& s : ctx.slots)
    if (s.state != SlotState::Dead) ++n;
  return n;
}

/// Commits a row at most once; later arrivals (steal duplicates, a
/// straggler finishing after its lease was reclaimed) are counted and
/// dropped. Every first commit is a flushed journal append.
void commit_row(Ctx& ctx, std::size_t i, ComparisonRow row) {
  if (ctx.out.completed[i] != 0) {
    ++ctx.out.stats.duplicate_rows;
    return;
  }
  if (ctx.jnl.active()) ctx.jnl.append(ctx.keys[i], row);
  ctx.out.rows[i] = std::move(row);
  ctx.out.completed[i] = 1;
  ++ctx.committed;
  for (auto& [id, lease] : ctx.leases) {
    auto it = std::find(lease.outstanding.begin(), lease.outstanding.end(), i);
    if (it != lease.outstanding.end()) lease.outstanding.erase(it);
  }
}

/// Re-queues a row lost with its worker (or dropped by a finished
/// lease). Attempts are bounded: past the budget the row goes to the
/// serial fallback instead of bouncing between dying workers forever.
void requeue_row(Ctx& ctx, std::size_t i, Failure cause) {
  if (ctx.out.completed[i] != 0) return;
  ctx.last_failure[i] = std::move(cause);
  if (++ctx.attempts[i] >= ctx.opts.max_row_attempts) {
    ctx.exhausted.push_back(i);
    note(ctx, "dist: row " + std::to_string(i) + " (" +
                  ctx.kernels[i].name + ") exhausted " +
                  std::to_string(ctx.attempts[i]) +
                  " attempts — deferred to serial fallback");
    return;
  }
  ctx.pending.push_back(i);
}

/// A worker is gone (pipe EOF or heartbeat deadline): reclaim every
/// outstanding row of its lease and retire the slot.
void lose_worker(Ctx& ctx, std::size_t slot_idx, const Failure& cause) {
  Slot& slot = ctx.slots[slot_idx];
  if (slot.state == SlotState::Dead) return;
  slot.child.kill_group();
  slot.state = SlotState::Dead;
  ++ctx.out.stats.workers_lost;

  if (slot.lease != 0) {
    auto it = ctx.leases.find(slot.lease);
    if (it != ctx.leases.end()) {
      std::vector<std::size_t> lost = it->second.outstanding;
      ctx.leases.erase(it);
      for (std::size_t i : lost) {
        ++ctx.out.stats.reclaims;
        Failure f = cause;
        f.kernel = ctx.kernels[i].name;
        requeue_row(ctx, i, std::move(f));
      }
      if (!lost.empty())
        note(ctx, "dist: reclaimed " + std::to_string(lost.size()) +
                      " row(s) from " + slot.id);
    }
    slot.lease = 0;
  }
}

/// Takes the next contiguous run of pending rows, starting from a row
/// whose previous worker is not `slot_idx` — a row dropped or lost by
/// one worker must land on a different one. When every pending row was
/// last leased to this very slot and another worker is alive, returns
/// empty: re-granting would just burn the rows' attempt budgets against
/// the same fault (the other worker takes them when it goes idle).
std::vector<std::size_t> take_run(Ctx& ctx, std::size_t slot_idx) {
  if (ctx.pending.empty()) return {};
  std::size_t pick = ctx.pending.size();
  for (std::size_t p = 0; p < ctx.pending.size(); ++p) {
    int prev = ctx.last_slot[ctx.pending[p]];
    if (prev < 0 || std::size_t(prev) != slot_idx) {
      pick = p;
      break;
    }
  }
  if (pick == ctx.pending.size()) {
    for (std::size_t s = 0; s < ctx.slots.size(); ++s)
      if (s != slot_idx && ctx.slots[s].state != SlotState::Dead) return {};
    pick = 0;  // this is the only worker left — no better option
  }
  std::vector<std::size_t> run;
  run.push_back(ctx.pending[pick]);
  ctx.pending.erase(ctx.pending.begin() + long(pick));
  // Extend with consecutive indices sitting at the same queue position
  // (the common case: the initial 0..n-1 fill).
  std::size_t limit = std::size_t(std::max(1, ctx.opts.lease_rows));
  while (run.size() < limit && pick < ctx.pending.size() &&
         ctx.pending[pick] == run.back() + 1) {
    run.push_back(ctx.pending[pick]);
    ctx.pending.erase(ctx.pending.begin() + long(pick));
  }
  return run;
}

void grant_lease(Ctx& ctx, std::size_t slot_idx,
                 std::vector<std::size_t> rows, bool is_steal) {
  Slot& slot = ctx.slots[slot_idx];
  protocol::Lease lease;
  lease.id = ctx.next_lease++;
  lease.first = rows.front();
  lease.last = rows.back();

  if (!slot.child.write_line(protocol::lease_command(lease))) {
    // The worker died before we could talk to it; put the rows back
    // without burning an attempt (they were never tried there) and let
    // the EOF path retire the slot.
    for (auto it = rows.rbegin(); it != rows.rend(); ++it)
      ctx.pending.push_front(*it);
    return;
  }

  LeaseInfo info;
  info.id = lease.id;
  info.slot = slot_idx;
  info.outstanding = rows;
  info.granted = Clock::now();
  ctx.leases[lease.id] = std::move(info);
  for (std::size_t i : rows) ctx.last_slot[i] = int(slot_idx);
  slot.state = SlotState::Busy;
  slot.lease = lease.id;
  // A worker may have sat idle longer than the heartbeat budget; its
  // silence clock starts at the grant, not at its last event.
  slot.last_seen = Clock::now();
  ++ctx.out.stats.leases_granted;
  if (is_steal) {
    ++ctx.out.stats.steals;
    ctx.out.stats.stolen_rows += rows.size();
  }
}

void handle_event(Ctx& ctx, Incoming in) {
  if (in.slot >= ctx.slots.size()) return;
  Slot& slot = ctx.slots[in.slot];

  if (in.eof) {
    if (slot.state == SlotState::Dead) return;
    Failure cause;
    int status = 0;
    if (slot.child.try_wait(&status) && WIFSIGNALED(status)) {
      cause = support::make_failure(
          Stage::Worker, FailureKind::ChildSignal,
          "worker " + slot.id + " died on signal " +
              std::to_string(WTERMSIG(status)));
    } else {
      cause = support::make_failure(Stage::Worker, FailureKind::ChildExit,
                                    "worker " + slot.id + " exited");
    }
    note(ctx, "dist: lost " + slot.id + " (" + cause.message + ")");
    lose_worker(ctx, in.slot, cause);
    return;
  }

  slot.last_seen = Clock::now();
  switch (in.event.kind) {
    case protocol::Event::Kind::Hello:
      if (slot.state == SlotState::Starting) slot.state = SlotState::Idle;
      break;
    case protocol::Event::Kind::Heartbeat:
      break;
    case protocol::Event::Kind::Row:
      commit_row(ctx, in.event.index, std::move(in.event.row));
      break;
    case protocol::Event::Kind::Done: {
      auto it = ctx.leases.find(in.event.lease);
      if (it != ctx.leases.end()) {
        // Rows the lease finished without reporting were dropped on the
        // wire (or swallowed by a drop fault): re-queue them elsewhere.
        std::vector<std::size_t> dropped = it->second.outstanding;
        ctx.leases.erase(it);
        for (std::size_t i : dropped) {
          ++ctx.out.stats.requeued_rows;
          Failure f = support::make_failure(
              Stage::Worker, FailureKind::Unknown,
              "worker " + slot.id +
                  " finished its lease without reporting the row");
          f.kernel = ctx.kernels[i].name;
          requeue_row(ctx, i, std::move(f));
        }
        if (!dropped.empty())
          note(ctx, "dist: " + slot.id + " dropped " +
                        std::to_string(dropped.size()) +
                        " row(s) — re-queued");
      }
      if (slot.state == SlotState::Busy && slot.lease == in.event.lease) {
        slot.lease = 0;
        slot.state = SlotState::Idle;
      }
      break;
    }
    case protocol::Event::Kind::Invalid:
      break;  // torn line from a dying worker; the EOF will follow
  }
}

void scan_liveness(Ctx& ctx) {
  if (ctx.opts.heartbeat_timeout_ms == 0) return;
  for (std::size_t s = 0; s < ctx.slots.size(); ++s) {
    Slot& slot = ctx.slots[s];
    if (slot.state != SlotState::Busy && slot.state != SlotState::Starting)
      continue;
    if (ms_since(slot.last_seen) <= ctx.opts.heartbeat_timeout_ms) continue;
    Failure cause = support::make_failure(
        Stage::Worker, FailureKind::ChildTimeout,
        "worker " + slot.id + " missed the heartbeat deadline (" +
            std::to_string(ctx.opts.heartbeat_timeout_ms) + " ms)");
    note(ctx, "dist: " + slot.id + " silent past the heartbeat deadline — "
                                   "killed");
    lose_worker(ctx, s, cause);
  }
}

void scan_steal(Ctx& ctx) {
  if (!ctx.pending.empty() || ctx.opts.steal_after_ms == 0) return;
  for (std::size_t s = 0; s < ctx.slots.size(); ++s) {
    if (ctx.slots[s].state != SlotState::Idle) continue;
    // Oldest un-stolen lease with work left, not owned by this slot.
    LeaseInfo* victim = nullptr;
    for (auto& [id, lease] : ctx.leases) {
      if (lease.stolen || lease.outstanding.empty()) continue;
      if (lease.slot == s) continue;
      if (ms_since(lease.granted) <= ctx.opts.steal_after_ms) continue;
      if (victim == nullptr || lease.granted < victim->granted)
        victim = &lease;
    }
    if (victim == nullptr) return;
    // Clone the victim's first contiguous run; the victim keeps its
    // copy — first commit wins, the loser is a counted duplicate.
    std::vector<std::size_t> run;
    run.push_back(victim->outstanding.front());
    for (std::size_t k = 1; k < victim->outstanding.size(); ++k) {
      if (victim->outstanding[k] != run.back() + 1) break;
      run.push_back(victim->outstanding[k]);
    }
    victim->stolen = true;
    note(ctx, "dist: stealing " + std::to_string(run.size()) +
                  " row(s) from straggler " + ctx.slots[victim->slot].id +
                  " for " + ctx.slots[s].id);
    grant_lease(ctx, s, std::move(run), /*is_steal=*/true);
  }
}

/// One isolate-style one-shot child for row `i`.
subprocess::RunResult run_fallback_child(Ctx& ctx, std::size_t i,
                                         bool base_only) {
  subprocess::RunOptions run;
  run.argv.push_back(ctx.opts.slc_exe);
  run.argv.insert(run.argv.end(), ctx.opts.child_args.begin(),
                  ctx.opts.child_args.end());
  run.argv.push_back("--child-rows=" + std::to_string(i));
  if (base_only) run.argv.push_back("--child-base-only");
  run.timeout_ms = ctx.opts.heartbeat_timeout_ms;
  run.max_rss_mb = ctx.opts.max_rss_mb;
  return subprocess::run(run);
}

std::optional<ComparisonRow> parse_child_row(const std::string& out,
                                             std::size_t want) {
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<json::Value> v = json::parse(line);
    if (!v) continue;
    const json::Value* index = v->find("index");
    const json::Value* row = v->find("row");
    if (index == nullptr || row == nullptr) continue;
    if (std::size_t(index->as_u64()) != want) continue;
    if (auto parsed = driver::journal::row_from_json(*row)) return parsed;
  }
  return std::nullopt;
}

/// Terminal safety net: measures a row in a fresh one-shot child (full
/// attempt, then base-only), exactly like the --isolate crash path.
/// Worker-stage faults do not re-fire here — the child runs the
/// --child-rows protocol, not the worker loop — so a row that only ever
/// died *with its workers* still gets real numbers.
void fallback_row(Ctx& ctx, std::size_t i) {
  Failure cause = ctx.last_failure[i].value_or(support::make_failure(
      Stage::Worker, FailureKind::Unknown, "no worker reported the row"));
  cause.kernel = ctx.kernels[i].name;
  cause.options = "dist worker";
  ++ctx.out.stats.fallback_rows;

  subprocess::RunResult full = run_fallback_child(ctx, i, false);
  if (full.clean()) {
    if (auto row = parse_child_row(full.out, i)) {
      commit_row(ctx, i, std::move(*row));
      return;
    }
  }

  subprocess::RunResult base = run_fallback_child(ctx, i, true);
  if (base.clean()) {
    if (auto row = parse_child_row(base.out, i)) {
      row->degraded = true;
      row->ok = true;
      row->failure = std::move(cause);
      ++ctx.out.stats.degraded_rows;
      commit_row(ctx, i, std::move(*row));
      return;
    }
  }

  // Even the base side is unmeasurable — a failed (not degraded) row.
  ComparisonRow row;
  row.kernel = ctx.kernels[i].name;
  row.suite = ctx.kernels[i].suite;
  row.ok = false;
  row.error = cause.str();
  row.failure = std::move(cause);
  ++ctx.out.stats.degraded_rows;
  commit_row(ctx, i, std::move(row));
}

void shutdown_pool(Ctx& ctx) {
  for (Slot& slot : ctx.slots) {
    if (slot.state != SlotState::Dead) {
      (void)slot.child.write_line(protocol::quit_command());
      slot.child.close_stdin();
    }
    slot.child.kill_group();
    (void)slot.child.wait();
  }
  for (Slot& slot : ctx.slots)
    if (slot.reader.joinable()) slot.reader.join();
}

}  // namespace

Outcome run_suite(const std::vector<kernels::Kernel>& kernels,
                  const Options& options) {
  // A worker can die between our liveness check and a lease write;
  // EPIPE (not SIGPIPE) must be the failure mode.
  ::signal(SIGPIPE, SIG_IGN);

  Ctx ctx{kernels, options};
  std::size_t n = kernels.size();
  ctx.out.rows.resize(n);
  ctx.out.completed.assign(n, 0);
  ctx.attempts.assign(n, 0);
  ctx.last_slot.assign(n, -1);
  ctx.last_failure.assign(n, std::nullopt);
  ctx.keys.reserve(n);
  for (const kernels::Kernel& k : kernels)
    ctx.keys.push_back(driver::journal::row_key(
        k.source, options.options_signature, options.oracle_identity,
        options.exact_identity));

  // Resume: replay this sweep's own journal; nothing is re-appended.
  if (options.resume && !options.journal_path.empty()) {
    driver::journal::LoadResult loaded =
        driver::journal::load(options.journal_path);
    for (std::size_t i = 0; i < n; ++i) {
      auto it = loaded.rows.find(ctx.keys[i]);
      if (it == loaded.rows.end()) continue;
      ctx.out.rows[i] = it->second;
      ctx.out.completed[i] = 1;
      ++ctx.committed;
      ++ctx.out.resumed;
    }
    if (loaded.corrupt_lines > 0)
      note(ctx, "dist: WARNING — journal had " +
                    std::to_string(loaded.corrupt_lines) +
                    " corrupt mid-file line(s)" +
                    (loaded.crc_mismatches > 0
                         ? " (" + std::to_string(loaded.crc_mismatches) +
                               " CRC mismatch(es))"
                         : std::string()) +
                    "; affected rows will be recomputed — run "
                    "`slc --fsck=repair` to quarantine and compact");
    if (loaded.torn_tail > 0)
      note(ctx, "dist: journal had a torn final line (crash mid-append) — "
                "trimmed on re-open, row will be recomputed");
  }

  if (!options.journal_path.empty()) {
    std::string error;
    if (!ctx.jnl.open(options.journal_path, !options.resume, &error))
      note(ctx, "dist: journaling disabled — " + error);
  }

  // Differential re-run: replay matching keys from the previous sweep's
  // journal *through* commit_row, so they land in the fresh journal and
  // the replayed output is byte-identical to the old sweep's.
  if (!options.resume && !options.seed_journal.empty()) {
    driver::journal::LoadResult seed =
        driver::journal::load(options.seed_journal);
    for (std::size_t i = 0; i < n; ++i) {
      auto it = seed.rows.find(ctx.keys[i]);
      if (it == seed.rows.end()) continue;
      commit_row(ctx, i, it->second);
      ++ctx.out.diff_reused;
    }
    note(ctx, "dist: diff-since reused " +
                  std::to_string(ctx.out.diff_reused) + " of " +
                  std::to_string(n) + " row(s) from " + options.seed_journal);
  }

  for (std::size_t i = 0; i < n; ++i)
    if (ctx.out.completed[i] == 0) ctx.pending.push_back(i);

  int respawn_budget = std::max(0, options.max_respawns);
  if (!ctx.pending.empty()) {
    for (int w = 0; w < std::max(1, options.workers); ++w)
      (void)spawn_worker(ctx);
  }

  bool aborted = false;
  while (ctx.committed < n) {
    if (options.interrupted != nullptr && *options.interrupted != 0) {
      aborted = true;
      break;
    }
    // No schedulable work left in the pool model — the rest belongs to
    // the serial fallback (attempt-exhausted rows, or a dead fleet).
    if (ctx.pending.empty() && ctx.leases.empty()) break;
    if (live_workers(ctx) == 0) {
      if (respawn_budget <= 0) break;
      --respawn_budget;
      if (!spawn_worker(ctx)) break;
    }

    for (std::size_t s = 0; s < ctx.slots.size() && !ctx.pending.empty();
         ++s) {
      if (ctx.slots[s].state != SlotState::Idle) continue;
      std::vector<std::size_t> run = take_run(ctx, s);
      if (run.empty()) continue;  // deferred: these rows need another worker
      grant_lease(ctx, s, std::move(run), /*is_steal=*/false);
    }

    std::deque<Incoming> batch;
    {
      std::unique_lock<std::mutex> lock(ctx.mu);
      ctx.cv.wait_for(lock, std::chrono::milliseconds(100),
                      [&] { return !ctx.inbox.empty(); });
      batch.swap(ctx.inbox);
    }
    for (Incoming& in : batch) handle_event(ctx, std::move(in));

    scan_liveness(ctx);

    // Replace losses while there is queued work and budget left.
    while (!ctx.pending.empty() &&
           live_workers(ctx) < std::size_t(std::max(1, options.workers)) &&
           respawn_budget > 0) {
      --respawn_budget;
      if (!spawn_worker(ctx)) break;
    }

    scan_steal(ctx);
  }

  shutdown_pool(ctx);

  if (!aborted) {
    // Serial safety net: every row still uncommitted — exhausted,
    // stranded pending, or mid-lease when the fleet died — is measured
    // in one-shot children. Zero lost rows, whatever the chaos did.
    for (std::size_t i = 0; i < n; ++i) {
      if (options.interrupted != nullptr && *options.interrupted != 0) {
        aborted = true;
        break;
      }
      if (ctx.out.completed[i] == 0) fallback_row(ctx, i);
    }
  }

  ctx.jnl.flush();
  if (ctx.jnl.append_failures() > 0)
    note(ctx, "dist: WARNING — " +
                  std::to_string(ctx.jnl.append_failures()) +
                  " journal append(s) failed (" + ctx.jnl.last_error() +
                  "); those rows are NOT durable and --resume will "
                  "recompute them");
  if (aborted) {
    ctx.out.interrupted = true;
  } else if (ctx.jnl.active() && ctx.committed == n) {
    // Compact the finished journal in place: duplicates from steals and
    // crashed-then-resumed runs collapse, and the tmp+rename+dir-fsync
    // discipline makes the result power-cut safe.
    driver::journal::CheckpointResult cp =
        driver::journal::checkpoint(options.journal_path);
    if (cp.ok && (cp.duplicates_dropped > 0 || cp.torn_lines_dropped > 0 ||
                  cp.corrupt_lines_dropped > 0))
      note(ctx, "dist: journal checkpoint dropped " +
                    std::to_string(cp.duplicates_dropped) +
                    " duplicate(s), " +
                    std::to_string(cp.torn_lines_dropped) +
                    " torn line(s), " +
                    std::to_string(cp.corrupt_lines_dropped) +
                    " corrupt line(s)" +
                    (cp.quarantined > 0
                         ? " (" + std::to_string(cp.quarantined) +
                               " quarantined)"
                         : std::string()));
  }

  const Stats& st = ctx.out.stats;
  std::ostringstream sum;
  sum << "dist: workers=" << st.workers_spawned << " lost=" << st.workers_lost
      << " leases=" << st.leases_granted << " reclaims=" << st.reclaims
      << " steals=" << st.steals << " duplicates=" << st.duplicate_rows
      << " requeued=" << st.requeued_rows << " fallbacks=" << st.fallback_rows
      << " degraded=" << st.degraded_rows;
  note(ctx, sum.str());
  return ctx.out;
}

}  // namespace slc::dist
