#include "dist/worker.hpp"

#include <unistd.h>

#include <cstdio>
#include <string>

#include "dist/protocol.hpp"
#include "service/socket.hpp"
#include "support/failure.hpp"
#include "support/fault.hpp"

namespace slc::dist {

namespace {

// One flushed line to the coordinator. stdout is a pipe; a flush per
// line is what makes crash salvage and heartbeat liveness work — the
// coordinator must never wait on a stdio buffer.
void emit(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  driver::CompareOptions copts = options.compare;
  copts.jobs = 1;
  copts.on_row = nullptr;

  emit(protocol::hello_line(options.worker_id, int(::getpid())));

  service::socket::LineReader reader(STDIN_FILENO);
  std::string line;
  while (reader.next_line(&line)) {
    protocol::Command cmd = protocol::parse_command(line);
    if (cmd.kind == protocol::Command::Kind::Quit) break;
    if (cmd.kind != protocol::Command::Kind::Lease) continue;
    if (cmd.lease.last >= options.kernels.size()) return 65;

    std::size_t computed = 0;
    for (std::size_t i = cmd.lease.first; i <= cmd.lease.last; ++i) {
      const kernels::Kernel& kernel = options.kernels[i];
      // Heartbeat before the row: if the row then hangs, the
      // coordinator's last-seen clock starts here and the deadline
      // measures true row silence.
      emit(protocol::heartbeat_line(options.worker_id));

      const std::string subject = options.worker_id + ":" + kernel.name;
      driver::ComparisonRow row;
      bool report = true;
      try {
        if (auto injected =
                support::fault::trigger(support::Stage::Worker, subject)) {
          if (support::fault::is_drop(*injected)) {
            // Lost result message: compute nothing, say nothing. The
            // coordinator sees this lease's done event arrive short and
            // re-queues the row elsewhere.
            report = false;
          } else {
            row.kernel = kernel.name;
            row.suite = kernel.suite;
            row.ok = false;
            row.error = injected->str();
            row.failure = *injected;
          }
        } else {
          row = driver::compare_kernel(kernel, options.backend, copts);
        }
      } catch (const support::fault::FaultInjected& ex) {
        row.kernel = kernel.name;
        row.suite = kernel.suite;
        row.ok = false;
        row.error = ex.failure().str();
        row.failure = ex.failure();
      }
      if (report) {
        emit(protocol::row_line(cmd.lease.id, i, row));
        ++computed;
      }
    }
    emit(protocol::done_line(cmd.lease.id, computed));
  }
  return 0;
}

}  // namespace slc::dist
