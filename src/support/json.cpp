#include "support/json.hpp"

#include <cstdio>
#include <cstdlib>

namespace slc::support::json {

// ----- builders ------------------------------------------------------------

Value Value::null() { return Value{}; }

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

Value Value::number(std::uint64_t n) {
  Value v;
  v.kind_ = Kind::Number;
  v.scalar_ = std::to_string(n);
  return v;
}

Value Value::number(std::int64_t n) {
  Value v;
  v.kind_ = Kind::Number;
  v.scalar_ = std::to_string(n);
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::Number;
  char buf[64];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof buf, "%.17g", d);
  v.scalar_ = buf;
  // JSON has no inf/nan; the harness never produces them, but do not
  // emit invalid documents if one sneaks through.
  if (v.scalar_.find("inf") != std::string::npos ||
      v.scalar_.find("nan") != std::string::npos)
    v.scalar_ = "0";
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::String;
  v.scalar_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::Array;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::Object;
  return v;
}

// ----- inspectors ----------------------------------------------------------

bool Value::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

std::uint64_t Value::as_u64(std::uint64_t fallback) const {
  if (kind_ != Kind::Number) return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(scalar_.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

std::int64_t Value::as_i64(std::int64_t fallback) const {
  if (kind_ != Kind::Number) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(scalar_.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

double Value::as_double(double fallback) const {
  if (kind_ != Kind::Number) return fallback;
  char* end = nullptr;
  double v = std::strtod(scalar_.c_str(), &end);
  if (end == nullptr || *end != '\0') return fallback;
  return v;
}

const std::string& Value::as_string() const {
  static const std::string empty;
  return kind_ == Kind::String ? scalar_ : empty;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Value::set(std::string key, Value v) {
  kind_ = Kind::Object;
  obj_.emplace_back(std::move(key), std::move(v));
}

void Value::push(Value v) {
  kind_ = Kind::Array;
  arr_.push_back(std::move(v));
}

// ----- serialization -------------------------------------------------------

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string Value::dump() const {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return bool_ ? "true" : "false";
    case Kind::Number: return scalar_;
    case Kind::String: return quote(scalar_);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        out += quote(obj_[i].first);
        out += ':';
        out += obj_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

// ----- parsing -------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  [[nodiscard]] bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::optional<Value> value() {
    if (++depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos >= text.size()) return fail();
    char c = text[pos];
    std::optional<Value> out;
    if (c == '{') out = object();
    else if (c == '[') out = array();
    else if (c == '"') out = string_value();
    else if (c == 't' || c == 'f') out = boolean();
    else if (c == 'n') out = null_value();
    else out = number();
    --depth;
    return out;
  }

  std::optional<Value> fail() { return std::nullopt; }

  std::optional<Value> object() {
    ++pos;  // '{'
    Value v = Value::object();
    skip_ws();
    if (eat('}')) return v;
    for (;;) {
      skip_ws();
      std::optional<std::string> key = raw_string();
      if (!key) return fail();
      skip_ws();
      if (!eat(':')) return fail();
      std::optional<Value> field = value();
      if (!field) return fail();
      v.set(std::move(*key), std::move(*field));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return v;
      return fail();
    }
  }

  std::optional<Value> array() {
    ++pos;  // '['
    Value v = Value::array();
    skip_ws();
    if (eat(']')) return v;
    for (;;) {
      std::optional<Value> item = value();
      if (!item) return fail();
      v.push(std::move(*item));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return v;
      return fail();
    }
  }

  std::optional<std::string> raw_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return std::nullopt;
      char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
            else return std::nullopt;
          }
          // Encode as UTF-8 (surrogate pairs are not produced by our
          // writer; a lone surrogate decodes to its 3-byte form).
          if (code < 0x80) {
            out += char(code);
          } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
          } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> string_value() {
    std::optional<std::string> s = raw_string();
    if (!s) return fail();
    return Value::string(std::move(*s));
  }

  std::optional<Value> boolean() {
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      return Value::boolean(true);
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      return Value::boolean(false);
    }
    return fail();
  }

  std::optional<Value> null_value() {
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      return Value::null();
    }
    return fail();
  }

  std::optional<Value> number() {
    std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '-' ||
            text[pos] == '+')) {
      if (text[pos] >= '0' && text[pos] <= '9') digits = true;
      ++pos;
    }
    if (!digits) return fail();
    // Validate the shape with strtod, but keep the exact source text so
    // 64-bit integers survive untouched (a double would truncate them).
    std::string raw(text.substr(start, pos - start));
    char* end = nullptr;
    (void)std::strtod(raw.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail();
    bool integral = true;
    for (std::size_t i = (raw[0] == '-' || raw[0] == '+') ? 1 : 0;
         i < raw.size(); ++i)
      if (raw[i] < '0' || raw[i] > '9') {
        integral = false;
        break;
      }
    if (integral) {
      if (raw[0] == '-')
        return Value::number(
            std::int64_t(std::strtoll(raw.c_str(), nullptr, 10)));
      return Value::number(
          std::uint64_t(std::strtoull(raw.c_str(), nullptr, 10)));
    }
    return Value::number(std::strtod(raw.c_str(), nullptr));
  }
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  Parser p{text};
  std::optional<Value> v = p.value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace slc::support::json
