#include "support/io.hpp"

#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "support/fault.hpp"

namespace slc::support::io {

namespace fs = std::filesystem;

namespace {

// ----- CRC32C table --------------------------------------------------------

std::array<std::uint32_t, 256> make_crc32c_table() {
  // Reflected Castagnoli polynomial.
  constexpr std::uint32_t kPoly = 0x82F63B78u;
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = make_crc32c_table();
  return table;
}

// ----- fault-aware syscall wrappers ----------------------------------------
//
// Each wrapper consults the disk-fault injection point first. The Crash
// action models a power cut: when it lands on a write, roughly half the
// bytes hit the file before the process dies — a genuine torn record
// for recovery to chew on. _Exit skips atexit/stream flushing, which is
// exactly the point.

[[noreturn]] void crash_now() { ::_Exit(fault::kIoCrashExitCode); }

bool raw_write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w > 0) {
      off += std::size_t(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w >= 0) errno = EIO;  // zero-byte write on a regular file
    return false;
  }
  return true;
}

bool checked_write(int fd, std::string_view data, const std::string& path,
                   std::string* error) {
  if (fault::enabled()) {
    if (auto f = fault::io_trigger(fault::IoOp::Write, path)) {
      std::size_t half = data.size() / 2;
      switch (f->kind) {
        case fault::IoFaultKind::Crash:
          (void)raw_write_all(fd, data.data(), half);
          crash_now();
        case fault::IoFaultKind::ShortWrite:
          (void)raw_write_all(fd, data.data(), half);
          errno = f->err;
          if (error != nullptr)
            *error = "write " + path + ": short write: " + strerror(f->err);
          return false;
        case fault::IoFaultKind::Fail:
          errno = f->err;
          if (error != nullptr)
            *error = "write " + path + ": " + strerror(f->err);
          return false;
      }
    }
  }
  if (!raw_write_all(fd, data.data(), data.size())) {
    if (error != nullptr)
      *error = "write " + path + ": " + strerror(errno);
    return false;
  }
  return true;
}

bool checked_fsync(int fd, const std::string& path, std::string* error,
                   bool data_only) {
  if (fault::enabled()) {
    if (auto f = fault::io_trigger(fault::IoOp::Fsync, path)) {
      if (f->kind == fault::IoFaultKind::Crash) crash_now();
      errno = f->err;
      if (error != nullptr)
        *error = "fsync " + path + ": " + strerror(f->err);
      return false;
    }
  }
  int rc = data_only ? ::fdatasync(fd) : ::fsync(fd);
  if (rc != 0) {
    if (error != nullptr)
      *error = "fsync " + path + ": " + strerror(errno);
    return false;
  }
  return true;
}

bool checked_rename(const std::string& from, const std::string& to,
                    std::string* error) {
  if (fault::enabled()) {
    if (auto f = fault::io_trigger(fault::IoOp::Rename, to)) {
      if (f->kind == fault::IoFaultKind::Crash) crash_now();
    }
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    if (error != nullptr)
      *error = "rename " + from + " -> " + to + ": " + strerror(errno);
    return false;
  }
  return true;
}

int checked_open(const std::string& path, int flags, mode_t mode,
                 std::string* error) {
  if (fault::enabled()) {
    if (auto f = fault::io_trigger(fault::IoOp::Open, path)) {
      if (f->kind == fault::IoFaultKind::Crash) crash_now();
    }
  }
  int fd = ::open(path.c_str(), flags, mode);
  if (fd < 0 && error != nullptr)
    *error = "open " + path + ": " + strerror(errno);
  return fd;
}

void create_parents(const std::string& path) {
  fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
  }
}

/// Best-effort directory fsync after a rename: some filesystems refuse
/// it (and the rename is still ordered on the ones that matter).
void dir_fsync(const std::string& path) {
  fs::path dir = fs::path(path).parent_path();
  std::string dir_path = dir.empty() ? "." : dir.string();
  int dfd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

std::uint32_t crc32c(std::string_view data) {
  const auto& table = crc32c_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : data)
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

std::string hex32(std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[std::size_t(i)] = digits[v & 0xFu];
    v >>= 4;
  }
  return out;
}

std::string frame_record(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + kFrameMarker.size() + 8);
  out.append(payload);
  out.append(kFrameMarker);
  out.append(hex32(crc32c(payload)));
  return out;
}

FrameStatus parse_frame(std::string_view line, std::string_view* payload) {
  // The frame is a fixed-width suffix: marker + 8 hex digits at the very
  // end of the line. Anything else is legacy.
  constexpr std::size_t kDigits = 8;
  std::size_t frame_len = kFrameMarker.size() + kDigits;
  if (line.size() >= frame_len &&
      line.substr(line.size() - frame_len, kFrameMarker.size()) ==
          kFrameMarker) {
    std::string_view body = line.substr(0, line.size() - frame_len);
    std::string_view hex = line.substr(line.size() - kDigits);
    *payload = body;
    std::uint32_t want = 0;
    for (char c : hex) {
      want <<= 4;
      if (c >= '0' && c <= '9') {
        want |= std::uint32_t(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        want |= std::uint32_t(c - 'a' + 10);
      } else {
        // Junk in the checksum field: the frame itself is corrupt.
        return FrameStatus::FramedCorrupt;
      }
    }
    return crc32c(body) == want ? FrameStatus::FramedOk
                                : FrameStatus::FramedCorrupt;
  }
  *payload = line;
  return FrameStatus::Legacy;
}

bool atomic_write_file(const std::string& path, std::string_view bytes,
                       std::string* error) {
  create_parents(path);
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = checked_open(tmp, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644,
                        error);
  if (fd < 0) return false;
  if (!checked_write(fd, bytes, tmp, error) ||
      !checked_fsync(fd, tmp, error, /*data_only=*/false)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (!checked_rename(tmp, path, error)) {
    ::unlink(tmp.c_str());
    return false;
  }
  dir_fsync(path);
  return true;
}

AppendFile::~AppendFile() { close(); }

bool AppendFile::open(const std::string& path, bool truncate,
                      std::string* error) {
  close();
  create_parents(path);
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  int fd = checked_open(path, flags, 0644, error);
  if (fd < 0) return false;
  fd_ = fd;
  path_ = path;
  return true;
}

bool AppendFile::append_line(std::string_view line, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "append: file not open";
    return false;
  }
  std::string record;
  record.reserve(line.size() + 1);
  record.append(line);
  record.push_back('\n');
  if (!checked_write(fd_, record, path_, error)) return false;
  if (durable_ && !checked_fsync(fd_, path_, error, /*data_only=*/true))
    return false;
  return true;
}

bool AppendFile::sync(std::string* error) {
  if (fd_ < 0) return true;
  return checked_fsync(fd_, path_, error, /*data_only=*/true);
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

ScanResult scan_jsonl(const std::string& path) {
  ScanResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;
  result.opened = true;

  // Read the whole file and split on '\n' manually: std::getline hides
  // whether the final line was newline-terminated, and that missing
  // terminator is precisely the torn-tail signature.
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    bool terminated = nl != std::string::npos;
    std::size_t end = terminated ? nl : text.size();
    ++line_no;
    std::string_view raw(text.data() + pos, end - pos);
    if (!terminated) result.ends_mid_line = true;
    if (!raw.empty()) {
      ScanRecord rec;
      rec.raw = std::string(raw);
      rec.line_no = line_no;
      std::string_view payload;
      rec.frame = parse_frame(raw, &payload);
      rec.payload = std::string(payload);
      switch (rec.frame) {
        case FrameStatus::FramedOk:
          ++result.framed_ok;
          break;
        case FrameStatus::FramedCorrupt:
          ++result.crc_mismatches;
          break;
        case FrameStatus::Legacy:
          ++result.legacy;
          break;
      }
      result.records.push_back(std::move(rec));
    }
    if (!terminated) break;
    pos = nl + 1;
  }
  return result;
}

bool trim_torn_tail(const std::string& path, std::string* error,
                    bool* trimmed) {
  if (trimmed != nullptr) *trimmed = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return true;  // nothing to trim
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  if (text.empty() || text.back() == '\n') return true;
  std::size_t last_nl = text.rfind('\n');
  std::size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
  std::string fragment = text.substr(keep);
  // Evidence first, then the cut.
  std::string qerror;
  if (quarantine(path, {fragment}, &qerror) == 0 && !qerror.empty()) {
    if (error != nullptr) *error = "quarantine of torn tail: " + qerror;
    return false;
  }
  if (::truncate(path.c_str(), off_t(keep)) != 0) {
    if (error != nullptr)
      *error = "truncate " + path + ": " + strerror(errno);
    return false;
  }
  if (trimmed != nullptr) *trimmed = true;
  return true;
}

std::string quarantine_path(const std::string& path) {
  return path + ".quarantine";
}

std::size_t quarantine(const std::string& path,
                       const std::vector<std::string>& raw_lines,
                       std::string* error) {
  if (raw_lines.empty()) return 0;
  AppendFile sidecar;
  if (!sidecar.open(quarantine_path(path), /*truncate=*/false, error))
    return 0;
  std::size_t landed = 0;
  for (const std::string& line : raw_lines) {
    if (!sidecar.append_line(line, error)) break;
    ++landed;
  }
  return landed;
}

}  // namespace slc::support::io
