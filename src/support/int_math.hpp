// Small exact-integer helpers used by the dependence tests and the MII
// solver. All routines are total (no UB on the argument ranges used by the
// analyses, which stay far away from overflow).
#pragma once

#include <cstdint>
#include <numeric>

namespace slc {

/// Greatest common divisor on 64-bit values; gcd(0,0) == 0.
[[nodiscard]] constexpr std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  return std::gcd(a, b);
}

/// Floor division (rounds toward negative infinity), unlike C++ '/'.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a,
                                               std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Ceiling division (rounds toward positive infinity).
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

/// True iff b divides a exactly (b != 0).
[[nodiscard]] constexpr bool divides(std::int64_t b, std::int64_t a) {
  return b != 0 && a % b == 0;
}

}  // namespace slc
