// Crash-isolated child processes for the evaluation harness.
//
// The fail-safe pipeline (support/failure.hpp) survives anything that
// surfaces as a C++ exception or a structured Failure, but a genuine
// crash — SIGSEGV in a transform, an OOM, an infinite loop the
// in-process Deadline cannot interrupt — still takes down the whole
// process. This layer provides the hard boundary: fork/exec a child,
// capture its stdout/stderr through pipes, kill it with SIGKILL when a
// wall-clock watchdog expires, cap its address space with setrlimit,
// and classify the way it ended (clean / nonzero exit / signal /
// timeout / oom) into the Failure taxonomy as Stage::Isolation.
//
// The `--isolate` suite mode (driver/isolate.hpp) runs every comparison
// row in a child slc process through this wrapper; heavyweight future
// backends (SMT/SAT modulo schedulers) get the same treatment for free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/failure.hpp"

namespace slc::support::subprocess {

struct RunOptions {
  /// argv[0] is the executable path (resolved via PATH by execvp).
  std::vector<std::string> argv;
  /// Wall-clock watchdog in milliseconds; on expiry the child's process
  /// group receives SIGKILL. 0 = no watchdog.
  std::uint64_t timeout_ms = 0;
  /// Address-space cap in MiB (setrlimit(RLIMIT_AS) in the child before
  /// exec). Allocation beyond the cap fails inside the child — typically
  /// a std::bad_alloc that a well-behaved tool reports on stderr.
  /// 0 = no cap.
  std::uint64_t max_rss_mb = 0;
  /// Cap on captured stdout/stderr (each); excess is discarded so a
  /// runaway child cannot balloon the parent.
  std::size_t max_output_bytes = std::size_t(8) << 20;
  /// Text fed to the child's stdin (the pipe is closed after writing).
  std::string stdin_text;
};

/// How the child ended, in classification priority order.
enum class ExitClass : std::uint8_t {
  Clean,     // exited 0
  NonZero,   // exited with a nonzero status
  Signal,    // terminated by a signal (SIGSEGV, SIGABRT, ...)
  Timeout,   // the watchdog fired and SIGKILLed it
  Oom,       // the RSS cap was hit (bad_alloc exit or kernel kill)
};

[[nodiscard]] const char* to_string(ExitClass cls);

struct RunResult {
  /// False when fork/exec plumbing itself failed (see spawn_error); the
  /// child never ran and none of the fields below are meaningful.
  bool spawned = false;
  std::string spawn_error;

  ExitClass cls = ExitClass::NonZero;
  int exit_code = 0;     // valid when the child exited
  int term_signal = 0;   // valid when the child was signaled
  bool timed_out = false;
  bool rss_capped = false;  // a cap was armed (context for Oom inference)

  std::string out;  // captured child stdout (possibly truncated)
  std::string err;  // captured child stderr (possibly truncated)
  std::uint64_t wall_ns = 0;

  [[nodiscard]] bool clean() const {
    return spawned && cls == ExitClass::Clean;
  }
  /// "clean" | "exit:3" | "signal:SIGSEGV" | "timeout" | "oom"
  [[nodiscard]] std::string describe() const;
};

/// Runs the child to completion (or watchdog kill) and classifies the
/// outcome. Never throws; plumbing failures come back with
/// spawned = false.
[[nodiscard]] RunResult run(const RunOptions& options);

/// Pure classification used by run() and unit-testable without spawning:
/// maps (watchdog fired, signal-vs-exit, signal number or exit code,
/// cap armed, child stderr) to an ExitClass. A nonzero exit whose stderr
/// reports an allocation failure while a cap was armed is Oom, as is an
/// un-asked-for SIGKILL under a cap (the kernel OOM path).
[[nodiscard]] ExitClass classify_exit(bool timed_out, bool signaled,
                                      int sig_or_code, bool rss_capped,
                                      std::string_view stderr_text);

/// Maps a completed RunResult into the Failure taxonomy: Stage::Isolation
/// with ChildExit / ChildSignal / ChildTimeout / ChildOom and a message
/// naming the exact status (e.g. "signal:SIGSEGV"). Clean runs map to a
/// ChildExit failure with exit code 0 — callers should not ask.
[[nodiscard]] Failure to_failure(const RunResult& result);

/// Absolute path of the currently running executable
/// (/proc/self/exe on Linux), or `fallback` when unreadable.
[[nodiscard]] std::string self_exe_path(const std::string& fallback);

// ----- persistent children -------------------------------------------------

/// A long-lived child process with piped stdin/stdout — the worker
/// endpoint of the distributed sweep coordinator (src/dist). Unlike
/// run(), which blocks to completion, a Child stays up across many
/// commands: the owner writes NDJSON lines to its stdin and reads its
/// stdout (typically from a dedicated reader thread via stdout_fd()).
///
/// The child is placed in its own process group at spawn, so
/// kill_group() reliably ends a hung worker and everything it forked.
/// Destruction kills and reaps any still-running child — a Child never
/// leaks a process or a zombie.
class Child {
 public:
  struct SpawnOptions {
    std::vector<std::string> argv;
    /// Address-space cap in MiB (setrlimit in the child). 0 = none.
    std::uint64_t max_rss_mb = 0;
    /// When false, the child's stderr is redirected to /dev/null;
    /// when true (default) it shares the parent's stderr.
    bool inherit_stderr = true;
  };

  Child() = default;
  ~Child();
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;

  /// Fork/execs the child with piped stdin/stdout (both O_CLOEXEC on the
  /// parent side). False with *error set on plumbing failure.
  bool spawn(const SpawnOptions& options, std::string* error);

  [[nodiscard]] bool running() const { return pid_ > 0; }
  [[nodiscard]] pid_t pid() const { return pid_; }
  /// Parent-side read end of the child's stdout; -1 when not running.
  /// EOFs when the child exits or is killed.
  [[nodiscard]] int stdout_fd() const { return stdout_fd_; }

  /// Writes `line` plus '\n' to the child's stdin. False on a broken
  /// pipe (the child died) — never raises SIGPIPE.
  bool write_line(std::string_view line);

  /// Closes the stdin pipe: a protocol-following child drains its queue
  /// and exits.
  void close_stdin();

  /// SIGKILLs the child's process group (and the child directly, in case
  /// setpgid lost the race). Safe to call repeatedly / after exit.
  void kill_group();

  /// Reaps the child (blocking). Returns the raw waitpid status, or -1
  /// if there is nothing to reap. Idempotent.
  int wait();

  /// Non-blocking reap attempt; true when the child has been reaped
  /// (now or earlier). *status receives the raw status when reaped now.
  bool try_wait(int* status);

 private:
  void reset();

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int status_ = -1;
};

}  // namespace slc::support::subprocess
