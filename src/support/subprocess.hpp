// Crash-isolated child processes for the evaluation harness.
//
// The fail-safe pipeline (support/failure.hpp) survives anything that
// surfaces as a C++ exception or a structured Failure, but a genuine
// crash — SIGSEGV in a transform, an OOM, an infinite loop the
// in-process Deadline cannot interrupt — still takes down the whole
// process. This layer provides the hard boundary: fork/exec a child,
// capture its stdout/stderr through pipes, kill it with SIGKILL when a
// wall-clock watchdog expires, cap its address space with setrlimit,
// and classify the way it ended (clean / nonzero exit / signal /
// timeout / oom) into the Failure taxonomy as Stage::Isolation.
//
// The `--isolate` suite mode (driver/isolate.hpp) runs every comparison
// row in a child slc process through this wrapper; heavyweight future
// backends (SMT/SAT modulo schedulers) get the same treatment for free.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/failure.hpp"

namespace slc::support::subprocess {

struct RunOptions {
  /// argv[0] is the executable path (resolved via PATH by execvp).
  std::vector<std::string> argv;
  /// Wall-clock watchdog in milliseconds; on expiry the child's process
  /// group receives SIGKILL. 0 = no watchdog.
  std::uint64_t timeout_ms = 0;
  /// Address-space cap in MiB (setrlimit(RLIMIT_AS) in the child before
  /// exec). Allocation beyond the cap fails inside the child — typically
  /// a std::bad_alloc that a well-behaved tool reports on stderr.
  /// 0 = no cap.
  std::uint64_t max_rss_mb = 0;
  /// Cap on captured stdout/stderr (each); excess is discarded so a
  /// runaway child cannot balloon the parent.
  std::size_t max_output_bytes = std::size_t(8) << 20;
  /// Text fed to the child's stdin (the pipe is closed after writing).
  std::string stdin_text;
};

/// How the child ended, in classification priority order.
enum class ExitClass : std::uint8_t {
  Clean,     // exited 0
  NonZero,   // exited with a nonzero status
  Signal,    // terminated by a signal (SIGSEGV, SIGABRT, ...)
  Timeout,   // the watchdog fired and SIGKILLed it
  Oom,       // the RSS cap was hit (bad_alloc exit or kernel kill)
};

[[nodiscard]] const char* to_string(ExitClass cls);

struct RunResult {
  /// False when fork/exec plumbing itself failed (see spawn_error); the
  /// child never ran and none of the fields below are meaningful.
  bool spawned = false;
  std::string spawn_error;

  ExitClass cls = ExitClass::NonZero;
  int exit_code = 0;     // valid when the child exited
  int term_signal = 0;   // valid when the child was signaled
  bool timed_out = false;
  bool rss_capped = false;  // a cap was armed (context for Oom inference)

  std::string out;  // captured child stdout (possibly truncated)
  std::string err;  // captured child stderr (possibly truncated)
  std::uint64_t wall_ns = 0;

  [[nodiscard]] bool clean() const {
    return spawned && cls == ExitClass::Clean;
  }
  /// "clean" | "exit:3" | "signal:SIGSEGV" | "timeout" | "oom"
  [[nodiscard]] std::string describe() const;
};

/// Runs the child to completion (or watchdog kill) and classifies the
/// outcome. Never throws; plumbing failures come back with
/// spawned = false.
[[nodiscard]] RunResult run(const RunOptions& options);

/// Pure classification used by run() and unit-testable without spawning:
/// maps (watchdog fired, signal-vs-exit, signal number or exit code,
/// cap armed, child stderr) to an ExitClass. A nonzero exit whose stderr
/// reports an allocation failure while a cap was armed is Oom, as is an
/// un-asked-for SIGKILL under a cap (the kernel OOM path).
[[nodiscard]] ExitClass classify_exit(bool timed_out, bool signaled,
                                      int sig_or_code, bool rss_capped,
                                      std::string_view stderr_text);

/// Maps a completed RunResult into the Failure taxonomy: Stage::Isolation
/// with ChildExit / ChildSignal / ChildTimeout / ChildOom and a message
/// naming the exact status (e.g. "signal:SIGSEGV"). Clean runs map to a
/// ChildExit failure with exit code 0 — callers should not ask.
[[nodiscard]] Failure to_failure(const RunResult& result);

/// Absolute path of the currently running executable
/// (/proc/self/exe on Linux), or `fallback` when unreadable.
[[nodiscard]] std::string self_exe_path(const std::string& fallback);

}  // namespace slc::support::subprocess
