// Structured failure taxonomy for the fail-safe transformation pipeline.
//
// Every stage of the experiment pipeline (parse → sema → analysis → SLMS →
// lower → schedule → simulate → oracle) reports errors through this channel
// instead of leaking exceptions: a `Failure` names the stage that broke, a
// machine-readable kind, and enough context (kernel, options) to reproduce
// the row. `Result<T>` carries either a value or a Failure through the
// pipeline; `Deadline` is the per-row wall-clock guard the harness uses to
// bound a single comparison.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace slc::support {

/// The pipeline stages a failure can be attributed to, in pipeline order.
/// `Harness` covers infrastructure faults (worker exceptions, deadlines)
/// that do not belong to a specific compiler stage; `Isolation` covers
/// the process boundary of `--isolate` sweeps (a child slc process that
/// exited nonzero, died on a signal, was killed by the wall-clock
/// watchdog, or hit the RSS cap).
enum class Stage : std::uint8_t {
  Parse,
  Sema,
  Analysis,
  Slms,
  Verify,  // static legality verifier (src/verify) on SLMS output
  Lower,
  Schedule,
  Simulate,
  Oracle,
  Native,  // native-execution oracle backend (src/native): codegen,
           // host-compiler invocation, dlopen, or interp/native divergence
  Harness,
  Isolation,
  Worker,  // a distributed-sweep worker endpoint (src/dist): lost to a
           // crash, declared dead by the heartbeat deadline, or its lease
           // reclaimed after too many re-execution attempts
};

[[nodiscard]] const char* to_string(Stage stage);
[[nodiscard]] std::optional<Stage> parse_stage(std::string_view name);

/// What went wrong, independent of where. `Injected` marks failures
/// produced by the fault-injection facility (support/fault.hpp) so tests
/// can tell deliberate faults from organic ones.
enum class FailureKind : std::uint8_t {
  ParseError,
  SemaError,
  TransformError,    // SLMS/xform refused or produced nothing measurable
  LowerError,
  ScheduleError,
  SimError,
  OracleMismatch,    // transformed program disagrees with the reference
  VerifyFailed,      // static verifier proved the transform illegal
  DivideByZero,      // interpreter abort: integer division/modulo by zero
  OutOfBounds,       // interpreter abort: array access out of bounds
  StepLimit,         // interpreter/simulator step budget exhausted
  DeadlineExceeded,  // per-row wall-clock guard fired
  Exception,         // an exception escaped a stage and was captured
  Injected,          // produced by the fault-injection facility
  ChildExit,         // isolated child exited with a nonzero status
  ChildSignal,       // isolated child died on a signal (e.g. SIGSEGV)
  ChildTimeout,      // isolated child killed by the wall-clock watchdog
  ChildOom,          // isolated child exceeded the RSS cap
  NativeError,       // native oracle: codegen refusal, host compiler or
                     // dlopen failure — the row falls back to the interp
  Unknown,
};

[[nodiscard]] const char* to_string(FailureKind kind);
[[nodiscard]] std::optional<FailureKind> parse_failure_kind(
    std::string_view name);

/// One structured pipeline failure. `transient` marks failures a retry may
/// clear (the fault injector's fail-once kind sets it); the harness retries
/// those once before degrading.
struct Failure {
  Stage stage = Stage::Harness;
  FailureKind kind = FailureKind::Unknown;
  std::string message;
  std::string kernel;   // kernel / program name, empty when standalone
  std::string options;  // backend label, variant, flags — repro context
  bool transient = false;

  /// "stage/kind: message [kernel=..., options=...]"
  [[nodiscard]] std::string str() const;
  /// "stage/kind: message" — the short form for table cells.
  [[nodiscard]] std::string brief() const;
};

[[nodiscard]] inline Failure make_failure(Stage stage, FailureKind kind,
                                          std::string message) {
  Failure f;
  f.stage = stage;
  f.kind = kind;
  f.message = std::move(message);
  return f;
}

/// Value-or-Failure channel for pipeline stages. Deliberately minimal:
/// construct from a T or a Failure, test with ok(), and take the payload.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                 // NOLINT
  Result(Failure failure) : v_(std::move(failure)) {}       // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const { return std::get<T>(v_); }
  [[nodiscard]] T take() { return std::move(std::get<T>(v_)); }
  [[nodiscard]] const Failure& failure() const {
    return std::get<Failure>(v_);
  }

 private:
  std::variant<T, Failure> v_;
};

/// Per-row wall-clock guard. `unlimited()` never expires; `after_ms(0)`
/// is also unlimited so a plain integer option wires through directly.
class Deadline {
 public:
  [[nodiscard]] static Deadline unlimited() { return Deadline{}; }
  [[nodiscard]] static Deadline after_ms(std::uint64_t ms) {
    Deadline d;
    if (ms > 0) {
      d.active_ = true;
      d.end_ = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(ms);
    }
    return d;
  }

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool expired() const {
    return active_ && std::chrono::steady_clock::now() >= end_;
  }
  /// Milliseconds until expiry: UINT64_MAX when unlimited, 0 when already
  /// expired. Retry backoff (support/retry.hpp) truncates its sleeps to
  /// this so a bounded request never oversleeps its own deadline.
  [[nodiscard]] std::uint64_t remaining_ms() const {
    if (!active_) return ~std::uint64_t(0);
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return left.count() <= 0 ? 0 : std::uint64_t(left.count());
  }

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point end_{};
};

}  // namespace slc::support
