// Source locations for diagnostics emitted by the mini-C frontend and the
// source-level transformation passes.
#pragma once

#include <cstdint>
#include <string>

namespace slc {

/// A (line, column) position inside one translation unit of the mini-C
/// dialect. Lines and columns are 1-based; a value of 0 means "unknown"
/// (used for synthesized AST nodes created by transformations).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] constexpr bool valid() const { return line != 0; }

  friend constexpr bool operator==(SourceLoc, SourceLoc) = default;
};

/// Renders "line:col" or "<synth>" for synthesized nodes.
[[nodiscard]] inline std::string to_string(SourceLoc loc) {
  if (!loc.valid()) return "<synth>";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace slc
