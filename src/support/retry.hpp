// Generic retry with jittered exponential backoff.
//
// The long-running compile service (src/service, tools/slcd.cpp) and the
// native codegen cache's host-compiler path both talk to things that can
// fail transiently — a sandboxed child killed by the kernel, a compiler
// process lost to an OOM blip, a fault-injected fail-once. This is the
// one shared policy for "try again, but not forever":
//
//   * exponential backoff: delay(k) = base * multiplier^(k-1), capped at
//     max_delay_ms, before the k-th retry;
//   * deterministic jitter: each delay is scaled by (1 - jitter * u) with
//     u drawn from a splitmix64 stream seeded by Policy::seed, so two
//     schedules with the same seed are bit-identical (testable) while
//     different seeds decorrelate retry storms;
//   * deadline awareness: sleeps are truncated to the caller's Deadline
//     and no attempt starts after it expires — a bounded request can
//     never oversleep its own budget;
//   * failure-kind selectivity: only failures the caller's predicate
//     accepts are retried (default: Failure::transient).
//
// Sleeping is pluggable so tests can assert the schedule without waiting
// for it.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>

#include "support/failure.hpp"

namespace slc::support::retry {

struct Policy {
  /// Total attempts including the first one. 1 = no retries.
  int max_attempts = 3;
  /// Delay before the first retry, in milliseconds.
  std::uint64_t base_delay_ms = 10;
  /// Growth factor per retry.
  double multiplier = 2.0;
  /// Upper bound on any single (pre-jitter) delay.
  std::uint64_t max_delay_ms = 2000;
  /// Fraction of each delay randomly shaved off: the jittered delay is
  /// uniform in [delay * (1 - jitter), delay]. 0 = no jitter.
  double jitter = 0.5;
  /// Seed of the deterministic jitter stream.
  std::uint64_t seed = 0;
};

/// The delay schedule of one retried operation. Deterministic: two
/// Backoffs built from the same Policy produce the same sequence.
class Backoff {
 public:
  explicit Backoff(const Policy& policy)
      : policy_(policy), state_(policy.seed + 0x9e3779b97f4a7c15ULL) {}

  /// Delay (ms) to sleep before the next retry; advances the schedule.
  /// First call = delay before retry 1, and so on.
  [[nodiscard]] std::uint64_t next_delay_ms() {
    double delay = double(policy_.base_delay_ms);
    for (int i = 0; i < retries_; ++i) delay *= policy_.multiplier;
    if (delay > double(policy_.max_delay_ms))
      delay = double(policy_.max_delay_ms);
    ++retries_;
    if (policy_.jitter > 0.0) {
      // splitmix64 -> uniform double in [0, 1).
      std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      double u = double(z >> 11) * (1.0 / 9007199254740992.0);
      delay *= 1.0 - policy_.jitter * u;
    }
    return std::uint64_t(delay);
  }

  [[nodiscard]] int retries_scheduled() const { return retries_; }

 private:
  Policy policy_;
  std::uint64_t state_;
  int retries_ = 0;
};

/// Observability for one with_retry call.
struct Stats {
  int attempts = 0;          // attempts actually made (>= 1 unless expired)
  std::uint64_t slept_ms = 0;
  bool truncated = false;    // a backoff sleep was cut short by the deadline
  bool gave_up_on_deadline = false;  // stopped retrying: no budget left
};

using Sleeper = std::function<void(std::uint64_t /*ms*/)>;

inline void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Default retry predicate: retry only failures marked transient (the
/// fault injector's fail-once sets this, as do spawn-level hiccups).
[[nodiscard]] inline bool retry_if_transient(const Failure& failure) {
  return failure.transient;
}

/// Runs `attempt` until it succeeds, the policy's attempts are spent, the
/// predicate declines the failure, or the deadline runs out. Returns the
/// successful value or the last Failure observed. An already-expired
/// deadline yields a DeadlineExceeded failure without attempting.
template <typename T>
[[nodiscard]] Result<T> with_retry(
    const Policy& policy, const Deadline& deadline,
    const std::function<Result<T>()>& attempt,
    const std::function<bool(const Failure&)>& should_retry =
        retry_if_transient,
    Stats* stats = nullptr, const Sleeper& sleeper = sleep_ms) {
  Stats local;
  Stats& s = stats != nullptr ? *stats : local;
  s = Stats{};
  Backoff backoff(policy);
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Failure last = make_failure(Stage::Harness, FailureKind::DeadlineExceeded,
                              "deadline expired before the first attempt");
  for (int k = 1; k <= max_attempts; ++k) {
    if (deadline.expired()) {
      s.gave_up_on_deadline = true;
      return last;
    }
    ++s.attempts;
    Result<T> r = attempt();
    if (r.ok()) return r;
    last = r.failure();
    if (k == max_attempts || !should_retry(last)) return last;
    std::uint64_t delay = backoff.next_delay_ms();
    std::uint64_t budget = deadline.remaining_ms();
    if (budget == 0) {
      s.gave_up_on_deadline = true;
      return last;
    }
    if (delay > budget) {
      // Truncate the sleep to the deadline: one final attempt may still
      // fit, but we will not sleep past the caller's budget.
      delay = budget;
      s.truncated = true;
    }
    if (delay > 0) {
      sleeper(delay);
      s.slept_ms += delay;
    }
  }
  return last;
}

}  // namespace slc::support::retry
