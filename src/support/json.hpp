// A deliberately small JSON reader/writer for the harness' piped result
// transport and the resumable run journal (driver/journal.hpp).
//
// Scope: exactly what a machine-to-machine protocol between two builds
// of this codebase needs — objects, arrays, strings, bools, null, and
// *textually preserved* numbers. Numbers are kept as their source text
// and converted on access (u64 / i64 / double), so a 64-bit cycle count
// round-trips bit-exactly instead of being squeezed through a double.
// No external dependencies; the container policy forbids new ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace slc::support::json {

class Value {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Value() = default;

  // ----- builders ---------------------------------------------------------
  [[nodiscard]] static Value null();
  [[nodiscard]] static Value boolean(bool b);
  [[nodiscard]] static Value number(std::uint64_t v);
  [[nodiscard]] static Value number(std::int64_t v);
  [[nodiscard]] static Value number(int v) { return number(std::int64_t(v)); }
  [[nodiscard]] static Value number(double v);
  [[nodiscard]] static Value string(std::string s);
  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  // ----- inspectors -------------------------------------------------------
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }

  /// Conversions return the fallback when the kind does not match (or the
  /// number text does not parse) — journal consumers treat malformed
  /// entries as absent, never as errors.
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;  // "" when not String

  /// Object field lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const std::vector<Value>& items() const { return arr_; }

  // ----- mutation ---------------------------------------------------------
  void set(std::string key, Value v);       // object field (append)
  void push(Value v);                       // array element

  /// Compact single-line serialization (the journal is line-oriented).
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  // number text or string payload
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Strict parse of a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). nullopt on any syntax error.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// JSON string escaping for ad-hoc writers ("..." quotes included).
[[nodiscard]] std::string quote(std::string_view s);

}  // namespace slc::support::json
