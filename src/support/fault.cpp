#include "support/fault.hpp"

#include <cerrno>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slc::support::fault {

namespace {

enum class FaultKind { Throw, Fail, FailOnce, Delay, Crash, Hang, Alloc, Drop };

/// A disk-fault spec (`io:<kind>[@path-substr]`). Unlike pipeline faults
/// these key on the IoOp and the file path, not on a Stage.
enum class IoSpecKind { ShortWrite, Eio, Enospc, FsyncFail, CrashAfter };

struct IoSpec {
  IoSpecKind kind = IoSpecKind::Eio;
  std::uint64_t crash_after = 0;    // crash-after=K: ops until the kill
  std::string path_filter;          // substring match; empty = all paths
  std::atomic<std::uint64_t> ops{0};  // crash-after: ops seen so far
};

/// Message sentinel for the drop kind; is_drop() keys on it so injection
/// points can tell "swallow this row" apart from ordinary injected fails.
constexpr std::string_view kDropMessage = "injected row drop";

struct FaultSpec {
  Stage stage = Stage::Harness;
  FaultKind kind = FaultKind::Fail;
  int delay_ms = 0;
  int alloc_mb = 0;
  std::string kernel_filter;        // substring match; empty = all
  std::atomic<bool> spent{false};   // fail-once: already fired?
};

struct Config {
  std::mutex mu;
  std::deque<FaultSpec> specs;      // deque: FaultSpec holds an atomic
  std::deque<IoSpec> io_specs;      // deque: IoSpec holds an atomic
  std::vector<std::string> bugs;
};

Config& config() {
  static Config c;
  return c;
}

// Fast-path flag: trigger() is called on every pipeline stage of every
// row, so the disarmed case must not take the config mutex.
std::atomic<bool> g_enabled{false};

bool parse_one(std::string_view item, Config& c, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + ": '" + std::string(item) + "'";
    return false;
  };

  // bug:<name> — a planted miscompile, no stage/kind grammar.
  constexpr std::string_view kBugPrefix = "bug:";
  if (item.substr(0, kBugPrefix.size()) == kBugPrefix) {
    std::string name(item.substr(kBugPrefix.size()));
    if (name.empty()) return fail("empty bug name");
    c.bugs.push_back(std::move(name));
    return true;
  }

  // io:<kind>[@path-substr] — a disk fault for the durable-IO layer.
  constexpr std::string_view kIoPrefix = "io:";
  if (item.substr(0, kIoPrefix.size()) == kIoPrefix) {
    std::string_view rest = item.substr(kIoPrefix.size());
    std::string path_filter;
    if (std::size_t at = rest.find('@'); at != std::string_view::npos) {
      path_filter = std::string(rest.substr(at + 1));
      rest = rest.substr(0, at);
    }
    IoSpec spec;
    spec.path_filter = std::move(path_filter);
    constexpr std::string_view kCrashPrefix = "crash-after=";
    if (rest == "short-write") {
      spec.kind = IoSpecKind::ShortWrite;
    } else if (rest == "eio") {
      spec.kind = IoSpecKind::Eio;
    } else if (rest == "enospc") {
      spec.kind = IoSpecKind::Enospc;
    } else if (rest == "fsync-fail") {
      spec.kind = IoSpecKind::FsyncFail;
    } else if (rest.substr(0, kCrashPrefix.size()) == kCrashPrefix) {
      spec.kind = IoSpecKind::CrashAfter;
      std::string k(rest.substr(kCrashPrefix.size()));
      char* end = nullptr;
      unsigned long long v = std::strtoull(k.c_str(), &end, 10);
      if (k.empty() || end == nullptr || *end != '\0' || v == 0)
        return fail("bad crash-after op count");
      spec.crash_after = v;
    } else {
      return fail(
          "unknown io fault kind "
          "(short-write|eio|enospc|fsync-fail|crash-after=K)");
    }
    c.io_specs.emplace_back();
    IoSpec& stored = c.io_specs.back();
    stored.kind = spec.kind;
    stored.crash_after = spec.crash_after;
    stored.path_filter = std::move(spec.path_filter);
    return true;
  }

  std::size_t colon = item.find(':');
  if (colon == std::string_view::npos)
    return fail("expected stage:kind");
  std::optional<Stage> stage = parse_stage(item.substr(0, colon));
  if (!stage) return fail("unknown stage");

  std::string_view rest = item.substr(colon + 1);
  std::string kernel_filter;
  if (std::size_t at = rest.find('@'); at != std::string_view::npos) {
    kernel_filter = std::string(rest.substr(at + 1));
    rest = rest.substr(0, at);
  }

  FaultSpec spec;
  spec.stage = *stage;
  spec.kernel_filter = std::move(kernel_filter);
  constexpr std::string_view kDelayPrefix = "delay=";
  if (rest == "throw") {
    spec.kind = FaultKind::Throw;
  } else if (rest == "fail") {
    spec.kind = FaultKind::Fail;
  } else if (rest == "fail-once") {
    spec.kind = FaultKind::FailOnce;
  } else if (rest == "crash") {
    spec.kind = FaultKind::Crash;
  } else if (rest == "hang") {
    spec.kind = FaultKind::Hang;
  } else if (rest == "drop") {
    spec.kind = FaultKind::Drop;
  } else if (rest.substr(0, kDelayPrefix.size()) == kDelayPrefix) {
    spec.kind = FaultKind::Delay;
    std::string ms(rest.substr(kDelayPrefix.size()));
    char* end = nullptr;
    long v = std::strtol(ms.c_str(), &end, 10);
    if (ms.empty() || end == nullptr || *end != '\0' || v < 0)
      return fail("bad delay milliseconds");
    spec.delay_ms = int(v);
  } else if (constexpr std::string_view kAllocPrefix = "alloc=";
             rest.substr(0, kAllocPrefix.size()) == kAllocPrefix) {
    spec.kind = FaultKind::Alloc;
    std::string mb(rest.substr(kAllocPrefix.size()));
    char* end = nullptr;
    long v = std::strtol(mb.c_str(), &end, 10);
    if (mb.empty() || end == nullptr || *end != '\0' || v <= 0)
      return fail("bad alloc megabytes");
    spec.alloc_mb = int(v);
  } else {
    return fail(
        "unknown fault kind "
        "(throw|fail|fail-once|delay=MS|alloc=MB|crash|hang|drop)");
  }
  c.specs.emplace_back();
  FaultSpec& stored = c.specs.back();
  stored.stage = spec.stage;
  stored.kind = spec.kind;
  stored.delay_ms = spec.delay_ms;
  stored.alloc_mb = spec.alloc_mb;
  stored.kernel_filter = std::move(spec.kernel_filter);
  return true;
}

Failure injected_failure(Stage stage, std::string_view kernel,
                         bool transient) {
  Failure f = make_failure(stage, FailureKind::Injected,
                           std::string("injected fault at stage ") +
                               to_string(stage));
  f.kernel = std::string(kernel);
  f.transient = transient;
  return f;
}

}  // namespace

bool configure(const std::string& spec, std::string* error) {
  Config& c = config();
  std::unique_lock<std::mutex> lock(c.mu);
  c.specs.clear();
  c.io_specs.clear();
  c.bugs.clear();
  bool ok = true;
  std::size_t pos = 0;
  while (pos <= spec.size() && ok) {
    std::size_t comma = spec.find(',', pos);
    std::size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string_view item(spec.data() + pos, end - pos);
    if (!item.empty()) ok = parse_one(item, c, error);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (!ok) {
    c.specs.clear();
    c.io_specs.clear();
    c.bugs.clear();
  }
  g_enabled.store(!c.specs.empty() || !c.io_specs.empty() || !c.bugs.empty(),
                  std::memory_order_release);
  return ok;
}

void configure_from_env() {
  const char* env = std::getenv("SLC_FAULT");
  if (env == nullptr || *env == '\0') return;
  std::string error;
  if (!configure(env, &error))
    std::cerr << "SLC_FAULT ignored — " << error << "\n";
}

void clear() {
  Config& c = config();
  std::unique_lock<std::mutex> lock(c.mu);
  c.specs.clear();
  c.io_specs.clear();
  c.bugs.clear();
  g_enabled.store(false, std::memory_order_release);
}

bool enabled() { return g_enabled.load(std::memory_order_acquire); }

std::optional<Failure> trigger(Stage stage, std::string_view kernel) {
  if (!enabled()) return std::nullopt;
  Config& c = config();
  FaultKind kind{};
  int delay_ms = 0;
  int alloc_mb = 0;
  bool matched = false;
  {
    std::unique_lock<std::mutex> lock(c.mu);
    for (FaultSpec& spec : c.specs) {
      if (spec.stage != stage) continue;
      if (!spec.kernel_filter.empty() &&
          kernel.find(spec.kernel_filter) == std::string_view::npos)
        continue;
      if (spec.kind == FaultKind::FailOnce &&
          spec.spent.exchange(true, std::memory_order_acq_rel))
        continue;  // already fired once
      kind = spec.kind;
      delay_ms = spec.delay_ms;
      alloc_mb = spec.alloc_mb;
      matched = true;
      break;
    }
  }
  if (!matched) return std::nullopt;
  switch (kind) {
    case FaultKind::Throw:
      throw FaultInjected(injected_failure(stage, kernel, false));
    case FaultKind::Fail:
      return injected_failure(stage, kernel, false);
    case FaultKind::FailOnce:
      return injected_failure(stage, kernel, true);
    case FaultKind::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return std::nullopt;
    case FaultKind::Crash:
      // A genuine crash, not an exception: nothing in-process can recover
      // from this. Restore the default disposition first so a test
      // harness's SIGSEGV handler cannot turn it back into something
      // catchable.
      std::signal(SIGSEGV, SIG_DFL);
      std::raise(SIGSEGV);
      std::abort();  // not reached; raise cannot return here
    case FaultKind::Hang:
      // Sleep until killed. Deliberately immune to the in-process
      // Deadline: this models the infinite loop only the --isolate
      // watchdog's SIGKILL can end.
      for (;;)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    case FaultKind::Drop: {
      Failure f = injected_failure(stage, kernel, false);
      f.message = std::string(kDropMessage);
      return f;
    }
    case FaultKind::Alloc: {
      // A runaway allocation: touch alloc_mb MiB page by page. Under a
      // subprocess RLIMIT_AS cap this ends in bad_alloc (or a kernel
      // OOM kill), exercising the ChildOom classification; without a cap
      // it simply allocates and frees. Volatile writes keep the pages
      // resident so the limit genuinely fires.
      std::vector<std::unique_ptr<char[]>> hoard;
      const std::size_t chunk = 1u << 20;
      for (int mb = 0; mb < alloc_mb; ++mb) {
        hoard.push_back(std::make_unique<char[]>(chunk));
        volatile char* page = hoard.back().get();
        for (std::size_t off = 0; off < chunk; off += 4096) page[off] = 1;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool is_drop(const Failure& failure) {
  return failure.kind == FailureKind::Injected &&
         failure.message == kDropMessage;
}

std::optional<IoFault> io_trigger(IoOp op, std::string_view path) {
  if (!enabled()) return std::nullopt;
  Config& c = config();
  std::unique_lock<std::mutex> lock(c.mu);
  for (IoSpec& spec : c.io_specs) {
    if (!spec.path_filter.empty() &&
        path.find(spec.path_filter) == std::string_view::npos)
      continue;
    switch (spec.kind) {
      case IoSpecKind::ShortWrite:
        if (op != IoOp::Write) continue;
        return IoFault{IoFaultKind::ShortWrite, ENOSPC};
      case IoSpecKind::Eio:
        if (op != IoOp::Write) continue;
        return IoFault{IoFaultKind::Fail, EIO};
      case IoSpecKind::Enospc:
        if (op != IoOp::Write) continue;
        return IoFault{IoFaultKind::Fail, ENOSPC};
      case IoSpecKind::FsyncFail:
        if (op != IoOp::Fsync) continue;
        return IoFault{IoFaultKind::Fail, EIO};
      case IoSpecKind::CrashAfter: {
        // Every durable-IO op (matching the filter) advances the clock;
        // the Kth one is where the "power cut" lands.
        std::uint64_t seen =
            spec.ops.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (seen >= spec.crash_after)
          return IoFault{IoFaultKind::Crash, 0};
        continue;
      }
    }
  }
  return std::nullopt;
}

bool bug_planted(std::string_view name) {
  if (!enabled()) return false;
  Config& c = config();
  std::unique_lock<std::mutex> lock(c.mu);
  for (const std::string& bug : c.bugs)
    if (bug == name) return true;
  return false;
}

}  // namespace slc::support::fault
