#include "support/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <utility>

namespace slc::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this] { worker(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SLC_JOBS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return int(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : int(hw);
}

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t workers = std::size_t(jobs < 1 ? 1 : jobs);
  if (workers > n) workers = n;
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  ThreadPool pool(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace slc::support
