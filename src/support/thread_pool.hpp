// A small fixed-size worker pool with a shared task queue — the fan-out
// engine of the evaluation harness. The paper's experiment sweeps
// (~30 kernels × 8 backends × several presets) are embarrassingly
// parallel; the pool lets `driver::compare_suite` and the figure benches
// evaluate comparison rows concurrently while results are still
// collected in deterministic input order by the caller.
//
// Design notes:
//  * plain mutex + condition-variable queue — task granularity here is a
//    whole kernel comparison (milliseconds), so queue contention is
//    negligible and work stealing would buy nothing;
//  * tasks must not throw; `parallel_for` captures the first exception
//    and rethrows it on the calling thread after the batch drains;
//  * pool size 0/1 degenerates to inline execution (no threads spawned),
//    so `--jobs 1` runs are plain sequential code under a debugger.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slc::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 means "inline": submit() runs the
  /// task on the calling thread immediately.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (std::terminate otherwise in
  /// worker context); wrap fallible work in try/catch.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  void worker();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Effective parallelism for a request: `requested` > 0 wins; otherwise
/// the SLC_JOBS environment variable (if set to a positive integer);
/// otherwise std::thread::hardware_concurrency(). Always >= 1.
[[nodiscard]] int resolve_jobs(int requested = 0);

/// Runs fn(0..n-1) on up to `jobs` workers and waits for all of them.
/// Iteration-to-worker assignment is dynamic, so side effects must be
/// index-local (e.g. writing results[i]); the first exception thrown by
/// any iteration is rethrown here after the batch completes.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace slc::support
