// A small fixed-size worker pool with a shared task queue — the fan-out
// engine of the evaluation harness. The paper's experiment sweeps
// (~30 kernels × 8 backends × several presets) are embarrassingly
// parallel; the pool lets `driver::compare_suite` and the figure benches
// evaluate comparison rows concurrently while results are still
// collected in deterministic input order by the caller.
//
// Design notes:
//  * plain mutex + condition-variable queue — task granularity here is a
//    whole kernel comparison (milliseconds), so queue contention is
//    negligible and work stealing would buy nothing;
//  * tasks may throw: a worker captures any exception escaping a task and
//    `wait_idle()` rethrows the first one on the calling thread after the
//    queue drains (remaining tasks still run). Exceptions pending at
//    destruction are swallowed — call wait_idle() to observe them;
//  * pool size 0/1 degenerates to inline execution (no threads spawned),
//    so `--jobs 1` runs are plain sequential code under a debugger.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slc::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers. 0 or 1 means "inline": submit() runs the
  /// task on the calling thread immediately.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. A task that throws does not terminate the process:
  /// the worker captures the exception and wait_idle() rethrows it. In
  /// inline mode (0/1 threads) the exception propagates directly here.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing, then
  /// rethrows the first exception any task threw since the last call
  /// (clearing it). Subsequent calls return normally.
  void wait_idle();

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  void worker();

  mutable std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  // first task exception, for wait_idle
};

/// Effective parallelism for a request: `requested` > 0 wins; otherwise
/// the SLC_JOBS environment variable (if set to a positive integer);
/// otherwise std::thread::hardware_concurrency(). Always >= 1.
[[nodiscard]] int resolve_jobs(int requested = 0);

/// Runs fn(0..n-1) on up to `jobs` workers and waits for all of them.
/// Iteration-to-worker assignment is dynamic, so side effects must be
/// index-local (e.g. writing results[i]); the first exception thrown by
/// any iteration is rethrown here after the batch completes.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace slc::support
