// Diagnostic accumulation shared by the frontend, sema, the
// transformation passes, and the static verifier. Passes report *why*
// they refused to transform a loop through this channel so that the
// interactive driver (the paper's SLC "tips to the user", Fig. 4/5) can
// surface the reason.
//
// Every diagnostic carries a stable machine-readable `code` (kebab-case,
// e.g. "parse-syntax", "slms-dep-violation") in addition to the human
// message. Codes are the contract consumed by `slc --lint`, the
// `--diag-json` emission, and the CI lint gates — changing one is a
// breaking change; adding one is not.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"
#include "support/source_location.hpp"

namespace slc {

enum class Severity { Note, Warning, Error };

[[nodiscard]] const char* to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  /// Stable machine-readable identifier; empty for legacy call sites that
  /// have not been assigned a code yet.
  std::string code;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; cheap to pass by reference through every pass.
class DiagnosticEngine {
 public:
  void report(Severity severity, std::string code, SourceLoc loc,
              std::string msg) {
    if (severity == Severity::Error) ++error_count_;
    diags_.push_back({severity, std::move(code), loc, std::move(msg)});
  }

  void note(SourceLoc loc, std::string msg) {
    report(Severity::Note, {}, loc, std::move(msg));
  }
  void warning(SourceLoc loc, std::string msg) {
    report(Severity::Warning, {}, loc, std::move(msg));
  }
  void error(SourceLoc loc, std::string msg) {
    report(Severity::Error, {}, loc, std::move(msg));
  }

  void note(std::string code, SourceLoc loc, std::string msg) {
    report(Severity::Note, std::move(code), loc, std::move(msg));
  }
  void warning(std::string code, SourceLoc loc, std::string msg) {
    report(Severity::Warning, std::move(code), loc, std::move(msg));
  }
  void error(std::string code, SourceLoc loc, std::string msg) {
    report(Severity::Error, std::move(code), loc, std::move(msg));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  /// Number of diagnostics at `min_severity` or above.
  [[nodiscard]] std::size_t count(Severity min_severity) const;

  /// True when any diagnostic carries the given code.
  [[nodiscard]] bool has_code(std::string_view code) const;

  void clear() {
    diags_.clear();
    error_count_ = 0;
  }

  /// Diagnostics at `min_severity` or above joined into one
  /// human-readable block ("line:col: severity: [code] message").
  [[nodiscard]] std::string str(Severity min_severity = Severity::Note) const;

  /// Machine-readable form: a JSON array of
  ///   {"code", "severity", "line", "column", "message"}
  /// objects in emission order — the payload behind `slc --diag-json`.
  [[nodiscard]] support::json::Value to_json(
      Severity min_severity = Severity::Note) const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace slc
