// Diagnostic accumulation shared by the frontend, sema, and the
// transformation passes. Passes report *why* they refused to transform a
// loop through this channel so that the interactive driver (the paper's
// SLC "tips to the user", Fig. 4/5) can surface the reason.
#pragma once

#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace slc {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; cheap to pass by reference through every pass.
class DiagnosticEngine {
 public:
  void note(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Note, loc, std::move(msg)});
  }
  void warning(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Warning, loc, std::move(msg)});
  }
  void error(SourceLoc loc, std::string msg) {
    ++error_count_;
    diags_.push_back({Severity::Error, loc, std::move(msg)});
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }

  void clear() {
    diags_.clear();
    error_count_ = 0;
  }

  /// All diagnostics joined into one human-readable block.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace slc
