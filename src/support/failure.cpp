#include "support/failure.hpp"

#include <sstream>

namespace slc::support {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::Parse: return "parse";
    case Stage::Sema: return "sema";
    case Stage::Analysis: return "analysis";
    case Stage::Slms: return "slms";
    case Stage::Verify: return "verify";
    case Stage::Lower: return "lower";
    case Stage::Schedule: return "schedule";
    case Stage::Simulate: return "simulate";
    case Stage::Oracle: return "oracle";
    case Stage::Native: return "native";
    case Stage::Harness: return "harness";
    case Stage::Isolation: return "isolation";
    case Stage::Worker: return "worker";
  }
  return "?";
}

std::optional<Stage> parse_stage(std::string_view name) {
  if (name == "parse") return Stage::Parse;
  if (name == "sema") return Stage::Sema;
  if (name == "analysis") return Stage::Analysis;
  if (name == "slms") return Stage::Slms;
  if (name == "verify") return Stage::Verify;
  if (name == "lower") return Stage::Lower;
  if (name == "schedule") return Stage::Schedule;
  if (name == "simulate") return Stage::Simulate;
  if (name == "oracle") return Stage::Oracle;
  if (name == "native") return Stage::Native;
  if (name == "harness") return Stage::Harness;
  if (name == "isolation") return Stage::Isolation;
  if (name == "worker") return Stage::Worker;
  return std::nullopt;
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::ParseError: return "parse-error";
    case FailureKind::SemaError: return "sema-error";
    case FailureKind::TransformError: return "transform-error";
    case FailureKind::LowerError: return "lower-error";
    case FailureKind::ScheduleError: return "schedule-error";
    case FailureKind::SimError: return "sim-error";
    case FailureKind::OracleMismatch: return "oracle-mismatch";
    case FailureKind::VerifyFailed: return "verify-failed";
    case FailureKind::DivideByZero: return "divide-by-zero";
    case FailureKind::OutOfBounds: return "out-of-bounds";
    case FailureKind::StepLimit: return "step-limit";
    case FailureKind::DeadlineExceeded: return "deadline-exceeded";
    case FailureKind::Exception: return "exception";
    case FailureKind::Injected: return "injected";
    case FailureKind::ChildExit: return "child-exit";
    case FailureKind::ChildSignal: return "child-signal";
    case FailureKind::ChildTimeout: return "child-timeout";
    case FailureKind::ChildOom: return "child-oom";
    case FailureKind::NativeError: return "native-error";
    case FailureKind::Unknown: return "unknown";
  }
  return "?";
}

std::optional<FailureKind> parse_failure_kind(std::string_view name) {
  // Keep in sync with to_string(FailureKind); the journal stores kinds by
  // name so resumed rows survive enum reordering across versions.
  for (int i = 0; i <= int(FailureKind::Unknown); ++i) {
    auto kind = FailureKind(i);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::string Failure::brief() const {
  std::ostringstream os;
  os << to_string(stage) << '/' << to_string(kind) << ": " << message;
  return os.str();
}

std::string Failure::str() const {
  std::ostringstream os;
  os << brief();
  if (!kernel.empty() || !options.empty()) {
    os << " [";
    if (!kernel.empty()) os << "kernel=" << kernel;
    if (!kernel.empty() && !options.empty()) os << ", ";
    if (!options.empty()) os << "options=" << options;
    os << ']';
  }
  if (transient) os << " (transient)";
  return os.str();
}

}  // namespace slc::support
