// Compile-time-cheap fault injection for the fail-safe pipeline.
//
// The recovery paths in the harness (per-row exception capture, graceful
// degradation, retry of transient failures, the per-row deadline guard)
// are only trustworthy if they can be exercised on demand. This facility
// lets tests and the CLI force a fault at any pipeline stage:
//
//   SLC_FAULT="slms:throw"              throw at the SLMS stage
//   SLC_FAULT="oracle:fail"             report a Failure at the oracle stage
//   SLC_FAULT="lower:fail-once"         fail the first hit only (transient;
//                                       the harness retry must clear it)
//   SLC_FAULT="simulate:delay=50"       sleep 50 ms (trips the deadline
//                                       guard without failing outright)
//   SLC_FAULT="slms:crash"              raise SIGSEGV — a genuine crash
//                                       that only --isolate survives
//   SLC_FAULT="simulate:hang"           spin-sleep forever; the in-process
//                                       Deadline cannot interrupt it, only
//                                       the --isolate wall-clock watchdog
//   SLC_FAULT="slms:alloc=512"          touch 512 MiB — under a child
//                                       RSS cap this is the OOM path
//                                       (bad_alloc or kernel OOM kill)
//   SLC_FAULT="slms:throw@kernel8"      only rows whose kernel name
//                                       contains "kernel8"
//   SLC_FAULT="worker:drop@w0:"         a dist-sweep worker silently
//                                       drops the row instead of
//                                       reporting it (models a lost
//                                       result message; the coordinator
//                                       must re-queue the lease)
//   SLC_FAULT="bug:mve-skip-rename"     plant a named miscompile bug (used
//                                       to validate the differential fuzzer
//                                       and the static verifier end to end:
//                                       they must catch it)
//
// Disk faults (consumed by the durable-IO layer, support/io.hpp; the
// @filter is matched against the *path* of the file being written, so a
// fault can target one artifact — the journal, a cache — by site):
//   SLC_FAULT="io:enospc@results"       every write to a path containing
//                                       "results" fails with ENOSPC
//   SLC_FAULT="io:eio"                  every durable-IO write fails EIO
//   SLC_FAULT="io:short-write@cache"    write half the bytes, then ENOSPC
//                                       (models a disk filling mid-record)
//   SLC_FAULT="io:fsync-fail"           fsync/fdatasync report EIO — the
//                                       "fsyncgate" failure mode where the
//                                       page cache lied about durability
//   SLC_FAULT="io:crash-after=K"        hard-kill the process (_Exit) on
//                                       the Kth durable-IO operation; when
//                                       that op is a write, half the bytes
//                                       land first — a genuine torn record,
//                                       the closest a test gets to a power
//                                       cut at an arbitrary instant
//
// Planted miscompile bugs (each must be caught *statically* by the
// src/verify legality checker — the CI lint gate enforces it):
//   bug:mve-skip-rename   drop the MVE rename of one planned scalar
//   bug:sched-sigma-skew  shift the last MI off its scheduled slot
//   bug:sched-ii-inflate  schedule at II+1 instead of the minimum — the
//                         one planted bug that is *correct* code: verifier
//                         and oracle accept it; only the exact oracle's
//                         nonzero II-optimality gap (the CI exact-gate
//                         job) can catch it
//   bug:kernel-run-over   kernel bound runs one unrolled round long
//   bug:prologue-drop     lose the earliest prologue instance
//   bug:prologue-early-iv prologue instances bind the previous iv value
//   bug:fixup-stale-copy  live-out fixup reads MVE copy 0 unconditionally
//
// Multiple specs are comma-separated. The same spec grammar is accepted by
// `slc --fault=` and `slc_fuzz --fault=`. When no fault is armed the per-
// stage check is one relaxed atomic load — cheap enough to leave in hot
// harness paths unconditionally.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "support/failure.hpp"

namespace slc::support::fault {

/// Exception thrown by the `throw` fault kind. Carries the structured
/// Failure so capture sites can record it without re-classifying.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(Failure failure)
      : std::runtime_error(failure.str()), failure_(std::move(failure)) {}
  [[nodiscard]] const Failure& failure() const { return failure_; }

 private:
  Failure failure_;
};

/// Arms faults from a spec string (see the grammar above). Replaces any
/// previously armed faults. Returns false (and sets *error) on a malformed
/// spec; the armed set is left empty in that case.
bool configure(const std::string& spec, std::string* error = nullptr);

/// Arms faults from the SLC_FAULT environment variable if it is set.
/// Malformed env specs are reported on stderr and ignored.
void configure_from_env();

/// Disarms every fault and resets fail-once counters.
void clear();

/// True when any fault is armed (single relaxed atomic load).
[[nodiscard]] bool enabled();

/// The per-stage injection point. Returns nullopt in the common (disarmed
/// or non-matching) case. For an armed matching spec:
///   throw     — throws FaultInjected
///   fail      — returns a Failure{stage, Injected}
///   fail-once — returns a transient Failure on the first match only
///   delay     — sleeps, then returns nullopt
///   alloc     — touches the configured MiB, then returns nullopt (under
///               an RLIMIT_AS cap: bad_alloc / kernel OOM kill instead)
///   crash     — raises SIGSEGV (never returns; kills the process)
///   hang      — sleeps forever (never returns; only SIGKILL ends it)
///   drop      — returns a Failure that is_drop() recognizes; the dist
///               worker loop skips reporting the row entirely
/// `kernel` is matched as a substring against the spec's @filter; an empty
/// filter matches every kernel. Distributed workers (src/dist) pass
/// "<worker-id>:<kernel>" as the subject, so "@w0:" targets one worker
/// and "@:ddot" one kernel on any worker.
[[nodiscard]] std::optional<Failure> trigger(Stage stage,
                                             std::string_view kernel = {});

/// True when `failure` came from a `drop` fault spec — the injection
/// point must swallow the unit of work instead of reporting it failed.
[[nodiscard]] bool is_drop(const Failure& failure);

/// True when `configure` armed the named miscompile bug (`bug:<name>`).
/// Transformation passes consult this to deliberately emit wrong code so
/// the differential fuzzer's detection path can be validated.
[[nodiscard]] bool bug_planted(std::string_view name);

// ----- disk faults (support/io.hpp injection points) -----------------------

/// The durable-IO operations a disk fault can fire on. Every syscall the
/// io layer issues is classified as one of these before it runs.
enum class IoOp : std::uint8_t { Open, Write, Fsync, Rename };

/// What io_trigger tells the io layer to do instead of the real syscall.
enum class IoFaultKind : std::uint8_t {
  ShortWrite,  // write roughly half the bytes, then fail with `err`
  Fail,        // fail immediately with `err` (EIO / ENOSPC)
  Crash,       // half-write if mid-write, then _Exit the process
};

struct IoFault {
  IoFaultKind kind = IoFaultKind::Fail;
  int err = 0;  // errno to report for ShortWrite / Fail
};

/// The disk-fault injection point, called by support/io.cpp before every
/// durable-IO syscall. Returns nullopt in the common (disarmed or
/// non-matching) case — a single relaxed atomic load. `path` is matched
/// as a substring against the spec's @filter. The crash-after counter
/// counts every IoOp that reaches an armed crash-after spec, regardless
/// of path filter matches on other specs.
[[nodiscard]] std::optional<IoFault> io_trigger(IoOp op,
                                                std::string_view path);

/// Process exit code used by the `io:crash-after=K` hard kill; torture
/// harnesses assert on it to distinguish the planted crash from an
/// organic one.
inline constexpr int kIoCrashExitCode = 67;

}  // namespace slc::support::fault
